(* hybrid-cc: command-line entry point for the reproduction.

   Subcommands:
   - figures: regenerate the paper's dependency/commutativity tables from
     the serial specifications and diff them against the paper.
   - experiments: run the measured concurrency experiments (the EXP-
     series from DESIGN.md).
   - history: replay the paper's Section 3.2 queue history through the
     LOCK machine and the atomicity checkers. *)

let pp_figure ~verbose f =
  let derived = f.Figures.derived () in
  let ok = Figures.check f in
  Format.printf "%a@." Spec.Classify.pp_table derived;
  Format.printf "matches the paper: %s@." (if ok then "YES" else "NO");
  if verbose then Format.printf "note: %s@." f.Figures.notes;
  if (not ok) && verbose then
    Format.printf "expected:@.%a@." Spec.Classify.pp_table f.Figures.expected;
  Format.printf "@.";
  ok

let figures_cmd id verbose =
  let figs =
    match id with
    | None -> Figures.all
    | Some id -> (
      match Figures.by_id id with
      | Some f -> [ f ]
      | None ->
        Format.eprintf "unknown figure id %S (use 4-1 .. 4-5 or 7-1)@." id;
        exit 2)
  in
  let ok = List.fold_left (fun acc f -> pp_figure ~verbose f && acc) true figs in
  if not ok then exit 1

let scale_of domains txns think_us =
  { Sim.Experiments.domains; txns; think_us }

let select_tables ~scale ~seed ?(key_skew = 0.) ?(cells = 8) ?(shards = 1)
    ?(cross_pct = 10.) ?wal_dir ?(group_commit = true) ?wal id =
  match id with
  | None -> Sim.Experiments.all ~scale ~seed ?wal ()
  | Some "queue" -> [ Sim.Experiments.exp_queue_enq ~scale ~seed ?wal () ]
  | Some "queue-mixed" -> [ Sim.Experiments.exp_queue_mixed ~scale ~seed ?wal () ]
  | Some "account" -> [ Sim.Experiments.exp_account ~scale ~seed ?wal () ]
  | Some "semiqueue" -> [ Sim.Experiments.exp_semiqueue ~scale ~seed ?wal () ]
  | Some "directory" ->
    [ Sim.Experiments.exp_directory ~scale ~seed ~key_skew ~cells ?wal () ]
  | Some "shard" ->
    (* Sharded managers run their own per-shard WALs (plus the decision
       log) under prefixed names — the shared experiments.wal does not
       apply. *)
    let shards = if shards > 1 then shards else 4 in
    [
      Sim.Shard_exp.exp_shard ~scale ~seed ~shards ~cross_pct ?wal_dir
        ~fsync:(Option.is_some wal_dir) ~group_commit ();
    ]
  | Some other ->
    Format.eprintf
      "unknown experiment id %S (use queue, queue-mixed, account, semiqueue, directory, \
       shard)@."
      other;
    exit 2

let ensure_dir dir =
  try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

(* The audits share one exit contract: trace replay proving the run was
   not hybrid atomic, or a cycle in the waits-for graph (impossible
   under wait-die), are protocol bugs — report and fail. *)
let audit_exit tables =
  let atomic = Sim.Experiments.violations tables in
  let cycles = Sim.Experiments.waitfor_failures tables in
  List.iter
    (fun (tid, label, e) ->
      Format.eprintf "ATOMICITY VIOLATION in %s / %s: %s@." tid label e)
    atomic;
  List.iter
    (fun (tid, label, c) -> Format.eprintf "WAIT-FOR CYCLE in %s / %s: %s@." tid label c)
    cycles;
  if atomic <> [] || cycles <> [] then exit 1

let with_out_file file f =
  let oc = open_out file in
  let ppf = Format.formatter_of_out_channel oc in
  Fun.protect
    ~finally:(fun () ->
      Format.pp_print_flush ppf ();
      close_out oc)
    (fun () -> f ppf)

(* The gate needs enough concurrent overlap to make the cell-blind
   machine's refusal mass statistically solid, so it pins its own scale
   (overriding --quick and the size options) and forces observability on
   — fired-conflict mass comes from the trace window. *)
let gate_scale = { Sim.Experiments.domains = 4; txns = 150; think_us = 20. }

let partition_gate_exit tables =
  match List.find_opt (fun t -> t.Sim.Experiments.id = "EXP-DIRECTORY") tables with
  | None ->
    Format.eprintf "--partition-gate needs the directory experiment (use --id directory)@.";
    exit 2
  | Some t -> (
    match Sim.Experiments.partition_gate t with
    | Ok (blind, celled) ->
      Format.printf
        "partition gate: cell-blind fired-conflict mass %d >= 5x cell-locked %d — OK@."
        blind celled
    | Error e ->
      Format.eprintf "%s@." e;
      exit 1)

let experiments_cmd id deterministic quick metrics seed wal_dir group_commit domains txns
    think_us key_skew cells gate shards cross_pct =
  Runtime.Backoff.set_seed seed;
  if gate then Obs.Control.set_enabled true;
  if deterministic then begin
    let tables =
      match id with
      | None -> Sim.Det_experiments.all ()
      | Some "queue" -> [ Sim.Det_experiments.det_queue_enq () ]
      | Some "queue-mixed" -> [ Sim.Det_experiments.det_queue_mixed () ]
      | Some "account" -> [ Sim.Det_experiments.det_account () ]
      | Some "semiqueue" -> [ Sim.Det_experiments.det_semiqueue () ]
      | Some other ->
        Format.eprintf
          "unknown experiment id %S (use queue, queue-mixed, account, semiqueue)@."
          other;
        exit 2
    in
    List.iter (fun t -> Format.printf "%a@." Sim.Det_experiments.pp_table t) tables
  end
  else begin
    let scale =
      if gate then gate_scale
      else if quick then Sim.Experiments.quick_scale
      else scale_of domains txns think_us
    in
    Obs.Metrics.annotate "run.seed" (string_of_int seed);
    let sharded = id = Some "shard" in
    if sharded then Option.iter ensure_dir wal_dir;
    let wal =
      if sharded then None
      else
        Option.map
          (fun dir ->
            ensure_dir dir;
            let w = Wal.Log.create ~group_commit (Filename.concat dir "experiments.wal") in
            Obs.Metrics.annotate "run.wal" (Wal.Log.path w);
            w)
          wal_dir
    in
    let tables =
      select_tables ~scale ~seed ~key_skew ~cells ~shards ~cross_pct ?wal_dir
        ~group_commit ?wal id
    in
    (match wal with
    | Some w ->
      Wal.Log.close w;
      Format.printf "wrote write-ahead log to %s (%d records, %d live)@." (Wal.Log.path w)
        (Wal.Log.file_records w) (Wal.Log.live w)
    | None -> ());
    List.iter (fun t -> Format.printf "%a@." Sim.Experiments.pp_table t) tables;
    if metrics then begin
      Format.printf "== metrics ==@.";
      Obs.Metrics.dump Format.std_formatter ();
      let tr = Obs.Trace.global in
      Format.printf "trace.entries                %d@.trace.dropped                %d@."
        (List.length (Obs.Trace.entries tr))
        (Obs.Trace.dropped tr)
    end;
    audit_exit tables;
    if gate then partition_gate_exit tables
  end

let trace_cmd id quick conflicts waitfor chrome metrics_json seed domains txns think_us
    key_skew cells =
  Obs.Control.set_enabled true;
  Runtime.Backoff.set_seed seed;
  let scale =
    if quick then Sim.Experiments.quick_scale else scale_of domains txns think_us
  in
  Obs.Metrics.annotate "run.seed" (string_of_int seed);
  let tables = select_tables ~scale ~seed ~key_skew ~cells id in
  List.iter (fun t -> Format.printf "%a@." Sim.Experiments.pp_table t) tables;
  if conflicts then
    List.iter (fun t -> Format.printf "%a@." Sim.Experiments.pp_conflicts t) tables;
  if waitfor then
    List.iter (fun t -> Format.printf "%a@." Sim.Experiments.pp_waitfor t) tables;
  (match chrome with
  | Some file ->
    with_out_file file (fun ppf ->
        Obs.Export.chrome_trace ppf (Sim.Experiments.windows tables));
    Format.printf "wrote Chrome trace to %s (open in chrome://tracing or ui.perfetto.dev)@."
      file
  | None -> ());
  (match metrics_json with
  | Some file ->
    with_out_file file (fun ppf -> Obs.Export.metrics_json ppf ());
    Format.printf "wrote metrics JSON to %s@." file
  | None -> ());
  audit_exit tables

(* Registry for `derive`: every shipped ADT's tables, computed on demand
   from the serial specification alone. *)
let derive_registry =
  let entry (type i r s) name
      (module X : Spec.Adt_sig.BOUNDED with type inv = i and type res = r and type state = s)
      depth =
    let module D = Spec.Dependency.Make (X) in
    let module C = Spec.Commutativity.Make (X) in
    let module K = Spec.Classify.Make (X) in
    ( name,
      fun () ->
        let inv = D.invalidated_by ~depth in
        Format.printf "%a@."
          Spec.Classify.pp_table
          (K.classify ~title:(name ^ ": invalidated-by (minimal dependency relation)")
             (Spec.Relation.pred inv));
        Format.printf "is a dependency relation (Theorem 10): %b@.is minimal: %b@.@."
          (D.is_dependency_relation ~depth (Spec.Relation.pred inv))
          (D.is_minimal ~depth inv);
        let ftc = C.failure_to_commute ~depth in
        Format.printf "%a@."
          Spec.Classify.pp_table
          (K.classify ~title:(name ^ ": failure-to-commute (commutativity-based conflicts)")
             (Spec.Relation.pred ftc));
        let hybrid = Spec.Relation.symmetric_closure inv in
        Format.printf
          "hybrid conflicts vs commutativity conflicts: %s@.@."
          (if Spec.Relation.equal hybrid ftc then "equal"
           else if Spec.Relation.proper_subset hybrid ftc then
             "hybrid strictly finer (more concurrency)"
           else if Spec.Relation.proper_subset ftc hybrid then
             "commutativity strictly finer (invalidated-by is not minimal here)"
           else "incomparable") )
  in
  [
    entry "file" (module Adt.File_adt) 3;
    entry "queue" (module Adt.Fifo_queue) 3;
    entry "semiqueue" (module Adt.Semiqueue) 3;
    entry "account" (module Adt.Account) 3;
    entry "counter" (module Adt.Counter) 2;
    entry "directory" (module Adt.Directory) 2;
    entry "log" (module Adt.Log_adt) 3;
    entry "bounded-buffer" (module Adt.Bounded_buffer) 3;
  ]

let derive_cmd id =
  let entries =
    match id with
    | None -> derive_registry
    | Some name -> (
      match List.assoc_opt name derive_registry with
      | Some f -> [ (name, f) ]
      | None ->
        Format.eprintf "unknown type %S (use %s)@." name
          (String.concat ", " (List.map fst derive_registry));
        exit 2)
  in
  List.iter (fun (_, f) -> f ()) entries

(* Recovery audit: parse the log(s), recover every declared object
   through its checkpoint, cross-check against the reference replay.
   Non-zero exit on any mismatch — the contract the CI crash-smoke job
   keys on after killing a durable run. *)
let recover_cmd path =
  let files =
    if Sys.is_directory path then
      Sys.readdir path |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".wal")
      |> List.sort String.compare
      |> List.map (Filename.concat path)
    else [ path ]
  in
  if files = [] then begin
    Format.eprintf "no .wal files under %s@." path;
    exit 2
  end;
  (* Coordinator decision logs hold no objects; they resolve the other
     logs' in-doubt 2PC branches (commit at the decided timestamp,
     presumed abort otherwise). *)
  let dlogs, wals =
    List.partition (fun f -> Filename.check_suffix f "decisions.wal") files
  in
  let decisions = List.concat_map Dist.Decision_log.read dlogs in
  List.iter
    (fun f ->
      Format.printf "== decision log %s: %d retained decision(s) ==@." f
        (List.length (Dist.Decision_log.read f)))
    dlogs;
  let decided = if dlogs = [] then None else Some (fun g -> List.assoc_opt g decisions) in
  let all_ok =
    List.fold_left
      (fun acc file ->
        Format.printf "== recover %s ==@." file;
        let report = Sim.Durable.verify_file ?decided file in
        Format.printf "%a@." Sim.Durable.pp_report report;
        acc && Sim.Durable.ok report)
      true wals
  in
  if not all_ok then exit 1

let crash_cmd quick seed dir group_commit domains txns think_us shards cross_pct =
  Runtime.Backoff.set_seed seed;
  let scale =
    if quick then Sim.Experiments.quick_scale else scale_of domains txns think_us
  in
  ensure_dir dir;
  Obs.Metrics.annotate "run.seed" (string_of_int seed);
  if shards > 1 then begin
    (* The sharded mode runs the 2PC kill-point matrix instead: a
       coordinator crash at every protocol milestone, in both
       group-commit modes, recovery checked against the decision log. *)
    let m = Sim.Shard_crash.run ~shards ~cross_pct ~dir () in
    Format.printf "%a@." Sim.Shard_crash.pp m;
    if not (Sim.Shard_crash.ok m) then exit 1
  end
  else begin
    let runs = Sim.Crash_exp.all ~scale ~seed ~group_commit ~dir () in
    List.iter (fun r -> Format.printf "%a@." Sim.Crash_exp.pp_run r) runs;
    if not (List.for_all Sim.Crash_exp.ok runs) then exit 1
  end

(* ------------------------------------------------------------------ *)
(* profile: span-profiling run — flight recorder on, SLO verdicts out  *)

let profile_cmd quick seed wal_dir group_commit domains txns think_us shards cross_pct
    detail out report_file slo_specs chrome =
  Obs.Control.set_enabled true;
  Runtime.Backoff.set_seed seed;
  let targets =
    match Obs.Profile.targets_of_specs slo_specs with
    | Ok ts -> ts
    | Error e ->
      Format.eprintf "hcc profile: %s@." e;
      exit 2
  in
  let scale =
    if quick then Sim.Experiments.quick_scale else scale_of domains txns think_us
  in
  Option.iter ensure_dir wal_dir;
  (match Filename.dirname out with "" | "." -> () | d -> ensure_dir d);
  (* Cross-shard spans need shards to cross; profile defaults to 3. *)
  let shards = if shards > 1 then shards else 3 in
  let r =
    Sim.Profile_run.run ~scale ~seed ?wal_dir ~fsync:(Option.is_some wal_dir)
      ~group_commit ~detail ~shards ~cross_pct ~path:out ()
  in
  Format.printf
    "profiled %d txns (%d cross-shard 2PC) across %d shards in %.2fs@.recorder: %d \
     records emitted, %d lost, file %s@.@."
    r.Sim.Profile_run.p_committed r.Sim.Profile_run.p_cross_commits shards
    r.Sim.Profile_run.p_wall r.Sim.Profile_run.p_emitted r.Sim.Profile_run.p_lost out;
  (* The printed report comes from the offline decode of the file just
     written — one invocation exercises the whole emit → flush → decode
     → report pipeline, which is what CI's profile-smoke job keys on. *)
  let agg, records, meta, tail = Sim.Profile_run.decode_file out in
  (match tail with
  | Obs.Flight.Clean -> ()
  | Obs.Flight.Torn off -> Format.printf "note: torn tail at byte %d (ignored)@." off);
  let report = Obs.Profile.report agg in
  Format.printf "%a@." Obs.Profile.pp_report report;
  Option.iter
    (fun file ->
      with_out_file file (fun ppf -> Obs.Profile.pp_report ppf report);
      Format.printf "wrote report to %s@." file)
    report_file;
  (match chrome with
  | Some file ->
    with_out_file file (fun ppf ->
        Obs.Export.chrome_spans ppf
          (Obs.Profile.chrome_slices ~lookup:(Obs.Profile.meta_lookup meta) records));
    Format.printf "wrote span timeline to %s (open in ui.perfetto.dev)@." file
  | None -> ());
  if targets <> [] then begin
    let verdicts = Obs.Profile.check report targets in
    Format.printf "%a@." Obs.Profile.pp_verdicts verdicts;
    if Obs.Profile.breached verdicts then exit 1
  end

(* ------------------------------------------------------------------ *)
(* serve: long-running workload with the introspection server attached *)

(* Sharded serve: N managers on disjoint timestamp stripes, the 2PC
   coordinator between them, and the sampler continuously re-running the
   cross-shard audit over the live per-shard rings (sound on partial
   windows, so no epoch rotation is needed).  /metrics, /locks and
   /horizon aggregate every shard's instruments under shard labels. *)
let serve_sharded quick port duration period_ms seed wal_dir group_commit domains think_us
    inject shards cross_pct =
  Obs.Control.set_enabled true;
  ignore (Obs.Control.install_sigusr2 ());
  Runtime.Backoff.set_seed seed;
  Obs.Metrics.annotate "run.seed" (string_of_int seed);
  Obs.Metrics.annotate "run.mode" "serve-sharded";
  Obs.Metrics.annotate "run.shards" (string_of_int shards);
  Option.iter ensure_dir wal_dir;
  let config =
    {
      Sim.Shard_live.default_config with
      shards;
      cross_pct;
      seed;
      domains = (if quick then 2 else domains);
      think_us = (if quick then 50. else think_us);
    }
  in
  let duration = if quick && duration = 0. then 10. else duration in
  let live = Sim.Shard_live.start ?wal_dir ~group_commit config in
  let sampler = Obs.Sampler.start ~period_ms:(max 50 (period_ms / 4)) () in
  (* Flight recorder at the always-on tier (span marks only); its
     flusher feeds the online span aggregator behind /slo. *)
  let slo_agg = Obs.Profile.create () in
  let flight = Obs.Flight.start ~observer:(Obs.Profile.feed slo_agg) () in
  let routes =
    ( "/waitfor",
      fun _ ->
        Obs.Server.respond_json
          (Obs.Waitfor.to_json (Obs.Waitfor.analyze (Sim.Shard_live.stitched live))) )
    :: Obs.Server.default_routes ~slo:(fun () -> Obs.Profile.to_json slo_agg) ()
  in
  let server = Obs.Server.start ~port ~routes () in
  Format.printf
    "hcc: serving sharded introspection on http://127.0.0.1:%d@.  endpoints: /metrics \
     /locks /horizon /waitfor /slo /health /control (per-shard, shard-labelled)@.  \
     workload: %d shards, %d domains, %.0f%% cross-shard, think %.0fus%s@.%!"
    (Obs.Server.port server) shards config.Sim.Shard_live.domains cross_pct
    config.Sim.Shard_live.think_us
    (if duration > 0. then Printf.sprintf ", running %.0fs" duration
     else " (Ctrl-C to stop)");
  let stop_requested = Atomic.make false in
  (try
     Sys.set_signal Sys.sigint
       (Sys.Signal_handle (fun _ -> Atomic.set stop_requested true))
   with Invalid_argument _ | Sys_error _ -> ());
  let deadline = if duration > 0. then Some (Unix.gettimeofday () +. duration) else None in
  let injected = ref false in
  let finished () =
    Atomic.get stop_requested
    || match deadline with Some d -> Unix.gettimeofday () > d | None -> false
  in
  while not (finished ()) do
    Unix.sleepf (float_of_int period_ms /. 1000.);
    if inject && not !injected then begin
      injected := Sim.Shard_live.inject_violation live;
      if !injected then
        Format.printf
          "hcc: injected a decided-abort commit forgery into shard 0's trace@.%!"
    end
  done;
  Sim.Shard_live.stop live;
  (* One last audit pass over the final (now quiescent) windows. *)
  ignore (Obs.Sampler.run_once ());
  Obs.Sampler.stop sampler;
  Obs.Flight.stop flight;
  Obs.Server.stop server;
  let stats = Sim.Shard_live.stats live in
  Sim.Shard_live.close live;
  Format.printf
    "hcc: %d shards served %d committed (%d cross-shard 2PC), %d aborted attempts, %d \
     cross aborts, %d give-ups@."
    shards stats.Sim.Shard_live.s_committed stats.Sim.Shard_live.s_cross_commits
    stats.Sim.Shard_live.s_aborted stats.Sim.Shard_live.s_cross_aborts
    stats.Sim.Shard_live.s_give_ups;
  if Obs.Sampler.healthy () then Format.printf "audit: clean (0 violations)@."
  else begin
    Format.eprintf "audit: %d violation(s); last: %s@." (Obs.Sampler.violations ())
      (Option.value ~default:"unknown" (Obs.Sampler.last_error ()));
    exit 1
  end

let serve_single quick port duration period_ms seed wal_dir group_commit domains think_us
    inject =
  Obs.Control.set_enabled true;
  ignore (Obs.Control.install_sigusr2 ());
  Runtime.Backoff.set_seed seed;
  Obs.Metrics.annotate "run.seed" (string_of_int seed);
  Obs.Metrics.annotate "run.mode" "serve";
  let wal =
    Option.map
      (fun dir ->
        ensure_dir dir;
        let w = Wal.Log.create ~group_commit (Filename.concat dir "live.wal") in
        Wal.Log.register_introspection w;
        Obs.Metrics.annotate "run.wal" (Wal.Log.path w);
        w)
      wal_dir
  in
  let config =
    if quick then { Sim.Live.default_config with domains = 2; think_us = 50.; seed }
    else { Sim.Live.default_config with domains; think_us; seed }
  in
  let duration = if quick && duration = 0. then 10. else duration in
  let live = Sim.Live.start ?wal config in
  (* Audit several times per rotation so every epoch's replay audit runs
     before the next rotation replaces it. *)
  let sampler = Obs.Sampler.start ~period_ms:(max 50 (period_ms / 4)) () in
  let slo_agg = Obs.Profile.create () in
  let flight = Obs.Flight.start ~observer:(Obs.Profile.feed slo_agg) () in
  let routes =
    ( "/waitfor",
      fun _ ->
        Obs.Server.respond_json
          (Obs.Waitfor.to_json
             (Obs.Waitfor.analyze (Obs.Trace.entries (Sim.Live.current_ring live)))) )
    :: Obs.Server.default_routes ~slo:(fun () -> Obs.Profile.to_json slo_agg) ()
  in
  let server = Obs.Server.start ~port ~routes () in
  Format.printf
    "hcc: serving introspection on http://127.0.0.1:%d@.  endpoints: /metrics /locks \
     /horizon /waitfor /slo /health /control@.  workload: %d domains, think %.0fus, \
     epoch rotation every %dms%s@.%!"
    (Obs.Server.port server) config.Sim.Live.domains config.Sim.Live.think_us period_ms
    (if duration > 0. then Printf.sprintf ", running %.0fs" duration else " (Ctrl-C to stop)");
  let stop_requested = Atomic.make false in
  (try
     Sys.set_signal Sys.sigint
       (Sys.Signal_handle (fun _ -> Atomic.set stop_requested true))
   with Invalid_argument _ | Sys_error _ -> ());
  let deadline = if duration > 0. then Some (Unix.gettimeofday () +. duration) else None in
  let injected = ref false in
  let finished () =
    Atomic.get stop_requested
    || match deadline with Some d -> Unix.gettimeofday () > d | None -> false
  in
  while not (finished ()) do
    Unix.sleepf (float_of_int period_ms /. 1000.);
    if inject && not !injected then begin
      injected := Sim.Live.inject_violation live;
      if !injected then Format.printf "hcc: injected a forged double-dequeue into the live trace@.%!"
    end;
    Sim.Live.rotate live
  done;
  Sim.Live.stop live;
  (* Drain the epoch pipeline: each rotation promotes one retired epoch
     to auditable, and the audit must run before the next rotation
     replaces it. *)
  Sim.Live.rotate live;
  ignore (Obs.Sampler.run_once ());
  Sim.Live.rotate live;
  ignore (Obs.Sampler.run_once ());
  Obs.Sampler.stop sampler;
  Obs.Flight.stop flight;
  Obs.Server.stop server;
  Option.iter Wal.Log.close wal;
  let stats = Runtime.Manager.stats (Sim.Live.manager live) in
  Format.printf
    "hcc: served %d epochs; %d committed, %d aborted attempts, %d give-ups@."
    (Sim.Live.epochs live) stats.Runtime.Manager.committed
    stats.Runtime.Manager.aborted (Sim.Live.give_ups live);
  if Obs.Sampler.healthy () then Format.printf "audit: clean (0 violations)@."
  else begin
    Format.eprintf "audit: %d violation(s); last: %s@." (Obs.Sampler.violations ())
      (Option.value ~default:"unknown" (Obs.Sampler.last_error ()));
    exit 1
  end

let serve_cmd quick port duration period_ms seed wal_dir group_commit domains think_us
    inject shards cross_pct =
  if shards > 1 then
    serve_sharded quick port duration period_ms seed wal_dir group_commit domains think_us
      inject shards cross_pct
  else
    serve_single quick port duration period_ms seed wal_dir group_commit domains think_us
      inject

(* ------------------------------------------------------------------ *)
(* top: terminal dashboard polling a serve process                     *)

let get_ok ~port path =
  match Obs.Server.http_get ~port path with
  | Ok (200, body) -> body
  | Ok (status, _) ->
    Format.eprintf "hcc top: GET %s returned %d@." path status;
    exit 1
  | Error e ->
    Format.eprintf "hcc top: GET %s failed: %s@." path e;
    exit 1

let parse_or_die what = function
  | Ok v -> v
  | Error e ->
    Format.eprintf "hcc top: cannot parse %s: %s@." what e;
    exit 1

let metric series name = Option.value ~default:0. (Obs.Expose.find name series)

let top_tick ~port ~prev_commits ~dt =
  let series = parse_or_die "/metrics" (Obs.Expose.parse (get_ok ~port "/metrics")) in
  let horizon = parse_or_die "/horizon" (Obs.Json.parse (get_ok ~port "/horizon")) in
  let locks = parse_or_die "/locks" (Obs.Json.parse (get_ok ~port "/locks")) in
  let health_status, health_body =
    match Obs.Server.http_get ~port "/health" with
    | Ok (status, body) -> (status, String.trim body)
    | Error e ->
      Format.eprintf "hcc top: GET /health failed: %s@." e;
      exit 1
  in
  let commits = metric series "hcc_txn_commits_total" in
  let rate =
    match prev_commits with
    | Some prev when dt > 0. -> (commits -. prev) /. dt
    | _ -> 0.
  in
  Format.printf "hcc top — 127.0.0.1:%d   health: %s@." port
    (if health_status = 200 then "ok" else "DEGRADED (" ^ health_body ^ ")");
  Format.printf
    "txn/s %8.0f   commits %8.0f   aborts %6.0f   retries %6.0f   waiting %3.0f@." rate
    commits
    (metric series "hcc_txn_aborts_total")
    (metric series "hcc_retry_retries_total")
    (metric series "hcc_retry_waiting");
  Format.printf
    "audit: passes %.0f   violations %.0f   cycles %.0f   windows lost %.0f   lag %.2fs \
     (ring lost %.0f)@."
    (metric series "hcc_audit_passes_total")
    (metric series "hcc_audit_violations_total")
    (metric series "hcc_audit_cycles_total")
    (metric series "hcc_audit_window_lost_total")
    (metric series "hcc_audit_lag_seconds")
    (metric series "hcc_trace_window_lost");
  Format.printf "flight: emitted %.0f   lost %.0f@."
    (metric series "hcc_flight_emitted_records")
    (metric series "hcc_flight_lost_records");
  (* Phase pane, fed by /slo (absent on pre-recorder servers: skipped). *)
  (match Obs.Server.http_get ~port "/slo" with
  | Ok (200, body) -> (
    match Obs.Json.parse body with
    | Error _ -> ()
    | Ok slo ->
      let stat_of name j =
        Option.bind (Obs.Json.member name j) (fun s ->
            match
              ( Option.bind (Obs.Json.member "count" s) Obs.Json.to_int,
                Option.bind (Obs.Json.member "p99_s" s) Obs.Json.to_float )
            with
            | Some count, Some p99 -> Some (count, p99)
            | _ -> None)
      in
      let local = stat_of "local" slo and cross = stat_of "cross" slo in
      let pair = function
        | Some (count, p99) when count > 0 -> Printf.sprintf "%.2fms (n=%d)" (p99 *. 1e3) count
        | _ -> "-"
      in
      Format.printf "spans: local p99 %s   cross p99 %s   open %d   aborted %d@."
        (pair local) (pair cross)
        (Option.value ~default:0 (Option.bind (Obs.Json.member "open" slo) Obs.Json.to_int))
        (Option.value ~default:0
           (Option.bind (Obs.Json.member "aborts" slo) Obs.Json.to_int));
      (* Share of the end-to-end p99 each phase accounts for: where a
         slow tail lives (lock waits vs the fsync barrier vs execution). *)
      let total_p99 =
        let v = function Some (c, p) when c > 0 -> p | _ -> 0. in
        Float.max (v local) (v cross)
      in
      (match Obs.Json.member "phases" slo with
      | Some (Obs.Json.Obj phases) when total_p99 > 0. ->
        let cells =
          List.filter_map
            (fun (name, st) ->
              match
                ( Option.bind (Obs.Json.member "count" st) Obs.Json.to_int,
                  Option.bind (Obs.Json.member "p99_s" st) Obs.Json.to_float )
              with
              | Some c, Some p99 when c > 0 && p99 > 0. ->
                Some
                  (Printf.sprintf "%s %.0f%% (%.2fms)" name
                     (100. *. p99 /. total_p99) (p99 *. 1e3))
              | _ -> None)
            phases
        in
        if cells <> [] then Format.printf "phase p99: %s@." (String.concat "   " cells)
      | _ -> ()))
  | Ok _ | Error _ -> ());
  let int_member name j = Option.bind (Obs.Json.member name j) Obs.Json.to_int in
  (match Obs.Json.to_list horizon with
  | Some rows when rows <> [] ->
    Format.printf "horizon:@.";
    List.iter
      (fun row ->
        match Option.bind (Obs.Json.member "object" row) Obs.Json.to_str with
        | None -> ()
        | Some name ->
          let field n =
            match int_member n row with Some v -> string_of_int v | None -> "-"
          in
          if int_member "clock_lag" row <> None then
            Format.printf "  %-16s horizon %-6s clock %-6s lag %-4s remembered %-4s live_ops %s@."
              name (field "horizon") (field "clock") (field "clock_lag")
              (field "remembered") (field "live_ops")
          else
            Format.printf "  %-16s clock %-6s stable %-6s inflight %s@." name
              (field "clock") (field "stable_time") (field "inflight"))
      rows
  | _ -> ());
  (match Obs.Json.to_list locks with
  | Some rows when rows <> [] ->
    Format.printf "locks:@.";
    List.iter
      (fun row ->
        match Option.bind (Obs.Json.member "object" row) Obs.Json.to_str with
        | None -> ()
        | Some name ->
          let active =
            match Option.bind (Obs.Json.member "active" row) Obs.Json.to_list with
            | Some l -> List.length l
            | None -> 0
          in
          let field n =
            match int_member n row with Some v -> string_of_int v | None -> "-"
          in
          Format.printf "  %-16s active %-4d conflicts %-6s blocked %s@." name active
            (field "conflicts") (field "blocked"))
      rows
  | _ -> ());
  Format.printf "%!";
  commits

let top_cmd port interval iterations =
  let interactive = iterations <> 1 && Unix.isatty Unix.stdout in
  let prev = ref None in
  let i = ref 0 in
  let continue () = iterations <= 0 || !i < iterations in
  while continue () do
    if !i > 0 then Unix.sleepf interval;
    if interactive then print_string "\027[2J\027[H";
    let dt = if !i = 0 then 0. else interval in
    prev := Some (top_tick ~port ~prev_commits:!prev ~dt);
    incr i
  done

let history_cmd () =
  let module Q = Adt.Fifo_queue in
  let module L = Hybrid.Lock_machine.Make (Q) in
  let module At = Model.Atomicity.Make (Q) in
  let module H = L.H in
  let p = Model.Txn.make ~label:"P" 1 in
  let q = Model.Txn.make ~label:"Q" 2 in
  let r = Model.Txn.make ~label:"R" 3 in
  let history : H.t =
    [
      H.Invoke (p, Q.Enq 1);
      H.Respond (p, Q.Ok);
      H.Invoke (q, Q.Enq 2);
      H.Respond (q, Q.Ok);
      H.Commit (p, 2);
      H.Commit (q, 1);
      H.Invoke (r, Q.Deq);
      H.Respond (r, Q.Val 2);
      H.Invoke (r, Q.Deq);
      H.Respond (r, Q.Val 1);
      H.Commit (r, 5);
    ]
  in
  Format.printf "The paper's Section 3.2 FIFO-queue history:@.%a@.@." H.pp history;
  Format.printf "well-formed:                        %s@."
    (match H.well_formed history with Ok () -> "yes" | Error e -> "NO: " ^ e);
  Format.printf "accepted by LOCK (hybrid, fig 4-2): %b@."
    (L.accepts ~conflict:Q.conflict_hybrid history);
  Format.printf "accepted by LOCK (commutativity):   %b   <- concurrent Enqs conflict there@."
    (L.accepts ~conflict:Q.conflict_commutativity history);
  Format.printf "hybrid atomic:                      %b@." (At.hybrid_atomic history);
  Format.printf "online hybrid atomic:               %b@." (At.online_hybrid_atomic history)

open Cmdliner

let id_arg =
  Arg.(value & opt (some string) None & info [ "id" ] ~docv:"ID" ~doc:"Select one item.")

let verbose_arg = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Show notes and diffs.")

let domains_arg =
  Arg.(value & opt int 4 & info [ "domains" ] ~docv:"N" ~doc:"Concurrent domains.")

let txns_arg =
  Arg.(value & opt int 100 & info [ "txns" ] ~docv:"N" ~doc:"Transactions per domain.")

let think_arg =
  Arg.(
    value
    & opt float 100.
    & info [ "think-us" ] ~docv:"US" ~doc:"Think time between operations (microseconds).")

let deterministic_arg =
  Arg.(
    value & flag
    & info [ "deterministic" ]
        ~doc:"Run under the virtual-time simulator: exactly reproducible results.")

let quick_arg =
  Arg.(
    value & flag
    & info [ "quick" ]
        ~doc:"Use the small test scale (2 domains x 20 txns); overrides the size options.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Dump the observability metrics registry and trace counters after the run.")

let seed_arg =
  Arg.(
    value & opt int 0
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Workload seed: shifts the deterministic operation-value sequence so reruns \
           explore different workloads reproducibly.  Recorded in the metrics dump.")

let wal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "wal" ] ~docv:"DIR"
        ~doc:
          "Run durably: write a write-ahead intentions log to $(docv)/experiments.wal \
           (commit records fsynced before commit events are distributed).  Verify it \
           afterwards with the $(b,recover) subcommand.")

let group_commit_arg =
  Arg.(
    value
    & vflag true
        [
          ( true,
            info [ "group-commit" ]
              ~doc:
                "Batch commit-record fsyncs (the default): the first committer to reach \
                 the sync barrier fsyncs once for every commit record appended so far; \
                 concurrent committers wait for that barrier instead of issuing their \
                 own." );
          ( false,
            info [ "no-group-commit" ]
              ~doc:"Serialize fsyncs: every committer issues its own (the pre-batching \
                    behaviour, kept as a baseline)." );
        ])

let shards_arg =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Shard the system into $(docv) managers on disjoint timestamp stripes, with \
           cross-shard transactions running presumed-abort two-phase commit through the \
           coordinator.  1 (the default) keeps the single-manager paths; \
           $(b,experiments --id shard) defaults to 4; $(b,serve)/$(b,crash) switch to \
           their sharded modes when $(docv) > 1.")

let cross_pct_arg =
  Arg.(
    value & opt float 10.
    & info [ "cross-shard-pct" ] ~docv:"P"
        ~doc:
          "Percentage of transactions spanning two shards (a coordinator transfer \
           between a home and a partner account).  Only meaningful with \
           $(b,--shards) > 1.")

let key_skew_arg =
  Arg.(
    value & opt float 0.
    & info [ "key-skew" ] ~docv:"S"
        ~doc:
          "Zipf skew of the cell-key draw in the directory experiment: 0 is uniform \
           (fully partitionable traffic), larger values concentrate operations on key 0 \
           (contended-single-key traffic).  Seeded from $(b,--seed).")

let cells_arg =
  Arg.(
    value & opt int 8
    & info [ "cells" ] ~docv:"N"
        ~doc:"Cell count of the cell-locked machine in the directory experiment.")

let partition_gate_arg =
  Arg.(
    value & flag
    & info [ "partition-gate" ]
        ~doc:
          "Assert the cell-locking claim and exit non-zero if it fails: on the directory \
           experiment's table, the key-blind whole-object machine must fire at least 5x \
           the conflict mass of the cell-locked machine.  Forces observability on and \
           pins the run to the gate scale (4 domains x 150 txns, think 20us), overriding \
           the size options.")

let figures_t =
  Cmd.v
    (Cmd.info "figures" ~doc:"Regenerate the paper's figures from the specifications")
    Term.(const figures_cmd $ id_arg $ verbose_arg)

let experiments_t =
  Cmd.v
    (Cmd.info "experiments" ~doc:"Run the measured concurrency experiments")
    Term.(
      const experiments_cmd $ id_arg $ deterministic_arg $ quick_arg $ metrics_arg
      $ seed_arg $ wal_arg $ group_commit_arg $ domains_arg $ txns_arg $ think_arg
      $ key_skew_arg $ cells_arg $ partition_gate_arg $ shards_arg $ cross_pct_arg)

let conflicts_arg =
  Arg.(
    value & flag
    & info [ "conflicts" ]
        ~doc:
          "Print per-object conflict matrices: which (requested, held) operation pairs \
           fired refusals, how often, and the blocked time each cost, plus the \
           hybrid-vs-commutativity fired-conflict-mass comparison.")

let waitfor_arg =
  Arg.(
    value & flag
    & info [ "waitfor" ]
        ~doc:
          "Print the waits-for graph audit: wait-die must keep the graph acyclic, so any \
           cycle fails the run; also reports per-transaction blocked time and abort \
           cascades.")

let chrome_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "chrome" ] ~docv:"FILE"
        ~doc:
          "Write the run's trace window as Chrome trace_event JSON to $(docv) (load in \
           chrome://tracing or ui.perfetto.dev).")

let metrics_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-json" ] ~docv:"FILE"
        ~doc:"Write the metrics registry as line-oriented JSON to $(docv).")

let trace_t =
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run the experiments with observability forced on and analyze/export the trace: \
          conflict attribution, wait-for audit, Chrome timeline, metrics JSON.  Exits \
          non-zero on an atomicity violation or a waits-for cycle.")
    Term.(
      const trace_cmd $ id_arg $ quick_arg $ conflicts_arg $ waitfor_arg $ chrome_arg
      $ metrics_json_arg $ seed_arg $ domains_arg $ txns_arg $ think_arg $ key_skew_arg
      $ cells_arg)

let history_t =
  Cmd.v
    (Cmd.info "history" ~doc:"Replay the paper's Section 3.2 worked history")
    Term.(const history_cmd $ const ())

let derive_t =
  Cmd.v
    (Cmd.info "derive"
       ~doc:
         "Derive conflict tables for any shipped data type (including the extension           types) from its serial specification")
    Term.(const derive_cmd $ id_arg)

let recover_path_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"PATH" ~doc:"A .wal file, or a directory of .wal files.")

let recover_t =
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Recover every object from a write-ahead log and audit the result: recovery \
          through the latest checkpoint must match an independent replay of the \
          committed prefix from the initial state.  Exits non-zero on any mismatch or \
          unrecoverable corruption; a torn tail is tolerated (that is what a crash \
          leaves).")
    Term.(const recover_cmd $ recover_path_arg)

let crash_dir_arg =
  Arg.(
    value
    & opt string "_crash"
    & info [ "dir" ] ~docv:"DIR" ~doc:"Directory for the experiment logs.")

let crash_t =
  Cmd.v
    (Cmd.info "crash"
       ~doc:
         "Run the crash-recovery experiments: concurrent durable workloads, then a \
          simulated kill -9 at every deterministic kill point of the finished log \
          (around each commit record, mid-append, torn tail).  Each crash image must \
          recover exactly its committed prefix.  With $(b,--shards) > 1, runs the 2PC \
          kill-point matrix instead: a coordinator crash at every protocol milestone \
          (before prepare, each vote, decision durable, each ack) in both group-commit \
          modes, with recovery checked against the decision log.  Exits non-zero on any \
          failure.")
    Term.(
      const crash_cmd $ quick_arg $ seed_arg $ crash_dir_arg $ group_commit_arg
      $ domains_arg $ txns_arg $ think_arg $ shards_arg $ cross_pct_arg)

let profile_detail_arg =
  Arg.(
    value
    & vflag true
        [
          ( true,
            info [ "detail" ]
              ~doc:
                "Record per-ADT-op detail (level 2, the default here): adds the \
                 per-operation latency rows to the report." );
          ( false,
            info [ "marks-only" ]
              ~doc:
                "Record span phase marks only (level 1, the always-on deployment tier \
                 whose throughput cost the flight-overhead bench gates at < 5%)." );
        ])

let profile_out_arg =
  Arg.(
    value
    & opt string "_profile/flight.bin"
    & info [ "out" ] ~docv:"FILE" ~doc:"Flight-recorder output file.")

let profile_report_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "report" ] ~docv:"FILE" ~doc:"Also write the latency report to $(docv).")

let slo_arg =
  Arg.(
    value & opt_all string []
    & info [ "slo" ] ~docv:"METRIC:QUANTILE:LIMIT"
        ~doc:
          "SLO target, repeatable: $(docv) is e.g. $(b,local:p99:5ms), \
           $(b,cross:p999:50ms) or $(b,lock_wait:p90:800us).  Metrics are $(b,local), \
           $(b,cross) or a phase name; quantiles p50/p90/p99/p999/max; limits take \
           us/ms/s suffixes.  Any breached target makes the exit code non-zero.")

let profile_t =
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Profile transaction spans under the binary flight recorder: run the sharded \
          workload (local credit/debit plus cross-shard 2PC transfers) with per-domain \
          ring recording on, then decode the flight file offline and report per-phase \
          and per-ADT-op latency quantiles (p50/p99/p999) for single- and cross-shard \
          transactions.  $(b,--slo) targets turn the tail into a gate: any breach exits \
          non-zero.  $(b,--chrome) exports a phase-nested span timeline.")
    Term.(
      const profile_cmd $ quick_arg $ seed_arg $ wal_arg $ group_commit_arg $ domains_arg
      $ txns_arg $ think_arg $ shards_arg $ cross_pct_arg $ profile_detail_arg
      $ profile_out_arg $ profile_report_arg $ slo_arg $ chrome_arg)

let port_arg default =
  Arg.(
    value & opt int default
    & info [ "port" ] ~docv:"PORT" ~doc:"Introspection server TCP port (0 = ephemeral).")

let duration_arg =
  Arg.(
    value & opt float 0.
    & info [ "duration" ] ~docv:"SECONDS"
        ~doc:
          "Stop after this many seconds (0 = run until Ctrl-C; $(b,--quick) defaults \
           to 10s).")

let period_arg =
  Arg.(
    value & opt int 1000
    & info [ "period-ms" ] ~docv:"MS"
        ~doc:
          "Epoch rotation period: how often the workload's objects are retired to the \
           online auditor.  The audit sampler ticks at a quarter of this.")

let inject_arg =
  Arg.(
    value & flag
    & info [ "inject-violation" ]
        ~doc:
          "Forge a double-dequeue in the live trace once the workload has committed a \
           dequeue.  The online auditor must flag it: the violations counter rises, \
           /health degrades, and the process exits non-zero — the smoke test that the \
           auditor is actually watching.")

let serve_t =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run a continuous mixed workload (FIFO queue, SemiQueue, Account under the \
          hybrid relations) with the live-introspection HTTP server attached: \
          Prometheus /metrics, JSON /locks /horizon /waitfor, /health, /control.  An \
          always-on sampler replay-checks each retired workload epoch and audits the \
          wait-for graph; any violation degrades /health and fails the exit code.  With \
          $(b,--shards) > 1 the workload runs sharded (per-shard managers, WALs and \
          shard-labelled instruments; cross-shard 2PC transfers at \
          $(b,--cross-shard-pct)) and the sampler runs the cross-shard atomicity audit \
          continuously.")
    Term.(
      const serve_cmd $ quick_arg $ port_arg 9090 $ duration_arg $ period_arg $ seed_arg
      $ wal_arg $ group_commit_arg $ domains_arg $ think_arg $ inject_arg $ shards_arg
      $ cross_pct_arg)

let interval_arg =
  Arg.(
    value & opt float 1.
    & info [ "interval" ] ~docv:"SECONDS" ~doc:"Seconds between refreshes.")

let iterations_arg =
  Arg.(
    value & opt int 0
    & info [ "iterations" ] ~docv:"N"
        ~doc:
          "Stop after N refreshes (0 = run until interrupted).  $(b,--iterations 1) \
           prints one snapshot without clearing the screen — usable as a scrape/parse \
           check in CI.")

let top_t =
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Terminal dashboard for a running $(b,serve) process: polls /metrics, /locks, \
          /horizon, /slo and /health over HTTP, parses its own exposition format, and \
          shows throughput, audit verdicts, the span phase breakdown (share of the p99 \
          each phase accounts for), per-object horizon lag and lock tables.  Exits \
          non-zero if a required endpoint is unreachable or fails to parse (/slo is \
          optional: servers without the flight recorder skip that pane).")
    Term.(const top_cmd $ port_arg 9090 $ interval_arg $ iterations_arg)

let main =
  Cmd.group
    (Cmd.info "hybrid-cc" ~version:"1.0.0"
       ~doc:
         "Reproduction of Herlihy & Weihl, \"Hybrid Concurrency Control for Abstract \
          Data Types\" (1988)")
    [
      figures_t;
      experiments_t;
      trace_t;
      history_t;
      derive_t;
      recover_t;
      crash_t;
      profile_t;
      serve_t;
      top_t;
    ]

let () = exit (Cmd.eval main)
