(* Producer/consumer pipelines: FIFO Queue vs SemiQueue.

   Run with: dune exec examples/producer_consumer.exe

   The paper's motivating observation (Section 4.1): under the hybrid
   protocol, concurrent producers can enqueue on a FIFO queue even though
   enqueues do not commute — the dequeue order of concurrently enqueued
   items is decided by commit timestamps.  Dequeueing, however, is a
   serial bottleneck under the FIFO specification (Figure 4-2).  The
   SemiQueue (Figure 4-4) weakens removal to "some present item", so
   concurrent consumers also proceed in parallel.

   This example runs the same producer/consumer pipeline over both types
   and prints the conflict counts: the FIFO queue's consumers collide,
   the SemiQueue's do not.  It also demonstrates [`Blocked] handling: a
   consumer that finds the queue empty simply retries until a producer
   commits (Deq/Rem are partial operations). *)

module Fifo = Adt.Fifo_queue
module Semi = Adt.Semiqueue
module FifoObj = Runtime.Atomic_obj.Make (Fifo)
module SemiObj = Runtime.Atomic_obj.Make (Semi)

let producers = 2
let consumers = 2
let items_per_producer = 150

let run_fifo () =
  let mgr = Runtime.Manager.create () in
  let q = FifoObj.create ~name:"fifo" ~conflict:Fifo.conflict_hybrid () in
  let produce d =
    Domain.spawn (fun () ->
        for k = 0 to items_per_producer - 1 do
          Runtime.Manager.run mgr (fun txn ->
              ignore (FifoObj.invoke q txn (Fifo.Enq ((1000 * d) + k))))
        done)
  in
  let consumed = Array.make consumers [] in
  let consume c =
    Domain.spawn (fun () ->
        let quota = items_per_producer * producers / consumers in
        for _ = 1 to quota do
          Runtime.Manager.run mgr (fun txn ->
              (* retries while empty: Deq is a partial operation *)
              match FifoObj.invoke ~retries:5000 q txn Fifo.Deq with
              | Fifo.Val v -> consumed.(c) <- v :: consumed.(c)
              | Fifo.Ok -> assert false)
        done)
  in
  let ps = List.init producers produce in
  let cs = List.init consumers consume in
  List.iter Domain.join ps;
  List.iter Domain.join cs;
  let st = FifoObj.stats q in
  Printf.printf "FIFO queue:  %4d items moved, %5d lock conflicts, %4d blocked-on-empty\n"
    (producers * items_per_producer) st.FifoObj.conflicts st.FifoObj.blocked;
  (* Each consumer's dequeues carry increasing commit timestamps, and
     timestamp-ordered dequeues follow queue order, so within any one
     consumer the items of any one producer must appear in FIFO order.
     (Across consumers no ordering is implied.) *)
  Array.iteri
    (fun c stream ->
      let seen = List.rev stream in
      let ok =
        List.for_all
          (fun d ->
            let mine = List.filter (fun v -> v / 1000 = d) seen in
            mine = List.sort compare mine)
          (List.init producers Fun.id)
      in
      Printf.printf "  consumer %d saw every producer's items in FIFO order: %b\n" c ok)
    consumed

let run_semi () =
  let mgr = Runtime.Manager.create () in
  let q = SemiObj.create ~name:"semi" ~conflict:Semi.conflict_hybrid () in
  let produce d =
    Domain.spawn (fun () ->
        for k = 0 to items_per_producer - 1 do
          Runtime.Manager.run mgr (fun txn ->
              ignore (SemiObj.invoke q txn (Semi.Ins ((1000 * d) + k))))
        done)
  in
  let consume _ =
    Domain.spawn (fun () ->
        let quota = items_per_producer * producers / consumers in
        for _ = 1 to quota do
          Runtime.Manager.run mgr (fun txn ->
              match SemiObj.invoke ~retries:5000 q txn Semi.Rem with
              | Semi.Val _ -> ()
              | Semi.Ok -> assert false)
        done)
  in
  let ps = List.init producers produce in
  let cs = List.init consumers consume in
  List.iter Domain.join ps;
  List.iter Domain.join cs;
  let st = SemiObj.stats q in
  Printf.printf "SemiQueue:   %4d items moved, %5d lock conflicts, %4d blocked-on-empty\n"
    (producers * items_per_producer) st.SemiObj.conflicts st.SemiObj.blocked

let () =
  run_fifo ();
  run_semi ();
  print_endline "note: the SemiQueue's nondeterministic Rem lets concurrent consumers";
  print_endline "      pick different items instead of fighting over the unique front."
