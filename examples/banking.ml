(* Banking: multi-object transactions with atomic commitment.

   Run with: dune exec examples/banking.exe

   A small bank: N accounts, concurrent transfer transactions (debit one
   account, credit another — two objects, one atomic transaction) racing
   against an interest-posting transaction that Posts to every account.

   Under the hybrid relation (Figure 4-5), Posts do not conflict with
   Credits or successful Debits, so interest posting runs concurrently
   with the transfer traffic; commutativity-based locking would serialize
   it against everything (Figure 7-1).

   The invariant checked at the end: money is conserved by transfers, and
   interest was applied atomically (the total is exactly what a serial
   execution in commit-timestamp order produces). *)

module Account = Adt.Account
module Obj = Runtime.Atomic_obj.Make (Account)
module Avalon = Runtime.Avalon_account

let n_accounts = 8
let transfers_per_domain = 100
let opening = 1_000

let () =
  let mgr = Runtime.Manager.create () in
  let accounts =
    Array.init n_accounts (fun i ->
        Obj.create
          ~name:(Printf.sprintf "acct-%d" i)
          ~conflict:Account.conflict_hybrid ())
  in
  (* Seed every account. *)
  Array.iter
    (fun acc ->
      Runtime.Manager.run mgr (fun txn ->
          ignore (Obj.invoke acc txn (Account.Credit opening))))
    accounts;

  let overdrafts = Atomic.make 0 in
  let transfer txn ~src ~dst amount =
    match Obj.invoke accounts.(src) txn (Account.Debit amount) with
    | Account.Ok -> ignore (Obj.invoke accounts.(dst) txn (Account.Credit amount))
    | Account.Overdraft -> Atomic.incr overdrafts
  in

  (* Four domains transferring money around... *)
  let transfer_worker d =
    Domain.spawn (fun () ->
        for k = 1 to transfers_per_domain do
          let src = (d + (3 * k)) mod n_accounts in
          let dst = (src + 1 + (k mod (n_accounts - 1))) mod n_accounts in
          let amount = 1 + (k mod 17) in
          Runtime.Manager.run mgr (fun txn -> transfer txn ~src ~dst amount)
        done)
  in
  (* ... while one domain posts interest to every account, twice.  In
     the integer Post semantics, [Post 1] multiplies a balance by 2 —
     generous interest, but it makes the arithmetic easy to follow. *)
  let interest_worker =
    Domain.spawn (fun () ->
        for _ = 1 to 2 do
          Runtime.Manager.run mgr (fun txn ->
              Array.iter
                (fun acc -> ignore (Obj.invoke acc txn (Account.Post 1)))
                accounts);
          Unix.sleepf 0.002
        done)
  in
  let workers = List.init 4 transfer_worker in
  List.iter Domain.join workers;
  Domain.join interest_worker;

  let balances =
    Array.map
      (fun acc ->
        match Obj.committed_states acc with [ b ] -> b | _ -> assert false)
      accounts
  in
  Array.iteri (fun i b -> Printf.printf "acct-%d: %7d\n" i b) balances;
  let total = Array.fold_left ( + ) 0 balances in
  Printf.printf "total: %d\n" total;

  let conflicts =
    Array.fold_left (fun acc o -> acc + (Obj.stats o).Obj.conflicts) 0 accounts
  in
  let mstats = Runtime.Manager.stats mgr in
  Printf.printf
    "transactions: %d committed over %d attempts; %d overdrafts refused; %d lock conflicts\n"
    mstats.Runtime.Manager.committed mstats.Runtime.Manager.started
    (Atomic.get overdrafts) conflicts;
  (* Conservation sanity: with no interest the total would be exactly
     n_accounts * opening; each Post multiplied one account's balance at
     some serialization point, so the total must be at least that. *)
  assert (total >= n_accounts * opening);
  Printf.printf "money conserved (total >= %d): OK\n" (n_accounts * opening)
