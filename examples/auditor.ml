(* Auditor: read-only transactions with start-time timestamps.

   Run with: dune exec examples/auditor.exe

   The "hybrid" in hybrid atomicity (paper §7.1): update transactions
   choose timestamps at commit (dynamic), read-only transactions may
   choose them at start (static) and serialize there without taking a
   single lock.  This example races money transfers across accounts on
   two domains against an auditor that repeatedly sums all balances
   through Snapshot.read — every audit must see the exact conserved
   total, and no audit ever delays a transfer. *)

module Account = Adt.Account
module Obj = Runtime.Atomic_obj.Make (Account)

let n_accounts = 6
let opening = 500

(* A snapshot exposes state only through operations; recover a balance
   with overdraft probes (binary search). *)
let balance_at acc ~at =
  match Obj.read_at acc ~at (Account.Debit 1) with
  | Some Account.Overdraft -> 0
  | Some Account.Ok ->
    let rec search ok_at overdraft_at =
      if ok_at + 1 >= overdraft_at then ok_at
      else
        let mid = (ok_at + overdraft_at) / 2 in
        match Obj.read_at acc ~at (Account.Debit mid) with
        | Some Account.Ok -> search mid overdraft_at
        | Some Account.Overdraft -> search ok_at mid
        | None -> assert false
    in
    search 1 (n_accounts * opening * 2)
  | None -> assert false

let () =
  let mgr = Runtime.Manager.create () in
  let accounts =
    Array.init n_accounts (fun i ->
        Obj.create ~name:(Printf.sprintf "acct-%d" i) ~conflict:Account.conflict_hybrid ())
  in
  Array.iter
    (fun a -> Runtime.Manager.run mgr (fun txn -> ignore (Obj.invoke a txn (Account.Credit opening))))
    accounts;

  let stop = Atomic.make false in
  let transfer_worker d =
    Domain.spawn (fun () ->
        let k = ref 0 in
        while not (Atomic.get stop) do
          incr k;
          let src = (d + (3 * !k)) mod n_accounts in
          let dst = (src + 1 + (!k mod (n_accounts - 1))) mod n_accounts in
          let amount = 1 + (!k mod 13) in
          Runtime.Manager.run mgr (fun txn ->
              match Obj.invoke accounts.(src) txn (Account.Debit amount) with
              | Account.Ok -> ignore (Obj.invoke accounts.(dst) txn (Account.Credit amount))
              | Account.Overdraft -> ())
        done)
  in
  let workers = List.init 2 transfer_worker in

  let sources = Array.to_list (Array.map Obj.snapshot_source accounts) in
  let audits = 20 in
  let all_exact = ref true in
  for i = 1 to audits do
    let at_used = ref 0 in
    let total =
      Runtime.Snapshot.read mgr ~sources (fun ~at ->
          at_used := at;
          Array.fold_left (fun sum a -> sum + balance_at a ~at) 0 accounts)
    in
    let exact = total = n_accounts * opening in
    if not exact then all_exact := false;
    Printf.printf "audit %2d @ t=%-6d total=%d %s\n" i !at_used total
      (if exact then "(conserved)" else "(VIOLATION!)");
    Unix.sleepf 0.002
  done;
  Atomic.set stop true;
  List.iter Domain.join workers;

  let total_conflicts =
    Array.fold_left (fun acc a -> acc + (Obj.stats a).Obj.conflicts) 0 accounts
  in
  Printf.printf "every audit saw the conserved total: %b\n" !all_exact;
  Printf.printf
    "transfers committed meanwhile: %d (audits take no locks and block none \
     of them; the %d conflicts are transfer-vs-transfer debits)\n"
    (Runtime.Manager.stats mgr).Runtime.Manager.committed total_conflicts
