(* Quickstart: a bank account under hybrid concurrency control.

   Run with: dune exec examples/quickstart.exe

   The tour:
   1. create an atomic Account object with the paper's Figure 4-5
      conflict relation;
   2. run transactions through the manager (automatic commit timestamps,
      abort-and-retry);
   3. watch result-dependent locking in action: Credits run concurrently
      with successful Debits, but an Overdraft observation locks out
      Credits and Posts until it commits. *)

module Account = Adt.Account
module Obj = Runtime.Atomic_obj.Make (Account)

let () =
  let mgr = Runtime.Manager.create () in
  let acc = Obj.create ~name:"checking" ~conflict:Account.conflict_hybrid () in

  (* A simple committed transaction: deposit opening balance. *)
  Runtime.Manager.run mgr (fun txn ->
      ignore (Obj.invoke acc txn (Account.Credit 100)));
  Printf.printf "opening balance deposited\n";

  (* Concurrent transactions from four domains: credits and debits mix
     freely under the hybrid relation (no Credit/Debit conflict). *)
  let worker d =
    Domain.spawn (fun () ->
        for _ = 1 to 50 do
          Runtime.Manager.run mgr (fun txn ->
              ignore (Obj.invoke acc txn (Account.Credit 10));
              match Obj.invoke acc txn (Account.Debit 5) with
              | Account.Ok -> ()
              | Account.Overdraft -> Printf.printf "domain %d: overdraft!\n" d)
        done)
  in
  List.iter Domain.join (List.init 4 worker);

  (* Inspect the committed state. *)
  (match Obj.committed_states acc with
  | [ balance ] ->
    Printf.printf "final balance: %d (expected %d)\n" balance (100 + (4 * 50 * (10 - 5)))
  | _ -> assert false);

  (* Transactions can abort explicitly; nothing they did survives. *)
  (try
     Runtime.Manager.run_once mgr (fun txn ->
         ignore (Obj.invoke acc txn (Account.Debit 1_000_000));
         Runtime.Manager.abort_in ~reason:"changed my mind" ())
     |> ignore
   with _ -> ());
  (match Obj.committed_states acc with
  | [ balance ] -> Printf.printf "after aborted debit, balance still: %d\n" balance
  | _ -> assert false);

  let st = Obj.stats acc in
  Printf.printf
    "object stats: %d ops, %d lock conflicts, %d commits, %d aborts, %d txns compacted\n"
    st.Obj.invocations st.Obj.conflicts st.Obj.commits st.Obj.aborts st.Obj.forgotten;
  Printf.printf "live intention ops retained: %d (compaction keeps this small)\n"
    (Obj.live_ops acc)
