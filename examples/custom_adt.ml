(* Bring your own data type: derive its conflict table mechanically.

   Run with: dune exec examples/custom_adt.exe

   This is the workflow the paper prescribes for a new abstract data
   type: write its serial specification, derive the invalidated-by
   relation (Definitions 8/9 — always a dependency relation by Theorem
   10), take the symmetric closure as the lock-conflict relation, and
   run the object under the generic protocol engine.

   The type here is a bounded ticket dispenser with a capacity:
     Take () returns a ticket number (partial: blocks when exhausted)
     Refill(n) adds n tickets
     Remaining () returns how many tickets are left
   Deriving the table shows, without any manual analysis, that:
   - a Take depends on Takes returning the same ticket (two transactions
     must not be handed the same number),
   - a positive Remaining observation depends on Takes and Refills
     (either changes the count; observing 0 cannot be invalidated by a
     Take since the count was already exhausted),
   - Refill depends on nothing: concurrent refills are fine, and refills
     run concurrently with Takes. *)

module Dispenser = struct
  let name = "Dispenser"

  type inv = Take | Refill of int | Remaining
  type res = Ticket of int | Ok | Count of int

  (* State: next ticket number to hand out, tickets remaining. *)
  type state = { next : int; left : int }

  let initial = { next = 0; left = 0 }

  let step s = function
    | Take ->
      if s.left > 0 then [ (Ticket s.next, { next = s.next + 1; left = s.left - 1 }) ]
      else []
    | Refill n -> [ (Ok, { s with left = s.left + n }) ]
    | Remaining -> [ (Count s.left, s) ]

  let equal_inv (a : inv) b = a = b
  let equal_res (a : res) b = a = b
  let equal_state (a : state) b = a = b

  let pp_inv ppf = function
    | Take -> Format.fprintf ppf "Take()"
    | Refill n -> Format.fprintf ppf "Refill(%d)" n
    | Remaining -> Format.fprintf ppf "Remaining()"

  let pp_res ppf = function
    | Ticket n -> Format.fprintf ppf "Ticket(%d)" n
    | Ok -> Format.fprintf ppf "Ok"
    | Count n -> Format.fprintf ppf "Count(%d)" n

  let pp_state ppf s = Format.fprintf ppf "{next=%d; left=%d}" s.next s.left

  (* A small operation universe for the bounded derivation. *)
  let universe =
    List.map (fun n -> (Take, Ticket n)) [ 0; 1 ]
    @ List.map (fun n -> (Refill n, Ok)) [ 1; 2 ]
    @ List.map (fun n -> (Remaining, Count n)) [ 0; 1; 2; 3; 4 ]

  let op_label = function
    | Take, _ -> "Take"
    | Refill _, _ -> "Refill"
    | Remaining, _ -> "Remaining"

  let op_values = function
    | Take, Ticket n -> [ n ]
    | Take, _ -> []
    | Refill n, _ -> [ n ]
    | Remaining, Count n -> [ n ]
    | Remaining, _ -> []
end

module Dep = Spec.Dependency.Make (Dispenser)
module Cls = Spec.Classify.Make (Dispenser)
module Obj = Runtime.Atomic_obj.Make (Dispenser)

let () =
  (* 1. Derive the conflict table from the specification alone. *)
  let derived = Dep.invalidated_by ~depth:3 in
  Format.printf "%a@." Spec.Classify.pp_table
    (Cls.classify ~title:"Derived invalidated-by relation for Dispenser"
       (Spec.Relation.pred derived));
  Format.printf "is a dependency relation (Theorem 10): %b@.@."
    (Dep.is_dependency_relation ~depth:3 (Spec.Relation.pred derived));

  (* 2. Use its symmetric closure as the lock conflict relation. *)
  let conflict = Spec.Relation.pred (Spec.Relation.symmetric_closure derived) in

  (* 3. Run the dispenser concurrently under the generic engine. *)
  let mgr = Runtime.Manager.create () in
  let d = Obj.create ~name:"tickets" ~conflict () in
  Runtime.Manager.run mgr (fun txn -> ignore (Obj.invoke d txn (Dispenser.Refill 400)));
  let tickets = Array.init 4 (fun _ -> ref []) in
  let takers =
    List.init 4 (fun w ->
        Domain.spawn (fun () ->
            for _ = 1 to 100 do
              Runtime.Manager.run mgr (fun txn ->
                  match Obj.invoke d txn Dispenser.Take with
                  | Dispenser.Ticket n -> tickets.(w) := n :: !(tickets.(w))
                  | Dispenser.Ok | Dispenser.Count _ -> assert false)
            done))
  in
  List.iter Domain.join takers;
  (match Obj.committed_states d with
  | [ s ] ->
    Printf.printf "tickets handed out: %d, remaining: %d (expected 400 / 0)\n"
      s.Dispenser.next s.Dispenser.left
  | _ -> assert false);
  (* The Take/Take conflict guarantees no duplicate tickets even though
     every concurrent taker initially computes the same ticket number. *)
  let all = Array.to_list tickets |> List.concat_map (fun r -> !r) in
  let distinct = List.sort_uniq compare all in
  Printf.printf "tickets are unique: %b (%d distinct of %d)\n"
    (List.length distinct = List.length all)
    (List.length distinct) (List.length all);
  let st = Obj.stats d in
  Printf.printf "lock conflicts observed: %d\n" st.Obj.conflicts
