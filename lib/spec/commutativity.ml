module Make (A : Adt_sig.BOUNDED) = struct
  module Seq = Sequences.Make (A)

  type op = A.inv * A.res

  let state_sets_equal a b =
    let subset x y = List.for_all (fun s -> List.exists (A.equal_state s) y) x in
    subset a b && subset b a

  let commute_from ss p q =
    (* Check the Definition-26 condition at the state set [ss] reached by
       some legal h. *)
    match (Seq.states_after' ss [ p ], Seq.states_after' ss [ q ]) with
    | [], _ | _, [] -> true (* premise fails: nothing to check *)
    | after_p, after_q ->
      let pq = Seq.states_after' after_p [ q ] in
      let qp = Seq.states_after' after_q [ p ] in
      pq <> [] && qp <> [] && state_sets_equal pq qp

  let commute ~depth p q =
    let exception Violation in
    let rec walk d ss =
      if not (commute_from ss p q) then raise Violation;
      if d < depth then
        List.iter
          (fun r ->
            match Seq.states_after' ss [ r ] with
            | [] -> ()
            | ss' -> walk (d + 1) ss')
          A.universe
    in
    try
      walk 0 [ A.initial ];
      true
    with Violation -> false

  let failure_to_commute ~depth =
    Relation.of_pred ~eq:Seq.equal_op ~ops:A.universe (fun p q ->
        not (commute ~depth p q))
end
