module Make (A : Adt_sig.S) = struct
  module Seq = Sequences.Make (A)

  type op = A.inv * A.res

  let subsequence h idxs =
    let arr = Array.of_list h in
    List.map
      (fun i ->
        if i < 0 || i >= Array.length arr then invalid_arg "Views.subsequence" else arr.(i))
      idxs

  let is_closed r h idxs =
    let arr = Array.of_list h in
    (* for every kept index j and every earlier index i with
       (h[j], h[i]) in r, i must also be kept *)
    List.for_all
      (fun j ->
        List.for_all
          (fun i ->
            if i < j && r arr.(j) arr.(i) then List.mem i idxs else true)
          (List.init (Array.length arr) Fun.id))
      idxs

  let is_view_for r h idxs q =
    let arr = Array.of_list h in
    is_closed r h idxs
    && List.for_all
         (fun i -> if r q arr.(i) then List.mem i idxs else true)
         (List.init (Array.length arr) Fun.id)

  let view_indices_for r h q =
    let arr = Array.of_list h in
    let n = Array.length arr in
    let keep = Array.make n false in
    (* seed with the operations q depends on *)
    for i = 0 to n - 1 do
      if r q arr.(i) then keep.(i) <- true
    done;
    (* Close under r.  Dependencies point strictly earlier, so a single
       descending scan settles everything: marking i < j happens before
       the scan reaches j' = i. *)
    for j = n - 1 downto 0 do
      if keep.(j) then
        for i = 0 to j - 1 do
          if r arr.(j) arr.(i) then keep.(i) <- true
        done
    done;
    List.filter (fun i -> keep.(i)) (List.init n Fun.id)
end
