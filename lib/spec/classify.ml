type cell =
  | Never
  | Always
  | Eq_values
  | Neq_values
  | Pos_value
  | Conditional of (int list * int list) list

let equal_cell a b =
  match (a, b) with
  | Never, Never
  | Always, Always
  | Eq_values, Eq_values
  | Neq_values, Neq_values
  | Pos_value, Pos_value ->
    true
  | Conditional xs, Conditional ys -> xs = ys
  | (Never | Always | Eq_values | Neq_values | Pos_value | Conditional _), _ -> false

let cell_to_string = function
  | Never -> ""
  | Always -> "true"
  | Eq_values -> "v = v'"
  | Neq_values -> "v /= v'"
  | Pos_value -> "v > 0"
  | Conditional pairs ->
    let pp_values vs = "(" ^ String.concat "," (List.map string_of_int vs) ^ ")" in
    let shown = List.filteri (fun i _ -> i < 4) pairs in
    let suffix = if List.length pairs > 4 then Printf.sprintf " (+%d)" (List.length pairs - 4) else "" in
    String.concat "|" (List.map (fun (a, b) -> pp_values a ^ pp_values b) shown) ^ suffix

let pp_cell ppf c = Format.pp_print_string ppf (cell_to_string c)

type table = { title : string; labels : string list; cells : cell array array }

let cell_at t ~row ~col =
  let idx l =
    match List.find_index (String.equal l) t.labels with
    | Some i -> i
    | None -> raise Not_found
  in
  t.cells.(idx row).(idx col)

let equal_table a b =
  a.labels = b.labels
  && List.length a.labels = Array.length a.cells
  && Array.for_all2 (fun ra rb -> Array.for_all2 equal_cell ra rb) a.cells b.cells

let pp_table ppf t =
  let labels = Array.of_list t.labels in
  let n = Array.length labels in
  let strings =
    Array.init n (fun i -> Array.init n (fun j -> cell_to_string t.cells.(i).(j)))
  in
  let width = ref 1 in
  Array.iter (fun l -> width := max !width (String.length l)) labels;
  Array.iter (Array.iter (fun s -> width := max !width (String.length s))) strings;
  let pad s = s ^ String.make (!width - String.length s) ' ' in
  Format.fprintf ppf "%s@." t.title;
  Format.fprintf ppf "%s |" (pad "");
  Array.iter (fun l -> Format.fprintf ppf " %s |" (pad l)) labels;
  Format.fprintf ppf "@.";
  for i = 0 to n - 1 do
    Format.fprintf ppf "%s |" (pad labels.(i));
    for j = 0 to n - 1 do
      Format.fprintf ppf " %s |" (pad strings.(i).(j))
    done;
    Format.fprintf ppf "@."
  done

module Make (A : Adt_sig.BOUNDED) = struct
  let labels_in_order () =
    List.fold_left
      (fun acc op ->
        let l = A.op_label op in
        if List.mem l acc then acc else acc @ [ l ])
      [] A.universe

  let classify ~title rel =
    let labels = labels_in_order () in
    let ops_with l = List.filter (fun op -> String.equal (A.op_label op) l) A.universe in
    let classify_cell row_label col_label =
      let samples =
        List.concat_map
          (fun p -> List.map (fun q -> (p, q, rel p q)) (ops_with col_label))
          (ops_with row_label)
      in
      let holds = List.filter (fun (_, _, h) -> h) samples in
      let all_hold = List.length holds = List.length samples in
      let leading op =
        match A.op_values op with [] -> None | v :: _ -> Some v
      in
      let matches_condition cond =
        List.for_all
          (fun (p, q, h) ->
            match (leading p, leading q) with
            | Some vp, Some vq -> h = cond vp vq
            | (None | Some _), _ -> false)
          samples
      in
      let matches_row_condition cond =
        List.for_all
          (fun (p, _, h) ->
            match leading p with Some vp -> h = cond vp | None -> false)
          samples
      in
      if holds = [] then Never
      else if all_hold then Always
      else if matches_condition (fun a b -> a = b) then Eq_values
      else if matches_condition (fun a b -> a <> b) then Neq_values
      else if matches_row_condition (fun a -> a > 0) then Pos_value
      else
        Conditional
          (List.map (fun (p, q, _) -> (A.op_values p, A.op_values q)) holds)
    in
    let labels_arr = Array.of_list labels in
    let n = Array.length labels_arr in
    let cells =
      Array.init n (fun i ->
          Array.init n (fun j -> classify_cell labels_arr.(i) labels_arr.(j)))
    in
    { title; labels; cells }
end
