(** Legality of operation sequences, derived from a serial specification.

    A sequence [h = p1 ... pn] of operations is {e legal} (belongs to the
    serial specification, Section 3.1 of the paper) iff there is a path
    [initial --p1--> s1 --p2--> ... --pn--> sn] where each transition is
    justified by [A.step].  Nondeterminism makes the set of states
    reachable after [h] a set rather than a single state; two sequences
    are {e equivalent} (Definition 25) iff they reach the same state set,
    because future legality depends only on the current state. *)

module Make (A : Adt_sig.S) : sig
  type op = A.inv * A.res

  val equal_op : op -> op -> bool
  val pp_op : Format.formatter -> op -> unit

  val succ_states : A.state -> op -> A.state list
  (** [succ_states s p] is every state reachable by executing operation
      [p] (i.e. invoking its invocation and observing exactly its recorded
      response) from [s].  Empty iff [p] is illegal in [s]. *)

  val states_after' : A.state list -> op list -> A.state list
  (** [states_after' ss h] folds {!succ_states} over [h] starting from the
      state set [ss], deduplicating with [A.equal_state]. *)

  val states_after : op list -> A.state list
  (** [states_after h = states_after' [A.initial] h]. *)

  val legal : op list -> bool
  (** [legal h] iff [states_after h] is non-empty.  [legal []] holds. *)

  val legal_from : A.state list -> op list -> bool
  (** Legality starting from a given state set. *)

  val equivalent : op list -> op list -> bool
  (** Definition 25, decided exactly via state-set equality: [h] and [h']
      are equivalent iff for all [g], [h * g] is legal iff [h' * g] is.
      Requires both sequences to be legal; two illegal sequences are
      trivially equivalent (no legal extensions of either). *)

  val legal_sequences : ops:op list -> depth:int -> op list list
  (** All legal sequences over the alphabet [ops] of length [0..depth],
      enumerated with pruning (an illegal prefix is never extended).
      Shortest first. *)

  val pp_seq : Format.formatter -> op list -> unit
end
