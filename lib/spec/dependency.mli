(** Dependency relations (Section 4.2 of the paper), derived from a
    bounded serial specification.

    Definition 3: a binary relation [R] on operations is a {e dependency
    relation} iff for all operation sequences [h], [k] and operations [p]
    such that [h * k] and [h * p] are legal and no operation [q] in [k]
    satisfies [(q, p) ∈ R], the sequence [h * p * k] is legal.

    Definition 8/9: [p] {e invalidates} [q] iff there exist [h1], [h2]
    with [h1 * p * h2] and [h1 * h2 * q] legal but [h1 * p * h2 * q]
    illegal; {e invalidated-by} relates [(q, p)] for every such pair and
    is always a dependency relation (Theorem 10).

    The paper quantifies over all sequences; we enumerate legal contexts
    up to a configurable [depth] over the specification's finite operation
    universe.  The checks are therefore exact refuters and bounded
    verifiers: [is_dependency_relation] returning [false] is definitive
    (a concrete counterexample exists and can be retrieved), returning
    [true] means no counterexample exists within the bound.  Tests assert
    that results are stable between [depth] and [depth + 1] for every ADT
    shipped here. *)

module Make (A : Adt_sig.BOUNDED) : sig
  module Seq : module type of Sequences.Make (A)

  type op = A.inv * A.res

  val invalidates : depth:int -> op -> op -> bool
  (** [invalidates ~depth p q] — Definition 8, with [h1] and [h2] ranging
      over sequences of length at most [depth]. *)

  val invalidated_by : depth:int -> op Relation.t
  (** Definition 9 over the whole universe: [(q, p)] is related iff
      [invalidates p q].  Rows depend on columns, matching the orientation
      of the paper's figures. *)

  type counterexample = { h : op list; p : op; k : op list }
  (** A witness that a relation is not a dependency relation: [h * k] and
      [h * p] are legal, no operation of [k] is related to [p], yet
      [h * p * k] is illegal. *)

  val find_counterexample : depth:int -> (op -> op -> bool) -> counterexample option
  (** Search for a Definition-3 violation with [h] and [k] bounded by
      [depth]. *)

  val is_dependency_relation : depth:int -> (op -> op -> bool) -> bool
  (** [find_counterexample] is [None]. *)

  val is_minimal : depth:int -> op Relation.t -> bool
  (** No single pair can be removed while remaining a dependency relation
      (within the bound). *)

  val minimize : depth:int -> op Relation.t -> op Relation.t
  (** Greedily drop pairs while the result remains a dependency relation.
      The result depends on pair order; it is {e a} minimal relation below
      the input, not a canonical one (the paper notes minimal dependency
      relations need not be unique). *)

  val necessary_pairs : depth:int -> op Relation.t
  (** The pairs contained in {e every} dependency relation: [(q, p)] is
      necessary iff the total relation minus that single pair violates
      Definition 3 (within the bound).  A specification has a {e unique}
      minimal dependency relation iff the necessary pairs themselves form
      a dependency relation — and then that is it.  The paper asserts
      uniqueness for File, SemiQueue and Account, and exhibits two
      incomparable minimal relations for the Queue; the tests check all
      four via this function. *)

  val has_unique_minimal : depth:int -> bool
  (** [necessary_pairs] is itself a dependency relation. *)

  val pp_counterexample : Format.formatter -> counterexample -> unit
end
