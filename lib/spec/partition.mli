(** Cell partitioning of a serial specification.

    Fine-grained locking à la Malta & Martinez (tuple-based ADTs, full
    parallelism): the state of an object is split into {e cells} that
    are locked independently, so operations addressing different cells
    never wait on each other.  In this codebase the cell of an operation
    is derived from its invocation alone ([cell_of_inv]) — the key of a
    [Directory] operation, the head/tail end of a queue operation —
    with [None] meaning the operation is not partitionable and must run
    at whole-object granularity (it conflicts with every cell).

    The soundness obligation is the paper's own: the conflict relation
    installed per cell must still be a {e dependency relation}
    (Definition 3), because Theorem 10's invalidated-by and the LOCK
    protocol's correctness argument only need that property.  Restricting
    a relation to same-cell pairs — [restrict rel p q = same_cell p q &&
    rel p q] — {e weakens} it, and a weaker relation is not automatically
    a dependency relation: dropping a cross-cell pair is sound only if no
    operation sequence can use the dropped pair to invalidate a response.
    [Directory] by key passes (an [Insert k] can never change the legal
    responses at key [k' <> k]); a by-amount split of [Account] fails —
    two [Debit]s of different amounts drain the same shared balance, and
    {!Make.counterexample} exhibits the violating schedule.  Every
    partition shipped here is checked with
    {!Dependency.Make.is_dependency_relation}, and the failing ones are
    kept in the test suite as required negative cases. *)

(** A bounded specification with a cell assignment. *)
module type SPEC = sig
  include Adt_sig.BOUNDED

  val cell_of_inv : inv -> int option
  (** The cell an invocation addresses; [None] for whole-object
      operations.  Must be a function of the invocation only — the
      protocol needs the cell before any response is chosen. *)
end

module Make (P : SPEC) : sig
  module D : module type of Dependency.Make (P)

  type op = P.inv * P.res

  val cell_of_op : op -> int option
  (** {!SPEC.cell_of_inv} of the operation's invocation. *)

  val same_cell : op -> op -> bool
  (** Two operations share a cell iff their cells are equal, or either
      is a whole-object operation ([None] acts as a wildcard). *)

  val restrict : (op -> op -> bool) -> op -> op -> bool
  (** [restrict rel] relates [p q] iff they share a cell {e and} [rel]
      relates them — the per-cell projection of a conflict relation.
      This is exactly the relation a keyed table of per-cell lock
      machines implements: operations in different cells are handled by
      different machines and never tested against each other. *)

  val cells : unit -> int list
  (** The distinct cell keys appearing in the operation universe. *)

  val partitions_universe : unit -> bool
  (** At least one operation is partitionable and at least two cells
      exist — i.e. the partition is not degenerate. *)

  val invalidated_by_cell : depth:int -> op -> op -> bool
  (** The derived invalidated-by relation (Definition 9) restricted to
      same-cell pairs — the candidate per-cell locking relation. *)

  val dropped_pairs : depth:int -> (op * op) list
  (** The cross-cell pairs of invalidated-by that the restriction drops
      — the concurrency the partition claims to gain.  Empty iff the
      derived relation was already cell-diagonal (as for [Directory]). *)

  val sound : depth:int -> (op -> op -> bool) -> bool
  (** [sound ~depth rel] — is [restrict rel] still a dependency relation
      (checked exactly up to context length [depth])? *)

  val counterexample : depth:int -> (op -> op -> bool) -> D.counterexample option
  (** The Definition-3 violation witnessing [sound = false], if any:
      a schedule where an operation of a supposedly independent cell
      invalidates a response the protocol already returned. *)

  val is_sound : depth:int -> bool
  (** {!sound} applied to the derived invalidated-by relation itself. *)

  val check : depth:int -> (op -> op -> bool) -> (unit, string) result
  (** {!counterexample} rendered as a human-readable error. *)
end
