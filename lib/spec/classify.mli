(** Symbolic classification of relation tables.

    The paper's figures present relations symbolically: a cell for the
    (row, column) operation classes holds a condition on argument/result
    values such as [v = v'] or [v ≠ v'].  Given a relation materialized
    over a finite universe, this module groups operations by
    {!Adt_sig.BOUNDED.op_label} and classifies each cell against the
    standard conditions, recovering the paper's tables exactly. *)

type cell =
  | Never  (** no value combination is related (blank cell) *)
  | Always  (** every value combination is related ([true]) *)
  | Eq_values  (** related iff the leading values are equal ([v = v']) *)
  | Neq_values  (** related iff the leading values differ ([v ≠ v']) *)
  | Pos_value  (** related iff the row operation's leading value is positive
                   ([v > 0]) — e.g. observations of a non-empty container *)
  | Conditional of (int list * int list) list
      (** anything else: the exact value combinations that are related *)

val equal_cell : cell -> cell -> bool
val pp_cell : Format.formatter -> cell -> unit
val cell_to_string : cell -> string

type table = {
  title : string;
  labels : string list;  (** row and column operation classes, in order *)
  cells : cell array array;  (** [cells.(row).(col)] *)
}

val cell_at : table -> row:string -> col:string -> cell
(** Raises [Not_found] if a label is absent. *)

val equal_table : table -> table -> bool
val pp_table : Format.formatter -> table -> unit

module Make (A : Adt_sig.BOUNDED) : sig
  val classify : title:string -> ((A.inv * A.res) -> (A.inv * A.res) -> bool) -> table
  (** Classify a relation (row depends on column) over [A.universe]. *)
end
