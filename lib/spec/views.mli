(** R-closed subsequences and R-views (paper Definitions 5 and 6).

    A subsequence [g] of [h] is {e R-closed} if whenever [g] contains an
    operation [q] of [h] it also contains every earlier operation [p] of
    [h] with [(q, p) ∈ R].  [g] is an {e R-view of h for q} if it is
    R-closed and contains every [p] in [h] with [(q, p) ∈ R].

    Lemma 7 — the key step in the protocol's correctness proof — says
    that when R is a dependency relation, testing an operation's legality
    against a view suffices: if [g] is an R-view of [h] for [q] and
    [g * q] is legal, then [h * q] is legal.  The test suite checks
    Lemma 7 (and Lemma 4) as executable properties over random data,
    using these definitions.

    Subsequences are represented by the sorted list of indices of [h]
    they keep, so "the same operation at two positions" stays
    unambiguous. *)

module Make (A : Adt_sig.S) : sig
  module Seq : module type of Sequences.Make (A)

  type op = A.inv * A.res

  val subsequence : op list -> int list -> op list
  (** [subsequence h idxs] extracts the operations of [h] at the given
      (sorted, distinct) indices.  Raises [Invalid_argument] on an
      out-of-range index. *)

  val is_closed : (op -> op -> bool) -> op list -> int list -> bool
  (** Definition 5: [is_closed r h idxs] — the subsequence of [h] at
      [idxs] is r-closed. *)

  val is_view_for : (op -> op -> bool) -> op list -> int list -> op -> bool
  (** Definition 6: the subsequence is an r-view of [h] for [q]. *)

  val view_indices_for : (op -> op -> bool) -> op list -> op -> int list
  (** The {e minimal} r-view of [h] for [q]: every operation [q] depends
      on, closed under r.  (Views are not unique; this is the smallest
      one, the useful witness for Lemma 7.) *)
end
