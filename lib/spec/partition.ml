module type SPEC = sig
  include Adt_sig.BOUNDED

  val cell_of_inv : inv -> int option
end

module Make (P : SPEC) = struct
  module D = Dependency.Make (P)

  type op = P.inv * P.res

  let cell_of_op ((i, _) : op) = P.cell_of_inv i

  let same_cell p q =
    match (cell_of_op p, cell_of_op q) with
    | Some a, Some b -> a = b
    (* A whole-object operation shares every cell: it must stay ordered
       against everything, so the restriction never weakens it. *)
    | None, _ | _, None -> true

  let restrict rel p q = same_cell p q && rel p q

  let cells () =
    List.filter_map (fun o -> cell_of_op o) P.universe |> List.sort_uniq compare

  let partitions_universe () =
    List.exists (fun o -> Option.is_some (cell_of_op o)) P.universe
    && List.length (cells ()) > 1

  let invalidated_by_cell ~depth = restrict (Relation.pred (D.invalidated_by ~depth))

  let dropped_pairs ~depth =
    Relation.pairs (D.invalidated_by ~depth)
    |> List.filter (fun (q, p) -> not (same_cell q p))

  let sound ~depth rel = D.is_dependency_relation ~depth (restrict rel)
  let counterexample ~depth rel = D.find_counterexample ~depth (restrict rel)
  let is_sound ~depth = sound ~depth (Relation.pred (D.invalidated_by ~depth))

  let check ~depth rel =
    match counterexample ~depth rel with
    | None -> Ok ()
    | Some cx ->
      Error
        (Format.asprintf
           "%s: cell-restricted relation is not a dependency relation: %a" P.name
           D.pp_counterexample cx)
end
