(** Commutativity of operations (Section 7.1, Definitions 25–26).

    Two operations [p] and [q] {e commute} iff for every operation
    sequence [h] such that [h * p] and [h * q] are both legal, the
    sequences [h * p * q] and [h * q * p] are legal and equivalent.
    Equivalence (Definition 25) is decided exactly via reachable-state-set
    equality, which for canonical state representations coincides with
    indistinguishability by any future computation.

    Theorem 28: "failure to commute" is a dependency relation (so
    commutativity-based protocols are a special — and generally more
    restrictive — case of the hybrid protocol); this is asserted by the
    test suite using {!Dependency.Make.is_dependency_relation}. *)

module Make (A : Adt_sig.BOUNDED) : sig
  module Seq : module type of Sequences.Make (A)

  type op = A.inv * A.res

  val commute : depth:int -> op -> op -> bool
  (** Definition 26 with [h] bounded by [depth].  Symmetric by
      construction. *)

  val failure_to_commute : depth:int -> op Relation.t
  (** The relation containing every pair that does {e not} commute within
      the bound.  This is the conflict relation imposed by
      commutativity-based locking (Figure 7-1 for Account). *)
end
