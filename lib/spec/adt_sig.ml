(** Signatures for serial specifications of abstract data types.

    The paper (Section 3.1) models an object's serial specification as a
    set of legal operation sequences, where an {e operation} is an
    invocation paired with a matching response.  We represent
    specifications operationally: a canonical state type and a [step]
    function returning every legal (response, successor-state) pair for an
    invocation.

    - {e Partial} operations (e.g. [Deq] on an empty queue) are modelled
      by [step] returning the empty list: there is no legal response, so
      the operation blocks.
    - {e Nondeterministic} operations (e.g. SemiQueue's [Rem]) are
      modelled by [step] returning several pairs.

    The derived notion: an operation sequence [ops] is {e legal} iff there
    is a path from [initial] through states consistent with every
    (invocation, response) pair in order — see {!Sequences}. *)

(** A serial specification. *)
module type S = sig
  val name : string
  (** Human-readable type name, e.g. ["FIFO-Queue"]. *)

  type inv
  (** Invocations: operation name plus argument values. *)

  type res
  (** Responses: termination condition plus result values. *)

  type state
  (** Canonical abstract states.  Canonical means structural equality on
      [state] coincides with observational equivalence of the sequences
      leading to it; every ADT in [lib/adt] satisfies this and tests
      assert it. *)

  val initial : state

  val step : state -> inv -> (res * state) list
  (** [step s i] lists every legal (response, successor) for invoking [i]
      in state [s].  Empty means the invocation has no legal response in
      [s] (partial specification). *)

  val equal_inv : inv -> inv -> bool
  val equal_res : res -> res -> bool
  val equal_state : state -> state -> bool

  val pp_inv : Format.formatter -> inv -> unit
  val pp_res : Format.formatter -> res -> unit
  val pp_state : Format.formatter -> state -> unit
end

(** A specification packaged with a finite operation universe, enabling
    the bounded derivation of dependency and commutativity relations.
    The universe must be closed under legality: every operation that can
    occur in a legal sequence over the chosen value domain is present. *)
module type BOUNDED = sig
  include S

  val universe : (inv * res) list
  (** All operations over the chosen small value domain. *)

  val op_label : inv * res -> string
  (** Constructor-level label ignoring argument/result values, e.g.
      ["Enq/Ok"], ["Debit/Overdraft"].  Table rows and columns of the
      paper's figures are indexed by these labels. *)

  val op_values : inv * res -> int list
  (** The argument/result values embedded in the operation, used to
      classify symbolic table entries such as [v = v']. *)
end
