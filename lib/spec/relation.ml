type 'op t = {
  ops : 'op array;
  eq : 'op -> 'op -> bool;
  matrix : bool array array; (* matrix.(i).(j): op i related to op j *)
}

let of_pred ~eq ~ops pred =
  let ops = Array.of_list ops in
  let n = Array.length ops in
  let matrix = Array.init n (fun i -> Array.init n (fun j -> pred ops.(i) ops.(j))) in
  { ops; eq; matrix }

let ops r = Array.to_list r.ops

let index r p =
  let n = Array.length r.ops in
  let rec go i =
    if i >= n then invalid_arg "Relation: operation not in universe"
    else if r.eq r.ops.(i) p then i
    else go (i + 1)
  in
  go 0

let holds r p q = r.matrix.(index r p).(index r q)
let pred r = fun p q -> holds r p q

let pairs r =
  let acc = ref [] in
  let n = Array.length r.ops in
  for i = n - 1 downto 0 do
    for j = n - 1 downto 0 do
      if r.matrix.(i).(j) then acc := (r.ops.(i), r.ops.(j)) :: !acc
    done
  done;
  !acc

let size r =
  Array.fold_left
    (fun acc row -> Array.fold_left (fun a b -> if b then a + 1 else a) acc row)
    0 r.matrix

let map_matrix f r =
  let n = Array.length r.ops in
  { r with matrix = Array.init n (fun i -> Array.init n (fun j -> f i j)) }

let symmetric_closure r = map_matrix (fun i j -> r.matrix.(i).(j) || r.matrix.(j).(i)) r

let union a b =
  if Array.length a.ops <> Array.length b.ops then
    invalid_arg "Relation.union: different universes";
  map_matrix (fun i j -> a.matrix.(i).(j) || b.matrix.(i).(j)) a

let remove r p q =
  let ip = index r p and iq = index r q in
  map_matrix (fun i j -> r.matrix.(i).(j) && not (i = ip && j = iq)) r

let subset a b =
  if Array.length a.ops <> Array.length b.ops then
    invalid_arg "Relation.subset: different universes";
  let ok = ref true in
  Array.iteri
    (fun i row -> Array.iteri (fun j v -> if v && not b.matrix.(i).(j) then ok := false) row)
    a.matrix;
  !ok

let equal a b = subset a b && subset b a
let proper_subset a b = subset a b && not (subset b a)

let is_symmetric r =
  let n = Array.length r.ops in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if r.matrix.(i).(j) <> r.matrix.(j).(i) then ok := false
    done
  done;
  !ok

let pp ~pp_op ppf r =
  let n = Array.length r.ops in
  let label i = Format.asprintf "%a" pp_op r.ops.(i) in
  let labels = Array.init n label in
  let width = Array.fold_left (fun w s -> max w (String.length s)) 1 labels in
  let pad s = s ^ String.make (max 0 (width - String.length s)) ' ' in
  Format.fprintf ppf "%s |" (pad "");
  Array.iter (fun l -> Format.fprintf ppf " %s |" (pad l)) labels;
  Format.fprintf ppf "@.";
  for i = 0 to n - 1 do
    Format.fprintf ppf "%s |" (pad labels.(i));
    for j = 0 to n - 1 do
      Format.fprintf ppf " %s |" (pad (if r.matrix.(i).(j) then "x" else ""))
    done;
    Format.fprintf ppf "@."
  done
