module Make (A : Adt_sig.BOUNDED) = struct
  module Seq = Sequences.Make (A)

  type op = A.inv * A.res

  let universe = A.universe

  (* Walk all legal sequences over [universe] up to [depth], carrying the
     reachable state set, and call [visit] on every node (including the
     empty sequence).  [visit] receives the state set only; the sequence
     itself is rebuilt on demand by callers that need witnesses. *)
  let walk_states ~depth visit =
    let rec go d ss =
      visit ss;
      if d < depth then
        List.iter
          (fun p ->
            match Seq.states_after' ss [ p ] with
            | [] -> ()
            | ss' -> go (d + 1) ss')
          universe
    in
    go 0 [ A.initial ]

  let invalidates ~depth p q =
    (* h1 ranges over legal sequences (state set [s1]); h2 is walked with
       two state sets: [a] after h1 * h2 and [b] after h1 * p * h2.  A
       node witnesses invalidation when q is legal from [a] but not from
       [b].  Branches where either set dies are pruned: extensions cannot
       revive an empty state set. *)
    let exception Found in
    let rec walk_h2 d a b =
      if Seq.legal_from a [ q ] && not (Seq.legal_from b [ q ]) then raise Found;
      if d < depth then
        List.iter
          (fun r ->
            match (Seq.states_after' a [ r ], Seq.states_after' b [ r ]) with
            | [], _ | _, [] -> ()
            | a', b' -> walk_h2 (d + 1) a' b')
          universe
    in
    let visit s1 =
      match Seq.states_after' s1 [ p ] with
      | [] -> () (* h1 * p illegal: no invalidation from this context *)
      | b0 -> walk_h2 0 s1 b0
    in
    try
      walk_states ~depth visit;
      false
    with Found -> true

  let invalidated_by ~depth =
    (* Single pass over contexts, filling the whole matrix: for each legal
       h1 and each p legal after h1, walk h2 once and test every q. *)
    let ops = Array.of_list universe in
    let n = Array.length ops in
    let matrix = Array.make_matrix n n false in
    let index p =
      let rec go i =
        if i >= n then invalid_arg "invalidated_by: op not in universe"
        else if Seq.equal_op ops.(i) p then i
        else go (i + 1)
      in
      go 0
    in
    let rec walk_h2 d ip a b =
      Array.iteri
        (fun iq q ->
          if
            (not matrix.(iq).(ip))
            && Seq.legal_from a [ q ]
            && not (Seq.legal_from b [ q ])
          then matrix.(iq).(ip) <- true)
        ops;
      if d < depth then
        Array.iter
          (fun r ->
            match (Seq.states_after' a [ r ], Seq.states_after' b [ r ]) with
            | [], _ | _, [] -> ()
            | a', b' -> walk_h2 (d + 1) ip a' b')
          ops
    in
    let visit s1 =
      Array.iteri
        (fun ip p ->
          match Seq.states_after' s1 [ p ] with
          | [] -> ()
          | b0 -> walk_h2 0 ip s1 b0)
        ops
    in
    walk_states ~depth visit;
    Relation.of_pred ~eq:Seq.equal_op ~ops:universe (fun q p ->
        matrix.(index q).(index p))

  type counterexample = { h : op list; p : op; k : op list }

  let find_counterexample ~depth rel =
    let exception Found of counterexample in
    (* For a fixed legal h (state set [sh]) and op p legal after h (state
       set [sb] after h * p), walk k over operations unrelated to p,
       carrying [a] (after h * k) and [b] (after h * p * k).  [a] is
       non-empty by construction; if [b] dies, Definition 3 is violated. *)
    let rec walk_k d rev_h p rev_k a b =
      if b = [] then
        raise (Found { h = List.rev rev_h; p; k = List.rev rev_k });
      if d < depth then
        List.iter
          (fun q ->
            if not (rel q p) then
              match Seq.states_after' a [ q ] with
              | [] -> ()
              | a' ->
                let b' = Seq.states_after' b [ q ] in
                walk_k (d + 1) rev_h p (q :: rev_k) a' b')
          universe
    in
    (* walk_states does not expose the sequence, so re-walk here keeping
       the reversed prefix for witness reconstruction. *)
    let rec walk_h d rev_h sh =
      List.iter
        (fun p ->
          match Seq.states_after' sh [ p ] with
          | [] -> ()
          | sb -> walk_k 0 rev_h p [] sh sb)
        universe;
      if d < depth then
        List.iter
          (fun r ->
            match Seq.states_after' sh [ r ] with
            | [] -> ()
            | sh' -> walk_h (d + 1) (r :: rev_h) sh')
          universe
    in
    try
      walk_h 0 [] [ A.initial ];
      None
    with Found ce -> Some ce

  let is_dependency_relation ~depth rel = find_counterexample ~depth rel = None

  let is_minimal ~depth r =
    List.for_all
      (fun (q, p) ->
        not (is_dependency_relation ~depth (Relation.pred (Relation.remove r q p))))
      (Relation.pairs r)

  let minimize ~depth r =
    List.fold_left
      (fun r (q, p) ->
        let candidate = Relation.remove r q p in
        if is_dependency_relation ~depth (Relation.pred candidate) then candidate
        else r)
      r (Relation.pairs r)

  let necessary_pairs ~depth =
    (* (q, p) is in every dependency relation iff the total relation
       minus (q, p) is not one: the only missing premise-exclusions are
       exactly the occurrences of q after p. *)
    Relation.of_pred ~eq:Seq.equal_op ~ops:universe (fun q p ->
        let all_but q' p' = not (Seq.equal_op q' q && Seq.equal_op p' p) in
        not (is_dependency_relation ~depth all_but))

  let has_unique_minimal ~depth =
    is_dependency_relation ~depth (Relation.pred (necessary_pairs ~depth))

  let pp_counterexample ppf { h; p; k } =
    Format.fprintf ppf "@[<v>h = %a@,p = %a@,k = %a@,h*k and h*p legal, h*p*k illegal@]"
      Seq.pp_seq h Seq.pp_op p Seq.pp_seq k
end
