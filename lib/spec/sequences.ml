module Make (A : Adt_sig.S) = struct
  type op = A.inv * A.res

  let equal_op (i1, r1) (i2, r2) = A.equal_inv i1 i2 && A.equal_res r1 r2

  let pp_op ppf (i, r) = Format.fprintf ppf "[%a, %a]" A.pp_inv i A.pp_res r

  let dedup_states ss =
    List.fold_left
      (fun acc s -> if List.exists (A.equal_state s) acc then acc else s :: acc)
      [] ss
    |> List.rev

  let succ_states s (i, r) =
    A.step s i
    |> List.filter_map (fun (r', s') -> if A.equal_res r r' then Some s' else None)
    |> dedup_states

  let states_after' ss h =
    List.fold_left
      (fun ss p -> dedup_states (List.concat_map (fun s -> succ_states s p) ss))
      ss h

  let states_after h = states_after' [ A.initial ] h
  let legal_from ss h = states_after' ss h <> []
  let legal h = legal_from [ A.initial ] h

  let state_sets_equal a b =
    let subset x y = List.for_all (fun s -> List.exists (A.equal_state s) y) x in
    subset a b && subset b a

  let equivalent h h' = state_sets_equal (states_after h) (states_after h')

  let legal_sequences ~ops ~depth =
    (* Breadth-first with pruning: keep (reversed sequence, state set). *)
    let rec go k frontier acc =
      if k > depth then List.rev acc
      else
        let extended =
          List.concat_map
            (fun (rev_seq, ss) ->
              List.filter_map
                (fun p ->
                  match states_after' ss [ p ] with
                  | [] -> None
                  | ss' -> Some (p :: rev_seq, ss'))
                ops)
            frontier
        in
        let acc = List.fold_left (fun a (rs, _) -> List.rev rs :: a) acc extended in
        go (k + 1) extended acc
    in
    go 1 [ ([], [ A.initial ]) ] [ [] ]

  let pp_seq ppf h =
    Format.fprintf ppf "@[<h>%a@]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " * ") pp_op)
      h
end
