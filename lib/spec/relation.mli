(** Materialized binary relations over a finite operation universe.

    The dependency machinery manipulates relations both as predicates and
    as finite tables (for minimality checking, comparison, and rendering
    the paper's figures).  A [t] fixes a universe [ops] and stores the
    relation as a boolean matrix indexed by positions in [ops]. *)

type 'op t

val of_pred : eq:('op -> 'op -> bool) -> ops:'op list -> ('op -> 'op -> bool) -> 'op t
(** Materialize a predicate over the given universe.  [eq] decides
    operation equality and is used by {!holds} to locate arguments. *)

val ops : 'op t -> 'op list
val holds : 'op t -> 'op -> 'op -> bool
(** [holds r p q] — true iff [(p, q)] is in the relation.  Raises
    [Invalid_argument] if [p] or [q] is outside the universe. *)

val pred : 'op t -> 'op -> 'op -> bool
(** The relation as a predicate (partial application of {!holds}). *)

val pairs : 'op t -> ('op * 'op) list
(** All pairs in the relation, row-major. *)

val size : 'op t -> int
(** Number of related pairs. *)

val symmetric_closure : 'op t -> 'op t
val union : 'op t -> 'op t -> 'op t
val remove : 'op t -> 'op -> 'op -> 'op t
(** [remove r p q] deletes the single pair [(p, q)] (not its mirror). *)

val subset : 'op t -> 'op t -> bool
val equal : 'op t -> 'op t -> bool
val proper_subset : 'op t -> 'op t -> bool
val is_symmetric : 'op t -> bool

val pp : pp_op:(Format.formatter -> 'op -> unit) -> Format.formatter -> 'op t -> unit
(** Render as a matrix with [x] marks; rows depend on columns. *)
