type inv = Enq of int | Deq
type res = Ok | Val of int
type state = int list
type op = inv * res

let name = "FIFO-Queue"
let values = [ 1; 2 ]
let initial = []

let step s = function
  | Enq v -> [ (Ok, s @ [ v ]) ]
  | Deq -> ( match s with [] -> [] | front :: rest -> [ (Val front, rest) ])

let equal_inv (a : inv) b = a = b
let equal_res (a : res) b = a = b
let equal_state (a : state) b = a = b

let pp_inv ppf = function
  | Enq v -> Format.fprintf ppf "Enq(%d)" v
  | Deq -> Format.fprintf ppf "Deq()"

let pp_res ppf = function
  | Ok -> Format.fprintf ppf "Ok"
  | Val v -> Format.fprintf ppf "%d" v

let pp_state ppf s =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       Format.pp_print_int)
    s

let enq v = (Enq v, Ok)
let deq v = (Deq, Val v)
let universe = List.map enq values @ List.map deq values

let op_label = function
  | Enq _, _ -> "Enq"
  | Deq, _ -> "Deq"

let op_values = function
  | Enq v, _ -> [ v ]
  | Deq, Val v -> [ v ]
  | Deq, Ok -> []

(* Head/tail lock striping: Deq works at the head, Enq at the tail.
   Under Figure 4-3 the restriction drops nothing (Enq/Deq never
   conflict there), so striping is sound; under Figure 4-2 it would
   drop the Deq-depends-on-Enq pairs and is provably unsound — the
   partition tests exhibit the counterexample. *)
let cell_head = 0
let cell_tail = 1
let cell_of_inv = function Enq _ -> Some cell_tail | Deq -> Some cell_head

let dependency_fig_4_2 q p =
  match (q, p) with
  | (Deq, Val v), (Enq v', Ok) -> v <> v'
  | (Deq, Val v), (Deq, Val v') -> v = v'
  | ((Enq _ | Deq), _), _ -> false

let dependency_fig_4_3 q p =
  match (q, p) with
  | (Enq v, Ok), (Enq v', Ok) -> v <> v'
  | (Deq, Val v), (Deq, Val v') -> v = v'
  | ((Enq _ | Deq), _), _ -> false

let symmetric rel p q = rel p q || rel q p
let conflict_hybrid = symmetric dependency_fig_4_2
let conflict_fig_4_3 = symmetric dependency_fig_4_3
let conflict_commutativity = conflict_fig_4_3

let conflict_rw _ _ = true

(* ---- WAL codec (Wal.Codec.DURABLE) ---- *)

let codec =
  let module B = Util.Binio in
  {
    Wal.Codec.enc_inv =
      (fun buf -> function
        | Enq v ->
          B.w_tag buf 0;
          B.w_int buf v
        | Deq -> B.w_tag buf 1);
    dec_inv =
      (fun r ->
        match B.r_tag r with
        | 0 -> Enq (B.r_int r)
        | 1 -> Deq
        | t -> B.corrupt "FIFO-Queue.inv: tag %d" t);
    enc_res =
      (fun buf -> function
        | Ok -> B.w_tag buf 0
        | Val v ->
          B.w_tag buf 1;
          B.w_int buf v);
    dec_res =
      (fun r ->
        match B.r_tag r with
        | 0 -> Ok
        | 1 -> Val (B.r_int r)
        | t -> B.corrupt "FIFO-Queue.res: tag %d" t);
    enc_state = (fun buf s -> B.w_list B.w_int buf s);
    dec_state = (fun r -> B.r_list B.r_int r);
  }
