type inv = Insert of int | Remove of int | Member of int
type res = Ok | Duplicate | Missing | True | False
type state = int list
type op = inv * res

let name = "Directory"
let keys = [ 1; 2 ]
let initial = []

let rec insert_sorted k = function
  | [] -> [ k ]
  | x :: _ as l when k < x -> k :: l
  | x :: rest -> x :: insert_sorted k rest

let step s = function
  | Insert k ->
    if List.mem k s then [ (Duplicate, s) ] else [ (Ok, insert_sorted k s) ]
  | Remove k ->
    if List.mem k s then [ (Ok, List.filter (fun x -> x <> k) s) ]
    else [ (Missing, s) ]
  | Member k -> if List.mem k s then [ (True, s) ] else [ (False, s) ]

let equal_inv (a : inv) b = a = b
let equal_res (a : res) b = a = b
let equal_state (a : state) b = a = b

let pp_inv ppf = function
  | Insert k -> Format.fprintf ppf "Insert(%d)" k
  | Remove k -> Format.fprintf ppf "Remove(%d)" k
  | Member k -> Format.fprintf ppf "Member(%d)" k

let pp_res ppf r =
  Format.pp_print_string ppf
    (match r with
    | Ok -> "Ok"
    | Duplicate -> "Duplicate"
    | Missing -> "Missing"
    | True -> "True"
    | False -> "False")

let pp_state ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       Format.pp_print_int)
    s

let insert_ok k = (Insert k, Ok)
let insert_dup k = (Insert k, Duplicate)
let remove_ok k = (Remove k, Ok)
let remove_missing k = (Remove k, Missing)
let member_true k = (Member k, True)
let member_false k = (Member k, False)

let universe =
  List.concat_map
    (fun k ->
      [
        insert_ok k;
        insert_dup k;
        remove_ok k;
        remove_missing k;
        member_true k;
        member_false k;
      ])
    keys

let op_label = function
  | Insert _, Ok -> "Insert/Ok"
  | Insert _, _ -> "Insert/Duplicate"
  | Remove _, Ok -> "Remove/Ok"
  | Remove _, _ -> "Remove/Missing"
  | Member _, True -> "Member/True"
  | Member _, _ -> "Member/False"

let op_values = function (Insert k | Remove k | Member k), _ -> [ k ]

let key_of = function (Insert k | Remove k | Member k), _ -> k

(* The natural cell partition: one cell per key.  Every operation
   addresses exactly one key, so nothing falls back to the whole-object
   cell and the cell-restricted relation equals dependency_hybrid. *)
let cell_of_inv = function Insert k | Remove k | Member k -> Some k

(* Presence/absence requirements drive the dependencies: an operation
   whose response requires the key to be absent is invalidated by a
   successful Insert of that key, and one requiring presence by a
   successful Remove. *)
let requires_absence = function
  | Insert _, Ok | Remove _, Missing | Member _, False -> true
  | _, _ -> false

let requires_presence = function
  | Insert _, Duplicate | Remove _, Ok | Member _, True -> true
  | _, _ -> false

let dependency_hybrid q p =
  key_of q = key_of p
  &&
  match p with
  | Insert _, Ok -> requires_absence q
  | Remove _, Ok -> requires_presence q
  | (Insert _ | Remove _ | Member _), _ -> false

let symmetric rel p q = rel p q || rel q p
let conflict_hybrid = symmetric dependency_hybrid

(* dependency_hybrid with the same-key restriction erased: the relation
   an object-granularity lock manager must install when it cannot see
   keys (it has to assume any Insert may invalidate any absence
   requirement).  A superset of a dependency relation is still a
   dependency relation, so this is sound — just needlessly coarse.  It
   is the whole-object baseline the cell-locking experiments compare
   against. *)
let dependency_whole_object q p =
  match p with
  | Insert _, Ok -> requires_absence q
  | Remove _, Ok -> requires_presence q
  | (Insert _ | Remove _ | Member _), _ -> false

let conflict_whole_object = symmetric dependency_whole_object

(* For the Directory, failure-to-commute happens to coincide with the
   symmetric closure of the minimal dependency relation (asserted by the
   tests): a set's non-commuting pairs are exactly the invalidating
   ones.  Contrast with Queue/Account, where they differ. *)
let conflict_commutativity = conflict_hybrid

let conflict_rw p q =
  match (p, q) with
  | (Member _, _), (Member _, _) -> false
  | ((Insert _ | Remove _ | Member _), _), _ -> true

(* ---- WAL codec (Wal.Codec.DURABLE) ---- *)

let codec =
  let module B = Util.Binio in
  {
    Wal.Codec.enc_inv =
      (fun buf -> function
        | Insert k ->
          B.w_tag buf 0;
          B.w_int buf k
        | Remove k ->
          B.w_tag buf 1;
          B.w_int buf k
        | Member k ->
          B.w_tag buf 2;
          B.w_int buf k);
    dec_inv =
      (fun r ->
        match B.r_tag r with
        | 0 -> Insert (B.r_int r)
        | 1 -> Remove (B.r_int r)
        | 2 -> Member (B.r_int r)
        | t -> B.corrupt "Directory.inv: tag %d" t);
    enc_res =
      (fun buf -> function
        | Ok -> B.w_tag buf 0
        | Duplicate -> B.w_tag buf 1
        | Missing -> B.w_tag buf 2
        | True -> B.w_tag buf 3
        | False -> B.w_tag buf 4);
    dec_res =
      (fun r ->
        match B.r_tag r with
        | 0 -> Ok
        | 1 -> Duplicate
        | 2 -> Missing
        | 3 -> True
        | 4 -> False
        | t -> B.corrupt "Directory.res: tag %d" t);
    enc_state = (fun buf s -> B.w_list B.w_int buf s);
    dec_state = (fun r -> B.r_list B.r_int r);
  }
