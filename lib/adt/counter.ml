type inv = Inc of int | Dec of int | Read
type res = Ok | Val of int
type state = int
type op = inv * res

let name = "Counter"
let amounts = [ 1; 2 ]

(* Reads in the bounded universe: every value reachable within the
   derivation depth from 0 by +-1/+-2 steps. *)
let read_values = [ -4; -3; -2; -1; 0; 1; 2; 3; 4 ]
let initial = 0

let step s = function
  | Inc n -> [ (Ok, s + n) ]
  | Dec n -> [ (Ok, s - n) ]
  | Read -> [ (Val s, s) ]

let equal_inv (a : inv) b = a = b
let equal_res (a : res) b = a = b
let equal_state (a : state) b = a = b

let pp_inv ppf = function
  | Inc n -> Format.fprintf ppf "Inc(%d)" n
  | Dec n -> Format.fprintf ppf "Dec(%d)" n
  | Read -> Format.fprintf ppf "Read()"

let pp_res ppf = function
  | Ok -> Format.fprintf ppf "Ok"
  | Val v -> Format.fprintf ppf "%d" v

let pp_state ppf s = Format.fprintf ppf "%d" s

let inc n = (Inc n, Ok)
let dec n = (Dec n, Ok)
let read v = (Read, Val v)

let universe =
  List.map inc amounts @ List.map dec amounts @ List.map read read_values

let op_label = function
  | Inc _, _ -> "Inc"
  | Dec _, _ -> "Dec"
  | Read, _ -> "Read"

let op_values = function
  | (Inc n | Dec n), _ -> [ n ]
  | Read, Val v -> [ v ]
  | Read, Ok -> []

let dependency_hybrid q p =
  match (q, p) with
  | (Read, _), ((Inc _ | Dec _), _) -> true
  | ((Inc _ | Dec _ | Read), _), _ -> false

let symmetric rel p q = rel p q || rel q p
let conflict_hybrid = symmetric dependency_hybrid
let conflict_commutativity = conflict_hybrid

let conflict_rw p q =
  match (p, q) with
  | (Read, _), (Read, _) -> false
  | ((Inc _ | Dec _ | Read), _), _ -> true

(* ---- WAL codec (Wal.Codec.DURABLE) ---- *)

let codec =
  let module B = Util.Binio in
  {
    Wal.Codec.enc_inv =
      (fun buf -> function
        | Inc n ->
          B.w_tag buf 0;
          B.w_int buf n
        | Dec n ->
          B.w_tag buf 1;
          B.w_int buf n
        | Read -> B.w_tag buf 2);
    dec_inv =
      (fun r ->
        match B.r_tag r with
        | 0 -> Inc (B.r_int r)
        | 1 -> Dec (B.r_int r)
        | 2 -> Read
        | t -> B.corrupt "Counter.inv: tag %d" t);
    enc_res =
      (fun buf -> function
        | Ok -> B.w_tag buf 0
        | Val v ->
          B.w_tag buf 1;
          B.w_int buf v);
    dec_res =
      (fun r ->
        match B.r_tag r with
        | 0 -> Ok
        | 1 -> Val (B.r_int r)
        | t -> B.corrupt "Counter.res: tag %d" t);
    enc_state = B.w_int;
    dec_state = B.r_int;
  }
