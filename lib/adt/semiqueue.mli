(** The SemiQueue data type (paper Section 4.3, Figure 4-4).

    [Ins] inserts an item; [Rem] {e nondeterministically} removes and
    returns some present item, blocking when empty.  The paper uses the
    SemiQueue to show that weakening a sequential specification with
    nondeterminism buys concurrency: its unique minimal dependency
    relation only prevents two Rems returning the {e same} item from
    running concurrently, so inserts run concurrently with everything. *)

type inv = Ins of int | Rem
type res = Ok | Val of int

include
  Spec.Adt_sig.BOUNDED
    with type inv := inv
     and type res := res
     and type state = int list
(** The state is the multiset of present items, kept sorted (canonical). *)

type op = inv * res

val ins : int -> op
val rem : int -> op

val dependency_fig_4_4 : op -> op -> bool
val conflict_hybrid : op -> op -> bool
val conflict_commutativity : op -> op -> bool
(** For the SemiQueue, failure-to-commute coincides with the symmetric
    closure of the minimal dependency relation. *)

val conflict_rw : op -> op -> bool

val codec : (inv, res, state) Wal.Codec.t
(** Byte (de)serializers for the durability layer; together with the
    serial specification this module satisfies {!Wal.Codec.DURABLE}.
    Round-trip ([decode (encode x) = x]) is a qcheck property in the
    test suite. *)
