type inv = Credit of int | Post of int | Debit of int
type res = Ok | Overdraft
type state = int
type op = inv * res

let name = "Account"
let amounts = [ 2; 3 ]
let post_factors = [ 1; 2 ]
let initial = 0

let step s = function
  | Credit n -> [ (Ok, s + n) ]
  | Post n -> [ (Ok, s * (1 + n)) ]
  | Debit n -> if s >= n then [ (Ok, s - n) ] else [ (Overdraft, s) ]

let equal_inv (a : inv) b = a = b
let equal_res (a : res) b = a = b
let equal_state (a : state) b = a = b

let pp_inv ppf = function
  | Credit n -> Format.fprintf ppf "Credit(%d)" n
  | Post n -> Format.fprintf ppf "Post(%d)" n
  | Debit n -> Format.fprintf ppf "Debit(%d)" n

let pp_res ppf = function
  | Ok -> Format.fprintf ppf "Ok"
  | Overdraft -> Format.fprintf ppf "Overdraft"

let pp_state ppf s = Format.fprintf ppf "%d" s

let credit n = (Credit n, Ok)
let post n = (Post n, Ok)
let debit_ok n = (Debit n, Ok)
let debit_overdraft n = (Debit n, Overdraft)

let universe =
  List.map credit amounts
  @ List.map post post_factors
  @ List.map debit_ok amounts
  @ List.map debit_overdraft amounts

let op_label = function
  | Credit _, _ -> "Credit/Ok"
  | Post _, _ -> "Post/Ok"
  | Debit _, Ok -> "Debit/Ok"
  | Debit _, Overdraft -> "Debit/Overdraft"

let op_values = function
  | (Credit n | Post n | Debit n), _ -> [ n ]

(* A naive "partition by amount" cell assignment.  It is UNSOUND — all
   amounts drain one shared balance, so a Debit(2) in one cell can
   invalidate a Debit(3) response in another — and is kept only as the
   required negative example: the partition tests check that
   Spec.Partition rejects it with a concrete counterexample.  The
   shipped partitioned account (Part.Paccount) uses escrow sub-balances
   instead. *)
let cell_of_amount = function Credit n | Post n | Debit n -> Some n

let dependency_fig_4_5 q p =
  match (q, p) with
  | (Debit _, Ok), (Debit _, Ok) -> true
  | (Debit _, Overdraft), ((Credit _ | Post _), Ok) -> true
  | ((Credit _ | Post _ | Debit _), _), _ -> false

let symmetric rel p q = rel p q || rel q p
let conflict_hybrid = symmetric dependency_fig_4_5

let conflict_commutativity p q =
  let one_way a b =
    match (a, b) with
    | (Credit _, _), (Post _, _) -> true
    | (Credit _, _), (Debit _, Overdraft) -> true
    | (Post _, _), (Debit _, _) -> true
    | (Debit _, Ok), (Debit _, Ok) -> true
    | ((Credit _ | Post _ | Debit _), _), _ -> false
  in
  one_way p q || one_way q p

let conflict_rw _ _ = true

(* ---- WAL codec (Wal.Codec.DURABLE): tag byte + zig-zag varint args ---- *)

let codec =
  let module B = Util.Binio in
  {
    Wal.Codec.enc_inv =
      (fun buf -> function
        | Credit n ->
          B.w_tag buf 0;
          B.w_int buf n
        | Post n ->
          B.w_tag buf 1;
          B.w_int buf n
        | Debit n ->
          B.w_tag buf 2;
          B.w_int buf n);
    dec_inv =
      (fun r ->
        match B.r_tag r with
        | 0 -> Credit (B.r_int r)
        | 1 -> Post (B.r_int r)
        | 2 -> Debit (B.r_int r)
        | t -> B.corrupt "Account.inv: tag %d" t);
    enc_res = (fun buf -> function Ok -> B.w_tag buf 0 | Overdraft -> B.w_tag buf 1);
    dec_res =
      (fun r ->
        match B.r_tag r with
        | 0 -> Ok
        | 1 -> Overdraft
        | t -> B.corrupt "Account.res: tag %d" t);
    enc_state = B.w_int;
    dec_state = B.r_int;
  }
