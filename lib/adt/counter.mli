(** An unbounded counter — an extension ADT (not in the paper's figures)
    exercising the derivation machinery on a type where the hybrid and
    commutativity-based conflict relations {e coincide}.

    [Inc]/[Dec] adjust the counter by a positive amount; [Read] returns
    its value.  Increments and decrements never invalidate anything
    (they are total and the counter is unbounded), so the derived
    invalidated-by relation only makes a [Read] depend on earlier
    updates.  Failure-to-commute gives exactly the same table: updates
    commute with each other and only reads observe them.  Contrast with
    {!Account}, where bounding the balance (overdrafts) and the
    multiplicative [Post] split the two relations apart. *)

type inv = Inc of int | Dec of int | Read
type res = Ok | Val of int

include
  Spec.Adt_sig.BOUNDED with type inv := inv and type res := res and type state = int

type op = inv * res

val inc : int -> op
val dec : int -> op
val read : int -> op

val dependency_hybrid : op -> op -> bool
(** The minimal dependency relation: a [Read] returning [v] depends on
    every earlier [Inc] and [Dec]. *)

val conflict_hybrid : op -> op -> bool
val conflict_commutativity : op -> op -> bool
(** Equal to {!conflict_hybrid} (asserted by tests). *)

val conflict_rw : op -> op -> bool

val codec : (inv, res, state) Wal.Codec.t
(** Byte (de)serializers for the durability layer; together with the
    serial specification this module satisfies {!Wal.Codec.DURABLE}.
    Round-trip ([decode (encode x) = x]) is a qcheck property in the
    test suite. *)
