(** An append-only Log — an extension ADT generalizing the paper's
    concurrent-enqueue observation.

    [Append v] adds a record; [Size] returns the record count; [Last]
    returns the most recent record ({e partial}: no response on an empty
    log).  Appends never invalidate anything, so under the hybrid
    protocol concurrent appenders proceed without conflicts and the
    commit-timestamp order decides the record order — exactly the FIFO
    queue's Enq story.  Commutativity-based locking must serialize
    appends of different values (the final log differs), so the hybrid
    relation is strictly finer here, as it is for the Queue. *)

type inv = Append of int | Size | Last
type res = Ok | Count of int | Val of int

include
  Spec.Adt_sig.BOUNDED
    with type inv := inv
     and type res := res
     and type state = int list
(** The state is the appended records, oldest first. *)

type op = inv * res

val append : int -> op
val size : int -> op
(** [size n] is the [Size] operation observing [n] records. *)

val last : int -> op

val dependency_hybrid : op -> op -> bool
(** [Size] observations depend on every Append; a [Last] returning [v]
    depends on Appends of [v' <> v]; Appends depend on nothing. *)

val conflict_hybrid : op -> op -> bool
val conflict_commutativity : op -> op -> bool
(** Adds Append/Append conflicts for distinct values. *)

val conflict_rw : op -> op -> bool

val codec : (inv, res, state) Wal.Codec.t
(** Byte (de)serializers for the durability layer; together with the
    serial specification this module satisfies {!Wal.Codec.DURABLE}.
    Round-trip ([decode (encode x) = x]) is a qcheck property in the
    test suite. *)
