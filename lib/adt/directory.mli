(** A Directory (set of keys) — an extension ADT showing result-dependent
    lock modes on a lookup structure, the style of type-specific locking
    the paper's Account example advocates.

    [Insert k] returns [Ok] when the key was absent and [Duplicate] when
    present; [Remove k] returns [Ok]/[Missing] symmetrically; [Member k]
    observes presence.  Operations on {e different} keys never conflict.
    On the same key, the derived relation distinguishes outcomes: e.g. a
    successful [Insert] is invalidated only by an earlier successful
    [Insert] of the same key, and a [Duplicate] response is invalidated
    by a successful [Remove]. *)

type inv = Insert of int | Remove of int | Member of int
type res = Ok | Duplicate | Missing | True | False

include
  Spec.Adt_sig.BOUNDED
    with type inv := inv
     and type res := res
     and type state = int list
(** The state is the sorted list of present keys. *)

type op = inv * res

val insert_ok : int -> op
val insert_dup : int -> op
val remove_ok : int -> op
val remove_missing : int -> op
val member_true : int -> op
val member_false : int -> op

val dependency_hybrid : op -> op -> bool
(** The derived minimal dependency relation (asserted equal to the
    machine-derived invalidated-by in the tests):
    on equal keys only —
    - [Insert/Ok] and [Remove/Missing] and [Member/False] depend on
      [Insert/Ok] (presence invalidates them) and on [Remove/Ok] for
      re-validation symmetry: precisely, anything requiring absence
      depends on [Insert/Ok], anything requiring presence depends on
      [Remove/Ok]. *)

val conflict_hybrid : op -> op -> bool
val conflict_commutativity : op -> op -> bool
val conflict_rw : op -> op -> bool
(** [Member] is the only reader. *)

val key_of : op -> int
(** The key an operation addresses. *)

val cell_of_inv : inv -> int option
(** One cell per key ({!Spec.Partition.SPEC}): always [Some key], so no
    operation falls back to the whole-object cell and the
    cell-restricted relation coincides with {!dependency_hybrid}. *)

val conflict_whole_object : op -> op -> bool
(** {!conflict_hybrid} with the same-key restriction erased — what an
    object-granularity lock manager blind to keys must install.  Sound
    (a superset of a dependency relation is one) but coarse; the
    whole-object baseline of the cell-locking experiments. *)

val codec : (inv, res, state) Wal.Codec.t
(** Byte (de)serializers for the durability layer; together with the
    serial specification this module satisfies {!Wal.Codec.DURABLE}.
    Round-trip ([decode (encode x) = x]) is a qcheck property in the
    test suite. *)
