type inv = Ins of int | Rem
type res = Ok | Val of int
type state = int list
type op = inv * res

let name = "SemiQueue"
let values = [ 1; 2 ]
let initial = []

let rec insert_sorted v = function
  | [] -> [ v ]
  | x :: _ as l when v <= x -> v :: l
  | x :: rest -> x :: insert_sorted v rest

let rec remove_one v = function
  | [] -> []
  | x :: rest -> if x = v then rest else x :: remove_one v rest

let distinct s = List.sort_uniq compare s

let step s = function
  | Ins v -> [ (Ok, insert_sorted v s) ]
  | Rem -> List.map (fun v -> (Val v, remove_one v s)) (distinct s)

let equal_inv (a : inv) b = a = b
let equal_res (a : res) b = a = b
let equal_state (a : state) b = a = b

let pp_inv ppf = function
  | Ins v -> Format.fprintf ppf "Ins(%d)" v
  | Rem -> Format.fprintf ppf "Rem()"

let pp_res ppf = function
  | Ok -> Format.fprintf ppf "Ok"
  | Val v -> Format.fprintf ppf "%d" v

let pp_state ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       Format.pp_print_int)
    s

let ins v = (Ins v, Ok)
let rem v = (Rem, Val v)
let universe = List.map ins values @ List.map rem values

let op_label = function
  | Ins _, _ -> "Ins"
  | Rem, _ -> "Rem"

let op_values = function
  | Ins v, _ -> [ v ]
  | Rem, Val v -> [ v ]
  | Rem, Ok -> []

let dependency_fig_4_4 q p =
  match (q, p) with
  | (Rem, Val v), (Rem, Val v') -> v = v'
  | ((Ins _ | Rem), _), _ -> false

let symmetric rel p q = rel p q || rel q p
let conflict_hybrid = symmetric dependency_fig_4_4
let conflict_commutativity = conflict_hybrid
let conflict_rw _ _ = true

(* ---- WAL codec (Wal.Codec.DURABLE) ---- *)

let codec =
  let module B = Util.Binio in
  {
    Wal.Codec.enc_inv =
      (fun buf -> function
        | Ins v ->
          B.w_tag buf 0;
          B.w_int buf v
        | Rem -> B.w_tag buf 1);
    dec_inv =
      (fun r ->
        match B.r_tag r with
        | 0 -> Ins (B.r_int r)
        | 1 -> Rem
        | t -> B.corrupt "SemiQueue.inv: tag %d" t);
    enc_res =
      (fun buf -> function
        | Ok -> B.w_tag buf 0
        | Val v ->
          B.w_tag buf 1;
          B.w_int buf v);
    dec_res =
      (fun r ->
        match B.r_tag r with
        | 0 -> Ok
        | 1 -> Val (B.r_int r)
        | t -> B.corrupt "SemiQueue.res: tag %d" t);
    enc_state = (fun buf s -> B.w_list B.w_int buf s);
    dec_state = (fun r -> B.r_list B.r_int r);
  }
