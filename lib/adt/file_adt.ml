type inv = Read | Write of int
type res = Val of int | Ok
type state = int
type op = inv * res

let name = "File"

(* The value domain used for bounded derivation; 0 is the initial value. *)
let values = [ 0; 1; 2 ]
let initial = 0

let step s = function
  | Read -> [ (Val s, s) ]
  | Write v -> [ (Ok, v) ]

let equal_inv (a : inv) b = a = b
let equal_res (a : res) b = a = b
let equal_state (a : state) b = a = b

let pp_inv ppf = function
  | Read -> Format.fprintf ppf "Read()"
  | Write v -> Format.fprintf ppf "Write(%d)" v

let pp_res ppf = function
  | Val v -> Format.fprintf ppf "%d" v
  | Ok -> Format.fprintf ppf "Ok"

let pp_state ppf s = Format.fprintf ppf "%d" s

let read v = (Read, Val v)
let write v = (Write v, Ok)
let universe = List.map read values @ List.map write values

let op_label = function
  | Read, _ -> "Read"
  | Write _, _ -> "Write"

let op_values = function
  | Read, Val v -> [ v ]
  | Read, Ok -> []
  | Write v, _ -> [ v ]

let dependency_fig_4_1 q p =
  match (q, p) with
  | (Read, Val v'), (Write v, Ok) -> v <> v'
  | ((Read | Write _), _), _ -> false

let symmetric rel p q = rel p q || rel q p
let conflict_hybrid = symmetric dependency_fig_4_1

let conflict_commutativity p q =
  match (p, q) with
  | (Write v, _), (Write v', _) -> v <> v'
  | (Read, Val v), (Write v', _) | (Write v', _), (Read, Val v) -> v <> v'
  | ((Read | Write _), _), _ -> false

let conflict_rw p q =
  match (p, q) with
  | (Read, _), (Read, _) -> false
  | ((Read | Write _), _), _ -> true

(* ---- WAL codec (Wal.Codec.DURABLE) ---- *)

let codec =
  let module B = Util.Binio in
  {
    Wal.Codec.enc_inv =
      (fun buf -> function
        | Read -> B.w_tag buf 0
        | Write v ->
          B.w_tag buf 1;
          B.w_int buf v);
    dec_inv =
      (fun r ->
        match B.r_tag r with
        | 0 -> Read
        | 1 -> Write (B.r_int r)
        | t -> B.corrupt "File.inv: tag %d" t);
    enc_res =
      (fun buf -> function
        | Val v ->
          B.w_tag buf 0;
          B.w_int buf v
        | Ok -> B.w_tag buf 1);
    dec_res =
      (fun r ->
        match B.r_tag r with
        | 0 -> Val (B.r_int r)
        | 1 -> Ok
        | t -> B.corrupt "File.res: tag %d" t);
    enc_state = B.w_int;
    dec_state = B.r_int;
  }
