(** The File data type (paper Section 4.3, Figure 4-1).

    A File provides [Read], returning the most recently written value,
    and [Write].  The unique minimal dependency relation makes a Read
    depend on Writes of {e different} values only, so concurrent writes
    are permitted — the protocol generalizes the Thomas Write Rule:
    later transactions read the value written by the transaction with the
    later commit timestamp. *)

type inv = Read | Write of int
type res = Val of int | Ok

include
  Spec.Adt_sig.BOUNDED with type inv := inv and type res := res and type state = int

type op = inv * res

val read : int -> op
(** [read v] is the operation [Read] returning [v]. *)

val write : int -> op

val dependency_fig_4_1 : op -> op -> bool
(** The paper's Figure 4-1: [(q, p)] related iff [q] is a Read of value
    [v'] and [p] a Write of [v] with [v ≠ v'].  Rows depend on columns. *)

val conflict_hybrid : op -> op -> bool
(** Symmetric closure of {!dependency_fig_4_1}: the lock-conflict
    relation used by the hybrid protocol. *)

val conflict_commutativity : op -> op -> bool
(** Failure-to-commute: Read/Write conflict when values differ,
    Write/Write conflict when values differ. *)

val conflict_rw : op -> op -> bool
(** Classical read/write locking: conflict unless both are Reads. *)

val codec : (inv, res, state) Wal.Codec.t
(** Byte (de)serializers for the durability layer; together with the
    serial specification this module satisfies {!Wal.Codec.DURABLE}.
    Round-trip ([decode (encode x) = x]) is a qcheck property in the
    test suite. *)
