type inv = Append of int | Size | Last
type res = Ok | Count of int | Val of int
type state = int list
type op = inv * res

let name = "Log"
let values = [ 1; 2 ]
let counts = [ 0; 1; 2; 3 ]
let initial = []

let step s = function
  | Append v -> [ (Ok, s @ [ v ]) ]
  | Size -> [ (Count (List.length s), s) ]
  | Last -> (
    match List.rev s with [] -> [] | v :: _ -> [ (Val v, s) ])

let equal_inv (a : inv) b = a = b
let equal_res (a : res) b = a = b
let equal_state (a : state) b = a = b

let pp_inv ppf = function
  | Append v -> Format.fprintf ppf "Append(%d)" v
  | Size -> Format.fprintf ppf "Size()"
  | Last -> Format.fprintf ppf "Last()"

let pp_res ppf = function
  | Ok -> Format.fprintf ppf "Ok"
  | Count n -> Format.fprintf ppf "Count(%d)" n
  | Val v -> Format.fprintf ppf "%d" v

let pp_state ppf s =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       Format.pp_print_int)
    s

let append v = (Append v, Ok)
let size n = (Size, Count n)
let last v = (Last, Val v)

let universe = List.map append values @ List.map size counts @ List.map last values

let op_label = function
  | Append _, _ -> "Append"
  | Size, _ -> "Size"
  | Last, _ -> "Last"

let op_values = function
  | Append v, _ -> [ v ]
  | Size, Count n -> [ n ]
  | Size, _ -> []
  | Last, Val v -> [ v ]
  | Last, _ -> []

let dependency_hybrid q p =
  match (q, p) with
  | (Size, _), (Append _, _) -> true
  | (Last, Val v), (Append v', _) -> v <> v'
  | ((Append _ | Size | Last), _), _ -> false

let symmetric rel p q = rel p q || rel q p
let conflict_hybrid = symmetric dependency_hybrid

let conflict_commutativity p q =
  let one_way a b =
    match (a, b) with
    | (Append v, _), (Append v', _) -> v <> v'
    | (Size, _), (Append _, _) -> true
    | (Last, Val v), (Append v', _) -> v <> v'
    | ((Append _ | Size | Last), _), _ -> false
  in
  one_way p q || one_way q p

let conflict_rw p q =
  match (p, q) with
  | ((Size | Last), _), ((Size | Last), _) -> false
  | ((Append _ | Size | Last), _), _ -> true

(* ---- WAL codec (Wal.Codec.DURABLE) ---- *)

let codec =
  let module B = Util.Binio in
  {
    Wal.Codec.enc_inv =
      (fun buf -> function
        | Append v ->
          B.w_tag buf 0;
          B.w_int buf v
        | Size -> B.w_tag buf 1
        | Last -> B.w_tag buf 2);
    dec_inv =
      (fun r ->
        match B.r_tag r with
        | 0 -> Append (B.r_int r)
        | 1 -> Size
        | 2 -> Last
        | t -> B.corrupt "Log.inv: tag %d" t);
    enc_res =
      (fun buf -> function
        | Ok -> B.w_tag buf 0
        | Count n ->
          B.w_tag buf 1;
          B.w_int buf n
        | Val v ->
          B.w_tag buf 2;
          B.w_int buf v);
    dec_res =
      (fun r ->
        match B.r_tag r with
        | 0 -> Ok
        | 1 -> Count (B.r_int r)
        | 2 -> Val (B.r_int r)
        | t -> B.corrupt "Log.res: tag %d" t);
    enc_state = (fun buf s -> B.w_list B.w_int buf s);
    dec_state = (fun r -> B.r_list B.r_int r);
  }
