(** The FIFO Queue data type (paper Section 4.3, Figures 4-2 and 4-3).

    [Enq] places an item at the end; [Deq] removes and returns the item
    at the front, {e blocking} when the queue is empty (a partial
    operation: [step] returns no legal response).

    FIFO queues are the paper's motivating example: they have two
    distinct, incomparable minimal dependency relations.

    - Figure 4-2 (the invalidated-by relation): Deq depends on Enqs of
      different items and on Deqs of the same item.  Enqueues never
      conflict, so {e concurrent enqueues are permitted} even though they
      do not commute — the dequeue order of concurrently enqueued items
      is decided by commit timestamps.
    - Figure 4-3: Enqs of different items depend on each other, Deqs of
      the same item depend on each other, and Enq/Deq never conflict.
      Its symmetric closure coincides with the commutativity-based
      conflict relation. *)

type inv = Enq of int | Deq
type res = Ok | Val of int

include
  Spec.Adt_sig.BOUNDED
    with type inv := inv
     and type res := res
     and type state = int list
(** The state is the queue contents, front first. *)

type op = inv * res

val enq : int -> op
val deq : int -> op
(** [deq v] is the operation [Deq] returning item [v]. *)

val dependency_fig_4_2 : op -> op -> bool
val dependency_fig_4_3 : op -> op -> bool

val cell_head : int
val cell_tail : int

val cell_of_inv : inv -> int option
(** Head/tail lock striping ({!Spec.Partition.SPEC}): [Deq] addresses
    {!cell_head}, [Enq] {!cell_tail}.  Sound for {!dependency_fig_4_3}
    (whose Enq/Deq pairs never conflict, so the restriction drops
    nothing) and provably unsound for {!dependency_fig_4_2} (the
    restriction drops Deq-depends-on-Enq; the partition tests retrieve
    the Definition-3 counterexample). *)

val conflict_hybrid : op -> op -> bool
(** Symmetric closure of {!dependency_fig_4_2} — allows concurrent
    enqueues.  This is the relation showcased by the paper's protocol. *)

val conflict_fig_4_3 : op -> op -> bool
(** Symmetric closure of {!dependency_fig_4_3}. *)

val conflict_commutativity : op -> op -> bool
(** Failure-to-commute; equal to {!conflict_fig_4_3} (paper §7.1). *)

val conflict_rw : op -> op -> bool
(** Read/write locking: both operations are writers, so everything
    conflicts. *)

val codec : (inv, res, state) Wal.Codec.t
(** Byte (de)serializers for the durability layer; together with the
    serial specification this module satisfies {!Wal.Codec.DURABLE}.
    Round-trip ([decode (encode x) = x]) is a qcheck property in the
    test suite. *)
