type inv = Put of int | Get
type res = Ok | Val of int
type state = int list
type op = inv * res

let name = "BoundedBuffer"
let capacity = 2
let values = [ 1; 2 ]
let initial = []

let step s = function
  | Put v -> if List.length s < capacity then [ (Ok, s @ [ v ]) ] else []
  | Get -> ( match s with [] -> [] | front :: rest -> [ (Val front, rest) ])

let equal_inv (a : inv) b = a = b
let equal_res (a : res) b = a = b
let equal_state (a : state) b = a = b

let pp_inv ppf = function
  | Put v -> Format.fprintf ppf "Put(%d)" v
  | Get -> Format.fprintf ppf "Get()"

let pp_res ppf = function
  | Ok -> Format.fprintf ppf "Ok"
  | Val v -> Format.fprintf ppf "%d" v

let pp_state ppf s =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       Format.pp_print_int)
    s

let put v = (Put v, Ok)
let get v = (Get, Val v)
let universe = List.map put values @ List.map get values

let op_label = function
  | Put _, _ -> "Put"
  | Get, _ -> "Get"

let op_values = function
  | Put v, _ -> [ v ]
  | Get, Val v -> [ v ]
  | Get, Ok -> []

let dependency_hybrid q p =
  match (q, p) with
  | (Put _, _), (Put _, _) -> true (* an earlier Put can fill the buffer *)
  | (Get, Val v), (Put v', Ok) -> v <> v'
  | (Get, Val v), (Get, Val v') -> v = v'
  | ((Put _ | Get), _), _ -> false

let symmetric rel p q = rel p q || rel q p
let conflict_hybrid = symmetric dependency_hybrid

(* Failure-to-commute drops the Get/Put cross-conflicts (they commute,
   as in the unbounded queue) but keeps Put/Put — strictly finer than
   the invalidated-by closure, making the bounded buffer a concrete
   instance of the paper's remark that invalidated-by need not be
   minimal. *)
let conflict_commutativity p q =
  match (p, q) with
  | (Put _, _), (Put _, _) -> true
  | (Get, Val v), (Get, Val v') -> v = v'
  | ((Put _ | Get), _), _ -> false

let conflict_rw _ _ = true

(* ---- WAL codec (Wal.Codec.DURABLE) ---- *)

let codec =
  let module B = Util.Binio in
  {
    Wal.Codec.enc_inv =
      (fun buf -> function
        | Put v ->
          B.w_tag buf 0;
          B.w_int buf v
        | Get -> B.w_tag buf 1);
    dec_inv =
      (fun r ->
        match B.r_tag r with
        | 0 -> Put (B.r_int r)
        | 1 -> Get
        | t -> B.corrupt "BoundedBuffer.inv: tag %d" t);
    enc_res =
      (fun buf -> function
        | Ok -> B.w_tag buf 0
        | Val v ->
          B.w_tag buf 1;
          B.w_int buf v);
    dec_res =
      (fun r ->
        match B.r_tag r with
        | 0 -> Ok
        | 1 -> Val (B.r_int r)
        | t -> B.corrupt "BoundedBuffer.res: tag %d" t);
    enc_state = (fun buf s -> B.w_list B.w_int buf s);
    dec_state = (fun r -> B.r_list B.r_int r);
  }
