(** The Account data type (paper Section 4.3, Figure 4-5; Section 7.1,
    Figure 7-1; appendix).

    [Credit] adds to the balance, [Post] posts interest (multiplies the
    balance), and [Debit] subtracts — returning [Overdraft] and leaving
    the balance unchanged when it would go negative.  The Account is the
    paper's showcase for two ideas:

    - {e result-dependent lock modes}: a successful Debit and an
      Overdraft acquire different locks.  Credits never invalidate a
      successful Debit but can invalidate an Overdraft, so Credit
      conflicts only with the Overdraft mode.
    - {e dependency beats commutativity}: Post fails to commute with
      Credit and Debit (it is a multiplicative map), yet invalidates only
      Overdrafts; commutativity-based locking (Figure 7-1) therefore
      serializes Post against everything Credit/Debit while the hybrid
      protocol lets them run concurrently.

    Modelling note ({e substitution documented in DESIGN.md}): the paper's
    [Post(5)] multiplies the balance by 1.05; we use exact integer
    arithmetic, [Post p] multiplying by [1 + p], so legality and
    equivalence are exact.  This preserves every property the figures
    depend on (Post is a balance-non-decreasing affine map that commutes
    with Posts but not with Credits/Debits).  The bounded-derivation value
    domain uses credit/debit amounts [{2, 3}] and post factors [{1, 2}];
    amount 1 is excluded because with integer balances an overdraft of 1
    implies balance 0, which a multiplication cannot invalidate — a
    degenerate artifact of the integer domain, not of the construction. *)

type inv = Credit of int | Post of int | Debit of int
type res = Ok | Overdraft

include
  Spec.Adt_sig.BOUNDED with type inv := inv and type res := res and type state = int
(** The state is the balance (a non-negative integer). *)

type op = inv * res

val credit : int -> op
val post : int -> op
val debit_ok : int -> op
val debit_overdraft : int -> op

val dependency_fig_4_5 : op -> op -> bool
(** Figure 4-5, the unique minimal dependency relation: a successful
    Debit depends on successful Debits; an Overdraft depends on Credits
    and Posts. *)

val cell_of_amount : inv -> int option
(** A naive by-amount cell assignment — {e unsound}, kept as the
    required negative example for {!Spec.Partition}: all amounts drain
    one shared balance, so the cell restriction drops load-bearing
    Debit/Debit pairs and the tests retrieve the Definition-3
    counterexample.  The shipped partitioned account ([Part.Paccount])
    uses escrow sub-balances instead. *)

val conflict_hybrid : op -> op -> bool
(** Symmetric closure of {!dependency_fig_4_5} — the conflict relation
    installed by the appendix's [account] constructor:
    [CREDIT-OVERDRAFT], [POST-OVERDRAFT], [DEBIT-DEBIT]. *)

val conflict_commutativity : op -> op -> bool
(** Figure 7-1, failure-to-commute: adds Post/Credit, Post/Debit
    conflicts and keeps Debit/Debit and Credit/Overdraft. *)

val conflict_rw : op -> op -> bool
(** All three operations write, so everything conflicts. *)

val codec : (inv, res, state) Wal.Codec.t
(** Byte (de)serializers for the durability layer; together with the
    serial specification this module satisfies {!Wal.Codec.DURABLE}.
    Round-trip ([decode (encode x) = x]) is a qcheck property in the
    test suite. *)
