(** A bounded FIFO buffer — an extension ADT with {e two-sided}
    partiality: [Put] blocks when the buffer is full and [Get] blocks
    when it is empty (the paper motivates partial operations exactly for
    such producer/consumer shapes).

    Two instructive derived facts, both machine-checked in the tests:

    - {e bounding the buffer destroys the paper's headline
      concurrent-enqueue property}: in the unbounded queue nothing
      invalidates an [Enq], but here an earlier [Put] can fill the
      buffer and invalidate a later [Put]'s [Ok] response, so
      invalidated-by makes [Put] depend on every [Put] regardless of
      values ([Get] keeps the unbounded queue's Figure 4-2 pattern);
    - this type is a concrete instance of the paper's remark that
      {e invalidated-by need not be minimal}: the failure-to-commute
      relation (Puts never commute against the bound; Gets of the same
      item do not commute; Put/Get commute) is itself a dependency
      relation sitting strictly below the invalidated-by closure, so
      commutativity-based locking is actually the better choice for a
      bounded buffer. *)

type inv = Put of int | Get
type res = Ok | Val of int

include
  Spec.Adt_sig.BOUNDED
    with type inv := inv
     and type res := res
     and type state = int list
(** The state is the buffer contents, front first; at most
    {!capacity}. *)

val capacity : int
(** 2 in the bounded universe. *)

type op = inv * res

val put : int -> op
val get : int -> op

val dependency_hybrid : op -> op -> bool
(** The derived invalidated-by relation (checked by tests — not minimal
    for this type, see above): [Put] depends on every [Put]; [Get v]
    depends on [Put v'] with [v ≠ v'] and on [Get v]. *)

val conflict_hybrid : op -> op -> bool
val conflict_commutativity : op -> op -> bool
val conflict_rw : op -> op -> bool

val codec : (inv, res, state) Wal.Codec.t
(** Byte (de)serializers for the durability layer; together with the
    serial specification this module satisfies {!Wal.Codec.DURABLE}.
    Round-trip ([decode (encode x) = x]) is a qcheck property in the
    test suite. *)
