(** Mechanical regeneration of every figure in the paper.

    Each figure packages: the table {e derived} from the serial
    specification alone (via {!Spec.Dependency} / {!Spec.Commutativity}
    at the standard bound), the table the {e paper} prints, and notes on
    how to read it.  [check] compares the two — this is the reproduction
    of the paper's "evaluation": the type-specific conflict tables fall
    out of the specifications exactly as claimed.

    Figure 4-3 is special: the paper exhibits it as a {e second} minimal
    dependency relation for FIFO queues, incomparable with the derived
    invalidated-by relation of Figure 4-2.  Its entry derives the
    classification of the declared relation; the dependency/minimality/
    incomparability properties are asserted by the test suite using
    {!Spec.Dependency.Make.is_dependency_relation}. *)

type figure = {
  id : string;  (** e.g. ["4-1"] *)
  title : string;
  derived : unit -> Spec.Classify.table;
      (** computed from the serial specification (memoized) *)
  expected : Spec.Classify.table;  (** the table printed in the paper *)
  notes : string;
}

val depth : int
(** Context-length bound used for every derivation (3; tests check
    stability against depth 2 and, for the cheap ADTs, depth 4). *)

val all : figure list
(** Figures 4-1, 4-2, 4-3, 4-4, 4-5 and 7-1, in paper order. *)

val by_id : string -> figure option
val check : figure -> bool
(** Derived table equals the paper's. *)
