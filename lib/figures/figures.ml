type figure = {
  id : string;
  title : string;
  derived : unit -> Spec.Classify.table;
  expected : Spec.Classify.table;
  notes : string;
}

let depth = 3

let memo f =
  let cache = ref None in
  fun () ->
    match !cache with
    | Some v -> v
    | None ->
      let v = f () in
      cache := Some v;
      v

let mk_table title labels cells =
  {
    Spec.Classify.title;
    labels;
    cells = Array.of_list (List.map Array.of_list cells);
  }

(* ------------------------------------------------------------------ *)

module File_dep = Spec.Dependency.Make (Adt.File_adt)
module File_cls = Spec.Classify.Make (Adt.File_adt)

let fig_4_1 =
  let title = "Figure 4-1: Minimal Dependency Relation for File" in
  {
    id = "4-1";
    title;
    derived =
      memo (fun () ->
          File_cls.classify ~title
            (Spec.Relation.pred (File_dep.invalidated_by ~depth)));
    expected =
      mk_table title [ "Read"; "Write" ]
        Spec.Classify.[ [ Never; Neq_values ]; [ Never; Never ] ];
    notes =
      "A Read returning v' depends on Writes of v <> v' only; Writes depend on \
       nothing, so concurrent Writes are permitted (generalizing the Thomas \
       Write Rule).";
  }

module Queue_dep = Spec.Dependency.Make (Adt.Fifo_queue)
module Queue_cls = Spec.Classify.Make (Adt.Fifo_queue)

let fig_4_2 =
  let title = "Figure 4-2: First Minimal Dependency Relation for Queue" in
  {
    id = "4-2";
    title;
    derived =
      memo (fun () ->
          Queue_cls.classify ~title
            (Spec.Relation.pred (Queue_dep.invalidated_by ~depth)));
    expected =
      mk_table title [ "Enq"; "Deq" ]
        Spec.Classify.[ [ Never; Never ]; [ Neq_values; Eq_values ] ];
    notes =
      "The invalidated-by relation: Deq of v depends on Enqs of different items \
       and Deqs of the same item; Enqs never conflict, so concurrent enqueuers \
       proceed and commit timestamps decide their dequeue order.";
  }

let fig_4_3 =
  let title = "Figure 4-3: Second Minimal Dependency Relation for Queue" in
  {
    id = "4-3";
    title;
    derived =
      memo (fun () ->
          Queue_cls.classify ~title Adt.Fifo_queue.dependency_fig_4_3);
    expected =
      mk_table title [ "Enq"; "Deq" ]
        Spec.Classify.[ [ Neq_values; Never ]; [ Never; Eq_values ] ];
    notes =
      "A second, incomparable minimal dependency relation (declared, then \
       machine-checked to be a minimal dependency relation): Enqs of different \
       items depend on each other and Deqs of the same item depend on each \
       other, but Enq and Deq never conflict.  Its symmetric closure equals \
       the commutativity-based conflict relation.";
  }

module Semi_dep = Spec.Dependency.Make (Adt.Semiqueue)
module Semi_cls = Spec.Classify.Make (Adt.Semiqueue)

let fig_4_4 =
  let title = "Figure 4-4: Minimal Dependency Relation for SemiQueue" in
  {
    id = "4-4";
    title;
    derived =
      memo (fun () ->
          Semi_cls.classify ~title
            (Spec.Relation.pred (Semi_dep.invalidated_by ~depth)));
    expected =
      mk_table title [ "Ins"; "Rem" ]
        Spec.Classify.[ [ Never; Never ]; [ Never; Eq_values ] ];
    notes =
      "Nondeterministic removal: only Rems returning the same item conflict; \
       Ins runs concurrently with everything.  Weakening the specification \
       with nondeterminism buys concurrency relative to the FIFO queue.";
  }

module Acct_dep = Spec.Dependency.Make (Adt.Account)
module Acct_com = Spec.Commutativity.Make (Adt.Account)
module Acct_cls = Spec.Classify.Make (Adt.Account)

let account_labels = [ "Credit/Ok"; "Post/Ok"; "Debit/Ok"; "Debit/Overdraft" ]

let fig_4_5 =
  let title = "Figure 4-5: Minimal Dependency Relation for Account" in
  {
    id = "4-5";
    title;
    derived =
      memo (fun () ->
          Acct_cls.classify ~title
            (Spec.Relation.pred (Acct_dep.invalidated_by ~depth)));
    expected =
      mk_table title account_labels
        Spec.Classify.
          [
            [ Never; Never; Never; Never ];
            [ Never; Never; Never; Never ];
            [ Never; Never; Always; Never ];
            [ Always; Always; Never; Never ];
          ];
    notes =
      "Result-dependent lock modes: a successful Debit depends only on \
       successful Debits; an Overdraft depends on Credits and Posts (either \
       can invalidate the exception).  Credits and Posts depend on nothing.";
  }

let fig_7_1 =
  let title = "Figure 7-1: \"Failure to Commute\" Relation for Account" in
  {
    id = "7-1";
    title;
    derived =
      memo (fun () ->
          Acct_cls.classify ~title
            (Spec.Relation.pred (Acct_com.failure_to_commute ~depth)));
    expected =
      mk_table title account_labels
        Spec.Classify.
          [
            [ Never; Always; Never; Always ];
            [ Always; Never; Always; Always ];
            [ Never; Always; Always; Never ];
            [ Always; Always; Never; Never ];
          ];
    notes =
      "Commutativity-based locking must add Post/Credit and Post/Debit \
       conflicts (Post is a multiplicative map) on top of the Figure 4-5 \
       conflicts, which is why the hybrid protocol strictly dominates it on \
       Account workloads.  Successful Debits fail to commute with each other \
       (combined legality), but a successful Debit commutes with an \
       Overdraft.";
  }

let all = [ fig_4_1; fig_4_2; fig_4_3; fig_4_4; fig_4_5; fig_7_1 ]
let by_id id = List.find_opt (fun f -> String.equal f.id id) all
let check f = Spec.Classify.equal_table (f.derived ()) f.expected
