exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

type reader = { src : string; mutable pos : int; limit : int }

let reader ?(pos = 0) ?limit src =
  let limit = match limit with Some l -> l | None -> String.length src in
  if pos < 0 || limit > String.length src || pos > limit then
    invalid_arg "Binio.reader: bounds";
  { src; pos; limit }

let pos r = r.pos
let eof r = r.pos >= r.limit
let remaining r = r.limit - r.pos

(* Ints are written in a zig-zag varint encoding: small magnitudes
   (op arguments, balances, timestamps) take one byte, and the format is
   independent of the host's int width. *)
let w_int buf n =
  let z = if n >= 0 then n lsl 1 else lnot (n lsl 1) in
  let rec go z =
    if z land lnot 0x7f = 0 then Buffer.add_char buf (Char.chr z)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (z land 0x7f)));
      go (z lsr 7)
    end
  in
  go z

let r_byte r =
  if eof r then corrupt "varint: truncated at %d" r.pos
  else begin
    let c = Char.code r.src.[r.pos] in
    r.pos <- r.pos + 1;
    c
  end

let r_int r =
  let rec go shift acc =
    if shift > 62 then corrupt "varint: overlong at %d" r.pos
    else
      let b = r_byte r in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  let z = go 0 0 in
  if z land 1 = 0 then z lsr 1 else lnot (z lsr 1)

let w_string buf s =
  w_int buf (String.length s);
  Buffer.add_string buf s

let r_string r =
  let n = r_int r in
  if n < 0 || n > remaining r then corrupt "string: bad length %d at %d" n r.pos
  else begin
    let s = String.sub r.src r.pos n in
    r.pos <- r.pos + n;
    s
  end

let w_list w buf l =
  w_int buf (List.length l);
  List.iter (w buf) l

let r_list rd r =
  let n = r_int r in
  if n < 0 || n > remaining r then corrupt "list: bad length %d at %d" n r.pos
  else List.init n (fun _ -> rd r)

let w_tag buf t =
  if t < 0 || t > 0xff then invalid_arg "Binio.w_tag: out of range";
  Buffer.add_char buf (Char.chr t)

let r_tag = r_byte

(* Fixed-width little-endian 32-bit words for the log framing (lengths
   and checksums must be parseable without trusting any varint). *)
let w_u32 buf n =
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((n lsr (8 * i)) land 0xff))
  done

let r_u32_at s pos =
  let b i = Char.code s.[pos + i] in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)

(* CRC-32 (IEEE 802.3, reflected), table-driven. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 ?(pos = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - pos in
  let table = Lazy.force crc_table in
  let c = ref 0xffffffff in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code s.[i]) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xffffffff
