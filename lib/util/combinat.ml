let rec insert_everywhere x = function
  | [] -> [ [ x ] ]
  | y :: ys as l -> (x :: l) :: List.map (fun t -> y :: t) (insert_everywhere x ys)

let rec permutations = function
  | [] -> [ [] ]
  | x :: xs -> List.concat_map (insert_everywhere x) (permutations xs)

let rec subsets = function
  | [] -> [ [] ]
  | x :: xs ->
    let rest = subsets xs in
    rest @ List.map (fun s -> x :: s) rest

let rec sequences alphabet n =
  if n <= 0 then [ [] ]
  else
    let shorter = sequences alphabet (n - 1) in
    List.concat_map (fun x -> List.map (fun s -> x :: s) shorter) alphabet

let sequences_upto alphabet n =
  let rec go k acc =
    if k > n then List.rev acc else go (k + 1) (sequences alphabet k :: acc)
  in
  List.concat (go 0 [])

let cartesian xs ys = List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs

let rec interleavings xs ys =
  match (xs, ys) with
  | [], l | l, [] -> [ l ]
  | x :: xs', y :: ys' ->
    List.map (fun t -> x :: t) (interleavings xs' ys)
    @ List.map (fun t -> y :: t) (interleavings xs ys')

let topological_orders xs lt =
  (* Generate orders incrementally: at each step pick any remaining element
     that has no remaining predecessor.  This enumerates exactly the
     linearizations of the partial order.  Elements are tracked by their
     position in [xs] so duplicates and immediate values are handled. *)
  let indexed = List.mapi (fun i x -> (i, x)) xs in
  let rec go remaining =
    match remaining with
    | [] -> [ [] ]
    | _ ->
      let minimal (i, x) =
        not (List.exists (fun (j, y) -> j <> i && lt y x) remaining)
      in
      let candidates = List.filter minimal remaining in
      List.concat_map
        (fun (i, x) ->
          let rest = List.filter (fun (j, _) -> j <> i) remaining in
          List.map (fun t -> x :: t) (go rest))
        candidates
  in
  go indexed

let pairs xs = cartesian xs xs

let rec is_prefix ~eq xs ys =
  match (xs, ys) with
  | [], _ -> true
  | _ :: _, [] -> false
  | x :: xs', y :: ys' -> eq x y && is_prefix ~eq xs' ys'

let rec is_subsequence ~eq xs ys =
  match (xs, ys) with
  | [], _ -> true
  | _ :: _, [] -> false
  | x :: xs', y :: ys' ->
    if eq x y then is_subsequence ~eq xs' ys' else is_subsequence ~eq xs ys'
