(** Binary (de)serialization helpers for the durability layer.

    Writers append to a {!Buffer.t}; readers consume a string through a
    mutable cursor.  Decoders raise {!Corrupt} on malformed input — the
    WAL reader catches it and treats the record as damaged, so decoders
    must validate every length they read before allocating. *)

exception Corrupt of string

val corrupt : ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Corrupt} with a formatted message. *)

type reader

val reader : ?pos:int -> ?limit:int -> string -> reader
val pos : reader -> int
val eof : reader -> bool
val remaining : reader -> int

val w_int : Buffer.t -> int -> unit
(** Zig-zag varint: one byte for small magnitudes, sign-safe. *)

val r_int : reader -> int

val w_string : Buffer.t -> string -> unit
val r_string : reader -> string

val w_list : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a list -> unit
val r_list : (reader -> 'a) -> reader -> 'a list

val w_tag : Buffer.t -> int -> unit
(** One-byte constructor tag (0..255). *)

val r_tag : reader -> int

val w_u32 : Buffer.t -> int -> unit
(** Fixed-width little-endian 32-bit word (log framing). *)

val r_u32_at : string -> int -> int

val crc32 : ?pos:int -> ?len:int -> string -> int
(** CRC-32 (IEEE), as used by the log's record framing. *)
