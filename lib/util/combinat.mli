(** Small combinatorics toolkit used by the bounded model checkers.

    Everything here is exact and deterministic; complexity is exponential
    by nature (permutations, subsets), so callers are expected to keep the
    inputs test-sized.  The formal checkers in {!Model.Atomicity} quantify
    over permutations of transactions and subsets of active transactions,
    which is exactly what this module provides. *)

val permutations : 'a list -> 'a list list
(** [permutations xs] is the list of all permutations of [xs].
    [permutations []] is [[[]]]. Length is [n!]. *)

val subsets : 'a list -> 'a list list
(** [subsets xs] is the list of all [2^n] subsets of [xs], each preserving
    the relative order of elements in [xs]. *)

val sequences : 'a list -> int -> 'a list list
(** [sequences alphabet n] is the list of all sequences over [alphabet] of
    length exactly [n] ([|alphabet|^n] of them). *)

val sequences_upto : 'a list -> int -> 'a list list
(** [sequences_upto alphabet n] is all sequences of length [0..n],
    shortest first. *)

val cartesian : 'a list -> 'b list -> ('a * 'b) list
(** [cartesian xs ys] is all pairs [(x, y)]. *)

val interleavings : 'a list -> 'a list -> 'a list list
(** [interleavings xs ys] is all order-preserving merges of [xs] and
    [ys]. *)

val topological_orders : 'a list -> ('a -> 'a -> bool) -> 'a list list
(** [topological_orders xs lt] is every permutation of [xs] that is
    consistent with the (assumed acyclic) strict order [lt]: whenever
    [lt a b] holds, [a] appears before [b].  Used to enumerate the total
    orders consistent with a [Known] relation. *)

val pairs : 'a list -> ('a * 'a) list
(** [pairs xs] is all ordered pairs [(x, y)] with [x] and [y] drawn from
    [xs], including diagonal pairs. *)

val is_prefix : eq:('a -> 'a -> bool) -> 'a list -> 'a list -> bool
(** [is_prefix ~eq xs ys] is true when [xs] is a prefix of [ys]. *)

val is_subsequence : eq:('a -> 'a -> bool) -> 'a list -> 'a list -> bool
(** [is_subsequence ~eq xs ys] is true when [xs] can be obtained from [ys]
    by deleting elements (order preserved). *)
