type kill_point =
  | Before_record of int
  | After_record of int
  | Mid_record of int
  | Torn_tail of int

let pp_kill_point ppf = function
  | Before_record n -> Format.fprintf ppf "before record %d" n
  | After_record n -> Format.fprintf ppf "after record %d" n
  | Mid_record n -> Format.fprintf ppf "mid-append of record %d" n
  | Torn_tail k -> Format.fprintf ppf "final block torn by %d bytes" k

(* Frame boundaries of a clean log image: [offsets.(i)] is where record
   [i] starts; a final entry marks the end of the last record. *)
let boundaries raw =
  let n = String.length raw in
  let rec go acc off =
    if off >= n then List.rev (off :: acc)
    else
      let len = Util.Binio.r_u32_at raw off in
      go (off :: acc) (off + 8 + len)
  in
  if n = 0 then [ 0 ] else go [] 0

let cut raw ~at = String.sub raw 0 (min at (String.length raw))

let image raw = function
  | Before_record i ->
    let bs = Array.of_list (boundaries raw) in
    cut raw ~at:bs.(i)
  | After_record i ->
    let bs = Array.of_list (boundaries raw) in
    cut raw ~at:bs.(i + 1)
  | Mid_record i ->
    let bs = Array.of_list (boundaries raw) in
    cut raw ~at:((bs.(i) + bs.(i + 1)) / 2)
  | Torn_tail k -> cut raw ~at:(String.length raw - k)

(* Every interesting deterministic kill point of a log image:
   - before and after each commit record (the commit either survives
     whole or is absent: atomic commit);
   - mid-append of every record (a torn frame must roll back to the
     previous record, never corrupt recovery);
   - a torn final block (partial last page after power loss). *)
let kill_points ?(limit = max_int) raw =
  let records, tail = Log.parse raw in
  (match tail with
  | Log.Clean -> ()
  | Log.Torn _ -> invalid_arg "Wal.Crash.kill_points: log image already torn");
  let commit_points =
    List.concat
      (List.mapi
         (fun i r ->
           match r with
           | Log.Commit _ -> [ Before_record i; After_record i ]
           | _ -> [])
         records)
  in
  let mid_points = List.mapi (fun i _ -> Mid_record i) records in
  let tail_points = if String.length raw >= 3 then [ Torn_tail 1; Torn_tail 3 ] else [] in
  let all = commit_points @ mid_points @ tail_points in
  if List.length all <= limit then all
  else
    (* Deterministic thinning: keep every commit point, sample the rest. *)
    let rest = mid_points @ tail_points in
    let keep = max 0 (limit - List.length commit_points) in
    let stride = max 1 (List.length rest / max 1 keep) in
    commit_points @ List.filteri (fun i _ -> i mod stride = 0 && i / stride < keep) rest
