type ('inv, 'res, 'state) t = {
  enc_inv : Buffer.t -> 'inv -> unit;
  dec_inv : Util.Binio.reader -> 'inv;
  enc_res : Buffer.t -> 'res -> unit;
  dec_res : Util.Binio.reader -> 'res;
  enc_state : Buffer.t -> 'state -> unit;
  dec_state : Util.Binio.reader -> 'state;
}

module type DURABLE = sig
  include Spec.Adt_sig.S

  val codec : (inv, res, state) t
end

type packed = Packed : (module DURABLE) -> packed

let to_string enc v =
  let buf = Buffer.create 16 in
  enc buf v;
  Buffer.contents buf

let of_string dec s =
  let r = Util.Binio.reader s in
  let v = dec r in
  if not (Util.Binio.eof r) then
    raise (Util.Binio.Corrupt "Codec.of_string: trailing bytes");
  v

let encode_op c (i, r) =
  let buf = Buffer.create 16 in
  c.enc_inv buf i;
  c.enc_res buf r;
  Buffer.contents buf

let decode_op c s =
  let r = Util.Binio.reader s in
  let i = c.dec_inv r in
  let res = c.dec_res r in
  if not (Util.Binio.eof r) then raise (Util.Binio.Corrupt "Codec.decode_op: trailing bytes");
  (i, res)

let encode_states c ss = to_string (Util.Binio.w_list c.enc_state) ss
let decode_states c s = of_string (Util.Binio.r_list c.dec_state) s

let roundtrip_op c ~equal_inv ~equal_res op =
  match decode_op c (encode_op c op) with
  | i', r' -> equal_inv (fst op) i' && equal_res (snd op) r'
  | exception Util.Binio.Corrupt _ -> false

let roundtrip_state c ~equal_state s =
  match of_string c.dec_state (to_string c.enc_state s) with
  | s' -> equal_state s s'
  | exception Util.Binio.Corrupt _ -> false
