(** The write-ahead intentions log.

    Record vocabulary (one-to-one with the paper's protocol state):
    - [Object]: declares an object's name and ADT type, so recovery can
      dispatch to the right {!Codec.DURABLE} implementation;
    - [Intention]: one operation appended to a transaction's intentions
      list at some object (Section 5.1) — a redo record;
    - [Commit]: a transaction's commit timestamp.  The manager appends it
      {e before} distributing commit events and inside the timestamp-draw
      critical section, so the log's commit-record order is exactly the
      commit-timestamp order — the hybrid serialization order;
    - [Abort]: the transaction's intentions must be discarded;
    - [Checkpoint]: an object's horizon advanced to [upto]
      (Definition 20) and [payload] is its folded version (the common
      prefix of Definition 22, serialized by the codec).  Theorem 24 —
      the common prefix grows monotonically — is what makes the
      checkpoint a sound truncation point: no later event can un-fold it.

    Three records implement presumed-abort two-phase commit across
    shards (see [Dist]):
    - [Prepare]: a participant shard's forced vote for global
      transaction [gtxn]: local branch [txn] holds its locks, [ts] is
      the hybrid timestamp drawn at this shard.  A [Prepare] not
      followed by this transaction's [Commit]/[Abort] is {e in doubt}
      and resolves against the coordinator's decision log on recovery;
    - [Decide]: the coordinator's forced commit decision — [ts] is
      [max] over the participants' prepared timestamps.  Written only
      to the coordinator's decision log; its durability point {e is}
      the global commit point.  Presumed abort: abort decisions are
      never logged, so an in-doubt participant finding no [Decide]
      aborts;
    - [Forget]: the coordinator may drop the decision once every
      participant has acknowledged a durable commit record — nobody
      will ever ask about [gtxn] again.

    [Object], [Intention] and [Checkpoint] carry an optional [cell] key:
    when an ADT is partitioned into independently locked cells
    ({!Spec.Partition}, [Part.Cells]), each cell is a sub-object with its
    own intentions list and horizon, and its records identify which cell
    of the logical object they belong to.  [None] means the record is at
    whole-object granularity (the seed behaviour; also the fallback cell
    for non-partitionable operations).  Because each cell has a distinct
    [obj] name, recovery needs no cell-specific logic — per-cell redo in
    commit-timestamp order is exactly per-object redo — but the key is
    persisted so a recovered image can be re-aggregated and audited
    cell-by-cell.

    Framing is [length:u32][crc32:u32][payload].  {!parse} stops at the
    first bad frame and reports it as a torn tail, which is the expected
    shape after [kill -9] mid-append.

    The writer keeps the live record set in memory (object declarations,
    latest checkpoints, intentions not yet covered by every touched
    object's checkpoint) and rewrites the file down to that set once
    enough dead records accumulate — keeping the log O(live
    transactions) instead of O(history).

    {2 Durability: LSNs and group commit}

    Every append is assigned a log sequence number (LSN, counting
    appends ever, surviving rewrites).  Two watermarks define the
    durability state: {!appended_lsn} (everything written to the OS) and
    {!durable_lsn} (everything forced to stable storage).  The
    {e durability point} of a record is the return of {!sync_upto} for
    its LSN: the record — and every record appended before it — is then
    on disk.

    {!sync_upto} batches.  The first committer to need a sync becomes
    the {e leader}: it snapshots [appended_lsn] and runs a single fsync
    covering every record appended so far, while later committers wait
    on a condition variable until [durable_lsn] passes their LSN — so N
    concurrent commits share one fsync, and the fsync runs {e outside}
    the log mutex, letting the next batch's appends (and hence the
    manager's commit-timestamp draws) proceed meanwhile.  Batching never
    reorders the file: appends stay strictly ordered by the log mutex,
    so durable commit-record order remains commit-timestamp order.
    With [group_commit = false] the fsync runs while holding the log
    mutex (every committer pays a serialized fsync) — the
    pre-group-commit baseline. *)

type record =
  | Object of { obj : string; adt : string; cell : int option }
  | Intention of { obj : string; txn : int; payload : string; cell : int option }
  | Commit of { txn : int; ts : int }
  | Abort of { txn : int }
  | Checkpoint of { obj : string; upto : int; payload : string; cell : int option }
  | Prepare of { txn : int; gtxn : int; ts : int }
  | Decide of { gtxn : int; ts : int }
  | Forget of { gtxn : int }

val equal_record : record -> record -> bool
val pp_record : Format.formatter -> record -> unit

(** {1 Framing} *)

val frame : Buffer.t -> record -> unit
val framed_size : record -> int

type tail = Clean | Torn of int  (** byte offset of the first bad frame *)

val parse : string -> record list * tail
val read_file : string -> string
val read : string -> record list * tail

(** {1 Writer} *)

type t

val create : ?fsync:bool -> ?group_commit:bool -> ?compact_threshold:int -> string -> t
(** Open a fresh log at the given path (truncating any previous file).
    [fsync:false] turns the durability barrier into bookkeeping only —
    for experiments where durability across power loss is not under
    test (the sync hook still runs, so fault injection works without
    paying real fsyncs).  [group_commit] (default [true]) selects the
    batched leader/follower sync; [false] restores the serialized
    one-fsync-per-{!sync_upto} baseline.  A rewrite triggers once
    [compact_threshold] (default 512) dead records accumulate. *)

val append : t -> record -> unit
(** Thread-safe; buffered by the OS until a sync covers it. *)

val append_lsn : t -> record -> int
(** Like {!append} but returns the record's LSN — the value to hand to
    {!sync_upto} to reach this record's durability point. *)

val sync_upto : t -> int -> unit
(** Block until every record with LSN at or below the argument is
    durable (see the group-commit protocol above).  Raises whatever the
    failing fsync (or an installed {!set_sync_hook} hook) raised; on
    failure [durable_lsn] has {e not} advanced, and the records' fate on
    stable storage is unknown — callers must treat this as
    crash-equivalent for anything already appended (see
    {!Runtime.Manager}'s [Durability_lost]). *)

val sync : t -> unit
(** [sync_upto] to the current appended watermark, if anything is
    outstanding. *)

val set_sync_hook : t -> (unit -> unit) -> unit
(** Install a hook that runs at every durability point, just before the
    fsync (and even when [fsync:false]).  A raising hook makes the sync
    fail exactly like a failing fsync — the regression tests inject
    durability faults with this. *)

val clear_sync_hook : t -> unit

val close : t -> unit
val path : t -> string

val file_records : t -> int
(** Records currently in the file (resets at each rewrite). *)

val file_bytes : t -> int

val live : t -> int
(** Size of the live set a rewrite would retain — the O(live
    transactions) bound the acceptance criterion measures. *)

val appended_lsn : t -> int
(** LSN of the latest append (0 if none). *)

val durable_lsn : t -> int
(** Highest LSN known durable.  [appended_lsn - durable_lsn] is the
    durable lag — the records a crash right now would tear off. *)

val fsyncs : t -> int
(** Completed durability rounds — with [fsync] enabled, exactly the
    number of [Unix.fsync] calls the sync path has made.  The group
    commit acceptance criterion is [fsyncs t < commits] under concurrent
    committers. *)

val group_commit : t -> bool

val checkpoint_upto : t -> string -> int option
(** The latest checkpointed horizon for an object, if any. *)

val register_introspection : t -> unit
(** Register this log with the live-introspection registry: a ["wal"]
    snapshot channel provider (file/live record and byte counts, LSN
    watermarks, checkpoint and active-transaction tallies, dirty flag)
    and callback gauges [wal_file_bytes], [wal_live_records],
    [wal_checkpoint_lag] (committed transactions whose records the
    compactor must retain because some touched object has not
    checkpointed past them) and [wal_durable_lag]
    ([appended_lsn - durable_lsn], the durability analogue of
    Theorem 24's compaction debt), all labelled by the log's file name.
    Fsync latency is always recorded in the [wal.fsync_latency]
    histogram and per-round batch sizes in [wal.fsync_batch]; this call
    only adds the level-style views. *)
