(** The write-ahead intentions log.

    Record vocabulary (one-to-one with the paper's protocol state):
    - [Object]: declares an object's name and ADT type, so recovery can
      dispatch to the right {!Codec.DURABLE} implementation;
    - [Intention]: one operation appended to a transaction's intentions
      list at some object (Section 5.1) — a redo record;
    - [Commit]: a transaction's commit timestamp.  The manager appends it
      {e before} distributing commit events and inside the timestamp-draw
      critical section, so the log's commit-record order is exactly the
      commit-timestamp order — the hybrid serialization order;
    - [Abort]: the transaction's intentions must be discarded;
    - [Checkpoint]: an object's horizon advanced to [upto]
      (Definition 20) and [payload] is its folded version (the common
      prefix of Definition 22, serialized by the codec).  Theorem 24 —
      the common prefix grows monotonically — is what makes the
      checkpoint a sound truncation point: no later event can un-fold it.

    Framing is [length:u32][crc32:u32][payload].  {!parse} stops at the
    first bad frame and reports it as a torn tail, which is the expected
    shape after [kill -9] mid-append.

    The writer keeps the live record set in memory (object declarations,
    latest checkpoints, intentions not yet covered by every touched
    object's checkpoint) and rewrites the file down to that set once
    enough dead records accumulate — keeping the log O(live
    transactions) instead of O(history). *)

type record =
  | Object of { obj : string; adt : string }
  | Intention of { obj : string; txn : int; payload : string }
  | Commit of { txn : int; ts : int }
  | Abort of { txn : int }
  | Checkpoint of { obj : string; upto : int; payload : string }

val equal_record : record -> record -> bool
val pp_record : Format.formatter -> record -> unit

(** {1 Framing} *)

val frame : Buffer.t -> record -> unit
val framed_size : record -> int

type tail = Clean | Torn of int  (** byte offset of the first bad frame *)

val parse : string -> record list * tail
val read_file : string -> string
val read : string -> record list * tail

(** {1 Writer} *)

type t

val create : ?fsync:bool -> ?compact_threshold:int -> string -> t
(** Open a fresh log at the given path (truncating any previous file).
    [fsync:false] turns {!sync} into a no-op — for experiments where
    durability across power loss is not under test.  A rewrite triggers
    once [compact_threshold] (default 512) dead records accumulate. *)

val append : t -> record -> unit
(** Thread-safe; buffered by the OS until {!sync}. *)

val sync : t -> unit
(** fsync if there are unsynced appends (and [fsync] was not disabled). *)

val close : t -> unit
val path : t -> string

val file_records : t -> int
(** Records currently in the file (resets at each rewrite). *)

val file_bytes : t -> int

val live : t -> int
(** Size of the live set a rewrite would retain — the O(live
    transactions) bound the acceptance criterion measures. *)

val checkpoint_upto : t -> string -> int option
(** The latest checkpointed horizon for an object, if any. *)

val register_introspection : t -> unit
(** Register this log with the live-introspection registry: a ["wal"]
    snapshot channel provider (file/live record and byte counts,
    checkpoint and active-transaction tallies, dirty flag) and callback
    gauges [wal_file_bytes], [wal_live_records] and [wal_checkpoint_lag]
    (committed transactions whose records the compactor must retain
    because some touched object has not checkpointed past them), all
    labelled by the log's file name.  Fsync latency is always recorded
    in the [wal.fsync_latency] histogram; this call only adds the
    level-style views. *)
