(** (De)serializers turning an ADT's invocations, responses and states
    into WAL record payloads.

    The paper's LOCK protocol (Section 5.1) already keeps, per
    transaction, the redo information a write-ahead log needs: the
    intentions list is a sequence of (invocation, response) operations,
    and replaying committed intentions in commit-timestamp order rebuilds
    the committed state.  A codec is the missing piece — a stable byte
    encoding of those operations and of the folded version state, so the
    log survives the process. *)

type ('inv, 'res, 'state) t = {
  enc_inv : Buffer.t -> 'inv -> unit;
  dec_inv : Util.Binio.reader -> 'inv;
  enc_res : Buffer.t -> 'res -> unit;
  dec_res : Util.Binio.reader -> 'res;
  enc_state : Buffer.t -> 'state -> unit;
  dec_state : Util.Binio.reader -> 'state;
}

(** A serial specification packaged with its codec: the contract an ADT
    must meet to be durable.  Decoders raise {!Util.Binio.Corrupt} on
    malformed payloads; [decode (encode x) = x] up to the spec's equality
    is a qcheck property for every shipped ADT. *)
module type DURABLE = sig
  include Spec.Adt_sig.S

  val codec : (inv, res, state) t
end

type packed = Packed : (module DURABLE) -> packed
(** Existential wrapper for registries keyed by ADT name (recovery
    dispatches on the [Object] record's type name). *)

val to_string : (Buffer.t -> 'a -> unit) -> 'a -> string

val of_string : (Util.Binio.reader -> 'a) -> string -> 'a
(** Raises {!Util.Binio.Corrupt} on trailing bytes. *)

val encode_op : ('i, 'r, 's) t -> 'i * 'r -> string
(** Intention-record payload: invocation then response. *)

val decode_op : ('i, 'r, 's) t -> string -> 'i * 'r

val encode_states : ('i, 'r, 's) t -> 's list -> string
(** Checkpoint-record payload: the folded version is a state {e set}
    (singleton for deterministic ADTs, larger for SemiQueue-style
    nondeterminism). *)

val decode_states : ('i, 'r, 's) t -> string -> 's list

val roundtrip_op :
  ('i, 'r, 's) t -> equal_inv:('i -> 'i -> bool) -> equal_res:('r -> 'r -> bool) -> 'i * 'r -> bool

val roundtrip_state : ('i, 'r, 's) t -> equal_state:('s -> 's -> bool) -> 's -> bool
