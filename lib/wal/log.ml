module B = Util.Binio

type record =
  | Object of { obj : string; adt : string; cell : int option }
  | Intention of { obj : string; txn : int; payload : string; cell : int option }
  | Commit of { txn : int; ts : int }
  | Abort of { txn : int }
  | Checkpoint of { obj : string; upto : int; payload : string; cell : int option }
  | Prepare of { txn : int; gtxn : int; ts : int }
  | Decide of { gtxn : int; ts : int }
  | Forget of { gtxn : int }

let equal_record (a : record) b = a = b

let pp_cell ppf = function
  | None -> ()
  | Some c -> Format.fprintf ppf ", cell=%d" c

let pp_record ppf = function
  | Object { obj; adt; cell } -> Format.fprintf ppf "Object(%s:%s%a)" obj adt pp_cell cell
  | Intention { obj; txn; payload; cell } ->
    Format.fprintf ppf "Intention(%s, T%d, %d bytes%a)" obj txn (String.length payload)
      pp_cell cell
  | Commit { txn; ts } -> Format.fprintf ppf "Commit(T%d, ts=%d)" txn ts
  | Abort { txn } -> Format.fprintf ppf "Abort(T%d)" txn
  | Checkpoint { obj; upto; payload; cell } ->
    Format.fprintf ppf "Checkpoint(%s, upto=%d, %d bytes%a)" obj upto (String.length payload)
      pp_cell cell
  | Prepare { txn; gtxn; ts } -> Format.fprintf ppf "Prepare(T%d, G%d, ts=%d)" txn gtxn ts
  | Decide { gtxn; ts } -> Format.fprintf ppf "Decide(G%d, ts=%d)" gtxn ts
  | Forget { gtxn } -> Format.fprintf ppf "Forget(G%d)" gtxn

(* ---- record payload encoding (inside the frame) ---- *)

let tag_object = 1
let tag_intention = 2
let tag_commit = 3
let tag_abort = 4
let tag_checkpoint = 5
let tag_prepare = 6
let tag_decide = 7
let tag_forget = 8

(* Cell keys are non-negative; -1 on the wire means "whole object". *)
let w_cell buf = function None -> B.w_int buf (-1) | Some c -> B.w_int buf c

let r_cell r =
  match B.r_int r with
  | -1 -> None
  | c when c >= 0 -> Some c
  | c -> raise (B.Corrupt (Printf.sprintf "bad cell key %d" c))

let encode_record buf = function
  | Object { obj; adt; cell } ->
    B.w_tag buf tag_object;
    B.w_string buf obj;
    B.w_string buf adt;
    w_cell buf cell
  | Intention { obj; txn; payload; cell } ->
    B.w_tag buf tag_intention;
    B.w_string buf obj;
    B.w_int buf txn;
    B.w_string buf payload;
    w_cell buf cell
  | Commit { txn; ts } ->
    B.w_tag buf tag_commit;
    B.w_int buf txn;
    B.w_int buf ts
  | Abort { txn } ->
    B.w_tag buf tag_abort;
    B.w_int buf txn
  | Checkpoint { obj; upto; payload; cell } ->
    B.w_tag buf tag_checkpoint;
    B.w_string buf obj;
    B.w_int buf upto;
    B.w_string buf payload;
    w_cell buf cell
  | Prepare { txn; gtxn; ts } ->
    B.w_tag buf tag_prepare;
    B.w_int buf txn;
    B.w_int buf gtxn;
    B.w_int buf ts
  | Decide { gtxn; ts } ->
    B.w_tag buf tag_decide;
    B.w_int buf gtxn;
    B.w_int buf ts
  | Forget { gtxn } ->
    B.w_tag buf tag_forget;
    B.w_int buf gtxn

let decode_record s =
  let r = B.reader s in
  let record =
    match B.r_tag r with
    | 1 ->
      let obj = B.r_string r in
      let adt = B.r_string r in
      let cell = r_cell r in
      Object { obj; adt; cell }
    | 2 ->
      let obj = B.r_string r in
      let txn = B.r_int r in
      let payload = B.r_string r in
      let cell = r_cell r in
      Intention { obj; txn; payload; cell }
    | 3 ->
      let txn = B.r_int r in
      let ts = B.r_int r in
      Commit { txn; ts }
    | 4 -> Abort { txn = B.r_int r }
    | 5 ->
      let obj = B.r_string r in
      let upto = B.r_int r in
      let payload = B.r_string r in
      let cell = r_cell r in
      Checkpoint { obj; upto; payload; cell }
    | 6 ->
      let txn = B.r_int r in
      let gtxn = B.r_int r in
      let ts = B.r_int r in
      Prepare { txn; gtxn; ts }
    | 7 ->
      let gtxn = B.r_int r in
      let ts = B.r_int r in
      Decide { gtxn; ts }
    | 8 -> Forget { gtxn = B.r_int r }
    | t -> raise (B.Corrupt (Printf.sprintf "unknown record tag %d" t))
  in
  if not (B.eof r) then raise (B.Corrupt "trailing bytes in record");
  record

(* ---- framing: [len:u32][crc32(payload):u32][payload] ---- *)

let header_bytes = 8
let max_record_bytes = 1 lsl 28

let frame buf record =
  let payload = Buffer.create 32 in
  encode_record payload record;
  let s = Buffer.contents payload in
  B.w_u32 buf (String.length s);
  B.w_u32 buf (B.crc32 s);
  Buffer.add_string buf s

let framed_size record =
  let buf = Buffer.create 32 in
  frame buf record;
  Buffer.length buf

type tail = Clean | Torn of int

(* One framing or decode failure ends the parse: everything at or after
   the bad offset is a torn tail (the expected shape after kill -9 mid
   append).  CRC catches a partially written payload whose length header
   made it to disk intact. *)
let parse s =
  let n = String.length s in
  let rec go acc off =
    if off = n then (List.rev acc, Clean)
    else if n - off < header_bytes then (List.rev acc, Torn off)
    else
      let len = B.r_u32_at s off in
      let crc = B.r_u32_at s (off + 4) in
      if len < 0 || len > max_record_bytes || off + header_bytes + len > n then
        (List.rev acc, Torn off)
      else
        let payload = String.sub s (off + header_bytes) len in
        if B.crc32 payload <> crc then (List.rev acc, Torn off)
        else
          match decode_record payload with
          | record -> go (record :: acc) (off + header_bytes + len)
          | exception B.Corrupt _ -> (List.rev acc, Torn off)
  in
  go [] 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      really_input_string ic n)

let read path = parse (read_file path)

(* ------------------------------------------------------------------ *)
(* Writer with checkpoint-driven truncation and group commit           *)

let m_appends = Obs.Metrics.counter "wal.appends"
let m_bytes = Obs.Metrics.counter "wal.bytes"
let m_fsyncs = Obs.Metrics.counter "wal.fsyncs"
let m_checkpoints = Obs.Metrics.counter "wal.checkpoints"
let m_rewrites = Obs.Metrics.counter "wal.rewrites"
let h_fsync = Obs.Metrics.histogram "wal.fsync_latency"

(* Records made durable per sync round: the group-commit batch size.
   Buckets are counts, not seconds. *)
let h_batch =
  Obs.Metrics.histogram
    ~bounds:[| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256. |]
    "wal.fsync_batch"

type txn_info = {
  mutable t_ops : (int * string * string * int option) list;
      (* seq, obj, payload, cell; newest first *)
  mutable t_objs : string list; (* objects touched, no duplicates *)
}

type t = {
  path : string;
  fsync : bool;
  group_commit : bool;
  compact_threshold : int;
  mutex : Mutex.t;
  cond : Condition.t; (* durable_lsn advanced, or the sync leader changed *)
  mutable fd : Unix.file_descr;
  mutable closed : bool;
  mutable seq : int; (* appends ever = the appended-LSN watermark *)
  mutable durable_lsn : int; (* every record with LSN <= this is durable *)
  mutable syncing : bool; (* a sync leader is running (fd must not be swapped) *)
  mutable n_syncs : int; (* completed durability rounds (one fsync each) *)
  mutable sync_hook : (unit -> unit) option; (* test fault injection *)
  mutable file_records : int; (* records in the current file *)
  mutable file_bytes : int;
  (* live-set bookkeeping: exactly the records a rewrite must retain *)
  objs : (string, string * int option) Hashtbl.t; (* obj -> (adt, cell) *)
  ckpts : (string, int * string * int option) Hashtbl.t; (* obj -> (upto, payload, cell) *)
  active : (int, txn_info) Hashtbl.t; (* txns with ops, not yet completed *)
  committed : (int, int * int * txn_info) Hashtbl.t; (* txn -> (seq, ts, info) *)
  prepared : (int, int * int * int) Hashtbl.t;
      (* in-doubt 2PC participants: txn -> (seq, gtxn, prepared ts);
         retained until the transaction's Commit or Abort record *)
  decisions : (int, int * int) Hashtbl.t;
      (* coordinator commit decisions: gtxn -> (seq, decided ts);
         retained until the Forget record (presumed abort: an absent
         decision means abort, so only commits ever need retaining) *)
}

let create ?(fsync = true) ?(group_commit = true) ?(compact_threshold = 512) path =
  let fd = Unix.openfile path Unix.[ O_WRONLY; O_CREAT; O_TRUNC; O_CLOEXEC ] 0o644 in
  {
    path;
    fsync;
    group_commit;
    compact_threshold;
    mutex = Mutex.create ();
    cond = Condition.create ();
    fd;
    closed = false;
    seq = 0;
    durable_lsn = 0;
    syncing = false;
    n_syncs = 0;
    sync_hook = None;
    file_records = 0;
    file_bytes = 0;
    objs = Hashtbl.create 8;
    ckpts = Hashtbl.create 8;
    active = Hashtbl.create 32;
    committed = Hashtbl.create 32;
    prepared = Hashtbl.create 8;
    decisions = Hashtbl.create 8;
  }

let path t = t.path

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let write_all fd s =
  let n = String.length s in
  let b = Bytes.unsafe_of_string s in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

let fsync_dir path =
  match Unix.openfile (Filename.dirname path) Unix.[ O_RDONLY; O_CLOEXEC ] 0 with
  | fd ->
    Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let live_records t =
  Hashtbl.length t.objs + Hashtbl.length t.ckpts
  + Hashtbl.fold (fun _ info acc -> acc + List.length info.t_ops) t.active 0
  + Hashtbl.fold (fun _ (_, _, info) acc -> acc + List.length info.t_ops + 1) t.committed 0
  + Hashtbl.length t.prepared + Hashtbl.length t.decisions

let find_active t txn =
  match Hashtbl.find_opt t.active txn with
  | Some info -> info
  | None ->
    let info = { t_ops = []; t_objs = [] } in
    Hashtbl.replace t.active txn info;
    info

(* A committed transaction's records become redundant once every object
   it touched has checkpointed at or past its timestamp: its intentions
   are folded into each object's durable version (Theorem 24 makes the
   fold permanent), so recovery no longer needs to redo them. *)
let covered t ts info =
  List.for_all
    (fun obj ->
      match Hashtbl.find_opt t.ckpts obj with
      | Some (upto, _, _) -> ts <= upto
      | None -> false)
    info.t_objs

let drop_covered t =
  let dead =
    Hashtbl.fold
      (fun txn (_, ts, info) acc -> if covered t ts info then txn :: acc else acc)
      t.committed []
  in
  List.iter (Hashtbl.remove t.committed) dead

(* Track the live set under an appended record. *)
let account t seq = function
  | Object { obj; adt; cell } -> Hashtbl.replace t.objs obj (adt, cell)
  | Intention { obj; txn; payload; cell } ->
    let info = find_active t txn in
    info.t_ops <- (seq, obj, payload, cell) :: info.t_ops;
    if not (List.mem obj info.t_objs) then info.t_objs <- obj :: info.t_objs
  | Commit { txn; ts } -> (
    Hashtbl.remove t.prepared txn;
    match Hashtbl.find_opt t.active txn with
    | None -> () (* read-only or no-op transaction: nothing to redo *)
    | Some info ->
      Hashtbl.remove t.active txn;
      if not (covered t ts info) then Hashtbl.replace t.committed txn (seq, ts, info))
  | Abort { txn } ->
    (* Recovery discards uncommitted intentions anyway, so an aborted
       transaction's records need not be retained at all. *)
    Hashtbl.remove t.prepared txn;
    Hashtbl.remove t.active txn
  | Prepare { txn; gtxn; ts } ->
    (* An in-doubt vote must survive rewrites until the decision lands:
       recovery keys its decision-log lookup on it. *)
    Hashtbl.replace t.prepared txn (seq, gtxn, ts)
  | Decide { gtxn; ts } -> Hashtbl.replace t.decisions gtxn (seq, ts)
  | Forget { gtxn } ->
    (* Written only after every participant durably committed, so no
       recovery will ever ask about this decision again. *)
    Hashtbl.remove t.decisions gtxn
  | Checkpoint { obj; upto; payload; cell } ->
    Obs.Metrics.incr m_checkpoints;
    (match Hashtbl.find_opt t.ckpts obj with
    | Some (prev, _, _) when prev > upto -> () (* never regress a checkpoint *)
    | Some _ | None -> Hashtbl.replace t.ckpts obj (upto, payload, cell));
    drop_covered t

(* Rewrite the file down to the live set: per-object declarations and
   latest checkpoints first, then the retained transaction records in
   their original append order.  Atomic via write-to-temp + rename, so a
   crash during the rewrite leaves the previous log intact.  Must not
   run while a sync leader is fsyncing outside the mutex — the leader
   holds the old fd. *)
let rewrite_locked t =
  let buf = Buffer.create 4096 in
  let count = ref 0 in
  let emit r =
    frame buf r;
    incr count
  in
  Hashtbl.fold (fun obj (adt, cell) acc -> (obj, adt, cell) :: acc) t.objs []
  |> List.sort compare
  |> List.iter (fun (obj, adt, cell) -> emit (Object { obj; adt; cell }));
  Hashtbl.fold (fun obj (upto, payload, cell) acc -> (obj, upto, payload, cell) :: acc) t.ckpts []
  |> List.sort compare
  |> List.iter (fun (obj, upto, payload, cell) -> emit (Checkpoint { obj; upto; payload; cell }));
  let tail = ref [] in
  let add seq r = tail := (seq, r) :: !tail in
  Hashtbl.iter
    (fun txn info ->
      List.iter
        (fun (seq, obj, payload, cell) -> add seq (Intention { obj; txn; payload; cell }))
        info.t_ops)
    t.active;
  Hashtbl.iter
    (fun txn (seq, ts, info) ->
      List.iter
        (fun (s, obj, payload, cell) -> add s (Intention { obj; txn; payload; cell }))
        info.t_ops;
      add seq (Commit { txn; ts }))
    t.committed;
  Hashtbl.iter (fun txn (seq, gtxn, ts) -> add seq (Prepare { txn; gtxn; ts })) t.prepared;
  Hashtbl.iter (fun gtxn (seq, ts) -> add seq (Decide { gtxn; ts })) t.decisions;
  List.sort (fun (a, _) (b, _) -> compare a b) !tail
  |> List.iter (fun (_, r) -> emit r);
  let tmp = t.path ^ ".rewrite" in
  let fd = Unix.openfile tmp Unix.[ O_WRONLY; O_CREAT; O_TRUNC; O_CLOEXEC ] 0o644 in
  (try
     write_all fd (Buffer.contents buf);
     if t.fsync then Unix.fsync fd;
     Unix.close fd
   with e ->
     Unix.close fd;
     raise e);
  Unix.rename tmp t.path;
  if t.fsync then fsync_dir t.path;
  Unix.close t.fd;
  t.fd <- Unix.openfile t.path Unix.[ O_WRONLY; O_APPEND; O_CLOEXEC ] 0o644;
  (* The whole live set was just written (and, when durability is on,
     fsynced through the rename): every appended record is durable. *)
  t.durable_lsn <- t.seq;
  t.file_records <- !count;
  t.file_bytes <- Buffer.length buf;
  Obs.Metrics.incr m_rewrites

let maybe_rewrite_locked t =
  if
    (not t.syncing)
    && t.file_records - live_records t >= t.compact_threshold
  then rewrite_locked t

let append_lsn t record =
  with_lock t (fun () ->
      if t.closed then invalid_arg "Wal.Log.append: log closed";
      let buf = Buffer.create 64 in
      frame buf record;
      let s = Buffer.contents buf in
      write_all t.fd s;
      t.seq <- t.seq + 1;
      t.file_records <- t.file_records + 1;
      t.file_bytes <- t.file_bytes + String.length s;
      Obs.Metrics.incr m_appends;
      Obs.Metrics.add m_bytes (String.length s);
      account t t.seq record;
      let lsn = t.seq in
      maybe_rewrite_locked t;
      lsn)

let append t record = ignore (append_lsn t record : int)

(* ---- the durability point ----

   [sync_upto t lsn] returns only once every record with LSN <= [lsn]
   is durable.  The first committer to arrive becomes the {e leader}:
   it snapshots the appended watermark, releases the mutex (in group
   commit mode) and runs one fsync covering every record appended so
   far; committers arriving meanwhile wait on [t.cond], so one fsync
   retires a whole batch.  In [group_commit = false] mode the fsync
   runs while holding the mutex — appends (and hence commit-timestamp
   draws) serialize behind it, which is the pre-group-commit baseline
   the bench compares against.

   A failing fsync wakes all waiters without advancing [durable_lsn];
   each waiter re-enters leader election, so a transient fault retries
   while a persistent one surfaces to every committer in the batch. *)

let run_sync_barrier t =
  (match t.sync_hook with Some f -> f () | None -> ());
  if t.fsync then begin
    let t0 = Obs.Clock.now_ns () in
    Unix.fsync t.fd;
    let dur_ns = Obs.Clock.now_ns () - t0 in
    Obs.Metrics.observe h_fsync (Obs.Clock.ns_to_s dur_ns);
    Obs.Metrics.incr m_fsyncs;
    (* Device-level flight record: one per physical fsync (the leader's),
       as opposed to the per-transaction sync-wait window. *)
    if Obs.Span.enabled () then Obs.Span.fsync ~dur_ns
  end

let rec sync_wait t lsn =
  if t.closed then invalid_arg "Wal.Log.sync_upto: log closed";
  if t.durable_lsn < lsn then
    if t.syncing then begin
      Condition.wait t.cond t.mutex;
      sync_wait t lsn
    end
    else begin
      (* Become the leader for everything appended so far. *)
      t.syncing <- true;
      let target = t.seq in
      let prev = t.durable_lsn in
      let result =
        if t.group_commit then begin
          (* fsync outside the mutex: later committers keep appending
             (the next batch forms during this fsync).  [t.syncing]
             pins [t.fd]: no rewrite may swap it underneath us. *)
          Mutex.unlock t.mutex;
          let r = try Ok (run_sync_barrier t) with e -> Error e in
          Mutex.lock t.mutex;
          r
        end
        else (try Ok (run_sync_barrier t) with e -> Error e)
      in
      t.syncing <- false;
      (match result with
      | Ok () ->
        t.durable_lsn <- max t.durable_lsn target;
        t.n_syncs <- t.n_syncs + 1;
        Obs.Metrics.observe h_batch (float_of_int (target - prev));
        (* A rewrite deferred because we were syncing can run now. *)
        maybe_rewrite_locked t
      | Error _ -> ());
      Condition.broadcast t.cond;
      match result with
      | Ok () -> if t.durable_lsn < lsn then sync_wait t lsn
      | Error e -> raise e
    end

let sync_upto t lsn = with_lock t (fun () -> sync_wait t lsn)

let sync t =
  with_lock t (fun () -> if t.durable_lsn < t.seq then sync_wait t t.seq)

let set_sync_hook t hook = with_lock t (fun () -> t.sync_hook <- Some hook)
let clear_sync_hook t = with_lock t (fun () -> t.sync_hook <- None)

let close t =
  with_lock t (fun () ->
      (* Let any in-flight leader finish with the fd it holds. *)
      while t.syncing do
        Condition.wait t.cond t.mutex
      done;
      if not t.closed then begin
        if t.durable_lsn < t.seq && t.fsync then Unix.fsync t.fd;
        Unix.close t.fd;
        t.closed <- true
      end)

let file_records t = with_lock t (fun () -> t.file_records)
let file_bytes t = with_lock t (fun () -> t.file_bytes)
let live t = with_lock t (fun () -> live_records t)
let appended_lsn t = with_lock t (fun () -> t.seq)
let durable_lsn t = with_lock t (fun () -> t.durable_lsn)
let fsyncs t = with_lock t (fun () -> t.n_syncs)
let group_commit t = t.group_commit

let checkpoint_upto t obj =
  with_lock t (fun () ->
      Option.map (fun (upto, _, _) -> upto) (Hashtbl.find_opt t.ckpts obj))

(* ------------------------------------------------------------------ *)
(* Live introspection *)

let stats_json t () =
  with_lock t (fun () ->
      Obs.Json.Obj
        [
          ("path", Obs.Json.String t.path);
          ("file_records", Obs.Json.Int t.file_records);
          ("file_bytes", Obs.Json.Int t.file_bytes);
          ("live_records", Obs.Json.Int (live_records t));
          ("objects", Obs.Json.Int (Hashtbl.length t.objs));
          ("checkpoints", Obs.Json.Int (Hashtbl.length t.ckpts));
          ("active_txns", Obs.Json.Int (Hashtbl.length t.active));
          ("committed_retained", Obs.Json.Int (Hashtbl.length t.committed));
          ("prepared", Obs.Json.Int (Hashtbl.length t.prepared));
          ("decisions_retained", Obs.Json.Int (Hashtbl.length t.decisions));
          ("appended_lsn", Obs.Json.Int t.seq);
          ("durable_lsn", Obs.Json.Int t.durable_lsn);
          ("fsyncs", Obs.Json.Int t.n_syncs);
          ("group_commit", Obs.Json.Bool t.group_commit);
          ("dirty", Obs.Json.Bool (t.durable_lsn < t.seq));
        ])

let register_introspection t =
  let name = Filename.basename t.path in
  Obs.Registry.register_snapshot ~channel:"wal" ~name (stats_json t);
  let labels = [ ("log", name) ] in
  Obs.Gauge.callback ~labels "wal_file_bytes" (fun () ->
      float_of_int (with_lock t (fun () -> t.file_bytes)));
  Obs.Gauge.callback ~labels "wal_live_records" (fun () ->
      float_of_int (with_lock t (fun () -> live_records t)));
  (* Committed transactions whose records the compactor must still
     retain because some touched object has not checkpointed past their
     timestamp — the log's checkpoint lag. *)
  Obs.Gauge.callback ~labels "wal_checkpoint_lag" (fun () ->
      float_of_int (with_lock t (fun () -> Hashtbl.length t.committed)));
  (* Appended-but-not-yet-durable records: the durability analogue of
     Theorem 24's compaction debt.  Under group commit it is bounded by
     one batch; sustained growth means fsync is losing the race. *)
  Obs.Gauge.callback ~labels "wal_durable_lag" (fun () ->
      float_of_int (with_lock t (fun () -> t.seq - t.durable_lsn)))
