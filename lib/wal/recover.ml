let h_recover = Obs.Metrics.histogram "wal.recovery_s"

let objects records =
  List.filter_map (function Log.Object { obj; adt; _ } -> Some (obj, adt) | _ -> None) records
  |> List.fold_left (fun acc (o, a) -> if List.mem_assoc o acc then acc else (o, a) :: acc) []
  |> List.rev

let committed records =
  List.filter_map (function Log.Commit { txn; ts } -> Some (txn, ts) | _ -> None) records
  |> List.sort (fun (_, a) (_, b) -> compare a b)

let aborted records =
  List.filter_map (function Log.Abort { txn } -> Some txn | _ -> None) records

let prepared records =
  List.filter_map
    (function Log.Prepare { txn; gtxn; ts } -> Some (txn, gtxn, ts) | _ -> None)
    records

let decisions records =
  List.filter_map (function Log.Decide { gtxn; ts } -> Some (gtxn, ts) | _ -> None) records

(* Prepared votes whose local transaction never reached a Commit or
   Abort record: the crash hit between prepare and decision-ack, and the
   participant cannot decide alone. *)
let in_doubt records =
  let completed = Hashtbl.create 16 in
  List.iter
    (function
      | Log.Commit { txn; _ } | Log.Abort { txn } -> Hashtbl.replace completed txn ()
      | _ -> ())
    records;
  List.filter (fun (txn, _, _) -> not (Hashtbl.mem completed txn)) (prepared records)

type resolution = { r_txn : int; r_gtxn : int; r_outcome : [ `Commit of int | `Abort ] }

let pp_resolution ppf r =
  match r.r_outcome with
  | `Commit ts -> Format.fprintf ppf "T%d (G%d): commit at ts=%d" r.r_txn r.r_gtxn ts
  | `Abort -> Format.fprintf ppf "T%d (G%d): presumed abort" r.r_txn r.r_gtxn

(* Resolve a participant log against the coordinator's decision log:
   synthesize the Commit (at the decided timestamp) or Abort record the
   crash prevented, after which ordinary single-shard redo applies
   unchanged.  Presumed abort: [decided] returning [None] is an abort
   verdict, not an unknown. *)
let resolve ~decided records =
  let doubts = in_doubt records in
  let resolutions =
    List.map
      (fun (txn, gtxn, _ts) ->
        match decided gtxn with
        | Some ts -> { r_txn = txn; r_gtxn = gtxn; r_outcome = `Commit ts }
        | None -> { r_txn = txn; r_gtxn = gtxn; r_outcome = `Abort })
      doubts
  in
  let patched =
    records
    @ List.map
        (fun r ->
          match r.r_outcome with
          | `Commit ts -> Log.Commit { txn = r.r_txn; ts }
          | `Abort -> Log.Abort { txn = r.r_txn })
        resolutions
  in
  (patched, resolutions)

module Make (D : Codec.DURABLE) = struct
  module Seq = Spec.Sequences.Make (D)

  type outcome = {
    states : D.state list;
    checkpoint_upto : int option;
    redone_txns : int;
    redone_ops : int;
    discarded_txns : int;
  }

  let err fmt = Printf.ksprintf (fun s -> Error s) fmt

  (* Decode every intention record for [obj], grouped per transaction in
     append order. *)
  let intentions ~obj records =
    let tbl : (int, (D.inv * D.res) list ref) Hashtbl.t = Hashtbl.create 32 in
    let order = ref [] in
    let exception Bad of string in
    match
      List.iter
        (function
          | Log.Intention { obj = o; txn; payload; _ } when String.equal o obj -> (
            match Codec.decode_op D.codec payload with
            | op ->
              (match Hashtbl.find_opt tbl txn with
              | Some ops -> ops := op :: !ops
              | None ->
                Hashtbl.replace tbl txn (ref [ op ]);
                order := txn :: !order)
            | exception Util.Binio.Corrupt e ->
              raise (Bad (Printf.sprintf "T%d intention: %s" txn e)))
          | _ -> ())
        records
    with
    | () ->
      Ok
        (List.rev_map
           (fun txn -> (txn, List.rev !(Hashtbl.find tbl txn)))
           !order)
    | exception Bad e -> Error e

  (* Rebuild [obj]: checkpoint version (or the initial state) extended by
     the committed intentions with timestamps above the checkpoint, in
     commit-timestamp order.  Uncommitted and aborted intentions are
     discarded — they never became part of the permanent prefix. *)
  let recover ~obj records =
    let t0 = Obs.Clock.now_ns () in
    let result =
      let ckpt =
        List.fold_left
          (fun acc r ->
            match r with
            | Log.Checkpoint { obj = o; upto; payload; _ } when String.equal o obj -> (
              match acc with
              | Some (prev, _) when prev >= upto -> acc
              | _ -> Some (upto, payload))
            | _ -> acc)
          None records
      in
      let base =
        match ckpt with
        | None -> Ok (None, [ D.initial ])
        | Some (upto, payload) -> (
          match Codec.decode_states D.codec payload with
          | [] -> err "%s: checkpoint at %d decodes to an empty state set" obj upto
          | ss -> Ok (Some upto, ss)
          | exception Util.Binio.Corrupt e -> err "%s: checkpoint at %d: %s" obj upto e)
      in
      match base with
      | Error _ as e -> e
      | Ok (checkpoint_upto, base_states) -> (
        match intentions ~obj records with
        | Error e -> Error (obj ^ ": " ^ e)
        | Ok by_txn ->
          let ts_of = committed records in
          let redo =
            List.filter_map
              (fun (txn, ops) ->
                match List.assoc_opt txn ts_of with
                | Some ts -> Some (ts, txn, ops)
                | None -> None)
              by_txn
            |> List.filter (fun (ts, _, _) ->
                   match checkpoint_upto with Some upto -> ts > upto | None -> true)
            |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
          in
          let discarded_txns =
            List.length (List.filter (fun (txn, _) -> not (List.mem_assoc txn ts_of)) by_txn)
          in
          let rec go states redone_txns redone_ops = function
            | [] ->
              Ok
                {
                  states;
                  checkpoint_upto;
                  redone_txns;
                  redone_ops;
                  discarded_txns;
                }
            | (ts, txn, ops) :: rest -> (
              match Seq.states_after' states ops with
              | [] ->
                err "%s: redo of T%d (ts=%d) is illegal after the recovered prefix" obj
                  txn ts
              | states -> go states (redone_txns + 1) (redone_ops + List.length ops) rest)
          in
          go base_states 0 0 redo)
    in
    Obs.Metrics.observe h_recover (Obs.Clock.ns_to_s (Obs.Clock.now_ns () - t0));
    result

  (* Independent cross-check path: replay from the ADT's initial state
     using only Intention and Commit records — no checkpoint involved.
     Comparing this against {!recover} on a log {e with} checkpoints
     checks the Theorem 24 truncation argument executably. *)
  let reference ~obj records =
    match intentions ~obj records with
    | Error e -> Error (obj ^ ": " ^ e)
    | Ok by_txn ->
      let ts_of = committed records in
      let redo =
        List.filter_map
          (fun (txn, ops) ->
            Option.map (fun ts -> (ts, txn, ops)) (List.assoc_opt txn ts_of))
          by_txn
        |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
      in
      let rec go states = function
        | [] -> Ok states
        | (ts, txn, ops) :: rest -> (
          match Seq.states_after' states ops with
          | [] -> err "%s: reference redo of T%d (ts=%d) is illegal" obj txn ts
          | states -> go states rest)
      in
      go [ D.initial ] redo

  let equal_states a b =
    List.length a = List.length b
    && List.for_all (fun s -> List.exists (D.equal_state s) b) a
    && List.for_all (fun s -> List.exists (D.equal_state s) a) b

  let pp_states ppf ss =
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") D.pp_state)
      ss
end
