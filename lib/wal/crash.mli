(** Deterministic kill-point fault injection.

    A [kill -9] can stop the process at any byte of the log; the
    interesting points are enumerable from a finished run's log image:
    just before and after each commit record, halfway through each
    record's frame (a torn append), and with the final block truncated.
    {!image} produces the log bytes a crash at that point would leave on
    stable storage; feeding them to {!Recover} and comparing against the
    committed prefix is the recovery soundness experiment. *)

type kill_point =
  | Before_record of int  (** crash just before appending record [i] *)
  | After_record of int  (** crash right after record [i] is durable *)
  | Mid_record of int  (** torn write: only half of record [i]'s frame *)
  | Torn_tail of int  (** final [k] bytes lost *)

val pp_kill_point : Format.formatter -> kill_point -> unit

val kill_points : ?limit:int -> string -> kill_point list
(** All deterministic kill points of a clean log image; with [limit],
    every before/after-commit point is kept and the torn-write points are
    sampled at a deterministic stride. *)

val image : string -> kill_point -> string
(** The bytes surviving a crash at the kill point. *)

val cut : string -> at:int -> string
