(** Crash recovery: rebuild every object from the log.

    The LOCK protocol's commit rule is exactly redo logging: a committed
    transaction's intentions, applied in commit-timestamp order on top of
    the version, give the committed state (Section 5.1, Definition 21's
    [s.permanent]).  Recovery therefore needs no undo — uncommitted and
    aborted intentions are simply discarded, mirroring how the in-memory
    machine discards them on abort. *)

val objects : Log.record list -> (string * string) list
(** Declared objects, (name, ADT type name), in order of first
    declaration. *)

val committed : Log.record list -> (int * int) list
(** (txn, timestamp) of every transaction whose commit record survived,
    ascending by timestamp — the replay order. *)

val aborted : Log.record list -> int list

module Make (D : Codec.DURABLE) : sig
  type outcome = {
    states : D.state list;  (** the recovered committed state set *)
    checkpoint_upto : int option;  (** horizon of the checkpoint used *)
    redone_txns : int;
    redone_ops : int;
    discarded_txns : int;  (** intention-holders without a commit record *)
  }

  val recover : obj:string -> Log.record list -> (outcome, string) result
  (** Checkpoint version (or initial state) + timestamp-ordered redo of
      committed intentions above the checkpoint.  [Error] on a corrupt
      payload or an illegal redo — both mean the log does not describe a
      reachable state and recovery must not silently proceed. *)

  val reference : obj:string -> Log.record list -> (D.state list, string) result
  (** The same committed prefix replayed from [D.initial] {e ignoring
      checkpoints} — an independent code path used to cross-check that
      checkpoint truncation (Theorem 24) loses nothing. *)

  val equal_states : D.state list -> D.state list -> bool
  (** Set equality up to [D.equal_state] — observational equivalence of
      recovered and reference states (Definition 25: canonical state sets
      determine all future legality). *)

  val pp_states : Format.formatter -> D.state list -> unit
end
