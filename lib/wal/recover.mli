(** Crash recovery: rebuild every object from the log.

    The LOCK protocol's commit rule is exactly redo logging: a committed
    transaction's intentions, applied in commit-timestamp order on top of
    the version, give the committed state (Section 5.1, Definition 21's
    [s.permanent]).  Recovery therefore needs no undo — uncommitted and
    aborted intentions are simply discarded, mirroring how the in-memory
    machine discards them on abort. *)

val objects : Log.record list -> (string * string) list
(** Declared objects, (name, ADT type name), in order of first
    declaration. *)

val committed : Log.record list -> (int * int) list
(** (txn, timestamp) of every transaction whose commit record survived,
    ascending by timestamp — the replay order. *)

val aborted : Log.record list -> int list

val prepared : Log.record list -> (int * int * int) list
(** (local txn, global txn, prepared timestamp) of every surviving
    [Prepare] record. *)

val decisions : Log.record list -> (int * int) list
(** (global txn, decided timestamp) of every surviving [Decide]
    record — what a coordinator's decision log contributes to
    participant resolution. *)

val in_doubt : Log.record list -> (int * int * int) list
(** {!prepared} votes with no subsequent [Commit]/[Abort] for the local
    transaction: the participant crashed holding locks and must ask the
    decision log. *)

type resolution = { r_txn : int; r_gtxn : int; r_outcome : [ `Commit of int | `Abort ] }

val pp_resolution : Format.formatter -> resolution -> unit

val resolve :
  decided:(int -> int option) -> Log.record list -> Log.record list * resolution list
(** Patch a participant log's in-doubt transactions against the
    coordinator's decision log: a decided global transaction gets the
    [Commit] record (at the {e decided} timestamp — max over all
    participants' prepares) its shard never wrote; an undecided one gets
    an [Abort] (presumed abort).  The patched record list then recovers
    with the ordinary single-shard {!Make.recover}/{!Make.reference}
    path. *)

module Make (D : Codec.DURABLE) : sig
  type outcome = {
    states : D.state list;  (** the recovered committed state set *)
    checkpoint_upto : int option;  (** horizon of the checkpoint used *)
    redone_txns : int;
    redone_ops : int;
    discarded_txns : int;  (** intention-holders without a commit record *)
  }

  val recover : obj:string -> Log.record list -> (outcome, string) result
  (** Checkpoint version (or initial state) + timestamp-ordered redo of
      committed intentions above the checkpoint.  [Error] on a corrupt
      payload or an illegal redo — both mean the log does not describe a
      reachable state and recovery must not silently proceed. *)

  val reference : obj:string -> Log.record list -> (D.state list, string) result
  (** The same committed prefix replayed from [D.initial] {e ignoring
      checkpoints} — an independent code path used to cross-check that
      checkpoint truncation (Theorem 24) loses nothing. *)

  val equal_states : D.state list -> D.state list -> bool
  (** Set equality up to [D.equal_state] — observational equivalence of
      recovered and reference states (Definition 25: canonical state sets
      determine all future legality). *)

  val pp_states : Format.formatter -> D.state list -> unit
end
