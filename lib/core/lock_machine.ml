module Make (A : Spec.Adt_sig.S) = struct
  module H = Model.History.Make (A)
  module Txn = Model.Txn

  type op = A.inv * A.res

  type refusal =
    | No_pending
    | Already_completed
    | Illegal_in_view
    | Lock_conflict of Txn.t * op

  let pp_refusal ppf = function
    | No_pending -> Format.pp_print_string ppf "no pending invocation"
    | Already_completed -> Format.pp_print_string ppf "transaction already completed"
    | Illegal_in_view -> Format.pp_print_string ppf "operation illegal in view"
    | Lock_conflict (p, op) ->
      Format.fprintf ppf "lock conflict with %a holding %a" Txn.pp p H.Seq.pp_op op

  module Tmap = Map.Make (Txn)

  type t = {
    conflict : op -> op -> bool;
    pending : A.inv Tmap.t;
    intentions : op list Tmap.t; (* reversed: newest first *)
    committed : Model.Timestamp.t Tmap.t;
    aborted : unit Tmap.t;
    clock : Xts.t;
    bound : Xts.t Tmap.t;
  }

  let create ~conflict =
    {
      conflict;
      pending = Tmap.empty;
      intentions = Tmap.empty;
      committed = Tmap.empty;
      aborted = Tmap.empty;
      clock = Xts.Neg_inf;
      bound = Tmap.empty;
    }

  let intentions t q =
    match Tmap.find_opt q t.intentions with Some ops -> List.rev ops | None -> []

  let pending t q = Tmap.find_opt q t.pending
  let committed_ts t q = Tmap.find_opt q t.committed
  let is_aborted t q = Tmap.mem q t.aborted
  let is_completed t q = is_aborted t q || Tmap.mem q t.committed

  let active_txns t =
    let with_footprint =
      Tmap.fold (fun q ops acc -> if ops <> [] then q :: acc else acc) t.intentions []
    in
    let with_pending = Tmap.fold (fun q _ acc -> q :: acc) t.pending [] in
    List.sort_uniq Txn.compare (with_footprint @ with_pending)
    |> List.filter (fun q -> not (is_completed t q))

  let committed_in_ts_order t =
    Tmap.bindings t.committed
    |> List.sort (fun (_, ts1) (_, ts2) -> Model.Timestamp.compare ts1 ts2)

  let permanent_seq t =
    List.concat_map (fun (q, _) -> intentions t q) (committed_in_ts_order t)

  let view t q = permanent_seq t @ intentions t q

  let find_conflict t q candidate =
    (* An active transaction other than q holding a conflicting lock. *)
    Tmap.fold
      (fun p ops acc ->
        match acc with
        | Some _ -> acc
        | None ->
          if Txn.equal p q || is_completed t p then None
          else
            List.find_opt (fun op -> t.conflict op candidate) ops
            |> Option.map (fun op -> (p, op)))
      t.intentions None

  let step t (event : H.event) =
    match event with
    | H.Invoke (q, i) ->
      (* The bound is only tracked for transactions that can still
         commit; re-invocations by aborted transactions (which the model
         permits) must not pin the horizon. *)
      let bound =
        if is_completed t q then t.bound else Tmap.add q t.clock t.bound
      in
      Ok { t with pending = Tmap.add q i t.pending; bound }
    | H.Commit (q, ts) ->
      Ok
        {
          t with
          committed = Tmap.add q ts t.committed;
          clock = Xts.max t.clock (Xts.of_ts ts);
          bound = Tmap.remove q t.bound;
          pending = Tmap.remove q t.pending;
        }
    | H.Abort q ->
      Ok
        {
          t with
          aborted = Tmap.add q () t.aborted;
          bound = Tmap.remove q t.bound;
          pending = Tmap.remove q t.pending;
        }
    | H.Respond (q, r) -> (
      match Tmap.find_opt q t.pending with
      | None -> Error No_pending
      | Some _ when is_completed t q -> Error Already_completed
      | Some i ->
        let candidate = (i, r) in
        if not (H.Seq.legal (view t q @ [ candidate ])) then Error Illegal_in_view
        else (
          match find_conflict t q candidate with
          | Some (p, op) -> Error (Lock_conflict (p, op))
          | None ->
            let ops = Option.value ~default:[] (Tmap.find_opt q t.intentions) in
            Ok
              {
                t with
                pending = Tmap.remove q t.pending;
                intentions = Tmap.add q (candidate :: ops) t.intentions;
                bound = Tmap.add q t.clock t.bound;
              }))

  let run ~conflict h =
    let rec go t = function
      | [] -> Ok t
      | e :: rest -> (
        match step t e with
        | Ok t' -> go t' rest
        | Error refusal -> Error (e, refusal))
    in
    go (create ~conflict) h

  let accepts ~conflict h =
    match H.well_formed h with
    | Error _ -> false
    | Ok () -> ( match run ~conflict h with Ok _ -> true | Error _ -> false)

  let available_responses t q =
    match pending t q with
    | None -> []
    | Some i ->
      let ss = H.Seq.states_after (view t q) in
      let candidates =
        List.concat_map (fun s -> List.map fst (A.step s i)) ss
        |> List.fold_left
             (fun acc r -> if List.exists (A.equal_res r) acc then acc else r :: acc)
             []
        |> List.rev
      in
      List.filter (fun r -> match step t (H.Respond (q, r)) with Ok _ -> true | Error _ -> false) candidates

  let clock t = t.clock
  let bound t q = Tmap.find_opt q t.bound

  let horizon t =
    let min_bound =
      Tmap.fold (fun _ b acc ->
          match acc with None -> Some b | Some m -> Some (Xts.min m b))
        t.bound None
    in
    let max_committed =
      Tmap.fold
        (fun _ ts acc ->
          match acc with
          | None -> Some (Xts.of_ts ts)
          | Some m -> Some (Xts.max m (Xts.of_ts ts)))
        t.committed None
    in
    (* min over an empty bound set is +inf: the horizon is then just the
       largest committed timestamp; with no commits at all it is -inf. *)
    match (min_bound, max_committed) with
    | None, None -> Xts.Neg_inf
    | None, Some m -> m
    | Some _, None -> Xts.Neg_inf
    | Some b, Some m -> Xts.min b m

  let common_seq t =
    let hz = t |> horizon in
    committed_in_ts_order t
    |> List.filter (fun (_, ts) -> Xts.(of_ts ts <= hz))
    |> List.concat_map (fun (q, _) -> intentions t q)
end
