(** The LOCK state machine — the paper's hybrid locking protocol
    (Section 5.1), with the Section 6 bookkeeping components.

    A state holds, exactly as in the paper:
    - [pending]: the pending invocation of each transaction;
    - [intentions]: the operation sequence each transaction has executed
      (locks are implicit in intentions: a transaction holds a lock for
      every operation on its list);
    - [committed]: commit timestamps of committed transactions;
    - [aborted]: the set of aborted transactions;
    and, for compaction bookkeeping (Section 6, no effect on the accepted
    language): [clock], the largest commit timestamp seen, and [bound],
    a lower bound on the commit timestamp each active transaction can
    eventually choose.

    Invocation, commit and abort events are inputs and always accepted
    for well-formed histories.  A response event [<r, X, Q>] is accepted
    iff (Section 5.1):
    + [Q] has a pending invocation and has not completed;
    + the operation [q = (pending(Q), r)] is legal after [View(Q, s)] —
      the committed intentions in timestamp order followed by [Q]'s own
      intentions;
    + [q] conflicts with no operation executed by another active
      transaction.

    Theorem 16: when the conflict relation is a (symmetric) dependency
    relation, every accepted history is online hybrid atomic.  The test
    suite checks this against {!Model.Atomicity} on randomly generated
    histories, and reproduces the Theorem 17 converse. *)

module Make (A : Spec.Adt_sig.S) : sig
  module H : module type of Model.History.Make (A)

  type op = A.inv * A.res

  type refusal =
    | No_pending  (** response with no pending invocation *)
    | Already_completed  (** response for a committed/aborted transaction *)
    | Illegal_in_view  (** the operation is not legal after [View(Q, s)] *)
    | Lock_conflict of Model.Txn.t * op
        (** another active transaction holds a conflicting lock *)

  val pp_refusal : Format.formatter -> refusal -> unit

  type t

  val create : conflict:(op -> op -> bool) -> t

  val step : t -> H.event -> (t, refusal) result
  (** Apply one transition.  Input events (invoke/commit/abort) always
      succeed; the caller is responsible for feeding a well-formed
      history (checked by {!accepts}). *)

  val accepts : conflict:(op -> op -> bool) -> H.t -> bool
  (** Language membership: the history is well-formed and every event is
      accepted in sequence. *)

  val run : conflict:(op -> op -> bool) -> H.t -> (t, H.event * refusal) result
  (** Like {!accepts} but returns the final state, or the offending event
      (well-formedness is not checked). *)

  (** {1 State observers} *)

  val intentions : t -> Model.Txn.t -> op list
  val pending : t -> Model.Txn.t -> A.inv option
  val committed_ts : t -> Model.Txn.t -> Model.Timestamp.t option
  val is_aborted : t -> Model.Txn.t -> bool
  val active_txns : t -> Model.Txn.t list
  (** Transactions with non-empty intentions or a pending invocation that
      have not completed. *)

  val view : t -> Model.Txn.t -> op list
  (** [View(Q, s)] (Section 5.1, footnote 6). *)

  val permanent_seq : t -> op list
  (** [s.permanent]: committed intentions in timestamp order
      (Definition 21). *)

  val available_responses : t -> Model.Txn.t -> A.res list
  (** Every response [r] such that [step t (Respond (q, r))] succeeds —
      used by history generators and by the reference interpreter. *)

  (** {1 Section 6 bookkeeping} *)

  val clock : t -> Xts.t
  val bound : t -> Model.Txn.t -> Xts.t option
  (** [None] when undefined (transaction quiescent or completed). *)

  val horizon : t -> Xts.t
  (** Definition 20: the smaller of the smallest active bound and the
      largest committed timestamp; [-inf] when neither exists. *)

  val common_seq : t -> op list
  (** [s.common] (Definition 22): committed intentions with timestamp at
      or below the horizon, in timestamp order.  Theorem 24: grows
      monotonically under any accepted event, so it can be folded into a
      version — see {!Compacted}. *)
end
