module Make (A : Spec.Adt_sig.S) = struct
  module H = Model.History.Make (A)
  module L = Lock_machine.Make (A)
  module Txn = Model.Txn
  module Tmap = Map.Make (Txn)

  type op = A.inv * A.res

  type t = {
    conflict : op -> op -> bool;
    version : A.state list; (* state set after the forgotten prefix *)
    forgotten : int;
    remembered : (Model.Timestamp.t * Txn.t * op list) list;
        (* committed but not yet forgotten, ascending timestamp order *)
    folded_upto : Xts.t; (* largest timestamp folded into the version *)
    committed_cache : A.state list;
        (* state set after version * remembered — recomputed only when a
           commit event reorders the remembered list, so views need not
           replay committed intentions on every invocation *)
    pending : A.inv Tmap.t;
    intentions : op list Tmap.t; (* active transactions only; reversed *)
    aborted : unit Tmap.t;
    committed_set : unit Tmap.t; (* all transactions ever committed *)
    clock : Xts.t;
    bound : Xts.t Tmap.t;
  }

  let create ~conflict =
    {
      conflict;
      version = [ A.initial ];
      forgotten = 0;
      remembered = [];
      folded_upto = Xts.Neg_inf;
      committed_cache = [ A.initial ];
      pending = Tmap.empty;
      intentions = Tmap.empty;
      aborted = Tmap.empty;
      committed_set = Tmap.empty;
      clock = Xts.Neg_inf;
      bound = Tmap.empty;
    }

  let is_completed t q = Tmap.mem q t.aborted || Tmap.mem q t.committed_set

  let horizon t =
    let min_bound =
      Tmap.fold
        (fun _ b acc -> match acc with None -> Some b | Some m -> Some (Xts.min m b))
        t.bound None
    in
    (* [clock] equals the largest commit timestamp ever seen, so it is
       exactly Definition 20's max over committed transactions. *)
    match min_bound with None -> t.clock | Some b -> Xts.min b t.clock

  let forget t =
    let hz = horizon t in
    let rec go version forgotten upto = function
      | (ts, _, ops) :: rest when Xts.(of_ts ts <= hz) ->
        let version = H.Seq.states_after' version (List.rev ops) in
        assert (version <> []);
        go version (forgotten + 1) (Xts.of_ts ts) rest
      | remembered -> (version, forgotten, upto, remembered)
    in
    let version, forgotten, folded_upto, remembered =
      go t.version t.forgotten t.folded_upto t.remembered
    in
    { t with version; forgotten; folded_upto; remembered }

  let own_intentions t q =
    match Tmap.find_opt q t.intentions with Some ops -> List.rev ops | None -> []

  let recompute_cache t =
    let cache =
      List.fold_left
        (fun ss (_, _, ops) -> H.Seq.states_after' ss (List.rev ops))
        t.version t.remembered
    in
    { t with committed_cache = cache }

  let view_states t q = H.Seq.states_after' t.committed_cache (own_intentions t q)

  let find_conflict t q candidate =
    Tmap.fold
      (fun p ops acc ->
        match acc with
        | Some _ -> acc
        | None ->
          if Txn.equal p q || is_completed t p then None
          else
            List.find_opt (fun op -> t.conflict op candidate) ops
            |> Option.map (fun op -> (p, op)))
      t.intentions None

  type conflict_info = { c_holder : Txn.t; c_requested : op; c_held : op }

  let insert_by_ts entry l =
    let ts_of (ts, _, _) = ts in
    let rec go = function
      | [] -> [ entry ]
      | x :: rest ->
        if Model.Timestamp.compare (ts_of entry) (ts_of x) < 0 then entry :: x :: rest
        else x :: go rest
    in
    go l

  let step t (event : H.event) =
    match event with
    | H.Invoke (q, i) ->
      let bound = if is_completed t q then t.bound else Tmap.add q t.clock t.bound in
      Ok (forget { t with pending = Tmap.add q i t.pending; bound })
    | H.Commit (q, ts) ->
      let ops = Option.value ~default:[] (Tmap.find_opt q t.intentions) in
      (* When the new timestamp is the largest committed so far (the
         common case: timestamps are drawn just before commit events are
         distributed), the committed sequence is only extended at the
         end, so the cache extends incrementally; an out-of-order commit
         splices into the middle and forces a full replay. *)
      let in_order = Xts.(t.clock <= of_ts ts) in
      let t' =
        forget
          {
            t with
            remembered = insert_by_ts (ts, q, ops) t.remembered;
            intentions = Tmap.remove q t.intentions;
            committed_set = Tmap.add q () t.committed_set;
            clock = Xts.max t.clock (Xts.of_ts ts);
            bound = Tmap.remove q t.bound;
            pending = Tmap.remove q t.pending;
          }
      in
      Ok
        (if in_order then
           { t' with committed_cache = H.Seq.states_after' t.committed_cache (List.rev ops) }
         else recompute_cache t')
    | H.Abort q ->
      Ok
        (forget
           {
             t with
             aborted = Tmap.add q () t.aborted;
             intentions = Tmap.remove q t.intentions;
             bound = Tmap.remove q t.bound;
             pending = Tmap.remove q t.pending;
           })
    | H.Respond (q, r) -> (
      match Tmap.find_opt q t.pending with
      | None -> Error L.No_pending
      | Some _ when is_completed t q -> Error L.Already_completed
      | Some i ->
        let candidate = (i, r) in
        if H.Seq.states_after' (view_states t q) [ candidate ] = [] then
          Error L.Illegal_in_view
        else (
          match find_conflict t q candidate with
          | Some (p, op) -> Error (L.Lock_conflict (p, op))
          | None ->
            let ops = Option.value ~default:[] (Tmap.find_opt q t.intentions) in
            Ok
              (forget
                 {
                   t with
                   pending = Tmap.remove q t.pending;
                   intentions = Tmap.add q (candidate :: ops) t.intentions;
                   bound = Tmap.add q t.clock t.bound;
                 })))

  let run ~conflict h =
    let rec go t = function
      | [] -> Ok t
      | e :: rest -> (
        match step t e with Ok t' -> go t' rest | Error refusal -> Error (e, refusal))
    in
    go (create ~conflict) h

  let available_responses t q =
    match Tmap.find_opt q t.pending with
    | None -> []
    | Some i ->
      let ss = view_states t q in
      let candidates =
        List.concat_map (fun s -> List.map fst (A.step s i)) ss
        |> List.fold_left
             (fun acc r -> if List.exists (A.equal_res r) acc then acc else r :: acc)
             []
        |> List.rev
      in
      List.filter
        (fun r -> match step t (H.Respond (q, r)) with Ok _ -> true | Error _ -> false)
        candidates

  let choose_response t q =
    match Tmap.find_opt q t.pending with
    | None -> invalid_arg "Compacted.choose_response: no pending invocation"
    | Some i ->
      let ss = view_states t q in
      let candidates =
        List.concat_map (fun s -> List.map fst (A.step s i)) ss
        |> List.fold_left
             (fun acc r -> if List.exists (A.equal_res r) acc then acc else r :: acc)
             []
        |> List.rev
      in
      if candidates = [] then Error `Blocked
      else
        let rec try_all conflict = function
          | [] -> Error (`Conflict conflict)
          | r :: rest -> (
            match step t (H.Respond (q, r)) with
            | Ok t' -> Ok (r, t')
            | Error (L.Lock_conflict (p, held)) ->
              try_all (Some { c_holder = p; c_requested = (i, r); c_held = held }) rest
            | Error _ -> try_all conflict rest)
        in
        try_all None candidates

  let pending t q = Tmap.find_opt q t.pending
  let committed_states t = t.committed_cache

  let pin t q ts = { t with bound = Tmap.add q (Xts.of_ts ts) t.bound }
  let unpin t q = forget { t with bound = Tmap.remove q t.bound }
  let folded_upto t = t.folded_upto

  let states_at t ~at =
    if Xts.(of_ts at < t.folded_upto) then None
    else
      Some
        (List.fold_left
           (fun ss (ts, _, ops) ->
             if Model.Timestamp.compare ts at <= 0 then
               H.Seq.states_after' ss (List.rev ops)
             else ss)
           t.version t.remembered)

  let clock t = t.clock
  let version_states t = t.version
  let forgotten t = t.forgotten
  let remembered t = List.length t.remembered

  let live_ops t =
    List.fold_left (fun acc (_, _, ops) -> acc + List.length ops) 0 t.remembered
    + Tmap.fold (fun _ ops acc -> acc + List.length ops) t.intentions 0

  let active t =
    Tmap.fold (fun q ops acc -> (q, List.length ops) :: acc) t.intentions []
    |> List.rev

  type summary = {
    s_folded_upto : Xts.t;
    s_forgotten : int;
    s_remembered : int;
    s_live_ops : int;
  }

  let summary t =
    {
      s_folded_upto = t.folded_upto;
      s_forgotten = t.forgotten;
      s_remembered = remembered t;
      s_live_ops = live_ops t;
    }
end
