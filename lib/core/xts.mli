(** Timestamps extended with -infinity, used by the Section 6 compaction
    bookkeeping ([s.clock] starts at -infinity; so do lower bounds). *)

type t = Neg_inf | Fin of Model.Timestamp.t

val compare : t -> t -> int
val max : t -> t -> t
val min : t -> t -> t
val of_ts : Model.Timestamp.t -> t
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val pp : Format.formatter -> t -> unit
