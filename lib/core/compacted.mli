(** The LOCK protocol with Section 6 compaction applied.

    {!Lock_machine} is the paper's formal description: it retains the
    intentions list of every committed transaction forever, which is
    "clearly not practical" (Section 5.1).  This module is the practical
    variant sketched in Section 6: committed transactions whose timestamp
    is at or below the {e horizon} (Definition 20) are {e forgotten} —
    their intentions are applied, in timestamp order, to a materialized
    {e version}, and both their intentions and their timestamp are
    discarded.  Theorem 24 (the common prefix grows monotonically under
    every accepted event) is what makes the fold sound; the test suite
    checks observational equivalence with {!Lock_machine} on random
    histories and the monotonicity property itself.

    The version is a {e set} of specification states, which collapses to
    a singleton for deterministic ADTs; SemiQueue-style nondeterminism is
    handled without special cases. *)

module Make (A : Spec.Adt_sig.S) : sig
  module H : module type of Model.History.Make (A)
  module L : module type of Lock_machine.Make (A)

  type op = A.inv * A.res
  type t

  val create : conflict:(op -> op -> bool) -> t

  val step : t -> H.event -> (t, L.refusal) result
  (** Accepts and refuses exactly as {!Lock_machine.Make.step} does
      (the compaction is transparent). *)

  val run : conflict:(op -> op -> bool) -> H.t -> (t, H.event * L.refusal) result
  val available_responses : t -> Model.Txn.t -> A.res list

  type conflict_info = {
    c_holder : Model.Txn.t;  (** one holder of a conflicting lock *)
    c_requested : op;  (** the operation whose lock was refused *)
    c_held : op;  (** the holder's operation it conflicts with *)
  }
  (** Attribution of a refused lock request: exactly which entry of the
      installed Conflict relation fired, and against whom — the raw
      material for the observability layer's conflict matrices
      ([Obs.Attrib]) and for deadlock-resolution policies. *)

  val choose_response :
    t ->
    Model.Txn.t ->
    (A.res * t, [ `Blocked | `Conflict of conflict_info option ]) result
  (** Execute the pending invocation of the given transaction: pick the
      first response legal in its view whose lock can be granted, record
      the operation and return the successor machine.  [`Blocked] — no
      response is legal in the view (partial operation, e.g. [Deq] on an
      empty queue); [`Conflict c] — legal responses exist but every one
      conflicts with a lock held by another active transaction ([c]
      attributes the last such conflict).  This is the entry point used
      by the concurrent runtime. *)

  (** {1 Observers} *)

  val pending : t -> Model.Txn.t -> A.inv option

  val committed_states : t -> A.state list
  (** The state set reached by every committed transaction's operations
      in timestamp order: the version extended by the remembered
      committed intentions. *)

  val version_states : t -> A.state list
  (** The state set reached by the forgotten common prefix. *)

  val forgotten : t -> int
  (** Number of committed transactions folded into the version so far. *)

  val remembered : t -> int
  (** Committed transactions not yet forgettable (timestamp above the
      horizon). *)

  val horizon : t -> Xts.t

  val clock : t -> Xts.t
  (** The largest commit timestamp this object has seen.  The distance
      from {!folded_upto} up to here is the object's {e compaction
      debt}: commits the horizon has not yet allowed it to fold
      (Theorem 24 says the gap is transient — it closes as soon as the
      bounding active transactions complete). *)

  val live_ops : t -> int
  (** Total operations currently retained (committed-but-remembered plus
      active intentions) — the measure of the memory the compaction
      saves. *)

  val active : t -> (Model.Txn.t * int) list
  (** Active transactions (intentions recorded, neither committed nor
      aborted) with the length of each one's intentions list, ascending
      by transaction id — the lock-table rows the introspection server's
      [/locks] endpoint reports. *)

  type summary = {
    s_folded_upto : Xts.t;
    s_forgotten : int;
    s_remembered : int;
    s_live_ops : int;
  }
  (** One consistent snapshot of the compaction bookkeeping, for
      observability hooks: callers diff two summaries around a state
      transition to detect a fold (Theorem 24 guarantees [s_folded_upto]
      and [s_forgotten] only ever grow — emitted trace events assert
      exactly that). *)

  val summary : t -> summary

  (** {1 Snapshots (read-only transactions)}

      The general form of hybrid atomicity (paper Section 7.1, after
      [22, 23]) lets read-only transactions choose their timestamp when
      they {e start} and serialize there, lock-free — the "static
      atomic" ingredient of the hybrid.  The machinery needed is just
      more horizon bookkeeping: a {e pin} at timestamp [ts] acts as a
      lower bound, stopping the horizon (and hence folding) from passing
      [ts], so the committed state {e as of} [ts] stays reconstructable
      from the version plus the remembered intentions with timestamps at
      or below [ts]. *)

  val pin : t -> Model.Txn.t -> Model.Timestamp.t -> t
  (** Register a horizon pin under the given (reader) transaction id.
      Bookkeeping only: the accepted language is unchanged. *)

  val unpin : t -> Model.Txn.t -> t
  (** Drop the pin and fold whatever became foldable. *)

  val folded_upto : t -> Xts.t
  (** The largest commit timestamp already folded into the version. *)

  val states_at : t -> at:Model.Timestamp.t -> A.state list option
  (** The committed state set as of timestamp [at]: the version extended
      by remembered committed intentions with timestamp [<= at].  [None]
      when the version has already folded transactions beyond [at] (the
      snapshot is too old to reconstruct — callers pin first to prevent
      this). *)
end
