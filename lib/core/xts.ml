type t = Neg_inf | Fin of Model.Timestamp.t

let compare a b =
  match (a, b) with
  | Neg_inf, Neg_inf -> 0
  | Neg_inf, Fin _ -> -1
  | Fin _, Neg_inf -> 1
  | Fin x, Fin y -> Model.Timestamp.compare x y

let max a b = if compare a b >= 0 then a else b
let min a b = if compare a b <= 0 then a else b
let of_ts ts = Fin ts
let ( <= ) a b = compare a b <= 0
let ( < ) a b = compare a b < 0

let pp ppf = function
  | Neg_inf -> Format.pp_print_string ppf "-inf"
  | Fin ts -> Model.Timestamp.pp ppf ts
