type source = {
  source_name : string;
  pin : Model.Txn.t -> Model.Timestamp.t -> unit;
  unpin : Model.Txn.t -> unit;
}

exception Unavailable

(* Reader pin ids live in a namespace disjoint from update-transaction
   ids (which are non-negative Txn_rt ids). *)
let pin_counter = Atomic.make 1
let fresh_reader () = Model.Txn.make (-Atomic.fetch_and_add pin_counter 1)

let read ?(retries = 10) mgr ~sources body =
  let attempt () =
    let reader = fresh_reader () in
    let snapshot = Manager.current_time mgr in
    List.iter (fun s -> s.pin reader snapshot) sources;
    Fun.protect
      ~finally:(fun () -> List.iter (fun s -> s.unpin reader) sources)
      (fun () ->
        (* Wait out commits that drew timestamps <= snapshot but have
           not finished distributing their commit events. *)
        while Manager.stable_time mgr < snapshot do
          Unix.sleepf 1e-5
        done;
        body ~at:snapshot)
  in
  let rec go n =
    match attempt () with
    | v -> v
    | exception Unavailable ->
      if n >= retries then
        failwith "Snapshot.read: snapshot unavailable after retries"
      else go (n + 1)
  in
  go 0
