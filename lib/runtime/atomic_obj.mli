(** A concurrent atomic object running the hybrid locking protocol.

    This is the production engine: the {!Hybrid.Compacted} machine
    behind a mutex, usable from multiple domains/threads.  Per the paper
    (Section 4.1): an invocation builds the transaction's view (committed
    version, plus committed-but-unforgotten intentions in timestamp
    order, plus the transaction's own intentions), chooses a response
    legal in the view, requests the lock for the resulting operation, and
    either records the operation in the intentions list or refuses so the
    caller can retry.  Commit merges intentions in timestamp order and
    triggers horizon-based compaction; abort discards intentions.

    The conflict relation is supplied at creation, so the same engine
    runs the hybrid relation and the commutativity / read-write baselines
    in apples-to-apples comparisons. *)

module Make (A : Spec.Adt_sig.S) : sig
  type op = A.inv * A.res

  type t

  type stats = {
    invocations : int;  (** successful operations recorded *)
    conflicts : int;  (** refusals due to a lock conflict *)
    blocked : int;  (** refusals because no response was legal *)
    commits : int;
    aborts : int;
    forgotten : int;  (** committed transactions folded into the version *)
  }

  val create :
    ?name:string ->
    ?cell:int ->
    ?record:bool ->
    ?trace:Obs.Trace.t ->
    ?wal:Wal.Log.t * (A.inv, A.res, A.state) Wal.Codec.t ->
    ?op_label:(op -> string) ->
    conflict:(op -> op -> bool) ->
    unit ->
    t
  (** [cell] marks this object as one cell of a partitioned logical
      object (see {!Spec.Partition} and [Part.Cells]): the key is
      carried by the object's WAL [Object]/[Intention]/[Checkpoint]
      records, surfaced as a ["cell"] field in the ["locks"] snapshot
      row, and attached to the object's {!Obs.Attrib} registration so
      attribution reports can group per-cell rows under their logical
      object.  [record] keeps the object-local event history for offline
      atomicity checking (tests); off by default.  [trace] attaches an
      explicit trace ring as this object's event sink, bypassing the
      {!Obs.Control} switch; without it events go to {!Obs.Trace.global}
      whenever observability is enabled.  [wal] makes the object
      durable: an [Object] record declares it on creation, every chosen
      operation appends an [Intention] record (the transaction's
      intentions list, paper Section 5.1), and each horizon advance
      appends a [Checkpoint] record carrying the horizon timestamp and
      the folded version — sound to recover from because the horizon
      only grows (Theorem 24).  The object must share its manager's
      {!Wal.Log.t}.  [op_label] names interned operations for
      conflict-attribution reports (registered with {!Obs.Attrib} on
      first occurrence); the default prints ["inv/res"] with the ADT's
      printers — pass the spec's constructor-level [op_label] to merge
      per-value cells into one figure row. *)

  val name : t -> string

  val key : t -> int
  (** The process-unique object key tagging this object's trace
      entries. *)

  val cell : t -> int option
  (** The cell key supplied at creation, if this object is one cell of a
      partitioned logical object. *)

  val try_invoke : t -> Txn_rt.t -> A.inv -> (A.res, Retry.failure) result
  (** One protocol attempt.  [`Conflict h]: every legal response needs a
      lock held by another active transaction ([h] is one holder's id).
      [`Blocked]: the invocation has no legal response in the view
      (partial operation).  On success the operation is recorded and the
      object registered with the transaction handle. *)

  val invoke : ?retries:int -> t -> Txn_rt.t -> A.inv -> A.res
  (** {!try_invoke} under {!Retry.run}: short-quantum retrying with
      wait-die deadlock resolution; raises {!Txn_rt.Abort_requested}
      when the transaction must restart. *)

  val committed_states : t -> A.state list
  (** The state set reached by all committed transactions' operations in
      timestamp order (forgotten prefix extended by remembered
      intentions) — e.g. for draining or inspecting an object after a
      run.  Singleton for deterministic ADTs. *)

  val stats : t -> stats
  val live_ops : t -> int

  val history : t -> Model.History.Make(A).t
  (** The recorded object-local history (empty unless [record] was set).
      Feed it to {!Model.Atomicity} to check hybrid atomicity. *)

  val decode_op : t -> int -> op option
  (** Decode an interned operation code carried by this object's
      {!Obs.Trace.Lock_refused} entries back to the typed operation
      pair; [None] for codes this object never issued. *)

  val replayed_history : t -> Model.History.Make(A).t
  (** The object-local history reconstructed from the trace ring (the
      explicit [trace] sink if one was attached, {!Obs.Trace.global}
      otherwise) through this object's payload intern tables — the
      observability path's independent account of what {!history}
      records.  When the same window of execution was both traced and
      recorded, the two are equal. *)

  val replay_check : ?online:bool -> t -> (unit, string) result
  (** {!Obs.Replay.Make.check} on {!replayed_history}: well-formedness,
      the timestamp-generation constraint, and hybrid atomicity of the
      traced run. *)

  (** {1 Live introspection} *)

  val register_introspection : t -> unit
  (** Register this object with the process introspection registry:
      a ["locks"] snapshot provider (active transactions and their
      intentions-list depths, conflict/blocked counts), a ["horizon"]
      provider (horizon, clock, folded-up-to timestamps, forgotten /
      remembered / live-op counts), and callback gauges [obj_live_ops]
      and [obj_compaction_debt] labelled by object name.  Keyed by name
      — re-registering a recreated object under the same name replaces
      the old providers, so a long-running server keeps a bounded set.
      Opt-in: short-lived benchmark objects should not accumulate
      registrations. *)

  val unregister_introspection : t -> unit

  val register_audit : ?name:string -> t -> string
  (** Register {!replay_check} as an {!Obs.Sampler} audit closure under
      [name] (default ["replay/<object name>"]); returns the name used.
      If the object's trace ring has wrapped, the closure counts the
      lost window ({!Obs.Sampler.skip_window_lost}) instead of reporting
      a spurious verdict on a truncated history. *)

  (** {1 Snapshot reads} *)

  val snapshot_source : t -> Snapshot.source
  (** Hooks for {!Snapshot.read}: pin/unpin this object's compaction
      horizon around a read-only transaction. *)

  val read_at : t -> at:Model.Timestamp.t -> A.inv -> A.res option
  (** Invoke against the committed state as of the snapshot timestamp
      [at]: lock-free, side-effect-free, invisible to writers.  [None]
      when the operation has no legal response there (partial
      operation).  Raises {!Snapshot.Unavailable} when the object has
      already folded past [at] (callers go through {!Snapshot.read},
      which pins first and retries). *)
end
