(** The appendix's Avalon/C++ Account, transliterated to OCaml.

    This is the paper's worked example of a {e type-specific efficient
    implementation} of the hybrid protocol.  Instead of keeping generic
    intentions lists, the net effect of a transaction's Credits, Posts
    and Debits is compressed into a single affine transformation
    [balance ↦ mul * balance + add]; the committed state below the
    horizon is a single integer balance; and locks are mode-based
    ([CREDIT]/[POST]/[DEBIT]/[OVERDRAFT]) with the Figure 4-5 conflicts
    [CREDIT–OVERDRAFT], [POST–OVERDRAFT] and [DEBIT–DEBIT].

    The test suite checks this implementation observationally equivalent
    to the generic engine {!Atomic_obj.Make (Adt.Account)} instantiated
    with [Adt.Account.conflict_hybrid].

    As in {!Adt.Account}, [post p] multiplies the balance by the integer
    [1 + p] (exact arithmetic; see DESIGN.md). *)

type t

val create : ?name:string -> unit -> t
val name : t -> string

val try_credit :
  t -> Txn_rt.t -> int -> (unit, [ `Conflict of Retry.conflict option ]) result

val try_post :
  t -> Txn_rt.t -> int -> (unit, [ `Conflict of Retry.conflict option ]) result

val try_debit :
  t -> Txn_rt.t -> int -> (bool, [ `Conflict of Retry.conflict option ]) result
(** [Ok true] — debited; [Ok false] — overdraft (balance unchanged, an
    [OVERDRAFT] lock is acquired); [Error `Conflict] — the appendix's
    [MAYBE]: lock conflicts leave the account status ambiguous, retry. *)

val credit : ?retries:int -> t -> Txn_rt.t -> int -> unit
val post : ?retries:int -> t -> Txn_rt.t -> int -> unit
val debit : ?retries:int -> t -> Txn_rt.t -> int -> bool
(** Retrying wrappers; raise {!Txn_rt.Abort_requested} on exhaustion. *)

val committed_balance : t -> int
(** Balance reflecting every committed transaction (the forgotten balance
    plus remembered committed intentions). *)

val forgotten_balance : t -> int
(** The compacted balance only — committed transactions at or below the
    horizon. *)

val remembered_intents : t -> int
(** Committed transactions not yet folded (diagnostic for compaction
    tests). *)
