type participant = {
  name : string;
  on_commit : Model.Timestamp.t -> unit;
  on_abort : unit -> unit;
}

type status = Active | Committed of Model.Timestamp.t | Aborted

type t = {
  id : int;
  priority : int;
  mutable status : status;
  mutable participants : (int * participant) list; (* newest first *)
}

exception Abort_requested of string

let counter = Atomic.make 0
let object_key_counter = Atomic.make 0
let fresh_object_key () = Atomic.fetch_and_add object_key_counter 1

(* Registry of live transactions' priorities, readable by any domain
   (objects resolve lock holders by id). *)
let registry_mutex = Mutex.create ()
let registry : (int, int) Hashtbl.t = Hashtbl.create 64

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let fresh ?priority () =
  let id = Atomic.fetch_and_add counter 1 in
  let priority = Option.value ~default:id priority in
  with_registry (fun () -> Hashtbl.replace registry id priority);
  { id; priority; status = Active; participants = [] }

let id t = t.id
let priority t = t.priority
let priority_of_id id = with_registry (fun () -> Hashtbl.find_opt registry id)
let model_txn t = Model.Txn.make t.id

let status t =
  match t.status with
  | Active -> `Active
  | Committed ts -> `Committed ts
  | Aborted -> `Aborted

let add_participant t ~key p =
  if not (List.mem_assoc key t.participants) then
    t.participants <- (key, p) :: t.participants

let participant_count t = List.length t.participants

let deregister t = with_registry (fun () -> Hashtbl.remove registry t.id)

let commit t ts =
  match t.status with
  | Active ->
    t.status <- Committed ts;
    deregister t;
    (* Oldest participant first, matching touch order. *)
    List.iter (fun (_, p) -> p.on_commit ts) (List.rev t.participants)
  | Committed _ | Aborted -> invalid_arg "Txn_rt.commit: transaction not active"

let abort t =
  match t.status with
  | Active ->
    t.status <- Aborted;
    deregister t;
    List.iter (fun (_, p) -> p.on_abort ()) (List.rev t.participants)
  | Aborted -> ()
  | Committed _ -> invalid_arg "Txn_rt.abort: transaction already committed"
