type participant = {
  name : string;
  on_commit : Model.Timestamp.t -> unit;
  on_abort : unit -> unit;
}

type status = Active | Committed of Model.Timestamp.t | Aborted

type t = {
  id : int;
  priority : int;
  mutable status : status;
  mutable participants : (int * participant) list; (* newest first *)
}

exception Abort_requested of string

let counter = Atomic.make 0
let object_key_counter = Atomic.make 0
let fresh_object_key () = Atomic.fetch_and_add object_key_counter 1

(* Registry of live transactions' priorities, readable by any domain
   (objects resolve lock holders by id).  Entries are refcounted: the
   shard branches of one global transaction share its id, and the id
   must stay resolvable until the {e last} branch completes — wait-die
   reads [None] as "holder finished", which would be wrong while a
   sibling branch still holds locks. *)
let registry_mutex = Mutex.create ()
let registry : (int, int * int) Hashtbl.t = Hashtbl.create 64 (* id -> (priority, refs) *)

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let fresh_id () = Atomic.fetch_and_add counter 1

let fresh ?id ?priority () =
  let id = match id with Some id -> id | None -> fresh_id () in
  let priority = Option.value ~default:id priority in
  with_registry (fun () ->
      match Hashtbl.find_opt registry id with
      | Some (p, refs) -> Hashtbl.replace registry id (p, refs + 1)
      | None -> Hashtbl.replace registry id (priority, 1));
  { id; priority; status = Active; participants = [] }

let id t = t.id
let priority t = t.priority
let priority_of_id id =
  with_registry (fun () -> Option.map fst (Hashtbl.find_opt registry id))
let model_txn t = Model.Txn.make t.id

let status t =
  match t.status with
  | Active -> `Active
  | Committed ts -> `Committed ts
  | Aborted -> `Aborted

let add_participant t ~key p =
  if not (List.mem_assoc key t.participants) then
    t.participants <- (key, p) :: t.participants

let participant_count t = List.length t.participants

let deregister t =
  with_registry (fun () ->
      match Hashtbl.find_opt registry t.id with
      | Some (_, refs) when refs > 1 ->
        Hashtbl.replace registry t.id (fst (Hashtbl.find registry t.id), refs - 1)
      | Some _ -> Hashtbl.remove registry t.id
      | None -> ())

let commit t ts =
  match t.status with
  | Active ->
    t.status <- Committed ts;
    deregister t;
    (* Oldest participant first, matching touch order. *)
    List.iter (fun (_, p) -> p.on_commit ts) (List.rev t.participants)
  | Committed _ | Aborted -> invalid_arg "Txn_rt.commit: transaction not active"

let abort t =
  match t.status with
  | Active ->
    t.status <- Aborted;
    deregister t;
    List.iter (fun (_, p) -> p.on_abort ()) (List.rev t.participants)
  | Aborted -> ()
  | Committed _ -> invalid_arg "Txn_rt.abort: transaction already committed"
