type participant = {
  name : string;
  on_commit : Model.Timestamp.t -> unit;
  on_abort : unit -> unit;
}

type status = Active | Committed of Model.Timestamp.t | Aborted

type t = {
  id : int;
  priority : int;
  mutable status : status;
  mutable participants : (int * participant) list; (* newest first *)
}

exception Abort_requested of string

let counter = Atomic.make 0
let object_key_counter = Atomic.make 0
let fresh_object_key () = Atomic.fetch_and_add object_key_counter 1

(* Registry of live transactions' priorities, readable by any domain
   (objects resolve lock holders by id).  Entries are refcounted: the
   shard branches of one global transaction share its id, and the id
   must stay resolvable until the {e last} branch completes — wait-die
   reads [None] as "holder finished", which would be wrong while a
   sibling branch still holds locks.

   Lock-free: registration/deregistration runs on {e every} transaction,
   so a mutex here would put one lock on the otherwise mutex-free hot
   path (see Lockstat).  Entries live in a fixed array of atomics
   indexed by [id mod cap]; the cells hold immutable tuples, so
   compare-and-set on physical equality suffices (a fresh allocation per
   update rules out ABA).  Ids come from one monotone counter, so two
   {e live} ids only collide in a cell when more than [cap] transactions
   are simultaneously live (or a coordinator holds an old [~id] across
   that many draws) — that rare loser takes the mutex-guarded overflow
   table.  [overflow_count] is maintained so lookups skip the table —
   and its lock — entirely when it is empty. *)
let cap = 8192 (* power of two *)

type entry = { e_id : int; e_priority : int; e_refs : int }

let cells : entry option Atomic.t array = Array.init cap (fun _ -> Atomic.make None)
let overflow_mutex = Mutex.create ()
let overflow : (int, int * int) Hashtbl.t = Hashtbl.create 8 (* id -> (priority, refs) *)
let overflow_count = Atomic.make 0

let with_overflow f =
  Lockstat.count_registry ();
  Mutex.lock overflow_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock overflow_mutex) f

let overflow_register id priority =
  with_overflow (fun () ->
      match Hashtbl.find_opt overflow id with
      | Some (p, refs) -> Hashtbl.replace overflow id (p, refs + 1)
      | None ->
        Atomic.incr overflow_count;
        Hashtbl.replace overflow id (priority, 1))

let rec cell_register cell id priority =
  let cur = Atomic.get cell in
  match cur with
  | None ->
    if Atomic.compare_and_set cell cur (Some { e_id = id; e_priority = priority; e_refs = 1 })
    then ()
    else cell_register cell id priority
  | Some e when e.e_id = id ->
    (* A sibling branch of the same global transaction: bump the
       refcount, keep the first registration's priority (the branches
       share one seniority). *)
    if Atomic.compare_and_set cell cur (Some { e with e_refs = e.e_refs + 1 }) then ()
    else cell_register cell id priority
  | Some _ -> overflow_register id priority

let register_id id priority =
  (* A shared id must refcount in one place: if an earlier branch was
     pushed to the overflow table (its cell was occupied by another
     live transaction), later branches must join it there even if the
     cell has since freed up. *)
  let in_overflow =
    Atomic.get overflow_count > 0
    && with_overflow (fun () ->
           match Hashtbl.find_opt overflow id with
           | Some (p, refs) ->
             Hashtbl.replace overflow id (p, refs + 1);
             true
           | None -> false)
  in
  if not in_overflow then cell_register cells.(id land (cap - 1)) id priority

let fresh_id () = Atomic.fetch_and_add counter 1

let fresh ?id ?priority () =
  let id = match id with Some id -> id | None -> fresh_id () in
  let priority = Option.value ~default:id priority in
  register_id id priority;
  { id; priority; status = Active; participants = [] }

let id t = t.id
let priority t = t.priority

let priority_of_id id =
  match Atomic.get cells.(id land (cap - 1)) with
  | Some e when e.e_id = id -> Some e.e_priority
  | Some _ | None ->
    if Atomic.get overflow_count = 0 then None
    else with_overflow (fun () -> Option.map fst (Hashtbl.find_opt overflow id))

let model_txn t = Model.Txn.make t.id

let status t =
  match t.status with
  | Active -> `Active
  | Committed ts -> `Committed ts
  | Aborted -> `Aborted

let add_participant t ~key p =
  if not (List.mem_assoc key t.participants) then
    t.participants <- (key, p) :: t.participants

let participant_count t = List.length t.participants

let rec cell_deregister cell id =
  let cur = Atomic.get cell in
  match cur with
  | Some e when e.e_id = id ->
    let next = if e.e_refs > 1 then Some { e with e_refs = e.e_refs - 1 } else None in
    if Atomic.compare_and_set cell cur next then () else cell_deregister cell id
  | Some _ | None ->
    (* Not (or no longer) in the cell: this registration lives in the
       overflow table. *)
    if Atomic.get overflow_count > 0 then
      with_overflow (fun () ->
          match Hashtbl.find_opt overflow id with
          | Some (p, refs) when refs > 1 -> Hashtbl.replace overflow id (p, refs - 1)
          | Some _ ->
            Hashtbl.remove overflow id;
            Atomic.decr overflow_count
          | None -> ())

let deregister t = cell_deregister cells.(t.id land (cap - 1)) t.id

let commit t ts =
  match t.status with
  | Active ->
    t.status <- Committed ts;
    deregister t;
    (* Oldest participant first, matching touch order. *)
    List.iter (fun (_, p) -> p.on_commit ts) (List.rev t.participants)
  | Committed _ | Aborted -> invalid_arg "Txn_rt.commit: transaction not active"

let abort t =
  match t.status with
  | Active ->
    t.status <- Aborted;
    deregister t;
    List.iter (fun (_, p) -> p.on_abort ()) (List.rev t.participants)
  | Aborted -> ()
  | Committed _ -> invalid_arg "Txn_rt.abort: transaction already committed"
