(** Read-only transactions with start-time timestamps.

    The paper (Section 7.1, crediting [22, 23]) notes that hybrid
    atomicity has a more general form — the source of its name — in
    which {e read-only} transactions choose their timestamp when they
    {e start} (the static-atomic ingredient, as in multiversion
    protocols) while update transactions keep choosing at commit (the
    dynamic ingredient).  A reader then serializes at its start
    timestamp, takes {e no locks}, and never delays or aborts an update
    transaction.

    Implementation: the reader picks a {e stable} snapshot timestamp
    [s] — one such that every commit with a timestamp at or below [s]
    has been fully distributed ({!Manager.stable_time}) — and pins the
    compaction horizon of each object it will read so the committed
    state as of [s] remains reconstructable.  Serializability at [s] is
    then immediate: the reader sees exactly the committed transactions
    with timestamps [<= s]; every later committer draws a timestamp
    [> s] because the logical clock is monotone.

    Limitation (inherent to start-time timestamps): the read set must be
    declared up front so every object can be pinned before the snapshot
    is taken. *)

type source = {
  source_name : string;
  pin : Model.Txn.t -> Model.Timestamp.t -> unit;
  unpin : Model.Txn.t -> unit;
}
(** An object's snapshot hooks; obtain one from
    {!Atomic_obj.Make.snapshot_source}. *)

exception Unavailable
(** Raised by per-object reads when the object folded its version past
    the requested snapshot — only possible in the window between
    choosing a snapshot and pinning, so {!read} retries with a fresh
    snapshot. *)

val read :
  ?retries:int ->
  Manager.t ->
  sources:source list ->
  (at:Model.Timestamp.t -> 'a) ->
  'a
(** [read mgr ~sources body] pins every source, waits for the commit
    watermark to reach the chosen snapshot timestamp, runs [body ~at]
    (whose object reads should use {!Atomic_obj.Make.read_at} with
    [~at]), unpins, and returns the result.  Retries with a fresh
    snapshot if [body] raises {!Unavailable} (at most [retries] times,
    default 10). *)
