(* Slow-path accounting for the lock-free hot path.

   The hot-path rework (atomic timestamp allocation, CAS lock machine,
   lock-free priority registry) claims the no-conflict transaction path
   takes no mutex at all.  That claim is only checkable if every mutex
   acquisition that remains — Atomic_obj's conflict/trace/WAL slow path,
   Manager's WAL-ordering section and inflight overflow, Txn_rt's
   registry overflow — counts itself here.  The bench gate
   (`--hotpath-only`) then asserts the delta across a no-conflict
   WAL-off workload is exactly zero.

   These are plain process-wide atomics, deliberately not Obs.Metrics
   counters: the gate must run with observability disabled (the traced
   path is a legitimate mutex user), so the accounting cannot live
   behind the Obs.Control switch. *)

let obj_locks = Atomic.make 0
let mgr_locks = Atomic.make 0
let registry_locks = Atomic.make 0

let count_obj () = Atomic.incr obj_locks
let count_mgr () = Atomic.incr mgr_locks
let count_registry () = Atomic.incr registry_locks

type snapshot = { s_obj : int; s_mgr : int; s_registry : int }

let snapshot () =
  {
    s_obj = Atomic.get obj_locks;
    s_mgr = Atomic.get mgr_locks;
    s_registry = Atomic.get registry_locks;
  }

let diff ~before ~after =
  {
    s_obj = after.s_obj - before.s_obj;
    s_mgr = after.s_mgr - before.s_mgr;
    s_registry = after.s_registry - before.s_registry;
  }

let total s = s.s_obj + s.s_mgr + s.s_registry

(* Baseline mode for apples-to-apples measurement: when set, the
   runtime routes every operation through the pre-rework mutex paths
   (Atomic_obj skips its CAS fast path, Manager serializes draws behind
   a mutex even without a WAL).  The hotpath bench reports the ratio
   fast/forced-slow as the speedup attributable to lock elision alone,
   on identical hardware in the same process. *)
let force_slow_flag = Atomic.make false
let set_force_slow b = Atomic.set force_slow_flag b
let force_slow () = Atomic.get force_slow_flag
