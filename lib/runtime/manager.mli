(** The transaction manager: commit timestamps and the retry loop.

    Commit timestamps come from a per-manager logical clock
    ({!Model.Timestamp.t} values drawn from an atomic counter).  Drawing
    the timestamp strictly before distributing commit events yields the
    hybrid-atomicity timestamp constraint [precedes(H|X) ⊆ TS(H)]: if
    transaction [Q] observes [P]'s commit at some object, [P]'s timestamp
    was drawn before that observation, hence before [Q]'s own draw, and
    the counter is monotonic (paper Section 3.3; Lamport logical
    clocks).

    {!run} executes a transaction body with automatic abort-and-retry:
    an object wrapper that exhausts its conflict retries raises
    {!Txn_rt.Abort_requested}; the manager sends abort events to every
    touched object (releasing locks and discarding intentions) and
    restarts the body. *)

type t

type outcome_stats = {
  started : int;  (** attempts, including retries *)
  committed : int;
  aborted : int;  (** aborted attempts (each may be retried) *)
}

val create : ?wal:Wal.Log.t -> ?stripe:int * int -> unit -> t
(** With [wal], the manager runs the write-ahead commit rule: the commit
    record (transaction id + timestamp) is appended {e inside} the
    timestamp-draw critical section — so commit records appear in the
    log in exact commit-timestamp order — and made durable
    ({!Wal.Log.sync_upto} the record's LSN, a group-commit batch under
    concurrency) before any commit event is distributed to
    participants.  Abort records are appended on abort (without fsync;
    recovery discards uncommitted intentions regardless).

    [stripe = (i, n)] (default [(0, 1)]) restricts this manager's
    timestamp draws to the residue class [i mod n]: shard [i] of [n]
    managers in one process (or one system) then issues timestamps from
    disjoint sets with no shared state, which is what makes the
    cross-shard decided timestamp (max over prepares, see {!prepare})
    globally unique.  The default stripe is the single-manager seed
    behaviour (successive integers from 1). *)

val wal : t -> Wal.Log.t option

val current_time : t -> Model.Timestamp.t
(** Largest timestamp issued so far (0 if none). *)

val stable_time : t -> Model.Timestamp.t
(** The commit watermark: every transaction with a timestamp at or below
    this has fully distributed its commit events to the objects it
    touched.  Snapshot readers (see {!Snapshot}) serialize at a stable
    timestamp so they can never miss a smaller-timestamped commit that
    is still in flight.

    With nothing in flight, a striped manager is stable up to (one
    below) the next timestamp it could possibly issue or adopt — not
    just its last draw: stripe [(1, 4)] idle after issuing 5 reports 8,
    because 6 and 7 belong to residue classes this shard never draws and
    adopting a foreign decided timestamp first pins a {e prepared} one
    in flight.  A cross-shard wait-till-stable (and the Theorem 24
    horizon) therefore cannot hang on an idle shard.  The default
    [(0, 1)] stripe reduces to the classic "clock when idle". *)

exception Too_many_attempts of string

exception Durability_lost of string
(** The commit record reached the log but its sync failed: the record
    may or may not be on stable storage, so the runtime can report
    {e neither} commit nor abort for this transaction — an abort would
    let recovery replay a transaction the runtime disowned.  The
    transaction's in-flight timestamp is retired (so [stable_time]
    cannot wedge) but no commit or abort event is distributed; treat
    the condition as crash-equivalent — recovery from the log decides
    the transaction's outcome.  Transactions whose sync {e returned}
    before the failure are unaffected (they are durable), and
    subsequent transactions may proceed if the log recovers. *)

val run : ?max_attempts:int -> t -> (Txn_rt.t -> 'a) -> 'a
(** Run a transaction to commit.  The body may raise
    {!Txn_rt.Abort_requested} (usually via {!Atomic_obj.Make.invoke}) to
    abort; any other exception aborts the transaction and propagates.
    Failed attempts restart after a seeded, jittered exponential
    backoff ({!Backoff.restart_delay}).  After [max_attempts] (default
    1000) failed attempts raises {!Too_many_attempts}.  With a WAL
    attached, a post-append sync failure raises {!Durability_lost}
    without retrying (the attempt's outcome is indeterminate, so a
    retry could double-commit). *)

val run_once : t -> (Txn_rt.t -> 'a) -> ('a, string) result
(** Single attempt, no retry: [Error reason] when the body requested an
    abort. *)

val abort_in : ?reason:string -> unit -> 'a
(** Convenience for transaction bodies: raise {!Txn_rt.Abort_requested}. *)

(** {1 Externally driven transactions}

    A distributed coordinator ({!Dist.Coordinator}) runs transaction
    bodies itself and drives each shard's manager through the commit
    protocol directly: {!commit_txn}/{!abort_txn} for single-shard
    transactions, {!prepare} + {!decide_commit}/{!decide_abort} for
    cross-shard ones. *)

val commit_txn : t -> Txn_rt.t -> Model.Timestamp.t
(** Commit an externally executed handle through the full local path —
    timestamp draw, write-ahead commit record, durability point, commit
    distribution — returning the commit timestamp.  Raises
    {!Durability_lost} exactly like {!run}. *)

val abort_txn : t -> Txn_rt.t -> unit
(** Abort an externally executed handle: abort record (unforced), abort
    events to its participants, failure accounting. *)

val prepare : t -> Txn_rt.t -> gtxn:int -> Model.Timestamp.t
(** 2PC phase 1 at a participant shard: draw this shard's hybrid
    timestamp for global transaction [gtxn], force a [Prepare] record
    (the vote's durability point), and return the timestamp.  The
    prepared timestamp stays in flight — pinning {!stable_time}, and
    with it every horizon and checkpoint, below it — until
    {!decide_commit} or {!decide_abort}: a shard's horizon may not
    advance past a prepared-but-undecided transaction.  On failure the
    timestamp is retired and the exception propagates; the coordinator
    must then abort the global transaction (the un-acked vote is
    presumed aborted by recovery). *)

val decide_commit : t -> Txn_rt.t -> prepared:Model.Timestamp.t -> ts:Model.Timestamp.t -> unit
(** 2PC phase 2 at a participant shard, commit decision: adopt decided
    timestamp [ts] (= max over all participants' prepared timestamps;
    Lamport-merges into this shard's clock so every later local draw
    exceeds it), move the in-flight pin from [prepared] to [ts], append
    the commit record, distribute commit events, and force the record —
    return is the durable ack after which the coordinator may forget
    the decision.  A late failure (append/sync) raises only after the
    commit is applied in memory: the decision is already durable at the
    coordinator and recovery re-derives this shard's commit from it, so
    the caller must treat the transaction as committed but must {e not}
    forget the decision. *)

val decide_abort : t -> Txn_rt.t -> prepared:Model.Timestamp.t -> unit
(** 2PC phase 2 at a participant shard, abort decision (or presumed
    abort after a failed prepare elsewhere): release the prepared
    reservation and abort the local branch. *)

val stats : t -> outcome_stats

val register_introspection : ?name:string -> t -> unit
(** Register this manager's clock with the live-introspection registry:
    a provider named [name] (default ["manager"]) in the ["horizon"]
    snapshot channel (clock, stable watermark, in-flight commit count,
    outcome tallies) and callback gauges [txn_clock] and [txn_inflight]
    labelled [mgr=name].  Replace-on-name, like every registry entry. *)
