(* Seeded, jittered exponential backoff for the two retry sleeps in the
   runtime (Retry's conflict quantum, Manager.run's restart delay).

   Flat delays synchronize: under high contention every loser of a
   conflict wakes on the same schedule, collides again, and the retry
   storm self-sustains.  Jitter decorrelates the wake-ups and the
   exponential ramp sheds load, capped at ~1ms so a transaction never
   oversleeps a short-lived conflict by much.

   The jitter is a pure hash of (seed, key, attempt) — the same
   decorrelation scheme as Sim.Experiments.pseudo, no hidden RNG state —
   so a run is reproducible given the seed: `experiments --seed N`
   threads N here, and the deterministic simulator (Det_sim) never
   sleeps for real and is unaffected. *)

let seed = Atomic.make 0
let set_seed s = Atomic.set seed s
let current_seed () = Atomic.get seed

(* splitmix64-style avalanche finalizer (Steele et al., "Fast splittable
   pseudorandom number generators"), truncated to OCaml's 63-bit native
   int.  Every input bit influences every output bit, which is the
   property the previous linear prime mix lacked: it kept only the 16
   low bits of [seed*p1 + key*p2 + attempt*p3], and because
   [7919 * 65536] contributes nothing mod 2^16's scaling the final
   division, transaction ids that collide mod small powers of two got
   near-identical jitter for every attempt — lockstep wake-ups, the
   exact retry storm this module exists to prevent. *)
(* The 64-bit splitmix constants exceed OCaml's 63-bit int literals;
   composing them from halves wraps mod 2^63, which truncates the top
   bit exactly like the multiplications themselves do. *)
let c_gamma = (0x9e3779b9 lsl 32) lor 0x7f4a7c15
let c_mix1 = (0xbf58476d lsl 32) lor 0x1ce4e5b9
let c_mix2 = (0x94d049bb lsl 32) lor 0x133111eb

let avalanche x =
  let x = x * c_gamma in
  let x = (x lxor (x lsr 30)) * c_mix1 in
  let x = (x lxor (x lsr 27)) * c_mix2 in
  x lxor (x lsr 31)

(* Uniform-ish fraction in [0, 1), decorrelated across (seed, key,
   attempt): mix the three inputs through the avalanche so nearby or
   congruent keys land far apart. *)
let jitter ~key ~attempt =
  let h = avalanche (avalanche (avalanche (Atomic.get seed) lxor key) lxor attempt) in
  float_of_int (h land 0x3fffffff) /. 1073741824.

let cap = 1e-3

let delay ~base ~key ~attempt =
  (* Double up to the cap, then jitter into [d/2, d): the half-floor
     keeps progress (a zero sleep would respin immediately), the spread
     breaks lockstep. *)
  let exponent = min attempt 8 in
  let d = Float.min cap (base *. float_of_int (1 lsl exponent)) in
  Float.min cap (d *. (0.5 +. (0.5 *. jitter ~key ~attempt)))

let retry_delay ~key ~attempt = delay ~base:2e-5 ~key ~attempt
let restart_delay ~key ~attempt = delay ~base:5e-5 ~key ~attempt
