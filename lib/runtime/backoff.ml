(* Seeded, jittered exponential backoff for the two retry sleeps in the
   runtime (Retry's conflict quantum, Manager.run's restart delay).

   Flat delays synchronize: under high contention every loser of a
   conflict wakes on the same schedule, collides again, and the retry
   storm self-sustains.  Jitter decorrelates the wake-ups and the
   exponential ramp sheds load, capped at ~1ms so a transaction never
   oversleeps a short-lived conflict by much.

   The jitter is a pure hash of (seed, key, attempt) — the same
   decorrelation scheme as Sim.Experiments.pseudo, no hidden RNG state —
   so a run is reproducible given the seed: `experiments --seed N`
   threads N here, and the deterministic simulator (Det_sim) never
   sleeps for real and is unaffected. *)

let seed = Atomic.make 0
let set_seed s = Atomic.set seed s
let current_seed () = Atomic.get seed

(* Uniform-ish fraction in [0, 1), decorrelated across (seed, key,
   attempt) by the repo's usual prime mix. *)
let jitter ~key ~attempt =
  let h =
    ((Atomic.get seed * 15485863) + (key * 7919) + (attempt * 104729)) land 0x3fffffff
  in
  float_of_int (h land 0xffff) /. 65536.

let cap = 1e-3

let delay ~base ~key ~attempt =
  (* Double up to the cap, then jitter into [d/2, d): the half-floor
     keeps progress (a zero sleep would respin immediately), the spread
     breaks lockstep. *)
  let exponent = min attempt 8 in
  let d = Float.min cap (base *. float_of_int (1 lsl exponent)) in
  Float.min cap (d *. (0.5 +. (0.5 *. jitter ~key ~attempt)))

let retry_delay ~key ~attempt = delay ~base:2e-5 ~key ~attempt
let restart_delay ~key ~attempt = delay ~base:5e-5 ~key ~attempt
