type outcome_stats = { started : int; committed : int; aborted : int }

(* Timestamp allocation is lock-free: instead of a clock guarded by the
   in-flight mutex, the manager counts its draws ([draws], fetch-and-add)
   and maps the count onto its stripe's residue class —

     ts_of k = base + k * stripe_count,
     base    = 0 when stripe_index = 0, stripe_index - stripe_count
               otherwise (so ts_of 1 is the smallest positive member of
               the class; the default (0, 1) stripe draws 1, 2, 3, ...
               exactly like the seed implementation).

   Foreign decided timestamps (2PC, [decide_commit]) Lamport-merge via a
   CAS-max on [observed]; a draw first bumps [draws] past the count
   whose timestamp would not exceed [observed], then fetch-and-adds, so
   every draw that starts after an observe completes exceeds the
   observed timestamp — the transitive leg of precedes ⊆ TS across
   shards, now without a mutex.

   The in-flight set (timestamps drawn, commit not yet fully
   distributed) is a fixed array of per-domain-ish slots: a committer
   CAS-claims an empty slot (sentinel -1), draws, and publishes the
   timestamp with a plain atomic store; retiring stores 0.  Claim
   happens {e before} the draw, so [stable_time] — which reads the
   allocation state first and then scans the slots, re-scanning while
   any claim is unresolved — can never miss a drawn-but-undistributed
   commit: a pin it did not see belongs to a draw that started after the
   scan read the allocation state, and such a draw's timestamp exceeds
   the value returned.  If all slots are taken (more simultaneous
   committers than slots) the loser takes a mutex-guarded overflow list;
   the claim pushes the same [claiming] sentinel into the list {e
   before} drawing (replaced by the timestamp at publish), so an
   unresolved overflow claim is exactly as visible to the scan as an
   unresolved slot claim.

   A draw additionally re-validates [observed] {e after} its
   fetch-and-add: a drawer stalled between its pre-draw [observed] read
   and the FAA can otherwise issue a count that a foreign adoption has
   meanwhile covered — and that a concurrent scan, seeing the raised
   [observed] with no pin yet, already reported as stable.  A count at
   or below the re-read need is discarded (never issued) and redrawn.

   Managers with a WAL keep a mutex around draw + append: the log's
   commit-record order must equal commit-timestamp order (the group
   Wal tests rely on it), which a free-running fetch-and-add cannot
   provide.  That serializes only durable configurations — the WAL-off
   hot path ROADMAP item 2 targets stays mutex-free end to end (the
   bench gate counts; see Lockstat). *)

type pin = Slot of int | Overflow

type t = {
  stripe_index : int; (* this manager draws ts ≡ stripe_index (mod stripe_count) *)
  stripe_count : int;
  base : int;
  draws : int Atomic.t; (* local draws so far; k-th draw has ts_of k *)
  observed : int Atomic.t; (* largest adopted foreign timestamp (0 = none) *)
  slots : int Atomic.t array; (* 0 empty, -1 claiming, else an in-flight ts *)
  overflow_mutex : Mutex.t;
  mutable overflow : int list;
  overflow_count : int Atomic.t;
  wal_mutex : Mutex.t; (* draw+append section for WAL configurations *)
  attempts : int Atomic.t;
  commits : int Atomic.t;
  failures : int Atomic.t;
  wal : Wal.Log.t option;
}

exception Too_many_attempts of string
exception Durability_lost of string

let m_attempts = Obs.Metrics.counter "txn.attempts"
let m_commits = Obs.Metrics.counter "txn.commits"
let m_aborts = Obs.Metrics.counter "txn.aborts"
let m_durability_lost = Obs.Metrics.counter "txn.durability_lost"
let h_attempt = Obs.Metrics.histogram "txn.attempt_latency"

let n_inflight_slots = 64 (* power of two *)
let claiming = -1

let create ?wal ?(stripe = (0, 1)) () =
  let stripe_index, stripe_count = stripe in
  if stripe_count < 1 || stripe_index < 0 || stripe_index >= stripe_count then
    invalid_arg "Manager.create: stripe must satisfy 0 <= index < count";
  {
    stripe_index;
    stripe_count;
    base = (if stripe_index = 0 then 0 else stripe_index - stripe_count);
    draws = Atomic.make 0;
    observed = Atomic.make 0;
    slots = Array.init n_inflight_slots (fun _ -> Atomic.make 0);
    overflow_mutex = Mutex.create ();
    overflow = [];
    overflow_count = Atomic.make 0;
    wal_mutex = Mutex.create ();
    attempts = Atomic.make 0;
    commits = Atomic.make 0;
    failures = Atomic.make 0;
    wal;
  }

let wal t = t.wal

let ts_of t k = t.base + (k * t.stripe_count)
let last_issued t = match Atomic.get t.draws with 0 -> 0 | k -> ts_of t k
let current_time t = max (last_issued t) (Atomic.get t.observed)

let with_overflow t f =
  Lockstat.count_mgr ();
  Mutex.lock t.overflow_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.overflow_mutex) f

(* The smallest draw count whose successor's timestamp exceeds
   [observed]: base + (need+1)*stripe_count > observed. *)
let need_for t observed =
  if observed <= t.base then 0 else (observed - t.base) / t.stripe_count

let rec bump_draws t need =
  let k = Atomic.get t.draws in
  if k < need && not (Atomic.compare_and_set t.draws k need) then bump_draws t need

let rec draw t =
  let obs = Atomic.get t.observed in
  let k = Atomic.get t.draws in
  let need = need_for t obs in
  if k < need then begin
    (* Skip the counts whose timestamps an adopted foreign decision
       already covers (the CAS may lose to a parallel bump or draw —
       re-check either way). *)
    ignore (Atomic.compare_and_set t.draws k need : bool);
    draw t
  end
  else begin
    let c = Atomic.fetch_and_add t.draws 1 + 1 in
    (* Re-validate against [observed] {e after} the fetch-and-add.  The
       pre-check above read a possibly stale [observed]: if a foreign
       decision was adopted (and retired) while we were between that
       read and the FAA, a concurrent [stable_time] — whose own
       [observed] read saw the raised value and whose pin scan found
       nothing, because our claim postdates it — may already have
       reported an idle watermark at or above ts_of c.  Issuing c now
       would place a commit at or below a reported stable watermark.  A
       count the re-read need still covers is therefore discarded
       (never issued): bump [draws] past the new need and redraw.  Any
       scan our FAA {e preceded} instead sees the claimed pin, so every
       issued timestamp stays strictly above every previously returned
       watermark. *)
    let need' = need_for t (Atomic.get t.observed) in
    if c <= need' then begin
      bump_draws t need';
      draw t
    end
    else ts_of t c
  end

(* Lamport merge (CAS-max): adopting a foreign timestamp makes every
   draw that starts after this returns exceed it. *)
let rec observe t ts =
  let cur = Atomic.get t.observed in
  if ts > cur && not (Atomic.compare_and_set t.observed cur ts) then observe t ts

(* ---- the in-flight set ---- *)

let try_claim_slot t =
  (* Start probing at a per-domain offset so concurrent committers land
     on distinct slots without coordination. *)
  let start = (Domain.self () :> int) * 13 land (n_inflight_slots - 1) in
  let rec go i =
    if i >= n_inflight_slots then None
    else
      let idx = (start + i) land (n_inflight_slots - 1) in
      let s = t.slots.(idx) in
      if Atomic.get s = 0 && Atomic.compare_and_set s 0 claiming then Some idx
      else go (i + 1)
  in
  go 0

(* Claim a pin, then draw, then publish — in that order; see the header
   comment for why [stable_time] depends on it.  [publish] is separate
   from [claim] because the WAL path draws under its mutex. *)
let claim t =
  match try_claim_slot t with
  | Some idx -> Slot idx
  | None ->
    (* Overflow claims must be as visible to [stable_time] as slot
       claims: push the [claiming] sentinel into the list {e now}, under
       the mutex, so a scan running between this claim and [publish]
       finds an unresolved entry and re-scans — the slot path's -1
       protocol.  (Issued timestamps are >= 1, so the sentinel is
       unambiguous.)  [overflow_count] turns nonzero only after the
       sentinel is in place: a scan that reads 0 precedes this claim,
       hence precedes the draw, whose timestamp then exceeds the
       scan's watermark. *)
    with_overflow t (fun () ->
        t.overflow <- claiming :: t.overflow;
        Atomic.incr t.overflow_count);
    Overflow

let rec replace_first ~from ~to_ = function
  | [] -> [ to_ ]
  | x :: rest -> if x = from then to_ :: rest else x :: replace_first ~from ~to_ rest

let publish t pin ts =
  match pin with
  | Slot idx -> Atomic.set t.slots.(idx) ts
  | Overflow ->
    with_overflow t (fun () -> t.overflow <- replace_first ~from:claiming ~to_:ts t.overflow)

let retire t pin ts =
  match pin with
  | Slot idx -> Atomic.set t.slots.(idx) 0
  | Overflow ->
    with_overflow t (fun () ->
        t.overflow <- List.filter (fun x -> x <> ts) t.overflow;
        Atomic.decr t.overflow_count)

(* Pin lookup by timestamp, for the 2PC entry points whose public
   interface names the prepared timestamp only.  Timestamps are unique
   per manager, so the scan is unambiguous. *)
let find_pin t ts =
  let rec go i =
    if i >= n_inflight_slots then Overflow
    else if Atomic.get t.slots.(i) = ts then Slot i
    else go (i + 1)
  in
  go 0

(* Move an in-flight pin from [from_ts] to [to_ts] without a gap (the
   2PC decided-timestamp adoption). *)
let repin t ~from_ts ~to_ts =
  match find_pin t from_ts with
  | Slot idx -> Atomic.set t.slots.(idx) to_ts
  | Overflow ->
    with_overflow t (fun () ->
        t.overflow <- to_ts :: List.filter (fun x -> x <> from_ts) t.overflow)

let inflight_count t =
  Array.fold_left (fun n s -> if Atomic.get s <> 0 then n + 1 else n) 0 t.slots
  + Atomic.get t.overflow_count

(* The commit watermark.  Read the allocation state (draws, observed)
   {e first}, then scan the pins, re-scanning while any claim is
   unresolved (sentinel): a committer that claimed after its slot was
   scanned performs its fetch-and-add after our [draws]/[observed] reads
   (program order on its side, monotone atomics on ours), so its
   timestamp is at least the next-draw timestamp computed from the state
   we read — strictly above what we return.  With pins in flight the
   watermark is min(pin) - 1, as before.

   With {e no} pins in flight the seed returned the clock, which is
   wrong under striping: an idle shard 1-of-4 whose last draw was 9 can
   never issue 10, 11 or 12, yet "stable = 9" makes a cross-shard
   wait-till-stable for timestamp 12 hang (and Theorem 24 truncation
   needlessly conservative) — while adopting a foreign decided 11 would
   first require a {e prepared} pin, which the scan would have seen.  So
   idle stability extends to everything below the next timestamp this
   shard could possibly issue or adopt: next_draw(draws, observed) - 1.
   For the default (0, 1) stripe that is exactly the old clock value. *)
let stable_time t =
  let rec scan () =
    let d = Atomic.get t.draws in
    let obs = Atomic.get t.observed in
    let lo = ref max_int in
    let unresolved = ref false in
    Array.iter
      (fun s ->
        let v = Atomic.get s in
        if v = claiming then unresolved := true else if v <> 0 && v < !lo then lo := v)
      t.slots;
    (* Overflow pins follow the same sentinel protocol as slots: a claim
       pushed [claiming] before its draw, so an unresolved entry forces
       a re-scan exactly like an unresolved slot. *)
    if Atomic.get t.overflow_count <> 0 then
      with_overflow t (fun () ->
          List.iter
            (fun x ->
              if x = claiming then unresolved := true else if x < !lo then lo := x)
            t.overflow);
    if !unresolved then begin
      Domain.cpu_relax ();
      scan ()
    end
    else if !lo <> max_int then !lo - 1
    else ts_of t (max d (need_for t obs) + 1) - 1
  in
  scan ()

(* Serialize the draw+append section for WAL configurations (and for
   Lockstat's forced-slow baseline mode, which emulates the pre-rework
   mutex-guarded draw even without a WAL). *)
let draw_section t f =
  if Option.is_some t.wal || Lockstat.force_slow () then begin
    Lockstat.count_mgr ();
    Mutex.lock t.wal_mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.wal_mutex) f
  end
  else f ()

(* Draw a timestamp and pin it in flight — claim before draw, so
   [stable_time] can never miss a drawn-but-undistributed commit.  With
   a WAL, the commit record is appended inside the same mutex-guarded
   section: the log's commit-record order is then exactly the
   commit-timestamp order, i.e. the hybrid serialization order (decided
   cross-shard commits are the one exception — see [decide_commit];
   recovery sorts by timestamp and never relies on record order).
   Returns the commit record's LSN alongside the timestamp — the handle
   [attempt_once] passes to [Wal.Log.sync_upto], this transaction's
   durability point.

   Exception-safe: a failing append retires the timestamp before
   re-raising, so a full disk can never wedge [stable_time].  (A failed
   append also means the commit record is not durably complete — the
   frame's CRC cannot check out — so aborting afterwards is sound.) *)
let begin_commit t txn =
  draw_section t (fun () ->
      let pin = claim t in
      let ts = draw t in
      publish t pin ts;
      match t.wal with
      | None -> (ts, pin, None)
      | Some w -> (
        match Wal.Log.append_lsn w (Wal.Log.Commit { txn = Txn_rt.id txn; ts }) with
        | lsn -> (ts, pin, Some (w, lsn))
        | exception e ->
          retire t pin ts;
          raise e))

let end_commit t pin ts = retire t pin ts

(* Abort records are an optimization, not a correctness requirement:
   recovery discards any intentions without a commit record, so a lost
   abort record only costs the log compactor retained bytes. *)
let log_abort t txn =
  match t.wal with
  | Some w -> Wal.Log.append w (Wal.Log.Abort { txn = Txn_rt.id txn })
  | None -> ()

(* The full local commit path for an externally managed handle (the
   bodies of [attempt_once] and the coordinator's single-shard fast
   path).  Three exits, in-flight timestamp retired on every one:
   - append failed inside [begin_commit]: the record is not durably
     complete, so the attempt aborts like any other failure;
   - [sync_upto] failed: the record was appended and {e may} be on
     disk, so neither commit nor abort can be reported — the timestamp
     is retired and [Durability_lost] raised (crash-equivalent: no
     commit/abort event is distributed, and recovery decides the
     outcome from the log);
   - sync returned: the commit is durable, distribute it ([Fun.protect]
     retires the timestamp even if a participant's [on_commit]
     raises). *)
let commit_txn t txn =
  match begin_commit t txn with
  | exception e ->
    if Obs.Span.enabled () then Obs.Span.txn_abort ~txn:(Txn_rt.id txn);
    Txn_rt.abort txn;
    Atomic.incr t.failures;
    Obs.Metrics.incr m_aborts;
    raise e
  | ts, pin, lsn -> (
    let durable =
      match lsn with
      | Some (w, l) ->
        (* Append and sync-wait marks bracket the group-commit barrier:
           the flight span's commit phase starts at the append, and the
           sync window isolates time spent waiting on the durability
           point ([sync_upto]) from the rest of the commit path. *)
        if Obs.Span.enabled () then begin
          Obs.Span.append ~txn:(Txn_rt.id txn) ~lsn:l;
          Obs.Span.sync_wait ~txn:(Txn_rt.id txn) ~lsn:l
        end;
        let r = try Ok (Wal.Log.sync_upto w l) with e -> Error e in
        if Obs.Span.enabled () then Obs.Span.sync_done ~txn:(Txn_rt.id txn);
        r
      | None -> Ok ()
    in
    match durable with
    | Error e ->
      end_commit t pin ts;
      Obs.Metrics.incr m_durability_lost;
      raise
        (Durability_lost
           (Printf.sprintf "txn %d (ts %d): commit record appended but not synced: %s"
              (Txn_rt.id txn) ts (Printexc.to_string e)))
    | Ok () ->
      Fun.protect ~finally:(fun () -> end_commit t pin ts) (fun () -> Txn_rt.commit txn ts);
      Atomic.incr t.commits;
      Obs.Metrics.incr m_commits;
      if Obs.Span.enabled () then Obs.Span.txn_commit ~txn:(Txn_rt.id txn) ~ts;
      ts)

let abort_txn t txn =
  log_abort t txn;
  if Obs.Span.enabled () then Obs.Span.txn_abort ~txn:(Txn_rt.id txn);
  Txn_rt.abort txn;
  Atomic.incr t.failures;
  Obs.Metrics.incr m_aborts

(* ---- two-phase commit participant entry points (see Dist) ---- *)

(* Phase 1: draw this shard's hybrid timestamp for global transaction
   [gtxn] and force the vote.  The prepared timestamp joins the
   in-flight set and stays there until the decision: [stable_time] — and
   with it every object horizon and checkpoint — cannot advance past a
   prepared-but-undecided transaction.  That is the cross-shard
   stability rule: the decided timestamp is at least the local prepared
   one, so nothing this shard folds or serves as stable can be
   invalidated by the eventual commit. *)
let prepare t txn ~gtxn =
  if Obs.Span.enabled () then
    Obs.Span.prepare ~txn:(Txn_rt.id txn) ~shard:t.stripe_index;
  let ts, pin, lsn =
    draw_section t (fun () ->
        let pin = claim t in
        let ts = draw t in
        publish t pin ts;
        match t.wal with
        | None -> (ts, pin, None)
        | Some w -> (
          match
            Wal.Log.append_lsn w (Wal.Log.Prepare { txn = Txn_rt.id txn; gtxn; ts })
          with
          | lsn -> (ts, pin, Some (w, lsn))
          | exception e ->
            retire t pin ts;
            raise e))
  in
  (match lsn with
  | Some (w, l) -> (
    try Wal.Log.sync_upto w l
    with e ->
      (* The vote may or may not be on disk; either way this shard never
         acked, the coordinator will not decide commit, and recovery
         presumes abort — so retiring the timestamp and failing the
         prepare is sound. *)
      retire t pin ts;
      raise e)
  | None -> ());
  if Obs.Span.enabled () then
    Obs.Span.prepared ~txn:(Txn_rt.id txn) ~shard:t.stripe_index ~ts;
  ts

(* Phase 2, commit: adopt the decided timestamp (max over all
   participants' prepares).  The clock observes the decision (CAS-max
   Lamport merge), the in-flight reservation moves from the prepared to
   the decided timestamp with one atomic store (the stability pin
   transfers without a gap), and the commit record is appended —
   possibly out of local record order, which recovery's sort-by-timestamp
   absorbs.  The record is forced before returning, so a return is the
   durable ack the coordinator needs before it may forget the decision;
   a sync failure raises only {e after} the commit events are
   distributed, because the global decision is already durable at the
   coordinator and cannot be un-taken. *)
let decide_commit t txn ~prepared ~ts =
  let logged =
    draw_section t (fun () ->
        (* Observe {e before} repinning: once the pin sits at the
           decided timestamp it can become the scan minimum, so a
           watermark of [ts - 1] may be reported — every draw issued
           after that point must already exceed it, which the raised
           [observed] (plus the drawer's post-FAA re-validation)
           guarantees.  In between, the pin still holds the smaller
           prepared timestamp, keeping scans conservative. *)
        observe t ts;
        repin t ~from_ts:prepared ~to_ts:ts;
        match t.wal with
        | None -> Ok None
        | Some w -> (
          try Ok (Some (w, Wal.Log.append_lsn w (Wal.Log.Commit { txn = Txn_rt.id txn; ts })))
          with e -> Error e))
  in
  if Obs.Span.enabled () then
    Obs.Span.decide_commit ~txn:(Txn_rt.id txn) ~shard:t.stripe_index ~ts;
  let pin = find_pin t ts in
  Fun.protect ~finally:(fun () -> retire t pin ts) (fun () -> Txn_rt.commit txn ts);
  Atomic.incr t.commits;
  Obs.Metrics.incr m_commits;
  match logged with
  | Ok None -> ()
  | Ok (Some (w, l)) -> Wal.Log.sync_upto w l
  | Error e -> raise e

(* Phase 2, abort: presumed abort — release the prepared reservation and
   notify participants; the Abort record is an unforced courtesy to the
   compactor, exactly as in the single-shard path. *)
let decide_abort t txn ~prepared =
  if Obs.Span.enabled () then
    Obs.Span.decide_abort ~txn:(Txn_rt.id txn) ~shard:t.stripe_index;
  log_abort t txn;
  Txn_rt.abort txn;
  retire t (find_pin t prepared) prepared;
  Atomic.incr t.failures;
  Obs.Metrics.incr m_aborts

let attempt_once ?priority t body =
  Atomic.incr t.attempts;
  Obs.Metrics.incr m_attempts;
  (* Monotonic, like the trace timestamps: attempt latencies must never
     go negative under a wall-clock adjustment. *)
  let t0 = if Obs.Control.enabled () then Obs.Clock.now_ns () else 0 in
  let observe_latency () =
    if Obs.Control.enabled () then
      Obs.Metrics.observe h_attempt (Obs.Clock.ns_to_s (Obs.Clock.now_ns () - t0))
  in
  let txn = Txn_rt.fresh ?priority () in
  if Obs.Span.enabled () then
    Obs.Span.txn_begin ~txn:(Txn_rt.id txn) ~shard:t.stripe_index;
  match body txn with
  | v ->
    (* Draw the timestamp before any commit event becomes visible (see
       the interface comment), and keep it in the in-flight set until
       every participant has seen the commit so snapshot readers can
       wait for a stable watermark.  With a WAL attached the commit
       record is forced to stable storage before any commit event is
       distributed — the write-ahead rule: once any object acts on the
       commit, a crash replays it.  The durability point is explicit:
       this transaction is committed iff [commit_txn] returned (see its
       exit analysis above). *)
    let _ts : int = commit_txn t txn in
    observe_latency ();
    Ok (v, Txn_rt.priority txn)
  | exception Txn_rt.Abort_requested reason ->
    abort_txn t txn;
    observe_latency ();
    Error (reason, Txn_rt.priority txn)
  | exception e ->
    abort_txn t txn;
    raise e

let run_once t body =
  match attempt_once t body with
  | Ok (v, _) -> Ok v
  | Error (reason, _) -> Error reason

let run ?(max_attempts = 1000) t body =
  (* A restarted transaction keeps its first attempt's priority:
     wait-die's no-starvation argument needs seniority to be stable.
     The restart delay backs off exponentially with jitter keyed on
     that stable priority, so the losers of one conflict spread out
     instead of re-colliding in lockstep (see Backoff).  When the dying
     attempt recorded which object it lost (Sched's restart hint), the
     delay parks on that object and a release re-dispatches the restart
     immediately; the jittered delay remains as the timeout backstop. *)
  let rec go attempt priority last_reason =
    if attempt >= max_attempts then
      raise
        (Too_many_attempts
           (Printf.sprintf "transaction failed %d times; last: %s" attempt last_reason))
    else
      match attempt_once ?priority t body with
      | Ok (v, _) -> v
      | Error (reason, prio) ->
        let delay = Backoff.restart_delay ~key:prio ~attempt in
        (* The restarted attempt gets a fresh transaction id, so the
           backoff record is keyed on the stable priority — the one id
           every attempt of this transaction shares. *)
        if Obs.Span.enabled () then
          Obs.Span.backoff ~txn:prio ~sleep_ns:(int_of_float (delay *. 1e9));
        (match Sched.take_restart_hint () with
        | Some obj ->
          let ticket = Sched.register ~obj ~txn:prio in
          ignore (Sched.park ticket ~timeout:delay : [ `Woken | `Timeout ])
        | None -> Sched.sleep delay);
        go (attempt + 1) (Some prio) reason
  in
  go 0 None "never attempted"

let abort_in ?(reason = "explicit abort") () = raise (Txn_rt.Abort_requested reason)

let stats t =
  {
    started = Atomic.get t.attempts;
    committed = Atomic.get t.commits;
    aborted = Atomic.get t.failures;
  }

(* ---- live introspection ---- *)

let clock_json ?(name = "manager") t () =
  Obs.Json.Obj
    [
      ("object", Obs.Json.String name);
      ("clock", Obs.Json.Int (current_time t));
      ("stable_time", Obs.Json.Int (stable_time t));
      ("inflight", Obs.Json.Int (inflight_count t));
      ("attempts", Obs.Json.Int (Atomic.get t.attempts));
      ("commits", Obs.Json.Int (Atomic.get t.commits));
      ("aborts", Obs.Json.Int (Atomic.get t.failures));
    ]

let register_introspection ?(name = "manager") t =
  Obs.Registry.register_snapshot ~channel:"horizon" ~name (clock_json ~name t);
  let labels = [ ("mgr", name) ] in
  Obs.Gauge.callback ~labels "txn_clock" (fun () -> float_of_int (current_time t));
  (* Commits whose timestamp is drawn but whose events are still being
     distributed: the gap between the clock and the stable watermark
     snapshot readers wait behind. *)
  Obs.Gauge.callback ~labels "txn_inflight" (fun () -> float_of_int (inflight_count t))
