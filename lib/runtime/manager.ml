type outcome_stats = { started : int; committed : int; aborted : int }

type t = {
  clock : int Atomic.t; (* last issued or observed timestamp *)
  stripe_index : int; (* this manager draws ts ≡ stripe_index (mod stripe_count) *)
  stripe_count : int;
  attempts : int Atomic.t;
  commits : int Atomic.t;
  failures : int Atomic.t;
  inflight_mutex : Mutex.t;
  mutable inflight : int list; (* timestamps drawn, commit not yet fully distributed *)
  wal : Wal.Log.t option;
}

exception Too_many_attempts of string
exception Durability_lost of string

let m_attempts = Obs.Metrics.counter "txn.attempts"
let m_commits = Obs.Metrics.counter "txn.commits"
let m_aborts = Obs.Metrics.counter "txn.aborts"
let m_durability_lost = Obs.Metrics.counter "txn.durability_lost"
let h_attempt = Obs.Metrics.histogram "txn.attempt_latency"

let create ?wal ?(stripe = (0, 1)) () =
  let stripe_index, stripe_count = stripe in
  if stripe_count < 1 || stripe_index < 0 || stripe_index >= stripe_count then
    invalid_arg "Manager.create: stripe must satisfy 0 <= index < count";
  {
    clock = Atomic.make 0;
    stripe_index;
    stripe_count;
    attempts = Atomic.make 0;
    commits = Atomic.make 0;
    failures = Atomic.make 0;
    inflight_mutex = Mutex.create ();
    inflight = [];
    wal;
  }

let wal t = t.wal

let current_time t = Atomic.get t.clock

let with_inflight t f =
  Mutex.lock t.inflight_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.inflight_mutex) f

(* Timestamps come from the manager's stripe: the smallest value above
   the clock congruent to [stripe_index] mod [stripe_count].  With the
   default (0, 1) stripe this is exactly clock+1 (the single-manager
   behaviour); shard [i] of [N] draws only from its own residue class,
   so timestamps are process-unique across shards without any shared
   state — which is what lets a cross-shard decision adopt one shard's
   prepared timestamp (the max) knowing no other shard can ever issue
   it locally.  Callers hold the in-flight mutex; the clock stays an
   atomic so [current_time] reads without the lock. *)
let draw_locked t =
  let c = Atomic.get t.clock in
  let r = ((t.stripe_index - c) mod t.stripe_count + t.stripe_count) mod t.stripe_count in
  let ts = c + if r = 0 then t.stripe_count else r in
  Atomic.set t.clock ts;
  ts

(* Lamport merge: adopting a foreign timestamp pushes the local clock
   past it, so every later local draw exceeds it — the transitive leg of
   precedes ⊆ TS across shards. *)
let observe_locked t ts = if ts > Atomic.get t.clock then Atomic.set t.clock ts

(* Draw a timestamp and mark it in flight in one critical section, so
   [stable_time] can never miss a drawn-but-undistributed commit.  The
   WAL commit record is appended inside the same critical section: the
   log's commit-record order is then exactly the commit-timestamp order,
   i.e. the hybrid serialization order (decided cross-shard commits are
   the one exception — see [decide_commit]; recovery sorts by timestamp
   and never relies on record order).  Returns the commit record's
   LSN alongside the timestamp — the handle [attempt_once] passes to
   [Wal.Log.sync_upto], this transaction's durability point.

   Exception-safe: a failing append retires the timestamp before
   re-raising, so a full disk can never wedge [stable_time].  (A failed
   append also means the commit record is not durably complete — the
   frame's CRC cannot check out — so aborting afterwards is sound.) *)
let begin_commit t txn =
  with_inflight t (fun () ->
      let ts = draw_locked t in
      t.inflight <- ts :: t.inflight;
      match t.wal with
      | None -> (ts, None)
      | Some w -> (
        match Wal.Log.append_lsn w (Wal.Log.Commit { txn = Txn_rt.id txn; ts }) with
        | lsn -> (ts, Some (w, lsn))
        | exception e ->
          t.inflight <- List.filter (fun x -> x <> ts) t.inflight;
          raise e))

let end_commit t ts =
  with_inflight t (fun () -> t.inflight <- List.filter (fun x -> x <> ts) t.inflight)

let stable_time t =
  with_inflight t (fun () ->
      match t.inflight with
      | [] -> Atomic.get t.clock
      | l -> List.fold_left min max_int l - 1)

(* Abort records are an optimization, not a correctness requirement:
   recovery discards any intentions without a commit record, so a lost
   abort record only costs the log compactor retained bytes. *)
let log_abort t txn =
  match t.wal with
  | Some w -> Wal.Log.append w (Wal.Log.Abort { txn = Txn_rt.id txn })
  | None -> ()

(* The full local commit path for an externally managed handle (the
   bodies of [attempt_once] and the coordinator's single-shard fast
   path).  Three exits, in-flight timestamp retired on every one:
   - append failed inside [begin_commit]: the record is not durably
     complete, so the attempt aborts like any other failure;
   - [sync_upto] failed: the record was appended and {e may} be on
     disk, so neither commit nor abort can be reported — the timestamp
     is retired and [Durability_lost] raised (crash-equivalent: no
     commit/abort event is distributed, and recovery decides the
     outcome from the log);
   - sync returned: the commit is durable, distribute it ([Fun.protect]
     retires the timestamp even if a participant's [on_commit]
     raises). *)
let commit_txn t txn =
  match begin_commit t txn with
  | exception e ->
    if Obs.Span.enabled () then Obs.Span.txn_abort ~txn:(Txn_rt.id txn);
    Txn_rt.abort txn;
    Atomic.incr t.failures;
    Obs.Metrics.incr m_aborts;
    raise e
  | ts, lsn -> (
    let durable =
      match lsn with
      | Some (w, l) ->
        (* Append and sync-wait marks bracket the group-commit barrier:
           the flight span's commit phase starts at the append, and the
           sync window isolates time spent waiting on the durability
           point ([sync_upto]) from the rest of the commit path. *)
        if Obs.Span.enabled () then begin
          Obs.Span.append ~txn:(Txn_rt.id txn) ~lsn:l;
          Obs.Span.sync_wait ~txn:(Txn_rt.id txn) ~lsn:l
        end;
        let r = try Ok (Wal.Log.sync_upto w l) with e -> Error e in
        if Obs.Span.enabled () then Obs.Span.sync_done ~txn:(Txn_rt.id txn);
        r
      | None -> Ok ()
    in
    match durable with
    | Error e ->
      end_commit t ts;
      Obs.Metrics.incr m_durability_lost;
      raise
        (Durability_lost
           (Printf.sprintf "txn %d (ts %d): commit record appended but not synced: %s"
              (Txn_rt.id txn) ts (Printexc.to_string e)))
    | Ok () ->
      Fun.protect ~finally:(fun () -> end_commit t ts) (fun () -> Txn_rt.commit txn ts);
      Atomic.incr t.commits;
      Obs.Metrics.incr m_commits;
      if Obs.Span.enabled () then Obs.Span.txn_commit ~txn:(Txn_rt.id txn) ~ts;
      ts)

let abort_txn t txn =
  log_abort t txn;
  if Obs.Span.enabled () then Obs.Span.txn_abort ~txn:(Txn_rt.id txn);
  Txn_rt.abort txn;
  Atomic.incr t.failures;
  Obs.Metrics.incr m_aborts

(* ---- two-phase commit participant entry points (see Dist) ---- *)

(* Phase 1: draw this shard's hybrid timestamp for global transaction
   [gtxn] and force the vote.  The prepared timestamp joins the
   in-flight set and stays there until the decision: [stable_time] — and
   with it every object horizon and checkpoint — cannot advance past a
   prepared-but-undecided transaction.  That is the cross-shard
   stability rule: the decided timestamp is at least the local prepared
   one, so nothing this shard folds or serves as stable can be
   invalidated by the eventual commit. *)
let prepare t txn ~gtxn =
  if Obs.Span.enabled () then
    Obs.Span.prepare ~txn:(Txn_rt.id txn) ~shard:t.stripe_index;
  let ts, lsn =
    with_inflight t (fun () ->
        let ts = draw_locked t in
        t.inflight <- ts :: t.inflight;
        match t.wal with
        | None -> (ts, None)
        | Some w -> (
          match Wal.Log.append_lsn w (Wal.Log.Prepare { txn = Txn_rt.id txn; gtxn; ts }) with
          | lsn -> (ts, Some (w, lsn))
          | exception e ->
            t.inflight <- List.filter (fun x -> x <> ts) t.inflight;
            raise e))
  in
  (match lsn with
  | Some (w, l) -> (
    try Wal.Log.sync_upto w l
    with e ->
      (* The vote may or may not be on disk; either way this shard never
         acked, the coordinator will not decide commit, and recovery
         presumes abort — so retiring the timestamp and failing the
         prepare is sound. *)
      end_commit t ts;
      raise e)
  | None -> ());
  if Obs.Span.enabled () then
    Obs.Span.prepared ~txn:(Txn_rt.id txn) ~shard:t.stripe_index ~ts;
  ts

(* Phase 2, commit: adopt the decided timestamp (max over all
   participants' prepares).  Inside one critical section the clock is
   pushed past it, the in-flight reservation moves from the prepared to
   the decided timestamp (the stability pin transfers without a gap),
   and the commit record is appended — possibly out of local record
   order, which recovery's sort-by-timestamp absorbs.  The record is
   forced before returning, so a return is the durable ack the
   coordinator needs before it may forget the decision; a sync failure
   raises only {e after} the commit events are distributed, because the
   global decision is already durable at the coordinator and cannot be
   un-taken. *)
let decide_commit t txn ~prepared ~ts =
  let logged =
    with_inflight t (fun () ->
        observe_locked t ts;
        t.inflight <- ts :: List.filter (fun x -> x <> prepared) t.inflight;
        match t.wal with
        | None -> Ok None
        | Some w -> (
          try Ok (Some (w, Wal.Log.append_lsn w (Wal.Log.Commit { txn = Txn_rt.id txn; ts })))
          with e -> Error e))
  in
  if Obs.Span.enabled () then
    Obs.Span.decide_commit ~txn:(Txn_rt.id txn) ~shard:t.stripe_index ~ts;
  Fun.protect ~finally:(fun () -> end_commit t ts) (fun () -> Txn_rt.commit txn ts);
  Atomic.incr t.commits;
  Obs.Metrics.incr m_commits;
  match logged with
  | Ok None -> ()
  | Ok (Some (w, l)) -> Wal.Log.sync_upto w l
  | Error e -> raise e

(* Phase 2, abort: presumed abort — release the prepared reservation and
   notify participants; the Abort record is an unforced courtesy to the
   compactor, exactly as in the single-shard path. *)
let decide_abort t txn ~prepared =
  if Obs.Span.enabled () then
    Obs.Span.decide_abort ~txn:(Txn_rt.id txn) ~shard:t.stripe_index;
  log_abort t txn;
  Txn_rt.abort txn;
  end_commit t prepared;
  Atomic.incr t.failures;
  Obs.Metrics.incr m_aborts

let attempt_once ?priority t body =
  Atomic.incr t.attempts;
  Obs.Metrics.incr m_attempts;
  (* Monotonic, like the trace timestamps: attempt latencies must never
     go negative under a wall-clock adjustment. *)
  let t0 = if Obs.Control.enabled () then Obs.Clock.now_ns () else 0 in
  let observe () =
    if Obs.Control.enabled () then
      Obs.Metrics.observe h_attempt (Obs.Clock.ns_to_s (Obs.Clock.now_ns () - t0))
  in
  let txn = Txn_rt.fresh ?priority () in
  if Obs.Span.enabled () then
    Obs.Span.txn_begin ~txn:(Txn_rt.id txn) ~shard:t.stripe_index;
  match body txn with
  | v ->
    (* Draw the timestamp before any commit event becomes visible (see
       the interface comment), and keep it in the in-flight set until
       every participant has seen the commit so snapshot readers can
       wait for a stable watermark.  With a WAL attached the commit
       record is forced to stable storage before any commit event is
       distributed — the write-ahead rule: once any object acts on the
       commit, a crash replays it.  The durability point is explicit:
       this transaction is committed iff [commit_txn] returned (see its
       exit analysis above). *)
    let _ts : int = commit_txn t txn in
    observe ();
    Ok (v, Txn_rt.priority txn)
  | exception Txn_rt.Abort_requested reason ->
    abort_txn t txn;
    observe ();
    Error (reason, Txn_rt.priority txn)
  | exception e ->
    abort_txn t txn;
    raise e

let run_once t body =
  match attempt_once t body with
  | Ok (v, _) -> Ok v
  | Error (reason, _) -> Error reason

let run ?(max_attempts = 1000) t body =
  (* A restarted transaction keeps its first attempt's priority:
     wait-die's no-starvation argument needs seniority to be stable.
     The restart delay backs off exponentially with jitter keyed on
     that stable priority, so the losers of one conflict spread out
     instead of re-colliding in lockstep (see Backoff). *)
  let rec go attempt priority last_reason =
    if attempt >= max_attempts then
      raise
        (Too_many_attempts
           (Printf.sprintf "transaction failed %d times; last: %s" attempt last_reason))
    else
      match attempt_once ?priority t body with
      | Ok (v, _) -> v
      | Error (reason, prio) ->
        let delay = Backoff.restart_delay ~key:prio ~attempt in
        (* The restarted attempt gets a fresh transaction id, so the
           backoff record is keyed on the stable priority — the one id
           every attempt of this transaction shares. *)
        if Obs.Span.enabled () then
          Obs.Span.backoff ~txn:prio ~sleep_ns:(int_of_float (delay *. 1e9));
        Unix.sleepf delay;
        go (attempt + 1) (Some prio) reason
  in
  go 0 None "never attempted"

let abort_in ?(reason = "explicit abort") () = raise (Txn_rt.Abort_requested reason)

let stats t =
  {
    started = Atomic.get t.attempts;
    committed = Atomic.get t.commits;
    aborted = Atomic.get t.failures;
  }

(* ---- live introspection ---- *)

let clock_json ?(name = "manager") t () =
  let inflight = with_inflight t (fun () -> List.length t.inflight) in
  Obs.Json.Obj
    [
      ("object", Obs.Json.String name);
      ("clock", Obs.Json.Int (current_time t));
      ("stable_time", Obs.Json.Int (stable_time t));
      ("inflight", Obs.Json.Int inflight);
      ("attempts", Obs.Json.Int (Atomic.get t.attempts));
      ("commits", Obs.Json.Int (Atomic.get t.commits));
      ("aborts", Obs.Json.Int (Atomic.get t.failures));
    ]

let register_introspection ?(name = "manager") t =
  Obs.Registry.register_snapshot ~channel:"horizon" ~name (clock_json ~name t);
  let labels = [ ("mgr", name) ] in
  Obs.Gauge.callback ~labels "txn_clock" (fun () -> float_of_int (current_time t));
  (* Commits whose timestamp is drawn but whose events are still being
     distributed: the gap between the clock and the stable watermark
     snapshot readers wait behind. *)
  Obs.Gauge.callback ~labels "txn_inflight" (fun () ->
      float_of_int (with_inflight t (fun () -> List.length t.inflight)))
