(** Mutex-acquisition accounting for the lock-free hot path.

    Every remaining mutex acquisition in the runtime's transaction path
    self-reports here ({!count_obj} in {!Atomic_obj}'s slow path,
    {!count_mgr} in {!Manager}'s WAL/overflow sections, {!count_registry}
    in {!Txn_rt}'s registry overflow), so the bench gate can assert that
    a no-conflict WAL-off workload takes {e zero} mutexes end to end.
    Plain process-wide atomics, independent of the {!Obs.Control}
    switch (the gate runs with observability off). *)

val count_obj : unit -> unit
val count_mgr : unit -> unit
val count_registry : unit -> unit

type snapshot = { s_obj : int; s_mgr : int; s_registry : int }

val snapshot : unit -> snapshot
val diff : before:snapshot -> after:snapshot -> snapshot
val total : snapshot -> int

val set_force_slow : bool -> unit
(** Baseline mode: route all operations through the pre-rework mutex
    paths ({!Atomic_obj} skips its CAS fast path; {!Manager} serializes
    draws behind a mutex even WAL-off).  For same-process before/after
    comparison in the hotpath bench; not for production use. *)

val force_slow : unit -> bool
