(** Runtime transaction handles.

    A transaction is executed by exactly one thread of control (the model
    disallows intra-transaction concurrency), so the handle itself needs
    no internal locking beyond the status cell, which other threads read
    through the objects.

    A handle accumulates a {e participant} per touched object; committing
    distributes the commit timestamp to every participant and aborting
    notifies them to discard intentions and release locks — the paper's
    commit/abort events.  Atomic commitment (a transaction never commits
    at some objects and aborts at others) holds by construction: the
    decision is taken once, on the handle, before any participant is
    notified. *)

type t

type participant = {
  name : string;
  on_commit : Model.Timestamp.t -> unit;
  on_abort : unit -> unit;
}

exception Abort_requested of string
(** Raised inside a transaction body (e.g. by an object wrapper that
    exhausted its conflict retries) to abort the transaction; the manager
    catches it, sends aborts, and may retry the body. *)

val fresh : ?id:int -> ?priority:int -> unit -> t
(** A handle with a process-unique id, in state [`Active].  [priority]
    is the wait-die seniority (smaller = older = wins conflicts); it
    defaults to the fresh id and is preserved by the manager across
    abort-and-retry so a restarted transaction eventually becomes the
    oldest in the system and cannot starve.

    [id] lets a distributed coordinator give every shard branch of one
    global transaction the {e same} id (drawn once with {!fresh_id}):
    per-shard traces then stitch by transaction id, and wait-die treats
    all branches as one transaction.  The priority registry refcounts
    shared ids — an id resolves until its last branch completes. *)

val fresh_id : unit -> int
(** Draw a process-unique transaction id without creating a handle —
    the global transaction id a coordinator passes to each branch's
    [fresh ~id]. *)

val id : t -> int
val priority : t -> int

val priority_of_id : int -> int option
(** Look up the priority of a live (active) transaction by id; [None]
    once it completes.  Used by objects to apply wait-die against a lock
    holder they only know by id. *)

val model_txn : t -> Model.Txn.t
(** The handle as a formal-model transaction (for history recording). *)

val status : t -> [ `Active | `Committed of Model.Timestamp.t | `Aborted ]

val fresh_object_key : unit -> int
(** Process-unique keys for participant registration.  Objects must use
    this (never a per-module counter): registration is idempotent per
    key, so two objects sharing a key would silently drop one
    registration and leak locks. *)

val add_participant : t -> key:int -> participant -> unit
(** Register the object identified by [key]; idempotent per key. *)

val participant_count : t -> int

val commit : t -> Model.Timestamp.t -> unit
(** Mark committed and notify every participant.  Raises
    [Invalid_argument] if not active. *)

val abort : t -> unit
(** Mark aborted and notify every participant.  No-op when already
    aborted; raises [Invalid_argument] when committed. *)
