module Make (A : Spec.Adt_sig.S) = struct
  module C = Hybrid.Compacted.Make (A)
  module H = Model.History.Make (A)
  module R = Obs.Replay.Make (A)

  type op = A.inv * A.res

  let equal_op (i, r) (i', r') = A.equal_inv i i' && A.equal_res r r'

  (* Payload intern tables, keyed by the ADT's own equality (OCaml's
     generic hash is consistent with it for the structural equalities
     the shipped ADTs use).  The forward direction is a hashtable so a
     long-running object with many distinct payloads (Sim.Live
     deliberately enqueues unique values) interns in O(1), not
     O(distinct payloads); decoding goes through a growable reverse
     array indexed by code. *)
  module InvTbl = Hashtbl.Make (struct
    type t = A.inv

    let equal = A.equal_inv
    let hash = Hashtbl.hash
  end)

  module ResTbl = Hashtbl.Make (struct
    type t = A.res

    let equal = A.equal_res
    let hash = Hashtbl.hash
  end)

  module OpTbl = Hashtbl.Make (struct
    type t = op

    let equal = equal_op
    let hash = Hashtbl.hash
  end)

  (* Append [v] at index [n] (= current count), doubling on overflow. *)
  let rev_push arr n v =
    let cap = Array.length arr in
    let arr =
      if n < cap then arr
      else begin
        let bigger = Array.make (max 8 (2 * cap)) None in
        Array.blit arr 0 bigger 0 cap;
        bigger
      end
    in
    arr.(n) <- Some v;
    arr

  type stats = {
    invocations : int;
    conflicts : int;
    blocked : int;
    commits : int;
    aborts : int;
    forgotten : int;
  }

  (* Process-wide protocol counters; the registry deduplicates by name,
     so every instantiation of this functor shares them. *)
  let m_invocations = Obs.Metrics.counter "obj.invocations"
  let m_conflicts = Obs.Metrics.counter "obj.conflicts"
  let m_blocked = Obs.Metrics.counter "obj.blocked"
  let m_commits = Obs.Metrics.counter "obj.commits"
  let m_aborts = Obs.Metrics.counter "obj.aborts"
  let m_forgotten = Obs.Metrics.counter "obj.forgotten"

  (* The machine is an atomic reference to an immutable value: the
     uncontended path publishes a transition with one compare-and-swap
     and never touches the mutex.  The mutex survives as the slow path's
     serializer — for contenders that just lost a CAS, and for every
     configuration whose side effects must stay in machine order (trace
     emission, WAL appends, event recording).  Even under the mutex the
     machine field itself is only ever updated by CAS ([transition]), so
     the two paths compose: a fast-path publish racing a slow-path
     holder costs the holder one CAS retry, never a lost update.
     CAS on the machine is ABA-free: every transition allocates a fresh
     immutable value, and OCaml's compare-and-set is physical equality
     on pointers that cannot be recycled while m0 is still reachable. *)
  type t = {
    name : string;
    key : int; (* process-unique, for participant registration *)
    cell : int option; (* cell of a partitioned logical object, if any *)
    mutex : Mutex.t;
    machine : C.t Atomic.t;
    invocations : int Atomic.t;
    conflicts : int Atomic.t;
    blocked : int Atomic.t;
    commits : int Atomic.t;
    aborts : int Atomic.t;
    record : bool;
    mutable events : H.event list; (* newest first; only when [record] *)
    trace : Obs.Trace.t option; (* explicit sink; overrides the global one *)
    wal : (Wal.Log.t * (A.inv, A.res, A.state) Wal.Codec.t) option;
    op_label : op -> string;
    (* Payload intern tables: trace entries carry invocations, responses
       and (for refusal attribution) whole operations as small codes
       assigned in order of first appearance.  Mutated only under the
       mutex; the fast path is one hashtable probe, and a payload's
       first occurrence also registers the human-readable label with
       the process-wide [Obs.Attrib] registry so reports and timeline
       exports can decode the codes after this object is gone. *)
    inv_codes : int InvTbl.t;
    mutable inv_rev : A.inv option array;
    mutable inv_next : int;
    res_codes : int ResTbl.t;
    mutable res_rev : A.res option array;
    mutable res_next : int;
    op_codes : int OpTbl.t;
    mutable op_rev : op option array;
    mutable op_next : int;
  }

  let default_op_label (i, r) = Format.asprintf "%a/%a" A.pp_inv i A.pp_res r

  let create ?name ?cell ?(record = false) ?trace ?wal ?(op_label = default_op_label)
      ~conflict () =
    let key = Txn_rt.fresh_object_key () in
    let name = match name with Some n -> n | None -> Printf.sprintf "%s#%d" A.name key in
    Obs.Attrib.register_object ~obj:key ?cell name;
    (* Declare the object up front so recovery can dispatch this log's
       records to the right DURABLE implementation by ADT name. *)
    (match wal with
    | Some (w, _) -> Wal.Log.append w (Wal.Log.Object { obj = name; adt = A.name; cell })
    | None -> ());
    {
      name;
      key;
      cell;
      mutex = Mutex.create ();
      machine = Atomic.make (C.create ~conflict);
      invocations = Atomic.make 0;
      conflicts = Atomic.make 0;
      blocked = Atomic.make 0;
      commits = Atomic.make 0;
      aborts = Atomic.make 0;
      record;
      events = [];
      trace;
      wal;
      op_label;
      inv_codes = InvTbl.create 16;
      inv_rev = [||];
      inv_next = 0;
      res_codes = ResTbl.create 16;
      res_rev = [||];
      res_next = 0;
      op_codes = OpTbl.create 16;
      op_rev = [||];
      op_next = 0;
    }

  let name t = t.name
  let key t = t.key
  let cell t = t.cell

  let with_lock t f =
    Lockstat.count_obj ();
    Mutex.lock t.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

  (* ---- trace emission (all emitting sites run under the object's
     mutex, so the ring window restricted to this object is a faithful
     suffix of the machine's event order) ---- *)

  let tracing t = Option.is_some t.trace || Obs.Control.enabled ()

  (* The mutex-free invocation path is sound only when an invocation has
     no per-object side effects beyond the machine CAS itself: no trace
     emission, no WAL append, no event recording, and Lockstat's forced
     slow mode off.  [trace]/[wal]/[record] are fixed at creation; the
     global trace switch and forced-slow flag are dynamic, so a toggle
     mid-run routes new invocations back through the mutex (in-flight
     fast-path CAS publishes stay linearizable either way — see
     [transition]). *)
  let fast_path t =
    Option.is_none t.wal
    && (not t.record)
    && Option.is_none t.trace
    && (not (Obs.Control.enabled ()))
    && not (Lockstat.force_slow ())

  let emit t ~txn ev =
    match t.trace with
    | Some tr -> Obs.Trace.emit tr ~obj:t.key ~txn ev
    | None ->
      if Obs.Control.enabled () then Obs.Trace.emit Obs.Trace.global ~obj:t.key ~txn ev

  let encode_inv t i =
    match InvTbl.find_opt t.inv_codes i with
    | Some c -> c
    | None ->
      let c = t.inv_next in
      t.inv_next <- c + 1;
      InvTbl.replace t.inv_codes i c;
      t.inv_rev <- rev_push t.inv_rev c i;
      Obs.Attrib.register_label ~obj:t.key ~kind:Obs.Attrib.Inv ~code:c
        (Format.asprintf "%a" A.pp_inv i);
      c

  let encode_res t r =
    match ResTbl.find_opt t.res_codes r with
    | Some c -> c
    | None ->
      let c = t.res_next in
      t.res_next <- c + 1;
      ResTbl.replace t.res_codes r c;
      t.res_rev <- rev_push t.res_rev c r;
      Obs.Attrib.register_label ~obj:t.key ~kind:Obs.Attrib.Res ~code:c
        (Format.asprintf "%a" A.pp_res r);
      c

  let encode_op t o =
    match OpTbl.find_opt t.op_codes o with
    | Some c -> c
    | None ->
      let c = t.op_next in
      t.op_next <- c + 1;
      OpTbl.replace t.op_codes o c;
      t.op_rev <- rev_push t.op_rev c o;
      Obs.Attrib.register_label ~obj:t.key ~kind:Obs.Attrib.Op ~code:c (t.op_label o);
      c

  let decode_inv t c = if c >= 0 && c < t.inv_next then t.inv_rev.(c) else None
  let decode_res t c = if c >= 0 && c < t.res_next then t.res_rev.(c) else None
  let decode_op_locked t c = if c >= 0 && c < t.op_next then t.op_rev.(c) else None

  (* ---- introspection (snapshot channels + gauges) ----

     Providers and callback gauges are keyed by the object's name, so a
     long-lived server that recreates objects under stable names keeps a
     bounded provider set (both registries replace on key).  Opt-in via
     an explicit {!register_introspection} call because short-lived
     benchmark objects with generated names would otherwise accumulate
     registrations for the life of the process.

     All providers read one [Atomic.get] of the machine — a consistent
     immutable snapshot — so live introspection never takes the object
     mutex and cannot perturb the lock-free hot path it is watching. *)

  let xts_json = function
    | Hybrid.Xts.Fin ts -> Obs.Json.Int ts
    | Hybrid.Xts.Neg_inf -> Obs.Json.Null

  let locks_json t () =
    let m = Atomic.get t.machine in
    let rows =
      List.map
        (fun (q, n) ->
          Obs.Json.Obj
            [ ("txn", Obs.Json.Int (Model.Txn.id q)); ("intentions", Obs.Json.Int n) ])
        (C.active m)
    in
    Obs.Json.Obj
      ([
         ("object", Obs.Json.String t.name);
         ("key", Obs.Json.Int t.key);
       ]
      @ (match t.cell with
        | Some c -> [ ("cell", Obs.Json.Int c) ]
        | None -> [])
      @ [
          ("active", Obs.Json.List rows);
          ("conflicts", Obs.Json.Int (Atomic.get t.conflicts));
          ("blocked", Obs.Json.Int (Atomic.get t.blocked));
        ])

  let horizon_json t () =
    let m = Atomic.get t.machine in
    let s = C.summary m in
    let lag =
      match (C.clock m, s.C.s_folded_upto) with
      | Hybrid.Xts.Fin c, Hybrid.Xts.Fin f -> Obs.Json.Int (c - f)
      | Hybrid.Xts.Fin c, Hybrid.Xts.Neg_inf -> Obs.Json.Int c
      | Hybrid.Xts.Neg_inf, _ -> Obs.Json.Int 0
    in
    Obs.Json.Obj
      [
        ("object", Obs.Json.String t.name);
        ("key", Obs.Json.Int t.key);
        ("horizon", xts_json (C.horizon m));
        ("folded_upto", xts_json s.C.s_folded_upto);
        ("clock", xts_json (C.clock m));
        ("clock_lag", lag);
        ("forgotten", Obs.Json.Int s.C.s_forgotten);
        ("remembered", Obs.Json.Int s.C.s_remembered);
        ("live_ops", Obs.Json.Int s.C.s_live_ops);
      ]

  let register_introspection t =
    Obs.Registry.register_snapshot ~channel:"locks" ~name:t.name (locks_json t);
    Obs.Registry.register_snapshot ~channel:"horizon" ~name:t.name (horizon_json t);
    let labels = [ ("obj", t.name) ] in
    Obs.Gauge.callback ~labels "obj_live_ops" (fun () ->
        float_of_int (C.live_ops (Atomic.get t.machine)));
    (* Remembered committed transactions = the Theorem 24 compaction
       debt: commits the horizon has not yet let this object fold. *)
    Obs.Gauge.callback ~labels "obj_compaction_debt" (fun () ->
        float_of_int (C.remembered (Atomic.get t.machine)))

  let unregister_introspection t =
    Obs.Registry.unregister_snapshot ~channel:"locks" ~name:t.name;
    Obs.Registry.unregister_snapshot ~channel:"horizon" ~name:t.name;
    let labels = [ ("obj", t.name) ] in
    Obs.Gauge.remove_callback ~labels "obj_live_ops";
    Obs.Gauge.remove_callback ~labels "obj_compaction_debt"

  let push_event t e = if t.record then t.events <- e :: t.events

  (* Every machine update — fast path or slow — lands through this CAS
     loop.  [f] must be pure in the machine: compute the successor and
     an outcome, no side effects (those belong after the transition
     lands, under the mutex if they must stay in machine order).  The
     pure machine is immutable, so a failed CAS just recomputes against
     the fresher value; physical equality short-circuits no-op
     transitions. *)
  let rec transition t f =
    let m0 = Atomic.get t.machine in
    let m1, out = f m0 in
    if m1 == m0 || Atomic.compare_and_set t.machine m0 m1 then out
    else begin
      Domain.cpu_relax ();
      transition t f
    end

  (* The pure machine never refuses invoke/commit/abort events. *)
  let apply_input t event =
    transition t (fun m ->
        match C.step m event with Ok m' -> (m', ()) | Error _ -> assert false);
    push_event t event

  (* Any accepted event (and an unpin) may advance the horizon and fold
     committed transactions into the version; diff the compaction
     summary around the transition and report the fold as trace events.
     [Forgotten] carries the cumulative fold count, so Theorem 24's
     monotonicity is directly visible in the event stream.

     With a WAL attached, the same fold is the checkpoint trigger: the
     horizon is permanent (Theorem 24), so the folded version at the new
     horizon timestamp is a sound recovery base, and every log record of
     a transaction whose every touched object has checkpointed at or
     past its timestamp becomes dead weight the log compactor may
     drop. *)
  let with_fold_events t ~txn f =
    if (not (tracing t)) && Option.is_none t.wal then f ()
    else begin
      let before = C.summary (Atomic.get t.machine) in
      f ();
      let after = C.summary (Atomic.get t.machine) in
      if after.C.s_forgotten > before.C.s_forgotten then begin
        if tracing t then begin
          (match after.C.s_folded_upto with
          | Hybrid.Xts.Fin ts -> emit t ~txn (Obs.Trace.Horizon_advanced ts)
          | Hybrid.Xts.Neg_inf -> ());
          emit t ~txn (Obs.Trace.Forgotten after.C.s_forgotten)
        end;
        Obs.Metrics.add m_forgotten (after.C.s_forgotten - before.C.s_forgotten);
        match (t.wal, after.C.s_folded_upto) with
        | Some (w, codec), Hybrid.Xts.Fin upto ->
          let payload =
            Wal.Codec.encode_states codec (C.version_states (Atomic.get t.machine))
          in
          Wal.Log.append w (Wal.Log.Checkpoint { obj = t.name; upto; payload; cell = t.cell })
        | _ -> ()
      end
    end

  let participant t txn : Txn_rt.participant =
    let q = Txn_rt.model_txn txn in
    let qid = Txn_rt.id txn in
    {
      Txn_rt.name = t.name;
      on_commit =
        (fun ts ->
          (if fast_path t then begin
             apply_input t (H.Commit (q, ts));
             Atomic.incr t.commits;
             Obs.Metrics.incr m_commits
           end
           else
             with_lock t (fun () ->
                 emit t ~txn:qid (Obs.Trace.Commit ts);
                 with_fold_events t ~txn:qid (fun () -> apply_input t (H.Commit (q, ts)));
                 Atomic.incr t.commits;
                 Obs.Metrics.incr m_commits));
          (* The commit released this transaction's locks here: hand any
             parked waiters back to the retry scheduler.  After the
             machine publish (CAS or mutex release), so a woken waiter's
             re-attempt observes the release. *)
          Sched.notify ~obj:t.key);
      on_abort =
        (fun () ->
          (if fast_path t then begin
             apply_input t (H.Abort q);
             Atomic.incr t.aborts;
             Obs.Metrics.incr m_aborts
           end
           else
             with_lock t (fun () ->
                 emit t ~txn:qid Obs.Trace.Abort;
                 with_fold_events t ~txn:qid (fun () -> apply_input t (H.Abort q));
                 Atomic.incr t.aborts;
                 Obs.Metrics.incr m_aborts));
          Sched.notify ~obj:t.key);
    }

  (* The wait-die priority travels with the refusal: resolve the
     holder's priority {e now}, while the conflict is current, never
     later by id (ids recycle — see {!Retry.conflict}). *)
  let capture_conflict info =
    Option.map
      (fun ci ->
        let holder = Model.Txn.id ci.C.c_holder in
        { Retry.holder; holder_priority = Txn_rt.priority_of_id holder })
      info

  let try_invoke t txn i =
    (* Orphan detection (the paper's Section 2 allows aborted
       transactions to keep invoking — modelling orphans — and cites
       orphan-detection mechanisms): an already-completed transaction
       attempting an operation is told to stop rather than being left to
       spin against Already_completed refusals. *)
    (match Txn_rt.status txn with
    | `Active -> ()
    | `Aborted ->
      raise (Txn_rt.Abort_requested (t.name ^ ": orphan (transaction already aborted)"))
    | `Committed _ -> invalid_arg "Atomic_obj.try_invoke: transaction already committed");
    let q = Txn_rt.model_txn txn in
    let qid = Txn_rt.id txn in
    (* Uncontended fast path: read the machine once, run the pure
       invoke-and-choose against that snapshot, publish with a single
       CAS.  A lost CAS means real contention on this object — fall
       through to the mutex rather than spin (the slow path also
       serializes the conflict bookkeeping that usually follows).  A
       refusal publishes the pending invocation (the machine's timestamp
       lower bound for this transaction) the same way, but a lost CAS
       there just leaves it to the next retry. *)
    let fast =
      if fast_path t then begin
        let m0 = Atomic.get t.machine in
        let m1 =
          match C.pending m0 q with
          | Some i' when A.equal_inv i i' -> m0
          | Some _ | None -> (
            match C.step m0 (H.Invoke (q, i)) with
            | Ok m -> m
            | Error _ -> assert false)
        in
        match C.choose_response m1 q with
        | Ok (r, m2) ->
          if Atomic.compare_and_set t.machine m0 m2 then begin
            Atomic.incr t.invocations;
            Obs.Metrics.incr m_invocations;
            Some (Ok r)
          end
          else None
        | Error `Blocked ->
          ignore (m1 == m0 || Atomic.compare_and_set t.machine m0 m1 : bool);
          Atomic.incr t.blocked;
          Obs.Metrics.incr m_blocked;
          Some (Error `Blocked)
        | Error (`Conflict info) ->
          ignore (m1 == m0 || Atomic.compare_and_set t.machine m0 m1 : bool);
          Atomic.incr t.conflicts;
          Obs.Metrics.incr m_conflicts;
          Some (Error (`Conflict (capture_conflict info)))
      end
      else None
    in
    let result =
      match fast with
      | Some r -> r
      | None ->
        with_lock t (fun () ->
            (* A refused attempt leaves the invocation pending (the paper
               retries the response, not the invocation), so only record a
               fresh invoke event when none is pending. *)
            (match C.pending (Atomic.get t.machine) q with
            | Some i' when A.equal_inv i i' -> ()
            | Some _ | None ->
              emit t ~txn:qid (Obs.Trace.Invoke (encode_inv t i));
              with_fold_events t ~txn:qid (fun () -> apply_input t (H.Invoke (q, i))));
            let chosen =
              transition t (fun m ->
                  match C.choose_response m q with
                  | Ok (r, m') -> (m', Ok r)
                  | Error e -> (m, Error e))
            in
            match chosen with
            | Ok r ->
              Atomic.incr t.invocations;
              Obs.Metrics.incr m_invocations;
              (* Write-ahead intention: the operation joins the
                 transaction's intentions list in the log the moment it is
                 chosen, under the object mutex — so intentions for one
                 object appear in the log in execution order, and a commit
                 record can only follow every intention it covers. *)
              (match t.wal with
              | Some (w, codec) ->
                Wal.Log.append w
                  (Wal.Log.Intention
                     {
                       obj = t.name;
                       txn = qid;
                       payload = Wal.Codec.encode_op codec (i, r);
                       cell = t.cell;
                     })
              | None -> ());
              push_event t (H.Respond (q, r));
              emit t ~txn:qid (Obs.Trace.Respond (encode_res t r));
              emit t ~txn:qid Obs.Trace.Lock_granted;
              Ok r
            | Error `Blocked ->
              Atomic.incr t.blocked;
              Obs.Metrics.incr m_blocked;
              emit t ~txn:qid Obs.Trace.Blocked;
              Error `Blocked
            | Error (`Conflict info) ->
              let conflict = capture_conflict info in
              Atomic.incr t.conflicts;
              Obs.Metrics.incr m_conflicts;
              (if tracing t then
                 let requested, held =
                   match info with
                   | Some ci -> (encode_op t ci.C.c_requested, encode_op t ci.C.c_held)
                   | None -> (Obs.Trace.no_op, Obs.Trace.no_op)
                 in
                 emit t ~txn:qid
                   (Obs.Trace.Lock_refused
                      {
                        holder = Option.map (fun c -> c.Retry.holder) conflict;
                        requested;
                        held;
                      }));
              Error (`Conflict conflict))
    in
    (* Register even after a refusal: the machine now tracks a pending
       invocation and a timestamp lower bound for this transaction, and
       the eventual commit/abort event must reach this object to release
       them. *)
    Txn_rt.add_participant txn ~key:t.key (participant t txn);
    result

  let invoke ?retries t txn i =
    let on_retry () = emit t ~txn:(Txn_rt.id txn) Obs.Trace.Retry in
    (* Per-op flight records only at the detail tier: two extra clock
       reads per invocation would eat the always-on recorder's < 5%
       throughput budget. *)
    if not (Obs.Span.detailed ()) then
      Retry.run ?retries ~on_retry ~obj:t.key ~name:t.name ~self:txn (fun () ->
          try_invoke t txn i)
    else begin
      let t0 = Obs.Clock.now_ns () in
      let r =
        Retry.run ?retries ~on_retry ~obj:t.key ~name:t.name ~self:txn (fun () ->
            try_invoke t txn i)
      in
      let inv = with_lock t (fun () -> encode_inv t i) in
      Obs.Span.op ~txn:(Txn_rt.id txn) ~obj:t.key ~inv
        ~dur_ns:(Obs.Clock.now_ns () - t0);
      r
    end

  (* ---- reads: one [Atomic.get] yields a consistent immutable machine,
     so none of these contend with writers ---- *)

  let committed_states t =
    (* Extend the forgotten version with remembered committed
       intentions: replay the permanent prefix. *)
    C.committed_states (Atomic.get t.machine)

  let stats t =
    {
      invocations = Atomic.get t.invocations;
      conflicts = Atomic.get t.conflicts;
      blocked = Atomic.get t.blocked;
      commits = Atomic.get t.commits;
      aborts = Atomic.get t.aborts;
      forgotten = C.forgotten (Atomic.get t.machine);
    }

  let live_ops t = C.live_ops (Atomic.get t.machine)
  let history t = with_lock t (fun () -> List.rev t.events)
  let decode_op t c = with_lock t (fun () -> decode_op_locked t c)

  (* ---- trace replay ---- *)

  let sink t = match t.trace with Some tr -> tr | None -> Obs.Trace.global

  let replayed_history t =
    let entries = Obs.Trace.entries (sink t) in
    with_lock t (fun () ->
        R.reconstruct ~obj:t.key ~decode_inv:(decode_inv t) ~decode_res:(decode_res t)
          entries)

  let replay_check ?online t = R.check ?online (replayed_history t)

  (* Online audit hook: the sampler re-runs the replay check against the
     object's sink every tick.  A wrapped ring cannot be replay-checked
     soundly (the truncated history would fail well-formedness
     spuriously), so the closure reports the lost window instead of a
     fake verdict. *)
  let register_audit ?name t =
    let audit_name = match name with Some n -> n | None -> "replay/" ^ t.name in
    Obs.Sampler.register_audit ~name:audit_name (fun () ->
        if Obs.Trace.dropped (sink t) > 0 then Obs.Sampler.skip_window_lost ()
        else replay_check t);
    audit_name

  (* ---- snapshot reads (see Snapshot) ---- *)

  let snapshot_source t =
    {
      Snapshot.source_name = t.name;
      (* Pinning is a pure transition (no fold can result), so readers
         never take the mutex on entry; unpin can fold — checkpoint and
         trace side effects keep it on the mutex. *)
      pin = (fun reader at -> transition t (fun m -> (C.pin m reader at, ())));
      unpin =
        (fun reader ->
          with_lock t (fun () ->
              with_fold_events t ~txn:(Model.Txn.id reader) (fun () ->
                  transition t (fun m -> (C.unpin m reader, ())))));
    }

  let read_at t ~at i =
    match C.states_at (Atomic.get t.machine) ~at with
    | None -> raise Snapshot.Unavailable
    | Some ss -> (
      match List.concat_map (fun s -> A.step s i) ss with
      | (r, _) :: _ -> Some r
      | [] -> None)
end
