module Make (A : Spec.Adt_sig.S) = struct
  module C = Hybrid.Compacted.Make (A)
  module H = Model.History.Make (A)
  module R = Obs.Replay.Make (A)

  type op = A.inv * A.res

  let equal_op (i, r) (i', r') = A.equal_inv i i' && A.equal_res r r'

  (* Payload intern tables, keyed by the ADT's own equality (OCaml's
     generic hash is consistent with it for the structural equalities
     the shipped ADTs use).  The forward direction is a hashtable so a
     long-running object with many distinct payloads (Sim.Live
     deliberately enqueues unique values) interns in O(1), not
     O(distinct payloads); decoding goes through a growable reverse
     array indexed by code. *)
  module InvTbl = Hashtbl.Make (struct
    type t = A.inv

    let equal = A.equal_inv
    let hash = Hashtbl.hash
  end)

  module ResTbl = Hashtbl.Make (struct
    type t = A.res

    let equal = A.equal_res
    let hash = Hashtbl.hash
  end)

  module OpTbl = Hashtbl.Make (struct
    type t = op

    let equal = equal_op
    let hash = Hashtbl.hash
  end)

  (* Append [v] at index [n] (= current count), doubling on overflow. *)
  let rev_push arr n v =
    let cap = Array.length arr in
    let arr =
      if n < cap then arr
      else begin
        let bigger = Array.make (max 8 (2 * cap)) None in
        Array.blit arr 0 bigger 0 cap;
        bigger
      end
    in
    arr.(n) <- Some v;
    arr

  type stats = {
    invocations : int;
    conflicts : int;
    blocked : int;
    commits : int;
    aborts : int;
    forgotten : int;
  }

  (* Process-wide protocol counters; the registry deduplicates by name,
     so every instantiation of this functor shares them. *)
  let m_invocations = Obs.Metrics.counter "obj.invocations"
  let m_conflicts = Obs.Metrics.counter "obj.conflicts"
  let m_blocked = Obs.Metrics.counter "obj.blocked"
  let m_commits = Obs.Metrics.counter "obj.commits"
  let m_aborts = Obs.Metrics.counter "obj.aborts"
  let m_forgotten = Obs.Metrics.counter "obj.forgotten"

  type t = {
    name : string;
    key : int; (* process-unique, for participant registration *)
    cell : int option; (* cell of a partitioned logical object, if any *)
    mutex : Mutex.t;
    mutable machine : C.t;
    mutable invocations : int;
    mutable conflicts : int;
    mutable blocked : int;
    mutable commits : int;
    mutable aborts : int;
    record : bool;
    mutable events : H.event list; (* newest first *)
    trace : Obs.Trace.t option; (* explicit sink; overrides the global one *)
    wal : (Wal.Log.t * (A.inv, A.res, A.state) Wal.Codec.t) option;
    op_label : op -> string;
    (* Payload intern tables: trace entries carry invocations, responses
       and (for refusal attribution) whole operations as small codes
       assigned in order of first appearance.  Mutated only under the
       mutex; the fast path is one hashtable probe, and a payload's
       first occurrence also registers the human-readable label with
       the process-wide [Obs.Attrib] registry so reports and timeline
       exports can decode the codes after this object is gone. *)
    inv_codes : int InvTbl.t;
    mutable inv_rev : A.inv option array;
    mutable inv_next : int;
    res_codes : int ResTbl.t;
    mutable res_rev : A.res option array;
    mutable res_next : int;
    op_codes : int OpTbl.t;
    mutable op_rev : op option array;
    mutable op_next : int;
  }

  let default_op_label (i, r) = Format.asprintf "%a/%a" A.pp_inv i A.pp_res r

  let create ?name ?cell ?(record = false) ?trace ?wal ?(op_label = default_op_label)
      ~conflict () =
    let key = Txn_rt.fresh_object_key () in
    let name = match name with Some n -> n | None -> Printf.sprintf "%s#%d" A.name key in
    Obs.Attrib.register_object ~obj:key ?cell name;
    (* Declare the object up front so recovery can dispatch this log's
       records to the right DURABLE implementation by ADT name. *)
    (match wal with
    | Some (w, _) -> Wal.Log.append w (Wal.Log.Object { obj = name; adt = A.name; cell })
    | None -> ());
    {
      name;
      key;
      cell;
      mutex = Mutex.create ();
      machine = C.create ~conflict;
      invocations = 0;
      conflicts = 0;
      blocked = 0;
      commits = 0;
      aborts = 0;
      record;
      events = [];
      trace;
      wal;
      op_label;
      inv_codes = InvTbl.create 16;
      inv_rev = [||];
      inv_next = 0;
      res_codes = ResTbl.create 16;
      res_rev = [||];
      res_next = 0;
      op_codes = OpTbl.create 16;
      op_rev = [||];
      op_next = 0;
    }

  let name t = t.name
  let key t = t.key
  let cell t = t.cell

  let with_lock t f =
    Mutex.lock t.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

  (* ---- introspection (snapshot channels + gauges) ----

     Providers and callback gauges are keyed by the object's name, so a
     long-lived server that recreates objects under stable names keeps a
     bounded provider set (both registries replace on key).  Opt-in via
     an explicit {!register_introspection} call because short-lived
     benchmark objects with generated names would otherwise accumulate
     registrations for the life of the process. *)

  let xts_json = function
    | Hybrid.Xts.Fin ts -> Obs.Json.Int ts
    | Hybrid.Xts.Neg_inf -> Obs.Json.Null

  let locks_json t () =
    with_lock t (fun () ->
        let rows =
          List.map
            (fun (q, n) ->
              Obs.Json.Obj
                [ ("txn", Obs.Json.Int (Model.Txn.id q)); ("intentions", Obs.Json.Int n) ])
            (C.active t.machine)
        in
        Obs.Json.Obj
          ([
             ("object", Obs.Json.String t.name);
             ("key", Obs.Json.Int t.key);
           ]
          @ (match t.cell with
            | Some c -> [ ("cell", Obs.Json.Int c) ]
            | None -> [])
          @ [
              ("active", Obs.Json.List rows);
              ("conflicts", Obs.Json.Int t.conflicts);
              ("blocked", Obs.Json.Int t.blocked);
            ]))

  let horizon_json t () =
    with_lock t (fun () ->
        let m = t.machine in
        let s = C.summary m in
        let lag =
          match (C.clock m, s.C.s_folded_upto) with
          | Hybrid.Xts.Fin c, Hybrid.Xts.Fin f -> Obs.Json.Int (c - f)
          | Hybrid.Xts.Fin c, Hybrid.Xts.Neg_inf -> Obs.Json.Int c
          | Hybrid.Xts.Neg_inf, _ -> Obs.Json.Int 0
        in
        Obs.Json.Obj
          [
            ("object", Obs.Json.String t.name);
            ("key", Obs.Json.Int t.key);
            ("horizon", xts_json (C.horizon m));
            ("folded_upto", xts_json s.C.s_folded_upto);
            ("clock", xts_json (C.clock m));
            ("clock_lag", lag);
            ("forgotten", Obs.Json.Int s.C.s_forgotten);
            ("remembered", Obs.Json.Int s.C.s_remembered);
            ("live_ops", Obs.Json.Int s.C.s_live_ops);
          ])

  let register_introspection t =
    Obs.Registry.register_snapshot ~channel:"locks" ~name:t.name (locks_json t);
    Obs.Registry.register_snapshot ~channel:"horizon" ~name:t.name (horizon_json t);
    let labels = [ ("obj", t.name) ] in
    Obs.Gauge.callback ~labels "obj_live_ops" (fun () ->
        float_of_int (with_lock t (fun () -> C.live_ops t.machine)));
    (* Remembered committed transactions = the Theorem 24 compaction
       debt: commits the horizon has not yet let this object fold. *)
    Obs.Gauge.callback ~labels "obj_compaction_debt" (fun () ->
        float_of_int (with_lock t (fun () -> C.remembered t.machine)))

  let unregister_introspection t =
    Obs.Registry.unregister_snapshot ~channel:"locks" ~name:t.name;
    Obs.Registry.unregister_snapshot ~channel:"horizon" ~name:t.name;
    let labels = [ ("obj", t.name) ] in
    Obs.Gauge.remove_callback ~labels "obj_live_ops";
    Obs.Gauge.remove_callback ~labels "obj_compaction_debt"

  let push_event t e = if t.record then t.events <- e :: t.events

  (* ---- trace emission (all sites run under the object's mutex, so the
     ring window restricted to this object is a faithful suffix of the
     machine's event order) ---- *)

  let tracing t = Option.is_some t.trace || Obs.Control.enabled ()

  let emit t ~txn ev =
    match t.trace with
    | Some tr -> Obs.Trace.emit tr ~obj:t.key ~txn ev
    | None ->
      if Obs.Control.enabled () then Obs.Trace.emit Obs.Trace.global ~obj:t.key ~txn ev

  let encode_inv t i =
    match InvTbl.find_opt t.inv_codes i with
    | Some c -> c
    | None ->
      let c = t.inv_next in
      t.inv_next <- c + 1;
      InvTbl.replace t.inv_codes i c;
      t.inv_rev <- rev_push t.inv_rev c i;
      Obs.Attrib.register_label ~obj:t.key ~kind:Obs.Attrib.Inv ~code:c
        (Format.asprintf "%a" A.pp_inv i);
      c

  let encode_res t r =
    match ResTbl.find_opt t.res_codes r with
    | Some c -> c
    | None ->
      let c = t.res_next in
      t.res_next <- c + 1;
      ResTbl.replace t.res_codes r c;
      t.res_rev <- rev_push t.res_rev c r;
      Obs.Attrib.register_label ~obj:t.key ~kind:Obs.Attrib.Res ~code:c
        (Format.asprintf "%a" A.pp_res r);
      c

  let encode_op t o =
    match OpTbl.find_opt t.op_codes o with
    | Some c -> c
    | None ->
      let c = t.op_next in
      t.op_next <- c + 1;
      OpTbl.replace t.op_codes o c;
      t.op_rev <- rev_push t.op_rev c o;
      Obs.Attrib.register_label ~obj:t.key ~kind:Obs.Attrib.Op ~code:c (t.op_label o);
      c

  let decode_inv t c = if c >= 0 && c < t.inv_next then t.inv_rev.(c) else None
  let decode_res t c = if c >= 0 && c < t.res_next then t.res_rev.(c) else None
  let decode_op_locked t c = if c >= 0 && c < t.op_next then t.op_rev.(c) else None

  (* Transition helpers; all must run under the mutex.  The pure machine
     never refuses invoke/commit/abort events. *)
  let apply_input t event =
    match C.step t.machine event with
    | Ok m ->
      t.machine <- m;
      push_event t event
    | Error _ -> assert false

  (* Any accepted event (and an unpin) may advance the horizon and fold
     committed transactions into the version; diff the compaction
     summary around the transition and report the fold as trace events.
     [Forgotten] carries the cumulative fold count, so Theorem 24's
     monotonicity is directly visible in the event stream.

     With a WAL attached, the same fold is the checkpoint trigger: the
     horizon is permanent (Theorem 24), so the folded version at the new
     horizon timestamp is a sound recovery base, and every log record of
     a transaction whose every touched object has checkpointed at or
     past its timestamp becomes dead weight the log compactor may
     drop. *)
  let with_fold_events t ~txn f =
    if not (tracing t) && Option.is_none t.wal then f ()
    else begin
      let before = C.summary t.machine in
      f ();
      let after = C.summary t.machine in
      if after.C.s_forgotten > before.C.s_forgotten then begin
        if tracing t then begin
          (match after.C.s_folded_upto with
          | Hybrid.Xts.Fin ts -> emit t ~txn (Obs.Trace.Horizon_advanced ts)
          | Hybrid.Xts.Neg_inf -> ());
          emit t ~txn (Obs.Trace.Forgotten after.C.s_forgotten)
        end;
        Obs.Metrics.add m_forgotten (after.C.s_forgotten - before.C.s_forgotten);
        match (t.wal, after.C.s_folded_upto) with
        | Some (w, codec), Hybrid.Xts.Fin upto ->
          let payload = Wal.Codec.encode_states codec (C.version_states t.machine) in
          Wal.Log.append w (Wal.Log.Checkpoint { obj = t.name; upto; payload; cell = t.cell })
        | _ -> ()
      end
    end

  let participant t txn : Txn_rt.participant =
    let q = Txn_rt.model_txn txn in
    let qid = Txn_rt.id txn in
    {
      Txn_rt.name = t.name;
      on_commit =
        (fun ts ->
          with_lock t (fun () ->
              emit t ~txn:qid (Obs.Trace.Commit ts);
              with_fold_events t ~txn:qid (fun () -> apply_input t (H.Commit (q, ts)));
              t.commits <- t.commits + 1;
              Obs.Metrics.incr m_commits));
      on_abort =
        (fun () ->
          with_lock t (fun () ->
              emit t ~txn:qid Obs.Trace.Abort;
              with_fold_events t ~txn:qid (fun () -> apply_input t (H.Abort q));
              t.aborts <- t.aborts + 1;
              Obs.Metrics.incr m_aborts));
    }

  let try_invoke t txn i =
    (* Orphan detection (the paper's Section 2 allows aborted
       transactions to keep invoking — modelling orphans — and cites
       orphan-detection mechanisms): an already-completed transaction
       attempting an operation is told to stop rather than being left to
       spin against Already_completed refusals. *)
    (match Txn_rt.status txn with
    | `Active -> ()
    | `Aborted ->
      raise (Txn_rt.Abort_requested (t.name ^ ": orphan (transaction already aborted)"))
    | `Committed _ -> invalid_arg "Atomic_obj.try_invoke: transaction already committed");
    let q = Txn_rt.model_txn txn in
    let qid = Txn_rt.id txn in
    let result =
      with_lock t (fun () ->
          (* A refused attempt leaves the invocation pending (the paper
             retries the response, not the invocation), so only record a
             fresh invoke event when none is pending. *)
          (match C.pending t.machine q with
          | Some i' when A.equal_inv i i' -> ()
          | Some _ | None ->
            emit t ~txn:qid (Obs.Trace.Invoke (encode_inv t i));
            with_fold_events t ~txn:qid (fun () -> apply_input t (H.Invoke (q, i))));
          match C.choose_response t.machine q with
          | Ok (r, m) ->
            t.machine <- m;
            t.invocations <- t.invocations + 1;
            Obs.Metrics.incr m_invocations;
            (* Write-ahead intention: the operation joins the
               transaction's intentions list in the log the moment it is
               chosen, under the object mutex — so intentions for one
               object appear in the log in execution order, and a commit
               record can only follow every intention it covers. *)
            (match t.wal with
            | Some (w, codec) ->
              Wal.Log.append w
                (Wal.Log.Intention
                   {
                     obj = t.name;
                     txn = qid;
                     payload = Wal.Codec.encode_op codec (i, r);
                     cell = t.cell;
                   })
            | None -> ());
            push_event t (H.Respond (q, r));
            emit t ~txn:qid (Obs.Trace.Respond (encode_res t r));
            emit t ~txn:qid Obs.Trace.Lock_granted;
            Ok r
          | Error `Blocked ->
            t.blocked <- t.blocked + 1;
            Obs.Metrics.incr m_blocked;
            emit t ~txn:qid Obs.Trace.Blocked;
            Error `Blocked
          | Error (`Conflict info) ->
            let holder_id = Option.map (fun ci -> Model.Txn.id ci.C.c_holder) info in
            t.conflicts <- t.conflicts + 1;
            Obs.Metrics.incr m_conflicts;
            (if tracing t then
               let requested, held =
                 match info with
                 | Some ci -> (encode_op t ci.C.c_requested, encode_op t ci.C.c_held)
                 | None -> (Obs.Trace.no_op, Obs.Trace.no_op)
               in
               emit t ~txn:qid
                 (Obs.Trace.Lock_refused { holder = holder_id; requested; held }));
            Error (`Conflict holder_id))
    in
    (* Register even after a refusal: the machine now tracks a pending
       invocation and a timestamp lower bound for this transaction, and
       the eventual commit/abort event must reach this object to release
       them. *)
    Txn_rt.add_participant txn ~key:t.key (participant t txn);
    result

  let invoke ?retries t txn i =
    let on_retry () = emit t ~txn:(Txn_rt.id txn) Obs.Trace.Retry in
    (* Per-op flight records only at the detail tier: two extra clock
       reads per invocation would eat the always-on recorder's < 5%
       throughput budget. *)
    if not (Obs.Span.detailed ()) then
      Retry.run ?retries ~on_retry ~obj:t.key ~name:t.name ~self:txn (fun () ->
          try_invoke t txn i)
    else begin
      let t0 = Obs.Clock.now_ns () in
      let r =
        Retry.run ?retries ~on_retry ~obj:t.key ~name:t.name ~self:txn (fun () ->
            try_invoke t txn i)
      in
      let inv = with_lock t (fun () -> encode_inv t i) in
      Obs.Span.op ~txn:(Txn_rt.id txn) ~obj:t.key ~inv
        ~dur_ns:(Obs.Clock.now_ns () - t0);
      r
    end

  let committed_states t =
    with_lock t (fun () ->
        let m = t.machine in
        (* Extend the forgotten version with remembered committed
           intentions: replay the permanent prefix. *)
        C.committed_states m)

  let stats t =
    with_lock t (fun () ->
        {
          invocations = t.invocations;
          conflicts = t.conflicts;
          blocked = t.blocked;
          commits = t.commits;
          aborts = t.aborts;
          forgotten = C.forgotten t.machine;
        })

  let live_ops t = with_lock t (fun () -> C.live_ops t.machine)
  let history t = with_lock t (fun () -> List.rev t.events)
  let decode_op t c = with_lock t (fun () -> decode_op_locked t c)

  (* ---- trace replay ---- *)

  let sink t = match t.trace with Some tr -> tr | None -> Obs.Trace.global

  let replayed_history t =
    let entries = Obs.Trace.entries (sink t) in
    with_lock t (fun () ->
        R.reconstruct ~obj:t.key ~decode_inv:(decode_inv t) ~decode_res:(decode_res t)
          entries)

  let replay_check ?online t = R.check ?online (replayed_history t)

  (* Online audit hook: the sampler re-runs the replay check against the
     object's sink every tick.  A wrapped ring cannot be replay-checked
     soundly (the truncated history would fail well-formedness
     spuriously), so the closure reports the lost window instead of a
     fake verdict. *)
  let register_audit ?name t =
    let audit_name = match name with Some n -> n | None -> "replay/" ^ t.name in
    Obs.Sampler.register_audit ~name:audit_name (fun () ->
        if Obs.Trace.dropped (sink t) > 0 then Obs.Sampler.skip_window_lost ()
        else replay_check t);
    audit_name

  (* ---- snapshot reads (see Snapshot) ---- *)

  let snapshot_source t =
    {
      Snapshot.source_name = t.name;
      pin =
        (fun reader at ->
          with_lock t (fun () -> t.machine <- C.pin t.machine reader at));
      unpin =
        (fun reader ->
          with_lock t (fun () ->
              with_fold_events t ~txn:(Model.Txn.id reader) (fun () ->
                  t.machine <- C.unpin t.machine reader)));
    }

  let read_at t ~at i =
    with_lock t (fun () ->
        match C.states_at t.machine ~at with
        | None -> raise Snapshot.Unavailable
        | Some ss -> (
          match List.concat_map (fun s -> A.step s i) ss with
          | (r, _) :: _ -> Some r
          | [] -> None))
end
