module Make (A : Spec.Adt_sig.S) = struct
  module C = Hybrid.Compacted.Make (A)
  module H = Model.History.Make (A)

  type op = A.inv * A.res

  type stats = {
    invocations : int;
    conflicts : int;
    blocked : int;
    commits : int;
    aborts : int;
    forgotten : int;
  }

  type t = {
    name : string;
    key : int; (* process-unique, for participant registration *)
    mutex : Mutex.t;
    mutable machine : C.t;
    mutable invocations : int;
    mutable conflicts : int;
    mutable blocked : int;
    mutable commits : int;
    mutable aborts : int;
    record : bool;
    mutable events : H.event list; (* newest first *)
  }

  let create ?name ?(record = false) ~conflict () =
    let key = Txn_rt.fresh_object_key () in
    let name = match name with Some n -> n | None -> Printf.sprintf "%s#%d" A.name key in
    {
      name;
      key;
      mutex = Mutex.create ();
      machine = C.create ~conflict;
      invocations = 0;
      conflicts = 0;
      blocked = 0;
      commits = 0;
      aborts = 0;
      record;
      events = [];
    }

  let name t = t.name

  let with_lock t f =
    Mutex.lock t.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

  let push_event t e = if t.record then t.events <- e :: t.events

  (* Transition helpers; all must run under the mutex.  The pure machine
     never refuses invoke/commit/abort events. *)
  let apply_input t event =
    match C.step t.machine event with
    | Ok m ->
      t.machine <- m;
      push_event t event
    | Error _ -> assert false

  let participant t txn : Txn_rt.participant =
    let q = Txn_rt.model_txn txn in
    {
      Txn_rt.name = t.name;
      on_commit =
        (fun ts ->
          with_lock t (fun () ->
              apply_input t (H.Commit (q, ts));
              t.commits <- t.commits + 1));
      on_abort =
        (fun () ->
          with_lock t (fun () ->
              apply_input t (H.Abort q);
              t.aborts <- t.aborts + 1));
    }

  let try_invoke t txn i =
    (* Orphan detection (the paper's Section 2 allows aborted
       transactions to keep invoking — modelling orphans — and cites
       orphan-detection mechanisms): an already-completed transaction
       attempting an operation is told to stop rather than being left to
       spin against Already_completed refusals. *)
    (match Txn_rt.status txn with
    | `Active -> ()
    | `Aborted ->
      raise (Txn_rt.Abort_requested (t.name ^ ": orphan (transaction already aborted)"))
    | `Committed _ -> invalid_arg "Atomic_obj.try_invoke: transaction already committed");
    let q = Txn_rt.model_txn txn in
    let result =
      with_lock t (fun () ->
          (* A refused attempt leaves the invocation pending (the paper
             retries the response, not the invocation), so only record a
             fresh invoke event when none is pending. *)
          (match C.pending t.machine q with
          | Some i' when A.equal_inv i i' -> ()
          | Some _ | None -> apply_input t (H.Invoke (q, i)));
          match C.choose_response t.machine q with
          | Ok (r, m) ->
            t.machine <- m;
            t.invocations <- t.invocations + 1;
            push_event t (H.Respond (q, r));
            Ok r
          | Error `Blocked ->
            t.blocked <- t.blocked + 1;
            Error `Blocked
          | Error (`Conflict holder) ->
            t.conflicts <- t.conflicts + 1;
            Error (`Conflict (Option.map Model.Txn.id holder)))
    in
    (* Register even after a refusal: the machine now tracks a pending
       invocation and a timestamp lower bound for this transaction, and
       the eventual commit/abort event must reach this object to release
       them. *)
    Txn_rt.add_participant txn ~key:t.key (participant t txn);
    result

  let invoke ?retries t txn i =
    Retry.run ?retries ~name:t.name ~self:txn (fun () -> try_invoke t txn i)

  let committed_states t =
    with_lock t (fun () ->
        let m = t.machine in
        (* Extend the forgotten version with remembered committed
           intentions: replay the permanent prefix. *)
        C.committed_states m)

  let stats t =
    with_lock t (fun () ->
        {
          invocations = t.invocations;
          conflicts = t.conflicts;
          blocked = t.blocked;
          commits = t.commits;
          aborts = t.aborts;
          forgotten = C.forgotten t.machine;
        })

  let live_ops t = with_lock t (fun () -> C.live_ops t.machine)
  let history t = with_lock t (fun () -> List.rev t.events)

  (* ---- snapshot reads (see Snapshot) ---- *)

  let snapshot_source t =
    {
      Snapshot.source_name = t.name;
      pin =
        (fun reader at ->
          with_lock t (fun () -> t.machine <- C.pin t.machine reader at));
      unpin =
        (fun reader -> with_lock t (fun () -> t.machine <- C.unpin t.machine reader));
    }

  let read_at t ~at i =
    with_lock t (fun () ->
        match C.states_at t.machine ~at with
        | None -> raise Snapshot.Unavailable
        | Some ss -> (
          match List.concat_map (fun s -> A.step s i) ss with
          | (r, _) :: _ -> Some r
          | [] -> None))
end
