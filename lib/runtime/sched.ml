(* Scalable retry scheduling: park blocked transactions, wake them on
   lock release, steal pending wake-ups across domains.

   The pre-rework retry loop slept on a jittered quantum and re-polled:
   a released lock was not observed until the loser's next poll, and
   under contention every sleeping loser woke on its own schedule
   whether or not anything had changed.  This module replaces the sleep
   with a park/notify rendezvous:

   - A refused transaction {e registers} a waiter on the contended
     object's bucket, re-attempts once (closing the classic
     register/check/park race: a release that happened before the
     registration is seen by the re-attempt; one that happens after
     finds the waiter in the bucket), and then {e parks}.
   - A releasing transaction ({!Atomic_obj}'s commit/abort paths)
     {e notifies} the object: waiters move from the bucket onto the
     releasing domain's wake ring, and a bounded number are signalled
     inline — the rest are picked up by {e stealing} ({!help}, called by
     spinning retriers) or, at the latest, by each waiter's own park
     timeout.  An empty bucket costs the notifier one atomic read, so
     the no-conflict fast path stays free.
   - Parking is a timed wait on a per-domain self-pipe
     ([Unix.select] — the stdlib [Condition] has no timed wait), so a
     missed signal can delay a waiter by at most its backoff quantum,
     never strand it.  OCaml's runtime locks per domain, so one domain
     parks at most one transaction at a time and a single slot per
     domain suffices — slots are leased per {e live} domain from a free
     list (see below), not keyed on the monotone domain id.

   Everything here is allocation-light and lock-free: buckets are
   Treiber push / exchange-drain lists, wake rings are bounded arrays
   with CAS-claimed slots, and the pipes are created once per domain
   slot.  Records are immutable where CAS'd (physical equality, fresh
   allocations — no ABA). *)

let n_slots = 64 (* power of two; park slots and wake rings per domain index *)
let n_buckets = 256 (* power of two; waiter buckets per object key *)
let ring_cap = 64

type park_slot = { rd : Unix.file_descr; wr : Unix.file_descr }

type waiter = {
  w_txn : int;
  w_obj : int;
  w_state : int Atomic.t; (* 0 waiting, 1 signalled, 2 cancelled *)
  w_slot : park_slot;
}

type ticket = waiter

(* ---- counters (plain atomics; see Lockstat for why not Obs.Metrics) ---- *)

let n_parks = Atomic.make 0
let n_wakes = Atomic.make 0
let n_steals = Atomic.make 0
let n_timeouts = Atomic.make 0
let n_notifies = Atomic.make 0

type stats = { parks : int; wakes : int; steals : int; timeouts : int; notifies : int }

let stats () =
  {
    parks = Atomic.get n_parks;
    wakes = Atomic.get n_wakes;
    steals = Atomic.get n_steals;
    timeouts = Atomic.get n_timeouts;
    notifies = Atomic.get n_notifies;
  }

(* ---- per-domain slot indices ----

   A domain's park slot, wake ring, and restart-hint cell are keyed by a
   small index.  Masking [Domain.self] — monotone across the process —
   onto the table would alias two {e live} domains onto one index once
   their ids drift [n_slots] apart (domains spawned over time, e.g. a
   bench running each trial on fresh domains), and two parkers sharing a
   self-pipe can eat each other's wake bytes: the victim sleeps to its
   full timeout.  Indices are instead leased from a free list on first
   use (domain-local state) and returned by [Domain.at_exit], so
   concurrently live domains hold distinct indices as long as at most
   [n_slots] are alive; past that the latecomers fall back to masking
   (a shared slot degrades wake-ups to the timeout backstop, never
   loses a waiter). *)

let free_indices : int list Atomic.t = Atomic.make (List.init n_slots (fun i -> i))

let rec pop_index () =
  match Atomic.get free_indices with
  | [] -> None
  | (i :: rest) as cur ->
    if Atomic.compare_and_set free_indices cur rest then Some i else pop_index ()

let rec push_index i =
  let cur = Atomic.get free_indices in
  if not (Atomic.compare_and_set free_indices cur (i :: cur)) then push_index i

let index_key : int Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      match pop_index () with
      | Some i ->
        Domain.at_exit (fun () -> push_index i);
        i
      | None -> (Domain.self () :> int) land (n_slots - 1))

let domain_index () = Domain.DLS.get index_key

(* ---- per-domain park slots ---- *)

let slots : park_slot option Atomic.t array = Array.init n_slots (fun _ -> Atomic.make None)

let rec slot_for index =
  let cell = slots.(index) in
  match Atomic.get cell with
  | Some s -> s
  | None ->
    let rd, wr = Unix.pipe ~cloexec:true () in
    Unix.set_nonblock rd;
    Unix.set_nonblock wr;
    let s = { rd; wr } in
    if Atomic.compare_and_set cell None (Some s) then s
    else begin
      (* Lost the creation race; use the winner's pipe. *)
      Unix.close rd;
      Unix.close wr;
      slot_for index
    end

let my_slot () = slot_for (domain_index ())

(* Drain any buffered wake bytes (stale signals from a previous waiter
   on this slot wake the next parker spuriously — benign, it re-attempts
   — but draining at entry keeps the common case clean). *)
let drain slot =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read slot.rd buf 0 64 with
    | 64 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let signal_slot slot =
  match Unix.write_substring slot.wr "w" 0 1 with
  | _ -> ()
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    () (* pipe buffer full: a wake byte is already pending *)
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

(* Deliver a wake-up: claim the waiter (0 -> 1) and poke its pipe.
   Claiming first means a cancelled or already-woken waiter costs
   nothing and at most one byte per delivered signal. *)
let deliver w =
  if Atomic.compare_and_set w.w_state 0 1 then begin
    Atomic.incr n_wakes;
    signal_slot w.w_slot;
    true
  end
  else false

(* ---- per-domain wake rings (bounded, CAS-claimed slots) ----

   The releasing domain publishes pending wake-ups here and signals only
   a bounded number inline, keeping the commit path O(1); spinning
   retriers steal the rest ({!help}).  Push claims an index by CAS on
   [bottom] and then stores the waiter; a stealer reads the slot
   {e before} CASing [top] past it, gives up on a not-yet-visible
   store, and clears the slot it consumed (so a later lap can never
   mistake a dead previous-lap waiter for a pending token) — a claimed
   token is never lost: it is delivered by a later steal, or its
   owner's park timeout makes delivery moot. *)

type ring = {
  r_slots : waiter option Atomic.t array;
  r_top : int Atomic.t; (* next index to steal *)
  r_bottom : int Atomic.t; (* next index to push *)
}

let rings : ring array =
  Array.init n_slots (fun _ ->
      {
        r_slots = Array.init ring_cap (fun _ -> Atomic.make None);
        r_top = Atomic.make 0;
        r_bottom = Atomic.make 0;
      })

let rec ring_push r w =
  let b = Atomic.get r.r_bottom in
  let t = Atomic.get r.r_top in
  if b - t >= ring_cap then ignore (deliver w : bool) (* full: signal inline *)
  else if Atomic.compare_and_set r.r_bottom b (b + 1) then
    Atomic.set r.r_slots.(b land (ring_cap - 1)) (Some w)
  else ring_push r w

let ring_steal r =
  let t = Atomic.get r.r_top in
  let b = Atomic.get r.r_bottom in
  if t >= b then None
  else
    let slot = r.r_slots.(t land (ring_cap - 1)) in
    match Atomic.get slot with
    | None -> None (* claimed index, store not yet visible: try again later *)
    | Some w as v ->
      if Atomic.compare_and_set r.r_top t (t + 1) then begin
        (* Clear the slot we just consumed, so on the next lap a
           claimed-but-not-yet-stored push reads as [None] — never as
           this (dead) waiter, which a stealer racing that push could
           otherwise deliver while the fresh waiter is skipped for good.
           CAS rather than a blind store: once [r_top] moved, the push
           re-claiming this index may already have stored its waiter. *)
        ignore (Atomic.compare_and_set slot v None : bool);
        Some w
      end
      else None

(* ---- waiter buckets ---- *)

let buckets : waiter list Atomic.t array = Array.init n_buckets (fun _ -> Atomic.make [])

let bucket_for obj = buckets.(obj land (n_buckets - 1))

let rec bucket_push b w =
  let cur = Atomic.get b in
  if Atomic.compare_and_set b cur (w :: cur) then () else bucket_push b w

let register ~obj ~txn =
  let w = { w_txn = txn; w_obj = obj; w_state = Atomic.make 0; w_slot = my_slot () } in
  bucket_push (bucket_for obj) w;
  w

let cancel w = ignore (Atomic.compare_and_set w.w_state 0 2 : bool)

(* Wake everything parked on [obj].  Waiters for colliding keys (and
   cancelled leftovers) are filtered: live foreigners go back on the
   bucket, dead entries are dropped.  The first [inline_wakes] of our
   own waiters are signalled here; the rest go on this domain's wake
   ring for stealers. *)
let inline_wakes = 4

let notify ~obj =
  let b = bucket_for obj in
  if Atomic.get b != [] then begin
    Atomic.incr n_notifies;
    let ws = Atomic.exchange b [] in
    let mine, foreign =
      List.partition (fun w -> w.w_obj = obj) ws
    in
    let foreign_live = List.filter (fun w -> Atomic.get w.w_state = 0) foreign in
    List.iter (fun w -> bucket_push b w) foreign_live;
    let ring = rings.(domain_index ()) in
    let rec go n = function
      | [] -> ()
      | w :: rest ->
        if n < inline_wakes then begin
          ignore (deliver w : bool);
          go (n + 1) rest
        end
        else begin
          ring_push ring w;
          go n rest
        end
    in
    go 0 mine
  end

(* Steal one pending wake-up from any domain's ring and deliver it.
   Called by spinning retriers: work that would otherwise wait for the
   notifier (or a timeout) gets re-dispatched by whoever has spare
   cycles — the work-stealing half of the scheduler.  Scan start is
   rotated so concurrent helpers fan out over the rings. *)
let steal_cursor = Atomic.make 0

let help () =
  let start = Atomic.fetch_and_add steal_cursor 1 in
  let rec go i =
    if i >= n_slots then false
    else
      match ring_steal rings.((start + i) land (n_slots - 1)) with
      | Some w ->
        if deliver w then begin
          Atomic.incr n_steals;
          if Obs.Span.enabled () then Obs.Span.steal ~txn:w.w_txn ~obj:w.w_obj;
          true
        end
        else go i (* dead token: keep scanning this ring's successors *)
      | None -> go (i + 1)
  in
  go 0

(* Timed wait on the ticket: returns as soon as a release signals us, at
   the latest after [timeout].  The caller must have re-attempted after
   registering (see module comment); a signal that raced our entry is
   caught by the state check before and the pipe byte during select. *)
let park w ~timeout =
  Atomic.incr n_parks;
  let finish () =
    (* Settle the state: 1 stays (woken), 0 becomes 2 (expired). *)
    if Atomic.get w.w_state = 1 || not (Atomic.compare_and_set w.w_state 0 2) then begin
      drain w.w_slot;
      `Woken
    end
    else begin
      Atomic.incr n_timeouts;
      `Timeout
    end
  in
  if Atomic.get w.w_state = 1 then finish ()
  else begin
    if Obs.Span.enabled () then
      Obs.Span.park ~txn:w.w_txn ~obj:w.w_obj
        ~timeout_ns:(int_of_float (timeout *. 1e9));
    (match Unix.select [ w.w_slot.rd ] [] [] timeout with
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    let r = finish () in
    if Obs.Span.enabled () then
      Obs.Span.unpark ~txn:w.w_txn ~woken:(match r with `Woken -> true | `Timeout -> false);
    r
  end

(* Timed park without a registration: Manager.run's restart delay when
   no conflict hint is available, and any other place that used to
   [Unix.sleepf] on the transaction path.  Unlike a sleep, the slot can
   be poked by a stale signal — the caller's loop re-attempts anyway. *)
let sleep timeout =
  let slot = my_slot () in
  drain slot;
  match Unix.select [ slot.rd ] [] [] timeout with
  | _ -> drain slot
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

(* ---- restart hints ----

   Retry's wait-die death knows which object the dying transaction lost;
   Manager.run, catching the abort, does not.  The hint carries the
   object key from the death site to the restart loop, per domain, so
   the restarted attempt parks on the contended object instead of
   sleeping blind. *)

let restart_hints : int Atomic.t array = Array.init n_slots (fun _ -> Atomic.make (-1))

let set_restart_hint ~obj = Atomic.set restart_hints.(domain_index ()) obj

let take_restart_hint () =
  let h = Atomic.exchange restart_hints.(domain_index ()) (-1) in
  if h < 0 then None else Some h
