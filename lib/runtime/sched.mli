(** Work-stealing retry scheduler: park on conflict, wake on release.

    Replaces the runtime's retry/restart sleeps ([Unix.sleepf] polling)
    with a park/notify rendezvous: a refused transaction registers a
    waiter on the contended object, re-attempts once (closing the
    register/check/park race), and parks on its domain's self-pipe with
    its backoff quantum as the timeout backstop; the releasing
    transaction's commit/abort notifies the object's waiters.  Wake-ups
    are published on per-domain rings and delivered either inline (a
    bounded number per notify, keeping the release path O(1)) or by
    {!help} — spinning retriers steal pending wake-ups from any domain,
    so a blocked transaction is re-dispatched by whoever has spare
    cycles.  An empty bucket costs a notifier a single atomic read;
    everything is lock-free (see {!Lockstat}).

    Timeouts make every park bounded: a lost or late signal degrades to
    exactly the pre-rework backoff sleep, never a stranded waiter. *)

type ticket

val register : obj:int -> txn:int -> ticket
(** Enqueue a waiter for [txn] on [obj]'s bucket.  The caller {e must}
    re-attempt its operation after registering and before {!park} — a
    release that completed before the registration wakes nobody. *)

val cancel : ticket -> unit
(** Discard a registration (the re-attempt succeeded, or the caller is
    dying).  Cancelled waiters are dropped lazily by the next notify
    sweep of their bucket. *)

val park : ticket -> timeout:float -> [ `Woken | `Timeout ]
(** Block until a release signals the ticket, or [timeout] seconds.
    [`Woken] means some commit/abort on the object happened since
    registration — re-attempt immediately. *)

val notify : obj:int -> unit
(** Wake [obj]'s registered waiters (commit/abort release path).  Empty
    bucket: one atomic read, no allocation. *)

val help : unit -> bool
(** Steal one pending wake-up from any domain's ring and deliver it;
    [true] if a waiter was woken.  Called from retry spin loops. *)

val sleep : float -> unit
(** Timed park without a registration (restart delays with no conflict
    hint).  May return early on a stale signal; callers re-attempt in a
    loop anyway. *)

val set_restart_hint : obj:int -> unit
(** Record, for the current domain, the object a dying transaction lost
    a conflict on; {!Retry} sets it just before raising wait-die or
    give-up aborts. *)

val take_restart_hint : unit -> int option
(** Consume the current domain's restart hint: [Manager.run] parks its
    restart delay on that object instead of sleeping blind. *)

val domain_index : unit -> int
(** The calling domain's slot index (park slot, wake ring, restart-hint
    cell), leased from a free list for the domain's lifetime and
    returned when it exits.  Two concurrently live domains never share
    an index while fewer than the table size are alive — masking the
    monotone domain id used to alias them once ids drifted a table
    length apart.  Exposed for tests. *)

type stats = { parks : int; wakes : int; steals : int; timeouts : int; notifies : int }

val stats : unit -> stats
(** Process-wide scheduler counters (monotone). *)
