(** Conflict-retry with wait-die deadlock resolution.

    The paper's protocol refuses a lock request and retries the
    invocation later (Section 4.1; Avalon/C++'s [when] guard retries
    "after an arbitrary duration").  Pure retrying cannot resolve
    hold-and-wait cycles, so we layer the classical wait-die policy on
    top: on a conflict the requester compares its {!Txn_rt.priority}
    (birth order, preserved across restarts) with the lock holder's —
    an {e older} requester waits and retries, a {e younger} one dies
    (raises {!Txn_rt.Abort_requested}) so the manager restarts it with
    its original priority.  Waits-for edges then only point from older
    to younger transactions, so cycles are impossible, and a restarted
    transaction eventually becomes the oldest in the system, so it
    cannot starve.

    Waiting parks on the contended object via {!Sched} (woken by the
    holder's commit/abort) after a short helping spin; the jittered
    exponential backoff ({!Backoff.retry_delay}) remains as each park's
    timeout backstop. *)

type conflict = {
  holder : int;  (** the lock holder's transaction id *)
  holder_priority : int option;
      (** the holder's wait-die priority, captured by the object {e in
          the same consistent section that observed the conflict} —
          [None] when the holder completed before the capture.  Wait-die
          decisions use this captured value, never a later registry
          lookup by id: holder ids can be recycled (coordinators
          re-register explicit ids) between refusal and lookup, and a
          recycled id resolves to the wrong transaction's priority. *)
}

type failure = [ `Blocked | `Conflict of conflict option ]
(** [`Blocked]: no legal response right now (partial operation) — wait
    for some transaction to commit.  [`Conflict c]: a lock conflict with
    holder [c.holder] (when known). *)

val run :
  ?retries:int ->
  ?on_retry:(unit -> unit) ->
  ?obj:int ->
  name:string ->
  self:Txn_rt.t ->
  (unit -> ('a, [< failure ]) result) ->
  'a
(** Attempt until [Ok].  Conflicts against a younger holder (or unknown
    holder, or [`Blocked]) are retried — a brief spin that also steals
    pending scheduler wake-ups ({!Sched.help}), then register-and-park
    on the contended object with the seeded, jittered exponential
    backoff ({!Backoff.retry_delay}, capped ~1ms) as timeout — at most
    [retries] times (default 500) before dying; conflicts where
    wait-die says "die" raise {!Txn_rt.Abort_requested} immediately.
    Each park is preceded by a re-attempt after registration, so a
    release can never slip between the failed attempt and the park.

    [on_retry] is called just before each re-attempt — the object layer
    uses it to stamp a [Retry] trace event.  [obj] names the contended
    object for the scheduler's waiter registry and the flight recorder's
    lock-wait span marks (one wait/resume pair per stalled invocation).
    Retry volume, wait-die deaths and give-ups are also counted in the
    {!Obs.Metrics} registry ([retry.retries], [retry.wait_die_deaths],
    [retry.give_ups]). *)
