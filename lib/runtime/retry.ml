type failure = [ `Blocked | `Conflict of int option ]

let m_retries = Obs.Metrics.counter "retry.retries"
let m_wait_die = Obs.Metrics.counter "retry.wait_die_deaths"
let m_give_ups = Obs.Metrics.counter "retry.give_ups"

(* Transactions currently inside a retry loop after at least one
   refusal — the instantaneous contention level the [top] dashboard
   shows.  A gauge, not gated on the observability switch (a toggle
   mid-loop must not strand a phantom waiter). *)
let g_waiting = Obs.Gauge.make "retry_waiting"

let die ~name reason =
  raise (Txn_rt.Abort_requested (Printf.sprintf "%s: %s" name reason))

let run ?(retries = 500) ?(on_retry = ignore) ?(obj = 0) ~name ~self attempt =
  let my_priority = Txn_rt.priority self in
  let waiting = ref false in
  let enter_wait () =
    if not !waiting then begin
      waiting := true;
      Obs.Gauge.incr g_waiting;
      (* One lock-wait window per stalled invocation, however many
         retries it takes: the flight span charges wait→resume, not
         individual poll iterations. *)
      if Obs.Span.enabled () then Obs.Span.lock_wait ~txn:(Txn_rt.id self) ~obj
    end
  in
  let leave_wait () =
    if !waiting then begin
      Obs.Gauge.decr g_waiting;
      if Obs.Span.enabled () then Obs.Span.lock_resume ~txn:(Txn_rt.id self) ~obj
    end
  in
  Fun.protect ~finally:leave_wait @@ fun () ->
  let rec go n =
    match attempt () with
    | Ok v -> v
    | Error failure ->
      (match failure with
      | `Conflict (Some holder_id) -> (
        match Txn_rt.priority_of_id holder_id with
        | Some holder_priority when my_priority > holder_priority ->
          (* Wait-die: the younger transaction dies immediately. *)
          Obs.Metrics.incr m_wait_die;
          die ~name (Printf.sprintf "wait-die vs txn %d" holder_id)
        | Some _ | None ->
          (* Older than the holder (wait), or the holder just completed
             (retry will likely succeed). *)
          ())
      | `Conflict None | `Blocked -> ());
      if n >= retries then begin
        Obs.Metrics.incr m_give_ups;
        die ~name (Printf.sprintf "giving up after %d attempts" n)
      end;
      (* Spin briefly (the holder is usually mid-operation), then sleep
         on a jittered exponential quantum keyed on our transaction id:
         a flat quantum makes every loser of a conflict wake in
         lockstep and collide again (see Backoff). *)
      enter_wait ();
      if n < 10 then Domain.cpu_relax ()
      else Unix.sleepf (Backoff.retry_delay ~key:(Txn_rt.id self) ~attempt:(n - 10));
      Obs.Metrics.incr m_retries;
      on_retry ();
      go (n + 1)
  in
  go 0
