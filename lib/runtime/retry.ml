type conflict = { holder : int; holder_priority : int option }
type failure = [ `Blocked | `Conflict of conflict option ]

let m_retries = Obs.Metrics.counter "retry.retries"
let m_wait_die = Obs.Metrics.counter "retry.wait_die_deaths"
let m_give_ups = Obs.Metrics.counter "retry.give_ups"

(* Transactions currently inside a retry loop after at least one
   refusal — the instantaneous contention level the [top] dashboard
   shows.  A gauge, not gated on the observability switch (a toggle
   mid-loop must not strand a phantom waiter). *)
let g_waiting = Obs.Gauge.make "retry_waiting"

let die ~name reason =
  raise (Txn_rt.Abort_requested (Printf.sprintf "%s: %s" name reason))

(* How many attempts spin (helping the scheduler) before parking. *)
let spin_limit = 10

let run ?(retries = 500) ?(on_retry = ignore) ?(obj = 0) ~name ~self attempt =
  let my_priority = Txn_rt.priority self in
  let my_id = Txn_rt.id self in
  let waiting = ref false in
  let enter_wait () =
    if not !waiting then begin
      waiting := true;
      Obs.Gauge.incr g_waiting;
      (* One lock-wait window per stalled invocation, however many
         retries it takes: the flight span charges wait→resume, not
         individual poll iterations. *)
      if Obs.Span.enabled () then Obs.Span.lock_wait ~txn:my_id ~obj
    end
  in
  let leave_wait () =
    if !waiting then begin
      Obs.Gauge.decr g_waiting;
      if Obs.Span.enabled () then Obs.Span.lock_resume ~txn:my_id ~obj
    end
  in
  (* Wait-die on the priority {e captured with the refusal}: the object
     resolved the holder's priority inside the same consistent section
     that observed the conflict.  Resolving here instead — by id against
     the live registry, as this loop used to — raced the holder's
     completion: an id recycled between the refusal and the lookup
     (coordinators re-register explicit ids) resolves to an unrelated
     transaction's priority and kills or spares the wrong victim.
     [holder_priority = None] means the holder completed before the
     capture — the retry will likely succeed, so wait. *)
  let check_wait_die = function
    | `Conflict (Some { holder; holder_priority = Some hp }) when my_priority > hp ->
      (* Wait-die: the younger transaction dies immediately.  Leave the
         contended object as the restart hint so the manager's restart
         delay parks on its release instead of sleeping blind. *)
      Obs.Metrics.incr m_wait_die;
      Sched.set_restart_hint ~obj;
      die ~name (Printf.sprintf "wait-die vs txn %d" holder)
    | `Conflict _ | `Blocked -> ()
  in
  Fun.protect ~finally:leave_wait @@ fun () ->
  let rec go n =
    match attempt () with
    | Ok v -> v
    | Error failure ->
      check_wait_die failure;
      if n >= retries then begin
        Obs.Metrics.incr m_give_ups;
        Sched.set_restart_hint ~obj;
        die ~name (Printf.sprintf "giving up after %d attempts" n)
      end;
      enter_wait ();
      (* Spin briefly (the holder is usually mid-operation), helping the
         scheduler deliver pending wake-ups; then park on the contended
         object until a commit/abort releases it, with the jittered
         exponential quantum as the timeout backstop — a missed signal
         degrades to exactly the old backoff sleep, never a stranded
         waiter (see Sched). *)
      let early =
        if n < spin_limit then begin
          ignore (Sched.help () : bool);
          Domain.cpu_relax ();
          None
        end
        else begin
          (* Register, re-attempt, park: the re-attempt observes any
             release that beat the registration, so a wake-up can only
             be missed by a release that will still find our waiter. *)
          let ticket = Sched.register ~obj ~txn:my_id in
          match attempt () with
          | Ok v ->
            Sched.cancel ticket;
            Some v
          | Error f2 ->
            (try check_wait_die f2
             with e ->
               Sched.cancel ticket;
               raise e);
            ignore
              (Sched.park ticket
                 ~timeout:(Backoff.retry_delay ~key:my_id ~attempt:(n - spin_limit))
                : [ `Woken | `Timeout ]);
            None
        end
      in
      (match early with
      | Some v -> v
      | None ->
        Obs.Metrics.incr m_retries;
        on_retry ();
        go (n + 1))
  in
  go 0
