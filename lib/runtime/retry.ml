type failure = [ `Blocked | `Conflict of int option ]

let m_retries = Obs.Metrics.counter "retry.retries"
let m_wait_die = Obs.Metrics.counter "retry.wait_die_deaths"
let m_give_ups = Obs.Metrics.counter "retry.give_ups"

let die ~name reason =
  raise (Txn_rt.Abort_requested (Printf.sprintf "%s: %s" name reason))

let run ?(retries = 500) ?(on_retry = ignore) ~name ~self attempt =
  let my_priority = Txn_rt.priority self in
  let rec go n =
    match attempt () with
    | Ok v -> v
    | Error failure ->
      (match failure with
      | `Conflict (Some holder_id) -> (
        match Txn_rt.priority_of_id holder_id with
        | Some holder_priority when my_priority > holder_priority ->
          (* Wait-die: the younger transaction dies immediately. *)
          Obs.Metrics.incr m_wait_die;
          die ~name (Printf.sprintf "wait-die vs txn %d" holder_id)
        | Some _ | None ->
          (* Older than the holder (wait), or the holder just completed
             (retry will likely succeed). *)
          ())
      | `Conflict None | `Blocked -> ());
      if n >= retries then begin
        Obs.Metrics.incr m_give_ups;
        die ~name (Printf.sprintf "giving up after %d attempts" n)
      end;
      (* Spin briefly, then poll on a short flat quantum: the expected
         wait is the holder's remaining transaction time. *)
      if n < 10 then Domain.cpu_relax () else Unix.sleepf 2e-5;
      Obs.Metrics.incr m_retries;
      on_retry ();
      go (n + 1)
  in
  go 0
