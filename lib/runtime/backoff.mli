(** Seeded, jittered exponential backoff for the runtime's retry sleeps.

    High-contention profiles with flat retry delays synchronize their
    retry storms: every refused transaction wakes on the same schedule
    and collides again.  {!retry_delay} (Retry's conflict quantum, base
    20us) and {!restart_delay} (Manager.run's post-abort delay, base
    50us) double per attempt and add deterministic jitter, capped at
    ~1ms.

    The jitter is a pure hash of [(seed, key, attempt)] — no hidden RNG
    state — so runs are reproducible given the seed.  [bin/main.exe]
    threads [--seed] into {!set_seed}; the virtual-time simulator
    ({!Sim.Det_sim}) performs no real sleeps and is unaffected. *)

val set_seed : int -> unit
(** Set the process-wide backoff seed (default 0). *)

val current_seed : unit -> int

val jitter : key:int -> attempt:int -> float
(** The raw decorrelation fraction in [0, 1): a splitmix-style avalanche
    hash of [(seed, key, attempt)].  Exposed for the spread tests —
    keys that collide modulo a power of two (or differ in one bit) must
    still receive well-spread jitter, the property the pre-avalanche
    linear mix violated. *)

val retry_delay : key:int -> attempt:int -> float
(** Sleep duration (seconds) before retry number [attempt] of a refused
    invocation; [key] decorrelates concurrent sleepers (use the
    transaction id). *)

val restart_delay : key:int -> attempt:int -> float
(** Sleep duration (seconds) before restarting an aborted transaction
    attempt; [key] should be stable across the restarts of one
    transaction (use its priority). *)
