(* Lock modes and their conflicts (Figure 4-5's symmetric closure), as
   installed by the appendix's [account::account()] constructor. *)
type mode = Credit_lock | Post_lock | Debit_lock | Overdraft_lock

let conflicting a b =
  match (a, b) with
  | Credit_lock, Overdraft_lock | Overdraft_lock, Credit_lock -> true
  | Post_lock, Overdraft_lock | Overdraft_lock, Post_lock -> true
  | Debit_lock, Debit_lock -> true
  | (Credit_lock | Post_lock | Debit_lock | Overdraft_lock), _ -> false

(* A transaction's net effect: balance' = (mul * balance) + add. *)
type intent = { mul : int; add : int }

let identity_intent = { mul = 1; add = 0 }
let apply_intent i bal = (i.mul * bal) + i.add

type t = {
  obj_name : string;
  key : int;
  mutex : Mutex.t;
  mutable bal : int; (* committed balance below the horizon *)
  mutable committed : (Model.Timestamp.t * intent) list; (* ascending ts *)
  locks : (int, mode list) Hashtbl.t; (* txn id -> held modes *)
  intents : (int, intent) Hashtbl.t; (* txn id -> intention *)
  bounds : (int, Hybrid.Xts.t) Hashtbl.t; (* txn id -> commit lower bound *)
  mutable clock : Hybrid.Xts.t; (* latest committed timestamp *)
}

let create ?name () =
  let key = Txn_rt.fresh_object_key () in
  let obj_name = match name with Some n -> n | None -> Printf.sprintf "avalon-account#%d" key in
  {
    obj_name;
    key;
    mutex = Mutex.create ();
    bal = 0;
    committed = [];
    locks = Hashtbl.create 16;
    intents = Hashtbl.create 16;
    bounds = Hashtbl.create 16;
    clock = Hybrid.Xts.Neg_inf;
  }

let name t = t.obj_name

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Some conflicting lock holder other than [who], if any. *)
let conflict_holder t who mode =
  Hashtbl.fold
    (fun holder modes found ->
      match found with
      | Some _ -> found
      | None ->
        if holder <> who && List.exists (fun m -> conflicting m mode) modes then
          Some holder
        else None)
    t.locks None

let grant t who mode =
  let held = Option.value ~default:[] (Hashtbl.find_opt t.locks who) in
  if not (List.mem mode held) then Hashtbl.replace t.locks who (mode :: held)

let intent_of t who = Option.value ~default:identity_intent (Hashtbl.find_opt t.intents who)

let horizon t =
  let min_bound =
    Hashtbl.fold
      (fun _ b acc ->
        match acc with None -> Some b | Some m -> Some (Hybrid.Xts.min m b))
      t.bounds None
  in
  match min_bound with None -> t.clock | Some b -> Hybrid.Xts.min b t.clock

(* Fold committed intentions at or below the horizon into the balance —
   the appendix's [account::forget]. *)
let forget t =
  let hz = horizon t in
  let rec go bal = function
    | (ts, i) :: rest when Hybrid.Xts.(of_ts ts <= hz) -> go (apply_intent i bal) rest
    | remaining -> (bal, remaining)
  in
  let bal, committed = go t.bal t.committed in
  t.bal <- bal;
  t.committed <- committed

(* The view balance: committed (forgotten + remembered, in timestamp
   order) extended by the caller's own intention — the appendix's
   [account::sufficient] view construction. *)
let view_balance t who =
  let after_committed = List.fold_left (fun b (_, i) -> apply_intent i b) t.bal t.committed in
  apply_intent (intent_of t who) after_committed

let release_txn t who =
  Hashtbl.remove t.locks who;
  Hashtbl.remove t.bounds who

(* Capture the holder's wait-die priority with the refusal, inside the
   same locked section that observed the conflict — a later lookup by id
   races id recycling (see {!Retry.conflict}). *)
let capture_conflict holder =
  Option.map
    (fun h -> { Retry.holder = h; holder_priority = Txn_rt.priority_of_id h })
    holder

let participant t (txn : Txn_rt.t) : Txn_rt.participant =
  let who = Txn_rt.id txn in
  {
    Txn_rt.name = t.obj_name;
    on_commit =
      (fun ts ->
        with_lock t (fun () ->
            t.clock <- Hybrid.Xts.max t.clock (Hybrid.Xts.of_ts ts);
            let i = intent_of t who in
            release_txn t who;
            Hashtbl.remove t.intents who;
            (* insert in timestamp order *)
            let rec insert = function
              | [] -> [ (ts, i) ]
              | (ts', i') :: rest when Model.Timestamp.compare ts ts' > 0 ->
                (ts', i') :: insert rest
              | rest -> (ts, i) :: rest
            in
            t.committed <- insert t.committed;
            forget t);
        (* Locks released: wake any transaction parked on this object. *)
        Sched.notify ~obj:t.key);
    on_abort =
      (fun () ->
        with_lock t (fun () ->
            release_txn t who;
            Hashtbl.remove t.intents who;
            forget t);
        Sched.notify ~obj:t.key);
  }

let register t txn = Txn_rt.add_participant txn ~key:t.key (participant t txn)

let record_bound t who = Hashtbl.replace t.bounds who t.clock

(* Orphan detection, as in Atomic_obj: a completed transaction must not
   acquire locks its completion can no longer release. *)
let check_live t txn =
  match Txn_rt.status txn with
  | `Active -> ()
  | `Aborted ->
    raise (Txn_rt.Abort_requested (t.obj_name ^ ": orphan (transaction already aborted)"))
  | `Committed _ -> invalid_arg "Avalon_account: transaction already committed"

let update_intent t txn mode f =
  check_live t txn;
  let who = Txn_rt.id txn in
  let result =
    with_lock t (fun () ->
        match conflict_holder t who mode with
        | Some holder -> Error (`Conflict (capture_conflict (Some holder)))
        | None ->
          grant t who mode;
          Hashtbl.replace t.intents who (f (intent_of t who));
          record_bound t who;
          Ok ())
  in
  register t txn;
  result

let try_credit t txn amt =
  update_intent t txn Credit_lock (fun i -> { i with add = i.add + amt })

let try_post t txn pct =
  update_intent t txn Post_lock (fun i ->
      { mul = i.mul * (1 + pct); add = i.add * (1 + pct) })

let try_debit t txn amt =
  check_live t txn;
  let who = Txn_rt.id txn in
  let result =
    with_lock t (fun () ->
        let view = view_balance t who in
        let debit_holder = conflict_holder t who Debit_lock in
        let overdraft_holder = conflict_holder t who Overdraft_lock in
        if view >= amt && debit_holder = None then begin
          (* YES: sufficient funds and the DEBIT lock is grantable. *)
          grant t who Debit_lock;
          let i = intent_of t who in
          Hashtbl.replace t.intents who { i with add = i.add - amt };
          record_bound t who;
          Ok true
        end
        else if view < amt && overdraft_holder = None then begin
          (* NO: overdraft; lock the observation, leave the balance. *)
          grant t who Overdraft_lock;
          record_bound t who;
          Ok false
        end
        else
          (* MAYBE: lock conflicts leave the status ambiguous. *)
          let holder = if view >= amt then debit_holder else overdraft_holder in
          Error (`Conflict (capture_conflict holder)))
  in
  register t txn;
  result

let credit ?retries t txn amt =
  Retry.run ?retries ~obj:t.key ~name:t.obj_name ~self:txn (fun () ->
      try_credit t txn amt)

let post ?retries t txn pct =
  Retry.run ?retries ~obj:t.key ~name:t.obj_name ~self:txn (fun () ->
      try_post t txn pct)

let debit ?retries t txn amt =
  Retry.run ?retries ~obj:t.key ~name:t.obj_name ~self:txn (fun () ->
      try_debit t txn amt)

let committed_balance t =
  with_lock t (fun () ->
      List.fold_left (fun b (_, i) -> apply_intent i b) t.bal t.committed)

let forgotten_balance t = with_lock t (fun () -> t.bal)
let remembered_intents t = with_lock t (fun () -> List.length t.committed)
