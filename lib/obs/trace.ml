type refusal = { holder : int option; requested : int; held : int }

type event =
  | Invoke of int
  | Respond of int
  | Lock_granted
  | Lock_refused of refusal
  | Blocked
  | Retry
  | Commit of int
  | Abort
  | Horizon_advanced of int
  | Forgotten of int

type entry = { seq : int; time : int; obj : int; txn : int; event : event }

type t = { mask : int; slots : entry array; cursor : int Atomic.t }

let no_op = -1

let dummy = { seq = -1; time = 0; obj = -1; txn = -1; event = Abort }

let round_up_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 8

let create ?(capacity = 1 lsl 16) () =
  let cap = round_up_pow2 capacity in
  { mask = cap - 1; slots = Array.make cap dummy; cursor = Atomic.make 0 }

let global = create ()

let emit t ~obj ~txn event =
  let s = Atomic.fetch_and_add t.cursor 1 in
  (* A record store is a single word write: a concurrent reader sees
     either the old or the new entry, never a torn one; [seq] tells it
     which. *)
  Array.unsafe_set t.slots (s land t.mask)
    { seq = s; time = Clock.now_ns (); obj; txn; event }

let dropped t = max 0 (Atomic.get t.cursor - Array.length t.slots)

let cursor t = Atomic.get t.cursor

let capacity t = Array.length t.slots

let entries t =
  let c = Atomic.get t.cursor in
  let lo = max 0 (c - Array.length t.slots) in
  let out = ref [] in
  for s = c - 1 downto lo do
    let e = Array.unsafe_get t.slots (s land t.mask) in
    if e.seq = s then out := e :: !out
  done;
  !out

let clear t =
  Atomic.set t.cursor 0;
  Array.fill t.slots 0 (Array.length t.slots) dummy

let pp_event ppf = function
  | Invoke c -> Format.fprintf ppf "invoke#%d" c
  | Respond c -> Format.fprintf ppf "respond#%d" c
  | Lock_granted -> Format.pp_print_string ppf "lock-granted"
  | Lock_refused { holder = Some h; requested; held } ->
    Format.fprintf ppf "lock-refused(op#%d vs op#%d held by T%d)" requested held h
  | Lock_refused { holder = None; requested; held } ->
    Format.fprintf ppf "lock-refused(op#%d vs op#%d)" requested held
  | Blocked -> Format.pp_print_string ppf "blocked"
  | Retry -> Format.pp_print_string ppf "retry"
  | Commit ts -> Format.fprintf ppf "commit@%d" ts
  | Abort -> Format.pp_print_string ppf "abort"
  | Horizon_advanced ts -> Format.fprintf ppf "horizon->%d" ts
  | Forgotten n -> Format.fprintf ppf "forgotten(%d)" n

let pp_entry ppf e =
  Format.fprintf ppf "[%d] obj=%d T%d %a" e.seq e.obj e.txn pp_event e.event
