(** Structured trace ring buffer of protocol events.

    Every entry tags a protocol event with the emitting object's key and
    the acting transaction's id, both plain ints so the ring is generic
    over data types, plus a monotonic-clock timestamp ({!Clock}) taken
    at emission — the raw material for blocked-time accounting
    ({!Attrib}), wait-for analysis ({!Waitfor}) and timeline export
    ({!Export}).  Invocation and response payloads are carried as small
    {e interned codes}: the emitting object assigns codes in order of
    first appearance and keeps the decode table ([Runtime.Atomic_obj]
    does this per object), so the ring never stores ADT values and the
    fast path allocates only the entry record.

    Writers claim a slot with one [fetch_and_add] and store the entry —
    lock-free, multi-domain safe.  When the ring wraps, the oldest
    entries are overwritten ({!dropped} counts them); {!entries} returns
    the surviving window, oldest first.  For one object all emissions
    happen under that object's mutex, so the window restricted to an
    object is a faithful suffix of its event order — which is what
    {!Replay} reconstructs histories from. *)

type refusal = { holder : int option; requested : int; held : int }
(** Attribution payload of a refused lock: the transaction holding the
    conflicting lock (when known), and the {e operation-pair} codes —
    [requested] is the operation whose lock was requested, [held] the
    already-locked operation it conflicts with, both interned per object
    in a code space separate from invocation/response codes ({!no_op}
    when unknown).  This is what turns a refusal count into a
    per-Conflict-entry attribution: each refusal names the exact cell of
    the conflict relation that fired. *)

type event =
  | Invoke of int  (** invocation, by interned code *)
  | Respond of int  (** chosen response, by interned code *)
  | Lock_granted  (** the response's lock was granted and recorded *)
  | Lock_refused of refusal  (** lock conflict, with attribution *)
  | Blocked  (** no legal response in the view (partial operation) *)
  | Retry  (** the retry loop is about to re-attempt a refused invocation *)
  | Commit of int  (** commit event with its timestamp *)
  | Abort
  | Horizon_advanced of int  (** compaction folded up to this timestamp *)
  | Forgotten of int
      (** cumulative count of committed transactions folded into the
          version after this fold — never decreases (Theorem 24) *)

type entry = { seq : int; time : int; obj : int; txn : int; event : event }
(** [time] is {!Clock.now_ns} at emission: monotonic nanoseconds,
    comparable across objects and domains within the process. *)

val no_op : int
(** Sentinel ([-1]) for an unknown operation code in a {!refusal}. *)

type t

val create : ?capacity:int -> unit -> t
(** A fresh ring.  [capacity] (default 65536) is rounded up to a power
    of two, minimum 8. *)

val global : t
(** The default sink used by instrumentation when no explicit sink is
    attached (gated on {!Control.enabled}). *)

val emit : t -> obj:int -> txn:int -> event -> unit

val entries : t -> entry list
(** The current window, oldest first.  Entries being overwritten
    concurrently with the read are skipped. *)

val dropped : t -> int
(** How many entries have been overwritten since creation/{!clear}. *)

val cursor : t -> int
(** Total entries ever emitted — the monotone write position.  An
    incremental reader ({!Sampler}) compares cursors across polls to
    decide whether anything new arrived. *)

val capacity : t -> int

val clear : t -> unit
(** Reset to empty.  Not safe against concurrent writers; call when
    quiescent. *)

val pp_event : Format.formatter -> event -> unit
val pp_entry : Format.formatter -> entry -> unit
