(* Turn flight-recorder records into per-phase and per-ADT-op latency
   histograms with p50/p99/p999, check them against SLO targets, and
   render the result as text, JSON (the [/slo] endpoint) or Chrome
   trace slices. *)

(* ---- nanosecond histograms ----------------------------------------

   Geometric buckets, ratio 2^(1/4) (~19% resolution per bucket) from
   1us to ~14s — enough headroom that a p999 read is a bucket
   interpolation, not a +Inf clamp.  Private to the aggregator: the
   process-wide {!Metrics} registry keeps coarse operational buckets,
   the profiler wants tail resolution. *)

let n_buckets = 96
let base_ns = 1e3
let log_ratio = Float.log 2. /. 4.
let ratio = Float.exp log_ratio

let upper i = base_ns *. (ratio ** float_of_int (i + 1))

let bucket_of_ns ns =
  if ns <= base_ns then 0
  else min (n_buckets - 1) (1 + int_of_float (Float.log (ns /. base_ns) /. log_ratio))

type hist = {
  counts : int array;
  mutable n : int;
  mutable sum : float; (* ns *)
  mutable max_ns : int;
}

let h_create () = { counts = Array.make n_buckets 0; n = 0; sum = 0.; max_ns = 0 }

let h_observe h ns =
  let ns = max 0 ns in
  h.counts.(bucket_of_ns (float_of_int ns)) <- h.counts.(bucket_of_ns (float_of_int ns)) + 1;
  h.n <- h.n + 1;
  h.sum <- h.sum +. float_of_int ns;
  if ns > h.max_ns then h.max_ns <- ns

let h_quantile h q =
  if h.n = 0 then 0.
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let target = q *. float_of_int h.n in
    let rec go i cum =
      if i >= n_buckets then float_of_int h.max_ns
      else
        let cum' = cum +. float_of_int h.counts.(i) in
        if cum' >= target && h.counts.(i) > 0 then begin
          let lo = if i = 0 then 0. else upper (i - 1) in
          let hi = Float.min (upper i) (float_of_int h.max_ns) in
          let frac = (target -. cum) /. float_of_int h.counts.(i) in
          lo +. (Float.max 0. (hi -. lo) *. Float.max 0. (Float.min 1. frac))
        end
        else go (i + 1) cum'
    in
    go 0 0.
  end

type stat = {
  st_count : int;
  st_mean : float; (* seconds *)
  st_p50 : float;
  st_p99 : float;
  st_p999 : float;
  st_max : float;
}

let stat_of h =
  let s ns = ns /. 1e9 in
  {
    st_count = h.n;
    st_mean = (if h.n = 0 then 0. else s (h.sum /. float_of_int h.n));
    st_p50 = s (h_quantile h 0.5);
    st_p99 = s (h_quantile h 0.99);
    st_p999 = s (h_quantile h 0.999);
    st_max = s (float_of_int h.max_ns);
  }

(* ---- span reassembly ----------------------------------------------

   Records of one transaction all come from the domain that ran it (the
   coordinator drives every 2PC leg from the caller's thread), so per
   transaction the feed order is emit order; grouping on the id is all
   the stitching a cross-shard span needs. *)

type open_span = {
  mutable s_begin : int;
  mutable s_cross : bool;
  mutable wait_open : int; (* -1 = no open lock-wait window *)
  mutable wait_ns : int;
  mutable sync_open : int;
  mutable sync_ns : int;
  mutable append_t : int; (* -1 = no WAL append seen *)
  mutable prep_first : int;
  mutable prep_last : int;
  mutable decide_t : int;
}

let phase_names =
  [ "lock_wait"; "execute"; "commit"; "sync_wait"; "prepare"; "decide"; "backoff"; "fsync" ]

type t = {
  mu : Mutex.t;
  opens : (int, open_span) Hashtbl.t;
  h_local : hist;
  h_cross : hist;
  phases : (string, hist) Hashtbl.t;
  ops : (string * string, hist) Hashtbl.t;
  lookup : obj:int -> inv:int -> string * string;
  mutable spans : int;
  mutable aborts : int;
  mutable last_time : int;
}

let max_ops = 64
let max_open = 1 lsl 16

(* Per-ADT-op keys use the invocation's constructor family ("Credit 5"
   or "Credit(5)" -> "Credit"): payload-carrying labels are unbounded,
   families are the ADT's signature. *)
let family label =
  let cut c acc = match String.index_opt label c with
    | Some i -> min i acc
    | None -> acc
  in
  let stop = cut ' ' (cut '(' (String.length label)) in
  if stop = String.length label then label else String.sub label 0 stop

let attrib_lookup ~obj ~inv =
  (Attrib.object_name ~obj, family (Attrib.label ~obj ~kind:Attrib.Inv inv))

let meta_lookup meta ~obj ~inv =
  (Flight.meta_object_name meta obj, family (Flight.meta_label meta ~obj ~kind:0 inv))

let create ?(lookup = attrib_lookup) () =
  let phases = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace phases p (h_create ())) phase_names;
  {
    mu = Mutex.create ();
    opens = Hashtbl.create 1024;
    h_local = h_create ();
    h_cross = h_create ();
    phases;
    ops = Hashtbl.create 64;
    lookup;
    spans = 0;
    aborts = 0;
    last_time = 0;
  }

let phase t p = Hashtbl.find t.phases p

let op_hist t key =
  match Hashtbl.find_opt t.ops key with
  | Some h -> h
  | None ->
    let key = if Hashtbl.length t.ops >= max_ops then ("other", "other") else key in
    (match Hashtbl.find_opt t.ops key with
    | Some h -> h
    | None ->
      let h = h_create () in
      Hashtbl.replace t.ops key h;
      h)

let fresh_span time =
  {
    s_begin = time;
    s_cross = false;
    wait_open = -1;
    wait_ns = 0;
    sync_open = -1;
    sync_ns = 0;
    append_t = -1;
    prep_first = -1;
    prep_last = -1;
    decide_t = -1;
  }

let open_span t txn time =
  let s = fresh_span time in
  Hashtbl.replace t.opens txn s;
  s

let find_span t txn =
  match Hashtbl.find_opt t.opens txn with
  | Some s -> Some s
  | None -> None

(* A burst of spans that never close (a killed run's torn tail, or ids
   we joined mid-flight) must not leak: drop windows older than 60s of
   record time once the table is big. *)
let prune_locked t =
  if Hashtbl.length t.opens > max_open then begin
    let cutoff = t.last_time - 60_000_000_000 in
    let stale =
      Hashtbl.fold (fun k s acc -> if s.s_begin < cutoff then k :: acc else acc) t.opens []
    in
    List.iter (Hashtbl.remove t.opens) stale
  end

let close_span t s time aborted =
  if aborted then t.aborts <- t.aborts + 1
  else begin
    t.spans <- t.spans + 1;
    let total = max 0 (time - s.s_begin) in
    (* An unclosed wait window (a wait-die death mid-wait that still
       committed elsewhere cannot happen; this is belt and braces) is
       charged up to the close. *)
    if s.wait_open >= 0 then begin
      s.wait_ns <- s.wait_ns + max 0 (time - s.wait_open);
      s.wait_open <- -1
    end;
    if s.sync_open >= 0 then begin
      s.sync_ns <- s.sync_ns + max 0 (time - s.sync_open);
      s.sync_open <- -1
    end;
    let cross = s.s_cross || s.prep_first >= 0 in
    h_observe (if cross then t.h_cross else t.h_local) total;
    h_observe (phase t "lock_wait") s.wait_ns;
    h_observe (phase t "sync_wait") s.sync_ns;
    if cross then begin
      let exec_end = if s.prep_first >= 0 then s.prep_first else time in
      h_observe (phase t "execute") (max 0 (exec_end - s.s_begin - s.wait_ns));
      if s.prep_first >= 0 then begin
        let prep_end = if s.prep_last >= 0 then s.prep_last else s.prep_first in
        h_observe (phase t "prepare") (max 0 (prep_end - s.prep_first));
        h_observe (phase t "decide") (max 0 (time - prep_end))
      end
    end
    else begin
      let exec_end = if s.append_t >= 0 then s.append_t else time in
      h_observe (phase t "execute") (max 0 (exec_end - s.s_begin - s.wait_ns));
      if s.append_t >= 0 then h_observe (phase t "commit") (max 0 (time - s.append_t))
    end
  end

let feed_locked t (r : Flight.record) =
  t.last_time <- max t.last_time r.time;
  let c = r.code in
  if c = Span.c_begin then ignore (open_span t r.txn r.time : open_span)
  else if c = Span.c_cross_begin then begin
    (* The coordinator opens the span with a plain [begin] and emits
       [cross_begin] on entering 2PC — don't reset the start time. *)
    match find_span t r.txn with
    | Some s -> s.s_cross <- true
    | None ->
      let s = open_span t r.txn r.time in
      s.s_cross <- true
  end
  else if c = Span.c_backoff then h_observe (phase t "backoff") r.arg
  else if c = Span.c_fsync then h_observe (phase t "fsync") r.arg
  else if c = Span.c_op then begin
    let key = t.lookup ~obj:r.aux32 ~inv:r.aux16 in
    h_observe (op_hist t key) r.arg
  end
  else
    match find_span t r.txn with
    | None -> () (* joined mid-span: ignore the orphan marks *)
    | Some s ->
      if c = Span.c_lock_wait then begin
        if s.wait_open < 0 then s.wait_open <- r.time
      end
      else if c = Span.c_lock_resume then begin
        if s.wait_open >= 0 then begin
          s.wait_ns <- s.wait_ns + max 0 (r.time - s.wait_open);
          s.wait_open <- -1
        end
      end
      else if c = Span.c_append then begin
        if s.append_t < 0 then s.append_t <- r.time
      end
      else if c = Span.c_sync_wait then s.sync_open <- r.time
      else if c = Span.c_sync_done then begin
        if s.sync_open >= 0 then begin
          s.sync_ns <- s.sync_ns + max 0 (r.time - s.sync_open);
          s.sync_open <- -1
        end
      end
      else if c = Span.c_prepare then begin
        s.s_cross <- true;
        if s.prep_first < 0 then s.prep_first <- r.time
      end
      else if c = Span.c_prepared then s.prep_last <- r.time
      else if c = Span.c_decide then s.decide_t <- r.time
      else if c = Span.c_commit || c = Span.c_cross_commit then begin
        Hashtbl.remove t.opens r.txn;
        close_span t s r.time false
      end
      else if c = Span.c_abort || c = Span.c_cross_abort then begin
        Hashtbl.remove t.opens r.txn;
        close_span t s r.time true
      end
      else ();
      prune_locked t

let feed t r = Mutex.protect t.mu (fun () -> feed_locked t r)
let feed_all t rs = Mutex.protect t.mu (fun () -> List.iter (feed_locked t) rs)

(* ---- reports ------------------------------------------------------- *)

type report = {
  r_local : stat;
  r_cross : stat;
  r_phases : (string * stat) list;
  r_ops : ((string * string) * stat) list;
  r_spans : int;
  r_aborts : int;
  r_open : int;
  r_lost : int;
  r_emitted : int;
}

let report t =
  Mutex.protect t.mu (fun () ->
      {
        r_local = stat_of t.h_local;
        r_cross = stat_of t.h_cross;
        r_phases = List.map (fun p -> (p, stat_of (phase t p))) phase_names;
        r_ops =
          Hashtbl.fold (fun k h acc -> ((k, stat_of h) :: acc)) t.ops []
          |> List.sort (fun ((a, _), _) ((b, _), _) -> compare a b);
        r_spans = t.spans;
        r_aborts = t.aborts;
        r_open = Hashtbl.length t.opens;
        r_lost = Flight.lost ();
        r_emitted = Flight.emitted ();
      })

(* ---- SLO targets --------------------------------------------------- *)

type target = { t_metric : string; t_quantile : float; t_limit_s : float }

let metric_names = "local" :: "cross" :: phase_names

let quantile_of_string = function
  | "p50" -> Some 0.5
  | "p90" -> Some 0.9
  | "p99" -> Some 0.99
  | "p999" -> Some 0.999
  | "max" -> Some 1.
  | _ -> None

let duration_of_string s =
  let num k n = Option.map (fun f -> f *. k) (float_of_string_opt n) in
  let strip suffix =
    if String.length s > String.length suffix
       && Filename.check_suffix s suffix
       (* "s" also suffixes "ms"/"us": try longest first at the call site *)
    then Some (String.sub s 0 (String.length s - String.length suffix))
    else None
  in
  match strip "ms" with
  | Some n -> num 1e-3 n
  | None -> (
    match strip "us" with
    | Some n -> num 1e-6 n
    | None -> (
      match strip "s" with
      | Some n -> num 1. n
      | None -> num 1. s))

let target_of_spec spec =
  match String.split_on_char ':' spec with
  | [ metric; q; limit ] -> (
    if not (List.mem metric metric_names) then
      Error (Printf.sprintf "unknown SLO metric %S (one of %s)" metric
               (String.concat ", " metric_names))
    else
      match (quantile_of_string q, duration_of_string limit) with
      | Some tq, Some tl -> Ok { t_metric = metric; t_quantile = tq; t_limit_s = tl }
      | None, _ -> Error (Printf.sprintf "unknown quantile %S (p50/p90/p99/p999/max)" q)
      | _, None -> Error (Printf.sprintf "bad duration %S (e.g. 5ms, 800us, 1.5s)" limit))
  | _ -> Error (Printf.sprintf "bad SLO spec %S (want metric:quantile:limit)" spec)

let targets_of_specs specs =
  List.fold_left
    (fun acc spec ->
      match (acc, target_of_spec spec) with
      | Error e, _ -> Error e
      | Ok l, Ok t -> Ok (t :: l)
      | Ok _, Error e -> Error e)
    (Ok []) specs
  |> Result.map List.rev

let stat_quantile st q =
  if q >= 1. then st.st_max
  else if q >= 0.999 then st.st_p999
  else if q >= 0.99 then st.st_p99
  else if q >= 0.9 then st.st_p99 (* p90 reads conservatively from p99 *)
  else st.st_p50

type verdict = { v_target : target; v_actual : float; v_ok : bool }

let check report targets =
  List.map
    (fun tgt ->
      let st =
        if tgt.t_metric = "local" then report.r_local
        else if tgt.t_metric = "cross" then report.r_cross
        else List.assoc tgt.t_metric report.r_phases
      in
      let actual = stat_quantile st tgt.t_quantile in
      { v_target = tgt; v_actual = actual; v_ok = actual <= tgt.t_limit_s })
    targets

let breached verdicts = List.exists (fun v -> not v.v_ok) verdicts

(* ---- rendering ----------------------------------------------------- *)

let pp_quantile ppf q =
  if q >= 1. then Format.pp_print_string ppf "max"
  else Format.fprintf ppf "p%g" (q *. 1000. /. 10.)

let dur_string s =
  if s >= 1. then Printf.sprintf "%.2fs" s
  else if s >= 1e-3 then Printf.sprintf "%.2fms" (s *. 1e3)
  else Printf.sprintf "%.1fus" (s *. 1e6)

let pp_dur ppf s = Format.pp_print_string ppf (dur_string s)

let pp_stat_row ppf (name, st) =
  if st.st_count > 0 then
    Format.fprintf ppf "  %-24s %8d  p50 %8s  p99 %8s  p999 %8s  max %8s@." name
      st.st_count (dur_string st.st_p50) (dur_string st.st_p99) (dur_string st.st_p999)
      (dur_string st.st_max)

let pp_report ppf r =
  Format.fprintf ppf "spans: %d committed, %d aborted, %d still open@." r.r_spans
    r.r_aborts r.r_open;
  Format.fprintf ppf "recorder: %d records emitted, %d lost to ring wrap@." r.r_emitted
    r.r_lost;
  Format.fprintf ppf "transaction totals:@.";
  pp_stat_row ppf ("local", r.r_local);
  pp_stat_row ppf ("cross-shard", r.r_cross);
  Format.fprintf ppf "phases:@.";
  List.iter (pp_stat_row ppf) r.r_phases;
  if r.r_ops <> [] then begin
    Format.fprintf ppf "per-ADT-op:@.";
    List.iter (fun ((o, f), st) -> pp_stat_row ppf (o ^ "." ^ f, st)) r.r_ops
  end

let pp_verdicts ppf vs =
  List.iter
    (fun v ->
      Format.fprintf ppf "  %-12s %a <= %a: measured %a  [%s]@." v.v_target.t_metric
        pp_quantile v.v_target.t_quantile pp_dur v.v_target.t_limit_s pp_dur v.v_actual
        (if v.v_ok then "ok" else "BREACH"))
    vs

let stat_json st =
  Json.Obj
    [
      ("count", Json.Int st.st_count);
      ("mean_s", Json.Float st.st_mean);
      ("p50_s", Json.Float st.st_p50);
      ("p99_s", Json.Float st.st_p99);
      ("p999_s", Json.Float st.st_p999);
      ("max_s", Json.Float st.st_max);
    ]

let to_json ?(targets = []) t =
  let r = report t in
  let verdicts = check r targets in
  Json.Obj
    [
      ("spans", Json.Int r.r_spans);
      ("aborts", Json.Int r.r_aborts);
      ("open", Json.Int r.r_open);
      ("emitted", Json.Int r.r_emitted);
      ("lost", Json.Int r.r_lost);
      ("local", stat_json r.r_local);
      ("cross", stat_json r.r_cross);
      ( "phases",
        Json.Obj (List.map (fun (p, st) -> (p, stat_json st)) r.r_phases) );
      ( "ops",
        Json.List
          (List.map
             (fun ((o, f), st) ->
               Json.Obj
                 [ ("object", Json.String o); ("op", Json.String f); ("stat", stat_json st) ])
             r.r_ops) );
      ( "slo",
        Json.List
          (List.map
             (fun v ->
               Json.Obj
                 [
                   ("metric", Json.String v.v_target.t_metric);
                   ("quantile", Json.Float v.v_target.t_quantile);
                   ("limit_s", Json.Float v.v_target.t_limit_s);
                   ("actual_s", Json.Float v.v_actual);
                   ("ok", Json.Bool v.v_ok);
                 ])
             verdicts) );
      ("healthy", Json.Bool (not (breached verdicts)));
    ]

(* ---- Chrome trace slices -------------------------------------------

   Phase-nested spans: one track per transaction, the whole span as an
   X event with each phase window as a shorter X event inside it —
   Chrome nests same-track overlapping slices automatically. *)

let chrome_slices ?(lookup = attrib_lookup) records =
  let slices = ref [] in
  let push sl = slices := sl :: !slices in
  let x ~name ~cat ~tid ~t0 ~t1 ~args =
    if t1 > t0 then
      push { Export.sl_name = name; sl_cat = cat; sl_tid = tid; sl_ts_ns = t0;
             sl_dur_ns = t1 - t0; sl_args = args }
  in
  let opens : (int, int * bool) Hashtbl.t = Hashtbl.create 256 in
  let waits : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let syncs : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let preps : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (r : Flight.record) ->
      let c = r.Flight.code in
      if c = Span.c_begin then Hashtbl.replace opens r.txn (r.time, false)
      else if c = Span.c_cross_begin then (
        match Hashtbl.find_opt opens r.txn with
        | Some (t0, _) -> Hashtbl.replace opens r.txn (t0, true)
        | None -> Hashtbl.replace opens r.txn (r.time, true))
      else if c = Span.c_lock_wait then Hashtbl.replace waits r.txn r.time
      else if c = Span.c_lock_resume then (
        match Hashtbl.find_opt waits r.txn with
        | Some t0 ->
          Hashtbl.remove waits r.txn;
          x ~name:"lock wait" ~cat:"phase" ~tid:r.txn ~t0 ~t1:r.time
            ~args:[ ("object", Attrib.object_name ~obj:r.aux32) ]
        | None -> ())
      else if c = Span.c_sync_wait then Hashtbl.replace syncs r.txn r.time
      else if c = Span.c_sync_done then (
        match Hashtbl.find_opt syncs r.txn with
        | Some t0 ->
          Hashtbl.remove syncs r.txn;
          x ~name:"fsync wait" ~cat:"phase" ~tid:r.txn ~t0 ~t1:r.time ~args:[]
        | None -> ())
      else if c = Span.c_op then
        let obj, fam = lookup ~obj:r.aux32 ~inv:r.aux16 in
        x ~name:(obj ^ "." ^ fam) ~cat:"op" ~tid:r.txn ~t0:(r.time - r.arg) ~t1:r.time
          ~args:[]
      else if c = Span.c_prepare then Hashtbl.replace preps (r.txn, r.aux16) r.time
      else if c = Span.c_prepared then (
        match Hashtbl.find_opt preps (r.txn, r.aux16) with
        | Some t0 ->
          Hashtbl.remove preps (r.txn, r.aux16);
          x ~name:(Printf.sprintf "prepare s%d" r.aux16) ~cat:"2pc" ~tid:r.txn ~t0
            ~t1:r.time
            ~args:[ ("ts", string_of_int r.arg) ]
        | None -> ())
      else if c = Span.c_decide then
        push { Export.sl_name = Printf.sprintf "decide@%d" r.arg; sl_cat = "2pc";
               sl_tid = r.txn; sl_ts_ns = r.time; sl_dur_ns = 0; sl_args = [] }
      else if c = Span.c_commit || c = Span.c_cross_commit || c = Span.c_abort
              || c = Span.c_cross_abort then (
        match Hashtbl.find_opt opens r.txn with
        | Some (t0, cross) ->
          Hashtbl.remove opens r.txn;
          let outcome =
            if c = Span.c_commit || c = Span.c_cross_commit then "commit" else "abort"
          in
          x
            ~name:(Printf.sprintf "T%d %s" r.txn outcome)
            ~cat:(if cross then "span.cross" else "span.local")
            ~tid:r.txn ~t0 ~t1:r.time
            ~args:(if outcome = "commit" then [ ("ts", string_of_int r.arg) ] else [])
        | None -> ())
      else ())
    records;
  List.rev !slices
