let c_passes = Metrics.counter "audit.passes"
let c_violations = Metrics.counter "audit.violations"
let c_cycles = Metrics.counter "audit.cycles"
let c_window_lost = Metrics.counter "audit.window_lost"

let audits : (string, unit -> (unit, string) result) Hashtbl.t = Hashtbl.create 16
let audits_mu = Mutex.create ()

let register_audit ~name f =
  Mutex.protect audits_mu (fun () -> Hashtbl.replace audits name f)

let unregister_audit ~name =
  Mutex.protect audits_mu (fun () -> Hashtbl.remove audits name)

let skip_window_lost () =
  Metrics.add_always c_window_lost 1;
  Ok ()

let violation_count = Atomic.make 0
let last_violation = Atomic.make None

let violation name reason =
  Atomic.incr violation_count;
  Atomic.set last_violation (Some (Printf.sprintf "%s: %s" name reason));
  Metrics.add_always c_violations 1

let violations () = Atomic.get violation_count
let healthy () = violations () = 0
let last_error () = Atomic.get last_violation

(* The closures run outside the table mutex: a replay check walks a
   whole epoch window and may take milliseconds — registration must not
   block behind it. *)
let snapshot_audits () =
  Mutex.protect audits_mu (fun () ->
      Hashtbl.fold (fun name f acc -> (name, f) :: acc) audits []
      |> List.sort (fun (a, _) (b, _) -> compare a b))

let run_audits () =
  List.fold_left
    (fun bad (name, f) ->
      match f () with
      | Ok () ->
        Metrics.add_always c_passes 1;
        bad
      | Error reason ->
        violation name reason;
        bad + 1
      | exception exn ->
        violation name (Printexc.to_string exn);
        bad + 1)
    0 (snapshot_audits ())

let run_cycle_check ring =
  let r = Waitfor.analyze (Trace.entries ring) in
  let cycles = List.length r.Waitfor.cycles in
  if cycles > 0 then begin
    Metrics.add_always c_cycles cycles;
    violation "waitfor"
      (Format.asprintf "%d wait-for cycle(s): %a" cycles Waitfor.pp r)
  end;
  if cycles > 0 then 1 else 0

let run_once ?(ring = Trace.global) () = run_audits () + run_cycle_check ring

type t = {
  thread : Thread.t;
  stopping : bool Atomic.t;
  tick_count : int Atomic.t;
}

(* Monotonic time of the last completed audit pass.  The audit-lag
   gauge derives from it at scrape time: a sampler wedged inside a
   slow replay check (or starved of the domain lock) shows up as a
   growing lag long before /health notices anything. *)
let last_tick_ns = Atomic.make 0

let audit_lag_s () =
  let t = Atomic.get last_tick_ns in
  if t = 0 then 0. else Clock.ns_to_s (Clock.now_ns () - t)

let start ?(period_ms = 250) ?(ring = Trace.global) () =
  let stopping = Atomic.make false in
  let tick_count = Atomic.make 0 in
  let period_s = float_of_int (max 1 period_ms) /. 1000. in
  let last_cursor = ref (-1) in
  Atomic.set last_tick_ns (Clock.now_ns ());
  Gauge.callback "audit_lag_seconds" audit_lag_s;
  (* Entries the watched ring overwrote before any sampler tick could
     read them — the live counterpart of the window_lost skip count. *)
  Gauge.callback "trace_window_lost" (fun () -> float_of_int (Trace.dropped ring));
  let loop () =
    while not (Atomic.get stopping) do
      let bad = run_audits () in
      let c = Trace.cursor ring in
      let bad =
        if c <> !last_cursor then begin
          last_cursor := c;
          bad + run_cycle_check ring
        end
        else bad
      in
      ignore bad;
      Atomic.incr tick_count;
      Atomic.set last_tick_ns (Clock.now_ns ());
      Thread.delay period_s
    done
  in
  { thread = Thread.create loop (); stopping; tick_count }

let stop t =
  if not (Atomic.exchange t.stopping true) then Thread.join t.thread

let ticks t = Atomic.get t.tick_count
