(** Process-wide metrics registry: named counters and fixed-bucket
    latency histograms.

    Built for the multicore runtime: every instrument is sharded into a
    fixed number of per-domain cells (the shard is picked by domain id),
    so concurrent increments from different domains touch different
    atomics and never contend on a lock.  Reads ({!value}, {!dump})
    merge the shards; they are monotonic snapshots, not linearizable
    cuts — fine for operational metrics.

    Increments and observations are gated on {!Control.enabled}: with
    the switch off they cost one atomic load and a branch (the
    "no-op registry" baseline measured by the [obs-overhead] bechamel
    group).

    Registration ({!counter}, {!histogram}) takes a mutex and should be
    done once per instrument (module initialisation, object creation) —
    the returned handle is the fast path.  Registering the same name
    twice returns the same instrument. *)

type counter
type histogram

val counter : string -> counter
(** Find or create the counter with this name.  Raises
    [Invalid_argument] if the name is already registered as a
    histogram. *)

val incr : counter -> unit
val add : counter -> int -> unit

val add_always : counter -> int -> unit
(** Like {!add} but not gated on {!Control.enabled}.  For audit
    verdicts ([audit.violations] and friends): a violation must reach
    the scrape even if the operator toggled the fast-path switch off. *)

val value : counter -> int

val histogram : ?bounds:float array -> string -> histogram
(** Find or create a histogram.  [bounds] are ascending bucket upper
    bounds in seconds (defaults span 1us .. 100ms); an implicit +inf
    bucket catches the rest.  [bounds] is ignored when the name already
    exists. *)

val observe : histogram -> float -> unit
(** Record one observation, in seconds. *)

val count : histogram -> int
val sum : histogram -> float
(** Total observed seconds. *)

val buckets : histogram -> (float option * int) list
(** Per-bucket counts, ascending; [None] is the +inf bucket. *)

val quantile : histogram -> float -> float
(** [quantile h q] estimates the [q]-quantile (clamped to [0..1]) of the
    observed values in seconds, linearly interpolated within the bucket
    that crosses the target rank.  Observations in the +inf bucket
    resolve to the largest finite bound (a lower bound on the true
    value).  [0.] when the histogram is empty. *)

val counters : unit -> (string * int) list
(** Every registered counter with its merged value, sorted by name. *)

val histograms : unit -> (string * histogram) list
(** Every registered histogram, sorted by name — the enumeration
    {!Registry} and {!Expose} render from. *)

val annotate : string -> string -> unit
(** Attach a run annotation (e.g. the workload seed) to the registry:
    a string key/value emitted by {!dump} and {!dump_json} alongside the
    instruments.  Re-annotating a key overwrites it.  Not gated on
    {!Control.enabled} — annotations describe the run configuration, not
    the measured execution. *)

val annotations : unit -> (string * string) list
(** All annotations, sorted by key. *)

val dump : Format.formatter -> unit -> unit
(** Text dump of every counter and histogram, sorted by name.
    Histograms with observations include interpolated p50/p95/p99. *)

val dump_json : Format.formatter -> unit -> unit
(** Line-oriented JSON dump: one object per line, instruments sorted by
    name ([{"type":"counter",...}] / [{"type":"histogram",...}] with
    buckets and p50/p95/p99) — a machine-diffable snapshot of the same
    registry {!dump} prints. *)

val reset : unit -> unit
(** Zero every instrument (registrations are kept).  Not atomic with
    respect to concurrent writers; call when quiescent (tests). *)
