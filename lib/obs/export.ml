(* Chrome trace_event JSON-array output.  Events are buffered as
   strings and written in one pass; the format does not require any
   particular event order.  String escaping goes through {!Json.escape}
   — the one escaping discipline every exporter shares. *)

let json_string = Json.escape

let obj_pid = 1
let txn_pid = 2

let chrome_trace ppf (entries : Trace.entry list) =
  let events = ref [] in
  let push e = events := e :: !events in
  let t0 = match entries with e :: _ -> e.Trace.time | [] -> 0 in
  let us t = float_of_int (t - t0) /. 1e3 in
  (* (obj, txn) -> (invocation code, start time) of the operation in
     flight; (obj, txn) -> (refusal, start time) of the stalled attempt *)
  let in_flight : (int * int, int * int) Hashtbl.t = Hashtbl.create 64 in
  let stalled : (int * int, Trace.refusal * int) Hashtbl.t = Hashtbl.create 64 in
  let objs : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let txns : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let close_op ~obj ~txn ~res_label time =
    match Hashtbl.find_opt in_flight (obj, txn) with
    | None -> ()
    | Some (inv, since) ->
      Hashtbl.remove in_flight (obj, txn);
      push
        (Printf.sprintf
           {|{"name":%s,"cat":"op","ph":"X","pid":%d,"tid":%d,"ts":%.3f,"dur":%.3f,"args":{"txn":%d%s}}|}
           (json_string (Attrib.label ~obj ~kind:Attrib.Inv inv))
           obj_pid obj (us since)
           (Float.max 0.001 (us time -. us since))
           txn res_label)
  in
  let close_stall ~obj ~txn ~outcome time =
    match Hashtbl.find_opt stalled (obj, txn) with
    | None -> ()
    | Some ((r : Trace.refusal), since) ->
      Hashtbl.remove stalled (obj, txn);
      let name =
        Printf.sprintf "%s vs %s"
          (Attrib.label ~obj ~kind:Attrib.Op r.Trace.requested)
          (Attrib.label ~obj ~kind:Attrib.Op r.Trace.held)
      in
      push
        (Printf.sprintf
           {|{"name":%s,"cat":"blocked","ph":"X","pid":%d,"tid":%d,"ts":%.3f,"dur":%.3f,"args":{"object":%s,"holder":%s,"outcome":"%s"}}|}
           (json_string name) txn_pid txn (us since)
           (Float.max 0.001 (us time -. us since))
           (json_string (Attrib.object_name ~obj))
           (match r.Trace.holder with Some h -> Printf.sprintf "%d" h | None -> "null")
           outcome)
  in
  let instant ~pid ~tid ~name ~cat time =
    push
      (Printf.sprintf
         {|{"name":%s,"cat":"%s","ph":"i","s":"t","pid":%d,"tid":%d,"ts":%.3f}|}
         (json_string name) cat pid tid (us time))
  in
  List.iter
    (fun (e : Trace.entry) ->
      Hashtbl.replace objs e.obj ();
      Hashtbl.replace txns e.txn ();
      match e.event with
      | Trace.Invoke c ->
        (* a refused attempt leaves the invocation pending; only a fresh
           invoke opens a span *)
        if not (Hashtbl.mem in_flight (e.obj, e.txn)) then
          Hashtbl.add in_flight (e.obj, e.txn) (c, e.time)
      | Trace.Respond c ->
        close_op ~obj:e.obj ~txn:e.txn
          ~res_label:
            (Printf.sprintf ",\"response\":%s"
               (json_string (Attrib.label ~obj:e.obj ~kind:Attrib.Res c)))
          e.time
      | Trace.Lock_granted -> close_stall ~obj:e.obj ~txn:e.txn ~outcome:"granted" e.time
      | Trace.Lock_refused r ->
        instant ~pid:obj_pid ~tid:e.obj ~cat:"refusal"
          ~name:
            (Printf.sprintf "refused T%d: %s" e.txn
               (Attrib.label ~obj:e.obj ~kind:Attrib.Op r.Trace.requested))
          e.time;
        if not (Hashtbl.mem stalled (e.obj, e.txn)) then
          Hashtbl.add stalled (e.obj, e.txn) (r, e.time)
      | Trace.Blocked ->
        instant ~pid:obj_pid ~tid:e.obj ~cat:"blocked"
          ~name:(Printf.sprintf "no legal response for T%d" e.txn)
          e.time
      | Trace.Retry -> ()
      | Trace.Commit ts ->
        Hashtbl.fold (fun (o, q) _ acc -> if q = e.txn then o :: acc else acc) stalled []
        |> List.iter (fun o -> close_stall ~obj:o ~txn:e.txn ~outcome:"commit" e.time);
        instant ~pid:txn_pid ~tid:e.txn ~cat:"commit"
          ~name:(Printf.sprintf "commit@%d" ts)
          e.time
      | Trace.Abort ->
        Hashtbl.fold (fun (o, q) _ acc -> if q = e.txn then o :: acc else acc) stalled []
        |> List.iter (fun o -> close_stall ~obj:o ~txn:e.txn ~outcome:"abort" e.time);
        instant ~pid:txn_pid ~tid:e.txn ~cat:"abort" ~name:"abort" e.time
      | Trace.Horizon_advanced ts ->
        instant ~pid:obj_pid ~tid:e.obj ~cat:"compaction"
          ~name:(Printf.sprintf "horizon->%d" ts)
          e.time
      | Trace.Forgotten n ->
        instant ~pid:obj_pid ~tid:e.obj ~cat:"compaction"
          ~name:(Printf.sprintf "forgotten=%d" n)
          e.time)
    entries;
  (* Run annotations (the workload seed, configuration) ride along as a
     metadata event, so a saved timeline records which run produced it. *)
  (match Metrics.annotations () with
  | [] -> ()
  | notes ->
    push
      (Json.to_string
         (Json.Obj
            [
              ("name", Json.String "run_info");
              ("ph", Json.String "M");
              ("pid", Json.Int 0);
              ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) notes));
            ])));
  (* name the tracks *)
  push
    (Printf.sprintf
       {|{"name":"process_name","ph":"M","pid":%d,"args":{"name":"objects"}}|} obj_pid);
  push
    (Printf.sprintf
       {|{"name":"process_name","ph":"M","pid":%d,"args":{"name":"transactions"}}|}
       txn_pid);
  Hashtbl.iter
    (fun o () ->
      push
        (Printf.sprintf
           {|{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}|}
           obj_pid o
           (json_string (Attrib.object_name ~obj:o))))
    objs;
  Hashtbl.iter
    (fun q () ->
      push
        (Printf.sprintf
           {|{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"T%d"}}|}
           txn_pid q q))
    txns;
  Format.fprintf ppf "[@.";
  let rec emit = function
    | [] -> ()
    | [ last ] -> Format.fprintf ppf "%s@." last
    | e :: rest ->
      Format.fprintf ppf "%s,@." e;
      emit rest
  in
  emit (List.rev !events);
  Format.fprintf ppf "]@."

(* ---- span slices --------------------------------------------------

   The flight-recorder exporter ({!Profile.chrome_slices}) builds these
   generic slices; rendering lives here so the trace-event framing and
   escaping discipline stay in one module.  One track per transaction
   under a "spans" process: the whole span is the longest slice and each
   phase window a shorter one — Chrome nests overlapping same-track
   complete-spans automatically, giving the phase-nested view. *)

let span_pid = 3

type slice = {
  sl_name : string;
  sl_cat : string;
  sl_tid : int;
  sl_ts_ns : int;
  sl_dur_ns : int;
  sl_args : (string * string) list;
}

let chrome_spans ppf slices =
  let t0 =
    List.fold_left (fun acc s -> min acc s.sl_ts_ns) max_int slices
  in
  let t0 = if t0 = max_int then 0 else t0 in
  let us t = float_of_int (t - t0) /. 1e3 in
  let events = ref [] in
  let push e = events := e :: !events in
  let tids : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun s ->
      Hashtbl.replace tids s.sl_tid ();
      let args =
        match s.sl_args with
        | [] -> ""
        | kvs ->
          Printf.sprintf {|,"args":{%s}|}
            (String.concat ","
               (List.map
                  (fun (k, v) -> Printf.sprintf "%s:%s" (json_string k) (json_string v))
                  kvs))
      in
      if s.sl_dur_ns = 0 then
        push
          (Printf.sprintf
             {|{"name":%s,"cat":"%s","ph":"i","s":"t","pid":%d,"tid":%d,"ts":%.3f%s}|}
             (json_string s.sl_name) s.sl_cat span_pid s.sl_tid (us s.sl_ts_ns) args)
      else
        push
          (Printf.sprintf
             {|{"name":%s,"cat":"%s","ph":"X","pid":%d,"tid":%d,"ts":%.3f,"dur":%.3f%s}|}
             (json_string s.sl_name) s.sl_cat span_pid s.sl_tid (us s.sl_ts_ns)
             (Float.max 0.001 (float_of_int s.sl_dur_ns /. 1e3))
             args))
    slices;
  push
    (Printf.sprintf {|{"name":"process_name","ph":"M","pid":%d,"args":{"name":"spans"}}|}
       span_pid);
  Hashtbl.iter
    (fun tid () ->
      push
        (Printf.sprintf
           {|{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"T%d"}}|}
           span_pid tid tid))
    tids;
  Format.fprintf ppf "[@.";
  let rec emit = function
    | [] -> ()
    | [ last ] -> Format.fprintf ppf "%s@." last
    | e :: rest ->
      Format.fprintf ppf "%s,@." e;
      emit rest
  in
  emit (List.rev !events);
  Format.fprintf ppf "]@."

let metrics_json = Metrics.dump_json
