(** Always-on background auditor: the protocol checks that used to run
    only at the end of an experiment ([Replay.check] atomicity, the
    {!Waitfor} cycle check) run continuously against a live workload.

    Subsystems register {e audit closures} — a closure owns everything
    it needs (an object handle, its epoch's trace ring) and returns
    [Ok ()] or [Error reason].  [Runtime.Atomic_obj.register_audit]
    wires an object's replay check; [Sim.Live] re-registers per epoch
    under stable names so the audit set stays bounded.  Registration is
    replace-on-name.

    Each tick ({!run_once}) the sampler runs every registered closure,
    then — if the watched ring's cursor advanced since the previous
    tick — runs {!Waitfor.analyze} over the ring's surviving window and
    treats any wait-for cycle as a violation (wait-die is supposed to
    make the wait-for graph acyclic; a cycle means the protocol broke).
    Verdicts go to counters via {!Metrics.add_always}, so a mid-run
    [Control] toggle cannot hide a violation:

    - [audit.passes] — closures that returned [Ok]
    - [audit.violations] — closures that returned [Error], plus cycles
      (exported as [hcc_audit_violations_total])
    - [audit.cycles] — wait-for cycles found
    - [audit.window_lost] — audits skipped because their trace window
      wrapped (a truncated window cannot be replay-checked soundly;
      skipping is honest, silently passing is not)

    {!healthy} is what the [/health] endpoint serves: [true] iff no
    violation has ever been counted in this process. *)

val register_audit : name:string -> (unit -> (unit, string) result) -> unit
val unregister_audit : name:string -> unit

val skip_window_lost : unit -> (unit, string) result
(** For registrants whose window wrapped: counts [audit.window_lost]
    and returns [Ok] — register [skip_window_lost] in place of the real
    check to record the gap without a spurious verdict. *)

val run_once : ?ring:Trace.t -> unit -> int
(** One audit pass; returns the number of {e new} violations it found.
    [ring] (default {!Trace.global}) is the window for the cycle
    check. *)

val violations : unit -> int
(** Total violations counted since process start. *)

val healthy : unit -> bool

val last_error : unit -> string option
(** The most recent violation's description, for [/health]'s body. *)

type t

val start : ?period_ms:int -> ?ring:Trace.t -> unit -> t
(** Spawn the auditor thread; {!run_once} every [period_ms] (default
    250) until {!stop}.  The cycle check is incremental: a tick where
    the ring cursor did not move skips the window scan.

    Also registers two callback gauges for [/metrics] and the [top]
    dashboard: [audit_lag_seconds] (time since the last completed
    audit pass — a wedged or starved sampler shows as growing lag) and
    [trace_window_lost] (entries the watched ring overwrote before a
    tick could read them, {!Trace.dropped}). *)

val audit_lag_s : unit -> float
(** Seconds since the last completed audit pass ([0.] before the first
    {!start}). *)

val stop : t -> unit
(** Signal and join the auditor thread.  Idempotent. *)

val ticks : t -> int
(** Completed audit passes — lets tests wait for "at least one tick". *)
