(** Conflict attribution: fold a trace window into per-object conflict
    matrices and a contention ranking.

    The paper's Definition 3 argument is that a Conflict relation
    strictly weaker than failure-to-commute admits more concurrency; a
    refusal count alone cannot show {e which} entries of the relation
    cost anything.  Every {!Trace.Lock_refused} carries the interned
    (requested-op, held-op) pair, so folding a window attributes each
    refusal — and the wall-clock time the requester then spent blocked —
    to one cell of the installed Conflict relation.  Summing the cells
    gives the relation's {e fired-conflict mass} on that workload: the
    empirical counterpart of the commutativity-vs-dependency gap
    (Theorem 28 guarantees the hybrid relation's mass can only be
    smaller, entry for entry, than commutativity's on the same
    workload).

    {1 Label registry}

    Trace entries carry opaque interned codes; the emitting object is
    the only party that can decode them.  Objects therefore register a
    human-readable label per (object, code-space, code) at interning
    time ([Runtime.Atomic_obj] does this), and reporting here looks the
    labels up — so matrices stay readable after the objects are gone. *)

type kind = Inv | Res | Op
(** The three per-object code spaces used by trace entries:
    invocation codes ({!Trace.Invoke}), response codes
    ({!Trace.Respond}) and operation-pair codes ({!Trace.refusal}). *)

val register_label : obj:int -> kind:kind -> code:int -> string -> unit
(** Record the label for a code; first registration wins.  Thread-safe. *)

val register_object : obj:int -> ?cell:int -> string -> unit
(** Record an object's display name (used by reports and {!Export}).
    [cell] additionally marks the object as one cell of a partitioned
    logical object ({!Spec.Partition}); matrix rows for such objects are
    per-cell rows, and {!object_cell} recovers the grouping. *)

val object_cell : obj:int -> int option
(** The cell key registered for an object, if it is a partition cell. *)

val label : obj:int -> kind:kind -> int -> string
(** The registered label, or ["op#N"]/["inv#N"]/["res#N"] when none. *)

val object_name : obj:int -> string
(** The registered object name, or ["obj#N"]. *)

val export_objects : unit -> (int * string) list
(** Every registered (object key, name), sorted — the flight recorder's
    metadata chunk, so offline decoders can resolve keys. *)

val export_labels : unit -> (int * kind * int * string) list
(** Every registered label as [(obj, kind, code, label)], sorted. *)

(** {1 Conflict matrices} *)

type cell = { refusals : int; blocked_ns : int }
(** One entry of a conflict matrix: how many times this (requested,
    held) operation pair fired a refusal, and the total monotonic-clock
    time transactions spent between such a refusal and the eventual
    grant (or their completion) on that object. *)

type t

val of_entries : Trace.entry list -> t
(** Fold a trace window (oldest first, as {!Trace.entries} returns it).
    A refusal opens a blocked window for its (object, transaction);
    the window closes at that transaction's next [Lock_granted] on the
    object, or its [Commit]/[Abort]; windows still open at the end of
    the trace close at the last entry's timestamp. *)

val total_refusals : t -> int
(** The fired-conflict mass of the window: every refusal, summed over
    all objects and operation pairs. *)

val total_blocked_ns : t -> int

val cells : t -> ((int * int * int) * cell) list
(** Every non-empty matrix cell as [((obj, requested, held), cell)],
    most refusals first. *)

val labelled_cells : t -> ((string * string * string) * cell) list
(** {!cells} with codes resolved through the label registry:
    [((object, requested-op, held-op), cell)], most refusals first.
    Cells from different objects that share all three labels are
    merged. *)

val holders : t -> (int * int) list
(** Contention ranking by lock holder: transaction id to the number of
    refusals it caused while holding a lock, most refusals first.
    Refusals with an unknown holder are not counted. *)

val pp : ?top:int -> Format.formatter -> t -> unit
(** Print the top [top] (default 10) labelled cells with refusal counts
    and blocked time. *)
