(** Minimal threaded HTTP/1.0 introspection server over [Unix] sockets
    — no web-framework dependency, one connection per request, close
    after responding.  It exists to serve {!Expose.render} and
    {!Registry.snapshot} from a live process; it is {e not} a
    general-purpose web server (no keep-alive, no request bodies, 8 KiB
    request cap, 5 s socket timeouts).

    {!default_routes} wires the standard endpoints:

    - [/metrics] — Prometheus text exposition ({!Expose.render})
    - [/locks] — JSON array, ["locks"] snapshot channel (per-object
      lock tables)
    - [/horizon] — JSON array, ["horizon"] channel (per-object horizon
      and clock lag) plus the manager clocks
    - [/waitfor] — {!Waitfor.analyze} of the watched ring, as JSON
    - [/health] — [200 ok] while {!Sampler.healthy}, else [503] with
      the violation count and last reason
    - [/control] — observability switch: [GET /control] reports it,
      [/control?enabled=true|false] sets it, [/control?toggle=1] flips
      it; responds [{"enabled": bool}]
    - [/slo] — only when an [slo] provider is given: the span
      profiler's JSON report with SLO verdicts ({!Profile.to_json})

    The accept loop runs on one {!Thread}; handlers run inline on it.
    Handler exceptions become [500] responses rather than killing the
    loop.

    The server meters itself: [server.requests] (counter),
    [server.latency<path>] (per-endpoint request-latency histogram,
    one per served route plus ["/other"] for misses) and the
    [server_open_connections] gauge all appear in its own
    [/metrics]. *)

type request = { path : string; query : (string * string) list }

type response = { status : int; content_type : string; body : string }

val respond : ?status:int -> ?content_type:string -> string -> response
(** Defaults: [status 200], [content_type "text/plain; charset=utf-8"]. *)

val respond_json : ?status:int -> Json.t -> response

val default_routes :
  ?ring:Trace.t ->
  ?slo:(unit -> Json.t) ->
  unit ->
  (string * (request -> response)) list
(** [ring] (default {!Trace.global}) feeds [/waitfor]; [slo] (none by
    default) provides the [/slo] body — pass
    [fun () -> Profile.to_json ~targets agg]. *)

type t

val start : ?port:int -> ?routes:(string * (request -> response)) list -> unit -> t
(** Bind [127.0.0.1:port] (default [0] — ephemeral, read it back with
    {!port}), listen, and spawn the accept thread.  [routes] defaults to
    {!default_routes}; an unknown path is [404]. *)

val port : t -> int

val stop : t -> unit
(** Close the listen socket and join the accept thread.  Idempotent. *)

val http_get : ?timeout_s:float -> port:int -> string -> (int * string, string) result
(** Tiny matching client for the [top] dashboard and tests:
    [GET path] against [127.0.0.1:port], returning status and body. *)
