(** Always-on binary flight recorder.

    The manticore [log-gen] idiom: preassigned event codes, fixed-width
    32-byte records, one cursor bump per event, and {e no allocation on
    the emit path}.  Each domain writes into its own fixed-size ring
    (single writer — transactions execute on exactly one domain thread
    at a time); a background flusher copies unflushed windows out,
    appends them as CRC-framed chunks to [flight.bin], and optionally
    feeds an online observer (the {!Profile} aggregator behind the
    [/slo] endpoint).  Records the writer laps before the flusher gets
    there are counted in {!lost}, never silently dropped.

    Two recording tiers keep the always-on bar honest: level 1 emits
    span phase marks only (two records for a WAL-off transaction —
    the [flight-overhead] bench gates this tier's throughput cost at
    < 5%); level 2 adds a per-operation record for per-ADT-op latency
    attribution during dedicated profiling runs. *)

type record = {
  dom : int;  (** emitting domain (chunk metadata, not stored per record) *)
  code : int;  (** event code ({!Span}) *)
  aux16 : int;  (** shard stripe or interned invocation code *)
  aux32 : int;  (** object key *)
  txn : int;  (** transaction id (global id for cross-shard branches) *)
  time : int;  (** {!Clock.now_ns} at emit *)
  arg : int;  (** code-specific: ts, LSN, or duration in ns *)
}

val rec_bytes : int

(** {1 Recording switch} *)

val set_level : int -> unit
(** 0 = off, 1 = span marks (the always-on tier), 2 = marks + per-op
    detail.  Emission is additionally gated on {!Control.enabled}. *)

val recording : unit -> bool
val detailed : unit -> bool

val set_capacity : int -> unit
(** Per-domain ring capacity in records for buffers created after the
    call, rounded up to a power of two (default 16384; 512 KiB per
    domain). *)

(** {1 Emission} *)

val emit : code:int -> aux16:int -> aux32:int -> txn:int -> arg:int -> unit
(** Stamp one record into the calling domain's ring.  No-op unless
    {!recording}.  Reads the monotonic clock once; performs no
    allocation. *)

val emitted : unit -> int
(** Records ever emitted, summed over every domain ring. *)

val lost : unit -> int
(** Records overwritten before the flusher could copy them out. *)

(** {1 Flusher} *)

type t

val start :
  ?period_ms:int -> ?path:string -> ?observer:(record -> unit) -> unit -> t
(** Start the background flusher.  With [path] every drained window is
    appended to the file as a CRC-framed chunk (the file is created,
    truncated, and stamped with the format magic); with [observer] each
    drained record is also handed to the callback in emit order per
    domain.  Arms the recorder at level 1 if it was off. *)

val stop : t -> unit
(** Final drain, append the {!Attrib} label-table metadata chunk, and
    close the file. *)

val flush_once : unit -> unit
(** One synchronous drain of every ring (tests, and the flusher's own
    loop body). *)

(** {1 Offline decoding} *)

type meta = {
  m_objects : (int * string) list;
  m_labels : (int * int * int) list * (int * int * int -> string option);
      (** keys (obj, kind, code) — kind 0=inv 1=res 2=op — and lookup *)
}

val empty_meta : meta
val meta_object_name : meta -> int -> string
val meta_label : meta -> obj:int -> kind:int -> int -> string

type tail = Clean | Torn of int

val parse : string -> record list * meta * tail
(** Decode a flight file image.  Records come back in file order (per
    domain chunk, emit order).  The first framing or CRC failure ends
    the parse; everything at or after that offset is the torn tail a
    killed writer leaves behind. *)

val read_file : string -> record list * meta * tail

(** {1 Test support} *)

val reset_for_tests : unit -> unit
(** Zero every ring cursor and the lost counter.  Only sound while no
    domain is emitting and no flusher runs. *)
