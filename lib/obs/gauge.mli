(** Process-wide gauges: instantaneous values alongside {!Metrics}'s
    monotone counters and histograms.

    Two kinds share one namespace of [(name, labels)] pairs:

    - {e stored} gauges ({!make}) are integer-valued and sharded per
      domain exactly like {!Metrics} counters, so {!add}/{!incr}/{!decr}
      on the hot path is one uncontended [fetch_and_add].  Use these for
      level-style quantities maintained by many domains (transactions
      currently waiting, bytes live).
    - {e callback} gauges ({!callback}) are evaluated at read time.  Use
      these to expose state that already lives elsewhere under its own
      lock (an object's live-operation count, a log's file size);
      registering again under the same [(name, labels)] replaces the
      previous callback, so a long-lived process that recreates its
      objects keeps a bounded gauge set.

    Unlike counters, gauge updates are {e not} gated on
    {!Control.enabled}: skipping half of an incr/decr pair while the
    switch flips would corrupt the level permanently, and the cost is a
    single sharded add.

    Labels are sorted at registration; label {e values} are arbitrary
    strings (operation labels with quotes and newlines included) —
    escaping is the exposition layer's job ({!Expose}). *)

type t

type sample = { name : string; labels : (string * string) list; value : float }

val make : ?labels:(string * string) list -> string -> t
(** Find or create the stored gauge with this name and label set. *)

val add : t -> int -> unit
val incr : t -> unit
val decr : t -> unit

val set : t -> int -> unit
(** Overwrite the gauge's value.  Single-writer use only (it collapses
    the shards); do not mix with {!add} from other domains. *)

val value : t -> int

val callback : ?labels:(string * string) list -> string -> (unit -> float) -> unit
(** Register (or replace) a read-time gauge.  The callback runs outside
    the gauge registry lock, so it may take its own locks; an exception
    makes the sample NaN (rendered as absent by {!Expose}). *)

val remove_callback : ?labels:(string * string) list -> string -> unit

val samples : unit -> sample list
(** Every gauge evaluated now, sorted by name then labels. *)

val reset : unit -> unit
(** Zero stored gauges and drop all callbacks (tests). *)
