type report = {
  entries : int;
  refusals : int;
  edges : int;
  max_width : int;
  cycles : int list list;
  blocked_ns : (int * int) list;
  deaths : (int * int) list;
  longest_death_chain : int list;
}

(* One open stalled attempt: the requester [txn] on [obj] was refused,
   currently by [holder] (None once the holder completed or was never
   known), since [since].  A refusal alone is only a {e candidate} edge:
   under wait-die the requester may die instead of waiting, and the
   trace records the refusal either way.  Only the requester's
   subsequent [Retry] — which {!Runtime.Retry} emits strictly after the
   wait-die decision to wait — promotes the candidate to a live
   waits-for edge ([live]); a dying transaction never retries, so its
   refusal never becomes an edge. *)
type wait = { mutable holder : int option; mutable live : bool; since : int }

let analyze (entries : Trace.entry list) =
  let waits : (int * int, wait) Hashtbl.t = Hashtbl.create 64 in
  let completed : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let blocked : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let n_entries = ref 0 in
  let n_refusals = ref 0 in
  let n_edges = ref 0 in
  let max_width = ref 0 in
  let cycles = ref [] in
  let deaths = ref [] in
  let adjacency () =
    (* requester -> holders, derived from the confirmed live waits *)
    let adj = Hashtbl.create 16 in
    Hashtbl.iter
      (fun (_, q) w ->
        match w.holder with
        | Some h when w.live ->
          Hashtbl.replace adj q (h :: Option.value ~default:[] (Hashtbl.find_opt adj q))
        | Some _ | None -> ())
      waits;
    adj
  in
  let find_cycle ~from ~target =
    (* A path target ->* from means the new edge from -> target closes a
       loop; return the loop as a transaction list. *)
    let adj = adjacency () in
    let rec dfs visited path q =
      if q = from then Some (List.rev (q :: path))
      else if List.mem q visited then None
      else
        List.fold_left
          (fun acc h ->
            match acc with
            | Some _ -> acc
            | None -> dfs (q :: visited) (q :: path) h)
          None
          (Option.value ~default:[] (Hashtbl.find_opt adj q))
    in
    dfs [] [] target
  in
  let live_width () =
    Hashtbl.fold (fun _ w acc -> if w.live && w.holder <> None then acc + 1 else acc) waits 0
  in
  let charge_blocked txn ns =
    Hashtbl.replace blocked txn (ns + Option.value ~default:0 (Hashtbl.find_opt blocked txn))
  in
  let close_wait key time =
    match Hashtbl.find_opt waits key with
    | None -> ()
    | Some w ->
      Hashtbl.remove waits key;
      charge_blocked (snd key) (max 0 (time - w.since))
  in
  let last_time = ref 0 in
  List.iter
    (fun (e : Trace.entry) ->
      incr n_entries;
      last_time := e.time;
      match e.event with
      | Trace.Lock_refused { holder; _ } ->
        incr n_refusals;
        let holder =
          (* an edge to a completed transaction is stale: its locks are
             already released, the next retry will not wait on it *)
          match holder with
          | Some h when (not (Hashtbl.mem completed h)) && h <> e.txn -> Some h
          | _ -> None
        in
        (match Hashtbl.find_opt waits (e.obj, e.txn) with
        | Some w ->
          (* same stalled attempt, re-refused (possibly by a new
             holder): back to candidate until the next Retry confirms
             the requester chose to wait again *)
          w.holder <- holder;
          w.live <- false
        | None -> Hashtbl.add waits (e.obj, e.txn) { holder; live = false; since = e.time })
      | Trace.Retry -> (
        (* the wait-die decision was "wait": the candidate edge (if the
           stall has a known holder) is now a real waits-for edge *)
        match Hashtbl.find_opt waits (e.obj, e.txn) with
        | Some ({ holder = Some h; live = false; _ } as w) ->
          w.live <- true;
          incr n_edges;
          (match find_cycle ~from:e.txn ~target:h with
          | Some loop -> cycles := loop :: !cycles
          | None -> ());
          max_width := max !max_width (live_width ())
        | Some _ | None -> ())
      | Trace.Lock_granted -> close_wait (e.obj, e.txn) e.time
      | Trace.Commit _ | Trace.Abort ->
        if e.event = Trace.Abort then
          (* dying while stalled on a holder (wait-die victims included:
             their refusal's candidate edge names the killer): record
             the death for cascade statistics before the windows close *)
          Hashtbl.iter
            (fun (_, q) w ->
              match w.holder with
              | Some h when q = e.txn -> deaths := (q, h) :: !deaths
              | _ -> ())
            waits;
        Hashtbl.fold (fun (o, q) _ acc -> if q = e.txn then (o, q) :: acc else acc) waits []
        |> List.iter (fun key -> close_wait key e.time);
        Hashtbl.replace completed e.txn ();
        (* the completing transaction holds no locks any more: edges
           pointing at it go stale *)
        Hashtbl.iter
          (fun _ w -> if w.holder = Some e.txn then w.holder <- None)
          waits
      | Trace.Invoke _ | Trace.Respond _ | Trace.Blocked
      | Trace.Horizon_advanced _ | Trace.Forgotten _ ->
        ())
    entries;
  Hashtbl.fold (fun key _ acc -> key :: acc) waits []
  |> List.iter (fun key -> close_wait key !last_time);
  let deaths = List.rev !deaths in
  let longest_death_chain =
    (* victims are unique (a transaction id aborts once), so chains
       follow the victim -> holder map; guard against stale holders
       resurrecting an earlier victim *)
    let next = Hashtbl.create 16 in
    List.iter (fun (v, h) -> if not (Hashtbl.mem next v) then Hashtbl.add next v h) deaths;
    let rec chain visited v =
      if List.mem v visited then []
      else
        match Hashtbl.find_opt next v with
        | Some h -> v :: chain (v :: visited) h
        | None -> [ v ]
    in
    List.fold_left
      (fun best (v, _) ->
        let c = chain [] v in
        if List.length c > List.length best then c else best)
      [] deaths
  in
  {
    entries = !n_entries;
    refusals = !n_refusals;
    edges = !n_edges;
    max_width = !max_width;
    cycles = List.rev !cycles;
    blocked_ns =
      Hashtbl.fold (fun q ns acc -> (q, ns) :: acc) blocked []
      |> List.sort (fun (_, a) (_, b) -> compare b a);
    deaths;
    longest_death_chain;
  }

let ok r = r.cycles = []

let pp ppf r =
  Format.fprintf ppf
    "wait-for: %d entries, %d refusals, %d edges (max width %d), %d cycles — %s@."
    r.entries r.refusals r.edges r.max_width (List.length r.cycles)
    (if ok r then "acyclic (wait-die invariant holds)" else "CYCLE DETECTED");
  List.iter
    (fun loop ->
      Format.fprintf ppf "  cycle: %s@."
        (String.concat " -> " (List.map (Printf.sprintf "T%d") loop)))
    r.cycles;
  (match r.blocked_ns with
  | [] -> ()
  | top ->
    Format.fprintf ppf "  most blocked:%s@."
      (String.concat ""
         (List.filteri (fun i _ -> i < 5) top
         |> List.map (fun (q, ns) ->
                Printf.sprintf " T%d=%.3fms" q (float_of_int ns *. 1e-6)))));
  if r.deaths <> [] then
    Format.fprintf ppf "  deaths while waiting: %d, longest death chain: %s@."
      (List.length r.deaths)
      (String.concat " -> " (List.map (Printf.sprintf "T%d") r.longest_death_chain))

let to_json r =
  Json.Obj
    [
      ("entries", Json.Int r.entries);
      ("refusals", Json.Int r.refusals);
      ("edges", Json.Int r.edges);
      ("max_width", Json.Int r.max_width);
      ("acyclic", Json.Bool (ok r));
      ( "cycles",
        Json.List (List.map (fun loop -> Json.List (List.map (fun q -> Json.Int q) loop)) r.cycles)
      );
      ( "blocked_ns",
        Json.List
          (List.map
             (fun (q, ns) -> Json.Obj [ ("txn", Json.Int q); ("ns", Json.Int ns) ])
             r.blocked_ns) );
      ( "deaths",
        Json.List
          (List.map
             (fun (victim, holder) ->
               Json.Obj [ ("victim", Json.Int victim); ("holder", Json.Int holder) ])
             r.deaths) );
      ( "longest_death_chain",
        Json.List (List.map (fun q -> Json.Int q) r.longest_death_chain) );
    ]
