module Make (A : Spec.Adt_sig.S) = struct
  module H = Model.History.Make (A)
  module At = Model.Atomicity.Make (A)

  let reconstruct ~obj ~decode_inv ~decode_res (entries : Trace.entry list) : H.t =
    List.filter_map
      (fun (e : Trace.entry) ->
        if e.obj <> obj then None
        else
          let q = Model.Txn.make e.txn in
          match e.event with
          | Trace.Invoke c -> Option.map (fun i -> H.Invoke (q, i)) (decode_inv c)
          | Trace.Respond c -> Option.map (fun r -> H.Respond (q, r)) (decode_res c)
          | Trace.Commit ts -> Some (H.Commit (q, ts))
          | Trace.Abort -> Some (H.Abort q)
          | Trace.Lock_granted | Trace.Lock_refused _ | Trace.Blocked | Trace.Retry
          | Trace.Horizon_advanced _ | Trace.Forgotten _ ->
            None)
      entries

  (* The precedes-inclusion check scans the history once per committed
     pair; past ~100 committed transactions that dominates everything
     else, so it is reserved for test-sized histories. *)
  let precedes_check_limit = 100

  let check ?(online = false) (h : H.t) =
    match H.well_formed h with
    | Error e -> Error ("ill-formed history: " ^ e)
    | Ok () ->
      if
        List.length (H.committed h) <= precedes_check_limit
        && not (H.timestamps_respect_precedes h)
      then Error "timestamp generation violates precedes(H) <= TS(H)"
      else if not (At.hybrid_atomic h) then Error "history is not hybrid atomic"
      else if online && not (At.online_hybrid_atomic h) then
        Error "history is not online hybrid atomic"
      else Ok ()
end
