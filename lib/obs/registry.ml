type histogram_snapshot = {
  h_buckets : (float option * int) list;
  h_count : int;
  h_sum : float;
  h_p50 : float;
  h_p95 : float;
  h_p99 : float;
}

type instrument =
  | Counter of string * int
  | Gauge of Gauge.sample
  | Histogram of string * histogram_snapshot

let instruments () =
  let counters = List.map (fun (n, v) -> Counter (n, v)) (Metrics.counters ()) in
  let histograms =
    List.map
      (fun (n, h) ->
        Histogram
          ( n,
            {
              h_buckets = Metrics.buckets h;
              h_count = Metrics.count h;
              h_sum = Metrics.sum h;
              h_p50 = Metrics.quantile h 0.50;
              h_p95 = Metrics.quantile h 0.95;
              h_p99 = Metrics.quantile h 0.99;
            } ))
      (Metrics.histograms ())
  in
  let gauges = List.map (fun s -> Gauge s) (Gauge.samples ()) in
  counters @ gauges @ histograms

(* ---- snapshot channels ---- *)

(* Channel providers are replace-on-name: a long-lived server whose
   workload recreates objects under stable names keeps a bounded
   provider set, while ad-hoc runs (unique names) simply accumulate for
   the process lifetime. *)
let channels : (string, (string, unit -> Json.t) Hashtbl.t) Hashtbl.t = Hashtbl.create 8
let mutex = Mutex.create ()

let with_channels f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let register_snapshot ~channel ~name f =
  with_channels (fun () ->
      let tbl =
        match Hashtbl.find_opt channels channel with
        | Some tbl -> tbl
        | None ->
          let tbl = Hashtbl.create 8 in
          Hashtbl.replace channels channel tbl;
          tbl
      in
      Hashtbl.replace tbl name f)

let unregister_snapshot ~channel ~name =
  with_channels (fun () ->
      match Hashtbl.find_opt channels channel with
      | Some tbl -> Hashtbl.remove tbl name
      | None -> ())

let snapshot channel =
  let providers =
    with_channels (fun () ->
        match Hashtbl.find_opt channels channel with
        | None -> []
        | Some tbl -> Hashtbl.fold (fun name f acc -> (name, f) :: acc) tbl [])
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  (* Providers run outside the channel lock: they take their own locks
     (object mutexes, the WAL mutex) and must not block registration. *)
  Json.List
    (List.map
       (fun (name, f) ->
         match f () with
         | j -> j
         | exception e ->
           Json.Obj
             [ ("name", Json.String name); ("error", Json.String (Printexc.to_string e)) ])
       providers)

let channel_names () =
  with_channels (fun () -> Hashtbl.fold (fun name _ acc -> name :: acc) channels [])
  |> List.sort String.compare
