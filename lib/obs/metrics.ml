(* Shard count must be a power of two; 64 comfortably exceeds the domain
   counts the runtime uses, so distinct domains almost always hit
   distinct cells. *)
let shards = 64

let shard () = (Domain.self () :> int) land (shards - 1)

type counter = { cname : string; cells : int Atomic.t array }

type histogram = {
  hname : string;
  bounds : float array; (* ascending upper bounds, seconds *)
  counts : int Atomic.t array array; (* shard -> bucket (bounds + inf) *)
  sums : int Atomic.t array; (* shard -> nanoseconds *)
}

type instrument = Counter of counter | Histogram of histogram

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 32
let registry_mutex = Mutex.create ()

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let atomic_cells n = Array.init n (fun _ -> Atomic.make 0)

let counter name =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Counter c) -> c
      | Some (Histogram _) ->
        invalid_arg (Printf.sprintf "Obs.Metrics.counter: %S is a histogram" name)
      | None ->
        let c = { cname = name; cells = atomic_cells shards } in
        Hashtbl.add registry name (Counter c);
        c)

let add c n = if Control.enabled () then ignore (Atomic.fetch_and_add c.cells.(shard ()) n)
let incr c = add c 1

(* For audit verdicts: a violation must surface in the scrape even if
   the operator toggled the fast-path switch off mid-run. *)
let add_always c n = ignore (Atomic.fetch_and_add c.cells.(shard ()) n)
let value c = Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 c.cells

let default_bounds =
  [| 1e-6; 2e-6; 5e-6; 1e-5; 2e-5; 5e-5; 1e-4; 2e-4; 5e-4; 1e-3; 2e-3; 5e-3; 1e-2; 1e-1 |]

let histogram ?(bounds = default_bounds) name =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Histogram h) -> h
      | Some (Counter _) ->
        invalid_arg (Printf.sprintf "Obs.Metrics.histogram: %S is a counter" name)
      | None ->
        let h =
          {
            hname = name;
            bounds;
            counts = Array.init shards (fun _ -> atomic_cells (Array.length bounds + 1));
            sums = atomic_cells shards;
          }
        in
        Hashtbl.add registry name (Histogram h);
        h)

let bucket_of h v =
  let n = Array.length h.bounds in
  let rec go i = if i >= n || v <= h.bounds.(i) then i else go (i + 1) in
  go 0

let observe h v =
  if Control.enabled () then begin
    let s = shard () in
    Atomic.incr h.counts.(s).(bucket_of h v);
    ignore (Atomic.fetch_and_add h.sums.(s) (int_of_float (v *. 1e9)))
  end

let merged_counts h =
  let n = Array.length h.bounds + 1 in
  let out = Array.make n 0 in
  Array.iter (fun row -> Array.iteri (fun i c -> out.(i) <- out.(i) + Atomic.get c) row) h.counts;
  out

let count h = Array.fold_left ( + ) 0 (merged_counts h)
let sum h = float_of_int (Array.fold_left (fun acc s -> acc + Atomic.get s) 0 h.sums) *. 1e-9

let buckets h =
  let counts = merged_counts h in
  List.init (Array.length counts) (fun i ->
      ((if i < Array.length h.bounds then Some h.bounds.(i) else None), counts.(i)))

(* Linear interpolation inside the bucket that crosses the target rank,
   assuming observations are uniformly spread over the bucket's span.
   The +inf bucket has no upper bound to interpolate towards, so the
   largest finite bound is returned — a lower bound on the true
   quantile, which is the honest direction for a latency report. *)
let quantile h q =
  let q = Float.max 0. (Float.min 1. q) in
  let counts = merged_counts h in
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then 0.
  else begin
    let rank = q *. float_of_int total in
    let n = Array.length h.bounds in
    let rec go i cum =
      if i >= Array.length counts then if n = 0 then 0. else h.bounds.(n - 1)
      else
        let c = counts.(i) in
        let cum' = cum +. float_of_int c in
        if c > 0 && cum' >= rank then
          if i >= n then h.bounds.(n - 1)
          else
            let lo = if i = 0 then 0. else h.bounds.(i - 1) in
            let hi = h.bounds.(i) in
            lo +. ((hi -. lo) *. (rank -. cum) /. float_of_int c)
        else go (i + 1) cum'
    in
    go 0 0.
  end

let instruments () =
  with_registry (fun () -> Hashtbl.fold (fun _ i acc -> i :: acc) registry [])
  |> List.sort (fun a b ->
         let name = function Counter c -> c.cname | Histogram h -> h.hname in
         String.compare (name a) (name b))

let counters () =
  List.filter_map (function Counter c -> Some (c.cname, value c) | Histogram _ -> None)
    (instruments ())

let histograms () =
  List.filter_map (function Histogram h -> Some (h.hname, h) | Counter _ -> None)
    (instruments ())

(* Run annotations (seed, configuration): tiny and write-rare, so the
   registry mutex is fine. *)
let annotation_store : (string, string) Hashtbl.t = Hashtbl.create 8

let annotate key v = with_registry (fun () -> Hashtbl.replace annotation_store key v)

let annotations () =
  with_registry (fun () ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) annotation_store [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let dump ppf () =
  List.iter
    (fun (k, v) -> Format.fprintf ppf "%-28s %s@." k v)
    (annotations ());
  List.iter
    (function
      | Counter c -> Format.fprintf ppf "%-28s %d@." c.cname (value c)
      | Histogram h ->
        let n = count h in
        Format.fprintf ppf "%-28s count=%d sum=%.6fs@." h.hname n (sum h);
        if n > 0 then begin
          Format.fprintf ppf "  p50 %.3es  p95 %.3es  p99 %.3es@." (quantile h 0.50)
            (quantile h 0.95) (quantile h 0.99);
          List.iter
            (fun (bound, c) ->
              if c > 0 then
                match bound with
                | Some b -> Format.fprintf ppf "  le %.0e s%18d@." b c
                | None -> Format.fprintf ppf "  le +inf%19d@." c)
            (buckets h)
        end)
    (instruments ())

(* One JSON object per line so CI can diff snapshots with line tools;
   keys are emitted in a fixed order and instruments are sorted by name,
   making the output deterministic up to the measured values.  All
   strings go through the shared Json writer (PR-2's %S-based emitter
   produced OCaml escapes, which are not JSON for control bytes). *)
let dump_json ppf () =
  let line j = Format.fprintf ppf "%s@." (Json.to_string j) in
  List.iter
    (fun (k, v) ->
      line
        (Json.Obj
           [
             ("type", Json.String "annotation");
             ("name", Json.String k);
             ("value", Json.String v);
           ]))
    (annotations ());
  List.iter
    (function
      | Counter c ->
        line
          (Json.Obj
             [
               ("type", Json.String "counter");
               ("name", Json.String c.cname);
               ("value", Json.Int (value c));
             ])
      | Histogram h ->
        let bucket (bound, c) =
          Json.Obj
            [
              ( "le",
                match bound with Some b -> Json.Float b | None -> Json.String "inf" );
              ("count", Json.Int c);
            ]
        in
        line
          (Json.Obj
             [
               ("type", Json.String "histogram");
               ("name", Json.String h.hname);
               ("count", Json.Int (count h));
               ("sum", Json.Float (sum h));
               ("p50", Json.Float (quantile h 0.50));
               ("p95", Json.Float (quantile h 0.95));
               ("p99", Json.Float (quantile h 0.99));
               ("buckets", Json.List (List.map bucket (buckets h)));
             ]))
    (instruments ())

let reset () =
  List.iter
    (function
      | Counter c -> Array.iter (fun cell -> Atomic.set cell 0) c.cells
      | Histogram h ->
        Array.iter (Array.iter (fun cell -> Atomic.set cell 0)) h.counts;
        Array.iter (fun s -> Atomic.set s 0) h.sums)
    (instruments ())
