type request = { path : string; query : (string * string) list }

type response = { status : int; content_type : string; body : string }

let respond ?(status = 200) ?(content_type = "text/plain; charset=utf-8") body =
  { status; content_type; body }

let respond_json ?status j =
  respond ?status ~content_type:"application/json" (Json.to_string j)

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 503 -> "Service Unavailable"
  | 500 | _ -> "Internal Server Error"

(* ------------------------------------------------------------------ *)
(* Request parsing                                                     *)

let percent_decode s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '%' when !i + 2 < n -> (
      match (hex s.[!i + 1], hex s.[!i + 2]) with
      | Some h, Some l ->
        Buffer.add_char b (Char.chr ((h * 16) + l));
        i := !i + 2
      | _ -> Buffer.add_char b '%')
    | '+' -> Buffer.add_char b ' '
    | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.contents b

let parse_query q =
  String.split_on_char '&' q
  |> List.filter_map (fun kv ->
         if kv = "" then None
         else
           match String.index_opt kv '=' with
           | None -> Some (percent_decode kv, "")
           | Some i ->
             Some
               ( percent_decode (String.sub kv 0 i),
                 percent_decode (String.sub kv (i + 1) (String.length kv - i - 1)) ))

let parse_target target =
  match String.index_opt target '?' with
  | None -> { path = target; query = [] }
  | Some i ->
    {
      path = String.sub target 0 i;
      query = parse_query (String.sub target (i + 1) (String.length target - i - 1));
    }

(* First request line of "GET /path?query HTTP/1.x"; headers are read
   and discarded (HTTP/1.0, no bodies on GET). *)
let parse_request raw =
  match String.index_opt raw '\n' with
  | None -> Error "no request line"
  | Some eol -> (
    let line = String.trim (String.sub raw 0 eol) in
    match String.split_on_char ' ' line with
    | [ meth; target; _version ] when String.uppercase_ascii meth = "GET" ->
      Ok (parse_target target)
    | [ meth; _; _ ] -> Error (Printf.sprintf "method %s not supported" meth)
    | _ -> Error "malformed request line")

(* ------------------------------------------------------------------ *)
(* Connection handling                                                 *)

let max_request_bytes = 8192

let read_request fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 512 in
  let rec go () =
    if Buffer.length buf >= max_request_bytes then Buffer.contents buf
    else
      (* A GET request ends at the blank line after the headers. *)
      let s = Buffer.contents buf in
      let module S = String in
      let done_ =
        let rec find i =
          if i + 1 >= S.length s then false
          else if s.[i] = '\n' && (s.[i + 1] = '\n' || (s.[i + 1] = '\r' && i + 2 < S.length s && s.[i + 2] = '\n'))
          then true
          else find (i + 1)
        in
        S.length s > 0 && find 0
      in
      if done_ then s
      else
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> Buffer.contents buf
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          go ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
          ->
          Buffer.contents buf
  in
  go ()

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let render_response { status; content_type; body } =
  Printf.sprintf
    "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status (status_text status) content_type (String.length body) body

(* Self-telemetry: the introspection server shows up in its own
   [/metrics].  Latency histograms are per endpoint but only for paths
   the route table actually serves — route tables are small and fixed,
   so the name set stays bounded; everything else lands on "other". *)
let m_requests = Metrics.counter "server.requests"
let g_open_connections = Gauge.make "server_open_connections"

let endpoint_hist path = Metrics.histogram ("server.latency" ^ path)

let handle routes fd =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0;
  let t0 = Clock.now_ns () in
  let endpoint = ref "/other" in
  let resp =
    match parse_request (read_request fd) with
    | Error e -> respond ~status:400 (e ^ "\n")
    | Ok req -> (
      match List.assoc_opt req.path routes with
      | None -> respond ~status:404 "not found\n"
      | Some handler -> (
        endpoint := req.path;
        try handler req
        with exn -> respond ~status:500 (Printexc.to_string exn ^ "\n")))
  in
  write_all fd (render_response resp);
  Metrics.incr m_requests;
  Metrics.observe (endpoint_hist !endpoint) (Clock.ns_to_s (Clock.now_ns () - t0))

(* ------------------------------------------------------------------ *)
(* Default routes                                                      *)

let control_route req =
  let enabled =
    match
      (List.assoc_opt "enabled" req.query, List.assoc_opt "toggle" req.query)
    with
    | Some "true", _ | Some "1", _ ->
      Control.set_enabled true;
      true
    | Some "false", _ | Some "0", _ ->
      Control.set_enabled false;
      false
    | Some _, _ | None, Some _ -> Control.toggle ()
    | None, None -> Control.enabled ()
  in
  respond_json (Json.Obj [ ("enabled", Json.Bool enabled) ])

let health_route _req =
  if Sampler.healthy () then respond "ok\n"
  else
    let detail =
      match Sampler.last_error () with Some e -> e | None -> "unknown"
    in
    respond ~status:503
      (Printf.sprintf "degraded: %d audit violation(s); last: %s\n"
         (Sampler.violations ()) detail)

let default_routes ?(ring = Trace.global) ?slo () =
  [
    ("/metrics", fun _ ->
        respond ~content_type:"text/plain; version=0.0.4; charset=utf-8"
          (Expose.render ()));
    ("/locks", fun _ -> respond_json (Registry.snapshot "locks"));
    ("/horizon", fun _ -> respond_json (Registry.snapshot "horizon"));
    ("/waitfor", fun _ -> respond_json (Waitfor.to_json (Waitfor.analyze (Trace.entries ring))));
    ("/health", health_route);
    ("/control", control_route);
  ]
  @
  match slo with
  | Some provider -> [ ("/slo", fun _ -> respond_json (provider ())) ]
  | None -> []

(* ------------------------------------------------------------------ *)
(* Server lifecycle                                                    *)

type t = {
  sock : Unix.file_descr;
  srv_port : int;
  thread : Thread.t;
  stopping : bool Atomic.t;
}

let start ?(port = 0) ?routes () =
  let routes = match routes with Some r -> r | None -> default_routes () in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
  (try Unix.bind sock addr
   with e ->
     Unix.close sock;
     raise e);
  Unix.listen sock 16;
  let srv_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  let stopping = Atomic.make false in
  let loop () =
    while not (Atomic.get stopping) do
      match Unix.accept sock with
      | fd, _addr ->
        Gauge.incr g_open_connections;
        (try handle routes fd with _ -> ());
        (try Unix.close fd with _ -> ());
        Gauge.decr g_open_connections
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ ->
        (* The listen socket was closed under us: that is how {!stop}
           breaks the accept. *)
        Atomic.set stopping true
      | exception _ -> Atomic.set stopping true
    done
  in
  { sock; srv_port; thread = Thread.create loop (); stopping }

let port t = t.srv_port

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with _ -> ());
    (try Unix.close t.sock with _ -> ());
    Thread.join t.thread
  end

(* ------------------------------------------------------------------ *)
(* Client                                                              *)

let http_get ?(timeout_s = 5.0) ~port path =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with _ -> ())
    (fun () ->
      try
        Unix.setsockopt_float sock Unix.SO_RCVTIMEO timeout_s;
        Unix.setsockopt_float sock Unix.SO_SNDTIMEO timeout_s;
        Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        write_all sock
          (Printf.sprintf "GET %s HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n" path);
        let buf = Buffer.create 4096 in
        let chunk = Bytes.create 4096 in
        let rec drain () =
          match Unix.read sock chunk 0 (Bytes.length chunk) with
          | 0 -> ()
          | n ->
            Buffer.add_subbytes buf chunk 0 n;
            drain ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
        in
        drain ();
        let raw = Buffer.contents buf in
        match String.index_opt raw '\n' with
        | None -> Error "empty response"
        | Some eol -> (
          let line = String.trim (String.sub raw 0 eol) in
          match String.split_on_char ' ' line with
          | _http :: code :: _ -> (
            match int_of_string_opt code with
            | None -> Error ("bad status line: " ^ line)
            | Some status -> (
              (* Body starts after the first blank line. *)
              let rec find i =
                if i + 1 >= String.length raw then None
                else if raw.[i] = '\n' && raw.[i + 1] = '\n' then Some (i + 2)
                else if
                  raw.[i] = '\n' && raw.[i + 1] = '\r'
                  && i + 2 < String.length raw
                  && raw.[i + 2] = '\n'
                then Some (i + 3)
                else find (i + 1)
              in
              match find 0 with
              | None -> Ok (status, "")
              | Some b -> Ok (status, String.sub raw b (String.length raw - b))))
          | _ -> Error ("bad status line: " ^ line))
      with
      | Unix.Unix_error (e, fn, _) ->
        Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
      | exn -> Error (Printexc.to_string exn))
