(** Monotonic time source for trace timestamps and latency probes.

    Wraps the CLOCK_MONOTONIC stub shipped with bechamel (already a
    build dependency of the benchmark harness) so the observability
    layer can stamp events without touching the wall clock: monotonic
    readings never jump backwards under NTP adjustment, which the
    blocked-time accounting in {!Attrib} and {!Waitfor} relies on. *)

val now_ns : unit -> int
(** Nanoseconds from an arbitrary fixed origin, monotonic within the
    process.  Fits an OCaml native int (63 bits spans ~292 years). *)

val ns_to_s : int -> float
(** Convert a nanosecond interval to seconds. *)
