(** Trace-replay atomicity checking.

    Reconstructs an object-local {!Model.History} from captured
    {!Trace} entries and feeds it to {!Model.Atomicity} — turning any
    traced run (stress test, simulation, benchmark, experiment) into a
    hybrid-atomicity check without the [record:true] hook on the object.
    The two paths are independent: [record:true] snapshots typed events
    inside the engine, while this rebuilds them from the generic ring
    through the interned payload codes, so each validates the other
    (and a test asserts they coincide exactly). *)

module Make (A : Spec.Adt_sig.S) : sig
  module H : module type of Model.History.Make (A)

  val reconstruct :
    obj:int ->
    decode_inv:(int -> A.inv option) ->
    decode_res:(int -> A.res option) ->
    Trace.entry list ->
    H.t
  (** The object-local history: entries tagged [obj], with
      [Invoke]/[Respond] payloads decoded through the object's intern
      tables and [Commit]/[Abort] completion events; all other event
      kinds (lock grants and refusals, retries, compaction) are
      protocol-progress annotations and are skipped.  Entries whose code
      fails to decode (possible only after ring wrap-around) are
      dropped — the resulting truncated history will then fail
      {!check}'s well-formedness pass rather than silently verifying. *)

  val check : ?online:bool -> H.t -> (unit, string) result
  (** Theorem 16 end-to-end: the history must be well-formed, respect
      the timestamp-generation constraint [precedes(H) ⊆ TS(H)] (this
      quadratic-in-transactions pass is skipped above 100 committed
      transactions), and be hybrid atomic.  [online] additionally runs
      the exponential online-hybrid-atomicity decision procedure — only
      for small histories. *)
end
