(** Span phase vocabulary for the flight recorder.

    A transaction's span is the set of flight records carrying its id,
    bracketed by [begin]/[commit|abort] (local attempts, emitted by
    {!Runtime.Manager}) or [cross_begin]/[cross_commit|cross_abort]
    (coordinator attempts, emitted by {!Dist.Coordinator}; every branch
    shares the global id, so the per-shard 2PC legs stitch into one
    multi-shard span).  Between the brackets, phase-transition marks
    locate where the latency went: lock waits (retry loop), WAL append,
    the group-commit durability barrier, restart backoff, and the 2PC
    prepare/decide legs.  {!Profile} turns these into per-phase
    latency histograms. *)

val c_begin : int
val c_commit : int
val c_abort : int
val c_lock_wait : int
val c_lock_resume : int
val c_op : int
val c_append : int
val c_sync_wait : int
val c_sync_done : int
val c_backoff : int
val c_prepare : int
val c_prepared : int
val c_decide : int
val c_decide_commit : int
val c_decide_abort : int
val c_cross_begin : int
val c_cross_commit : int
val c_cross_abort : int
val c_fsync : int
val c_park : int
val c_unpark : int
val c_steal : int

val all_codes : int list
val name : int -> string

val enabled : unit -> bool
(** [Flight.recording] — gate for instrumentation sites that would
    otherwise pay for a clock read or label encode. *)

val detailed : unit -> bool
(** [Flight.detailed] — gate for the per-op tier. *)

val txn_begin : txn:int -> shard:int -> unit
val txn_commit : txn:int -> ts:int -> unit
val txn_abort : txn:int -> unit
val lock_wait : txn:int -> obj:int -> unit
val lock_resume : txn:int -> obj:int -> unit
val op : txn:int -> obj:int -> inv:int -> dur_ns:int -> unit
val append : txn:int -> lsn:int -> unit
val sync_wait : txn:int -> lsn:int -> unit
val sync_done : txn:int -> unit
val backoff : txn:int -> sleep_ns:int -> unit
val prepare : txn:int -> shard:int -> unit
val prepared : txn:int -> shard:int -> ts:int -> unit
val decide : txn:int -> ts:int -> unit
val decide_commit : txn:int -> shard:int -> ts:int -> unit
val decide_abort : txn:int -> shard:int -> unit
val cross_begin : txn:int -> unit
val cross_commit : txn:int -> ts:int -> unit
val cross_abort : txn:int -> unit
val fsync : dur_ns:int -> unit

val park : txn:int -> obj:int -> timeout_ns:int -> unit
(** The retry scheduler parked [txn] waiting on [obj] with the given
    timeout backstop (see {!Runtime.Sched}). *)

val unpark : txn:int -> woken:bool -> unit
(** The parked transaction resumed: [woken] when a release signalled it,
    false when the timeout backstop expired.  The park→unpark interval
    sits inside the span's lock_wait window. *)

val steal : txn:int -> obj:int -> unit
(** A helping domain stole [txn]'s pending wake-up from another domain's
    ring and delivered it (work-stealing re-dispatch). *)
