(** Prometheus text-exposition (version 0.0.4) rendering of the
    unified registry — the scrape surface of the introspection server.

    Naming: every metric is prefixed [hcc_]; registry names are
    sanitized (characters outside [[a-zA-Z0-9_:]] become [_]); counters
    get the [_total] suffix ([obj.commits] → [hcc_obj_commits_total]),
    histograms are exported in seconds as [_seconds_bucket] (cumulative
    counts, [le] labels), [_seconds_sum] and [_seconds_count].  Gauges
    keep their name and carry their label sets; gauges sharing a name
    form one family under a single [# TYPE] line.  Run annotations
    ({!Metrics.annotate} — the workload seed, configuration) are
    exported as an info-style gauge [hcc_run_info{seed="42",...} 1].

    Label values are escaped per the format (backslash, quote,
    newline) — interned operation labels pass through verbatim
    otherwise, so a label can be ["Deq/Val 1"].

    {!parse} is the matching reader, used by the [top] dashboard, the
    tests and the CI smoke job to assert the exposition parses — we
    consume our own format rather than shipping it on faith. *)

val render : unit -> string
(** The full exposition document for the current registry contents.
    Gauge callbacks are evaluated during the call; a callback that
    raises contributes no sample. *)

val sanitize_name : string -> string
val escape_label_value : string -> string

type series = { s_name : string; s_labels : (string * string) list; s_value : float }

val parse : string -> (series list, string) result
(** Parse an exposition document: every non-comment line becomes a
    series.  [Error] describes the first malformed line. *)

val find : ?labels:(string * string) list -> string -> series list -> float option
(** First series with this name whose labels include all of [labels]. *)
