(** Exportable trace timelines and metric snapshots.

    {!chrome_trace} serializes a trace window as Chrome [trace_event]
    JSON (the JSON-array format understood by [chrome://tracing] and
    Perfetto's legacy loader):

    - one {e thread} per object under the ["objects"] process, carrying
      a complete-span per operation from its [Invoke] to its [Respond]
      (named by the invocation's registered label), with refusals as
      instant events;
    - one {e thread} per transaction under the ["transactions"]
      process, carrying a span per stalled attempt from the first
      [Lock_refused]/[Retry] to the eventual [Lock_granted] (named by
      the fired conflict cell), and instants for [Commit]/[Abort].

    Timestamps are the entries' monotonic-clock readings rebased to the
    window's first event, in microseconds as the format requires.
    Labels come from the {!Attrib} registry, so export works on any
    window whose emitting objects registered their codes
    ([Runtime.Atomic_obj] always does).  Run annotations
    ({!Metrics.annotate} — notably the workload [--seed]) are embedded
    as a [run_info] metadata event, so a saved timeline records the
    exact run that produced it.  All string escaping goes through
    {!Json.escape}.

    {!metrics_json} re-exports {!Metrics.dump_json}: one JSON object
    per line, for CI snapshot diffing alongside the timeline. *)

val chrome_trace : Format.formatter -> Trace.entry list -> unit
(** Write the window (oldest first) as a self-contained JSON array. *)

val metrics_json : Format.formatter -> unit -> unit
