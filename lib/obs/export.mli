(** Exportable trace timelines and metric snapshots.

    {!chrome_trace} serializes a trace window as Chrome [trace_event]
    JSON (the JSON-array format understood by [chrome://tracing] and
    Perfetto's legacy loader):

    - one {e thread} per object under the ["objects"] process, carrying
      a complete-span per operation from its [Invoke] to its [Respond]
      (named by the invocation's registered label), with refusals as
      instant events;
    - one {e thread} per transaction under the ["transactions"]
      process, carrying a span per stalled attempt from the first
      [Lock_refused]/[Retry] to the eventual [Lock_granted] (named by
      the fired conflict cell), and instants for [Commit]/[Abort].

    Timestamps are the entries' monotonic-clock readings rebased to the
    window's first event, in microseconds as the format requires.
    Labels come from the {!Attrib} registry, so export works on any
    window whose emitting objects registered their codes
    ([Runtime.Atomic_obj] always does).  Run annotations
    ({!Metrics.annotate} — notably the workload [--seed]) are embedded
    as a [run_info] metadata event, so a saved timeline records the
    exact run that produced it.  All string escaping goes through
    {!Json.escape}.

    {!metrics_json} re-exports {!Metrics.dump_json}: one JSON object
    per line, for CI snapshot diffing alongside the timeline. *)

val chrome_trace : Format.formatter -> Trace.entry list -> unit
(** Write the window (oldest first) as a self-contained JSON array. *)

(** {1 Flight-recorder span slices}

    {!Profile.chrome_slices} reduces a decoded flight file to these
    generic slices; {!chrome_spans} renders them under a ["spans"]
    process with one thread per transaction.  A slice with
    [sl_dur_ns = 0] becomes an instant event.  Overlapping slices on
    one track nest in the viewer, so emitting the whole span plus each
    phase window yields the phase-nested timeline. *)

type slice = {
  sl_name : string;
  sl_cat : string;
  sl_tid : int;  (** transaction id *)
  sl_ts_ns : int;
  sl_dur_ns : int;
  sl_args : (string * string) list;
}

val chrome_spans : Format.formatter -> slice list -> unit

val metrics_json : Format.formatter -> unit -> unit
