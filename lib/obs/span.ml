(* The span vocabulary: preassigned flight-recorder event codes for
   every phase transition a transaction goes through, from [Begin] to
   its commit/abort, including the 2PC legs a cross-shard transaction
   adds.  Spans are reassembled offline (or by the online aggregator in
   {!Profile}) by grouping records on the transaction id — cross-shard
   branches share the global id ({!Runtime.Txn_rt} refcounts it), so one
   stitched span covers every shard a transaction touched. *)

let c_begin = 1 (* local attempt starts; aux16 = shard stripe *)
let c_commit = 2 (* local attempt committed; arg = commit ts *)
let c_abort = 3 (* local attempt aborted *)
let c_lock_wait = 4 (* first refusal: the retry loop starts waiting; aux32 = obj *)
let c_lock_resume = 5 (* the retry loop hands back control; aux32 = obj *)
let c_op = 6 (* one ADT operation done; aux32 = obj, aux16 = inv code, arg = ns *)
let c_append = 7 (* commit record appended to the WAL; arg = lsn *)
let c_sync_wait = 8 (* entering the group-commit durability barrier; arg = lsn *)
let c_sync_done = 9 (* barrier passed: the commit record is durable *)
let c_backoff = 10 (* restart backoff sleep between attempts; arg = ns *)
let c_prepare = 11 (* 2PC phase 1 vote starts on shard aux16 *)
let c_prepared = 12 (* vote forced on shard aux16; arg = prepared ts *)
let c_decide = 13 (* coordinator forced the Decide record; arg = decided ts *)
let c_decide_commit = 14 (* shard aux16 applied the decision; arg = ts *)
let c_decide_abort = 15 (* shard aux16 released its prepared branch *)
let c_cross_begin = 16 (* coordinator attempt starts; txn = global id *)
let c_cross_commit = 17 (* coordinator attempt committed; arg = ts *)
let c_cross_abort = 18 (* coordinator attempt aborted *)
let c_fsync = 19 (* a WAL sync leader's fsync; txn = 0, arg = ns *)
let c_park = 20 (* retry scheduler parked the txn; aux32 = obj, arg = timeout ns *)
let c_unpark = 21 (* parked txn resumed; aux16 = 1 woken by a release, 0 timed out *)
let c_steal = 22 (* a helper stole and delivered this txn's wake-up; aux32 = obj *)

let all_codes =
  [
    c_begin; c_commit; c_abort; c_lock_wait; c_lock_resume; c_op; c_append;
    c_sync_wait; c_sync_done; c_backoff; c_prepare; c_prepared; c_decide;
    c_decide_commit; c_decide_abort; c_cross_begin; c_cross_commit;
    c_cross_abort; c_fsync; c_park; c_unpark; c_steal;
  ]

let name code =
  match code with
  | 1 -> "begin"
  | 2 -> "commit"
  | 3 -> "abort"
  | 4 -> "lock_wait"
  | 5 -> "lock_resume"
  | 6 -> "op"
  | 7 -> "append"
  | 8 -> "sync_wait"
  | 9 -> "sync_done"
  | 10 -> "backoff"
  | 11 -> "prepare"
  | 12 -> "prepared"
  | 13 -> "decide"
  | 14 -> "decide_commit"
  | 15 -> "decide_abort"
  | 16 -> "cross_begin"
  | 17 -> "cross_commit"
  | 18 -> "cross_abort"
  | 19 -> "fsync"
  | 20 -> "park"
  | 21 -> "unpark"
  | 22 -> "steal"
  | c -> Printf.sprintf "code#%d" c

(* Emit helpers: thin shims over {!Flight.emit} so instrumentation
   sites stay one readable line.  All are no-ops unless the recorder is
   armed ({!Flight.recording}); [op] additionally requires the per-op
   detail tier ({!Flight.detailed}) — the always-on tier is sized so a
   WAL-off transaction costs two records. *)

let enabled = Flight.recording
let detailed = Flight.detailed

let txn_begin ~txn ~shard = Flight.emit ~code:c_begin ~aux16:shard ~aux32:0 ~txn ~arg:0
let txn_commit ~txn ~ts = Flight.emit ~code:c_commit ~aux16:0 ~aux32:0 ~txn ~arg:ts
let txn_abort ~txn = Flight.emit ~code:c_abort ~aux16:0 ~aux32:0 ~txn ~arg:0

let lock_wait ~txn ~obj = Flight.emit ~code:c_lock_wait ~aux16:0 ~aux32:obj ~txn ~arg:0

let lock_resume ~txn ~obj =
  Flight.emit ~code:c_lock_resume ~aux16:0 ~aux32:obj ~txn ~arg:0

let op ~txn ~obj ~inv ~dur_ns =
  Flight.emit ~code:c_op ~aux16:inv ~aux32:obj ~txn ~arg:dur_ns

let append ~txn ~lsn = Flight.emit ~code:c_append ~aux16:0 ~aux32:0 ~txn ~arg:lsn
let sync_wait ~txn ~lsn = Flight.emit ~code:c_sync_wait ~aux16:0 ~aux32:0 ~txn ~arg:lsn
let sync_done ~txn = Flight.emit ~code:c_sync_done ~aux16:0 ~aux32:0 ~txn ~arg:0

let backoff ~txn ~sleep_ns =
  Flight.emit ~code:c_backoff ~aux16:0 ~aux32:0 ~txn ~arg:sleep_ns

let prepare ~txn ~shard = Flight.emit ~code:c_prepare ~aux16:shard ~aux32:0 ~txn ~arg:0

let prepared ~txn ~shard ~ts =
  Flight.emit ~code:c_prepared ~aux16:shard ~aux32:0 ~txn ~arg:ts

let decide ~txn ~ts = Flight.emit ~code:c_decide ~aux16:0 ~aux32:0 ~txn ~arg:ts

let decide_commit ~txn ~shard ~ts =
  Flight.emit ~code:c_decide_commit ~aux16:shard ~aux32:0 ~txn ~arg:ts

let decide_abort ~txn ~shard =
  Flight.emit ~code:c_decide_abort ~aux16:shard ~aux32:0 ~txn ~arg:0

let cross_begin ~txn = Flight.emit ~code:c_cross_begin ~aux16:0 ~aux32:0 ~txn ~arg:0

let cross_commit ~txn ~ts =
  Flight.emit ~code:c_cross_commit ~aux16:0 ~aux32:0 ~txn ~arg:ts

let cross_abort ~txn = Flight.emit ~code:c_cross_abort ~aux16:0 ~aux32:0 ~txn ~arg:0
let fsync ~dur_ns = Flight.emit ~code:c_fsync ~aux16:0 ~aux32:0 ~txn:0 ~arg:dur_ns

let park ~txn ~obj ~timeout_ns =
  Flight.emit ~code:c_park ~aux16:0 ~aux32:obj ~txn ~arg:timeout_ns

let unpark ~txn ~woken =
  Flight.emit ~code:c_unpark ~aux16:(if woken then 1 else 0) ~aux32:0 ~txn ~arg:0

let steal ~txn ~obj = Flight.emit ~code:c_steal ~aux16:0 ~aux32:obj ~txn ~arg:0
