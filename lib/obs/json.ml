type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- writer ---- *)

let add_escaped b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let escape s =
  let b = Buffer.create (String.length s + 2) in
  add_escaped b s;
  Buffer.contents b

(* JSON has no NaN/Infinity literals; clamp them to null so consumers
   never see an unparseable document. *)
let add_float b f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
    Buffer.add_string b "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" f)
  else
    (* Shortest decimal that round-trips. *)
    let s = Printf.sprintf "%.12g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    Buffer.add_string b s

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (if x then "true" else "false")
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f -> add_float b f
  | String s -> add_escaped b s
  | List l ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        write b v)
      l;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        add_escaped b k;
        Buffer.add_char b ':';
        write b v)
      fields;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* ---- parser ---- *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      true
    | _ -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string_body c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
      advance c;
      match peek c with
      | None -> fail c "unterminated escape"
      | Some ch ->
        advance c;
        (match ch with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          if c.pos + 4 > String.length c.src then fail c "truncated \\u escape";
          let hex = String.sub c.src c.pos 4 in
          c.pos <- c.pos + 4;
          let code =
            try int_of_string ("0x" ^ hex) with _ -> fail c "bad \\u escape"
          in
          (* Encode the code point as UTF-8 (surrogate pairs are not
             recombined; the snapshots this parser reads never emit
             them). *)
          if code < 0x80 then Buffer.add_char b (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
          end
          else begin
            Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
            Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
          end
        | _ -> fail c "unknown escape");
        go ())
    | Some ch ->
      advance c;
      Buffer.add_char b ch;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek c with Some ch when is_num_char ch -> advance c; true | _ -> false do
    ()
  done;
  let s = String.sub c.src start (c.pos - start) in
  match int_of_string_opt s with
  | Some n -> Int n
  | None -> (
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail c (Printf.sprintf "bad number %S" s))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws c;
        let k = parse_string_body c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        fields := (k, v) :: !fields;
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          members ()
        | Some '}' -> advance c
        | _ -> fail c "expected ',' or '}'"
      in
      members ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value c in
        items := v :: !items;
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          elements ()
        | Some ']' -> advance c
        | _ -> fail c "expected ',' or ']'"
      in
      elements ();
      List (List.rev !items)
    end
  | Some '"' -> String (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let parse s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length s then Error "trailing bytes after JSON value"
    else Ok v
  | exception Parse_error e -> Error e

(* ---- accessors ---- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_int = function Int n -> Some n | Float f when Float.is_integer f -> Some (int_of_float f) | _ -> None

let to_float = function Int n -> Some (float_of_int n) | Float f -> Some f | _ -> None

let to_str = function String s -> Some s | _ -> None

let to_list = function List l -> Some l | _ -> None
