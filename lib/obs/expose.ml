let prefix = "hcc_"

let sanitize_name name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c | _ -> '_')
    name

(* Label-value escaping per the text exposition format: backslash,
   double quote and newline.  This is where interned operation labels
   (e.g. [Deq/Val "x\n"]) must survive a round trip. *)
let escape_label_value s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let add_labels b = function
  | [] -> ()
  | labels ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (sanitize_name k);
        Buffer.add_string b "=\"";
        Buffer.add_string b (escape_label_value v);
        Buffer.add_char b '"')
      labels;
    Buffer.add_char b '}'

let add_float b f =
  if Float.is_nan f then Buffer.add_string b "NaN"
  else if f = Float.infinity then Buffer.add_string b "+Inf"
  else if f = Float.neg_infinity then Buffer.add_string b "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" f)
  else Buffer.add_string b (Printf.sprintf "%g" f)

let add_sample b name labels v =
  Buffer.add_string b name;
  add_labels b labels;
  Buffer.add_char b ' ';
  add_float b v;
  Buffer.add_char b '\n'

let add_type b name kind =
  Buffer.add_string b "# TYPE ";
  Buffer.add_string b name;
  Buffer.add_char b ' ';
  Buffer.add_string b kind;
  Buffer.add_char b '\n'

let render () =
  let b = Buffer.create 4096 in
  (* Run annotations as an info-style gauge, the idiom for constant
     run metadata (seed, configuration): one series whose labels carry
     the values. *)
  (match Metrics.annotations () with
  | [] -> ()
  | ann ->
    let name = prefix ^ "run_info" in
    add_type b name "gauge";
    add_sample b name (List.map (fun (k, v) -> (sanitize_name k, v)) ann) 1.);
  let gauges = ref [] and counters = ref [] and histograms = ref [] in
  List.iter
    (function
      | Registry.Counter (n, v) -> counters := (n, v) :: !counters
      | Registry.Gauge s -> gauges := s :: !gauges
      | Registry.Histogram (n, h) -> histograms := (n, h) :: !histograms)
    (Registry.instruments ());
  List.iter
    (fun (n, v) ->
      let name = prefix ^ sanitize_name n ^ "_total" in
      add_type b name "counter";
      add_sample b name [] (float_of_int v))
    (List.rev !counters);
  (* Gauges sharing a name (different label sets) form one family:
     one TYPE line, then every series.  NaN samples (a callback that
     raised) are dropped rather than exported as NaN. *)
  let rec gauge_families = function
    | [] -> ()
    | (s : Gauge.sample) :: _ as l ->
      let name = prefix ^ sanitize_name s.Gauge.name in
      let same, rest =
        List.partition (fun (x : Gauge.sample) -> x.Gauge.name = s.Gauge.name) l
      in
      let live = List.filter (fun (x : Gauge.sample) -> not (Float.is_nan x.Gauge.value)) same in
      if live <> [] then begin
        add_type b name "gauge";
        List.iter (fun (x : Gauge.sample) -> add_sample b name x.Gauge.labels x.Gauge.value) live
      end;
      gauge_families rest
  in
  gauge_families (List.rev !gauges);
  List.iter
    (fun (n, (h : Registry.histogram_snapshot)) ->
      let name = prefix ^ sanitize_name n ^ "_seconds" in
      add_type b name "histogram";
      (* The exposition format wants cumulative bucket counts. *)
      let cum = ref 0 in
      List.iter
        (fun (bound, c) ->
          cum := !cum + c;
          let le =
            match bound with
            | Some bd -> Printf.sprintf "%g" bd
            | None -> "+Inf"
          in
          add_sample b (name ^ "_bucket") [ ("le", le) ] (float_of_int !cum))
        h.Registry.h_buckets;
      add_sample b (name ^ "_sum") [] h.Registry.h_sum;
      add_sample b (name ^ "_count") [] (float_of_int h.Registry.h_count))
    (List.rev !histograms);
  Buffer.contents b

(* ---- parser (for the [top] dashboard, tests and the CI smoke job) ---- *)

type series = { s_name : string; s_labels : (string * string) list; s_value : float }

let parse_labels s =
  (* s is the text between '{' and '}' *)
  let n = String.length s in
  let rec go acc i =
    if i >= n then List.rev acc
    else
      let eq = String.index_from s i '=' in
      let key = String.sub s i (eq - i) in
      if eq + 1 >= n || s.[eq + 1] <> '"' then failwith "expected '\"' after '='";
      let b = Buffer.create 16 in
      let rec value j =
        if j >= n then failwith "unterminated label value"
        else
          match s.[j] with
          | '\\' ->
            if j + 1 >= n then failwith "unterminated escape";
            (match s.[j + 1] with
            | 'n' -> Buffer.add_char b '\n'
            | c -> Buffer.add_char b c);
            value (j + 2)
          | '"' -> j + 1
          | c ->
            Buffer.add_char b c;
            value (j + 1)
      in
      let after = value (eq + 2) in
      let acc = (key, Buffer.contents b) :: acc in
      if after < n && s.[after] = ',' then go acc (after + 1) else List.rev acc
  in
  go [] 0

let parse_value = function
  | "NaN" -> Float.nan
  | "+Inf" -> Float.infinity
  | "-Inf" -> Float.neg_infinity
  | s -> float_of_string s

let parse_series line =
  (* name[{labels}] value — labels may contain spaces and braces inside
     quoted values, so scan for the closing brace outside quotes. *)
  match String.index_opt line '{' with
  | None -> (
    match String.index_opt line ' ' with
    | None -> failwith ("no value on line: " ^ line)
    | Some sp ->
      {
        s_name = String.sub line 0 sp;
        s_labels = [];
        s_value = parse_value (String.trim (String.sub line sp (String.length line - sp)));
      })
  | Some ob ->
    let n = String.length line in
    let rec close i in_quotes =
      if i >= n then failwith "unterminated label set"
      else
        match line.[i] with
        | '\\' when in_quotes -> close (i + 2) in_quotes
        | '"' -> close (i + 1) (not in_quotes)
        | '}' when not in_quotes -> i
        | _ -> close (i + 1) in_quotes
    in
    let cb = close (ob + 1) false in
    {
      s_name = String.sub line 0 ob;
      s_labels = parse_labels (String.sub line (ob + 1) (cb - ob - 1));
      s_value = parse_value (String.trim (String.sub line (cb + 1) (n - cb - 1)));
    }

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then go acc rest
      else (
        match parse_series line with
        | s -> go (s :: acc) rest
        | exception e ->
          Error (Printf.sprintf "bad exposition line %S: %s" line (Printexc.to_string e)))
  in
  go [] lines

let find ?(labels = []) name series =
  List.find_opt
    (fun s ->
      s.s_name = name
      && List.for_all (fun (k, v) -> List.assoc_opt k s.s_labels = Some v) labels)
    series
  |> Option.map (fun s -> s.s_value)
