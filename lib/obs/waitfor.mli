(** Wait-for analysis: rebuild the waits-for graph from a trace window
    and check that wait-die kept it acyclic.

    The runtime's deadlock story ({!Runtime.Retry}) is wait-die: on a
    lock conflict an older requester waits and retries, a younger one
    dies.  Waits-for edges therefore only ever point from older to
    younger transactions and cycles are impossible — an {e assumed}
    invariant until now.  This module checks it: a
    {!Trace.Lock_refused} with a known holder opens a {e candidate}
    edge [requester -> holder], which becomes a live waits-for edge
    only when the requester's subsequent {!Trace.Retry} confirms it
    chose to wait ({!Runtime.Retry} emits [Retry] strictly after the
    wait-die decision, so a dying transaction's refusal never becomes
    an edge).  The edge closes when the stalled attempt is granted,
    when either side completes, or — back to candidate — when the next
    attempt is refused again.  A cycle among live edges means two
    transactions each waited on a lock the other held — a protocol bug
    with the same contract as the atomicity audit: report it and make
    the run fail.

    The same windows yield per-transaction blocked time and
    abort-cascade ("death chain") statistics: a transaction that aborts
    while an edge to some holder is open {e died on} that holder; chains
    of such deaths (A died on B, B later died on C, ...) measure how far
    one long-running transaction's locks ripple through the workload. *)

type report = {
  entries : int;  (** trace entries analyzed (coverage indicator) *)
  refusals : int;  (** refusal events seen *)
  edges : int;  (** wait-for edges ever opened *)
  max_width : int;  (** maximum simultaneously-open edges *)
  cycles : int list list;
      (** every cycle detected among live edges, as transaction-id
          loops; must be empty under wait-die *)
  blocked_ns : (int * int) list;
      (** per-transaction total blocked time in nanoseconds, most
          blocked first *)
  deaths : (int * int) list;
      (** [(victim, holder)]: victim aborted while waiting on holder,
          in trace order *)
  longest_death_chain : int list;
      (** the longest abort cascade, oldest victim first *)
}

val analyze : Trace.entry list -> report
(** Fold a trace window (oldest first, as {!Trace.entries} returns
    it). *)

val ok : report -> bool
(** No cycles. *)

val pp : Format.formatter -> report -> unit

val to_json : report -> Json.t
(** The report as one JSON object (the [/waitfor] endpoint's body):
    counts, [acyclic], cycles as transaction-id loops, per-transaction
    blocked nanoseconds and the death-chain data. *)
