(** The one JSON writer (and a small reader) every exporter shares.

    Before this module, the observability layer had two independent JSON
    emitters: {!Export}'s hand-rolled string escaper for Chrome
    timelines, and {!Metrics}'s [%S]-based line JSON — the latter
    actually emitted OCaml string syntax (decimal [\ddd] escapes), which
    is not valid JSON for control or non-ASCII bytes.  Everything now
    funnels through {!escape}/{!write}, so every artifact the system
    produces (timelines, metric snapshots, introspection endpoints) uses
    one escaping discipline.

    The reader ({!parse}) exists for the consumers we ship ourselves —
    the [top] dashboard polling the introspection server, and tests
    round-tripping exporter output — so the toolchain needs no external
    JSON dependency.  It accepts standard JSON with two liberties:
    [\u] surrogate pairs are not recombined, and numbers are read as
    [Int] when exact. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** The JSON string literal for [s], including the surrounding quotes:
    quote, backslash, control characters and the common whitespace
    escapes are encoded per RFC 8259.  This is the escaping primitive
    the other exporters splice into hand-built documents. *)

val write : Buffer.t -> t -> unit
(** Compact (no whitespace) serialization.  Non-finite floats become
    [null] — JSON has no literal for them. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val parse : string -> (t, string) result
(** Parse one complete JSON document; trailing bytes are an error. *)

(** Accessors used by the dashboard and tests; each returns [None] on a
    shape mismatch. *)

val member : string -> t -> t option
val to_int : t -> int option
val to_float : t -> float option
val to_str : t -> string option
val to_list : t -> t list option
