(* Same sharding story as Metrics: a fixed power-of-two array of cells
   indexed by domain id, so concurrent updates from different domains
   touch different atomics. *)
let shards = 64

let shard () = (Domain.self () :> int) land (shards - 1)

type key = string * (string * string) list

type t = { g_name : string; g_labels : (string * string) list; cells : int Atomic.t array }

type sample = { name : string; labels : (string * string) list; value : float }

let registry : (key, t) Hashtbl.t = Hashtbl.create 32
let callbacks : (key, unit -> float) Hashtbl.t = Hashtbl.create 32
let mutex = Mutex.create ()

let with_registry f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let norm_labels labels = List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let make ?(labels = []) name =
  let labels = norm_labels labels in
  with_registry (fun () ->
      match Hashtbl.find_opt registry (name, labels) with
      | Some g -> g
      | None ->
        let g =
          { g_name = name; g_labels = labels; cells = Array.init shards (fun _ -> Atomic.make 0) }
        in
        Hashtbl.replace registry (name, labels) g;
        g)

(* Updates are not gated on Control.enabled: a gauge tracks current
   state (waiting transactions, live bytes), and skipping half of an
   incr/decr pair while the switch flips would corrupt it forever. *)
let add g n = ignore (Atomic.fetch_and_add g.cells.(shard ()) n)
let incr g = add g 1
let decr g = add g (-1)

(* Set-style use: collapse the distributed value onto cell 0.  Callers
   pick one style per gauge; [set] is for single-writer gauges where
   sharding buys nothing (e.g. a sampled statistic). *)
let set g v =
  Array.iteri (fun i c -> if i > 0 then Atomic.set c 0) g.cells;
  Atomic.set g.cells.(0) v

let value g = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 g.cells

let callback ?(labels = []) name f =
  let labels = norm_labels labels in
  with_registry (fun () -> Hashtbl.replace callbacks (name, labels) f)

let remove_callback ?(labels = []) name =
  let labels = norm_labels labels in
  with_registry (fun () -> Hashtbl.remove callbacks (name, labels))

let samples () =
  let stored =
    with_registry (fun () ->
        Hashtbl.fold (fun _ g acc -> (g.g_name, g.g_labels, `Stored g) :: acc) registry []
        |> Hashtbl.fold (fun (n, l) f acc -> (n, l, `Callback f) :: acc) callbacks)
  in
  List.map
    (fun (name, labels, src) ->
      let value =
        match src with
        | `Stored g -> float_of_int (value g)
        | `Callback f -> ( try f () with _ -> Float.nan)
      in
      { name; labels; value })
    stored
  |> List.sort (fun a b ->
         match String.compare a.name b.name with 0 -> compare a.labels b.labels | c -> c)

let reset () =
  with_registry (fun () ->
      Hashtbl.reset callbacks;
      Hashtbl.iter (fun _ g -> Array.iter (fun c -> Atomic.set c 0) g.cells) registry)
