type kind = Inv | Res | Op

(* (obj, kind, code) -> label; written once per interned payload by the
   emitting object, read by reports.  A plain mutex is fine: interning
   is off the per-operation fast path (first occurrence only). *)
let labels : (int * kind * int, string) Hashtbl.t = Hashtbl.create 256
let object_names : (int, string) Hashtbl.t = Hashtbl.create 32

(* obj key -> cell key, for objects that are one cell of a partitioned
   logical object; absent for whole-object-granularity objects. *)
let object_cells : (int, int) Hashtbl.t = Hashtbl.create 32
let registry_mutex = Mutex.create ()

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let register_label ~obj ~kind ~code l =
  with_registry (fun () ->
      if not (Hashtbl.mem labels (obj, kind, code)) then
        Hashtbl.add labels (obj, kind, code) l)

let register_object ~obj ?cell name =
  with_registry (fun () ->
      if not (Hashtbl.mem object_names obj) then Hashtbl.add object_names obj name;
      match cell with
      | Some c when not (Hashtbl.mem object_cells obj) -> Hashtbl.add object_cells obj c
      | _ -> ())

let object_cell ~obj = with_registry (fun () -> Hashtbl.find_opt object_cells obj)

let fallback kind code =
  let prefix = match kind with Inv -> "inv" | Res -> "res" | Op -> "op" in
  Printf.sprintf "%s#%d" prefix code

let label ~obj ~kind code =
  match with_registry (fun () -> Hashtbl.find_opt labels (obj, kind, code)) with
  | Some l -> l
  | None -> fallback kind code

let object_name ~obj =
  match with_registry (fun () -> Hashtbl.find_opt object_names obj) with
  | Some n -> n
  | None -> Printf.sprintf "obj#%d" obj

(* Snapshots for the flight recorder's metadata chunk: an offline
   decoder runs in a fresh process, so the label tables must travel with
   the file. *)
let export_objects () =
  with_registry (fun () ->
      Hashtbl.fold (fun obj name acc -> (obj, name) :: acc) object_names [])
  |> List.sort compare

let export_labels () =
  with_registry (fun () ->
      Hashtbl.fold (fun (obj, kind, code) l acc -> (obj, kind, code, l) :: acc) labels [])
  |> List.sort compare

(* ---- matrices ---- *)

type cell = { refusals : int; blocked_ns : int }

type t = {
  matrix : (int * int * int, cell) Hashtbl.t; (* (obj, requested, held) *)
  by_holder : (int, int) Hashtbl.t;
  mutable refusals_total : int;
  mutable blocked_total : int;
}

let bump t key ~refusals ~blocked_ns =
  let prev =
    match Hashtbl.find_opt t.matrix key with
    | Some c -> c
    | None -> { refusals = 0; blocked_ns = 0 }
  in
  Hashtbl.replace t.matrix key
    { refusals = prev.refusals + refusals; blocked_ns = prev.blocked_ns + blocked_ns };
  t.refusals_total <- t.refusals_total + refusals;
  t.blocked_total <- t.blocked_total + blocked_ns

let of_entries entries =
  let t =
    {
      matrix = Hashtbl.create 64;
      by_holder = Hashtbl.create 64;
      refusals_total = 0;
      blocked_total = 0;
    }
  in
  (* Open blocked windows: (obj, txn) -> (matrix key of the first
     refusal, its timestamp).  Blocked time is attributed to the cell
     that first refused the attempt; later refusals of the same stalled
     attempt count as refusals but do not reopen the window. *)
  let open_waits : (int * int, (int * int * int) * int) Hashtbl.t = Hashtbl.create 64 in
  let last_time = ref 0 in
  let close_window key time =
    match Hashtbl.find_opt open_waits key with
    | None -> ()
    | Some (cell_key, since) ->
      Hashtbl.remove open_waits key;
      bump t cell_key ~refusals:0 ~blocked_ns:(max 0 (time - since))
  in
  let close_txn_windows txn time =
    Hashtbl.fold (fun (o, q) _ acc -> if q = txn then (o, q) :: acc else acc) open_waits []
    |> List.iter (fun key -> close_window key time)
  in
  List.iter
    (fun (e : Trace.entry) ->
      last_time := e.time;
      match e.event with
      | Trace.Lock_refused { holder; requested; held } ->
        let cell_key = (e.obj, requested, held) in
        bump t cell_key ~refusals:1 ~blocked_ns:0;
        (match holder with
        | Some h ->
          Hashtbl.replace t.by_holder h
            (1 + Option.value ~default:0 (Hashtbl.find_opt t.by_holder h))
        | None -> ());
        if not (Hashtbl.mem open_waits (e.obj, e.txn)) then
          Hashtbl.add open_waits (e.obj, e.txn) (cell_key, e.time)
      | Trace.Lock_granted -> close_window (e.obj, e.txn) e.time
      | Trace.Commit _ | Trace.Abort -> close_txn_windows e.txn e.time
      | Trace.Invoke _ | Trace.Respond _ | Trace.Blocked | Trace.Retry
      | Trace.Horizon_advanced _ | Trace.Forgotten _ ->
        ())
    entries;
  (* A window the trace ends on is charged up to the last event seen. *)
  Hashtbl.fold (fun key _ acc -> key :: acc) open_waits []
  |> List.iter (fun key -> close_window key !last_time);
  t

let total_refusals t = t.refusals_total
let total_blocked_ns t = t.blocked_total

let sort_cells l =
  List.sort
    (fun (_, a) (_, b) ->
      match compare b.refusals a.refusals with
      | 0 -> compare b.blocked_ns a.blocked_ns
      | c -> c)
    l

let cells t = Hashtbl.fold (fun k c acc -> (k, c) :: acc) t.matrix [] |> sort_cells

let labelled_cells t =
  let merged = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (obj, req, held) c ->
      let key =
        ( object_name ~obj,
          label ~obj ~kind:Op req,
          label ~obj ~kind:Op held )
      in
      let prev =
        match Hashtbl.find_opt merged key with
        | Some p -> p
        | None -> { refusals = 0; blocked_ns = 0 }
      in
      Hashtbl.replace merged key
        { refusals = prev.refusals + c.refusals; blocked_ns = prev.blocked_ns + c.blocked_ns })
    t.matrix;
  Hashtbl.fold (fun k c acc -> (k, c) :: acc) merged [] |> sort_cells

let holders t =
  Hashtbl.fold (fun h n acc -> (h, n) :: acc) t.by_holder []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let pp ?(top = 10) ppf t =
  if t.refusals_total = 0 then Format.fprintf ppf "no fired conflicts@."
  else begin
    Format.fprintf ppf "fired conflicts: %d, blocked %.3fms total@." t.refusals_total
      (float_of_int t.blocked_total *. 1e-6);
    List.iteri
      (fun i ((obj, req, held), c) ->
        if i < top then
          Format.fprintf ppf "  %-18s %-22s vs %-22s %6d refusals %10.3fms blocked@." obj
            req held c.refusals
            (float_of_int c.blocked_ns *. 1e-6))
      (labelled_cells t)
  end
