let flag = Atomic.make true
let enabled () = Atomic.get flag
let set_enabled b = Atomic.set flag b
