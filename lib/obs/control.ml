let flag = Atomic.make true
let enabled () = Atomic.get flag
let set_enabled b = Atomic.set flag b

let toggle () =
  (* A racing toggle may double-flip; the switch is operator-facing, so
     last-write-wins is the semantics we want anyway. *)
  let now = not (Atomic.get flag) in
  Atomic.set flag now;
  now

let install_sigusr2 () =
  match Sys.signal Sys.sigusr2 (Sys.Signal_handle (fun _ -> ignore (toggle ()))) with
  | _prev -> true
  | exception (Invalid_argument _ | Sys_error _) -> false
