(** Span profiling: flight records in, latency quantiles and SLO
    verdicts out.

    The aggregator reassembles {!Flight} records into transaction spans
    (keyed on the transaction id; cross-shard branches share the global
    id, so 2PC legs stitch into one span) and accumulates per-phase and
    per-ADT-op nanosecond histograms.  It runs in two places: online as
    the flusher's observer (feeding the [/slo] endpoint and [top]'s
    phase pane), and offline over a decoded [flight.bin] (the [profile]
    subcommand and CI's [profile-smoke] job).

    Phase derivation, all from mark timestamp pairs — no extra clock
    reads on the hot path:
    - [lock_wait]: sum of [lock_wait]→[lock_resume] windows (the retry
      loop around a refused Conflict-relation check, paper Sec. 3);
    - [execute]: begin→(first WAL append | first prepare | end) minus
      lock waits;
    - [commit]: WAL append→end (local spans; includes the group-commit
      barrier);
    - [sync_wait]: sum of [sync_wait]→[sync_done] windows (the
      durability point, [sync_upto]);
    - [prepare]/[decide]: first-prepare→last-prepared and
      last-prepared→end (cross-shard spans; decide covers the forced
      Decision-log write — the global commit point);
    - [backoff] and [fsync] carry their duration in the record. *)

type stat = {
  st_count : int;
  st_mean : float;  (** seconds *)
  st_p50 : float;
  st_p99 : float;
  st_p999 : float;
  st_max : float;
}

type t

val create : ?lookup:(obj:int -> inv:int -> string * string) -> unit -> t
(** [lookup] resolves a per-op record to an (object name, op family)
    histogram key; the default reads the live {!Attrib} registry.
    Thread-safe: feed from the flusher, report from a server thread. *)

val attrib_lookup : obj:int -> inv:int -> string * string
val meta_lookup : Flight.meta -> obj:int -> inv:int -> string * string
(** Lookup against a decoded file's metadata chunk, for offline use. *)

val feed : t -> Flight.record -> unit
val feed_all : t -> Flight.record list -> unit

type report = {
  r_local : stat;  (** whole-span latency, single-shard commits *)
  r_cross : stat;  (** whole-span latency, cross-shard commits *)
  r_phases : (string * stat) list;
  r_ops : ((string * string) * stat) list;  (** (object, op family) *)
  r_spans : int;  (** committed spans closed *)
  r_aborts : int;
  r_open : int;  (** spans begun but not yet closed *)
  r_lost : int;  (** {!Flight.lost} at report time *)
  r_emitted : int;
}

val report : t -> report

val phase_names : string list

(** {1 SLO targets} *)

type target = { t_metric : string; t_quantile : float; t_limit_s : float }

val target_of_spec : string -> (target, string) result
(** Parse ["metric:quantile:limit"], e.g. ["local:p99:5ms"],
    ["cross:p999:50ms"], ["lock_wait:p90:800us"].  Metrics are [local],
    [cross], or a phase name; quantiles [p50]/[p90]/[p99]/[p999]/[max];
    limits take [us]/[ms]/[s] suffixes (bare numbers are seconds). *)

val targets_of_specs : string list -> (target list, string) result

type verdict = { v_target : target; v_actual : float; v_ok : bool }

val check : report -> target list -> verdict list
val breached : verdict list -> bool
(** True when any target is violated — the [profile] subcommand's
    non-zero exit, so a CI job can gate on the tail. *)

(** {1 Rendering} *)

val pp_report : Format.formatter -> report -> unit
val pp_verdicts : Format.formatter -> verdict list -> unit

val to_json : ?targets:target list -> t -> Json.t
(** The [/slo] endpoint body: span counts, per-phase stats, per-op
    stats, and a verdict per target. *)

val chrome_slices :
  ?lookup:(obj:int -> inv:int -> string * string) ->
  Flight.record list ->
  Export.slice list
(** Reduce decoded records to phase-nested trace slices for
    {!Export.chrome_spans}. *)
