module B = Util.Binio

(* Fixed-width 32-byte records, preassigned event codes, one cursor bump
   per event, no allocation on the emit path (the manticore log-gen
   idiom).  Each domain owns a private ring of [capacity] records; the
   cursor is the count of records ever written, published with a release
   store after the record bytes land, so the flusher (the only reader)
   never sees a half-written record it keeps. *)

let rec_bytes = 32

type record = {
  dom : int; (* flusher/decoder-assigned: the emitting domain *)
  code : int;
  aux16 : int;
  aux32 : int;
  txn : int;
  time : int; (* Clock.now_ns at emit *)
  arg : int;
}

(* ---- recording switch --------------------------------------------- *)

(* 0 = off, 1 = span marks (the always-on tier), 2 = + per-op detail.
   Gated on Control.enabled as well, so the operator's one switch still
   silences everything. *)
let level = Atomic.make 0

let set_level n = Atomic.set level (max 0 (min 2 n))
let recording () = Atomic.get level >= 1 && Control.enabled ()
let detailed () = Atomic.get level >= 2 && Control.enabled ()

(* ---- per-domain buffers ------------------------------------------- *)

type buffer = {
  data : Bytes.t;
  capacity : int; (* records *)
  cursor : int Atomic.t; (* records ever written by this domain *)
  mutable flushed : int; (* flusher-private watermark *)
  b_dom : int;
}

let default_capacity = ref (1 lsl 14)
let buffers : buffer list ref = ref []
let buffers_mu = Mutex.create ()

let make_buffer () =
  let cap = !default_capacity in
  let b =
    {
      data = Bytes.create (cap * rec_bytes);
      capacity = cap;
      cursor = Atomic.make 0;
      flushed = 0;
      b_dom = (Domain.self () :> int);
    }
  in
  Mutex.protect buffers_mu (fun () -> buffers := b :: !buffers);
  b

let key = Domain.DLS.new_key make_buffer

(* Rounded up to a power of two: the emit path masks instead of
   dividing. *)
let set_capacity cap =
  let cap = max 64 cap in
  let rec pow2 n = if n >= cap then n else pow2 (n * 2) in
  default_capacity := pow2 64

(* A 63-bit OCaml int as four 16-bit halfword stores: no Int64 boxing on
   the emit path.  Values are non-negative in practice (ids, monotonic
   times, durations); the decoder reconstructs them as such. *)
let set_i64 d off v =
  Bytes.set_uint16_le d off (v land 0xffff);
  Bytes.set_uint16_le d (off + 2) ((v lsr 16) land 0xffff);
  Bytes.set_uint16_le d (off + 4) ((v lsr 32) land 0xffff);
  Bytes.set_uint16_le d (off + 6) ((v lsr 48) land 0x7fff)

let get_i64 s off =
  B.r_u32_at s off
  lor (Char.code s.[off + 4] lsl 32)
  lor (Char.code s.[off + 5] lsl 40)
  lor (Char.code s.[off + 6] lsl 48)
  lor ((Char.code s.[off + 7] land 0x7f) lsl 56)

let emit ~code ~aux16 ~aux32 ~txn ~arg =
  if recording () then begin
    let b = Domain.DLS.get key in
    let n = Atomic.get b.cursor in
    let off = n land (b.capacity - 1) * rec_bytes in
    let d = b.data in
    Bytes.unsafe_set d off (Char.unsafe_chr (code land 0xff));
    Bytes.unsafe_set d (off + 1) '\000';
    Bytes.set_uint16_le d (off + 2) (aux16 land 0xffff);
    Bytes.set_uint16_le d (off + 4) (aux32 land 0xffff);
    Bytes.set_uint16_le d (off + 6) ((aux32 lsr 16) land 0xffff);
    set_i64 d (off + 8) txn;
    set_i64 d (off + 16) (Clock.now_ns ());
    set_i64 d (off + 24) arg;
    (* Release: the record is published only once its bytes are down. *)
    Atomic.set b.cursor (n + 1)
  end

let decode_at ~dom s off =
  {
    dom;
    code = Char.code s.[off];
    aux16 = Char.code s.[off + 2] lor (Char.code s.[off + 3] lsl 8);
    aux32 = B.r_u32_at s (off + 4);
    txn = get_i64 s (off + 8);
    time = get_i64 s (off + 16);
    arg = get_i64 s (off + 24);
  }

let emitted () =
  Mutex.protect buffers_mu (fun () ->
      List.fold_left (fun acc b -> acc + Atomic.get b.cursor) 0 !buffers)

let lost_count = Atomic.make 0
let lost () = Atomic.get lost_count

(* ---- draining ------------------------------------------------------

   Copy the unflushed window out of the ring, then re-read the cursor:
   any slot the writer may have re-entered during the copy (index below
   the writer's new tail, including the slot of the one record it may be
   mid-writing) is dropped and counted as lost rather than surfaced
   torn.  The flusher is the only mutator of [flushed]; [drain_mu]
   serializes it against explicit [flush_now] calls. *)

let drain_mu = Mutex.create ()

let drain_buffer b f =
  let cur = Atomic.get b.cursor in
  let lo = max b.flushed (cur - b.capacity) in
  let overwritten = lo - b.flushed in
  let n = cur - lo in
  let kept =
    if n = 0 then 0
    else begin
      (* The window is at most two contiguous ring segments. *)
      let tmp = Bytes.create (n * rec_bytes) in
      let start = lo land (b.capacity - 1) in
      let first = min n (b.capacity - start) in
      Bytes.blit b.data (start * rec_bytes) tmp 0 (first * rec_bytes);
      if first < n then
        Bytes.blit b.data 0 tmp (first * rec_bytes) ((n - first) * rec_bytes);
      let cur2 = Atomic.get b.cursor in
      (* Record cur2 is unpublished but its slot may already be dirty. *)
      let lo2 = max lo (cur2 + 1 - b.capacity) in
      let skip = min n (lo2 - lo) in
      if skip < n then
        f (Bytes.sub_string tmp (skip * rec_bytes) ((n - skip) * rec_bytes));
      ignore (Atomic.fetch_and_add lost_count (overwritten + skip) : int);
      n - skip
    end
  in
  b.flushed <- cur;
  kept

(* ---- file format ---------------------------------------------------

   [file]  ::= "HCCFLT01" chunk*
   [chunk] ::= magic:u32  kind:u8 0:u8 dom:u16  len:u32  crc32(payload):u32
               payload (len bytes)
   kind 1: payload is len/32 records from domain [dom];
   kind 2: payload is the label metadata table (Attrib export).

   Mirrors the WAL's torn-tail discipline: the first framing or CRC
   failure ends the parse, everything after it is the torn tail a
   crashed writer leaves behind. *)

let file_magic = "HCCFLT01"
let chunk_magic = 0x464C5443 (* "CTLF" little-endian *)
let chunk_header_bytes = 16

let frame_chunk buf ~kind ~dom payload =
  B.w_u32 buf chunk_magic;
  Buffer.add_char buf (Char.chr kind);
  Buffer.add_char buf '\000';
  Buffer.add_char buf (Char.chr (dom land 0xff));
  Buffer.add_char buf (Char.chr ((dom lsr 8) land 0xff));
  B.w_u32 buf (String.length payload);
  B.w_u32 buf (B.crc32 payload);
  Buffer.add_string buf payload

let encode_meta () =
  let buf = Buffer.create 256 in
  let objects = Attrib.export_objects () in
  let labels = Attrib.export_labels () in
  B.w_int buf (List.length objects);
  List.iter
    (fun (obj, name) ->
      B.w_int buf obj;
      B.w_string buf name)
    objects;
  B.w_int buf (List.length labels);
  List.iter
    (fun (obj, kind, code, l) ->
      B.w_int buf obj;
      B.w_tag buf
        (match kind with Attrib.Inv -> 0 | Attrib.Res -> 1 | Attrib.Op -> 2);
      B.w_int buf code;
      B.w_string buf l)
    labels;
  Buffer.contents buf

type meta = {
  m_objects : (int * string) list;
  m_labels : (int * int * int) list * (int * int * int -> string option);
}

let decode_meta s =
  let r = B.reader s in
  let objects = ref [] in
  let n = B.r_int r in
  for _ = 1 to n do
    let obj = B.r_int r in
    let name = B.r_string r in
    objects := (obj, name) :: !objects
  done;
  let tbl = Hashtbl.create 64 in
  let keys = ref [] in
  let n = B.r_int r in
  for _ = 1 to n do
    let obj = B.r_int r in
    let kind = B.r_tag r in
    let code = B.r_int r in
    let l = B.r_string r in
    let k = (obj, kind, code) in
    keys := k :: !keys;
    Hashtbl.replace tbl k l
  done;
  { m_objects = List.rev !objects; m_labels = (List.rev !keys, Hashtbl.find_opt tbl) }

let empty_meta = { m_objects = []; m_labels = ([], fun _ -> None) }

let meta_object_name meta obj =
  match List.assoc_opt obj meta.m_objects with
  | Some n -> n
  | None -> Printf.sprintf "obj#%d" obj

let meta_label meta ~obj ~kind code =
  match (snd meta.m_labels) (obj, kind, code) with
  | Some l -> l
  | None -> Printf.sprintf "op#%d" code

type tail = Clean | Torn of int

let parse s =
  let n = String.length s in
  let hn = String.length file_magic in
  if n < hn || String.sub s 0 hn <> file_magic then ([], empty_meta, Torn 0)
  else begin
    let records = ref [] in
    let meta = ref empty_meta in
    let rec go off =
      if off = n then Clean
      else if n - off < chunk_header_bytes then Torn off
      else if B.r_u32_at s off <> chunk_magic then Torn off
      else
        let kind = Char.code s.[off + 4] in
        let dom = Char.code s.[off + 6] lor (Char.code s.[off + 7] lsl 8) in
        let len = B.r_u32_at s (off + 8) in
        let crc = B.r_u32_at s (off + 12) in
        let start = off + chunk_header_bytes in
        if len < 0 || start + len > n then Torn off
        else if B.crc32 ~pos:start ~len s <> crc then Torn off
        else begin
          (match kind with
          | 1 ->
            if len mod rec_bytes <> 0 then raise Exit;
            for i = 0 to (len / rec_bytes) - 1 do
              records := decode_at ~dom s (start + (i * rec_bytes)) :: !records
            done
          | 2 -> (
            match decode_meta (String.sub s start len) with
            | m -> meta := m
            | exception B.Corrupt _ -> raise Exit)
          | _ -> raise Exit);
          go (start + len)
        end
    in
    let tail = try go hn with Exit -> Torn n in
    (List.rev !records, !meta, tail)
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      parse (really_input_string ic n))

(* ---- background flusher ------------------------------------------- *)

type sink = {
  mutable oc : out_channel option;
  mutable observer : (record -> unit) option;
}

let sink = { oc = None; observer = None }

let flush_once () =
  Mutex.protect drain_mu (fun () ->
      let bufs = Mutex.protect buffers_mu (fun () -> !buffers) in
      List.iter
        (fun b ->
          ignore
            (drain_buffer b (fun payload ->
                 (match sink.oc with
                 | Some oc ->
                   let chunk = Buffer.create (String.length payload + 32) in
                   frame_chunk chunk ~kind:1 ~dom:b.b_dom payload;
                   Buffer.output_buffer oc chunk
                 | None -> ());
                 match sink.observer with
                 | None -> ()
                 | Some f ->
                   let n = String.length payload / rec_bytes in
                   for i = 0 to n - 1 do
                     f (decode_at ~dom:b.b_dom payload (i * rec_bytes))
                   done)
              : int))
        bufs;
      match sink.oc with Some oc -> flush oc | None -> ())

let write_meta_chunk () =
  match sink.oc with
  | None -> ()
  | Some oc ->
    let chunk = Buffer.create 256 in
    frame_chunk chunk ~kind:2 ~dom:0 (encode_meta ());
    Buffer.output_buffer oc chunk;
    flush oc

type t = { thread : Thread.t; stopping : bool Atomic.t }

let start ?(period_ms = 50) ?path ?observer () =
  Mutex.protect drain_mu (fun () ->
      sink.oc <-
        Option.map
          (fun p ->
            let oc = open_out_bin p in
            output_string oc file_magic;
            oc)
          path;
      sink.observer <- observer);
  if Atomic.get level = 0 then set_level 1;
  (* Recorder self-telemetry for /metrics and top: emission volume and
     how much the flusher failed to keep up with. *)
  Gauge.callback "flight_emitted_records" (fun () -> float_of_int (emitted ()));
  Gauge.callback "flight_lost_records" (fun () -> float_of_int (lost ()));
  let stopping = Atomic.make false in
  let period_s = float_of_int (max 1 period_ms) /. 1000. in
  let loop () =
    while not (Atomic.get stopping) do
      flush_once ();
      Thread.delay period_s
    done
  in
  { thread = Thread.create loop (); stopping }

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    Thread.join t.thread;
    flush_once ();
    (* The label tables are interned lazily, so the close-time export is
       the most complete one; the decoder takes the last table seen. *)
    Mutex.protect drain_mu (fun () ->
        write_meta_chunk ();
        (match sink.oc with Some oc -> close_out oc | None -> ());
        sink.oc <- None;
        sink.observer <- None)
  end

(* Test support: forget every buffer and counter.  Only sound when no
   domain is emitting and no flusher is running. *)
let reset_for_tests () =
  Mutex.protect drain_mu (fun () ->
      Mutex.protect buffers_mu (fun () ->
          List.iter
            (fun b ->
              Atomic.set b.cursor 0;
              b.flushed <- 0)
            !buffers);
      Atomic.set lost_count 0)
