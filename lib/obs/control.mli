(** Global on/off switch for the observability layer.

    Instrumentation is compiled in unconditionally; this flag turns the
    fast-path work (metric increments, trace emission to the default
    sink) into a single atomic load plus a branch.  It defaults to {e on}
    — the layer is cheap enough to leave on (the [obs-overhead] bechamel
    group measures the difference) — and benchmarks flip it off to
    measure the no-op-registry baseline.

    The switch is {e runtime-toggleable}: the introspection server's
    [/control] endpoint calls {!set_enabled} on a live process, and
    {!install_sigusr2} wires the conventional signal so an operator can
    flip tracing on a running server with [kill -USR2] — no restart.
    Gauges ({!Gauge}) and audit verdict counters
    ({!Metrics.add_always}) deliberately bypass the switch: levels must
    not be corrupted and violations must not be hidden by a toggle.

    Explicitly attached trace sinks (see {!Trace} and
    [Runtime.Atomic_obj.create ~trace]) bypass the flag: a caller that
    wired a sink asked for the events. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val toggle : unit -> bool
(** Flip the switch; returns the new state. *)

val install_sigusr2 : unit -> bool
(** Install a SIGUSR2 handler that calls {!toggle}.  [false] when the
    platform does not support the signal. *)
