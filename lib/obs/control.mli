(** Global on/off switch for the observability layer.

    Instrumentation is compiled in unconditionally; this flag turns the
    fast-path work (metric increments, trace emission to the default
    sink) into a single atomic load plus a branch.  It defaults to {e on}
    — the layer is cheap enough to leave on (the [obs-overhead] bechamel
    group measures the difference) — and benchmarks flip it off to
    measure the no-op-registry baseline.

    Explicitly attached trace sinks (see {!Trace} and
    [Runtime.Atomic_obj.create ~trace]) bypass the flag: a caller that
    wired a sink asked for the events. *)

val enabled : unit -> bool
val set_enabled : bool -> unit
