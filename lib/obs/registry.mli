(** The unified instrument registry: one enumeration over everything
    the process measures.

    {!Metrics} owns counters and histograms (sharded, hot-path),
    {!Gauge} owns gauges (stored and callback); this module joins them
    into a single typed listing for renderers — {!Expose} turns it into
    Prometheus text, {!Metrics.dump_json} remains the line-JSON view of
    the counter/histogram half.

    It also owns {e snapshot channels}: named JSON providers registered
    by the subsystems that hold interesting state under their own locks.
    The runtime registers each atomic object's lock table into the
    ["locks"] channel and its compaction state into ["horizon"]; the
    transaction manager registers its clock; the WAL registers its
    live-set accounting.  The introspection server ({!Server}) serves a
    channel as one JSON array — so [lib/obs] never needs to know the
    runtime's types, and the runtime never needs to know HTTP.

    Registration is replace-on-[(channel, name)]: a server whose
    workload recreates objects under stable names keeps a bounded
    provider set. *)

type histogram_snapshot = {
  h_buckets : (float option * int) list;  (** ascending; [None] = +inf *)
  h_count : int;
  h_sum : float;  (** seconds *)
  h_p50 : float;
  h_p95 : float;
  h_p99 : float;
}

type instrument =
  | Counter of string * int
  | Gauge of Gauge.sample
  | Histogram of string * histogram_snapshot

val instruments : unit -> instrument list
(** Counters, then gauges, then histograms, each sorted by name; gauge
    callbacks are evaluated during the call. *)

val register_snapshot : channel:string -> name:string -> (unit -> Json.t) -> unit
(** The provider runs outside all registry locks and may take its own;
    an exception is rendered as an [{"name", "error"}] object instead of
    failing the whole snapshot. *)

val unregister_snapshot : channel:string -> name:string -> unit

val snapshot : string -> Json.t
(** The channel's providers, each evaluated now, as a JSON array sorted
    by provider name.  An unknown channel is the empty array. *)

val channel_names : unit -> string list
