(* Escrow-style partitioned Account.

   The naive partition — hash each operation's amount to a cell
   (Adt.Account.cell_of_amount) — is UNSOUND, and Spec.Partition proves
   it with a Definition-3 counterexample: every amount drains one
   shared balance, so a Debit in one cell invalidates Debit responses
   in another.  The partition tests keep that negative case.

   The sound construction splits the STATE, not the relation: the
   balance becomes the sum of [cells] sub-balances, each a full Account
   cell object running the unmodified Figure 4-5 relation.  Client
   operations become per-cell operation sequences whose legality per
   cell implies legality of the client response for the whole account:

   - [Credit n]: credit one cell (round-robin, spreading liquidity).
     Always Ok, like the whole account.
   - [Post n]: multiply every sub-balance.  Multiplication distributes
     over the sum — sum((1+n)*b_i) = (1+n)*sum(b_i) — so posting every
     cell IS posting the account.  This is the "whole-object op under
     partitioning" technique: a broadcast of real per-cell operations,
     not a bypass of the cell locks.
   - [Debit n]: try the full amount against one cell (the escrow fast
     path — no other cell is even touched); on Overdraft, sweep the
     cells draining what each holds, halving the probe amount on each
     refusal.  A probe's Overdraft response is a real operation that
     takes the Debit/Overdraft lock — conflicting with Credit/Post per
     Figure 4-5 — so once the sweep finishes, no concurrent Credit can
     have slipped into an already-swept cell before our serialization
     point: if the sweep could not raise [n], the account balance at
     that point is genuinely below [n] and the client-level Overdraft
     is serially correct.  The partial takes are then compensated with
     Credits (always legal) inside the same transaction, leaving the
     balance unchanged, exactly like a whole-account Overdraft. *)

module A = Adt.Account
module C = Cells.Make (Adt.Account)
module O = C.O

type t = { cells : C.t; n : int; rr : int Atomic.t }

let create ?name ?record ?trace ?wal ?(conflict = A.conflict_hybrid) ~cells () =
  {
    cells =
      C.create ?name ?record ?trace ?wal ~op_label:A.op_label ~cells ~conflict ();
    n = cells;
    rr = Atomic.make 0;
  }

let next_cell t = Atomic.fetch_and_add t.rr 1 mod t.n

let debit ?retries t txn amount =
  let start = next_cell t in
  match C.invoke ?retries t.cells txn ~cell:(Some start) (A.Debit amount) with
  | A.Ok -> A.Ok
  | A.Overdraft when amount <= 0 -> A.Overdraft (* unreachable: s >= 0 always *)
  | A.Overdraft ->
    let taken = Array.make t.n 0 in
    let remaining = ref amount in
    for off = 0 to t.n - 1 do
      let k = (start + off) mod t.n in
      let probe = ref !remaining in
      while !remaining > 0 && !probe > 0 do
        match C.invoke ?retries t.cells txn ~cell:(Some k) (A.Debit !probe) with
        | A.Ok ->
          taken.(k) <- taken.(k) + !probe;
          remaining := !remaining - !probe;
          probe := min !probe !remaining
        | A.Overdraft ->
          (* Halving terminates: reaching probe = 0 proves (within our
             view, which includes our own takes) this sub-balance is 0. *)
          probe := !probe / 2
      done
    done;
    if !remaining = 0 then A.Ok
    else begin
      (* Every cell drained to 0 in our view and the takes still fall
         short: the whole-account balance at our serialization point is
         amount - remaining < amount, so Overdraft is the legal client
         response.  Undo the partial takes within the transaction. *)
      for k = 0 to t.n - 1 do
        if taken.(k) > 0 then
          ignore (C.invoke ?retries t.cells txn ~cell:(Some k) (A.Credit taken.(k)) : A.res)
      done;
      A.Overdraft
    end

let invoke ?retries t txn = function
  | A.Credit n -> C.invoke ?retries t.cells txn ~cell:(Some (next_cell t)) (A.Credit n)
  | A.Post n ->
    for k = 0 to t.n - 1 do
      ignore (C.invoke ?retries t.cells txn ~cell:(Some k) (A.Post n) : A.res)
    done;
    A.Ok
  | A.Debit n -> debit ?retries t txn n

(* Account is deterministic: every cell's committed-state set is a
   singleton sub-balance; the account balance is their sum. *)
let committed_balance t =
  C.committed_states_by_cell t.cells
  |> List.fold_left
       (fun acc (_, states) -> match states with s :: _ -> acc + s | [] -> acc)
       0

let cells t = t.cells
let name t = C.name t.cells
let stats t = C.stats t.cells
let replay_check ?online t = C.replay_check ?online t.cells
let register_introspection t = C.register_introspection t.cells
