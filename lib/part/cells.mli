(** A keyed table of independently locked per-cell machines — the
    runtime realization of {!Spec.Partition}.

    Each cell is a complete {!Runtime.Atomic_obj} under its own mutex
    with its own LOCK machine, compaction horizon, WAL sub-object (cell
    key threaded through [Object]/[Intention]/[Checkpoint] records) and
    {!Obs.Attrib} registration — so the conflict-attribution matrices
    and the [/locks] endpoint show per-cell rows, and checkpointed
    recovery works per cell with no new recovery logic.  Cells are
    installed lazily: the fast path to a live cell is a single atomic
    load, and untouched cells cost nothing.

    Soundness is {!Spec.Partition}'s obligation, not this module's: the
    table implements [Spec.Partition.restrict conflict] structurally
    (different cells never test operations against each other), which
    preserves hybrid atomicity exactly when that restriction is still a
    dependency relation.  The partition test suite checks this with
    {!Spec.Dependency.Make.is_dependency_relation} for every shipped
    partition and keeps the unsound ones as negative cases. *)

module Make (A : Spec.Adt_sig.S) : sig
  module O : module type of Runtime.Atomic_obj.Make (A)

  type t

  val create :
    ?name:string ->
    ?record:bool ->
    ?trace:Obs.Trace.t ->
    ?wal:Wal.Log.t * (A.inv, A.res, A.state) Wal.Codec.t ->
    ?op_label:(O.op -> string) ->
    cells:int ->
    conflict:(O.op -> O.op -> bool) ->
    unit ->
    t
  (** A table of [cells] keyed cells plus one whole-object fallback.
      All per-object options are inherited by every cell; cell [k] is
      named ["<name>/cell<k>"] and created with [~cell:k]. *)

  val name : t -> string
  val n_cells : t -> int

  val cell : t -> int -> O.t
  (** The cell at a key in [\[0, n_cells)], installing it on first use. *)

  val fallback : t -> O.t
  (** The whole-object fallback cell (named ["<name>/whole"]).  A
      separate machine cannot conflict with operations already routed to
      keyed cells, so routing here is sound only when {e every}
      operation of the object routes here (whole-object locking riding
      the partition plumbing).  An ADT with genuinely mixed traffic must
      instead make the operation a wildcard in its partition spec and
      broadcast it across the keyed cells (see [Part.Paccount]'s
      [Post]). *)

  val try_invoke :
    t -> Runtime.Txn_rt.t -> cell:int option -> A.inv -> (A.res, Runtime.Retry.failure) result

  val invoke : ?retries:int -> t -> Runtime.Txn_rt.t -> cell:int option -> A.inv -> A.res
  (** Invoke on the cell at the key ([None] = {!fallback}). *)

  val created : t -> (int option * O.t) list
  (** Materialized cells in key order, [None] being the fallback. *)

  val stats : t -> O.stats
  (** Field-wise sum over materialized cells. *)

  val committed_states_by_cell : t -> (int option * A.state list) list

  val replay_check : ?online:bool -> t -> (unit, string) result
  (** Replay-audit every materialized cell; first failure wins.  Each
      cell is an atomic object in its own right and local atomicity
      composes, so all-cells-pass is the partition's correctness
      oracle. *)

  val register_introspection : t -> unit
  (** Register every materialized cell with the introspection registry
      (["locks"]/["horizon"] providers carry the cell key) and keep
      registering cells as they are installed. *)

  val unregister_introspection : t -> unit
end
