(* Key-partitioned Directory: the canonical positive case.  Every
   operation addresses exactly one key, dependency_hybrid already
   relates same-key operations only, so the cell restriction drops
   nothing and is trivially still a dependency relation — independent
   keys were never allowed to wait on each other, and here they no
   longer share a lock machine (or a mutex) either. *)

module A = Adt.Directory
module C = Cells.Make (Adt.Directory)
module P = Spec.Partition.Make (Adt.Directory)
module O = C.O

type t = { cells : C.t; n : int }

let create ?name ?record ?trace ?wal ?(conflict = A.conflict_hybrid) ~cells () =
  { cells = C.create ?name ?record ?trace ?wal ~cells ~conflict (); n = cells }

(* Fibonacci hashing spreads consecutive keys across cells; reduced mod
   n so any positive cell count works. *)
let cell_of_key t key = (key * 0x2545f49 land max_int) mod t.n

let route t i =
  match A.cell_of_inv i with
  | Some key -> Some (cell_of_key t key)
  | None -> None

let try_invoke t txn i = C.try_invoke t.cells txn ~cell:(route t i) i
let invoke ?retries t txn i = C.invoke ?retries t.cells txn ~cell:(route t i) i

(* The merged committed state: each cell holds the present keys hashed
   to it, so the logical directory is the sorted union.  Directory is
   deterministic — every cell's committed-state set is a singleton. *)
let committed_keys t =
  C.committed_states_by_cell t.cells
  |> List.concat_map (fun (_, states) -> match states with s :: _ -> s | [] -> [])
  |> List.sort_uniq compare

let cells t = t.cells
let name t = C.name t.cells
let stats t = C.stats t.cells
let replay_check ?online t = C.replay_check ?online t.cells
let register_introspection t = C.register_introspection t.cells

(* The offline soundness certificate Pdir relies on. *)
let is_sound ~depth = P.is_sound ~depth
