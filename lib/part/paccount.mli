(** Escrow-style partitioned Account.

    The balance is the sum of [cells] sub-balances, each a full Account
    cell object under the unmodified Figure 4-5 relation — splitting
    the {e state} where the naive by-amount relation split
    ({!Adt.Account.cell_of_amount}) is provably unsound.  [Credit]
    lands on one round-robin cell; [Post] broadcasts (multiplication
    distributes over the sum); [Debit] tries one cell and falls back to
    a draining sweep whose Overdraft probes take real Figure 4-5 locks,
    making the client-level Overdraft serially correct; partial takes
    are compensated inside the transaction.  Concurrent Debits that fit
    in different cells' sub-balances no longer conflict at all — the
    escrow concurrency gain — while the sweep path degrades to
    whole-account serialization exactly when the money is genuinely
    contended. *)

module A = Adt.Account
module C : module type of Cells.Make (Adt.Account)
module O = C.O

type t

val create :
  ?name:string ->
  ?record:bool ->
  ?trace:Obs.Trace.t ->
  ?wal:Wal.Log.t * (A.inv, A.res, A.state) Wal.Codec.t ->
  ?conflict:(A.op -> A.op -> bool) ->
  cells:int ->
  unit ->
  t
(** [conflict] (default {!Adt.Account.conflict_hybrid}) is installed
    per cell. *)

val invoke : ?retries:int -> t -> Runtime.Txn_rt.t -> A.inv -> A.res
(** The client-level operation; see the module doc for how each maps to
    per-cell operations.  Multi-cell paths ([Post], the [Debit] sweep)
    acquire locks across cells and rely on the runtime's wait-die
    restart to resolve cross-transaction cycles. *)

val committed_balance : t -> int
(** The logical balance: sum of every cell's committed sub-balance. *)

val name : t -> string
val cells : t -> C.t
val stats : t -> O.stats
val replay_check : ?online:bool -> t -> (unit, string) result
val register_introspection : t -> unit
