(* Head/tail-striped FIFO queue.

   A queue's state cannot be sharded into independent machines the way
   a directory's can — a Deq cell with its own state would see an empty
   queue and block (or worse, answer) independently of what the Enq
   cell holds.  The partitionable thing is the LOCKING: Enq works at
   the tail, Deq at the head, and under Figure 4-3 the two ends never
   conflict.  So Pfifo keeps one state machine and installs the
   cell-restricted relation [Spec.Partition.restrict] derives from the
   head/tail assignment (Adt.Fifo_queue.cell_of_inv) — lock striping
   rather than state sharding.

   The choice of base relation is exactly the paper's Figure 4-2 vs
   4-3 fork, now with a partition-soundness reading:
   - Figure 4-3 relates Enq-Enq and Deq-Deq only; both pairs are
     same-cell, the restriction drops nothing, and striping is sound
     ([validate] certifies it).
   - Figure 4-2 relates Deq to Enq; that pair is cross-cell, the
     restriction drops it, and the result is NOT a dependency relation
     — a Deq response can be invalidated by an Enq it no longer waits
     for.  [validate] returns the Definition-3 counterexample; the
     partition tests assert both outcomes. *)

module A = Adt.Fifo_queue
module P = Spec.Partition.Make (Adt.Fifo_queue)
module O = Runtime.Atomic_obj.Make (Adt.Fifo_queue)

type t = { obj : O.t }

let stripe_label op =
  let stripe =
    match P.cell_of_op op with
    | Some c when c = A.cell_head -> "head"
    | Some _ -> "tail"
    | None -> "whole"
  in
  stripe ^ ":" ^ A.op_label op

let create ?name ?record ?trace ?wal ?(conflict = A.conflict_fig_4_3) () =
  {
    obj =
      O.create ?name ?record ?trace ?wal ~op_label:stripe_label
        ~conflict:(P.restrict conflict) ();
  }

let try_invoke t txn i = O.try_invoke t.obj txn i
let invoke ?retries t txn i = O.invoke ?retries t.obj txn i
let committed_states t = O.committed_states t.obj
let name t = O.name t.obj
let stats t = O.stats t.obj
let history t = O.history t.obj
let replay_check ?online t = O.replay_check ?online t.obj
let register_introspection t = O.register_introspection t.obj

let validate ~depth conflict = P.check ~depth conflict
