(* A keyed table of per-cell lock machines: the runtime realization of
   Spec.Partition.  Each cell is a full Runtime.Atomic_obj — its own
   mutex, LOCK machine, horizon, trace interning, WAL sub-object — so
   operations in different cells contend on nothing at all, and every
   existing correctness and observability facility (replay audit,
   conflict attribution, checkpointed recovery) applies per cell
   unchanged.  The cell-restricted conflict relation this table
   implements is [Spec.Partition.restrict conflict]: operations in
   different cells are handled by different machines and are never
   tested against each other, which is sound exactly when the
   restriction is still a dependency relation (Definition 3) — checked
   offline by the partition tests, never assumed here. *)

module Make (A : Spec.Adt_sig.S) = struct
  module O = Runtime.Atomic_obj.Make (A)

  type t = {
    name : string;
    n_cells : int;
    conflict : O.op -> O.op -> bool;
    op_label : (O.op -> string) option;
    record : bool;
    trace : Obs.Trace.t option;
    wal : (Wal.Log.t * (A.inv, A.res, A.state) Wal.Codec.t) option;
    (* Lazily installed cells, index [n_cells] being the whole-object
       fallback.  The no-conflict fast path is one atomic load; the
       slow path (first operation ever to touch a cell) builds the
       machine under [install] and publishes it with a CAS-style
       [Atomic.set], so a cell that was never touched costs nothing —
       a Directory partitioned into many cells allocates machines only
       for keys the workload actually uses. *)
    slots : O.t option Atomic.t array;
    install : Mutex.t;
    mutable introspect : bool; (* register cells as they appear *)
  }

  let create ?name ?(record = false) ?trace ?wal ?op_label ~cells ~conflict () =
    if cells <= 0 then invalid_arg "Part.Cells.create: cells must be positive";
    let name =
      match name with
      | Some n -> n
      | None -> Printf.sprintf "%s/part#%d" A.name (Runtime.Txn_rt.fresh_object_key ())
    in
    {
      name;
      n_cells = cells;
      conflict;
      op_label;
      record;
      trace;
      wal;
      slots = Array.init (cells + 1) (fun _ -> Atomic.make None);
      install = Mutex.create ();
      introspect = false;
    }

  let name t = t.name
  let n_cells t = t.n_cells

  let cell_name t k =
    if k = t.n_cells then t.name ^ "/whole" else Printf.sprintf "%s/cell%d" t.name k

  let install_slot t k =
    Mutex.lock t.install;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.install)
      (fun () ->
        let slot = t.slots.(k) in
        match Atomic.get slot with
        | Some o -> o (* lost the install race; reuse the winner *)
        | None ->
          let cell = if k = t.n_cells then None else Some k in
          let o =
            O.create ~name:(cell_name t k) ?cell ~record:t.record ?trace:t.trace
              ?wal:t.wal ?op_label:t.op_label ~conflict:t.conflict ()
          in
          if t.introspect then O.register_introspection o;
          Atomic.set slot (Some o);
          o)

  let slot t k =
    match Atomic.get t.slots.(k) with Some o -> o | None -> install_slot t k

  let cell t k =
    if k < 0 || k >= t.n_cells then
      invalid_arg (Printf.sprintf "Part.Cells.cell: %d outside [0, %d)" k t.n_cells);
    slot t k

  (* The whole-object fallback cell.  A separate machine cannot conflict
     with operations already routed to keyed cells, so routing an
     operation here is sound only in the degenerate regime where every
     operation of the object routes here (whole-object locking under the
     partition plumbing) — which is exactly how non-partitionable ADTs
     ride this table.  Mixed routing requires the partition spec to make
     the operation a wildcard and the implementation to broadcast it to
     the keyed cells instead (see Part.Paccount's Post). *)
  let fallback t = slot t t.n_cells

  let target t = function
    | Some k -> cell t k
    | None -> fallback t

  let try_invoke t txn ~cell:c i = O.try_invoke (target t c) txn i
  let invoke ?retries t txn ~cell:c i = O.invoke ?retries (target t c) txn i

  let created t =
    let acc = ref [] in
    for k = Array.length t.slots - 1 downto 0 do
      match Atomic.get t.slots.(k) with
      | Some o -> acc := ((if k = t.n_cells then None else Some k), o) :: !acc
      | None -> ()
    done;
    !acc

  let stats t =
    List.fold_left
      (fun (acc : O.stats) (_, o) ->
        let s = O.stats o in
        {
          O.invocations = acc.O.invocations + s.O.invocations;
          conflicts = acc.O.conflicts + s.O.conflicts;
          blocked = acc.O.blocked + s.O.blocked;
          commits = acc.O.commits + s.O.commits;
          aborts = acc.O.aborts + s.O.aborts;
          forgotten = acc.O.forgotten + s.O.forgotten;
        })
      {
        O.invocations = 0;
        conflicts = 0;
        blocked = 0;
        commits = 0;
        aborts = 0;
        forgotten = 0;
      }
      (created t)

  let committed_states_by_cell t =
    List.map (fun (k, o) -> (k, O.committed_states o)) (created t)

  (* Replay-audit every materialized cell: each cell is an atomic object
     in its own right, and local atomicity composes (the paper's
     locality argument), so per-cell verdicts are the partition's
     correctness oracle. *)
  let replay_check ?online t =
    List.fold_left
      (fun acc (_, o) ->
        match acc with
        | Error _ -> acc
        | Ok () -> (
          match O.replay_check ?online o with
          | Ok () -> Ok ()
          | Error e -> Error (O.name o ^ ": " ^ e)))
      (Ok ()) (created t)

  let register_introspection t =
    t.introspect <- true;
    List.iter (fun (_, o) -> O.register_introspection o) (created t)

  let unregister_introspection t =
    t.introspect <- false;
    List.iter (fun (_, o) -> O.unregister_introspection o) (created t)
end
