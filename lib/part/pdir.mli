(** Key-partitioned Directory — the canonical positive partition.

    One cell per hashed key: {!Adt.Directory.cell_of_inv} is total (every
    operation addresses exactly one key) and
    {!Adt.Directory.dependency_hybrid} already relates same-key
    operations only, so the cell restriction drops no pairs and remains
    a dependency relation verbatim ({!is_sound} asserts it).  What
    changes is the {e mechanism}: independent keys, which the
    whole-object machine already never made wait on each other, now stop
    sharing a lock machine and a mutex entirely — and a lock manager
    blind to keys (see {!Adt.Directory.conflict_whole_object}) is beaten
    by construction, which the key-partitioned experiment quantifies via
    fired-conflict mass. *)

module A = Adt.Directory
module C : module type of Cells.Make (Adt.Directory)
module P : module type of Spec.Partition.Make (Adt.Directory)
module O = C.O

type t

val create :
  ?name:string ->
  ?record:bool ->
  ?trace:Obs.Trace.t ->
  ?wal:Wal.Log.t * (A.inv, A.res, A.state) Wal.Codec.t ->
  ?conflict:(A.op -> A.op -> bool) ->
  cells:int ->
  unit ->
  t
(** [conflict] defaults to {!Adt.Directory.conflict_hybrid} and is
    installed per cell (already same-key-only, i.e. its own cell
    restriction). *)

val cell_of_key : t -> int -> int
(** The cell index a directory key hashes to. *)

val try_invoke : t -> Runtime.Txn_rt.t -> A.inv -> (A.res, Runtime.Retry.failure) result
val invoke : ?retries:int -> t -> Runtime.Txn_rt.t -> A.inv -> A.res

val committed_keys : t -> int list
(** The logical directory contents: sorted union of every cell's
    committed state. *)

val name : t -> string
val cells : t -> C.t
val stats : t -> O.stats
val replay_check : ?online:bool -> t -> (unit, string) result
val register_introspection : t -> unit

val is_sound : depth:int -> bool
(** The partition's offline certificate:
    [Spec.Partition.Make(Directory)] restricted invalidated-by is still
    a dependency relation. *)
