(** Head/tail-striped FIFO queue — lock striping, not state sharding.

    Queue state cannot be split into independent per-cell machines (a
    standalone Deq cell has no legal response on its own empty state),
    so the cells here are {e lock stripes} over one state machine: the
    installed relation is [Spec.Partition.restrict] of a base relation
    under the head/tail assignment {!Adt.Fifo_queue.cell_of_inv}.  With
    the default Figure 4-3 base the restriction drops nothing and is
    certified sound by {!validate}; with Figure 4-2
    ({!Adt.Fifo_queue.conflict_hybrid}) it drops the cross-stripe
    Deq-depends-on-Enq pairs and {!validate} returns the Definition-3
    counterexample — the partition tests assert both.  Interned
    operation labels are prefixed with their stripe (["head:Deq"],
    ["tail:Enq"]) so attribution matrices and the [/locks] endpoint
    show per-stripe rows. *)

module A = Adt.Fifo_queue
module P : module type of Spec.Partition.Make (Adt.Fifo_queue)
module O : module type of Runtime.Atomic_obj.Make (Adt.Fifo_queue)

type t

val create :
  ?name:string ->
  ?record:bool ->
  ?trace:Obs.Trace.t ->
  ?wal:Wal.Log.t * (A.inv, A.res, A.state) Wal.Codec.t ->
  ?conflict:(A.op -> A.op -> bool) ->
  unit ->
  t
(** [conflict] is the {e base} relation (default
    {!Adt.Fifo_queue.conflict_fig_4_3}); the machine installs its
    head/tail restriction.  Validate unfamiliar bases with {!validate}
    first — creation does not re-run the (exponential) soundness
    check. *)

val try_invoke : t -> Runtime.Txn_rt.t -> A.inv -> (A.res, Runtime.Retry.failure) result
val invoke : ?retries:int -> t -> Runtime.Txn_rt.t -> A.inv -> A.res
val committed_states : t -> A.state list
val name : t -> string
val stats : t -> O.stats
val history : t -> Model.History.Make(A).t
val replay_check : ?online:bool -> t -> (unit, string) result
val register_introspection : t -> unit

val validate : depth:int -> (A.op -> A.op -> bool) -> (unit, string) result
(** Is the head/tail restriction of a base relation still a dependency
    relation?  [Error] carries the rendered counterexample. *)
