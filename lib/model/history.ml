module Make (A : Spec.Adt_sig.S) = struct
  module Seq = Spec.Sequences.Make (A)

  type event =
    | Invoke of Txn.t * A.inv
    | Respond of Txn.t * A.res
    | Commit of Txn.t * Timestamp.t
    | Abort of Txn.t

  type t = event list

  let event_txn = function
    | Invoke (p, _) | Respond (p, _) | Commit (p, _) | Abort p -> p

  let pp_event ppf = function
    | Invoke (p, i) -> Format.fprintf ppf "<%a, %a>" A.pp_inv i Txn.pp p
    | Respond (p, r) -> Format.fprintf ppf "<%a, %a>" A.pp_res r Txn.pp p
    | Commit (p, ts) -> Format.fprintf ppf "<commit(%a), %a>" Timestamp.pp ts Txn.pp p
    | Abort p -> Format.fprintf ppf "<abort, %a>" Txn.pp p

  let pp ppf h =
    Format.fprintf ppf "@[<v>%a@]" (Format.pp_print_list pp_event) h

  let transactions h =
    List.fold_left
      (fun acc e ->
        let p = event_txn e in
        if List.exists (Txn.equal p) acc then acc else acc @ [ p ])
      [] h

  let restrict h p = List.filter (fun e -> Txn.equal (event_txn e) p) h
  let restrict_set h ps = List.filter (fun e -> List.exists (Txn.equal (event_txn e)) ps) h

  let committed h =
    transactions h
    |> List.filter (fun p ->
           List.exists (function Commit (q, _) -> Txn.equal p q | _ -> false) h)

  let aborted h =
    transactions h
    |> List.filter (fun p ->
           List.exists (function Abort q -> Txn.equal p q | _ -> false) h)

  let completed h = committed h @ aborted h

  let active h =
    let done_ = completed h in
    List.filter (fun p -> not (List.exists (Txn.equal p) done_)) (transactions h)

  let permanent h = restrict_set h (committed h)

  let timestamp_of h p =
    List.find_map (function Commit (q, ts) when Txn.equal p q -> Some ts | _ -> None) h

  let op_seq_txn h p =
    let rec go pending acc = function
      | [] -> List.rev acc
      | Invoke (_, i) :: rest -> go (Some i) acc rest
      | Respond (_, r) :: rest -> (
        match pending with
        | Some i -> go None ((i, r) :: acc) rest
        | None -> go None acc rest (* ill-formed; ignore orphan response *))
      | (Commit _ | Abort _) :: rest -> go pending acc rest
    in
    go None [] (restrict h p)

  let serial h order = List.concat_map (restrict h) order
  let op_seq_in_order h order = List.concat_map (op_seq_txn h) order

  let precedes h p q =
    (* Scan left to right; once P's commit is seen, any response of Q
       establishes (P, Q). *)
    let rec go seen_commit = function
      | [] -> false
      | Commit (r, _) :: rest when Txn.equal r p -> go true rest
      | Respond (r, _) :: _ when seen_commit && Txn.equal r q -> true
      | _ :: rest -> go seen_commit rest
    in
    (not (Txn.equal p q)) && go false h

  let ts_lt h p q =
    match (timestamp_of h p, timestamp_of h q) with
    | Some tp, Some tq -> Timestamp.compare tp tq < 0
    | (None | Some _), _ -> false

  let known h p q = precedes h p q || ts_lt h p q

  let timestamps_respect_precedes h =
    let cs = committed h in
    List.for_all
      (fun p -> List.for_all (fun q -> (not (precedes h p q)) || ts_lt h p q) cs)
      cs

  let well_formed h =
    let ( let* ) = Result.bind in
    let err fmt = Format.kasprintf (fun s -> Error s) fmt in
    let check_txn p =
      let hp = restrict h p in
      let is_committed = List.exists (function Commit _ -> true | _ -> false) hp in
      let is_aborted = List.exists (function Abort _ -> true | _ -> false) hp in
      let* () =
        if is_committed && is_aborted then err "%a both commits and aborts" Txn.pp p
        else Ok ()
      in
      (* Alternation of invocations and responses. *)
      let rec alternation pending = function
        | [] -> Ok pending
        | Invoke _ :: rest ->
          if pending then err "%a invokes while an invocation is pending" Txn.pp p
          else alternation true rest
        | Respond _ :: rest ->
          if pending then alternation false rest
          else err "%a receives a response with no pending invocation" Txn.pp p
        | (Commit _ | Abort _) :: rest -> alternation pending rest
      in
      let* pending = alternation false hp in
      if is_committed then begin
        (* op-events followed by commit events, ending in a response *)
        let rec after_commit seen = function
          | [] -> Ok ()
          | Commit _ :: rest -> after_commit true rest
          | (Invoke _ | Respond _) :: rest ->
            if seen then err "%a executes operations after committing" Txn.pp p
            else after_commit seen rest
          | Abort _ :: _ -> err "%a both commits and aborts" Txn.pp p
        in
        let* () = after_commit false hp in
        if pending then err "%a commits with a pending invocation" Txn.pp p else Ok ()
      end
      else Ok ()
    in
    let rec check_all = function
      | [] -> Ok ()
      | p :: rest ->
        let* () = check_txn p in
        check_all rest
    in
    let* () = check_all (transactions h) in
    (* Timestamp uniqueness and consistency. *)
    let commits =
      List.filter_map (function Commit (p, ts) -> Some (p, ts) | _ -> None) h
    in
    let rec check_ts = function
      | [] -> Ok ()
      | (p, ts) :: rest ->
        let* () =
          if
            List.exists
              (fun (q, ts') ->
                if Txn.equal p q then not (Timestamp.equal ts ts')
                else Timestamp.equal ts ts')
              rest
          then err "timestamp clash involving %a" Txn.pp p
          else Ok ()
        in
        check_ts rest
    in
    check_ts commits
end
