type t = { id : int; label : string }

let make ?label id =
  let label = match label with Some l -> l | None -> Printf.sprintf "T%d" id in
  { id; label }

let id t = t.id
let label t = t.label
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let pp ppf t = Format.pp_print_string ppf t.label
