module Make (A : Spec.Adt_sig.S) = struct
  module H = History.Make (A)

  let acceptable h = H.Seq.legal (H.op_seq_in_order h (H.transactions h))
  let serializable_in h order = H.Seq.legal (H.op_seq_in_order h order)

  let serializable h =
    List.exists (serializable_in h) (Util.Combinat.permutations (H.transactions h))

  let atomic h = serializable (H.permanent h)

  let ts_order h =
    (* Committed transactions sorted by commit timestamp. *)
    let cs = H.committed h in
    let key p = match H.timestamp_of h p with Some ts -> ts | None -> assert false in
    List.sort (fun p q -> Timestamp.compare (key p) (key q)) cs

  let hybrid_atomic h =
    let perm = H.permanent h in
    serializable_in perm (ts_order h)

  let online_hybrid_atomic h =
    let commit_sets =
      List.map (fun s -> H.committed h @ s) (Util.Combinat.subsets (H.active h))
    in
    List.for_all
      (fun c ->
        let hc = H.restrict_set h c in
        let orders = Util.Combinat.topological_orders c (H.known h) in
        List.for_all (serializable_in hc) orders)
      commit_sets
end
