(** Transaction identifiers.

    The formal model (paper Section 2) ranges over an abstract set of
    transactions; we use small integers with an optional display name so
    test histories read like the paper's examples ([P], [Q], [R]). *)

type t

val make : ?label:string -> int -> t
val id : t -> int
val label : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
