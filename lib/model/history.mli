(** Histories over a single object (paper Section 2).

    A history is a sequence of events at the interface between
    transactions and one object [X].  (Atomicity properties are local —
    defined object by object — so the formal machinery is a functor over
    one serial specification; the multi-object runtime composes objects
    and checks each one locally, which Theorem 1 makes sufficient for
    global atomicity.)

    Events are listed oldest first. *)

module Make (A : Spec.Adt_sig.S) : sig
  module Seq : module type of Spec.Sequences.Make (A)

  type event =
    | Invoke of Txn.t * A.inv
    | Respond of Txn.t * A.res
    | Commit of Txn.t * Timestamp.t
    | Abort of Txn.t

  type t = event list

  val event_txn : event -> Txn.t
  val pp_event : Format.formatter -> event -> unit
  val pp : Format.formatter -> t -> unit

  (** {1 Restriction and projection} *)

  val transactions : t -> Txn.t list
  (** In order of first appearance, without duplicates. *)

  val restrict : t -> Txn.t -> t
  (** [H|P]: the subsequence of events involving transaction [P]. *)

  val restrict_set : t -> Txn.t list -> t
  (** [H|C] for a set of transactions. *)

  val committed : t -> Txn.t list
  val aborted : t -> Txn.t list
  val completed : t -> Txn.t list
  val active : t -> Txn.t list
  (** Transactions appearing in [H] that neither commit nor abort. *)

  val permanent : t -> t
  (** [H | committed(H)] — the events of committed transactions. *)

  val timestamp_of : t -> Txn.t -> Timestamp.t option
  (** The commit timestamp of [P] in [H], if [P] commits. *)

  (** {1 Operation sequences} *)

  val op_seq_txn : t -> Txn.t -> Seq.op list
  (** [OpSeq(H|P)]: invocation events paired with their responses,
      pending invocations and completion events discarded. *)

  val serial : t -> Txn.t list -> t
  (** [Serial(H, T)]: the equivalent serial history with transactions in
      the order [T] (which must list every transaction of [H]). *)

  val op_seq_in_order : t -> Txn.t list -> Seq.op list
  (** [OpSeq(Serial(H, T))] — concatenation of per-transaction operation
      sequences in the order [T]. *)

  (** {1 Orders on transactions} *)

  val precedes : t -> Txn.t -> Txn.t -> bool
  (** [(P, Q) ∈ precedes(H)] iff some operation invoked by [Q] returns a
      result after [P] commits — the potential information flow that any
      two-phase mechanism induces. *)

  val ts_lt : t -> Txn.t -> Txn.t -> bool
  (** [(P, Q) ∈ TS(H)] iff both commit and [P]'s timestamp is smaller. *)

  val known : t -> Txn.t -> Txn.t -> bool
  (** [Known(H) = precedes(H) ∪ TS(H)] (Section 3.4). *)

  val timestamps_respect_precedes : t -> bool
  (** The constraint on timestamp generation: [precedes(H) ⊆ TS(H)] on
      committed transactions. *)

  (** {1 Well-formedness} (Section 2)} *)

  val well_formed : t -> (unit, string) result
  (** Checks: alternation of invocations and responses per transaction;
      no transaction both commits and aborts; committed transactions
      stop invoking and have no pending invocation; commit timestamps are
      unique across transactions and consistent within one. *)
end
