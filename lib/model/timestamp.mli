(** Commit timestamps: a countable totally ordered set (paper Section 2).

    Timestamps are drawn by transactions at commit time; well-formedness
    requires distinct transactions to pick distinct timestamps.  We use
    integers. *)

type t = int

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
