(** Global (multi-object) histories over two typed objects.

    Atomicity properties in this development are {e local} — defined
    object by object — because that is the paper's point (Section 3.3):
    locality is what makes systems composable.  This module provides the
    global side needed to state and test that point: histories whose
    events are tagged with one of two objects, global well-formedness
    (one pending invocation per transaction across the whole system,
    consistent commit timestamps everywhere), and global atomicity — one
    total order serializing {e both} objects simultaneously.

    Two things are checked with it in the test suite:
    - the paper's motivating failure: two objects each using a
      "correct" (locally atomic) but {e incompatible} serialization
      policy compose into a globally non-serializable system;
    - Theorem 1 at the formal level: when both objects are hybrid
      atomic, the global history is atomic — indeed serializable in the
      shared commit-timestamp order. *)

module Make (X : Spec.Adt_sig.S) (Y : Spec.Adt_sig.S) : sig
  module HX : module type of History.Make (X)
  module HY : module type of History.Make (Y)

  type event = At_x of HX.event | At_y of HY.event
  type t = event list

  val project_x : t -> HX.t
  val project_y : t -> HY.t

  val transactions : t -> Txn.t list
  (** In order of first appearance anywhere in the system. *)

  val well_formed : t -> (unit, string) result
  (** Global Section 2 constraints: per-transaction alternation of
      invocations and responses {e across objects} (at most one pending
      invocation system-wide, answered at the object it was issued to);
      commit/abort exclusivity; commit timestamps consistent for one
      transaction across objects and unique across transactions. *)

  val serializable_in : t -> Txn.t list -> bool
  (** Both projections are serializable in the same order. *)

  val serializable : t -> bool
  val atomic : t -> bool
  (** [permanent] (committed-only) events are globally serializable. *)

  val hybrid_atomic : t -> bool
  (** Globally serializable in the shared commit-timestamp order. *)
end
