module Make (X : Spec.Adt_sig.S) (Y : Spec.Adt_sig.S) = struct
  module HX = History.Make (X)
  module HY = History.Make (Y)

  type event = At_x of HX.event | At_y of HY.event
  type t = event list

  let project_x h = List.filter_map (function At_x e -> Some e | At_y _ -> None) h
  let project_y h = List.filter_map (function At_y e -> Some e | At_x _ -> None) h

  let event_txn = function
    | At_x e -> HX.event_txn e
    | At_y e -> HY.event_txn e

  let transactions h =
    List.fold_left
      (fun acc e ->
        let p = event_txn e in
        if List.exists (Txn.equal p) acc then acc else acc @ [ p ])
      [] h

  (* Classify an event for the global alternation/commit checks without
     caring which object it is at. *)
  type kind = Inv of [ `X | `Y ] | Res of [ `X | `Y ] | Commit of Timestamp.t | Abort

  let kind = function
    | At_x (HX.Invoke _) -> Inv `X
    | At_x (HX.Respond _) -> Res `X
    | At_x (HX.Commit (_, ts)) -> Commit ts
    | At_x (HX.Abort _) -> Abort
    | At_y (HY.Invoke _) -> Inv `Y
    | At_y (HY.Respond _) -> Res `Y
    | At_y (HY.Commit (_, ts)) -> Commit ts
    | At_y (HY.Abort _) -> Abort

  let well_formed h =
    let ( let* ) = Result.bind in
    let err fmt = Format.kasprintf (fun s -> Error s) fmt in
    let check_txn p =
      let events = List.filter (fun e -> Txn.equal (event_txn e) p) h in
      let kinds = List.map kind events in
      (* alternation across the whole system, responses at the pending
         invocation's object *)
      let rec alternation pending = function
        | [] -> Ok pending
        | Inv obj :: rest -> (
          match pending with
          | None -> alternation (Some obj) rest
          | Some _ -> err "%a invokes while an invocation is pending" Txn.pp p)
        | Res obj :: rest -> (
          match pending with
          | Some obj' when obj = obj' -> alternation None rest
          | Some _ -> err "%a answered at the wrong object" Txn.pp p
          | None -> err "%a receives a response with no pending invocation" Txn.pp p)
        | (Commit _ | Abort) :: rest -> alternation pending rest
      in
      let* pending = alternation None kinds in
      let commits = List.filter_map (function Commit ts -> Some ts | _ -> None) kinds in
      let aborts = List.exists (function Abort -> true | _ -> false) kinds in
      let* () =
        if commits <> [] && aborts then err "%a both commits and aborts" Txn.pp p
        else Ok ()
      in
      let* () =
        match commits with
        | [] -> Ok ()
        | ts :: rest ->
          if List.for_all (Timestamp.equal ts) rest then Ok ()
          else err "%a commits with different timestamps" Txn.pp p
      in
      let* () =
        if commits <> [] then begin
          (* no operations after the first commit, no pending invocation *)
          let rec after_commit committed = function
            | [] -> Ok ()
            | Commit _ :: rest -> after_commit true rest
            | (Inv _ | Res _) :: rest ->
              if committed then err "%a executes operations after committing" Txn.pp p
              else after_commit committed rest
            | Abort :: _ -> err "%a both commits and aborts" Txn.pp p
          in
          let* () = after_commit false kinds in
          if pending <> None then err "%a commits with a pending invocation" Txn.pp p
          else Ok ()
        end
        else Ok ()
      in
      Ok ()
    in
    let rec check_all = function
      | [] -> Ok ()
      | p :: rest ->
        let* () = check_txn p in
        check_all rest
    in
    let* () = check_all (transactions h) in
    (* unique timestamps across transactions *)
    let commits =
      List.filter_map
        (fun e -> match kind e with Commit ts -> Some (event_txn e, ts) | _ -> None)
        h
    in
    let rec check_ts = function
      | [] -> Ok ()
      | (p, ts) :: rest ->
        if
          List.exists
            (fun (q, ts') -> (not (Txn.equal p q)) && Timestamp.equal ts ts')
            rest
        then err "timestamp clash involving %a" Txn.pp p
        else check_ts rest
    in
    check_ts commits

  let serializable_in h order =
    HX.Seq.legal (HX.op_seq_in_order (project_x h) order)
    && HY.Seq.legal (HY.op_seq_in_order (project_y h) order)

  let serializable h =
    List.exists (serializable_in h) (Util.Combinat.permutations (transactions h))

  let committed h =
    transactions h
    |> List.filter (fun p ->
           List.exists
             (fun e -> Txn.equal (event_txn e) p && match kind e with Commit _ -> true | _ -> false)
             h)

  let permanent h =
    let cs = committed h in
    List.filter (fun e -> List.exists (Txn.equal (event_txn e)) cs) h

  let atomic h = serializable (permanent h)

  let hybrid_atomic h =
    let perm = permanent h in
    let ts_of p =
      List.find_map
        (fun e ->
          if Txn.equal (event_txn e) p then
            match kind e with Commit ts -> Some ts | _ -> None
          else None)
        h
    in
    let order =
      committed h
      |> List.sort (fun p q ->
             match (ts_of p, ts_of q) with
             | Some a, Some b -> Timestamp.compare a b
             | _ -> assert false)
    in
    serializable_in perm order
end
