(** Atomicity properties of histories (paper Section 3).

    All checkers are exact, brute-force decision procedures intended for
    test-sized histories: [serializable] tries every permutation of the
    transactions, and [online_hybrid_atomic] additionally quantifies over
    every commit set and every total order consistent with [Known(H)].
    They are the executable ground truth against which the protocol
    implementation is validated (Theorems 11/16/17). *)

module Make (A : Spec.Adt_sig.S) : sig
  module H : module type of History.Make (A)

  val acceptable : H.t -> bool
  (** The history — assumed serial and failure-free — corresponds to a
      legal operation sequence of the serial specification. *)

  val serializable_in : H.t -> Txn.t list -> bool
  (** [OpSeq(Serial(H, T))] is legal, for failure-free [H]. *)

  val serializable : H.t -> bool
  (** Some total order of the transactions witnesses serializability. *)

  val atomic : H.t -> bool
  (** [permanent(H)] is serializable (Section 3.2). *)

  val hybrid_atomic : H.t -> bool
  (** [permanent(H)] is serializable in commit-timestamp order
      (Section 3.3). *)

  val online_hybrid_atomic : H.t -> bool
  (** Section 3.4: for every commit set [C] (committed transactions plus
      any subset of active ones) and every total order [T] on [C]
      consistent with [Known(H)], [H|C] is serializable in [T].  Implies
      {!hybrid_atomic} (Lemma 2). *)
end
