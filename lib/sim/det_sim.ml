module Make (A : Spec.Adt_sig.S) = struct
  module C = Hybrid.Compacted.Make (A)
  module H = C.H

  type script = A.inv list list

  type config = {
    think : int;
    retry_quantum : int;
    restart_delay : int;
    max_attempts : int;
  }

  let default_config =
    { think = 100; retry_quantum = 20; restart_delay = 50; max_attempts = 1000 }

  type result = {
    committed : int;
    restarts : int;
    conflicts : int;
    blocked : int;
    makespan : int;
    busy : int;
  }

  let concurrency r =
    if r.makespan = 0 then 1. else float_of_int r.busy /. float_of_int r.makespan

  let pp_result ppf r =
    Format.fprintf ppf
      "committed=%d restarts=%d conflicts=%d blocked=%d makespan=%d concurrency=%.2f"
      r.committed r.restarts r.conflicts r.blocked r.makespan (concurrency r)

  (* Per-worker cursor through its script. *)
  type worker = {
    script : A.inv list array;
    mutable txn_idx : int;
    mutable op_idx : int;
    mutable txn : Model.Txn.t; (* current attempt's identity *)
    mutable priority : int; (* first attempt's sequence number, stable *)
    mutable attempts : int;
    mutable done_ : bool;
  }

  module Events = Map.Make (struct
    type t = int * int (* virtual time, insertion sequence *)

    let compare = compare
  end)

  let run ?(config = default_config) ?(prefill = []) ~conflict scripts =
    let machine = ref (C.create ~conflict) in
    let txn_ids = ref 0 in
    let ts = ref 0 in
    let fresh_txn () =
      incr txn_ids;
      Model.Txn.make !txn_ids
    in
    (* commit the prefill as one instantaneous transaction *)
    if prefill <> [] then begin
      let q = fresh_txn () in
      List.iter
        (fun i ->
          (match C.step !machine (H.Invoke (q, i)) with
          | Ok m -> machine := m
          | Error _ -> assert false);
          match C.choose_response !machine q with
          | Ok (_, m) -> machine := m
          | Error _ -> failwith "Det_sim: prefill operation refused")
        prefill;
      incr ts;
      match C.step !machine (H.Commit (q, !ts)) with
      | Ok m -> machine := m
      | Error _ -> assert false
    end;
    (* priorities of live transactions, for wait-die *)
    let priorities : (int, int) Hashtbl.t = Hashtbl.create 16 in
    let workers =
      Array.map
        (fun script ->
          let txn = fresh_txn () in
          let w =
            {
              script = Array.of_list script;
              txn_idx = 0;
              op_idx = 0;
              txn;
              priority = Model.Txn.id txn;
              attempts = 1;
              done_ = Array.of_list script |> Array.length = 0;
            }
          in
          if not w.done_ then Hashtbl.replace priorities (Model.Txn.id txn) w.priority;
          w)
        scripts
    in
    let events = ref Events.empty in
    let event_seq = ref 0 in
    let schedule time wid =
      incr event_seq;
      events := Events.add (time, !event_seq) wid !events
    in
    Array.iteri (fun wid w -> if not w.done_ then schedule 0 wid) workers;
    let committed = ref 0 in
    let restarts = ref 0 in
    let conflicts = ref 0 in
    let blocked = ref 0 in
    let makespan = ref 0 in
    let busy = ref 0 in
    let last_progress = ref 0 in
    let apply event =
      match C.step !machine event with
      | Ok m -> machine := m
      | Error _ -> assert false
    in
    (* process one event: worker [wid] attempts its current step at [t] *)
    let step_worker t wid =
      let w = workers.(wid) in
      if not w.done_ then begin
        let ops = w.script.(w.txn_idx) in
        if w.op_idx >= List.length ops then begin
          (* commit the transaction *)
          incr ts;
          apply (H.Commit (w.txn, !ts));
          Hashtbl.remove priorities (Model.Txn.id w.txn);
          incr committed;
          busy := !busy + (config.think * List.length ops);
          makespan := max !makespan t;
          last_progress := t;
          w.txn_idx <- w.txn_idx + 1;
          w.op_idx <- 0;
          w.attempts <- 1;
          if w.txn_idx >= Array.length w.script then w.done_ <- true
          else begin
            let txn = fresh_txn () in
            w.txn <- txn;
            w.priority <- Model.Txn.id txn;
            Hashtbl.replace priorities (Model.Txn.id txn) w.priority;
            schedule t wid
          end
        end
        else begin
          let inv = List.nth ops w.op_idx in
          (match C.pending !machine w.txn with
          | Some i when A.equal_inv i inv -> ()
          | Some _ | None -> apply (H.Invoke (w.txn, inv)));
          match C.choose_response !machine w.txn with
          | Ok (_, m) ->
            machine := m;
            last_progress := t;
            w.op_idx <- w.op_idx + 1;
            schedule (t + config.think) wid
          | Error `Blocked ->
            incr blocked;
            schedule (t + config.retry_quantum) wid
          | Error (`Conflict holder) -> (
            incr conflicts;
            let holder_priority =
              Option.bind holder (fun ci ->
                  Hashtbl.find_opt priorities (Model.Txn.id ci.C.c_holder))
            in
            match holder_priority with
            | Some hp when w.priority > hp ->
              (* wait-die: the younger transaction dies *)
              apply (H.Abort w.txn);
              Hashtbl.remove priorities (Model.Txn.id w.txn);
              incr restarts;
              w.attempts <- w.attempts + 1;
              if w.attempts > config.max_attempts then
                failwith "Det_sim: transaction exceeded max_attempts";
              w.op_idx <- 0;
              let txn = fresh_txn () in
              w.txn <- txn;
              Hashtbl.replace priorities (Model.Txn.id txn) w.priority;
              schedule (t + config.restart_delay) wid
            | Some _ | None -> schedule (t + config.retry_quantum) wid)
        end
      end
    in
    let rec loop () =
      match Events.min_binding_opt !events with
      | None -> ()
      | Some (((t, _) as key), wid) ->
        events := Events.remove key !events;
        if t - !last_progress > 1_000_000 then
          failwith "Det_sim: no progress (blocked workload?)";
        step_worker t wid;
        loop ()
    in
    loop ();
    {
      committed = !committed;
      restarts = !restarts;
      conflicts = !conflicts;
      blocked = !blocked;
      makespan = !makespan;
      busy = !busy;
    }
end
