(** Hot-path microbenchmark: no-conflict WAL-off transactions.

    The workload ROADMAP item 2 targets: [domains] domains each run
    [txns] transactions of one [Inc 1] against a counter — private per
    domain ([`Private], fully uncontended) or shared ([`Shared];
    [Inc]/[Inc] never conflicts under the hybrid relation, but
    concurrent CAS publishes may race into the mutex slow path).  Every
    row carries the {!Runtime.Lockstat} delta observed during the run,
    which is how the [--hotpath-only] bench gate proves the uncontended
    path is mutex-free.  With [force_slow] the same workload replays
    through the pre-rework mutex paths for a same-process speedup
    ratio.  The run self-checks: all [domains * txns] transactions must
    commit and the counter totals must agree. *)

type row = {
  h_label : string;
  h_domains : int;
  h_shape : [ `Private | `Shared ];
  h_committed : int;
  h_wall : float;
  h_throughput : float;
  h_us_per_txn : float;
  h_locks : Runtime.Lockstat.snapshot;
}

val pp_header : Format.formatter -> unit -> unit
val pp_row : Format.formatter -> row -> unit

val run :
  ?txns:int ->
  ?shape:[ `Private | `Shared ] ->
  ?force_slow:bool ->
  label:string ->
  domains:int ->
  unit ->
  row

val sweep : ?txns:int -> domains:int list -> unit -> row list
