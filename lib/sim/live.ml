module Qobj = Runtime.Atomic_obj.Make (Adt.Fifo_queue)
module Sobj = Runtime.Atomic_obj.Make (Adt.Semiqueue)
module Aobj = Runtime.Atomic_obj.Make (Adt.Account)

type config = {
  domains : int;
  think_us : float;
  seed : int;
  epoch_capacity : int;
}

let default_config = { domains = 4; think_us = 100.; seed = 0; epoch_capacity = 1 lsl 15 }

type epoch = {
  ring : Obs.Trace.t;
  queue : Qobj.t;
  semiq : Sobj.t;
  account : Aobj.t;
  next_val : int Atomic.t; (* unique enqueue values, see mli *)
  last_deq_txn : int Atomic.t; (* committed txn that dequeued; -1 if none *)
}

type t = {
  config : config;
  mgr : Runtime.Manager.t;
  current : epoch Atomic.t;
  (* The epoch retired by the previous [rotate]: possibly still
     receiving entries from transactions that were in flight at the
     swap.  One full rotation later it is quiescent and auditable. *)
  mutable draining : epoch option;
  epoch_count : int Atomic.t;
  give_up_count : int Atomic.t;
  stop_flag : bool Atomic.t;
  mutable workers : unit Domain.t list;
}

let seed_values = 16

let new_epoch mgr config =
  let ring = Obs.Trace.create ~capacity:config.epoch_capacity () in
  let queue =
    Qobj.create ~name:"live/queue" ~trace:ring
      ~conflict:Adt.Fifo_queue.conflict_hybrid ~op_label:Adt.Fifo_queue.op_label ()
  in
  let semiq =
    Sobj.create ~name:"live/semiq" ~trace:ring
      ~conflict:Adt.Semiqueue.conflict_hybrid ~op_label:Adt.Semiqueue.op_label ()
  in
  let account =
    Aobj.create ~name:"live/account" ~trace:ring
      ~conflict:Adt.Account.conflict_hybrid ~op_label:Adt.Account.op_label ()
  in
  Qobj.register_introspection queue;
  Sobj.register_introspection semiq;
  Aobj.register_introspection account;
  (* Seed so consumers never block on an empty container, and keep a
     large balance so debits rarely overdraft.  Seeding runs through
     the manager, so the epoch's ring contains it — replay sees every
     value's origin. *)
  Runtime.Manager.run mgr (fun txn ->
      for v = 1 to seed_values do
        ignore (Qobj.invoke queue txn (Adt.Fifo_queue.Enq v));
        ignore (Sobj.invoke semiq txn (Adt.Semiqueue.Ins (seed_values + v)))
      done;
      ignore (Aobj.invoke account txn (Adt.Account.Credit 1_000_000)));
  {
    ring;
    queue;
    semiq;
    account;
    next_val = Atomic.make ((2 * seed_values) + 1);
    last_deq_txn = Atomic.make (-1);
  }

(* Deterministic per-(domain, iteration) choice stream, decorrelated the
   same way as [Experiments.pseudo]. *)
let mix seed d n = ((seed * 15485863) + (d * 7919) + (n * 104729)) land 0x3fffffff

let think config = if config.think_us > 0. then Unix.sleepf (config.think_us *. 1e-6)

let run_one t e ~domain ~n =
  let h = mix t.config.seed domain n in
  match h mod 3 with
  | 0 ->
    (* Queue: always enqueue a fresh unique value, dequeue every other
       time — net producer, so [Deq] stays enabled. *)
    let did_deq = ref false in
    let tid = ref (-1) in
    Runtime.Manager.run t.mgr (fun txn ->
        tid := Runtime.Txn_rt.id txn;
        did_deq := false;
        let v = Atomic.fetch_and_add e.next_val 1 in
        ignore (Qobj.invoke e.queue txn (Adt.Fifo_queue.Enq v));
        if h land 1 = 0 then begin
          ignore (Qobj.invoke e.queue txn Adt.Fifo_queue.Deq);
          did_deq := true
        end);
    if !did_deq then Atomic.set e.last_deq_txn !tid
  | 1 ->
    Runtime.Manager.run t.mgr (fun txn ->
        let amount = 1 + (h mod 9) in
        if h land 1 = 0 then
          ignore (Aobj.invoke e.account txn (Adt.Account.Credit amount))
        else ignore (Aobj.invoke e.account txn (Adt.Account.Debit amount)))
  | _ ->
    Runtime.Manager.run t.mgr (fun txn ->
        let v = Atomic.fetch_and_add e.next_val 1 in
        ignore (Sobj.invoke e.semiq txn (Adt.Semiqueue.Ins v));
        if h land 1 = 0 then ignore (Sobj.invoke e.semiq txn Adt.Semiqueue.Rem))

let worker t domain () =
  let n = ref 0 in
  while not (Atomic.get t.stop_flag) do
    let e = Atomic.get t.current in
    (try run_one t e ~domain ~n:!n with
    | Runtime.Manager.Too_many_attempts _ -> Atomic.incr t.give_up_count
    | Runtime.Txn_rt.Abort_requested _ -> Atomic.incr t.give_up_count);
    incr n;
    think t.config
  done

let register_cycle_audit t =
  (* Wait-for cycles are checked on the *current* ring: unlike replay,
     the cycle check tolerates a partial window (an edge it cannot see
     cannot create a false cycle). *)
  Obs.Sampler.register_audit ~name:"waitfor/live" (fun () ->
      let e = Atomic.get t.current in
      let r = Obs.Waitfor.analyze (Obs.Trace.entries e.ring) in
      if Obs.Waitfor.ok r then Ok ()
      else
        Error
          (String.concat "; "
             (List.map
                (fun loop ->
                  "cycle " ^ String.concat " -> " (List.map string_of_int loop))
                r.Obs.Waitfor.cycles)))

let start ?wal config =
  let mgr = Runtime.Manager.create ?wal () in
  Runtime.Manager.register_introspection ~name:"live/manager" mgr;
  let t =
    {
      config;
      mgr;
      current = Atomic.make (new_epoch mgr config);
      draining = None;
      epoch_count = Atomic.make 1;
      give_up_count = Atomic.make 0;
      stop_flag = Atomic.make false;
      workers = [];
    }
  in
  register_cycle_audit t;
  t.workers <- List.init config.domains (fun d -> Domain.spawn (worker t d));
  t

let register_replay_audits e =
  ignore (Qobj.register_audit ~name:"replay/live/queue" e.queue);
  ignore (Sobj.register_audit ~name:"replay/live/semiq" e.semiq);
  ignore (Aobj.register_audit ~name:"replay/live/account" e.account)

let rotate t =
  let next = new_epoch t.mgr t.config in
  let old = Atomic.exchange t.current next in
  Atomic.incr t.epoch_count;
  (match t.draining with Some prev -> register_replay_audits prev | None -> ());
  t.draining <- Some old

let inject_violation t =
  let e = Atomic.get t.current in
  let tid = Atomic.get e.last_deq_txn in
  if tid < 0 then false
  else begin
    let obj = Qobj.key e.queue in
    let ops =
      List.filter_map
        (fun (en : Obs.Trace.entry) ->
          if en.obj = obj && en.txn = tid then
            match en.event with
            | Obs.Trace.Invoke _ | Obs.Trace.Respond _ -> Some en.event
            | _ -> None
          else None)
        (Obs.Trace.entries e.ring)
    in
    if ops = [] then false
    else begin
      (* Replay the victim's operations verbatim under a ghost id, then
         commit the ghost with a far-future timestamp: two committed
         dequeues of one unique value, serialized last — not hybrid
         atomic, by construction. *)
      let ghost = 900_000_000 + tid in
      List.iter (fun ev -> Obs.Trace.emit e.ring ~obj ~txn:ghost ev) ops;
      Obs.Trace.emit e.ring ~obj ~txn:ghost (Obs.Trace.Commit 1_073_741_823);
      true
    end
  end

let current_ring t = (Atomic.get t.current).ring
let manager t = t.mgr
let epochs t = Atomic.get t.epoch_count
let give_ups t = Atomic.get t.give_up_count

let stop t =
  if not (Atomic.exchange t.stop_flag true) then begin
    List.iter Domain.join t.workers;
    t.workers <- []
  end
