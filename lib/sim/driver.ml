type config = { domains : int; txns_per_domain : int; think_us : float }

type result = {
  committed : int;
  attempts : int;
  wall_seconds : float;
  throughput : float;
}

let now () = Unix.gettimeofday ()

let think config =
  (* Sleep rather than busy-wait: think time models work (e.g. I/O) a
     transaction does while holding locks.  Sleeping releases the core,
     so admitted concurrency shows up as overlapping think times even on
     machines with few cores — with a busy-wait, N domains on one core
     serialize regardless of the locking protocol and all relations
     measure alike. *)
  if config.think_us > 0. then Unix.sleepf (config.think_us *. 1e-6)

let run config ~mgr body =
  let t0 = now () in
  let worker d =
    Domain.spawn (fun () ->
        for seq = 0 to config.txns_per_domain - 1 do
          Runtime.Manager.run mgr (fun txn -> body ~domain:d ~seq txn)
        done)
  in
  let domains = List.init config.domains worker in
  List.iter Domain.join domains;
  let wall = now () -. t0 in
  let stats = Runtime.Manager.stats mgr in
  {
    committed = stats.Runtime.Manager.committed;
    attempts = stats.Runtime.Manager.started;
    wall_seconds = wall;
    throughput = float_of_int stats.Runtime.Manager.committed /. wall;
  }

let pp_result ppf r =
  Format.fprintf ppf "committed=%d attempts=%d wall=%.3fs throughput=%.0f txn/s"
    r.committed r.attempts r.wall_seconds r.throughput
