(* The 2PC kill-point matrix.

   One cross-shard transfer (the victim) is driven through the
   coordinator with a step hook that raises at a chosen protocol
   milestone — modelling a coordinator crash at exactly that point, with
   no cleanup: participants are left mid-protocol exactly as a real
   crash would.  Recovery then runs from the on-disk logs alone
   ([Wal.Log.read] on each shard, [Dist.Decision_log.read] on the
   decision log, in-doubt resolution via [Wal.Recover.resolve]) and the
   cell checks the paper's recovery contract:

   - the victim's fate equals the decision log's verdict (commit at the
     decided timestamp if a [Decide] survived, presumed abort
     otherwise), identically on every shard;
   - checkpointed recovery of each shard equals the reference replay of
     the same (resolved) records — no committed work lost or invented.

   The matrix covers every milestone of a two-participant commit
   (before any prepare; after each prepare, undecided; after the
   decision is durable; after each participant's commit record) in both
   group-commit modes, plus an unkilled control. *)

exception Killed of string

type site =
  | No_kill
  | Before_prepare
  | After_prepare of int (* killed after the (k+1)-th vote *)
  | After_decide
  | After_ack of int (* killed after the (k+1)-th participant commit *)

let site_label = function
  | No_kill -> "none"
  | Before_prepare -> "before-prepare"
  | After_prepare k -> Printf.sprintf "prepared-%d" k
  | After_decide -> "decided"
  | After_ack k -> Printf.sprintf "acked-%d" k

(* Sites for a [parts]-participant victim, in protocol order. *)
let sites parts =
  [ No_kill; Before_prepare ]
  @ List.init parts (fun k -> After_prepare k)
  @ [ After_decide ]
  @ List.init parts (fun k -> After_ack k)

let hook site =
  let prepares = ref 0 and acks = ref 0 in
  fun (st : Dist.Coordinator.step) ->
    let kill () = raise (Killed (site_label site)) in
    match (st, site) with
    | Dist.Coordinator.Executed, Before_prepare -> kill ()
    | Dist.Coordinator.Prepared _, After_prepare k ->
      incr prepares;
      if !prepares > k then kill ()
    | Dist.Coordinator.Decided _, After_decide -> kill ()
    | Dist.Coordinator.Acked _, After_ack k ->
      incr acks;
      if !acks > k then kill ()
    | _ -> ()

type cell = {
  k_site : site;
  k_gc : bool;  (* group commit on *)
  k_gid : int;
  k_decided : int option; (* surviving Decide, if any *)
  k_fate : (int * int option) list; (* shard -> victim commit ts after recovery *)
  k_resolutions : int; (* in-doubt resolutions applied across shards *)
  k_failures : string list;
}

let cell_ok c = c.k_failures = []

type matrix = { cells : cell list }

let ok m = List.for_all cell_ok m.cells

let pp_cell ppf c =
  Format.fprintf ppf "  [%s] kill=%-14s gid=%d decide=%-6s fate=%s resolved=%d: %s"
    (if c.k_gc then "gc" else "solo")
    (site_label c.k_site) c.k_gid
    (match c.k_decided with Some ts -> "ts=" ^ string_of_int ts | None -> "absent")
    (String.concat ","
       (List.map
          (fun (si, f) ->
            Printf.sprintf "s%d:%s" si
              (match f with Some ts -> string_of_int ts | None -> "aborted"))
          c.k_fate))
    c.k_resolutions
    (match c.k_failures with
    | [] -> "OK"
    | fs -> "FAIL: " ^ String.concat "; " fs)

let pp ppf m =
  Format.fprintf ppf "== CRASH-2PC: coordinator kill-point matrix ==@.";
  List.iter (fun c -> Format.fprintf ppf "%a@." pp_cell c) m.cells;
  Format.fprintf ppf "   %d cells: %s@." (List.length m.cells)
    (if ok m then "every kill point recovers to the decision log's verdict: OK"
     else "FAILED")

let ensure_dir dir =
  try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

module R = Wal.Recover.Make (Adt.Account)

(* Background traffic so the victim's records sit in the middle of real
   logs: a few local transactions per shard, and (with [cross_pct] > 0)
   some committed cross-shard transfers through the same coordinator. *)
let background s ~shards ~cross_pct =
  let config = { Driver.domains = shards; txns_per_domain = 4; think_us = 0. } in
  for domain = 0 to shards - 1 do
    for seq = 0 to 3 do
      Shard_exp.txn_body s ~config ~seed:7 ~cross_pct ~shards ~domain ~seq
    done
  done

let run_cell ~dir ~group_commit ~shards ~cross_pct site =
  let sub =
    Filename.concat dir
      (Printf.sprintf "%s-%s" (if group_commit then "gc" else "solo") (site_label site))
  in
  ensure_dir sub;
  let s =
    Shard_exp.make_setup ~wal_dir:sub ~fsync:true ~group_commit
      ~compact_threshold:max_int ~shards ()
  in
  background s ~shards ~cross_pct;
  (* The victim: a transfer spanning shards 0 and 1, killed mid-protocol
     by the step hook. *)
  Dist.Coordinator.set_step_hook s.coord (hook site);
  let gid = ref (-1) in
  let outcome =
    match
      Dist.Coordinator.run_once s.coord (fun ctx ->
          gid := Dist.Coordinator.id ctx;
          let b0 = Dist.Coordinator.branch ctx (Dist.Router.shard s.router 0) in
          let b1 = Dist.Coordinator.branch ctx (Dist.Router.shard s.router 1) in
          ignore (Shard_exp.Aobj.invoke s.accounts.(0) b0 (Adt.Account.Debit 7));
          ignore (Shard_exp.Aobj.invoke s.accounts.(1) b1 (Adt.Account.Credit 7)))
    with
    | Ok () -> `Committed
    | Error reason -> `Aborted reason
    | exception Killed _ -> `Killed
  in
  Dist.Coordinator.clear_step_hook s.coord;
  let wal_paths = List.init shards (fun i -> Dist.Shard.wal_file ~dir:sub i) in
  let dpath = Dist.Shard.decision_file sub in
  Shard_exp.close_setup s;
  (* --- everything below runs from the on-disk state alone --- *)
  let decisions = Dist.Decision_log.read dpath in
  let decided g = List.assoc_opt g decisions in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let resolutions = ref 0 in
  let fate =
    List.mapi
      (fun i path ->
        let records, _tail = Wal.Log.read path in
        let patched, res = Wal.Recover.resolve ~decided records in
        resolutions := !resolutions + List.length res;
        let name = Printf.sprintf "s%d/account" i in
        (match (R.recover ~obj:name patched, R.reference ~obj:name patched) with
        | Error e, _ -> fail "shard %d recover: %s" i e
        | _, Error e -> fail "shard %d reference replay: %s" i e
        | Ok oc, Ok ref_states ->
          if not (R.equal_states oc.R.states ref_states) then
            fail "shard %d: recovery %s disagrees with reference replay" i
              (Format.asprintf "%a" R.pp_states oc.R.states));
        (i, List.assoc_opt !gid (Wal.Recover.committed patched)))
      wal_paths
  in
  (* The recovery contract.  Participants are shards 0 and 1; the others
     never saw the victim and must not commit it either way. *)
  let expect_commit =
    match site with
    | No_kill | After_decide | After_ack _ -> true
    | Before_prepare | After_prepare _ -> false
  in
  (match (site, outcome) with
  | No_kill, `Committed -> ()
  | No_kill, _ -> fail "control cell did not commit"
  | _, `Killed -> ()
  | _, `Committed -> fail "kill hook did not fire (committed)"
  | _, `Aborted r -> fail "kill hook did not fire (aborted: %s)" r);
  let participant_fates =
    List.filter_map (fun (si, f) -> if si < 2 then Some (si, f) else None) fate
  in
  List.iter
    (fun (si, f) ->
      match (expect_commit, f, decided !gid) with
      | true, None, _ -> fail "shard %d lost the victim (decided commit)" si
      | true, Some ts, Some dts when ts <> dts ->
        fail "shard %d recovered the victim at ts=%d, decision log says %d" si ts dts
      | false, Some ts, _ ->
        fail "shard %d committed the victim at ts=%d (presumed abort)" si ts
      | _ -> ())
    participant_fates;
  (match List.sort_uniq compare (List.filter_map snd participant_fates) with
  | [] | [ _ ] -> ()
  | tss ->
    fail "participants disagree on the victim's timestamp {%s}"
      (String.concat "," (List.map string_of_int tss)));
  List.iter
    (fun (si, f) ->
      match f with
      | Some ts -> fail "non-participant shard %d committed the victim (ts=%d)" si ts
      | None -> ())
    (List.filter (fun (si, _) -> si >= 2) fate);
  (* Presumed abort must be the *absence* of a decision, and a durable
     decision must survive any post-decision kill (only the unkilled
     control is allowed to have forgotten it after full acks). *)
  (match (site, decided !gid) with
  | (Before_prepare | After_prepare _), Some ts ->
    fail "decision log holds ts=%d for an undecided victim" ts
  | (After_decide | After_ack _), None ->
    fail "decision log lost a durable decision"
  | _ -> ());
  {
    k_site = site;
    k_gc = group_commit;
    k_gid = !gid;
    k_decided = decided !gid;
    k_fate = fate;
    k_resolutions = !resolutions;
    k_failures = List.rev !failures;
  }

let run ?(shards = 2) ?(cross_pct = 0.) ~dir () =
  ensure_dir dir;
  let shards = max 2 shards in
  let cells =
    List.concat_map
      (fun gc ->
        List.map (run_cell ~dir ~group_commit:gc ~shards ~cross_pct) (sites 2))
      [ true; false ]
  in
  { cells }
