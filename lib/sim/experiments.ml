type row = {
  label : string;
  committed : int;
  attempts : int;
  op_conflicts : int;
  op_blocked : int;
  throughput : float;
  conflict_prob : float;
  atomic : (unit, string) result option;
  attrib : Obs.Attrib.t option;
  waitfor : Obs.Waitfor.report option;
  window : Obs.Trace.entry list;
}

type table = { id : string; title : string; params : string; rows : row list }

type scale = { domains : int; txns : int; think_us : float }

let default_scale = { domains = 4; txns = 100; think_us = 100. }
let quick_scale = { domains = 2; txns = 20; think_us = 10. }

let pp_atomic ppf = function
  | None -> Format.pp_print_string ppf "-"
  | Some (Ok ()) -> Format.pp_print_string ppf "ok"
  | Some (Error e) -> Format.fprintf ppf "VIOLATION: %s" e

let pp_table ppf t =
  Format.fprintf ppf "== %s: %s ==@.   (%s)@." t.id t.title t.params;
  Format.fprintf ppf "%-28s %9s %9s %10s %9s %12s %13s  %s@." "relation" "committed"
    "attempts" "conflicts" "blocked" "txn/s" "P(conflict)" "atomic";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-28s %9d %9d %10d %9d %12.0f %13.3f  %a@." r.label r.committed
        r.attempts r.op_conflicts r.op_blocked r.throughput r.conflict_prob pp_atomic
        r.atomic)
    t.rows

let violations tables =
  List.concat_map
    (fun t ->
      List.filter_map
        (fun r ->
          match r.atomic with
          | Some (Error e) -> Some (t.id, r.label, e)
          | Some (Ok ()) | None -> None)
        t.rows)
    tables

let waitfor_failures tables =
  List.concat_map
    (fun t ->
      List.filter_map
        (fun r ->
          match r.waitfor with
          | Some rep when not (Obs.Waitfor.ok rep) ->
            Some
              ( t.id,
                r.label,
                String.concat "; "
                  (List.map
                     (fun loop ->
                       "cycle " ^ String.concat " -> " (List.map string_of_int loop))
                     rep.Obs.Waitfor.cycles) )
          | Some _ | None -> None)
        t.rows)
    tables

let windows tables =
  List.concat_map (fun t -> List.concat_map (fun r -> r.window) t.rows) tables

let fired_mass r =
  match r.attrib with Some a -> Some (Obs.Attrib.total_refusals a) | None -> None

let label_contains r sub =
  let s = r.label and n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let pp_conflicts ppf t =
  Format.fprintf ppf "== %s: conflict attribution ==@." t.id;
  List.iter
    (fun r ->
      match r.attrib with
      | None -> Format.fprintf ppf "-- %s: (observability disabled)@." r.label
      | Some a ->
        Format.fprintf ppf "-- %s@." r.label;
        Obs.Attrib.pp ~top:8 ppf a;
        (match Obs.Attrib.holders a with
        | [] -> ()
        | top ->
          Format.fprintf ppf "  top holders:%s@."
            (String.concat ""
               (List.filteri (fun i _ -> i < 5) top
               |> List.map (fun (q, n) -> Printf.sprintf " T%d=%d" q n)))))
    t.rows;
  (* The empirical face of Theorem 28: the hybrid (dependency) relation
     is a subset of failure-to-commute, so on the same workload its
     fired-conflict mass should not exceed commutativity's.  Scheduling
     noise can perturb individual runs, hence a report, not an assert. *)
  let find sub = List.find_opt (fun r -> label_contains r sub && r.attrib <> None) t.rows in
  match (find "hybrid", find "commutativity") with
  | Some h, Some c -> (
    match (fired_mass h, fired_mass c) with
    | Some hm, Some cm ->
      let verdict =
        if hm <= cm then "yes"
        else if label_contains c "fig 4-3" then
          "NO (expected: fig 4-2 and fig 4-3 are incomparable minimal relations)"
        else "NO (scheduling noise; rerun larger)"
      in
      Format.fprintf ppf
        "   fired-conflict mass: %s = %d vs %s = %d -> dependency <= commutativity: %s@."
        h.label hm c.label cm verdict
    | _ -> ())
  | _ -> ()

let pp_waitfor ppf t =
  Format.fprintf ppf "== %s: wait-for audit ==@." t.id;
  List.iter
    (fun r ->
      match r.waitfor with
      | None -> Format.fprintf ppf "-- %s: (observability disabled)@." r.label
      | Some rep ->
        Format.fprintf ppf "-- %s@." r.label;
        Obs.Waitfor.pp ppf rep)
    t.rows

(* Deterministic value sequence, decorrelated across (domain, seq, k);
   [seed] shifts the whole sequence so reruns can vary the workload
   reproducibly ([seed = 0] reproduces the historical values). *)
let pseudo ~seed d seq k =
  ((seed * 15485863) + (d * 7919) + (seq * 104729) + (k * 1299709)) land 0x3fffffff

let params_of ?(seed = 0) scale ops =
  Printf.sprintf "%d domains x %d txns x %d ops/txn, think %.0fus, seed %d" scale.domains
    scale.txns ops scale.think_us seed

module Qobj = Runtime.Atomic_obj.Make (Adt.Fifo_queue)
module Sobj = Runtime.Atomic_obj.Make (Adt.Semiqueue)
module Aobj = Runtime.Atomic_obj.Make (Adt.Account)
module Dobj = Runtime.Atomic_obj.Make (Adt.Directory)

(* Pair the manager's log (if any) with the object's codec, the shape
   [Atomic_obj.create ?wal] wants. *)
let durable mgr codec = Option.map (fun w -> (w, codec)) (Runtime.Manager.wal mgr)
module Qprof = Conflict_profile.Make (Adt.Fifo_queue)
module Sprof = Conflict_profile.Make (Adt.Semiqueue)
module Aprof = Conflict_profile.Make (Adt.Account)
module Dprof = Conflict_profile.Make (Adt.Directory)

(* Run one relation variant of a workload and collect its row.  [stats]
   extracts the object counters after the run and [replay] replay-checks
   the traced run (objects differ per experiment, so they are created by
   [setup]).  The global trace ring is cleared {e before} [setup] so the
   replayed history includes the seeding transactions — without them the
   reconstructed dequeue/debit responses would be illegal. *)
let measure ?wal ~label ~conflict_prob ~scale ~setup () =
  let tracing = Obs.Control.enabled () in
  if tracing then Obs.Trace.clear Obs.Trace.global;
  let mgr = Runtime.Manager.create ?wal () in
  let body, stats, replay = setup mgr in
  let config =
    {
      Driver.domains = scale.domains;
      txns_per_domain = scale.txns;
      think_us = scale.think_us;
    }
  in
  let result = Driver.run config ~mgr (fun ~domain ~seq txn -> body config ~domain ~seq txn) in
  let conflicts, blocked = stats () in
  let window = if tracing then Obs.Trace.entries Obs.Trace.global else [] in
  {
    label;
    committed = result.Driver.committed;
    attempts = result.Driver.attempts;
    op_conflicts = conflicts;
    op_blocked = blocked;
    throughput = result.Driver.throughput;
    conflict_prob;
    atomic = (if tracing then Some (replay ()) else None);
    attrib = (if tracing then Some (Obs.Attrib.of_entries window) else None);
    waitfor = (if tracing then Some (Obs.Waitfor.analyze window) else None);
    window;
  }

(* Seed an object with [n] committed operations, [per_txn] at a time so
   the horizon can fold each batch into the version as we go. *)
let seed_with mgr ~n ~per_txn f =
  let remaining = ref n in
  while !remaining > 0 do
    let batch = min per_txn !remaining in
    Runtime.Manager.run mgr (fun txn ->
        for k = 0 to batch - 1 do
          f txn (n - !remaining + k)
        done);
    remaining := !remaining - batch
  done

(* ------------------------------------------------------------------ *)
(* EXP-QUEUE(a): enqueue-only                                          *)

let queue_relations =
  [
    ("hybrid (fig 4-2)", Adt.Fifo_queue.conflict_hybrid);
    ("fig 4-3 / commutativity", Adt.Fifo_queue.conflict_commutativity);
    ("2PL read/write", Adt.Fifo_queue.conflict_rw);
  ]

let enq_only_weights (i, _) =
  match i with Adt.Fifo_queue.Enq _ -> 1. | Adt.Fifo_queue.Deq -> 0.

let exp_queue_enq ?(scale = default_scale) ?(seed = 0) ?wal () =
  let ops = 4 in
  let rows =
    List.map
      (fun (label, conflict) ->
        measure ?wal ~label
          ~conflict_prob:(Qprof.op_conflict_probability ~weights:enq_only_weights conflict)
          ~scale
          ~setup:(fun mgr ->
            let q =
              Qobj.create
                ?wal:(durable mgr Adt.Fifo_queue.codec)
                ~conflict ~op_label:Adt.Fifo_queue.op_label ()
            in
            let body config ~domain ~seq txn =
              for k = 0 to ops - 1 do
                let v = 1 + (pseudo ~seed domain seq k mod 2) in
                ignore (Qobj.invoke q txn (Adt.Fifo_queue.Enq v));
                Driver.think config
              done
            in
            let stats () =
              let s = Qobj.stats q in
              (s.Qobj.conflicts, s.Qobj.blocked)
            in
            (body, stats, fun () -> Qobj.replay_check q))
          ())
      queue_relations
  in
  {
    id = "EXP-QUEUE-ENQ";
    title = "concurrent enqueuers on one FIFO queue";
    params = params_of ~seed scale ops;
    rows;
  }

(* ------------------------------------------------------------------ *)
(* EXP-QUEUE(b): mixed producers/consumers                             *)

let mixed_weights _ = 1.

let exp_queue_mixed ?(scale = default_scale) ?(seed = 0) ?wal () =
  let ops = 3 in
  let rows =
    List.map
      (fun (label, conflict) ->
        measure ?wal ~label
          ~conflict_prob:(Qprof.op_conflict_probability ~weights:mixed_weights conflict)
          ~scale
          ~setup:(fun mgr ->
            let q =
              Qobj.create
                ?wal:(durable mgr Adt.Fifo_queue.codec)
                ~conflict ~op_label:Adt.Fifo_queue.op_label ()
            in
            (* Seed enough for every consumer dequeue to succeed. *)
            let consumer_domains = scale.domains / 2 in
            let total_deqs = consumer_domains * scale.txns * ops in
            seed_with mgr ~n:total_deqs ~per_txn:50 (fun txn k ->
                ignore (Qobj.invoke q txn (Adt.Fifo_queue.Enq (1 + (k mod 2)))));
            let body config ~domain ~seq txn =
              let producing = domain >= consumer_domains in
              for k = 0 to ops - 1 do
                if producing then
                  ignore
                    (Qobj.invoke q txn
                       (Adt.Fifo_queue.Enq (1 + (pseudo ~seed domain seq k mod 2))))
                else ignore (Qobj.invoke q txn Adt.Fifo_queue.Deq);
                Driver.think config
              done
            in
            let stats () =
              let s = Qobj.stats q in
              (s.Qobj.conflicts, s.Qobj.blocked)
            in
            (body, stats, fun () -> Qobj.replay_check q))
          ())
      queue_relations
  in
  {
    id = "EXP-QUEUE-MIXED";
    title = "producers vs consumers on one FIFO queue (incomparable minimal relations)";
    params = params_of ~seed scale ops;
    rows;
  }

(* ------------------------------------------------------------------ *)
(* EXP-ACCOUNT                                                         *)

let account_relations =
  [
    ("hybrid (fig 4-5)", Adt.Account.conflict_hybrid);
    ("commutativity (fig 7-1)", Adt.Account.conflict_commutativity);
    ("2PL read/write", Adt.Account.conflict_rw);
  ]

let account_weights (i, r) =
  (* Roughly the workload mix: credits and debits dominate, posts are
     occasional, overdrafts rare. *)
  match (i, r) with
  | Adt.Account.Credit _, _ -> 4.
  | Adt.Account.Post _, _ -> 1.
  | Adt.Account.Debit _, Adt.Account.Ok -> 4.
  | Adt.Account.Debit _, Adt.Account.Overdraft -> 0.1

let exp_account ?(scale = default_scale) ?(seed = 0) ?wal () =
  let ops = 3 in
  let rows =
    List.map
      (fun (label, conflict) ->
        measure ?wal ~label
          ~conflict_prob:(Aprof.op_conflict_probability ~weights:account_weights conflict)
          ~scale
          ~setup:(fun mgr ->
            let acc =
              Aobj.create
                ?wal:(durable mgr Adt.Account.codec)
                ~conflict ~op_label:Adt.Account.op_label ()
            in
            (* Large seed balance so overdrafts stay rare. *)
            Runtime.Manager.run mgr (fun txn ->
                ignore (Aobj.invoke acc txn (Adt.Account.Credit 1_000_000)));
            (* Posts are kept rare (a handful per domain): in the exact
               integer model each Post 1 doubles the balance, so a
               post-heavy mix would overflow native ints and wrap the
               balance negative — breaking the monotonicity that
               Figure 4-5's conflicts rely on (see DESIGN.md). *)
            let body config ~domain ~seq txn =
              if seq mod 25 = 2 * domain then begin
                ignore (Aobj.invoke acc txn (Adt.Account.Post 1));
                Driver.think config
              end
              else if (domain + seq) mod 2 = 0 then
                for k = 0 to ops - 1 do
                  ignore
                    (Aobj.invoke acc txn
                       (Adt.Account.Credit (1 + (pseudo ~seed domain seq k mod 9))));
                  Driver.think config
                done
              else
                for k = 0 to ops - 1 do
                  ignore
                    (Aobj.invoke acc txn
                       (Adt.Account.Debit (1 + (pseudo ~seed domain seq k mod 9))));
                  Driver.think config
                done
            in
            let stats () =
              let s = Aobj.stats acc in
              (s.Aobj.conflicts, s.Aobj.blocked)
            in
            (body, stats, fun () -> Aobj.replay_check acc))
          ())
      account_relations
  in
  {
    id = "EXP-ACCOUNT";
    title = "credit/post/debit mix on one account (result-dependent locking)";
    params = params_of ~seed scale ops;
    rows;
  }

(* ------------------------------------------------------------------ *)
(* EXP-SEMIQ: SemiQueue vs FIFO Queue on the same workload             *)

let rem_weights (i, _) =
  match i with Adt.Semiqueue.Ins _ -> 1. | Adt.Semiqueue.Rem -> 1.

let exp_semiqueue ?(scale = default_scale) ?(seed = 0) ?wal () =
  let ops = 3 in
  let semiqueue_row label conflict =
    measure ?wal ~label
      ~conflict_prob:(Sprof.op_conflict_probability ~weights:rem_weights conflict)
      ~scale
      ~setup:(fun mgr ->
        let sq =
          Sobj.create
            ?wal:(durable mgr Adt.Semiqueue.codec)
            ~conflict ~op_label:Adt.Semiqueue.op_label ()
        in
        let consumer_domains = scale.domains / 2 in
        let total_rems = consumer_domains * scale.txns * ops in
        seed_with mgr ~n:total_rems ~per_txn:50 (fun txn k ->
            ignore (Sobj.invoke sq txn (Adt.Semiqueue.Ins (1 + (k mod 2)))));
        let body config ~domain ~seq txn =
          let producing = domain >= consumer_domains in
          for k = 0 to ops - 1 do
            if producing then
              ignore
                (Sobj.invoke sq txn
                   (Adt.Semiqueue.Ins (1 + (pseudo ~seed domain seq k mod 2))))
            else ignore (Sobj.invoke sq txn Adt.Semiqueue.Rem);
            Driver.think config
          done
        in
        let stats () =
          let s = Sobj.stats sq in
          (s.Sobj.conflicts, s.Sobj.blocked)
        in
        (body, stats, fun () -> Sobj.replay_check sq))
      ()
  in
  let queue_row label conflict =
    measure ?wal ~label
      ~conflict_prob:(Qprof.op_conflict_probability ~weights:mixed_weights conflict)
      ~scale
      ~setup:(fun mgr ->
        let q =
          Qobj.create
            ?wal:(durable mgr Adt.Fifo_queue.codec)
            ~conflict ~op_label:Adt.Fifo_queue.op_label ()
        in
        let consumer_domains = scale.domains / 2 in
        let total_deqs = consumer_domains * scale.txns * ops in
        seed_with mgr ~n:total_deqs ~per_txn:50 (fun txn k ->
            ignore (Qobj.invoke q txn (Adt.Fifo_queue.Enq (1 + (k mod 2)))));
        let body config ~domain ~seq txn =
          let producing = domain >= consumer_domains in
          for k = 0 to ops - 1 do
            if producing then
              ignore
                (Qobj.invoke q txn
                   (Adt.Fifo_queue.Enq (1 + (pseudo ~seed domain seq k mod 2))))
            else ignore (Qobj.invoke q txn Adt.Fifo_queue.Deq);
            Driver.think config
          done
        in
        let stats () =
          let s = Qobj.stats q in
          (s.Qobj.conflicts, s.Qobj.blocked)
        in
        (body, stats, fun () -> Qobj.replay_check q))
      ()
  in
  let rows =
    [
      semiqueue_row "SemiQueue hybrid (fig 4-4)" Adt.Semiqueue.conflict_hybrid;
      queue_row "Queue hybrid (fig 4-2)" Adt.Fifo_queue.conflict_hybrid;
      queue_row "Queue fig 4-3" Adt.Fifo_queue.conflict_fig_4_3;
    ]
  in
  {
    id = "EXP-SEMIQ";
    title = "nondeterminism buys concurrency: SemiQueue vs FIFO Queue";
    params = params_of ~seed scale ops;
    rows;
  }

(* ------------------------------------------------------------------ *)
(* EXP-DIRECTORY: locking granularity on a key-partitioned Directory   *)

(* ~40% Insert / 30% Remove / 30% Member over a Zipf-drawn key.  The
   offset in the mix hash decorrelates it from the key draw. *)
let directory_mix ~seed ~keys ~domain ~seq k =
  let key = Conflict_profile.Keys.draw keys ~seed ~domain ~seq ~k in
  match pseudo ~seed domain seq (k + 11) mod 10 with
  | 0 | 1 | 2 | 3 -> Adt.Directory.Insert key
  | 4 | 5 | 6 -> Adt.Directory.Remove key
  | _ -> Adt.Directory.Member key

let exp_directory ?(scale = default_scale) ?(seed = 0) ?(key_skew = 0.) ?(keys = 64)
    ?(cells = 8) ?wal () =
  let ops = 4 in
  let kt = Conflict_profile.Keys.make ~skew:key_skew ~n:keys in
  (* The cell-blind machine fires on label pairs regardless of key; the
     key-aware rows additionally need the two draws to collide, so their
     analytic probability is the blind one scaled by Σp². *)
  let blind_prob =
    Dprof.op_conflict_probability ~weights:Dprof.uniform Adt.Directory.conflict_whole_object
  in
  let keyed_prob = Conflict_profile.Keys.collision kt *. blind_prob in
  let body invoke config ~domain ~seq txn =
    for k = 0 to ops - 1 do
      invoke txn (directory_mix ~seed ~keys:kt ~domain ~seq k);
      Driver.think config
    done
  in
  let whole_row label conflict prob =
    measure ?wal ~label ~conflict_prob:prob ~scale
      ~setup:(fun mgr ->
        let d =
          Dobj.create
            ?wal:(durable mgr Adt.Directory.codec)
            ~conflict ~op_label:Adt.Directory.op_label ()
        in
        let stats () =
          let s = Dobj.stats d in
          (s.Dobj.conflicts, s.Dobj.blocked)
        in
        (body (fun txn i -> ignore (Dobj.invoke d txn i)), stats,
         fun () -> Dobj.replay_check d))
      ()
  in
  let celled_row label =
    measure ?wal ~label ~conflict_prob:keyed_prob ~scale
      ~setup:(fun mgr ->
        let d = Part.Pdir.create ?wal:(durable mgr Adt.Directory.codec) ~cells () in
        let stats () =
          let s = Part.Pdir.stats d in
          (s.Part.Pdir.O.conflicts, s.Part.Pdir.O.blocked)
        in
        (body (fun txn i -> ignore (Part.Pdir.invoke d txn i)), stats,
         fun () -> Part.Pdir.replay_check d))
      ()
  in
  let rows =
    [
      whole_row "whole-object (cell-blind)" Adt.Directory.conflict_whole_object blind_prob;
      whole_row "whole-object (key-aware)" Adt.Directory.conflict_hybrid keyed_prob;
      celled_row (Printf.sprintf "cell-locked (%d cells)" cells);
    ]
  in
  {
    id = "EXP-DIRECTORY";
    title = "locking granularity: cell-blind vs key-aware vs cell-locked Directory";
    params =
      Printf.sprintf "%s, %d keys, skew %.2f, %d cells" (params_of ~seed scale ops) keys
        key_skew cells;
    rows;
  }

(* The CI assertion behind the cell-locking claim: a lock manager blind
   to keys must fire at least [factor] times the conflict mass of the
   cell-locked machine on partitionable (low-skew) traffic.  Requires
   observability (fired-conflict mass comes from the trace window). *)
let partition_gate ?(factor = 5) t =
  let find sub = List.find_opt (fun r -> label_contains r sub) t.rows in
  match (find "cell-blind", find "cell-locked") with
  | Some blind, Some celled -> (
    match (fired_mass blind, fired_mass celled) with
    | Some bm, Some cm ->
      if bm > 0 && bm >= factor * max 1 cm then Ok (bm, cm)
      else
        Error
          (Printf.sprintf
             "partition gate failed: cell-blind fired-conflict mass %d is not >= %dx \
              cell-locked mass %d"
             bm factor cm)
    | _ ->
      Error "partition gate: fired-conflict mass unavailable (enable observability)")
  | _ -> Error "partition gate: table lacks cell-blind / cell-locked rows"

let all ?(scale = default_scale) ?(seed = 0) ?wal () =
  [
    exp_queue_enq ~scale ~seed ?wal ();
    exp_queue_mixed ~scale ~seed ?wal ();
    exp_account ~scale ~seed ?wal ();
    exp_semiqueue ~scale ~seed ?wal ();
    exp_directory ~scale ~seed ?wal ();
  ]
