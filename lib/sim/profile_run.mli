(** EXP-PROFILE: the EXP-SHARD workload mix under the flight recorder.

    Runs local credit/debit and cross-shard transfer transactions with
    {!Obs.Flight} recording to a file and an online {!Obs.Profile}
    aggregator attached to the flusher — the full emit → flush →
    aggregate pipeline.  {!decode_file} is the offline leg: reparse the
    file and rebuild the report from its own metadata, as the
    [profile] subcommand and CI do. *)

type result = {
  p_agg : Obs.Profile.t;
  p_wall : float;
  p_committed : int;
  p_cross_commits : int;
  p_emitted : int;
  p_lost : int;
}

val run :
  ?scale:Experiments.scale ->
  ?seed:int ->
  ?wal_dir:string ->
  ?fsync:bool ->
  ?group_commit:bool ->
  ?detail:bool ->
  ?shards:int ->
  ?cross_pct:float ->
  path:string ->
  unit ->
  result
(** Run the workload with the recorder writing to [path].  [detail]
    (default true) arms recording level 2, adding per-ADT-op records;
    [shards] defaults to 3, [cross_pct] to 20%.  With [wal_dir] the
    shards run durably, exercising the append/sync-wait span marks.
    The recorder is stopped (final drain + metadata chunk) and disarmed
    before returning. *)

val decode_file :
  string -> Obs.Profile.t * Obs.Flight.record list * Obs.Flight.meta * Obs.Flight.tail
(** Parse a flight file and feed every record to a fresh aggregator
    whose labels resolve through the file's metadata chunk. *)
