(** Long-running mixed workload for the introspection server, built
    around {e epoch rotation} so the online auditor always has a sound
    window to replay.

    The problem with auditing a live trace ring: once the ring wraps,
    the surviving window is a truncated history — a [Deq] whose [Enq]
    predates the window looks illegal, so a replay check would report
    a spurious violation.  Batch experiments sidestep this by clearing
    the ring before each run; a server cannot.

    Epochs solve it.  The workload runs against an {e epoch}: a fresh
    FIFO queue, SemiQueue and Account, all emitting into a private
    per-epoch trace ring sized to hold an entire epoch.  {!rotate}
    swaps in a fresh epoch (workers pick it up on their next
    transaction; in-flight transactions drain into the old ring) and
    hands the epoch retired {e one rotation earlier} — quiescent for a
    full period by then — to the {!Obs.Sampler} as replay-audit
    closures.  Every audited window is therefore complete from object
    creation, and replay is sound.  If an epoch ring does overflow, the
    audit reports the lost window ({!Obs.Sampler.skip_window_lost})
    instead of a fake verdict.

    Object names are stable across epochs ([live/queue], [live/semiq],
    [live/account]), so registry snapshot providers, gauges and audit
    registrations replace their predecessors — a server that rotates
    every second for a week keeps a bounded instrument set.

    Enqueued values are unique within an epoch (a shared counter), so
    every successful [Deq] returns a distinct value — which is what
    makes {!inject_violation} a {e guaranteed} atomicity violation: it
    re-emits a committed dequeuing transaction's operations under a
    ghost transaction id with a far-future commit timestamp, producing
    two committed dequeues of the same unique value.  The workload is
    untouched; only the trace lies.  The auditor must catch the lie. *)

type config = {
  domains : int;  (** worker domains *)
  think_us : float;
  seed : int;
  epoch_capacity : int;  (** trace-ring slots per epoch *)
}

val default_config : config
(** 4 domains, 100 us think time, seed 0, 2^15-slot epoch rings. *)

type t

val start : ?wal:Wal.Log.t -> config -> t
(** Create the first epoch, register introspection (object providers
    and gauges, the manager clock, a [waitfor/live] cycle audit over
    the current ring) and spawn the worker domains.  [wal] is attached
    to the {e manager} only (commit records and fsync-latency
    instrumentation); epoch objects are not durable — epochs are
    discarded wholesale, which a shared durable object name would
    confuse. *)

val rotate : t -> unit
(** Swap in a fresh epoch and register replay audits for the epoch
    retired one rotation ago.  Call from one thread (the serve loop),
    roughly once per audit period. *)

val inject_violation : t -> bool
(** Forge a double-dequeue in the current epoch's ring (see above).
    [false] when no dequeuing transaction has committed in this epoch
    yet — retry after the workload has run for a moment.  The next
    audit of this epoch must flag it. *)

val current_ring : t -> Obs.Trace.t
(** The current epoch's trace ring — the window behind [/waitfor]. *)

val manager : t -> Runtime.Manager.t

val epochs : t -> int
(** Rotations completed, plus one for the initial epoch. *)

val give_ups : t -> int
(** Worker transactions abandoned after exhausting manager retries
    (counted, not fatal: a server must outlive a contention spike). *)

val stop : t -> unit
(** Signal the workers and join their domains.  Idempotent. *)
