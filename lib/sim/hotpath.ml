(* The hot-path microbenchmark: how fast is a transaction that meets no
   conflict, no WAL, and no tracing?  This is the workload ROADMAP item
   2 targets — after the lock-free rework the whole path (priority
   registry, timestamp draw, lock machine, commit distribution) runs on
   atomics, and the Lockstat columns prove it by counting the mutex
   acquisitions that actually happened.

   Two shapes:
   - [`Private]: each domain increments its own counter.  Fully
     uncontended — no CAS ever fails, so a nonzero mutex count is a
     regression, which the `--hotpath-only` bench gate turns into a hard
     failure.
   - [`Shared]: all domains increment one counter.  Inc/Inc never
     conflicts under the hybrid relation, so every attempt still
     commits, but concurrent CAS publishes can race; losers take the
     mutex slow path by design, so this shape reports (not asserts) its
     lock counts.

   [force_slow] replays the same workload through the pre-rework mutex
   paths (see Lockstat) for a same-process before/after ratio. *)

type row = {
  h_label : string;
  h_domains : int;
  h_shape : [ `Private | `Shared ];
  h_committed : int;
  h_wall : float;
  h_throughput : float;
  h_us_per_txn : float;
  h_locks : Runtime.Lockstat.snapshot; (* mutex acquisitions during the run *)
}

let pp_header ppf () =
  Format.fprintf ppf "%-22s %7s %9s %10s %8s %9s %9s %9s@." "workload" "domains"
    "committed" "txn/s" "us/txn" "obj-mtx" "mgr-mtx" "reg-mtx"

let pp_row ppf r =
  Format.fprintf ppf "%-22s %7d %9d %10.0f %8.2f %9d %9d %9d@." r.h_label r.h_domains
    r.h_committed r.h_throughput r.h_us_per_txn r.h_locks.Runtime.Lockstat.s_obj
    r.h_locks.Runtime.Lockstat.s_mgr r.h_locks.Runtime.Lockstat.s_registry

module O = Runtime.Atomic_obj.Make (Adt.Counter)

let run ?(txns = 5000) ?(shape = `Private) ?(force_slow = false) ~label ~domains () =
  let mgr = Runtime.Manager.create () in
  let make_obj () = O.create ~conflict:Adt.Counter.conflict_hybrid () in
  let objs =
    match shape with
    | `Shared ->
      let o = make_obj () in
      Array.make domains o
    | `Private -> Array.init domains (fun _ -> make_obj ())
  in
  Runtime.Lockstat.set_force_slow force_slow;
  let before = Runtime.Lockstat.snapshot () in
  let t0 = Unix.gettimeofday () in
  let worker d =
    Domain.spawn (fun () ->
        let o = objs.(d) in
        for _ = 1 to txns do
          Runtime.Manager.run mgr (fun txn -> ignore (O.invoke o txn (Adt.Counter.Inc 1)))
        done)
  in
  List.init domains worker |> List.iter Domain.join;
  let wall = Unix.gettimeofday () -. t0 in
  let after = Runtime.Lockstat.snapshot () in
  Runtime.Lockstat.set_force_slow false;
  let committed = (Runtime.Manager.stats mgr).Runtime.Manager.committed in
  (* The counters must agree with the protocol: every transaction
     committed, and the counter values sum to the commit count. *)
  let total =
    match shape with
    | `Shared -> List.hd (O.committed_states objs.(0))
    | `Private ->
      Array.fold_left (fun acc o -> acc + List.hd (O.committed_states o)) 0 objs
  in
  if committed <> domains * txns || total <> domains * txns then
    failwith
      (Printf.sprintf "Hotpath.run %s: committed %d, counter total %d, expected %d"
         label committed total (domains * txns));
  {
    h_label = label;
    h_domains = domains;
    h_shape = shape;
    h_committed = committed;
    h_wall = wall;
    h_throughput = float_of_int committed /. wall;
    h_us_per_txn = wall /. float_of_int committed *. 1e6;
    h_locks = Runtime.Lockstat.diff ~before ~after;
  }

let sweep ?txns ~domains () =
  List.concat_map
    (fun d ->
      [
        run ?txns ~shape:`Private ~label:(Printf.sprintf "private-%dd" d) ~domains:d ();
        run ?txns ~shape:`Shared ~label:(Printf.sprintf "shared-%dd" d) ~domains:d ();
      ])
    domains
