(* EXP-PROFILE: the span-profiling workload.

   The EXP-SHARD mix (local credit/debit plus cross-shard transfers)
   with the flight recorder armed: every domain's span marks stream
   into flight.bin while an online Profile aggregator rides the flusher
   — the same pipeline the [profile] subcommand, the [/slo] endpoint
   and CI's profile-smoke job consume. *)

type result = {
  p_agg : Obs.Profile.t;  (* online aggregator, fed by the flusher *)
  p_wall : float;
  p_committed : int;  (* target transaction count, all committed *)
  p_cross_commits : int;
  p_emitted : int;
  p_lost : int;
}

let run ?(scale = Experiments.default_scale) ?(seed = 0) ?wal_dir ?(fsync = false)
    ?(group_commit = true) ?(detail = true) ?(shards = 3) ?(cross_pct = 20.) ~path () =
  let s = Shard_exp.make_setup ?wal_dir ~fsync ~group_commit ~shards () in
  let agg = Obs.Profile.create () in
  let flight = Obs.Flight.start ~path ~observer:(Obs.Profile.feed agg) () in
  (* Level 2 gives the per-ADT-op rows; the always-on deployment tier
     is level 1, which the flight-overhead bench gates. *)
  Obs.Flight.set_level (if detail then 2 else 1);
  let domains = max scale.Experiments.domains shards in
  let config =
    {
      Driver.domains;
      txns_per_domain = scale.Experiments.txns;
      think_us = scale.Experiments.think_us;
    }
  in
  let t0 = Unix.gettimeofday () in
  let workers =
    Array.init domains (fun domain ->
        Domain.spawn (fun () ->
            for seq = 0 to scale.Experiments.txns - 1 do
              Shard_exp.txn_body s ~config ~seed ~cross_pct ~shards ~domain ~seq
            done))
  in
  Array.iter Domain.join workers;
  let wall = Unix.gettimeofday () -. t0 in
  (* Final drain happens inside [stop]; after it the aggregator has
     seen every surviving record and the file carries the label
     metadata chunk for offline decoding. *)
  Obs.Flight.stop flight;
  Obs.Flight.set_level 0;
  let cstats = Dist.Coordinator.stats s.coord in
  Shard_exp.close_setup s;
  {
    p_agg = agg;
    p_wall = wall;
    p_committed = domains * scale.Experiments.txns;
    p_cross_commits = cstats.Dist.Coordinator.c_cross_commits;
    p_emitted = Obs.Flight.emitted ();
    p_lost = Obs.Flight.lost ();
  }

(* Offline leg of the same pipeline: decode a flight file and rebuild
   the report in a fresh aggregator resolving labels through the file's
   own metadata chunk. *)
let decode_file path =
  let records, meta, tail = Obs.Flight.read_file path in
  let agg = Obs.Profile.create ~lookup:(Obs.Profile.meta_lookup meta) () in
  Obs.Profile.feed_all agg records;
  (agg, records, meta, tail)
