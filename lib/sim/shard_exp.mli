(** EXP-SHARD: sharded managers against the single-manager baseline.

    One account per shard, domains pinned to home shards, a configurable
    fraction of transactions transferring across shards through the 2PC
    coordinator.  At 0% cross-shard the shards share nothing — the pure
    scaling axis; the cross-shard mix prices the coordinator. *)

module Aobj : module type of Runtime.Atomic_obj.Make (Adt.Account)

type setup = {
  router : Dist.Router.t;
  coord : Dist.Coordinator.t;
  dlog : Dist.Decision_log.t option;
  accounts : Aobj.t array;
}

val make_setup :
  ?wal_dir:string ->
  ?prefix:string ->
  ?fsync:bool ->
  ?group_commit:bool ->
  ?compact_threshold:int ->
  ?ring_capacity:int ->
  shards:int ->
  unit ->
  setup
(** Shards, coordinator, decision log (iff [wal_dir]), and one seeded
    account per shard, traced to the shard's ring. *)

val close_setup : setup -> unit
val rings : setup -> Obs.Trace.t array
val outcome_fn : setup -> int -> Dist.Decision_log.outcome option

val txn_body :
  setup ->
  config:Driver.config ->
  seed:int ->
  cross_pct:float ->
  shards:int ->
  domain:int ->
  seq:int ->
  unit
(** One workload transaction (local run or cross-shard transfer) —
    exposed so tests can drive the exact experiment mix at small
    scale. *)

type outcome = {
  row : Experiments.row;
  o_shards : int;
  o_cross_pct : float;
  o_fsyncs : int;  (** total durability rounds: every shard WAL + decision log *)
  o_cross_commits : int;
  o_cross_aborts : int;
  o_ack_failures : int;
}

val run_one :
  ?scale:Experiments.scale ->
  ?seed:int ->
  ?wal_dir:string ->
  ?prefix:string ->
  ?fsync:bool ->
  ?group_commit:bool ->
  ?ring_capacity:int ->
  shards:int ->
  cross_pct:float ->
  unit ->
  outcome
(** One measured cell.  The row's [atomic] verdict combines per-object
    replay checks with the cross-shard audit ({!Dist.Audit.check}
    against the coordinator's outcomes); [window] is the stitched
    timeline.  Runs [max scale.domains shards] domains so every shard
    has a worker. *)

val shard_counts : int -> int list
(** [1; 2; 4; ...; upto]. *)

val exp_shard :
  ?scale:Experiments.scale ->
  ?seed:int ->
  ?shards:int ->
  ?cross_pct:float ->
  ?wal_dir:string ->
  ?fsync:bool ->
  ?group_commit:bool ->
  unit ->
  Experiments.table
(** The table: shard counts {!shard_counts} at 0% cross-shard, plus each
    multi-shard count at [cross_pct].  With [wal_dir], every cell runs
    durably under its own file prefix. *)
