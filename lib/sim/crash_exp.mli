(** Crash-recovery experiments: deterministic kill-point fault
    injection over real concurrent runs.

    Each experiment runs a concurrent workload durably (one object, one
    manager, one log), then simulates a [kill -9] at every deterministic
    kill point of the finished log image ({!Wal.Crash}): just before and
    after each commit record, mid-append, and with the tail torn.  For
    every image, recovery through the latest surviving checkpoint must
    be observationally equivalent to a reference replay of that image's
    committed prefix from the initial state — and the clean image must
    recover exactly the state set the live object ended with. *)

type run = {
  c_id : string;
  c_committed : int;  (** transactions committed in the live run *)
  c_records : int;  (** records in the clean log image *)
  c_live : int;  (** live-set size at close (the truncation bound) *)
  c_kill_points : int;
  c_failures : (string * string) list;  (** (kill point, reason) *)
  c_final : (unit, string) result;
      (** clean-log recovery vs the live object's committed states *)
}

val ok : run -> bool
val pp_run : Format.formatter -> run -> unit

val queue :
  ?scale:Experiments.scale -> ?seed:int -> ?group_commit:bool -> dir:string -> unit -> run
(** Producer/consumer FIFO queue under the hybrid relation.
    [group_commit] (default [true]) selects the log's sync mode
    ({!Wal.Log.create}): both modes must recover identically at every
    kill point, since batching changes {e when} records reach disk but
    never their order. *)

val semiqueue :
  ?scale:Experiments.scale -> ?seed:int -> ?group_commit:bool -> dir:string -> unit -> run
(** Producer/consumer SemiQueue — nondeterministic [Rem] makes the
    recovered value a state {e set}, exercising set-equivalence. *)

val account :
  ?scale:Experiments.scale -> ?seed:int -> ?group_commit:bool -> dir:string -> unit -> run
(** Credit/debit mix on one account. *)

val all :
  ?scale:Experiments.scale ->
  ?seed:int ->
  ?group_commit:bool ->
  dir:string ->
  unit ->
  run list
(** All three, writing logs under [dir]. *)
