(** Deterministic concurrency profile of a conflict relation.

    Timing-based measurements depend on the machine; this module gives
    the machine-independent quantity the paper's claims are really about:
    how likely two concurrent operations (or transactions) are to be
    forced to serialize.  For an operation mix given by weights, the
    {e op conflict probability} is the probability that two operations
    drawn independently from the mix conflict; the {e transaction
    conflict probability} for length-[len] transactions treats each of
    the [len × len] op pairs independently (an upper-bound approximation,
    exact when conflicts are rare). *)

(** Zipfian cell-key selection for workload generators.

    Generators have always drawn {e which object} to hit but never
    {e which cell key} within it.  [Keys] draws keys from Zipf([skew])
    over [\[0, n)]: skew [0.] is uniform (fully partitionable traffic),
    large skew concentrates on key 0 (contended-single-key traffic), so
    both locking-granularity regimes are reachable from the [--key-skew]
    knob.  Draws are pure hashes of [(seed, domain, seq, k)] — the same
    seed-determinism contract as the value generator and
    [Runtime.Backoff]. *)
module Keys : sig
  type t

  val make : skew:float -> n:int -> t
  (** Precompute the inverse CDF.  [skew >= 0.], [n > 0]. *)

  val n : t -> int
  val skew : t -> float

  val draw : t -> seed:int -> domain:int -> seq:int -> k:int -> int
  (** A key in [\[0, n)], a pure function of all five inputs. *)

  val weight : t -> int -> float
  (** The probability of one key. *)

  val collision : t -> float
  (** [Σ pᵢ²] — the probability two independent draws hit the same key;
      the analytic contention factor that multiplies an op-level
      conflict probability under key-restricted locking. *)
end

module Make (A : Spec.Adt_sig.BOUNDED) : sig
  type op = A.inv * A.res

  val op_conflict_probability : weights:(op -> float) -> (op -> op -> bool) -> float
  (** [Σ w(p)·w(q)·conflict(p,q) / (Σ w)²] over the universe. *)

  val txn_conflict_probability :
    weights:(op -> float) -> len:int -> (op -> op -> bool) -> float
  (** [1 - (1 - p_op)^(len²)]. *)

  val uniform : op -> float
  (** Weight 1 for every operation. *)
end
