(** Deterministic concurrency profile of a conflict relation.

    Timing-based measurements depend on the machine; this module gives
    the machine-independent quantity the paper's claims are really about:
    how likely two concurrent operations (or transactions) are to be
    forced to serialize.  For an operation mix given by weights, the
    {e op conflict probability} is the probability that two operations
    drawn independently from the mix conflict; the {e transaction
    conflict probability} for length-[len] transactions treats each of
    the [len × len] op pairs independently (an upper-bound approximation,
    exact when conflicts are rare). *)

module Make (A : Spec.Adt_sig.BOUNDED) : sig
  type op = A.inv * A.res

  val op_conflict_probability : weights:(op -> float) -> (op -> op -> bool) -> float
  (** [Σ w(p)·w(q)·conflict(p,q) / (Σ w)²] over the universe. *)

  val txn_conflict_probability :
    weights:(op -> float) -> len:int -> (op -> op -> bool) -> float
  (** [1 - (1 - p_op)^(len²)]. *)

  val uniform : op -> float
  (** Weight 1 for every operation. *)
end
