(** Group-commit measurement: durable commit cost vs committer count.

    The commit path's dominant cost is the fsync that makes the commit
    record durable before any commit event is distributed (the
    write-ahead rule).  Group commit amortizes it: the first committer
    to reach {!Wal.Log.sync_upto} becomes the batch leader and its one
    barrier covers every commit record appended so far, so the expected
    fsyncs per commit is [1/k] at [k] overlapping committers.  This
    module measures that on a contention-free workload (concurrent
    [Inc]s on one counter — no lock conflicts under the hybrid
    relation, so the sync is the only serialization left). *)

type row = {
  g_label : string;
  g_domains : int;
  g_group_commit : bool;
  g_committed : int;
  g_fsyncs : int;  (** sync barriers the log ran ({!Wal.Log.fsyncs}) *)
  g_wall : float;
  g_throughput : float;  (** committed transactions per second *)
  g_p50_us : float;  (** commit latency percentiles, microseconds *)
  g_p99_us : float;
}

val fsyncs_per_commit : row -> float
val pp_header : Format.formatter -> unit -> unit
val pp_row : Format.formatter -> row -> unit

val run :
  ?fsync:bool ->
  ?sync_sleep_us:float ->
  ?txns:int ->
  label:string ->
  dir:string ->
  domains:int ->
  group_commit:bool ->
  unit ->
  row
(** One cell: [domains] committers, [txns] single-[Inc] transactions
    each, against a fresh log at [dir/label.wal].  [fsync] defaults to
    [true] (real durability — this is a disk benchmark); pass [false]
    in tests that only care about batch accounting.  [sync_sleep_us]
    installs a sleeping {!Wal.Log.set_sync_hook}, modelling a disk whose
    barrier takes that long — on a fast (or lying) disk, commits may
    barely overlap, so assertions about batch formation should pin the
    barrier cost rather than trust the hardware to be slow. *)

val sweep : ?fsync:bool -> ?txns:int -> dir:string -> domains:int list -> unit -> row list
(** For each domain count: the serialized-fsync baseline and the
    group-commit run, in that order. *)
