let registry : (string * Wal.Codec.packed) list =
  [
    (Adt.Fifo_queue.name, Wal.Codec.Packed (module Adt.Fifo_queue));
    (Adt.Semiqueue.name, Wal.Codec.Packed (module Adt.Semiqueue));
    (Adt.Account.name, Wal.Codec.Packed (module Adt.Account));
    (Adt.Counter.name, Wal.Codec.Packed (module Adt.Counter));
    (Adt.Directory.name, Wal.Codec.Packed (module Adt.Directory));
    (Adt.File_adt.name, Wal.Codec.Packed (module Adt.File_adt));
    (Adt.Log_adt.name, Wal.Codec.Packed (module Adt.Log_adt));
    (Adt.Bounded_buffer.name, Wal.Codec.Packed (module Adt.Bounded_buffer));
  ]

let find adt = List.assoc_opt adt registry

type verdict = {
  v_obj : string;
  v_adt : string;
  v_checkpoint : int option;
  v_redone_txns : int;
  v_redone_ops : int;
  v_discarded : int;
  v_states : string;
  v_result : (unit, string) result;
}

type report = {
  r_records : int;
  r_tail : Wal.Log.tail;
  r_committed : int;
  r_aborted : int;
  r_resolved : Wal.Recover.resolution list;
      (* in-doubt 2PC branches patched against the decision log *)
  r_verdicts : verdict list;
}

let ok r = List.for_all (fun v -> Result.is_ok v.v_result) r.r_verdicts

(* Recover each declared object through the checkpoint; with
   [reference], also replay the committed prefix from the initial state
   and require observational equivalence.  Disagreement then means
   checkpoint truncation lost (or invented) committed operations — a
   Theorem 24 violation.  The reference replay is only sound when the
   full record history survived (compaction rewrites legitimately drop
   intentions covered by checkpoints), so it is opt-in: the crash
   experiments and tests run with rewriting disabled and use it. *)
let verify_object ~reference records (name, adt) =
  let fail msg =
    {
      v_obj = name;
      v_adt = adt;
      v_checkpoint = None;
      v_redone_txns = 0;
      v_redone_ops = 0;
      v_discarded = 0;
      v_states = "-";
      v_result = Error msg;
    }
  in
  match find adt with
  | None -> fail (Printf.sprintf "no durable implementation registered for ADT %S" adt)
  | Some (Wal.Codec.Packed (module D)) -> (
    let module R = Wal.Recover.Make (D) in
    match R.recover ~obj:name records with
    | Error e -> fail ("recover: " ^ e)
    | Ok oc ->
      let result =
        if not reference then Ok ()
        else
          match R.reference ~obj:name records with
          | Error e -> Error ("reference replay: " ^ e)
          | Ok ref_states ->
            if R.equal_states oc.R.states ref_states then Ok ()
            else
              Error
                (Format.asprintf
                   "checkpointed recovery %a disagrees with reference replay %a"
                   R.pp_states oc.R.states R.pp_states ref_states)
      in
      {
        v_obj = name;
        v_adt = adt;
        v_checkpoint = oc.R.checkpoint_upto;
        v_redone_txns = oc.R.redone_txns;
        v_redone_ops = oc.R.redone_ops;
        v_discarded = oc.R.discarded_txns;
        v_states = Format.asprintf "%a" R.pp_states oc.R.states;
        v_result = result;
      })

(* With [decided] (the coordinator's decision-log lookup), in-doubt 2PC
   branches — a surviving [Prepare] with no local outcome — are resolved
   first: commit at the decided timestamp, presumed abort otherwise.
   Both verification paths (checkpointed recovery and reference replay)
   then run on the patched record list, so the verdicts cover the
   resolved transactions too. *)
let verify ?(reference = false) ?decided (records, tail) =
  let records, resolved =
    match decided with
    | None -> (records, [])
    | Some decided -> Wal.Recover.resolve ~decided records
  in
  {
    r_records = List.length records;
    r_tail = tail;
    r_committed = List.length (Wal.Recover.committed records);
    r_aborted = List.length (Wal.Recover.aborted records);
    r_resolved = resolved;
    r_verdicts = List.map (verify_object ~reference records) (Wal.Recover.objects records);
  }

let verify_file ?reference ?decided path = verify ?reference ?decided (Wal.Log.read path)

let pp_tail ppf = function
  | Wal.Log.Clean -> Format.pp_print_string ppf "clean"
  | Wal.Log.Torn off -> Format.fprintf ppf "torn at byte %d (discarded)" off

let pp_verdict ppf v =
  Format.fprintf ppf "-- %s (%s): %s@." v.v_obj v.v_adt
    (match v.v_result with Ok () -> "OK" | Error e -> "FAIL: " ^ e);
  Format.fprintf ppf "   checkpoint=%s redone=%d txns / %d ops, discarded=%d, states=%s@."
    (match v.v_checkpoint with Some ts -> string_of_int ts | None -> "none")
    v.v_redone_txns v.v_redone_ops v.v_discarded v.v_states

let pp_report ppf r =
  Format.fprintf ppf "log: %d records, tail %a, %d committed, %d aborted@." r.r_records
    pp_tail r.r_tail r.r_committed r.r_aborted;
  List.iter
    (fun res -> Format.fprintf ppf "   resolved in-doubt: %a@." Wal.Recover.pp_resolution res)
    r.r_resolved;
  List.iter (pp_verdict ppf) r.r_verdicts;
  Format.fprintf ppf "recovery: %s@." (if ok r then "OK" else "FAILED")
