type row = {
  label : string;
  committed : int;
  restarts : int;
  conflicts : int;
  blocked : int;
  makespan : int;
  concurrency : float;
}

type table = { id : string; title : string; params : string; rows : row list }

let workers = 4
let txns_per_worker = 25

let pp_table ppf t =
  Format.fprintf ppf "== %s (deterministic): %s ==@.   (%s)@." t.id t.title t.params;
  Format.fprintf ppf "%-28s %9s %9s %10s %8s %10s %12s@." "relation" "committed"
    "restarts" "conflicts" "blocked" "makespan" "concurrency";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-28s %9d %9d %10d %8d %10d %12.2f@." r.label r.committed
        r.restarts r.conflicts r.blocked r.makespan r.concurrency)
    t.rows

let pseudo a b c = ((a * 7919) + (b * 104729) + (c * 1299709)) land 0x3fffffff

module DQ = Det_sim.Make (Adt.Fifo_queue)
module DS = Det_sim.Make (Adt.Semiqueue)
module DA = Det_sim.Make (Adt.Account)

let params = Printf.sprintf "%d workers x %d txns, virtual think 100" workers txns_per_worker

let row_q label (r : DQ.result) =
  {
    label;
    committed = r.DQ.committed;
    restarts = r.DQ.restarts;
    conflicts = r.DQ.conflicts;
    blocked = r.DQ.blocked;
    makespan = r.DQ.makespan;
    concurrency = DQ.concurrency r;
  }

let row_s label (r : DS.result) =
  {
    label;
    committed = r.DS.committed;
    restarts = r.DS.restarts;
    conflicts = r.DS.conflicts;
    blocked = r.DS.blocked;
    makespan = r.DS.makespan;
    concurrency = DS.concurrency r;
  }

let row_a label (r : DA.result) =
  {
    label;
    committed = r.DA.committed;
    restarts = r.DA.restarts;
    conflicts = r.DA.conflicts;
    blocked = r.DA.blocked;
    makespan = r.DA.makespan;
    concurrency = DA.concurrency r;
  }

(* ------------------------------------------------------------------ *)

let queue_relations =
  [
    ("hybrid (fig 4-2)", Adt.Fifo_queue.conflict_hybrid);
    ("fig 4-3 / commutativity", Adt.Fifo_queue.conflict_commutativity);
    ("2PL read/write", Adt.Fifo_queue.conflict_rw);
  ]

let det_queue_enq () =
  let script w =
    List.init txns_per_worker (fun k ->
        List.init 4 (fun j -> Adt.Fifo_queue.Enq (1 + (pseudo w k j mod 2))))
  in
  let scripts = Array.init workers script in
  let rows =
    List.map
      (fun (label, conflict) ->
        row_q label (DQ.run ~conflict scripts))
      queue_relations
  in
  { id = "EXP-QUEUE-ENQ"; title = "concurrent enqueuers"; params; rows }

let queue_prefill = List.init 300 (fun k -> Adt.Fifo_queue.Enq (1 + (k mod 2)))

let det_queue_mixed () =
  let consumers = workers / 2 in
  let script w =
    List.init txns_per_worker (fun k ->
        if w < consumers then List.init 3 (fun _ -> Adt.Fifo_queue.Deq)
        else List.init 3 (fun j -> Adt.Fifo_queue.Enq (1 + (pseudo w k j mod 2))))
  in
  let scripts = Array.init workers script in
  let rows =
    List.map
      (fun (label, conflict) -> row_q label (DQ.run ~prefill:queue_prefill ~conflict scripts))
      queue_relations
  in
  { id = "EXP-QUEUE-MIXED"; title = "producers vs consumers"; params; rows }

let det_account () =
  (* Posts appear a few times per worker (the totals stay far from
     native-int overflow: 24 doublings of the opening million) and run
     as 2-operation transactions so their serialization footprint under
     commutativity-based locking is visible. *)
  let script w =
    List.init txns_per_worker (fun k ->
        if k mod 12 = 3 * w then [ Adt.Account.Post 1; Adt.Account.Credit 1 ]
        else if (w + k) mod 2 = 0 then
          List.init 3 (fun j -> Adt.Account.Credit (1 + (pseudo w k j mod 9)))
        else List.init 3 (fun j -> Adt.Account.Debit (1 + (pseudo w k j mod 9))))
  in
  let scripts = Array.init workers script in
  let rows =
    List.map
      (fun (label, conflict) ->
        row_a label (DA.run ~prefill:[ Adt.Account.Credit 1_000_000 ] ~conflict scripts))
      [
        ("hybrid (fig 4-5)", Adt.Account.conflict_hybrid);
        ("commutativity (fig 7-1)", Adt.Account.conflict_commutativity);
        ("2PL read/write", Adt.Account.conflict_rw);
      ]
  in
  { id = "EXP-ACCOUNT"; title = "credit/post/debit mix"; params; rows }

let det_semiqueue () =
  let consumers = workers / 2 in
  let semi_prefill = List.init 300 (fun k -> Adt.Semiqueue.Ins (1 + (k mod 2))) in
  let semi_script w =
    List.init txns_per_worker (fun k ->
        if w < consumers then List.init 3 (fun _ -> Adt.Semiqueue.Rem)
        else List.init 3 (fun j -> Adt.Semiqueue.Ins (1 + (pseudo w k j mod 2))))
  in
  let queue_script w =
    List.init txns_per_worker (fun k ->
        if w < consumers then List.init 3 (fun _ -> Adt.Fifo_queue.Deq)
        else List.init 3 (fun j -> Adt.Fifo_queue.Enq (1 + (pseudo w k j mod 2))))
  in
  let rows =
    [
      row_s "SemiQueue hybrid (fig 4-4)"
        (DS.run ~prefill:semi_prefill ~conflict:Adt.Semiqueue.conflict_hybrid
           (Array.init workers semi_script));
      row_q "Queue hybrid (fig 4-2)"
        (DQ.run ~prefill:queue_prefill ~conflict:Adt.Fifo_queue.conflict_hybrid
           (Array.init workers queue_script));
      row_q "Queue fig 4-3"
        (DQ.run ~prefill:queue_prefill ~conflict:Adt.Fifo_queue.conflict_fig_4_3
           (Array.init workers queue_script));
    ]
  in
  { id = "EXP-SEMIQ"; title = "SemiQueue vs FIFO Queue"; params; rows }

let all () = [ det_queue_enq (); det_queue_mixed (); det_account (); det_semiqueue () ]
