(* EXP-SHARD: the sharded workload.

   One account per shard; each domain has a home shard and runs
   credit/debit transactions against it through the shard's own manager.
   A configurable fraction of transactions instead transfer between the
   home account and another shard's account through the cross-shard
   coordinator (presumed-abort 2PC).  At 0% cross-shard the shards share
   nothing at all — the scaling axis the single-manager baseline is
   measured against. *)

module Aobj = Runtime.Atomic_obj.Make (Adt.Account)
module Aprof = Conflict_profile.Make (Adt.Account)

let pseudo ~seed d seq k =
  ((seed * 15485863) + (d * 7919) + (seq * 104729) + (k * 1299709)) land 0x3fffffff

let account_weights (i, r) =
  match (i, r) with
  | Adt.Account.Credit _, _ -> 4.
  | Adt.Account.Post _, _ -> 1.
  | Adt.Account.Debit _, Adt.Account.Ok -> 4.
  | Adt.Account.Debit _, Adt.Account.Overdraft -> 0.1

type setup = {
  router : Dist.Router.t;
  coord : Dist.Coordinator.t;
  dlog : Dist.Decision_log.t option;
  accounts : Aobj.t array; (* accounts.(i) lives on shard i *)
}

let make_setup ?wal_dir ?(prefix = "") ?(fsync = false) ?(group_commit = true)
    ?compact_threshold ?(ring_capacity = 1 lsl 16) ~shards () =
  let router =
    Dist.Router.make ?wal_dir ~prefix ~fsync ~group_commit ?compact_threshold
      ~ring_capacity ~count:shards ()
  in
  let dlog =
    Option.map
      (fun dir ->
        Dist.Decision_log.create ~fsync ~group_commit (Dist.Shard.decision_file ~prefix dir))
      wal_dir
  in
  let coord = Dist.Coordinator.create ?dlog router in
  let accounts =
    Array.init shards (fun i ->
        let sh = Dist.Router.shard router i in
        Aobj.create
          ~name:(Dist.Shard.obj_name sh "account")
          ~trace:(Dist.Shard.ring sh)
          ?wal:(Option.map (fun w -> (w, Adt.Account.codec)) (Dist.Shard.wal sh))
          ~conflict:Adt.Account.conflict_hybrid ~op_label:Adt.Account.op_label ())
  in
  (* Seed every account inside its shard's ring window, so replay sees
     the balance the debits draw on. *)
  Array.iteri
    (fun i acc ->
      Runtime.Manager.run
        (Dist.Shard.mgr (Dist.Router.shard router i))
        (fun txn -> ignore (Aobj.invoke acc txn (Adt.Account.Credit 1_000_000))))
    accounts;
  { router; coord; dlog; accounts }

let close_setup s =
  Option.iter Dist.Decision_log.close s.dlog;
  Dist.Router.close s.router

let rings s = Dist.Router.rings s.router
let outcome_fn s = Dist.Coordinator.outcome s.coord

(* One domain's transaction [seq]: a local credit/debit run on the home
   account, or — with probability [cross_pct] when there is more than
   one shard — a transfer from the home account to a partner shard's
   account through the coordinator. *)
let txn_body s ~config ~seed ~cross_pct ~shards ~domain ~seq =
  let home = domain mod shards in
  let h = pseudo ~seed domain seq 0 in
  let cross = shards > 1 && float_of_int (h mod 1000) < cross_pct *. 10. in
  if cross then begin
    let partner = (home + 1 + (pseudo ~seed domain seq 1 mod (shards - 1))) mod shards in
    let amount = 1 + (pseudo ~seed domain seq 2 mod 9) in
    Dist.Coordinator.run s.coord (fun ctx ->
        let bh = Dist.Coordinator.branch ctx (Dist.Router.shard s.router home) in
        let bp = Dist.Coordinator.branch ctx (Dist.Router.shard s.router partner) in
        ignore (Aobj.invoke s.accounts.(home) bh (Adt.Account.Debit amount));
        Driver.think config;
        ignore (Aobj.invoke s.accounts.(partner) bp (Adt.Account.Credit amount));
        Driver.think config)
  end
  else
    Runtime.Manager.run
      (Dist.Shard.mgr (Dist.Router.shard s.router home))
      (fun txn ->
        for k = 0 to 2 do
          let amount = 1 + (pseudo ~seed domain seq (3 + k) mod 9) in
          let op =
            if (domain + seq + k) mod 2 = 0 then Adt.Account.Credit amount
            else Adt.Account.Debit amount
          in
          ignore (Aobj.invoke s.accounts.(home) txn op);
          Driver.think config
        done)

type outcome = {
  row : Experiments.row;
  o_shards : int;
  o_cross_pct : float;
  o_fsyncs : int; (* across every shard WAL and the decision log *)
  o_cross_commits : int;
  o_cross_aborts : int;
  o_ack_failures : int;
}

let run_one ?(scale = Experiments.default_scale) ?(seed = 0) ?wal_dir ?prefix ?fsync
    ?group_commit ?ring_capacity ~shards ~cross_pct () =
  let s = make_setup ?wal_dir ?prefix ?fsync ?group_commit ?ring_capacity ~shards () in
  let domains = max scale.Experiments.domains shards in
  let config =
    {
      Driver.domains;
      txns_per_domain = scale.Experiments.txns;
      think_us = scale.Experiments.think_us;
    }
  in
  let t0 = Unix.gettimeofday () in
  let workers =
    Array.init domains (fun domain ->
        Domain.spawn (fun () ->
            for seq = 0 to scale.Experiments.txns - 1 do
              txn_body s ~config ~seed ~cross_pct ~shards ~domain ~seq
            done))
  in
  Array.iter Domain.join workers;
  let wall = Unix.gettimeofday () -. t0 in
  let committed = domains * scale.Experiments.txns in
  let mgr_stats i = Runtime.Manager.stats (Dist.Shard.mgr (Dist.Router.shard s.router i)) in
  let cstats = Dist.Coordinator.stats s.coord in
  let attempts = ref cstats.Dist.Coordinator.c_attempts in
  for i = 0 to shards - 1 do
    attempts := !attempts + (mgr_stats i).Runtime.Manager.started
  done;
  let conflicts = ref 0 and blocked = ref 0 in
  Array.iter
    (fun acc ->
      let st = Aobj.stats acc in
      conflicts := !conflicts + st.Aobj.conflicts;
      blocked := !blocked + st.Aobj.blocked)
    s.accounts;
  let windows = Array.map Obs.Trace.entries (rings s) in
  let stitched = Dist.Audit.stitch windows in
  (* Section 3 checkers per object (each shard's account against its own
     ring), then the cross-shard agreement checks over all windows. *)
  let atomic =
    let per_object =
      Array.to_seq s.accounts
      |> Seq.map (fun acc -> Aobj.replay_check acc)
      |> Seq.fold_left
           (fun acc r -> match (acc, r) with Ok (), r -> r | e, _ -> e)
           (Ok ())
    in
    match per_object with
    | Error _ as e -> e
    | Ok () -> Dist.Audit.check ~outcome:(outcome_fn s) windows
  in
  let fsyncs =
    let wal_fsyncs = ref 0 in
    Dist.Router.iter
      (fun sh -> Option.iter (fun w -> wal_fsyncs := !wal_fsyncs + Wal.Log.fsyncs w) (Dist.Shard.wal sh))
      s.router;
    Option.iter
      (fun d -> wal_fsyncs := !wal_fsyncs + Wal.Log.fsyncs (Dist.Decision_log.log d))
      s.dlog;
    !wal_fsyncs
  in
  let row =
    {
      Experiments.label =
        Printf.sprintf "shards=%d cross=%.0f%%" shards cross_pct;
      committed;
      attempts = !attempts;
      op_conflicts = !conflicts;
      op_blocked = !blocked;
      throughput = float_of_int committed /. wall;
      conflict_prob =
        Aprof.op_conflict_probability ~weights:account_weights
          Adt.Account.conflict_hybrid;
      atomic = Some atomic;
      attrib = Some (Obs.Attrib.of_entries stitched);
      waitfor = Some (Obs.Waitfor.analyze stitched);
      window = stitched;
    }
  in
  let outcome =
    {
      row;
      o_shards = shards;
      o_cross_pct = cross_pct;
      o_fsyncs = fsyncs;
      o_cross_commits = cstats.Dist.Coordinator.c_cross_commits;
      o_cross_aborts = cstats.Dist.Coordinator.c_aborts;
      o_ack_failures = cstats.Dist.Coordinator.c_ack_failures;
    }
  in
  close_setup s;
  outcome

let shard_counts upto =
  let rec go n acc = if n >= upto then List.rev (upto :: acc) else go (n * 2) (n :: acc) in
  if upto <= 1 then [ 1 ] else go 1 []

let exp_shard ?(scale = Experiments.default_scale) ?(seed = 0) ?(shards = 4)
    ?(cross_pct = 10.) ?wal_dir ?fsync ?group_commit () =
  let variants =
    List.concat_map
      (fun n ->
        if n > 1 && cross_pct > 0. then [ (n, 0.); (n, cross_pct) ] else [ (n, 0.) ])
      (shard_counts shards)
  in
  let rows =
    List.map
      (fun (n, pct) ->
        let prefix = Printf.sprintf "n%d-c%.0f-" n pct in
        (run_one ~scale ~seed ?wal_dir ~prefix ?fsync ?group_commit ~shards:n
           ~cross_pct:pct ())
          .row)
      variants
  in
  {
    Experiments.id = "EXP-SHARD";
    title = "sharded managers vs one manager; cross-shard 2PC mix";
    params =
      Printf.sprintf "%d+ domains x %d txns, think %.0fus, seed %d, up to %d shards, %.0f%% cross"
        scale.Experiments.domains scale.Experiments.txns scale.Experiments.think_us seed
        shards cross_pct;
    rows;
  }
