(** Registry of durable ADT implementations and whole-log recovery
    verification.

    The log's [Object] records name each object's ADT; this registry
    maps those names back to the {!Wal.Codec.DURABLE} modules so
    recovery can dispatch.  It lives here (not in [lib/wal]) because the
    WAL layer must not depend on the shipped ADTs. *)

val registry : (string * Wal.Codec.packed) list
(** All eight shipped ADTs, keyed by [A.name]. *)

val find : string -> Wal.Codec.packed option

type verdict = {
  v_obj : string;
  v_adt : string;
  v_checkpoint : int option;  (** horizon of the checkpoint recovered from *)
  v_redone_txns : int;
  v_redone_ops : int;
  v_discarded : int;  (** uncommitted intention-holders discarded *)
  v_states : string;  (** recovered state set, pretty-printed *)
  v_result : (unit, string) result;
}

type report = {
  r_records : int;  (** after in-doubt resolution, when [decided] is given *)
  r_tail : Wal.Log.tail;
  r_committed : int;
  r_aborted : int;
  r_resolved : Wal.Recover.resolution list;
      (** in-doubt 2PC branches patched against the decision log *)
  r_verdicts : verdict list;
}

val ok : report -> bool

val verify :
  ?reference:bool ->
  ?decided:(int -> int option) ->
  Wal.Log.record list * Wal.Log.tail ->
  report
(** Recover every declared object through its latest checkpoint: a
    verdict fails on a corrupt payload, an illegal redo, or an
    unregistered ADT.  With [reference] (default [false]) each object is
    {e also} replayed from its initial state ignoring checkpoints,
    requiring observational equivalence — the cross-check that
    checkpoint truncation (Theorem 24) loses nothing.  Only sound when
    the log retains its full record history (compaction rewrites
    legitimately drop covered intentions), so leave it off for logs
    produced with rewriting enabled.

    [decided] is the coordinator's decision-log lookup
    ({!Wal.Recover.resolve}): in-doubt 2PC branches are resolved —
    commit at the decided timestamp, presumed abort otherwise — before
    either verification path runs. *)

val verify_file : ?reference:bool -> ?decided:(int -> int option) -> string -> report
(** {!verify} on {!Wal.Log.read} of the file; a torn tail is reported,
    not an error (that is the expected shape after a crash). *)

val pp_report : Format.formatter -> report -> unit
