(** Deterministic (virtual-time) versions of the concurrency
    experiments.

    Same workloads and conflict relations as {!Experiments}, run under
    {!Det_sim}: the numbers are exactly reproducible — a pure function
    of the scripts — so the paper's "who waits on whom" claims become
    assertable equalities rather than noisy wall-clock trends.  The
    [makespan] column is the virtual completion time (smaller = more
    admitted concurrency); [concurrency] is busy-time / makespan
    (workers = perfect overlap, 1 = serialized). *)

type row = {
  label : string;
  committed : int;
  restarts : int;
  conflicts : int;
  blocked : int;
  makespan : int;
  concurrency : float;
}

type table = { id : string; title : string; params : string; rows : row list }

val pp_table : Format.formatter -> table -> unit

val workers : int
val txns_per_worker : int

val det_queue_enq : unit -> table
val det_queue_mixed : unit -> table
val det_account : unit -> table
val det_semiqueue : unit -> table
val all : unit -> table list
