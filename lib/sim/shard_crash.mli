(** The 2PC kill-point matrix: crash the coordinator at every protocol
    milestone, recover every shard from disk, and require the victim's
    fate to equal the decision log's verdict everywhere.

    Milestones are driven through {!Dist.Coordinator.set_step_hook} with
    a raising hook — the coordinator performs no cleanup, so the
    participants are left exactly as a real crash leaves them: holding
    locks, prepared, undecided, or partially acked.  Recovery then uses
    only the on-disk logs: shard WALs ([Wal.Log.read] →
    {!Wal.Recover.resolve}) against the surviving decisions
    ({!Dist.Decision_log.read}).

    A cell fails if the victim commits without a surviving [Decide],
    fails to commit despite one, commits at a timestamp other than the
    decided one, differs between participants, or if any shard's
    checkpointed recovery disagrees with the reference replay of its
    resolved records. *)

exception Killed of string
(** Raised by the installed kill hook; never escapes {!run}. *)

type site =
  | No_kill  (** unkilled control *)
  | Before_prepare  (** after the body, before any vote *)
  | After_prepare of int  (** after the (k+1)-th vote, undecided *)
  | After_decide  (** decision durable, no participant applied *)
  | After_ack of int  (** after the (k+1)-th participant commit record *)

val site_label : site -> string
val sites : int -> site list
(** All milestones of a [parts]-participant commit, protocol order. *)

type cell = {
  k_site : site;
  k_gc : bool;  (** group commit on *)
  k_gid : int;  (** the victim's global transaction id *)
  k_decided : int option;  (** surviving [Decide] timestamp, if any *)
  k_fate : (int * int option) list;
      (** per shard: the victim's recovered commit timestamp *)
  k_resolutions : int;  (** in-doubt resolutions applied across shards *)
  k_failures : string list;
}

val cell_ok : cell -> bool

type matrix = { cells : cell list }

val ok : matrix -> bool
val pp_cell : Format.formatter -> cell -> unit
val pp : Format.formatter -> matrix -> unit

val run : ?shards:int -> ?cross_pct:float -> dir:string -> unit -> matrix
(** The full matrix: every {!sites} milestone of a two-participant
    transfer (shards 0 → 1), in both group-commit modes, each cell in
    its own subdirectory of [dir].  [shards] (min 2) adds bystander
    shards that must not be affected; [cross_pct] adds committed
    cross-shard background traffic before the victim. *)
