type run = {
  c_id : string;
  c_committed : int;
  c_records : int;
  c_live : int;
  c_kill_points : int;
  c_failures : (string * string) list;
  c_final : (unit, string) result;
}

let ok r = r.c_failures = [] && Result.is_ok r.c_final

let pp_run ppf r =
  Format.fprintf ppf "== CRASH-%s ==@." (String.uppercase_ascii r.c_id);
  Format.fprintf ppf
    "   %d committed txns, %d log records (%d live), %d kill points@." r.c_committed
    r.c_records r.c_live r.c_kill_points;
  (match r.c_final with
  | Ok () -> Format.fprintf ppf "   clean-log recovery matches the live object: OK@."
  | Error e -> Format.fprintf ppf "   clean-log recovery FAILED: %s@." e);
  match r.c_failures with
  | [] -> Format.fprintf ppf "   every kill point recovers the committed prefix: OK@."
  | fs ->
    List.iter (fun (kp, e) -> Format.fprintf ppf "   FAIL at %s: %s@." kp e) fs

(* Same decorrelation scheme as Experiments.pseudo. *)
let pseudo ~seed d seq k =
  ((seed * 15485863) + (d * 7919) + (seq * 104729) + (k * 1299709)) land 0x3fffffff

module Make (D : Wal.Codec.DURABLE) = struct
  module O = Runtime.Atomic_obj.Make (D)
  module R = Wal.Recover.Make (D)

  (* Run [body] durably, then re-derive the object from every
     deterministic crash image of the finished log: recovery through the
     checkpoint must match the reference replay of that image's
     committed prefix (observational equivalence).  fsync is off — the
     crash images are cut from the finished file, so durability across
     power loss is not what is under test — and the rewrite threshold is
     effectively infinite so the full record history survives for the
     reference replay. *)
  let run ?(group_commit = true) ~id ~dir ~scale ~limit ~conflict ~seed_ops ~body () =
    let path = Filename.concat dir (id ^ ".wal") in
    let w = Wal.Log.create ~fsync:false ~group_commit ~compact_threshold:max_int path in
    let mgr = Runtime.Manager.create ~wal:w () in
    let o = O.create ~wal:(w, D.codec) ~conflict () in
    (match seed_ops with
    | 0, _ -> ()
    | n, f ->
      let remaining = ref n in
      while !remaining > 0 do
        let batch = min 50 !remaining in
        Runtime.Manager.run mgr (fun txn ->
            for k = 0 to batch - 1 do
              f o txn (n - !remaining + k)
            done);
        remaining := !remaining - batch
      done);
    let config =
      {
        Driver.domains = scale.Experiments.domains;
        txns_per_domain = scale.Experiments.txns;
        think_us = scale.Experiments.think_us;
      }
    in
    let result =
      Driver.run config ~mgr (fun ~domain ~seq txn -> body o config ~domain ~seq txn)
    in
    let live = Wal.Log.live w in
    Wal.Log.close w;
    let live_states = O.committed_states o in
    let raw = Wal.Log.read_file path in
    let records, _tail = Wal.Log.parse raw in
    let name = O.name o in
    let final =
      match R.recover ~obj:name records with
      | Error e -> Error e
      | Ok oc ->
        if R.equal_states oc.R.states live_states then Ok ()
        else
          Error
            (Format.asprintf "recovered %a but the live object held %a" R.pp_states
               oc.R.states R.pp_states live_states)
    in
    let kps = Wal.Crash.kill_points ~limit raw in
    let failures =
      List.filter_map
        (fun kp ->
          let recs, _ = Wal.Log.parse (Wal.Crash.image raw kp) in
          let label () = Format.asprintf "%a" Wal.Crash.pp_kill_point kp in
          match (R.recover ~obj:name recs, R.reference ~obj:name recs) with
          | Error e, _ -> Some (label (), "recover: " ^ e)
          | _, Error e -> Some (label (), "reference replay: " ^ e)
          | Ok oc, Ok ref_states ->
            if R.equal_states oc.R.states ref_states then None
            else
              Some
                ( label (),
                  Format.asprintf "recovered %a, committed prefix is %a" R.pp_states
                    oc.R.states R.pp_states ref_states ))
        kps
    in
    {
      c_id = id;
      c_committed = result.Driver.committed;
      c_records = List.length records;
      c_live = live;
      c_kill_points = List.length kps;
      c_failures = failures;
      c_final = final;
    }
end

module Q = Make (Adt.Fifo_queue)
module S = Make (Adt.Semiqueue)
module A = Make (Adt.Account)

let default_limit = 400

let queue ?(scale = Experiments.quick_scale) ?(seed = 0) ?group_commit ~dir () =
  let ops = 3 in
  let consumer_domains = scale.Experiments.domains / 2 in
  let total_deqs = consumer_domains * scale.Experiments.txns * ops in
  Q.run ?group_commit ~id:"queue" ~dir ~scale ~limit:default_limit
    ~conflict:Adt.Fifo_queue.conflict_hybrid
    ~seed_ops:
      ( total_deqs,
        fun q txn k -> ignore (Q.O.invoke q txn (Adt.Fifo_queue.Enq (1 + (k mod 2)))) )
    ~body:(fun q config ~domain ~seq txn ->
      let producing = domain >= consumer_domains in
      for k = 0 to ops - 1 do
        if producing then
          ignore
            (Q.O.invoke q txn (Adt.Fifo_queue.Enq (1 + (pseudo ~seed domain seq k mod 2))))
        else ignore (Q.O.invoke q txn Adt.Fifo_queue.Deq);
        Driver.think config
      done)
    ()

let semiqueue ?(scale = Experiments.quick_scale) ?(seed = 0) ?group_commit ~dir () =
  let ops = 3 in
  let consumer_domains = scale.Experiments.domains / 2 in
  let total_rems = consumer_domains * scale.Experiments.txns * ops in
  S.run ?group_commit ~id:"semiqueue" ~dir ~scale ~limit:default_limit
    ~conflict:Adt.Semiqueue.conflict_hybrid
    ~seed_ops:
      ( total_rems,
        fun sq txn k -> ignore (S.O.invoke sq txn (Adt.Semiqueue.Ins (1 + (k mod 2)))) )
    ~body:(fun sq config ~domain ~seq txn ->
      let producing = domain >= consumer_domains in
      for k = 0 to ops - 1 do
        if producing then
          ignore
            (S.O.invoke sq txn (Adt.Semiqueue.Ins (1 + (pseudo ~seed domain seq k mod 2))))
        else ignore (S.O.invoke sq txn Adt.Semiqueue.Rem);
        Driver.think config
      done)
    ()

let account ?(scale = Experiments.quick_scale) ?(seed = 0) ?group_commit ~dir () =
  let ops = 3 in
  A.run ?group_commit ~id:"account" ~dir ~scale ~limit:default_limit
    ~conflict:Adt.Account.conflict_hybrid
    ~seed_ops:
      (1, fun acc txn _ -> ignore (A.O.invoke acc txn (Adt.Account.Credit 1_000_000)))
    ~body:(fun acc config ~domain ~seq txn ->
      for k = 0 to ops - 1 do
        let amount = 1 + (pseudo ~seed domain seq k mod 9) in
        (if (domain + seq) mod 2 = 0 then
           ignore (A.O.invoke acc txn (Adt.Account.Credit amount))
         else ignore (A.O.invoke acc txn (Adt.Account.Debit amount)));
        Driver.think config
      done)
    ()

let all ?scale ?seed ?group_commit ~dir () =
  [
    queue ?scale ?seed ?group_commit ~dir ();
    semiqueue ?scale ?seed ?group_commit ~dir ();
    account ?scale ?seed ?group_commit ~dir ();
  ]
