module Make (A : Spec.Adt_sig.BOUNDED) = struct
  type op = A.inv * A.res

  let op_conflict_probability ~weights rel =
    let total = List.fold_left (fun acc op -> acc +. weights op) 0. A.universe in
    if total <= 0. then invalid_arg "Conflict_profile: weights sum to zero";
    let mass =
      List.fold_left
        (fun acc p ->
          List.fold_left
            (fun acc q -> if rel p q then acc +. (weights p *. weights q) else acc)
            acc A.universe)
        0. A.universe
    in
    mass /. (total *. total)

  let txn_conflict_probability ~weights ~len rel =
    let p = op_conflict_probability ~weights rel in
    1. -. ((1. -. p) ** float_of_int (len * len))

  let uniform _ = 1.
end
