(* ---- Zipfian cell-key selection ----

   Workload generators have always drawn which OBJECT to hit but never
   which CELL KEY within it — every operation landed on the same couple
   of values, which makes a key-partitioned object look permanently
   contended and a whole-object one look no worse.  [Keys] draws keys
   from a Zipf(skew) distribution over [0, n): skew 0 is uniform (the
   fully partitionable regime), large skew concentrates mass on key 0
   (the contended-single-key regime), so both ends of the locking
   granularity trade-off are reachable from one knob.  Draws are pure
   hashes of (seed, domain, seq, k) — the same determinism contract as
   the value generator and Runtime.Backoff's seeding: reruns with one
   seed reproduce the key sequence exactly. *)

module Keys = struct
  type t = { n : int; skew : float; cdf : float array }

  let make ~skew ~n =
    if n <= 0 then invalid_arg "Conflict_profile.Keys.make: n must be positive";
    if skew < 0. then invalid_arg "Conflict_profile.Keys.make: skew must be >= 0";
    let w = Array.init n (fun i -> 1. /. (float_of_int (i + 1) ** skew)) in
    let total = Array.fold_left ( +. ) 0. w in
    let cdf = Array.make n 0. in
    let acc = ref 0. in
    Array.iteri
      (fun i wi ->
        acc := !acc +. (wi /. total);
        cdf.(i) <- !acc)
      w;
    cdf.(n - 1) <- 1.;
    { n; skew; cdf }

  let n t = t.n
  let skew t = t.skew

  let weight t i =
    if i < 0 || i >= t.n then invalid_arg "Conflict_profile.Keys.weight";
    if i = 0 then t.cdf.(0) else t.cdf.(i) -. t.cdf.(i - 1)

  (* Probability two independent draws collide on one key: the analytic
     key-contention factor multiplying an op-level conflict probability
     under key-restricted locking. *)
  let collision t =
    let acc = ref 0. in
    for i = 0 to t.n - 1 do
      let p = weight t i in
      acc := !acc +. (p *. p)
    done;
    !acc

  (* Deterministic avalanche mix of (seed, domain, seq, k) to [0, 1). *)
  let unit_float ~seed ~domain ~seq ~k =
    let h = ref ((seed * 0x9e3779b9) + 0x2545f) in
    let mix v =
      h := (!h lxor ((v + 0x7f4a7c15) * 0x85ebca6b)) * 0xc2b2ae35 land max_int;
      h := !h lxor (!h lsr 13)
    in
    mix domain;
    mix seq;
    mix k;
    float_of_int (!h land 0x3fffffff) /. 1073741824.

  let draw t ~seed ~domain ~seq ~k =
    let u = unit_float ~seed ~domain ~seq ~k in
    (* First index with cdf >= u. *)
    let lo = ref 0 and hi = ref (t.n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
    done;
    !lo
end

module Make (A : Spec.Adt_sig.BOUNDED) = struct
  type op = A.inv * A.res

  let op_conflict_probability ~weights rel =
    let total = List.fold_left (fun acc op -> acc +. weights op) 0. A.universe in
    if total <= 0. then invalid_arg "Conflict_profile: weights sum to zero";
    let mass =
      List.fold_left
        (fun acc p ->
          List.fold_left
            (fun acc q -> if rel p q then acc +. (weights p *. weights q) else acc)
            acc A.universe)
        0. A.universe
    in
    mass /. (total *. total)

  let txn_conflict_probability ~weights ~len rel =
    let p = op_conflict_probability ~weights rel in
    1. -. ((1. -. p) ** float_of_int (len * len))

  let uniform _ = 1.
end
