(** The measured experiments (EXP-* in DESIGN.md / EXPERIMENTS.md).

    The paper proves which interleavings each conflict relation admits
    but reports no measurements; these experiments quantify the claims on
    real multicore execution.  Every experiment runs the {e same}
    workload through the {e same} engine under different conflict
    relations — the paper's hybrid relation against the
    commutativity-based and classical read/write-locking baselines — and
    reports committed throughput, transaction-level retries, and
    object-level lock refusals, together with the machine-independent
    conflict probability of the relation under the workload's operation
    mix ({!Conflict_profile}).

    Expected shapes (asserted loosely by the test suite, printed exactly
    by [bin/main.exe experiments]):
    - enqueue-only: hybrid (Fig 4-2) refuses nothing; Fig 4-3 /
      commutativity and 2PL-RW serialize concurrent enqueuers.
    - mixed producer/consumer queue: Fig 4-3 beats Fig 4-2 (incomparable
      relations — the paper's point that minimal dependency relations are
      not unique).
    - account: hybrid admits Credit/Post/Debit concurrency; commutativity
      serializes Post against everything; RW serializes everything.
    - SemiQueue vs Queue: nondeterministic [Rem] spreads consumers across
      items while FIFO [Deq] fights over the unique front. *)

type row = {
  label : string;
  committed : int;
  attempts : int;  (** transaction attempts, including aborted ones *)
  op_conflicts : int;  (** lock refusals at the object *)
  op_blocked : int;  (** attempts with no legal response *)
  throughput : float;  (** committed transactions per second *)
  conflict_prob : float;  (** deterministic op-pair conflict probability *)
  atomic : (unit, string) result option;
      (** trace-replay hybrid-atomicity verdict for the run
          ({!Obs.Replay}); [None] when observability was disabled. *)
  attrib : Obs.Attrib.t option;
      (** per-op-pair conflict attribution folded from the run's trace
          window; [None] when observability was disabled. *)
  waitfor : Obs.Waitfor.report option;
      (** waits-for graph audit of the same window (must be acyclic
          under wait-die); [None] when observability was disabled. *)
  window : Obs.Trace.entry list;
      (** the raw trace window the run produced (empty when
          observability was disabled) — feed it to {!Obs.Export}. *)
}

type table = { id : string; title : string; params : string; rows : row list }

val pp_table : Format.formatter -> table -> unit

val pp_conflicts : Format.formatter -> table -> unit
(** Per-row conflict attribution (top cells, top holders), closing with
    the hybrid-vs-commutativity fired-conflict-mass comparison — the
    empirical counterpart of Theorem 28 — when the table has both
    rows. *)

val pp_waitfor : Format.formatter -> table -> unit
(** Per-row wait-for audit reports. *)

val violations : table list -> (string * string * string) list
(** All [(table id, row label, error)] triples whose replay check
    failed — what the CLI and the CI smoke job key their exit status
    on. *)

val waitfor_failures : table list -> (string * string * string) list
(** All [(table id, row label, cycles)] triples whose waits-for graph
    had a cycle — same exit-status contract as {!violations}: wait-die
    makes cycles impossible, so any cycle is a protocol bug. *)

val windows : table list -> Obs.Trace.entry list
(** Every row's trace window, concatenated in run order (timestamps are
    monotonic across rows, object keys and transaction ids are
    process-unique, so the result is directly exportable). *)

type scale = { domains : int; txns : int; think_us : float }
(** [txns] is per domain. *)

val default_scale : scale
val quick_scale : scale
(** Small sizes for tests. *)

(** Every experiment takes [?seed] (default [0], which reproduces the
    historical workload values) to shift the deterministic operation-value
    sequence, and [?wal] to run durably: the manager writes the
    write-ahead commit rule against the given log and every object logs
    intentions and checkpoints into it (see {!Wal}).  All rows of a table
    share the log — object names are unique, so recovery keeps them
    apart. *)

val exp_queue_enq : ?scale:scale -> ?seed:int -> ?wal:Wal.Log.t -> unit -> table
(** EXP-QUEUE(a): enqueue-only transactions (4 enqueues each). *)

val exp_queue_mixed : ?scale:scale -> ?seed:int -> ?wal:Wal.Log.t -> unit -> table
(** EXP-QUEUE(b): half the domains enqueue, half dequeue, over a seeded
    queue. *)

val exp_account : ?scale:scale -> ?seed:int -> ?wal:Wal.Log.t -> unit -> table
(** EXP-ACCOUNT: credit / post / debit transaction mix on one account,
    seeded with a large balance. *)

val exp_semiqueue : ?scale:scale -> ?seed:int -> ?wal:Wal.Log.t -> unit -> table
(** EXP-SEMIQ: the producer/consumer workload on a SemiQueue vs. a FIFO
    queue. *)

val exp_directory :
  ?scale:scale ->
  ?seed:int ->
  ?key_skew:float ->
  ?keys:int ->
  ?cells:int ->
  ?wal:Wal.Log.t ->
  unit ->
  table
(** EXP-DIRECTORY: the same Zipf([key_skew])-keyed insert/remove/member
    mix (default uniform over [keys = 64]) through three lock
    granularities on a Directory — a whole-object machine that is blind
    to keys ({!Adt.Directory.conflict_whole_object}), a whole-object
    machine with the key-aware relation, and a {!Part.Pdir} machine of
    [cells] independently locked cells.  The analytic [conflict_prob]
    of the key-aware rows is the blind probability scaled by the Zipf
    collision factor Σp² ({!Conflict_profile.Keys.collision}). *)

val partition_gate : ?factor:int -> table -> (int * int, string) result
(** The CI assertion on an {!exp_directory} table run with observability
    on: the cell-blind row's fired-conflict mass must be positive and at
    least [factor] (default [5]) times the cell-locked row's.  [Ok
    (blind, celled)] carries both masses; [Error] explains which side
    fell short (including observability being off). *)

val all : ?scale:scale -> ?seed:int -> ?wal:Wal.Log.t -> unit -> table list
