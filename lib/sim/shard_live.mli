(** Long-running sharded workload for the introspection server.

    [config.domains] workers run the {!Shard_exp} transaction mix
    (home-shard credit/debit runs, [cross_pct]% cross-shard transfers
    through the 2PC coordinator) against [config.shards] shards, each
    with its own manager, timestamp stripe, trace ring and — with
    [wal_dir] — its own WAL plus the coordinator's decision log.

    Unlike the single-manager serve loop ({!Live}), no epoch rotation is
    needed: the registered sampler audits are the {e cross-shard} checks
    ({!Dist.Audit}), which are sound on partial (wrapped) windows.  The
    sampler continuously re-verifies completion agreement, decided
    timestamps and observed order across the live per-shard rings;
    {!Dist.Router.register_introspection} puts every shard's lock
    tables, horizons and [shard]-labelled gauges behind the usual
    endpoints. *)

type config = {
  shards : int;
  domains : int;  (** worker domains, each pinned to a home shard *)
  think_us : float;
  seed : int;
  cross_pct : float;  (** percentage of transactions spanning two shards *)
  ring_capacity : int;  (** per-shard trace-ring slots *)
}

val default_config : config
(** 2 shards, 4 domains, 100 us think, seed 0, 10% cross-shard, 2^16
    slots per ring. *)

type t

val start : ?wal_dir:string -> ?fsync:bool -> ?group_commit:bool -> config -> t
(** Create the shards (durable iff [wal_dir]), register per-shard
    introspection and the [dist/atomicity] + [waitfor/dist] sampler
    audits, and spawn the workers. *)

val inject_violation : t -> bool
(** The negative control: commit-side forgery of a decided-abort
    transaction.  Runs a cross-shard transfer that aborts itself after
    invoking on two shards, then forges a [Commit] entry for its global
    id into shard 0's ring.  The next [dist/atomicity] audit must flag
    it (completion disagreement; with a decision log also
    decided-abort-yet-committed).  [false] only when the workload has
    fewer than two shards. *)

val windows : t -> Obs.Trace.entry list array
(** The current per-shard windows, indexed by shard. *)

val stitched : t -> Obs.Trace.entry list
(** The merged timeline ({!Dist.Audit.stitch}) — the window behind
    [/waitfor]. *)

val setup : t -> Shard_exp.setup
val shards : t -> int

type stats = {
  s_committed : int;  (** across every shard manager *)
  s_aborted : int;
  s_give_ups : int;
  s_cross_commits : int;
  s_cross_aborts : int;
  s_injected : int;
}

val stats : t -> stats

val stop : t -> unit
(** Signal the workers and join their domains.  Idempotent. *)

val close : t -> unit
(** {!stop}, then close every shard WAL and the decision log. *)
