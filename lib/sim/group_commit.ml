type row = {
  g_label : string;
  g_domains : int;
  g_group_commit : bool;
  g_committed : int;
  g_fsyncs : int;
  g_wall : float;
  g_throughput : float;
  g_p50_us : float;
  g_p99_us : float;
}

let fsyncs_per_commit r =
  if r.g_committed = 0 then nan else float_of_int r.g_fsyncs /. float_of_int r.g_committed

let pp_header ppf () =
  Format.fprintf ppf "%-24s %7s %9s %7s %7s %10s %9s %9s@." "workload" "domains"
    "committed" "fsyncs" "f/txn" "txn/s" "p50(us)" "p99(us)"

let pp_row ppf r =
  Format.fprintf ppf "%-24s %7d %9d %7d %7.3f %10.0f %9.1f %9.1f@." r.g_label r.g_domains
    r.g_committed r.g_fsyncs (fsyncs_per_commit r) r.g_throughput r.g_p50_us r.g_p99_us

(* Nearest-rank-with-interpolation percentile over an unsorted sample. *)
let percentile samples q =
  let n = Array.length samples in
  if n = 0 then nan
  else begin
    let s = Array.copy samples in
    Array.sort compare s;
    let idx = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor idx) in
    let hi = int_of_float (Float.ceil idx) in
    let frac = idx -. Float.floor idx in
    s.(lo) +. (frac *. (s.(hi) -. s.(lo)))
  end

module O = Runtime.Atomic_obj.Make (Adt.Counter)

(* Contention-free durable committers: each domain runs [txns]
   transactions of a single [Inc 1] against one shared counter.  Inc/Inc
   never conflict under the hybrid relation, so every attempt commits
   and the commit path — timestamp draw, commit-record append, sync to
   the record's LSN — is the only serialization left.  With group commit
   off every committer pays its own fsync; with it on, concurrent
   committers share a leader's barrier, so fsyncs/commit drops below 1
   as soon as commits overlap. *)
let run ?(fsync = true) ?sync_sleep_us ?(txns = 200) ~label ~dir ~domains ~group_commit ()
    =
  let path = Filename.concat dir (label ^ ".wal") in
  let w = Wal.Log.create ~fsync ~group_commit ~compact_threshold:max_int path in
  (match sync_sleep_us with
  | Some us -> Wal.Log.set_sync_hook w (fun () -> Unix.sleepf (us *. 1e-6))
  | None -> ());
  let mgr = Runtime.Manager.create ~wal:w () in
  let o = O.create ~wal:(w, Adt.Counter.codec) ~conflict:Adt.Counter.conflict_hybrid () in
  let t0 = Unix.gettimeofday () in
  let worker _d =
    Domain.spawn (fun () ->
        let lat = Array.make txns 0. in
        for seq = 0 to txns - 1 do
          let a0 = Obs.Clock.now_ns () in
          Runtime.Manager.run mgr (fun txn -> ignore (O.invoke o txn (Adt.Counter.Inc 1)));
          lat.(seq) <- Obs.Clock.ns_to_s (Obs.Clock.now_ns () - a0) *. 1e6
        done;
        lat)
  in
  let latencies =
    List.init domains worker |> List.map Domain.join |> Array.concat
  in
  let wall = Unix.gettimeofday () -. t0 in
  let fsyncs = Wal.Log.fsyncs w in
  Wal.Log.close w;
  let stats = Runtime.Manager.stats mgr in
  let committed = stats.Runtime.Manager.committed in
  {
    g_label = label;
    g_domains = domains;
    g_group_commit = group_commit;
    g_committed = committed;
    g_fsyncs = fsyncs;
    g_wall = wall;
    g_throughput = float_of_int committed /. wall;
    g_p50_us = percentile latencies 0.50;
    g_p99_us = percentile latencies 0.99;
  }

let sweep ?fsync ?txns ~dir ~domains () =
  List.concat_map
    (fun d ->
      [
        run ?fsync ?txns
          ~label:(Printf.sprintf "serial-fsync-%dd" d)
          ~dir ~domains:d ~group_commit:false ();
        run ?fsync ?txns
          ~label:(Printf.sprintf "group-commit-%dd" d)
          ~dir ~domains:d ~group_commit:true ();
      ])
    domains
