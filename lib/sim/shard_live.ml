(* Long-running sharded workload for the introspection server.

   The single-manager serve loop ([Live]) audits by epoch rotation,
   because per-object replay needs a complete window.  The sharded loop
   audits differently: the cross-shard checks ([Dist.Audit]) are sound
   on partial windows — a wrapped-out entry can mask a violation but
   never invent one — so the sampler can re-verify the live per-shard
   rings continuously, with no rotation machinery.  What is being
   watched is exactly the coordinator's obligations: every shard
   completes a global transaction the same way, at the same decided
   timestamp, matching the decision log, and no decided timestamp
   contradicts an observed order. *)

module Aobj = Shard_exp.Aobj

type config = {
  shards : int;
  domains : int;
  think_us : float;
  seed : int;
  cross_pct : float;
  ring_capacity : int;
}

let default_config =
  { shards = 2; domains = 4; think_us = 100.; seed = 0; cross_pct = 10.; ring_capacity = 1 lsl 16 }

type t = {
  config : config;
  setup : Shard_exp.setup;
  give_up_count : int Atomic.t;
  injected : int Atomic.t; (* forged commits emitted *)
  stop_flag : bool Atomic.t;
  mutable workers : unit Domain.t list;
}

let windows t = Array.map Obs.Trace.entries (Shard_exp.rings t.setup)
let stitched t = Dist.Audit.stitch (windows t)

let register_audits t =
  Obs.Sampler.register_audit ~name:"dist/atomicity" (fun () ->
      Dist.Audit.check ~outcome:(Shard_exp.outcome_fn t.setup) (windows t));
  Obs.Sampler.register_audit ~name:"waitfor/dist" (fun () ->
      let r = Obs.Waitfor.analyze (stitched t) in
      if Obs.Waitfor.ok r then Ok ()
      else
        Error
          (String.concat "; "
             (List.map
                (fun loop -> "cycle " ^ String.concat " -> " (List.map string_of_int loop))
                r.Obs.Waitfor.cycles)))

let worker t domain () =
  let dcfg =
    { Driver.domains = t.config.domains; txns_per_domain = 0; think_us = t.config.think_us }
  in
  let n = ref 0 in
  while not (Atomic.get t.stop_flag) do
    (try
       Shard_exp.txn_body t.setup ~config:dcfg ~seed:t.config.seed
         ~cross_pct:t.config.cross_pct ~shards:t.config.shards ~domain ~seq:!n
     with
    | Runtime.Manager.Too_many_attempts _ -> Atomic.incr t.give_up_count
    | Runtime.Txn_rt.Abort_requested _ -> Atomic.incr t.give_up_count);
    incr n
  done

let start ?wal_dir ?(fsync = true) ?(group_commit = true) config =
  let config = { config with shards = max 1 config.shards; domains = max 1 config.domains } in
  let setup =
    Shard_exp.make_setup ?wal_dir ~fsync:(fsync && wal_dir <> None) ~group_commit
      ~ring_capacity:config.ring_capacity ~shards:config.shards ()
  in
  Dist.Router.register_introspection setup.Shard_exp.router;
  let t =
    {
      config;
      setup;
      give_up_count = Atomic.make 0;
      injected = Atomic.make 0;
      stop_flag = Atomic.make false;
      workers = [];
    }
  in
  register_audits t;
  t.workers <- List.init config.domains (fun d -> Domain.spawn (worker t d));
  t

(* The negative control: run a cross-shard transfer that requests its
   own abort after invoking on two shards — the coordinator records the
   abort verdict and every shard's ring records the branch aborting —
   then forge a Commit entry for that global id into shard 0's ring, at
   a far-future timestamp.  The workload is untouched; only the trace
   lies.  The audit must flag it twice over: a shard committing what
   another aborted, and (when a decision log is attached) a shard
   committing a decided-abort transaction. *)
let inject_violation t =
  if t.config.shards < 2 then false
  else begin
    let gid = ref (-1) in
    let s = t.setup in
    match
      Dist.Coordinator.run_once s.Shard_exp.coord (fun ctx ->
          gid := Dist.Coordinator.id ctx;
          let b0 = Dist.Coordinator.branch ctx (Dist.Router.shard s.Shard_exp.router 0) in
          let b1 = Dist.Coordinator.branch ctx (Dist.Router.shard s.Shard_exp.router 1) in
          ignore (Aobj.invoke s.Shard_exp.accounts.(0) b0 (Adt.Account.Credit 1));
          ignore (Aobj.invoke s.Shard_exp.accounts.(1) b1 (Adt.Account.Debit 1));
          raise (Runtime.Txn_rt.Abort_requested "injected violation"))
    with
    | Ok _ -> false
    | Error _ ->
      let ring = Dist.Shard.ring (Dist.Router.shard s.Shard_exp.router 0) in
      Obs.Trace.emit ring
        ~obj:(Aobj.key s.Shard_exp.accounts.(0))
        ~txn:!gid (Obs.Trace.Commit 1_073_741_823);
      Atomic.incr t.injected;
      true
  end

type stats = {
  s_committed : int;  (** across every shard manager *)
  s_aborted : int;
  s_give_ups : int;
  s_cross_commits : int;
  s_cross_aborts : int;
  s_injected : int;
}

let stats t =
  let committed = ref 0 and aborted = ref 0 in
  Dist.Router.iter
    (fun sh ->
      let st = Runtime.Manager.stats (Dist.Shard.mgr sh) in
      committed := !committed + st.Runtime.Manager.committed;
      aborted := !aborted + st.Runtime.Manager.aborted)
    t.setup.Shard_exp.router;
  let c = Dist.Coordinator.stats t.setup.Shard_exp.coord in
  {
    s_committed = !committed + c.Dist.Coordinator.c_cross_commits;
    s_aborted = !aborted;
    s_give_ups = Atomic.get t.give_up_count;
    s_cross_commits = c.Dist.Coordinator.c_cross_commits;
    s_cross_aborts = c.Dist.Coordinator.c_aborts;
    s_injected = Atomic.get t.injected;
  }

let setup t = t.setup
let shards t = t.config.shards

let stop t =
  if not (Atomic.exchange t.stop_flag true) then begin
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let close t =
  stop t;
  Shard_exp.close_setup t.setup
