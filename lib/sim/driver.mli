(** Closed-loop concurrent workload driver.

    Spawns [domains] OCaml domains; each runs [txns_per_domain]
    transactions back to back through a shared {!Runtime.Manager}.  A
    workload supplies the body of transaction [seq] on domain [d].
    [think_us] sleeps between a transaction's operations (inside the
    body, via {!think}), modelling per-operation work done while holding
    locks — without it, transactions commit too fast for conflicts to
    materialize and all protocols look alike.  Sleeping (not spinning)
    lets admitted concurrency show up as overlapping waits even on
    single-core hosts. *)

type config = {
  domains : int;
  txns_per_domain : int;
  think_us : float;  (** passed to the body via {!think} *)
}

type result = {
  committed : int;
  attempts : int;  (** includes aborted-and-retried attempts *)
  wall_seconds : float;
  throughput : float;  (** committed transactions per second *)
}

val think : config -> unit
(** Sleep for [think_us] microseconds. *)

val run :
  config ->
  mgr:Runtime.Manager.t ->
  (domain:int -> seq:int -> Runtime.Txn_rt.t -> unit) ->
  result
(** Run the workload to completion and measure. *)

val pp_result : Format.formatter -> result -> unit
