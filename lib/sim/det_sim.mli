(** Deterministic discrete-event simulation of the protocol.

    The wall-clock driver ({!Driver}) measures real execution but its
    numbers vary run to run and depend on the host.  This simulator runs
    the {e same} protocol machine ({!Hybrid.Compacted}) under a virtual
    clock: workers execute scripted transactions whose operations take a
    fixed virtual think time; a refused operation retries after a
    virtual quantum; wait-die aborts restart the transaction after a
    virtual backoff.  Everything — including the tie-breaking of
    simultaneous events — is a pure function of the configuration, so
    results are exactly reproducible, making "who waits on whom" claims
    assertable in tests and comparable across machines.

    The virtual {e makespan} (time when the last transaction commits)
    measures how much concurrency the conflict relation admitted: with
    [workers] workers running identical scripts of total think time [T],
    a conflict-free relation yields a makespan near [T] (perfect
    overlap) while full mutual exclusion yields near [workers × T]. *)

module Make (A : Spec.Adt_sig.S) : sig
  type script = A.inv list list
  (** The transactions (each a list of invocations) one worker runs,
      in order. *)

  type config = {
    think : int;  (** virtual time units per operation *)
    retry_quantum : int;  (** delay before retrying a refused operation *)
    restart_delay : int;  (** delay before restarting an aborted transaction *)
    max_attempts : int;  (** per-transaction restart limit *)
  }

  val default_config : config

  type result = {
    committed : int;
    restarts : int;  (** wait-die transaction restarts *)
    conflicts : int;  (** operation refusals due to lock conflicts *)
    blocked : int;  (** operation refusals with no legal response *)
    makespan : int;  (** virtual completion time of the last commit *)
    busy : int;  (** total virtual think time spent in committed work *)
  }

  val concurrency : result -> float
  (** [busy / makespan] — effective parallelism achieved (1.0 = fully
      serialized, [workers] = perfect overlap). *)

  val run :
    ?config:config ->
    ?prefill:A.inv list ->
    conflict:(A.inv * A.res -> A.inv * A.res -> bool) ->
    script array ->
    result
  (** Simulate the given per-worker scripts to completion.  [prefill]
      operations are committed as one instantaneous transaction at
      virtual time 0 before measurement starts (e.g. stocking a queue
      for consumers).  Raises [Failure] if some transaction exceeds
      [max_attempts] or the simulation cannot make progress (every
      remaining worker blocked on a partial operation with nothing left
      to commit). *)

  val pp_result : Format.formatter -> result -> unit
end
