(* Cross-shard atomicity audit over stitched per-shard trace windows.

   The paper's local-property argument (Theorem 1) reduces global
   hybrid atomicity to per-object checks plus one global fact: all
   objects see the same commit timestamps, drawn from one total order.
   Per-object checks are already continuous ([Obs.Sampler] replays each
   object's window through the Section 3 checkers); what this module
   adds is the global fact for a sharded system, where "same timestamp
   everywhere" is exactly what 2PC must deliver:

   - completion agreement: a global transaction id must not commit on
     one shard and abort on another, and every shard must commit it at
     the same (decided) timestamp;
   - decision agreement: observed outcomes match the coordinator's
     verdict — in particular, a shard that commits a decided-abort
     transaction is caught here (the negative control);
   - timestamp/precedes order: within each object's window, a committed
     transaction that invokes after another's commit event must carry a
     larger timestamp (precedes ⊆ TS, observed directly; the
     cross-shard legs follow by transitivity through the Lamport
     merges). *)

type completion = {
  mutable commits : (int * int) list; (* (shard, ts), newest first *)
  mutable aborts : int list; (* shards *)
}

type report = {
  a_entries : int;
  a_txns : int; (* transactions with a completion event in some window *)
  a_cross : int; (* completing on more than one shard *)
  a_errors : string list;
}

let ok r = r.a_errors = []

let pp ppf r =
  Format.fprintf ppf "cross-shard audit: %d entries, %d txns (%d cross-shard): %s" r.a_entries
    r.a_txns r.a_cross
    (if ok r then "ok" else String.concat "; " r.a_errors)

let uniq l = List.sort_uniq compare l

(* One forged far-future commit makes every later honest transaction at
   that object trip the order check, so the error list is capped: the
   first [max_errors] are kept verbatim, the rest only counted.  A
   nonempty list is the verdict; the tail adds nothing. *)
let max_errors = 32

let analyze ?(outcome = fun _ -> None) (windows : Obs.Trace.entry list array) =
  let errors = ref [] and n_errors = ref 0 in
  let err fmt =
    Printf.ksprintf
      (fun s ->
        incr n_errors;
        if !n_errors <= max_errors then errors := s :: !errors)
      fmt
  in
  let entries = Array.fold_left (fun acc w -> acc + List.length w) 0 windows in
  (* 1. Gather completions per transaction id across all shards. *)
  let completions : (int, completion) Hashtbl.t = Hashtbl.create 256 in
  let completion txn =
    match Hashtbl.find_opt completions txn with
    | Some c -> c
    | None ->
      let c = { commits = []; aborts = [] } in
      Hashtbl.replace completions txn c;
      c
  in
  Array.iteri
    (fun si window ->
      List.iter
        (fun (e : Obs.Trace.entry) ->
          match e.event with
          | Obs.Trace.Commit ts ->
            let c = completion e.txn in
            if not (List.mem (si, ts) c.commits) then c.commits <- (si, ts) :: c.commits
          | Obs.Trace.Abort ->
            let c = completion e.txn in
            if not (List.mem si c.aborts) then c.aborts <- si :: c.aborts
          | _ -> ())
        window)
    windows;
  (* 2. Agreement checks; collect the agreed timestamp of cleanly
     committed transactions for the order check below. *)
  let final_ts : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let cross = ref 0 in
  Hashtbl.iter
    (fun txn c ->
      let commit_shards = uniq (List.map fst c.commits) in
      let tss = uniq (List.map snd c.commits) in
      let shards_touched = uniq (commit_shards @ c.aborts) in
      if List.length shards_touched > 1 then incr cross;
      (match (c.commits, c.aborts) with
      | _ :: _, a :: _ ->
        err "T%d committed on shard(s) %s but aborted on shard %d" txn
          (String.concat "," (List.map string_of_int commit_shards))
          a
      | _ -> ());
      (match tss with
      | [] | [ _ ] -> ()
      | _ ->
        err "T%d committed with disagreeing timestamps {%s}" txn
          (String.concat "," (List.map string_of_int tss)));
      (match (outcome txn, tss, c.aborts) with
      | Some `Abort, _ :: _, _ ->
        err "T%d: coordinator decided abort, but shard(s) %s committed it" txn
          (String.concat "," (List.map string_of_int commit_shards))
      | Some (`Commit dts), [ ts ], _ when ts <> dts ->
        err "T%d committed at ts=%d but the decision log says ts=%d" txn ts dts
      | Some (`Commit _), [], _ :: _ ->
        err "T%d: coordinator decided commit, but shard %d aborted it" txn (List.hd c.aborts)
      | _ -> ());
      match tss with [ ts ] when c.aborts = [] -> Hashtbl.replace final_ts txn ts | _ -> ())
    completions;
  (* 3. Per-object order check: scanning each object's window in emission
     order (faithful per object — emissions happen under the object's
     mutex), a committed transaction invoking after some transaction's
     commit event must carry a larger final timestamp.  This is
     precedes ⊆ TS read off the trace; a decided timestamp smaller than
     something its transaction observed would trip it. *)
  Array.iter
    (fun window ->
      let max_commit : (int, int) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun (e : Obs.Trace.entry) ->
          match e.event with
          | Obs.Trace.Commit ts ->
            let prev = Option.value ~default:min_int (Hashtbl.find_opt max_commit e.obj) in
            if ts > prev then Hashtbl.replace max_commit e.obj ts
          | Obs.Trace.Invoke _ -> (
            match Hashtbl.find_opt final_ts e.txn with
            | None -> ()
            | Some ts ->
              let seen =
                Option.value ~default:min_int (Hashtbl.find_opt max_commit e.obj)
              in
              if seen >= ts then
                err
                  "T%d (ts=%d) invoked at object %d after a commit at ts=%d: precedes ⊄ TS"
                  e.txn ts e.obj seen)
          | _ -> ())
        window)
    windows;
  let suppressed = !n_errors - min !n_errors max_errors in
  if suppressed > 0 then
    errors := Printf.sprintf "... and %d more violation(s)" suppressed :: !errors;
  {
    a_entries = entries;
    a_txns = Hashtbl.length completions;
    a_cross = !cross;
    a_errors = List.rev !errors;
  }

let check ?outcome windows =
  let r = analyze ?outcome windows in
  if ok r then Ok () else Error (String.concat "; " r.a_errors)

(* Merge per-shard windows into one timeline.  Entry times come from the
   shared process-wide monotonic clock, so sorting by time (stably, with
   shard and sequence breaking ties) yields a global order consistent
   with every per-shard order. *)
let stitch (windows : Obs.Trace.entry list array) =
  let tagged = ref [] in
  Array.iteri
    (fun si w -> List.iter (fun (e : Obs.Trace.entry) -> tagged := (si, e) :: !tagged) w)
    windows;
  List.sort
    (fun ((sa, a) : int * Obs.Trace.entry) (sb, b) ->
      match compare a.time b.time with
      | 0 -> ( match compare sa sb with 0 -> compare a.seq b.seq | c -> c)
      | c -> c)
    !tagged
  |> List.map snd
