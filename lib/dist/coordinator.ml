module Manager = Runtime.Manager
module Txn_rt = Runtime.Txn_rt

type step =
  | Executed
  | Prepared of int
  | Decided of Model.Timestamp.t
  | Acked of int

type t = {
  router : Router.t;
  dlog : Decision_log.t option;
  attempts : int Atomic.t;
  commits : int Atomic.t;
  cross_commits : int Atomic.t;
  aborts : int Atomic.t;
  ack_failures : int Atomic.t;
  mutable on_step : step -> unit;
}

type ctx = {
  coord : t;
  gid : int;
  prio : int;
  mutable branches : (int * Txn_rt.t) list; (* shard index -> branch; newest first *)
}

type stats = {
  c_attempts : int;
  c_commits : int;
  c_cross_commits : int;
  c_aborts : int;
  c_ack_failures : int;
}

let m_cross_commits = Obs.Metrics.counter "dist.cross_commits"
let m_cross_aborts = Obs.Metrics.counter "dist.aborts"

let create ?dlog router =
  {
    router;
    dlog;
    attempts = Atomic.make 0;
    commits = Atomic.make 0;
    cross_commits = Atomic.make 0;
    aborts = Atomic.make 0;
    ack_failures = Atomic.make 0;
    on_step = ignore;
  }

let router t = t.router
let set_step_hook t f = t.on_step <- f
let clear_step_hook t = t.on_step <- ignore

let stats t =
  {
    c_attempts = Atomic.get t.attempts;
    c_commits = Atomic.get t.commits;
    c_cross_commits = Atomic.get t.cross_commits;
    c_aborts = Atomic.get t.aborts;
    c_ack_failures = Atomic.get t.ack_failures;
  }

let id ctx = ctx.gid

(* Every branch of one global transaction shares the global id (traces
   stitch by it; wait-die sees one transaction) and the global priority
   (seniority must not depend on which shard a conflict happens at). *)
let branch ctx shard =
  let si = Shard.index shard in
  match List.assoc_opt si ctx.branches with
  | Some b -> b
  | None ->
    let b = Txn_rt.fresh ~id:ctx.gid ~priority:ctx.prio () in
    ctx.branches <- (si, b) :: ctx.branches;
    b

let outcome t gtxn =
  match t.dlog with None -> None | Some d -> Decision_log.outcome d gtxn

let mgr_of t si = Shard.mgr (Router.shard t.router si)
let note_abort t gid = Option.iter (fun d -> Decision_log.note_abort d ~gtxn:gid) t.dlog

let record_abort t gid =
  Atomic.incr t.aborts;
  Obs.Metrics.incr m_cross_aborts;
  note_abort t gid

(* Phase 1: prepare every participant in first-touch order.  A branch
   whose prepare fails never voted (or its vote will be presumed
   aborted), so the global transaction aborts: already-prepared branches
   get a decide-abort (releasing their stability pins), the rest plain
   aborts.  The step hook is called {e outside} the exception match —
   a raising hook models a coordinator crash and must leave every
   participant exactly as the protocol did (prepared, pinned, undecided). *)
let phase1 t ctx parts prepared =
  let rec go = function
    | [] -> None
    | (si, b) :: rest -> (
      match Manager.prepare (mgr_of t si) b ~gtxn:ctx.gid with
      | pts ->
        prepared := (si, b, pts) :: !prepared;
        t.on_step (Prepared si);
        go rest
      | exception e ->
        Manager.abort_txn (mgr_of t si) b;
        List.iter (fun (sj, bj) -> Manager.abort_txn (mgr_of t sj) bj) rest;
        List.iter
          (fun (sj, bj, pj) -> Manager.decide_abort (mgr_of t sj) bj ~prepared:pj)
          !prepared;
        Some e)
  in
  go parts

let two_phase t ctx parts =
  (* From here the span is cross-shard: every branch carries the global
     id, so the per-shard prepare/decide marks emitted by the managers
     stitch into this one flight span. *)
  if Obs.Span.enabled () then Obs.Span.cross_begin ~txn:ctx.gid;
  let prepared = ref [] in
  match phase1 t ctx parts prepared with
  | Some e ->
    if Obs.Span.enabled () then Obs.Span.cross_abort ~txn:ctx.gid;
    record_abort t ctx.gid;
    raise e
  | None -> (
    let plist = List.rev !prepared in
    (* The decided timestamp: max over the participants' prepares.  It
       is one of the prepared timestamps, so it was drawn exactly once,
       from exactly one shard's stripe — globally unique — and it is at
       least every participant's prepared timestamp, so no participant's
       stability pin or previously observed commit is overtaken. *)
    let ts = List.fold_left (fun acc (_, _, pts) -> max acc pts) 0 plist in
    let decided =
      match t.dlog with
      | None -> Ok ()
      | Some d -> ( try Ok (Decision_log.decide d ~gtxn:ctx.gid ~ts) with e -> Error e)
    in
    match decided with
    | Error e ->
      (* The Decide record's fate on disk is unknown: committing could
         disagree with a recovery that finds no record, aborting with
         one that does.  Crash-equivalent, like a single-shard
         [Durability_lost]: no outcome is distributed, the prepared
         pins stay (recovery from the logs resolves them), and the
         failure surfaces to the caller. *)
      raise
        (Manager.Durability_lost
           (Printf.sprintf "gtxn %d (ts %d): decision appended but not synced: %s" ctx.gid
              ts (Printexc.to_string e)))
    | Ok () ->
      (* The forced Decide record is the global commit point. *)
      if Obs.Span.enabled () then Obs.Span.decide ~txn:ctx.gid ~ts;
      t.on_step (Decided ts);
      let ack_failed = ref false in
      List.iter
        (fun (si, b, pts) ->
          (try Manager.decide_commit (mgr_of t si) b ~prepared:pts ~ts
           with _ ->
             (* Commit applied in memory; only this shard's commit
                record is not known durable.  The decision log already
                commits the transaction for recovery — but it must not
                be forgotten. *)
             ack_failed := true;
             Atomic.incr t.ack_failures);
          t.on_step (Acked si))
        plist;
      if not !ack_failed then Option.iter (fun d -> Decision_log.forget d ~gtxn:ctx.gid) t.dlog;
      Atomic.incr t.commits;
      Atomic.incr t.cross_commits;
      Obs.Metrics.incr m_cross_commits;
      if Obs.Span.enabled () then Obs.Span.cross_commit ~txn:ctx.gid ~ts)

let attempt_once ?priority t body =
  Atomic.incr t.attempts;
  let gid = Txn_rt.fresh_id () in
  let prio = Option.value ~default:gid priority in
  let ctx = { coord = t; gid; prio; branches = [] } in
  (* 0xffff: no single home stripe — this is a coordinator-side span.
     Each branch's marks (all carrying [gid]) fill in the shards. *)
  if Obs.Span.enabled () then Obs.Span.txn_begin ~txn:gid ~shard:0xffff;
  let abort_all () =
    List.iter (fun (si, b) -> Manager.abort_txn (mgr_of t si) b) ctx.branches;
    (* Branch aborts already closed the span when branches exist; this
       covers a body that failed before touching any shard. *)
    if Obs.Span.enabled () then Obs.Span.cross_abort ~txn:gid;
    record_abort t gid
  in
  match body ctx with
  | exception Txn_rt.Abort_requested reason ->
    abort_all ();
    Error (reason, prio)
  | exception e ->
    abort_all ();
    raise e
  | v -> (
    t.on_step Executed;
    (* Branches that recorded nothing have nothing to prepare or redo;
       they just release their handle (and their share of the id). *)
    let parts, empties =
      List.partition (fun (_, b) -> Txn_rt.participant_count b > 0) (List.rev ctx.branches)
    in
    List.iter (fun (_, b) -> Txn_rt.abort b) empties;
    match parts with
    | [] ->
      (* Read-nothing transaction: no timestamp was ever drawn. *)
      if Obs.Span.enabled () then Obs.Span.txn_commit ~txn:gid ~ts:0;
      Atomic.incr t.commits;
      Ok (v, prio)
    | [ (si, b) ] ->
      (* Single-shard fast path: ordinary local commit, no votes, no
         decision — 2PC costs only appear when a transaction actually
         spans shards. *)
      let _ts : int = Manager.commit_txn (mgr_of t si) b in
      Atomic.incr t.commits;
      Ok (v, prio)
    | parts ->
      two_phase t ctx parts;
      Ok (v, prio))

let run_once t body =
  match attempt_once t body with Ok (v, _) -> Ok v | Error (reason, _) -> Error reason

let run ?(max_attempts = 1000) t body =
  let rec go attempt priority last_reason =
    if attempt >= max_attempts then
      raise
        (Manager.Too_many_attempts
           (Printf.sprintf "global transaction failed %d times; last: %s" attempt
              last_reason))
    else
      match attempt_once ?priority t body with
      | Ok (v, _) -> v
      | Error (reason, prio) ->
        let delay = Runtime.Backoff.restart_delay ~key:prio ~attempt in
        if Obs.Span.enabled () then
          Obs.Span.backoff ~txn:prio ~sleep_ns:(int_of_float (delay *. 1e9));
        (* Park on the object the dying attempt lost (when the retry
           loop recorded one) so a release re-dispatches the restart;
           the jittered delay stays as the timeout backstop. *)
        (match Runtime.Sched.take_restart_hint () with
        | Some obj ->
          let ticket = Runtime.Sched.register ~obj ~txn:prio in
          ignore (Runtime.Sched.park ticket ~timeout:delay : [ `Woken | `Timeout ])
        | None -> Runtime.Sched.sleep delay);
        go (attempt + 1) (Some prio) reason
  in
  go 0 None "never attempted"
