type t = { shards : Shard.t array }

let make ?wal_dir ?prefix ?fsync ?group_commit ?compact_threshold ?ring_capacity ~count () =
  if count < 1 then invalid_arg "Router.make: count must be positive";
  {
    shards =
      Array.init count (fun index ->
          Shard.create ?wal_dir ?prefix ?fsync ?group_commit ?compact_threshold
            ?ring_capacity ~index ~count ());
  }

let of_shards shards =
  if Array.length shards = 0 then invalid_arg "Router.of_shards: empty";
  { shards }

let count t = Array.length t.shards
let shard t i = t.shards.(i)

(* Fibonacci hashing spreads sequential keys; any deterministic map
   would do — placement is policy, correctness comes from the
   coordinator. *)
let shard_of_key t k = t.shards.(k * 0x9E3779B1 land max_int mod Array.length t.shards)

let iter f t = Array.iter f t.shards
let rings t = Array.map Shard.ring t.shards
let register_introspection t = Array.iter Shard.register_introspection t.shards
let close t = Array.iter Shard.close t.shards
