(* The coordinator's presumed-abort decision log.

   Only commit decisions are written: the durability point of the
   [Decide] record is the global commit point of a cross-shard
   transaction.  An in-doubt participant that finds no decision presumes
   abort — which is why abort needs no forced record, no record at all.

   Alongside the durable log the writer keeps a bounded in-memory
   outcome table (commit decisions and session-scoped abort verdicts):
   the cross-shard audit ([Dist.Audit]) checks observed trace outcomes
   against it, which is what catches a shard committing a decided-abort
   transaction.  The abort side is deliberately memory-only — recovery
   must rely on the presumption, not on it. *)

type outcome = [ `Commit of int | `Abort ]

type t = {
  log : Wal.Log.t;
  mutex : Mutex.t;
  cap : int;
  (* two-generation eviction: lookups check both tables, so the table
     remembers at least [cap] and at most [2*cap] recent outcomes —
     plenty for any audit window, bounded for long-lived servers *)
  mutable cur : (int, outcome) Hashtbl.t;
  mutable prev : (int, outcome) Hashtbl.t;
}

let create ?(fsync = true) ?(group_commit = true) ?(outcome_cap = 1 lsl 16) path =
  {
    log = Wal.Log.create ~fsync ~group_commit path;
    mutex = Mutex.create ();
    cap = outcome_cap;
    cur = Hashtbl.create 1024;
    prev = Hashtbl.create 1;
  }

let path t = Wal.Log.path t.log
let log t = t.log

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let note t gtxn o =
  with_lock t (fun () ->
      if Hashtbl.length t.cur >= t.cap then begin
        t.prev <- t.cur;
        t.cur <- Hashtbl.create 1024
      end;
      Hashtbl.replace t.cur gtxn o)

(* Force the decision: returning means every participant may now learn
   the outcome.  The in-memory note happens only after the sync — a
   failed sync leaves the decision un-taken for the audit too. *)
let decide t ~gtxn ~ts =
  let lsn = Wal.Log.append_lsn t.log (Wal.Log.Decide { gtxn; ts }) in
  Wal.Log.sync_upto t.log lsn;
  note t gtxn (`Commit ts)

let forget t ~gtxn = Wal.Log.append t.log (Wal.Log.Forget { gtxn })
let note_abort t ~gtxn = note t gtxn `Abort

let outcome t gtxn =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.cur gtxn with
      | Some o -> Some o
      | None -> Hashtbl.find_opt t.prev gtxn)

let decided t gtxn =
  match outcome t gtxn with Some (`Commit ts) -> Some ts | Some `Abort | None -> None

let close t = Wal.Log.close t.log

(* Recovery side: the surviving commit decisions in a decision-log file.
   [Wal.Recover.decisions] on the parsed records — last write wins per
   gtxn (decisions are immutable, so duplicates only arise from
   rewrites), minus anything a later [Forget] covered. *)
let read path =
  let records, _tail = Wal.Log.read path in
  let tbl = Hashtbl.create 64 in
  List.iter
    (function
      | Wal.Log.Decide { gtxn; ts } -> Hashtbl.replace tbl gtxn ts
      | Wal.Log.Forget { gtxn } -> Hashtbl.remove tbl gtxn
      | _ -> ())
    records;
  Hashtbl.fold (fun gtxn ts acc -> (gtxn, ts) :: acc) tbl []
  |> List.sort compare
