(** The coordinator's presumed-abort decision log.

    Only commit decisions are forced ({!decide} returns at the [Decide]
    record's durability point — the {e global commit point} of a
    cross-shard transaction).  Abort is the presumption: an in-doubt
    participant finding no decision aborts, so aborts cost the
    coordinator no I/O at all — the presumed-abort optimisation.
    {!forget} drops a decision once every participant has acknowledged a
    durable commit record, keeping the log O(unacknowledged decisions).

    The writer also keeps a bounded in-memory outcome table, including
    session-scoped {e abort} verdicts ({!note_abort}) that are never
    written to disk: {!outcome} feeds the cross-shard audit
    ({!Audit.analyze}), which needs to recognise a shard committing a
    transaction the coordinator decided to abort. *)

type outcome = [ `Commit of int | `Abort ]

type t

val create : ?fsync:bool -> ?group_commit:bool -> ?outcome_cap:int -> string -> t
(** Open a fresh decision log (truncating).  [outcome_cap] bounds the
    in-memory outcome table (generational eviction keeps between [cap]
    and [2*cap] recent outcomes). *)

val decide : t -> gtxn:int -> ts:int -> unit
(** Force [Decide {gtxn; ts}].  Returning is the global commit point;
    raises like {!Wal.Log.sync_upto} on a durability fault, in which
    case the decision is {e not} taken (the record's fate on disk is
    unknown, and recovery may resolve either way — the caller must
    treat it as crash-equivalent). *)

val forget : t -> gtxn:int -> unit
(** Unforced [Forget]: safe only after every participant durably
    committed. *)

val note_abort : t -> gtxn:int -> unit
(** Record an abort verdict in memory only, for the audit. *)

val outcome : t -> int -> outcome option
(** Audit lookup: [None] means the transaction is unknown to this
    coordinator (e.g. a purely local transaction) — {e not} presumed
    abort. *)

val decided : t -> int -> int option
(** Recovery lookup: the decided commit timestamp, [None] for the
    presumption. *)

val log : t -> Wal.Log.t
val path : t -> string
val close : t -> unit

val read : string -> (int * int) list
(** Offline: surviving (gtxn, decided ts) pairs in a decision-log file,
    [Forget]-covered entries excluded — what a restarted system resolves
    in-doubt participants against ({!Wal.Recover.resolve}). *)
