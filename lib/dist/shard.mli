(** One shard of a sharded system: a {!Runtime.Manager} on timestamp
    stripe [(index, count)], optionally its own WAL, and its own trace
    ring.

    Shards share {e nothing}: lock tables live in the objects created
    against the shard, timestamps come from disjoint residue classes,
    and traces go to the per-shard ring.  The only coupling is the
    coordinator ({!Coordinator}) and its decision log. *)

type t

val create :
  ?wal_dir:string ->
  ?prefix:string ->
  ?fsync:bool ->
  ?group_commit:bool ->
  ?compact_threshold:int ->
  ?ring_capacity:int ->
  index:int ->
  count:int ->
  unit ->
  t
(** Shard [index] of [count].  With [wal_dir] the shard opens its own
    log at [<wal_dir>/<prefix>shard-<index>.wal] ([fsync],
    [group_commit], [compact_threshold] as in {!Wal.Log.create}). *)

val index : t -> int
val count : t -> int

val name : t -> string
(** ["shard<i>"] — the manager's introspection name. *)

val mgr : t -> Runtime.Manager.t
val wal : t -> Wal.Log.t option

val ring : t -> Obs.Trace.t
(** This shard's trace sink: pass it as [?trace] to every object created
    on the shard, so per-shard windows stitch cleanly ({!Audit}). *)

val obj_name : t -> string -> string
(** ["s<i>/<base>"] — shard-qualified object naming, so lock and horizon
    snapshots (and WAL object records) carry shard identity. *)

val register_introspection : t -> unit
(** Manager snapshot under the shard's name, WAL introspection if any,
    and gauges [shard_clock], [shard_stable_time], [shard_commits],
    [shard_aborts] labelled [shard=<index>] — the per-shard labels
    /metrics aggregates over. *)

val close : t -> unit
(** Close the shard's WAL (the manager itself holds no resources). *)

val wal_file : ?prefix:string -> dir:string -> int -> string
val decision_file : ?prefix:string -> string -> string
(** The on-disk layout ([<prefix>shard-<i>.wal], [<prefix>decisions.wal])
    — shared with the recovery CLI. *)
