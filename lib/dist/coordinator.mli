(** The cross-shard transaction coordinator: presumed-abort two-phase
    commit over hybrid timestamps.

    A global transaction body receives a {!ctx} and opens a {!branch}
    per shard it touches; all branches share one global transaction id
    and priority, so per-shard traces stitch by id and wait-die treats
    the branches as one transaction.  At commit:

    - {e single-shard} transactions take the ordinary local commit path
      (no votes, no decision record — 2PC costs nothing until a
      transaction actually spans shards);
    - {e cross-shard} transactions run 2PC: every participant
      {!Runtime.Manager.prepare}s (drawing its shard's hybrid timestamp
      and forcing its vote), the coordinator decides
      [commit_ts = max(prepared timestamps)] and forces it to the
      decision log (the global commit point), then every participant
      {!Runtime.Manager.decide_commit}s at the decided timestamp.  Once
      all acks are in, the decision is forgotten.

    Why max-of-prepares is a valid hybrid timestamp: each prepared
    timestamp exceeds everything its branch observed at its shard, the
    max exceeds all of them, and [decide_commit] Lamport-merges the
    decided value into every participant's clock — so any transaction
    that later observes this commit draws a larger timestamp at
    whichever shard it looks.  [precedes ⊆ TS] holds across shards with
    no shared clock.  Uniqueness comes from timestamp striping: the max
    {e is} one shard's prepared draw, issued exactly once system-wide.

    Presumed abort: aborts write nothing to the decision log.  An
    in-doubt participant (Prepare with no local outcome record) resolves
    against the decision log on restart — commit at the decided
    timestamp if present, abort otherwise ({!Wal.Recover.resolve}). *)

type t

type ctx
(** One global transaction attempt. *)

(** Protocol milestones, in order: after the body ran; after each
    participant's vote; after the decision became durable; after each
    participant applied and durably logged the decision.  A {!step} hook
    that raises models a coordinator crash at exactly that point — the
    coordinator performs {e no} cleanup, leaving participants prepared /
    undecided / partially acked for recovery to resolve (the kill-point
    matrix drives this). *)
type step =
  | Executed
  | Prepared of int  (** shard index *)
  | Decided of Model.Timestamp.t
  | Acked of int  (** shard index *)

val create : ?dlog:Decision_log.t -> Router.t -> t
(** Without [dlog] the coordinator still runs 2PC in memory (prepares,
    max decision, decided commits) but nothing survives a crash — for
    non-durable experiments only. *)

val router : t -> Router.t

val id : ctx -> int
(** The global transaction id (shared by every branch). *)

val branch : ctx -> Shard.t -> Runtime.Txn_rt.t
(** The transaction's branch at a shard (created on first use).  Pass it
    to objects created on that shard, exactly like a local handle. *)

val run : ?max_attempts:int -> t -> (ctx -> 'a) -> 'a
(** Run a global transaction to commit, with the same abort-and-retry
    contract as {!Runtime.Manager.run}: {!Runtime.Txn_rt.Abort_requested}
    aborts every branch (presumed abort — no decision-log write) and
    retries after backoff, preserving priority.  Raises
    {!Runtime.Manager.Durability_lost} when the decision record's fate
    is unknown (crash-equivalent: branches stay prepared and pinned;
    recovery resolves them). *)

val run_once : t -> (ctx -> 'a) -> ('a, string) result
(** Single attempt, no retry. *)

val outcome : t -> int -> Decision_log.outcome option
(** The coordinator's verdict on a global transaction id, for the
    cross-shard audit.  [None] = unknown to this coordinator (purely
    local transaction), not presumed abort. *)

val set_step_hook : t -> (step -> unit) -> unit
val clear_step_hook : t -> unit

type stats = {
  c_attempts : int;
  c_commits : int;  (** committed global transactions, any width *)
  c_cross_commits : int;  (** the subset that ran 2PC *)
  c_aborts : int;
  c_ack_failures : int;
      (** decided commits whose participant ack failed — their decisions
          are retained, never forgotten *)
}

val stats : t -> stats
