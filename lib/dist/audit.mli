(** Cross-shard atomicity audit: stitch per-shard trace windows by
    global transaction id and re-verify the merged history.

    Complements the per-object replay audits (which already run the
    Section 3 checkers continuously per shard) with the global facts
    only the coordinator can break: every shard completes a global
    transaction the same way, at the same decided timestamp, matching
    the coordinator's verdict, and no committed transaction's timestamp
    contradicts an observation order (precedes ⊆ TS read directly off
    each object's window; cross-shard legs follow by transitivity
    through the decided-timestamp Lamport merges).

    The checks are sound on partial windows (ring wrap loses edges,
    never invents them): a reported violation is real; a wrapped-out
    entry can only mask one. *)

type report = {
  a_entries : int;
  a_txns : int;  (** transactions completing in some window *)
  a_cross : int;  (** the subset completing on more than one shard *)
  a_errors : string list;
}

val ok : report -> bool
val pp : Format.formatter -> report -> unit

val analyze :
  ?outcome:(int -> Decision_log.outcome option) -> Obs.Trace.entry list array -> report
(** [windows.(i)] is shard [i]'s window ({!Obs.Trace.entries}).
    [outcome] is the coordinator's verdict function
    ({!Coordinator.outcome}); without it the decision-agreement check is
    skipped (completion and order checks still run). *)

val check :
  ?outcome:(int -> Decision_log.outcome option) ->
  Obs.Trace.entry list array ->
  (unit, string) result

val stitch : Obs.Trace.entry list array -> Obs.Trace.entry list
(** One merged timeline (by emission time, shard/seq tie-break) — for
    export and offline inspection. *)
