(** The shard set and key placement. *)

type t

val make :
  ?wal_dir:string ->
  ?prefix:string ->
  ?fsync:bool ->
  ?group_commit:bool ->
  ?compact_threshold:int ->
  ?ring_capacity:int ->
  count:int ->
  unit ->
  t
(** [count] fresh shards (see {!Shard.create}). *)

val of_shards : Shard.t array -> t

val count : t -> int
val shard : t -> int -> Shard.t

val shard_of_key : t -> int -> Shard.t
(** Deterministic key placement (Fibonacci hash mod shard count). *)

val iter : (Shard.t -> unit) -> t -> unit
val rings : t -> Obs.Trace.t array

val register_introspection : t -> unit
val close : t -> unit
