(* One shard: its own manager (timestamp stripe), its own WAL, its own
   trace ring.  Nothing here is shared with any other shard — the only
   cross-shard coupling in the whole system is the coordinator's
   decision log and the decided timestamps it distributes. *)

type t = {
  index : int;
  count : int;
  name : string;
  mgr : Runtime.Manager.t;
  wal : Wal.Log.t option;
  ring : Obs.Trace.t;
}

let wal_file ?(prefix = "") ~dir index =
  Filename.concat dir (Printf.sprintf "%sshard-%d.wal" prefix index)

let decision_file ?(prefix = "") dir = Filename.concat dir (prefix ^ "decisions.wal")

let create ?wal_dir ?(prefix = "") ?(fsync = true) ?(group_commit = true) ?compact_threshold
    ?(ring_capacity = 1 lsl 16) ~index ~count () =
  if index < 0 || index >= count then invalid_arg "Shard.create: index out of range";
  let wal =
    Option.map
      (fun dir ->
        Wal.Log.create ~fsync ~group_commit ?compact_threshold (wal_file ~prefix ~dir index))
      wal_dir
  in
  {
    index;
    count;
    name = Printf.sprintf "shard%d" index;
    mgr = Runtime.Manager.create ?wal ~stripe:(index, count) ();
    wal;
    ring = Obs.Trace.create ~capacity:ring_capacity ();
  }

let index t = t.index
let count t = t.count
let name t = t.name
let mgr t = t.mgr
let wal t = t.wal
let ring t = t.ring

(* Object names are prefixed with the shard, so /locks and /horizon rows
   (and WAL Object records) carry shard identity without any schema
   change. *)
let obj_name t base = Printf.sprintf "s%d/%s" t.index base

let register_introspection t =
  Runtime.Manager.register_introspection ~name:t.name t.mgr;
  Option.iter Wal.Log.register_introspection t.wal;
  let labels = [ ("shard", string_of_int t.index) ] in
  Obs.Gauge.callback ~labels "shard_clock" (fun () ->
      float_of_int (Runtime.Manager.current_time t.mgr));
  Obs.Gauge.callback ~labels "shard_stable_time" (fun () ->
      float_of_int (Runtime.Manager.stable_time t.mgr));
  Obs.Gauge.callback ~labels "shard_commits" (fun () ->
      float_of_int (Runtime.Manager.stats t.mgr).committed);
  Obs.Gauge.callback ~labels "shard_aborts" (fun () ->
      float_of_int (Runtime.Manager.stats t.mgr).aborted)

let close t = Option.iter Wal.Log.close t.wal
