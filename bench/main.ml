(* Benchmark harness: one Bechamel test (or test group) per paper figure.

   These are single-threaded protocol-cost microbenchmarks: each measures
   committed transactions pushed through the compacted LOCK machine of
   the figure's data type, under the figure's conflict relation and the
   baselines.  (They quantify the protocol's overhead; the *concurrency*
   measurements — throughput under real multicore contention, where the
   relations actually differ — are produced by `dune exec bin/main.exe --
   experiments`, since wall-clock contention experiments are not a
   microbenchmark shape.)

   Groups:
   - fig-4-1  File ops under hybrid / commutativity / RW locking
   - fig-4-2  Queue enq+deq transactions under the Figure 4-2 relation
   - fig-4-3  the same workload under the Figure 4-3 relation and RW
   - fig-4-4  SemiQueue ins+rem transactions
   - fig-4-5  Account transactions: generic engine (hybrid) vs the
              appendix's Avalon-style affine-intentions implementation
   - fig-7-1  Account transactions under commutativity-based conflicts
   - derivation  cost of deriving each figure's table from its spec
   - compaction  Section 6 ablation: LOCK with vs without compaction *)

open Bechamel
open Toolkit

(* Drive one ADT's compacted machine single-threadedly: the returned
   closure executes the given transactions (each a list of invocations,
   responses chosen by the machine) and commits each with the next
   timestamp.  State persists across benchmark iterations; with no
   concurrent transactions the horizon advances at every commit, so
   compaction keeps the machine size constant and the measurement
   stationary. *)
module Make_driver (A : Spec.Adt_sig.S) = struct
  module C = Hybrid.Compacted.Make (A)

  (* [label] names the per-figure metrics counters
     ([bench.<label>.txns] / [.ops]) that count the work each figure's
     closure pushed through the machine.  The counter calls stay on the
     fast path unconditionally; {!Obs.Control} decides whether they
     count — the on/off delta is what the obs-overhead group below
     measures. *)
  let make ?(label = A.name) ~conflict ~txns () =
    let m_txns = Obs.Metrics.counter (Printf.sprintf "bench.%s.txns" label) in
    let m_ops = Obs.Metrics.counter (Printf.sprintf "bench.%s.ops" label) in
    let machine = ref (C.create ~conflict) in
    let clock = ref 0 in
    let txn_ids = ref 0 in
    let one invs =
      incr txn_ids;
      let q = Model.Txn.make !txn_ids in
      List.iter
        (fun i ->
          (match C.step !machine (C.H.Invoke (q, i)) with
          | Ok m -> machine := m
          | Error _ -> assert false);
          match C.choose_response !machine q with
          | Ok (_, m) -> machine := m
          | Error _ -> assert false)
        invs;
      incr clock;
      (match C.step !machine (C.H.Commit (q, !clock)) with
      | Ok m -> machine := m
      | Error _ -> assert false);
      Obs.Metrics.incr m_txns;
      Obs.Metrics.add m_ops (List.length invs)
    in
    fun () -> List.iter one txns
end

module File_driver = Make_driver (Adt.File_adt)
module Queue_driver = Make_driver (Adt.Fifo_queue)
module Semi_driver = Make_driver (Adt.Semiqueue)
module Acct_driver = Make_driver (Adt.Account)

let test_fig_4_1 =
  let txn conflict =
    File_driver.make ~label:"fig-4-1" ~conflict ~txns:[ [ Adt.File_adt.Write 1; Adt.File_adt.Read ] ] ()
  in
  Test.make_grouped ~name:"fig-4-1-file"
    [
      Test.make ~name:"hybrid" (Staged.stage (txn Adt.File_adt.conflict_hybrid));
      Test.make ~name:"commutativity"
        (Staged.stage (txn Adt.File_adt.conflict_commutativity));
      Test.make ~name:"rw-locking" (Staged.stage (txn Adt.File_adt.conflict_rw));
    ]

(* Queue benchmarks alternate an enq-enq and a deq-deq transaction so the
   committed queue stays bounded. *)
let queue_txns =
  [ [ Adt.Fifo_queue.Enq 1; Adt.Fifo_queue.Enq 2 ]; [ Adt.Fifo_queue.Deq; Adt.Fifo_queue.Deq ] ]

let test_fig_4_2 =
  Test.make ~name:"fig-4-2-queue/hybrid"
    (Staged.stage
       (Queue_driver.make ~label:"fig-4-2" ~conflict:Adt.Fifo_queue.conflict_hybrid
          ~txns:queue_txns ()))

let test_fig_4_3 =
  Test.make_grouped ~name:"fig-4-3-queue"
    [
      Test.make ~name:"fig-4-3"
        (Staged.stage
           (Queue_driver.make ~label:"fig-4-3" ~conflict:Adt.Fifo_queue.conflict_fig_4_3
              ~txns:queue_txns ()));
      Test.make ~name:"rw-locking"
        (Staged.stage
           (Queue_driver.make ~label:"fig-4-3" ~conflict:Adt.Fifo_queue.conflict_rw
              ~txns:queue_txns ()));
    ]

let test_fig_4_4 =
  Test.make ~name:"fig-4-4-semiqueue/hybrid"
    (Staged.stage
       (Semi_driver.make ~label:"fig-4-4" ~conflict:Adt.Semiqueue.conflict_hybrid
          ~txns:
            [ [ Adt.Semiqueue.Ins 1; Adt.Semiqueue.Ins 2 ]; [ Adt.Semiqueue.Rem; Adt.Semiqueue.Rem ] ]
          ()))

let account_invs = [ Adt.Account.Credit 10; Adt.Account.Debit 5; Adt.Account.Post 1 ]

let test_fig_4_5 =
  let generic conflict = Acct_driver.make ~label:"fig-4-5" ~conflict ~txns:[ account_invs ] () in
  let avalon () =
    let acc = Runtime.Avalon_account.create () in
    let mgr = Runtime.Manager.create () in
    fun () ->
      Runtime.Manager.run mgr (fun txn ->
          Runtime.Avalon_account.credit acc txn 10;
          ignore (Runtime.Avalon_account.debit acc txn 5);
          Runtime.Avalon_account.post acc txn 1)
  in
  Test.make_grouped ~name:"fig-4-5-account"
    [
      Test.make ~name:"generic-hybrid"
        (Staged.stage (generic Adt.Account.conflict_hybrid));
      Test.make ~name:"avalon-affine" (Staged.stage (avalon ()));
      Test.make ~name:"rw-locking" (Staged.stage (generic Adt.Account.conflict_rw));
    ]

let test_fig_7_1 =
  Test.make ~name:"fig-7-1-account/commutativity"
    (Staged.stage
       (Acct_driver.make ~label:"fig-7-1" ~conflict:Adt.Account.conflict_commutativity
          ~txns:[ account_invs ] ()))

(* Deriving each figure's table from the serial specification (depth 2
   keeps the per-iteration cost benchmarkable; correctness tests use
   depth 3). *)
let test_derivation =
  let module FQ = Spec.Dependency.Make (Adt.Fifo_queue) in
  let module FS = Spec.Dependency.Make (Adt.Semiqueue) in
  let module FF = Spec.Dependency.Make (Adt.File_adt) in
  let module CA = Spec.Commutativity.Make (Adt.Account) in
  Test.make_grouped ~name:"derivation"
    [
      Test.make ~name:"fig-4-1-file"
        (Staged.stage (fun () -> ignore (FF.invalidated_by ~depth:2)));
      Test.make ~name:"fig-4-2-queue"
        (Staged.stage (fun () -> ignore (FQ.invalidated_by ~depth:2)));
      Test.make ~name:"fig-4-4-semiqueue"
        (Staged.stage (fun () -> ignore (FS.invalidated_by ~depth:2)));
      Test.make ~name:"fig-7-1-account-commut"
        (Staged.stage (fun () -> ignore (CA.failure_to_commute ~depth:2)));
    ]

(* Section 6 ablation: the same 60-transaction account run through the
   formal machine with intentions kept forever vs the compacted one. *)
let test_compaction =
  let module L = Hybrid.Lock_machine.Make (Adt.Account) in
  let run_full () =
    let machine = ref (L.create ~conflict:Adt.Account.conflict_hybrid) in
    for ts = 1 to 60 do
      let q = Model.Txn.make ts in
      List.iter
        (fun i ->
          (match L.step !machine (L.H.Invoke (q, i)) with
          | Ok m -> machine := m
          | Error _ -> assert false);
          match L.available_responses !machine q with
          | r :: _ -> (
            match L.step !machine (L.H.Respond (q, r)) with
            | Ok m -> machine := m
            | Error _ -> assert false)
          | [] -> assert false)
        account_invs;
      match L.step !machine (L.H.Commit (q, ts)) with
      | Ok m -> machine := m
      | Error _ -> assert false
    done
  in
  let run_compacted =
    (* A fresh compacted driver per iteration for a fair comparison. *)
    fun () -> (Acct_driver.make ~label:"compaction" ~conflict:Adt.Account.conflict_hybrid
                 ~txns:(List.init 60 (fun _ -> account_invs)) ()) ()
  in
  Test.make_grouped ~name:"compaction-60txn"
    [
      Test.make ~name:"intentions-kept-forever" (Staged.stage run_full);
      Test.make ~name:"horizon-compacted" (Staged.stage run_compacted);
    ]

(* The deterministic simulator itself: cost of simulating a small
   enqueue workload under each relation. *)
let test_det_sim =
  let module DQ = Sim.Det_sim.Make (Adt.Fifo_queue) in
  let scripts =
    Array.init 2 (fun w ->
        List.init 5 (fun k -> List.init 3 (fun j -> Adt.Fifo_queue.Enq (1 + ((w + k + j) mod 2)))))
  in
  let sim conflict () = ignore (DQ.run ~conflict scripts) in
  Test.make_grouped ~name:"det-sim-30op"
    [
      Test.make ~name:"hybrid" (Staged.stage (sim Adt.Fifo_queue.conflict_hybrid));
      Test.make ~name:"rw-locking" (Staged.stage (sim Adt.Fifo_queue.conflict_rw));
    ]

(* Snapshot reads: a pinned lock-free read against a live account. *)
let test_snapshot =
  let module AObj = Runtime.Atomic_obj.Make (Adt.Account) in
  let mgr = Runtime.Manager.create () in
  let acc = AObj.create ~conflict:Adt.Account.conflict_hybrid () in
  Runtime.Manager.run mgr (fun txn ->
      ignore (AObj.invoke acc txn (Adt.Account.Credit 1000)));
  let sources = [ AObj.snapshot_source acc ] in
  let read_roundtrip () =
    ignore
      (Runtime.Snapshot.read mgr ~sources (fun ~at ->
           AObj.read_at acc ~at (Adt.Account.Debit 1)))
  in
  Test.make_grouped ~name:"snapshot"
    [ Test.make ~name:"read-only-roundtrip" (Staged.stage read_roundtrip) ]

(* Observability cost: the fig-4-2 workload through an instrumented
   driver with the metrics/trace switch on vs off (off = every registry
   call is a no-op behind one atomic read — the baseline the tentpole's
   <5% overhead budget is measured against).  Each closure sets the
   switch itself because Bechamel interleaves its own calibration runs;
   the groups above run before this one, under the default (on). *)
let test_obs_overhead =
  let on_driver =
    Queue_driver.make ~label:"obs-overhead" ~conflict:Adt.Fifo_queue.conflict_hybrid
      ~txns:queue_txns ()
  in
  let off_driver =
    Queue_driver.make ~label:"obs-overhead" ~conflict:Adt.Fifo_queue.conflict_hybrid
      ~txns:queue_txns ()
  in
  Test.make_grouped ~name:"obs-overhead-fig-4-2"
    [
      Test.make ~name:"metrics-on"
        (Staged.stage (fun () ->
             Obs.Control.set_enabled true;
             on_driver ()));
      Test.make ~name:"metrics-off"
        (Staged.stage (fun () ->
             Obs.Control.set_enabled false;
             off_driver ()));
    ]

(* Live-exposition cost, both sides of the introspection server:

   - the *hot path*: the per-commit instrumentation a serve process
     pays on every transaction — one stored-gauge incr/decr pair, one
     counter add, one histogram observation — with the switch on vs off
     (gauges are never gated, so "off" still pays the pair; that is the
     floor the 5% obs budget in EXPERIMENTS.md is measured against);
   - the *scrape path*: rendering the full Prometheus exposition and a
     ["locks"] channel snapshot against a populated registry (a live
     introspected object + manager, plus every instrument the groups
     above registered).  Scrapes run on the server thread, not the
     workload's, so this is latency a poll sees, not workload
     overhead. *)
let test_live_exposition =
  let module QObj = Runtime.Atomic_obj.Make (Adt.Fifo_queue) in
  let mgr = Runtime.Manager.create () in
  let q =
    QObj.create ~name:"bench/queue" ~conflict:Adt.Fifo_queue.conflict_hybrid
      ~op_label:Adt.Fifo_queue.op_label ()
  in
  QObj.register_introspection q;
  Runtime.Manager.register_introspection ~name:"bench/manager" mgr;
  Runtime.Manager.run mgr (fun txn ->
      ignore (QObj.invoke q txn (Adt.Fifo_queue.Enq 1)));
  let g = Obs.Gauge.make "bench_live_inflight" in
  let c = Obs.Metrics.counter "bench.live.commits" in
  let h = Obs.Metrics.histogram "bench.live.latency" in
  let hot_path () =
    Obs.Gauge.incr g;
    Obs.Metrics.incr c;
    Obs.Metrics.observe h 1e-5;
    Obs.Gauge.decr g
  in
  Test.make_grouped ~name:"live-exposition"
    [
      Test.make ~name:"registry-update-on"
        (Staged.stage (fun () ->
             Obs.Control.set_enabled true;
             hot_path ()));
      Test.make ~name:"registry-update-off"
        (Staged.stage (fun () ->
             Obs.Control.set_enabled false;
             hot_path ()));
      Test.make ~name:"metrics-render"
        (Staged.stage (fun () ->
             Obs.Control.set_enabled true;
             ignore (Obs.Expose.render ())));
      Test.make ~name:"locks-snapshot"
        (Staged.stage (fun () -> ignore (Obs.Registry.snapshot "locks")));
    ]

(* Flight-recorder cost, microbenchmark shape: the same committed
   transaction through the full runtime with the recorder off, at the
   span-marks tier (level 1 — two 32-byte ring stores per commit, what
   an always-on deployment pays), and at the per-op detail tier
   (level 2 — adds a record and two clock reads per ADT operation).
   Every closure sets its own level because Bechamel interleaves
   calibration runs; the enforced < 5% budget on the marks tier is the
   --flight-overhead-only section below, which also runs the flusher. *)
let test_flight_overhead =
  let module CObj = Runtime.Atomic_obj.Make (Adt.Counter) in
  let driver () =
    let mgr = Runtime.Manager.create () in
    let c = CObj.create ~conflict:Adt.Counter.conflict_hybrid () in
    fun () ->
      Runtime.Manager.run mgr (fun txn -> ignore (CObj.invoke c txn (Adt.Counter.Inc 1)))
  in
  (* The off closure pays the same two set_level stores, so the three
     rows differ only in what the recorder does. *)
  let at level d () =
    Obs.Control.set_enabled true;
    Obs.Flight.set_level level;
    d ();
    Obs.Flight.set_level 0
  in
  let off = driver () and marks = driver () and detail = driver () in
  Test.make_grouped ~name:"flight-overhead"
    [
      Test.make ~name:"recorder-off" (Staged.stage (at 0 off));
      Test.make ~name:"span-marks" (Staged.stage (at 1 marks));
      Test.make ~name:"per-op-detail" (Staged.stage (at 2 detail));
    ]

(* Durability cost: one committed increment transaction through the
   full runtime (manager + atomic object) with no log, with a log whose
   fsync is disabled (append cost only), and with a fully synced log
   (the write-ahead commit rule's real price: one fsync per commit).
   State persists across iterations; sequential commits keep the
   horizon advancing, so the log keeps compacting and the measurement
   stays stationary. *)
let test_wal_overhead =
  let module CObj = Runtime.Atomic_obj.Make (Adt.Counter) in
  let bench_path tag =
    let f = Filename.temp_file ("hybrid-cc-bench-" ^ tag) ".wal" in
    at_exit (fun () -> try Sys.remove f with Sys_error _ -> ());
    f
  in
  let txn_of mgr c () =
    Runtime.Manager.run mgr (fun txn -> ignore (CObj.invoke c txn (Adt.Counter.Inc 1)))
  in
  let plain =
    let mgr = Runtime.Manager.create () in
    let c = CObj.create ~conflict:Adt.Counter.conflict_hybrid () in
    txn_of mgr c
  in
  let durable ?group_commit ~fsync tag =
    let w = Wal.Log.create ?group_commit ~fsync (bench_path tag) in
    let mgr = Runtime.Manager.create ~wal:w () in
    let c = CObj.create ~wal:(w, Adt.Counter.codec) ~conflict:Adt.Counter.conflict_hybrid () in
    txn_of mgr c
  in
  (* With one committer the two sync modes degenerate to the same one
     fsync per commit — the interesting (multi-committer) comparison is
     the group-commit section below, not a microbenchmark shape. *)
  Test.make_grouped ~name:"wal-overhead"
    [
      Test.make ~name:"wal-off" (Staged.stage plain);
      Test.make ~name:"wal-nofsync" (Staged.stage (durable ~fsync:false "nofsync"));
      Test.make ~name:"wal-fsync"
        (Staged.stage (durable ~group_commit:true ~fsync:true "fsync"));
      Test.make ~name:"wal-fsync-serial"
        (Staged.stage (durable ~group_commit:false ~fsync:true "fsync-serial"));
    ]

(* Cell-locking cost: the same 4-key directory transaction through the
   full runtime against a whole-object machine and a partitioned one.
   Single-threaded, so this prices the partition plumbing itself — the
   cell routing, the per-cell mutexes and lock machines, the fibonacci
   key hash — not the concurrency it buys (that is EXP-DIRECTORY's
   job).  The keys are fixed and distinct, so the partitioned run
   touches 4 separate cells per transaction (the worst case for the
   plumbing: 4 machines' views instead of 1). *)
let test_partition_overhead =
  let keys = [ 0; 1; 2; 3 ] in
  let whole =
    let mgr = Runtime.Manager.create () in
    let module DObj = Runtime.Atomic_obj.Make (Adt.Directory) in
    let d = DObj.create ~conflict:Adt.Directory.conflict_hybrid () in
    fun () ->
      Runtime.Manager.run mgr (fun txn ->
          List.iter (fun k -> ignore (DObj.invoke d txn (Adt.Directory.Insert k))) keys;
          List.iter (fun k -> ignore (DObj.invoke d txn (Adt.Directory.Remove k))) keys)
  in
  let celled =
    let mgr = Runtime.Manager.create () in
    let d = Part.Pdir.create ~cells:8 () in
    fun () ->
      Runtime.Manager.run mgr (fun txn ->
          List.iter (fun k -> ignore (Part.Pdir.invoke d txn (Adt.Directory.Insert k))) keys;
          List.iter (fun k -> ignore (Part.Pdir.invoke d txn (Adt.Directory.Remove k))) keys)
  in
  Test.make_grouped ~name:"partition-overhead-directory"
    [
      Test.make ~name:"whole-object" (Staged.stage whole);
      Test.make ~name:"cell-locked-8" (Staged.stage celled);
    ]

(* Offline trace-analysis cost: folding a captured window into the
   conflict matrix / waits-for report and serializing it.  The window is
   synthetic (a contended retry/grant pattern) so the fold cost is
   measured on a stable input, independent of scheduler noise. *)
let test_trace_analysis =
  let tr = Obs.Trace.create ~capacity:(1 lsl 12) () in
  let refusal holder = Obs.Trace.Lock_refused { holder; requested = 0; held = 1 } in
  for q = 1 to 256 do
    let emit ev = Obs.Trace.emit tr ~obj:(q mod 8) ~txn:q ev in
    emit (Obs.Trace.Invoke 0);
    emit (refusal (Some (q - 1)));
    emit Obs.Trace.Retry;
    emit Obs.Trace.Lock_granted;
    emit (Obs.Trace.Respond 0);
    emit (Obs.Trace.Commit q)
  done;
  let window = Obs.Trace.entries tr in
  let null_ppf = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()) in
  Test.make_grouped ~name:"trace-analysis"
    [
      Test.make ~name:"attrib-fold"
        (Staged.stage (fun () -> ignore (Obs.Attrib.of_entries window)));
      Test.make ~name:"waitfor-analyze"
        (Staged.stage (fun () -> ignore (Obs.Waitfor.analyze window)));
      Test.make ~name:"chrome-export"
        (Staged.stage (fun () -> Obs.Export.chrome_trace null_ppf window));
    ]

let all_tests =
  Test.make_grouped ~name:"hybrid-cc"
    [
      test_fig_4_1;
      test_fig_4_2;
      test_fig_4_3;
      test_fig_4_4;
      test_fig_4_5;
      test_fig_7_1;
      test_derivation;
      test_compaction;
      test_det_sim;
      test_snapshot;
      test_obs_overhead;
      test_live_exposition;
      test_flight_overhead;
      test_wal_overhead;
      test_partition_overhead;
      test_trace_analysis;
    ]

(* EXP-GROUP-COMMIT: durable commit throughput and fsync amortization
   vs committer count (not a Bechamel shape — it needs real domains).
   The measured sweep uses the machine's actual fsync; the assertion row
   pins the barrier cost at 200us with a sync hook, so "concurrent
   committers share a barrier" is checked deterministically rather than
   on whatever disk CI happens to run on. *)
let run_group_commit () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hybrid-cc-bench-gc-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  print_endline "";
  print_endline "group commit (durable Inc transactions on one counter, real fsync):";
  let rows = Sim.Group_commit.sweep ~txns:200 ~dir ~domains:[ 1; 4 ] () in
  Format.printf "%a" Sim.Group_commit.pp_header ();
  List.iter (fun r -> Format.printf "%a" Sim.Group_commit.pp_row r) rows;
  let assert_row =
    Sim.Group_commit.run ~fsync:false ~sync_sleep_us:200. ~txns:100
      ~label:"batched-assert-4d" ~dir ~domains:4 ~group_commit:true ()
  in
  Format.printf "%a" Sim.Group_commit.pp_row assert_row;
  let fpc = Sim.Group_commit.fsyncs_per_commit assert_row in
  if fpc >= 1.0 then begin
    Format.eprintf
      "FAIL: 4 concurrent committers against a 200us barrier ran %.3f syncs/commit — \
       group commit is not batching@."
      fpc;
    exit 1
  end;
  Format.printf "batched sync assertion: %.3f fsyncs/commit at 4 committers (< 1): OK@."
    fpc

(* EXP-SHARD scaling sweep: durable sharded throughput vs shard count
   at 0% and 10% cross-shard traffic (not a Bechamel shape either — it
   needs real domains and real WALs).  Reports the fsyncs/commit
   accounting: per-shard group commit amortizes the local durability
   point, while every cross-shard commit additionally pays the
   coordinator's forced decision and the participants' forced prepares,
   so fsyncs/commit is the honest price tag of the 2PC mix.  The
   cross-shard audit verdict of every cell is asserted — a sharded run
   whose stitched trace violates hybrid atomicity fails the bench. *)
let run_shard_scaling () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hybrid-cc-bench-shard-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  print_endline "";
  print_endline
    "shard scaling (durable account transfers, per-shard WAL + decision log, real fsync):";
  let scale = { Sim.Experiments.domains = 4; txns = 120; think_us = 0. } in
  Printf.printf "  %-6s %7s %9s %12s %8s %9s %13s  %s\n" "shards" "cross" "committed"
    "txn/s" "fsyncs" "fs/commit" "cross(c/a)" "audit";
  List.iter
    (fun (shards, cross_pct) ->
      let o =
        Sim.Shard_exp.run_one ~scale ~wal_dir:dir
          ~prefix:(Printf.sprintf "sc-n%d-c%.0f-" shards cross_pct)
          ~fsync:true ~group_commit:true ~shards ~cross_pct ()
      in
      let r = o.Sim.Shard_exp.row in
      let fpc =
        float_of_int o.Sim.Shard_exp.o_fsyncs
        /. float_of_int (max 1 r.Sim.Experiments.committed)
      in
      let audit =
        match r.Sim.Experiments.atomic with
        | Some (Ok ()) -> "ok"
        | Some (Error e) -> "FAIL: " ^ e
        | None -> "-"
      in
      Printf.printf "  %-6d %6.0f%% %9d %12.0f %8d %9.3f %9d/%-3d  %s\n" shards cross_pct
        r.Sim.Experiments.committed r.Sim.Experiments.throughput o.Sim.Shard_exp.o_fsyncs
        fpc o.Sim.Shard_exp.o_cross_commits o.Sim.Shard_exp.o_cross_aborts audit;
      if (match r.Sim.Experiments.atomic with Some (Ok ()) -> false | _ -> true) then begin
        Format.eprintf "FAIL: shard-scaling cell shards=%d cross=%.0f%% audit: %s@." shards
          cross_pct audit;
        exit 1
      end)
    (List.concat_map
       (fun n -> if n = 1 then [ (n, 0.) ] else [ (n, 0.); (n, 10.) ])
       (Sim.Shard_exp.shard_counts 8));
  print_endline "shard-scaling audit assertion: every cell hybrid-atomic: OK"

(* The always-on budget, enforced: the span-marks tier (level 1, with
   the background flusher actually running, as a serve deployment has
   it) must cost the workload < 5% of throughput against the recorder
   switched off.  On/off trials interleave so clock drift and cache
   warmth cancel, and the medians are compared — a single hot trial
   must not fail CI, a real regression in the emit path must. *)
let run_flight_overhead () =
  print_endline "";
  print_endline
    "flight overhead (level-1 span marks + running flusher vs recorder off, 3-op txns):";
  let module CObj = Runtime.Atomic_obj.Make (Adt.Counter) in
  let mgr = Runtime.Manager.create () in
  let c = CObj.create ~conflict:Adt.Counter.conflict_hybrid () in
  let slice_txns = 1_000 in
  let batch () =
    for _ = 1 to slice_txns do
      Runtime.Manager.run mgr (fun txn ->
          ignore (CObj.invoke c txn (Adt.Counter.Inc 1));
          ignore (CObj.invoke c txn (Adt.Counter.Inc 2));
          ignore (CObj.invoke c txn (Adt.Counter.Inc 3)))
    done
  in
  Obs.Control.set_enabled true;
  let flight = Obs.Flight.start ~period_ms:10 () in
  Obs.Flight.set_level 0;
  let time level =
    Obs.Flight.set_level level;
    let t0 = Unix.gettimeofday () in
    batch ();
    let dt = Unix.gettimeofday () -. t0 in
    Obs.Flight.set_level 0;
    dt
  in
  for _ = 1 to 5 do
    batch ()
  done;
  (* warm-up *)
  (* Short off/on slices in strict alternation, compared by trimmed
     sums: interleaving makes both sides sample the same frequency and
     cache environment, and dropping each side's slowest tenth discards
     the preemption/GC outliers a shared CI box produces — the
     recorder's systematic cost is in every on-slice and survives the
     trim, so a real emit-path regression still fails the gate. *)
  let slices = 200 in
  let offs = Array.make slices 0. and ons = Array.make slices 0. in
  for i = 0 to slices - 1 do
    offs.(i) <- time 0;
    ons.(i) <- time 1
  done;
  let trimmed a =
    Array.sort compare a;
    let keep = slices * 9 / 10 in
    let s = ref 0. in
    for i = 0 to keep - 1 do
      s := !s +. a.(i)
    done;
    (!s, keep * slice_txns)
  in
  let t_off, n_off = trimmed offs and t_on, n_on = trimmed ons in
  let delta = (t_on /. float_of_int n_on /. (t_off /. float_of_int n_off)) -. 1. in
  Printf.printf
    "  recorder off: %10.0f txn/s\n  span marks:   %10.0f txn/s   delta %+.2f%%\n"
    (float_of_int n_off /. t_off)
    (float_of_int n_on /. t_on)
    (100. *. delta);
  Printf.printf "  recorder saw %d records (%d lost to ring wrap before the flusher)\n"
    (Obs.Flight.emitted ()) (Obs.Flight.lost ());
  Obs.Flight.stop flight;
  if delta > 0.05 then begin
    Format.eprintf
      "FAIL: level-1 span marks cost %.2f%% of throughput — over the 5%% always-on \
       budget@."
      (100. *. delta);
    exit 1
  end;
  Printf.printf "flight-overhead assertion: level-1 delta %.2f%% < 5%%: OK\n"
    (100. *. delta)

(* EXP-HOTPATH's two assertions (ISSUE 10 / ROADMAP item 2): the
   no-conflict WAL-off path takes zero mutexes end to end, and removing
   them bought a real speedup.  The zero-lock check is deterministic —
   Lockstat counts actual mutex acquisitions, so it is immune to CI
   machine noise.  The speedup check compares the same workload in the
   same process with Lockstat.force_slow routing everything through the
   pre-rework mutex paths; on boxes with fewer than 4 cores the mutex
   convoy never forms, so the ratio assertion relaxes to >= 1 there
   (the zero-lock check still proves the structural claim).
   HOTPATH_BASELINE=1 skips both assertions (baseline measurement). *)
let run_hotpath () =
  print_endline "";
  print_endline "hotpath (no-conflict WAL-off transactions, lock-free fast path):";
  Obs.Control.set_enabled false;
  let txns = 5_000 in
  Format.printf "%a" Sim.Hotpath.pp_header ();
  let rows = Sim.Hotpath.sweep ~txns ~domains:[ 1; 2; 4; 8 ] () in
  List.iter (fun r -> Format.printf "%a" Sim.Hotpath.pp_row r) rows;
  let slow =
    Sim.Hotpath.run ~txns ~shape:`Private ~force_slow:true ~label:"private-8d-mutex"
      ~domains:8 ()
  in
  Format.printf "%a" Sim.Hotpath.pp_row slow;
  let fast =
    List.find
      (fun r -> r.Sim.Hotpath.h_label = "private-8d")
      rows
  in
  let speedup = slow.Sim.Hotpath.h_us_per_txn /. fast.Sim.Hotpath.h_us_per_txn in
  let locks = Runtime.Lockstat.total fast.Sim.Hotpath.h_locks in
  Printf.printf
    "  8-domain private: %.2f us/txn lock-free vs %.2f us/txn forced-mutex (%.2fx), %d \
     mutex acquisitions\n"
    fast.Sim.Hotpath.h_us_per_txn slow.Sim.Hotpath.h_us_per_txn speedup locks;
  if Sys.getenv_opt "HOTPATH_BASELINE" = Some "1" then
    print_endline "hotpath assertions: skipped (HOTPATH_BASELINE=1)"
  else begin
    if locks <> 0 then begin
      Format.eprintf
        "FAIL: uncontended txn path took %d mutex acquisitions (obj %d, mgr %d, \
         registry %d) — expected 0@."
        locks fast.Sim.Hotpath.h_locks.Runtime.Lockstat.s_obj
        fast.Sim.Hotpath.h_locks.Runtime.Lockstat.s_mgr
        fast.Sim.Hotpath.h_locks.Runtime.Lockstat.s_registry;
      exit 1
    end;
    Printf.printf "hotpath assertion: uncontended path mutex acquisitions = 0: OK\n";
    let cores =
      match Sys.getenv_opt "HOTPATH_MIN_SPEEDUP" with
      | Some _ -> max_int (* explicit threshold: trust it regardless of cores *)
      | None -> Domain.recommended_domain_count ()
    in
    let min_speedup =
      match Sys.getenv_opt "HOTPATH_MIN_SPEEDUP" with
      | Some s -> float_of_string s
      | None -> if cores >= 4 then 2.0 else 1.0
    in
    if speedup < min_speedup then begin
      Format.eprintf "FAIL: lock-free speedup %.2fx < required %.2fx@." speedup
        min_speedup;
      exit 1
    end;
    Printf.printf "hotpath assertion: lock-free speedup %.2fx >= %.2fx: OK\n" speedup
      min_speedup
  end

let () =
  (* `--group-commit-only` / `--shard-scaling-only` /
     `--flight-overhead-only` / `--hotpath-only` skip the Bechamel
     groups: the CI assertions need those sections' exit codes, not 30s
     of microbenchmarks. *)
  if Array.exists (String.equal "--group-commit-only") Sys.argv then begin
    run_group_commit ();
    exit 0
  end;
  if Array.exists (String.equal "--shard-scaling-only") Sys.argv then begin
    run_shard_scaling ();
    exit 0
  end;
  if Array.exists (String.equal "--flight-overhead-only") Sys.argv then begin
    run_flight_overhead ();
    exit 0
  end;
  if Array.exists (String.equal "--hotpath-only") Sys.argv then begin
    run_hotpath ();
    exit 0
  end;
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] all_tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns = match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan in
        let r2 = Option.value ~default:nan (Analyze.OLS.r_square ols) in
        (name, ns, r2) :: acc)
      results []
    |> List.sort compare
  in
  Printf.printf "%-55s %15s %8s\n" "benchmark" "time/run" "r^2";
  List.iter
    (fun (name, ns, r2) ->
      let time =
        if Float.is_nan ns then "n/a"
        else if ns > 1e6 then Printf.sprintf "%10.3f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%10.3f us" (ns /. 1e3)
        else Printf.sprintf "%10.1f ns" ns
      in
      Printf.printf "%-55s %15s %8.3f\n" name time r2)
    rows;
  Obs.Control.set_enabled true;
  print_endline "";
  print_endline "per-figure work counters (Obs.Metrics, while the switch was on):";
  List.iter
    (fun (name, v) ->
      if String.length name >= 6 && String.sub name 0 6 = "bench." then
        Printf.printf "  %-53s %d\n" name v)
    (Obs.Metrics.counters ());
  run_group_commit ();
  run_shard_scaling ();
  run_flight_overhead ();
  run_hotpath ();
  print_endline "";
  print_endline
    "note: multicore contention experiments (throughput per conflict relation)";
  print_endline "      are produced by: dune exec bin/main.exe -- experiments"
