(* Random well-formed histories generated *through* the LOCK machine.

   The generator plays a random scheduler: a pool of transactions issues
   random invocations; the machine chooses responses (so the history is
   always in L(LOCK) for the given conflict relation); refused
   invocations are dropped or the transaction aborts; transactions commit
   with timestamps from a monotone counter, which satisfies the
   precedes-respecting timestamp constraint by construction.

   Shared by the lock-machine, compaction and runtime test suites. *)

module Make (A : Spec.Adt_sig.BOUNDED) = struct
  module L = Hybrid.Lock_machine.Make (A)
  module H = L.H

  type config = {
    txns : int;  (** transaction pool size *)
    steps : int;  (** scheduler steps *)
    abort_bias : int;  (** 1 in [abort_bias] completions aborts *)
  }

  let default = { txns = 3; steps = 18; abort_bias = 4 }

  (* Returns the generated history (the machine accepted every event). *)
  let generate ?(config = default) (rand : Random.State.t) ~conflict : H.t =
    let invocations = List.map fst A.universe in
    let inv_array = Array.of_list invocations in
    let pick_inv () = inv_array.(Random.State.int rand (Array.length inv_array)) in
    let machine = ref (L.create ~conflict) in
    let history = ref [] in
    let clock = ref 0 in
    let completed = Array.make config.txns false in
    let apply e =
      match L.step !machine e with
      | Ok m ->
        machine := m;
        history := e :: !history;
        true
      | Error _ -> false
    in
    for _ = 1 to config.steps do
      let i = Random.State.int rand config.txns in
      let t = Model.Txn.make i in
      if not completed.(i) then
        match L.pending !machine t with
        | Some _ -> (
          (* Try to respond; on refusal, sometimes abort. *)
          match L.available_responses !machine t with
          | r :: rest ->
            let choices = Array.of_list (r :: rest) in
            let r = choices.(Random.State.int rand (Array.length choices)) in
            ignore (apply (H.Respond (t, r)))
          | [] ->
            if Random.State.int rand 2 = 0 then begin
              ignore (apply (H.Abort t));
              completed.(i) <- true
            end)
        | None ->
          (* Invoke something, or complete. *)
          let die = Random.State.int rand 10 in
          if die < 6 then ignore (apply (H.Invoke (t, pick_inv ())))
          else if die < 9 then begin
            if Random.State.int rand config.abort_bias = 0 then
              ignore (apply (H.Abort t))
            else begin
              incr clock;
              ignore (apply (H.Commit (t, !clock)))
            end;
            completed.(i) <- true
          end
    done;
    List.rev !history
end
