(* Tests for Spec.Sequences: legality of operation sequences against each
   ADT's serial specification, including partial and nondeterministic
   operations, plus qcheck properties tying legality to enumeration. *)

module Q = Adt.Fifo_queue
module SQ = Adt.Semiqueue
module F = Adt.File_adt
module A = Adt.Account
module QS = Spec.Sequences.Make (Q)
module SS = Spec.Sequences.Make (SQ)
module FS = Spec.Sequences.Make (F)
module AS = Spec.Sequences.Make (A)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------------- FIFO queue ---------------- *)

let test_queue_legal () =
  check_bool "empty" true (QS.legal []);
  check_bool "enq" true (QS.legal [ Q.enq 1 ]);
  check_bool "enq enq deq fifo" true (QS.legal [ Q.enq 1; Q.enq 2; Q.deq 1 ]);
  check_bool "fifo order respected" true
    (QS.legal [ Q.enq 1; Q.enq 2; Q.deq 1; Q.deq 2 ]);
  check_bool "wrong deq value" false (QS.legal [ Q.enq 1; Q.enq 2; Q.deq 2 ]);
  check_bool "deq on empty is partial" false (QS.legal [ Q.deq 1 ]);
  check_bool "deq more than enq" false (QS.legal [ Q.enq 1; Q.deq 1; Q.deq 1 ])

let test_queue_states () =
  (match QS.states_after [ Q.enq 1; Q.enq 2 ] with
  | [ s ] -> Alcotest.(check (list int)) "queue contents" [ 1; 2 ] s
  | _ -> Alcotest.fail "expected a single state");
  check_int "illegal sequence has no states" 0
    (List.length (QS.states_after [ Q.deq 1 ]))

let test_queue_equivalence () =
  check_bool "enq deq = empty" true (QS.equivalent [] [ Q.enq 1; Q.deq 1 ]);
  check_bool "different contents differ" false (QS.equivalent [ Q.enq 1 ] [ Q.enq 2 ])

(* ---------------- SemiQueue (nondeterminism) ---------------- *)

let test_semiqueue_nondeterminism () =
  check_bool "remove first inserted" true (SS.legal [ SQ.ins 1; SQ.ins 2; SQ.rem 1 ]);
  check_bool "remove second inserted" true (SS.legal [ SQ.ins 1; SQ.ins 2; SQ.rem 2 ]);
  check_bool "remove absent item" false (SS.legal [ SQ.ins 1; SQ.rem 2 ]);
  check_bool "rem on empty is partial" false (SS.legal [ SQ.rem 1 ]);
  check_bool "multiset: two copies" true
    (SS.legal [ SQ.ins 1; SQ.ins 1; SQ.rem 1; SQ.rem 1 ]);
  check_bool "multiset: not three copies" false
    (SS.legal [ SQ.ins 1; SQ.ins 1; SQ.rem 1; SQ.rem 1; SQ.rem 1 ])

let test_semiqueue_state_canonical () =
  (* Insertion order does not matter: the state is a sorted multiset. *)
  check_bool "ins 1;2 = ins 2;1" true
    (SS.equivalent [ SQ.ins 1; SQ.ins 2 ] [ SQ.ins 2; SQ.ins 1 ])

let test_semiqueue_rem_branches () =
  (* After ins 1; ins 2, Rem can legally return either item: two branches. *)
  match SS.states_after [ SQ.ins 1; SQ.ins 2 ] with
  | [ s ] -> check_int "two possible rem results" 2 (List.length (SQ.step s SQ.Rem))
  | _ -> Alcotest.fail "expected single state"

(* ---------------- File ---------------- *)

let test_file_legal () =
  check_bool "read initial 0" true (FS.legal [ F.read 0 ]);
  check_bool "read initial nonzero" false (FS.legal [ F.read 1 ]);
  check_bool "read most recent write" true (FS.legal [ F.write 1; F.write 2; F.read 2 ]);
  check_bool "read stale write" false (FS.legal [ F.write 1; F.write 2; F.read 1 ])

(* ---------------- Account ---------------- *)

let test_account_legal () =
  check_bool "credit then debit" true (AS.legal [ A.credit 3; A.debit_ok 2 ]);
  check_bool "debit exceeding balance fails as Ok" false (AS.legal [ A.debit_ok 2 ]);
  check_bool "overdraft on empty account" true (AS.legal [ A.debit_overdraft 2 ]);
  check_bool "overdraft leaves balance" true
    (AS.legal [ A.credit 2; A.debit_overdraft 3; A.debit_ok 2 ]);
  check_bool "post multiplies" true
    (* 2 * (1+1) = 4, so Debit 3 succeeds *)
    (AS.legal [ A.credit 2; A.post 1; A.debit_ok 3 ]);
  check_bool "overdraft is accurate" false
    (AS.legal [ A.credit 2; A.post 1; A.debit_overdraft 3 ])

(* ---------------- Enumeration ---------------- *)

let test_legal_sequences_enumeration () =
  let seqs = QS.legal_sequences ~ops:Q.universe ~depth:2 in
  (* Length 0: 1.  Length 1: enq1, enq2.  Length 2: enq;enq (4 combos)
     plus enq v; deq v (2). *)
  check_int "queue depth 2" (1 + 2 + 6) (List.length seqs);
  check_bool "all legal" true (List.for_all QS.legal seqs)

let test_legal_sequences_prefix_closed () =
  let seqs = SS.legal_sequences ~ops:SQ.universe ~depth:3 in
  let drop_last l = List.filteri (fun i _ -> i < List.length l - 1) l in
  check_bool "prefix of each enumerated sequence is enumerated" true
    (List.for_all (fun s -> s = [] || List.exists (fun s' -> s' = drop_last s) seqs) seqs)

(* ---------------- Properties ---------------- *)

let queue_op_gen =
  QCheck2.Gen.(
    oneof
      [
        map (fun v -> Q.enq (1 + (v mod 2))) (0 -- 1);
        map (fun v -> Q.deq (1 + (v mod 2))) (0 -- 1);
      ])

let prop_legality_prefix_closed =
  QCheck2.Test.make ~name:"legality is prefix-closed (queue)" ~count:300
    QCheck2.Gen.(list_size (0 -- 6) queue_op_gen)
    (fun ops ->
      (not (QS.legal ops))
      || List.for_all
           (fun k -> QS.legal (List.filteri (fun i _ -> i < k) ops))
           (List.init (List.length ops) Fun.id))

let prop_equivalence_same_futures =
  (* Equivalent sequences admit exactly the same one-op extensions. *)
  QCheck2.Test.make ~name:"equivalent sequences have equal futures (semiqueue)"
    ~count:200
    QCheck2.Gen.(
      pair
        (list_size (0 -- 4) (oneofl SQ.universe))
        (list_size (0 -- 4) (oneofl SQ.universe)))
    (fun (h1, h2) ->
      (not (SS.equivalent h1 h2))
      || List.for_all (fun p -> SS.legal (h1 @ [ p ]) = SS.legal (h2 @ [ p ])) SQ.universe)

let prop_states_after_append =
  QCheck2.Test.make ~name:"states_after distributes over append (account)" ~count:200
    QCheck2.Gen.(
      pair (list_size (0 -- 3) (oneofl A.universe)) (list_size (0 -- 3) (oneofl A.universe)))
    (fun (h, k) -> AS.states_after (h @ k) = AS.states_after' (AS.states_after h) k)

let () =
  Alcotest.run "sequences"
    [
      ( "queue",
        [
          Alcotest.test_case "legality" `Quick test_queue_legal;
          Alcotest.test_case "states" `Quick test_queue_states;
          Alcotest.test_case "equivalence" `Quick test_queue_equivalence;
        ] );
      ( "semiqueue",
        [
          Alcotest.test_case "nondeterministic removal" `Quick
            test_semiqueue_nondeterminism;
          Alcotest.test_case "canonical state" `Quick test_semiqueue_state_canonical;
          Alcotest.test_case "rem branches" `Quick test_semiqueue_rem_branches;
        ] );
      ("file", [ Alcotest.test_case "legality" `Quick test_file_legal ]);
      ("account", [ Alcotest.test_case "legality" `Quick test_account_legal ]);
      ( "enumeration",
        [
          Alcotest.test_case "counts and legality" `Quick test_legal_sequences_enumeration;
          Alcotest.test_case "prefix closure" `Quick test_legal_sequences_prefix_closed;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_legality_prefix_closed;
            prop_equivalence_same_futures;
            prop_states_after_append;
          ] );
    ]
