(* Tests for Section 6: the bookkeeping components (clock, bounds,
   horizon), Theorem 24 (the common prefix grows monotonically), and the
   observational equivalence of the compacted machine with the formal
   LOCK machine on randomly generated histories. *)

module Q = Adt.Fifo_queue
module A = Adt.Account
module L = Hybrid.Lock_machine.Make (Q)
module C = Hybrid.Compacted.Make (Q)
module H = L.H
module GQ = Histgen.Make (Q)

let p = Model.Txn.make ~label:"P" 1
let q = Model.Txn.make ~label:"Q" 2

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let feed m e = Result.get_ok (L.step m e)

(* ---------------- clock / bound / horizon ---------------- *)

let test_clock_tracks_max_commit () =
  let m = L.create ~conflict:Q.conflict_hybrid in
  check_bool "initial -inf" true (L.clock m = Hybrid.Xts.Neg_inf);
  let m = feed m (H.Invoke (p, Q.Enq 1)) in
  let m = feed m (H.Respond (p, Q.Ok)) in
  let m = feed m (H.Commit (p, 7)) in
  check_bool "clock = 7" true (L.clock m = Hybrid.Xts.Fin 7);
  let m = feed m (H.Invoke (q, Q.Enq 2)) in
  let m = feed m (H.Respond (q, Q.Ok)) in
  let m = feed m (H.Commit (q, 3)) in
  check_bool "clock stays 7" true (L.clock m = Hybrid.Xts.Fin 7)

let test_bound_tracking () =
  let m = L.create ~conflict:Q.conflict_hybrid in
  check_bool "no bound initially" true (L.bound m p = None);
  let m = feed m (H.Invoke (p, Q.Enq 1)) in
  check_bool "bound -inf before any commit" true (L.bound m p = Some Hybrid.Xts.Neg_inf);
  let m = feed m (H.Respond (p, Q.Ok)) in
  let m = feed m (H.Commit (p, 5)) in
  check_bool "bound discarded at commit" true (L.bound m p = None);
  (* Q invokes after P committed: its bound is P's timestamp. *)
  let m = feed m (H.Invoke (q, Q.Enq 2)) in
  check_bool "bound = clock" true (L.bound m q = Some (Hybrid.Xts.Fin 5))

let test_horizon () =
  let m = L.create ~conflict:Q.conflict_hybrid in
  check_bool "-inf with nothing" true (L.horizon m = Hybrid.Xts.Neg_inf);
  let m = feed m (H.Invoke (p, Q.Enq 1)) in
  let m = feed m (H.Respond (p, Q.Ok)) in
  (* active txn with bound -inf pins the horizon *)
  check_bool "-inf with active" true (L.horizon m = Hybrid.Xts.Neg_inf);
  let m = feed m (H.Commit (p, 5)) in
  (* no active txns: horizon = max committed *)
  check_bool "= max committed" true (L.horizon m = Hybrid.Xts.Fin 5);
  let m = feed m (H.Invoke (q, Q.Enq 2)) in
  (* Q's bound is 5: horizon = min(5, 5) *)
  check_bool "active bound keeps it at 5" true (L.horizon m = Hybrid.Xts.Fin 5)

let test_common_seq () =
  let m = L.create ~conflict:Q.conflict_hybrid in
  let m = feed m (H.Invoke (p, Q.Enq 1)) in
  let m = feed m (H.Respond (p, Q.Ok)) in
  check_int "nothing common yet" 0 (List.length (L.common_seq m));
  let m = feed m (H.Commit (p, 5)) in
  check_int "P's op common after commit" 1 (List.length (L.common_seq m))

(* ---------------- Theorem 24, randomized ---------------- *)

let prop_theorem_24_common_grows =
  QCheck2.Test.make ~name:"Thm 24: common prefix grows monotonically" ~count:150
    QCheck2.Gen.(0 -- 1_000_000)
    (fun seed ->
      let rand = Random.State.make [| seed |] in
      let h = GQ.generate rand ~conflict:Q.conflict_hybrid in
      let rec go m prev_common = function
        | [] -> true
        | e :: rest -> (
          match L.step m e with
          | Error _ -> false
          | Ok m' ->
            let common = L.common_seq m' in
            Util.Combinat.is_prefix ~eq:L.H.Seq.equal_op prev_common common
            && go m' common rest)
      in
      go (L.create ~conflict:Q.conflict_hybrid) [] h)

(* Theorem 24 at the trace level: each time the runtime's compacted
   machine folds, it emits a Horizon_advanced / Forgotten event pair
   (the Forgotten payload is the cumulative fold count).  Over random
   concurrent runs the event stream must show the horizon timestamps
   and the forgotten prefix growing monotonically, and the final fold
   event must agree with the object's own counter. *)

module QObj = Runtime.Atomic_obj.Make (Q)

let prop_theorem_24_fold_events =
  QCheck2.Test.make ~name:"Thm 24: fold trace events are monotone" ~count:60
    QCheck2.Gen.(0 -- 1_000_000)
    (fun seed ->
      let rand = Random.State.make [| seed |] in
      let tr = Obs.Trace.create ~capacity:(1 lsl 14) () in
      let mgr = Runtime.Manager.create () in
      let obj = QObj.create ~trace:tr ~conflict:Q.conflict_hybrid () in
      (* enqueue-only scripts: never block, always commit, always fold *)
      let scripts =
        List.init 2 (fun d ->
            List.init
              (3 + Random.State.int rand 6)
              (fun k ->
                List.init
                  (1 + Random.State.int rand 3)
                  (fun j -> Q.Enq ((100 * d) + (10 * k) + j))))
      in
      let workers =
        List.map
          (fun script ->
            Domain.spawn (fun () ->
                List.iter
                  (fun ops ->
                    Runtime.Manager.run mgr (fun txn ->
                        List.iter (fun i -> ignore (QObj.invoke obj txn i)) ops))
                  script))
          scripts
      in
      List.iter Domain.join workers;
      let folds =
        List.filter_map
          (fun e ->
            match e.Obs.Trace.event with
            | Obs.Trace.Horizon_advanced ts -> Some (`Horizon ts)
            | Obs.Trace.Forgotten n -> Some (`Forgotten n)
            | _ -> None)
          (Obs.Trace.entries tr)
      in
      let horizons =
        List.filter_map (function `Horizon ts -> Some ts | _ -> None) folds
      in
      let forgotten =
        List.filter_map (function `Forgotten n -> Some n | _ -> None) folds
      in
      let rec strictly_increasing = function
        | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
        | _ -> true
      in
      let s = QObj.stats obj in
      strictly_increasing horizons
      && strictly_increasing forgotten
      && List.length horizons = List.length forgotten
      && (match List.rev forgotten with
         | last :: _ -> last = s.QObj.forgotten
         | [] -> s.QObj.forgotten = 0)
      (* with every transaction committed, nothing pins the horizon:
         the whole history must have folded *)
      && s.QObj.forgotten = s.QObj.commits)

(* ---------------- equivalence with the formal machine ---------------- *)

(* Replaying any accepted history must give identical acceptance,
   identical available responses at every point, and a version state
   consistent with the reference machine's common prefix. *)
let prop_compacted_equivalent =
  QCheck2.Test.make ~name:"compacted machine == formal machine" ~count:200
    QCheck2.Gen.(0 -- 1_000_000)
    (fun seed ->
      let rand = Random.State.make [| seed |] in
      let h = GQ.generate rand ~conflict:Q.conflict_hybrid in
      let rec go lm cm = function
        | [] -> true
        | e :: rest -> (
          let lr = L.step lm e in
          let cr = C.step cm e in
          match (lr, cr) with
          | Error _, Ok _ | Ok _, Error _ -> false
          | Error a, Error b -> a = b
          | Ok lm', Ok cm' ->
            let same_responses =
              List.for_all
                (fun t ->
                  let la = L.available_responses lm' t in
                  let ca = C.available_responses cm' t in
                  List.length la = List.length ca
                  && List.for_all2 Q.equal_res la ca)
                (List.init 3 (fun i -> Model.Txn.make i))
            in
            let version_consistent =
              (* the version must equal the state reached by the formal
                 machine's common prefix *)
              match
                (C.version_states cm', L.H.Seq.states_after (L.common_seq lm'))
              with
              | [ a ], [ b ] -> Q.equal_state a b
              | a, b -> List.length a = List.length b
            in
            same_responses && version_consistent && go lm' cm' rest)
      in
      go (L.create ~conflict:Q.conflict_hybrid) (C.create ~conflict:Q.conflict_hybrid) h)

(* The same equivalence under a relation that refuses a lot (2PL-RW),
   exercising refusal paths. *)
let prop_compacted_equivalent_rw =
  QCheck2.Test.make ~name:"compacted == formal under 2PL-RW" ~count:150
    QCheck2.Gen.(0 -- 1_000_000)
    (fun seed ->
      let rand = Random.State.make [| seed |] in
      let h = GQ.generate rand ~conflict:Q.conflict_rw in
      match (L.run ~conflict:Q.conflict_rw h, C.run ~conflict:Q.conflict_rw h) with
      | Ok _, Ok _ -> true
      | Error (e1, r1), Error (e2, r2) -> e1 = e2 && r1 = r2
      | _ -> false)

(* Committed-state agreement: at every point of a random history, the
   compacted machine's committed state equals the state reached by the
   formal machine's permanent sequence, and a snapshot at the largest
   committed timestamp equals the committed state. *)
let prop_committed_state_agreement =
  QCheck2.Test.make ~name:"committed states agree with the formal machine" ~count:150
    QCheck2.Gen.(0 -- 1_000_000)
    (fun seed ->
      let rand = Random.State.make [| seed |] in
      let h = GQ.generate rand ~conflict:Q.conflict_hybrid in
      let rec go lm cm = function
        | [] -> true
        | e :: rest -> (
          match (L.step lm e, C.step cm e) with
          | Ok lm', Ok cm' ->
            let reference = L.H.Seq.states_after (L.permanent_seq lm') in
            let states_equal a b =
              List.length a = List.length b && List.for_all2 Q.equal_state a b
            in
            let committed_ok = states_equal (C.committed_states cm') reference in
            let snapshot_ok =
              (* the newest possible snapshot sees exactly the committed
                 state *)
              match L.clock lm' with
              | Hybrid.Xts.Neg_inf -> true
              | Hybrid.Xts.Fin ts -> (
                match C.states_at cm' ~at:ts with
                | Some ss -> states_equal ss reference
                | None -> false)
            in
            committed_ok && snapshot_ok && go lm' cm' rest
          | Error a, Error b -> a = b
          | _ -> false)
      in
      go (L.create ~conflict:Q.conflict_hybrid) (C.create ~conflict:Q.conflict_hybrid) h)

(* ---------------- compaction actually compacts ---------------- *)

let test_forgets_sequential_txns () =
  let m = ref (C.create ~conflict:Q.conflict_hybrid) in
  let apply e = m := Result.get_ok (C.step !m e) in
  for i = 1 to 50 do
    let t = Model.Txn.make i in
    apply (H.Invoke (t, Q.Enq i));
    (match C.choose_response !m t with
    | Ok (_, m') -> m := m'
    | Error _ -> Alcotest.fail "response refused");
    apply (H.Commit (t, i))
  done;
  check_int "all 50 forgotten" 50 (C.forgotten !m);
  check_int "no remembered intentions" 0 (C.remembered !m);
  check_int "no live ops" 0 (C.live_ops !m);
  match C.version_states !m with
  | [ s ] -> check_int "version holds the queue" 50 (List.length s)
  | _ -> Alcotest.fail "expected one version state"

let test_active_txn_blocks_forgetting () =
  let m = ref (C.create ~conflict:Q.conflict_hybrid) in
  let apply e = m := Result.get_ok (C.step !m e) in
  (* P starts but does not finish... *)
  apply (H.Invoke (p, Q.Enq 99));
  (match C.choose_response !m p with
  | Ok (_, m') -> m := m'
  | Error _ -> Alcotest.fail "refused");
  (* ...while other transactions come and go. *)
  for i = 10 to 20 do
    let t = Model.Txn.make i in
    apply (H.Invoke (t, Q.Enq i));
    (match C.choose_response !m t with
    | Ok (_, m') -> m := m'
    | Error _ -> Alcotest.fail "refused");
    apply (H.Commit (t, i))
  done;
  (* P's bound is -inf, so nothing can be forgotten. *)
  check_int "nothing forgotten" 0 (C.forgotten !m);
  check_int "all remembered" 11 (C.remembered !m);
  (* Once P commits, everything folds. *)
  apply (H.Commit (p, 21));
  check_int "everything forgotten" 12 (C.forgotten !m)

let test_abort_releases_horizon () =
  let m = ref (C.create ~conflict:Q.conflict_hybrid) in
  let apply e = m := Result.get_ok (C.step !m e) in
  apply (H.Invoke (p, Q.Enq 1));
  (match C.choose_response !m p with
  | Ok (_, m') -> m := m'
  | Error _ -> Alcotest.fail "refused");
  apply (H.Invoke (q, Q.Enq 2));
  (match C.choose_response !m q with
  | Ok (_, m') -> m := m'
  | Error _ -> Alcotest.fail "refused");
  apply (H.Commit (q, 1));
  check_int "pinned by P" 0 (C.forgotten !m);
  apply (H.Abort p);
  check_int "released by P's abort" 1 (C.forgotten !m)

let () =
  Alcotest.run "compaction"
    [
      ( "bookkeeping",
        [
          Alcotest.test_case "clock" `Quick test_clock_tracks_max_commit;
          Alcotest.test_case "bounds" `Quick test_bound_tracking;
          Alcotest.test_case "horizon" `Quick test_horizon;
          Alcotest.test_case "common prefix" `Quick test_common_seq;
        ] );
      ( "theorem-24",
        List.map QCheck_alcotest.to_alcotest
          [ prop_theorem_24_common_grows; prop_theorem_24_fold_events ] );
      ( "equivalence",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_compacted_equivalent;
            prop_compacted_equivalent_rw;
            prop_committed_state_agreement;
          ] );
      ( "forgetting",
        [
          Alcotest.test_case "sequential transactions fold" `Quick
            test_forgets_sequential_txns;
          Alcotest.test_case "active transaction pins the horizon" `Quick
            test_active_txn_blocks_forgetting;
          Alcotest.test_case "abort releases the horizon" `Quick
            test_abort_releases_horizon;
        ] );
    ]
