(* End-to-end tests for the live introspection stack: the background
   auditor (Sampler), the replay-audit wiring on runtime objects, the
   HTTP server, and the epoch-rotating Live workload with a seeded
   atomicity violation.

   Sampler verdict counters are process-global and deliberately never
   reset (a violation must not be forgettable), so every assertion here
   works on deltas, and the /health check asserts consistency with
   [Sampler.healthy] rather than a fixed status. *)

module Qobj = Runtime.Atomic_obj.Make (Adt.Fifo_queue)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

(* ---- Sampler verdict accounting ---- *)

let test_sampler_verdicts () =
  let before = Obs.Sampler.violations () in
  let ran = ref 0 in
  Obs.Sampler.register_audit ~name:"test/ok" (fun () ->
      incr ran;
      Ok ());
  check_int "clean pass finds nothing" 0 (Obs.Sampler.run_once ());
  check_int "closure ran" 1 !ran;
  Obs.Sampler.register_audit ~name:"test/bad" (fun () -> Error "seeded failure");
  check_int "failing closure is one violation" 1 (Obs.Sampler.run_once ());
  check_int "total advanced" (before + 1) (Obs.Sampler.violations ());
  check_bool "process no longer healthy" false (Obs.Sampler.healthy ());
  check_bool "last_error carries the reason" true
    (match Obs.Sampler.last_error () with
    | Some e -> contains e "seeded failure"
    | None -> false);
  (* a closure that raises is a violation too, not a crash *)
  Obs.Sampler.register_audit ~name:"test/bad" (fun () -> failwith "audit blew up");
  check_int "raising closure counted" 1 (Obs.Sampler.run_once ());
  Obs.Sampler.unregister_audit ~name:"test/bad";
  check_int "unregistered closure gone" 0 (Obs.Sampler.run_once ());
  Obs.Sampler.unregister_audit ~name:"test/ok"

(* ---- replay audit on a real object: wrap-around is skipped, forgery
   is caught ---- *)

let test_replay_audit_skips_wrapped_window () =
  let ring = Obs.Trace.create ~capacity:8 () in
  let mgr = Runtime.Manager.create () in
  let q =
    Qobj.create ~name:"audit/wrapq" ~trace:ring
      ~conflict:Adt.Fifo_queue.conflict_hybrid ~op_label:Adt.Fifo_queue.op_label ()
  in
  for v = 1 to 8 do
    Runtime.Manager.run mgr (fun txn ->
        ignore (Qobj.invoke q txn (Adt.Fifo_queue.Enq v)))
  done;
  check_bool "ring wrapped" true (Obs.Trace.dropped ring > 0);
  let lost = Obs.Metrics.counter "audit.window_lost" in
  let lost_before = Obs.Metrics.value lost in
  let name = Qobj.register_audit q in
  check_int "wrapped window is not a verdict" 0 (Obs.Sampler.run_once ());
  check_bool "the skip is recorded" true (Obs.Metrics.value lost > lost_before);
  Obs.Sampler.unregister_audit ~name

let test_replay_audit_catches_forgery () =
  let ring = Obs.Trace.create ~capacity:4096 () in
  let mgr = Runtime.Manager.create () in
  let q =
    Qobj.create ~name:"audit/queue" ~trace:ring
      ~conflict:Adt.Fifo_queue.conflict_hybrid ~op_label:Adt.Fifo_queue.op_label ()
  in
  Runtime.Manager.run mgr (fun txn ->
      ignore (Qobj.invoke q txn (Adt.Fifo_queue.Enq 1));
      ignore (Qobj.invoke q txn (Adt.Fifo_queue.Enq 2)));
  let deq_tid = ref (-1) in
  Runtime.Manager.run mgr (fun txn ->
      deq_tid := Runtime.Txn_rt.id txn;
      ignore (Qobj.invoke q txn Adt.Fifo_queue.Deq));
  let name = Qobj.register_audit q in
  check_str "default audit name derives from the object" "replay/audit/queue" name;
  check_int "honest history passes" 0 (Obs.Sampler.run_once ());
  (* Forge a double-dequeue exactly as [Sim.Live.inject_violation]
     does: replay the committed dequeuer's operations under a ghost id,
     committed with a far-future timestamp. *)
  let obj = Qobj.key q in
  let ops =
    List.filter_map
      (fun (en : Obs.Trace.entry) ->
        if en.obj = obj && en.txn = !deq_tid then
          match en.event with
          | Obs.Trace.Invoke _ | Obs.Trace.Respond _ -> Some en.event
          | _ -> None
        else None)
      (Obs.Trace.entries ring)
  in
  check_bool "found the dequeuer's trace window" true (ops <> []);
  let ghost = 999_999 in
  List.iter (fun ev -> Obs.Trace.emit ring ~obj ~txn:ghost ev) ops;
  Obs.Trace.emit ring ~obj ~txn:ghost (Obs.Trace.Commit 1_073_741_823);
  check_bool "forged double-dequeue is caught" true (Obs.Sampler.run_once () >= 1);
  check_bool "reason names the object" true
    (match Obs.Sampler.last_error () with
    | Some e -> contains e "audit/queue"
    | None -> false);
  Obs.Sampler.unregister_audit ~name

(* ---- HTTP server ---- *)

let get_exn ~port path =
  match Obs.Server.http_get ~port path with
  | Ok r -> r
  | Error e -> Alcotest.failf "GET %s failed: %s" path e

let test_server_endpoints () =
  let srv = Obs.Server.start () in
  let port = Obs.Server.port srv in
  Fun.protect ~finally:(fun () -> Obs.Server.stop srv) @@ fun () ->
  (* /metrics parses as text exposition *)
  let status, body = get_exn ~port "/metrics" in
  check_int "/metrics status" 200 status;
  (match Obs.Expose.parse body with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "/metrics body does not parse: %s" e);
  (* JSON endpoints parse as JSON *)
  List.iter
    (fun path ->
      let status, body = get_exn ~port path in
      check_int (path ^ " status") 200 status;
      match Obs.Json.parse body with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s body does not parse: %s" path e)
    [ "/locks"; "/horizon"; "/waitfor" ];
  (* /health tracks the process-global sampler verdicts *)
  let status, _ = get_exn ~port "/health" in
  check_int "/health consistent with Sampler.healthy"
    (if Obs.Sampler.healthy () then 200 else 503)
    status;
  (* /control flips the live switch *)
  Obs.Control.set_enabled true;
  let status, body = get_exn ~port "/control?enabled=false" in
  check_int "/control status" 200 status;
  check_bool "/control reports the new state" true (contains body "false");
  check_bool "switch actually off" false (Obs.Control.enabled ());
  let _, body = get_exn ~port "/control?toggle=1" in
  check_bool "/control?toggle flips back" true (contains body "true");
  check_bool "switch back on" true (Obs.Control.enabled ());
  (* unknown path *)
  let status, _ = get_exn ~port "/nope" in
  check_int "unknown path is 404" 404 status

(* ---- the Live workload end to end ---- *)

let test_live_injection_caught () =
  let cfg =
    { Sim.Live.default_config with domains = 2; think_us = 50.; epoch_capacity = 1 lsl 14 }
  in
  let live = Sim.Live.start cfg in
  Fun.protect
    ~finally:(fun () ->
      Sim.Live.stop live;
      (* the per-epoch registrations are process-global; drop them so
         later samples in this binary do not re-run stale closures *)
      List.iter
        (fun name -> Obs.Sampler.unregister_audit ~name)
        [ "waitfor/live"; "replay/live/queue"; "replay/live/semiq"; "replay/live/account" ])
  @@ fun () ->
  (* wait until some transaction has committed a dequeue, then forge *)
  let rec inject n =
    if n = 0 then false
    else if Sim.Live.inject_violation live then true
    else begin
      Thread.delay 0.05;
      inject (n - 1)
    end
  in
  check_bool "violation injected" true (inject 200);
  Sim.Live.stop live;
  let before = Obs.Sampler.violations () in
  (* two rotations: the forged epoch goes current -> draining ->
     registered for replay audit *)
  Sim.Live.rotate live;
  Sim.Live.rotate live;
  check_int "three epochs seen" 3 (Sim.Live.epochs live);
  ignore (Obs.Sampler.run_once ~ring:(Sim.Live.current_ring live) ());
  check_bool "auditor caught the forged epoch" true (Obs.Sampler.violations () > before);
  check_bool "reason names the replay audit" true
    (match Obs.Sampler.last_error () with
    | Some e -> contains e "replay/live/queue"
    | None -> false)

let test_live_clean_run_stays_healthy () =
  let cfg =
    { Sim.Live.default_config with domains = 2; think_us = 50.; epoch_capacity = 1 lsl 14 }
  in
  let live = Sim.Live.start cfg in
  Fun.protect
    ~finally:(fun () ->
      Sim.Live.stop live;
      List.iter
        (fun name -> Obs.Sampler.unregister_audit ~name)
        [ "waitfor/live"; "replay/live/queue"; "replay/live/semiq"; "replay/live/account" ])
  @@ fun () ->
  Thread.delay 0.2;
  Sim.Live.stop live;
  let before = Obs.Sampler.violations () in
  Sim.Live.rotate live;
  Sim.Live.rotate live;
  ignore (Obs.Sampler.run_once ~ring:(Sim.Live.current_ring live) ());
  check_int "clean epochs audit clean" before (Obs.Sampler.violations ())

let () =
  Alcotest.run "obs_live"
    [
      ( "sampler",
        [
          Alcotest.test_case "verdict accounting" `Quick test_sampler_verdicts;
          Alcotest.test_case "wrapped window skipped" `Quick
            test_replay_audit_skips_wrapped_window;
          Alcotest.test_case "forged history caught" `Quick
            test_replay_audit_catches_forgery;
        ] );
      ("server", [ Alcotest.test_case "endpoints" `Quick test_server_endpoints ]);
      ( "live",
        [
          Alcotest.test_case "clean run stays healthy" `Quick
            test_live_clean_run_stays_healthy;
          Alcotest.test_case "injected violation caught" `Quick
            test_live_injection_caught;
        ] );
    ]
