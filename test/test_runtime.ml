(* Tests for the concurrent runtime: transaction handles, the manager,
   the generic atomic object on real domains, and end-to-end hybrid
   atomicity of recorded histories. *)

module Q = Adt.Fifo_queue
module A = Adt.Account
module QObj = Runtime.Atomic_obj.Make (Q)
module AObj = Runtime.Atomic_obj.Make (A)
module HQ = Model.History.Make (Q)
module AtQ = Model.Atomicity.Make (Q)
module HA = Model.History.Make (A)
module AtA = Model.Atomicity.Make (A)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------------- Txn_rt ---------------- *)

let test_txn_lifecycle () =
  let t = Runtime.Txn_rt.fresh () in
  check_bool "active" true (Runtime.Txn_rt.status t = `Active);
  check_bool "registered" true
    (Runtime.Txn_rt.priority_of_id (Runtime.Txn_rt.id t) <> None);
  let committed = ref [] in
  Runtime.Txn_rt.add_participant t ~key:1
    {
      Runtime.Txn_rt.name = "x";
      on_commit = (fun ts -> committed := ts :: !committed);
      on_abort = (fun () -> ());
    };
  (* registration is idempotent per key *)
  Runtime.Txn_rt.add_participant t ~key:1
    {
      Runtime.Txn_rt.name = "x";
      on_commit = (fun ts -> committed := ts :: !committed);
      on_abort = (fun () -> ());
    };
  check_int "one participant" 1 (Runtime.Txn_rt.participant_count t);
  Runtime.Txn_rt.commit t 42;
  check_bool "committed" true (Runtime.Txn_rt.status t = `Committed 42);
  Alcotest.(check (list int)) "notified once" [ 42 ] !committed;
  check_bool "deregistered" true
    (Runtime.Txn_rt.priority_of_id (Runtime.Txn_rt.id t) = None);
  Alcotest.check_raises "commit twice" (Invalid_argument "Txn_rt.commit: transaction not active")
    (fun () -> Runtime.Txn_rt.commit t 43)

let test_txn_abort () =
  let t = Runtime.Txn_rt.fresh () in
  let aborted = ref 0 in
  Runtime.Txn_rt.add_participant t ~key:1
    {
      Runtime.Txn_rt.name = "x";
      on_commit = (fun _ -> ());
      on_abort = (fun () -> incr aborted);
    };
  Runtime.Txn_rt.abort t;
  check_int "notified" 1 !aborted;
  Runtime.Txn_rt.abort t;
  check_int "abort idempotent" 1 !aborted

let test_txn_priority_inheritance () =
  let t1 = Runtime.Txn_rt.fresh () in
  let t2 = Runtime.Txn_rt.fresh ~priority:(Runtime.Txn_rt.priority t1) () in
  check_bool "same priority" true
    (Runtime.Txn_rt.priority t1 = Runtime.Txn_rt.priority t2);
  check_bool "different ids" true (Runtime.Txn_rt.id t1 <> Runtime.Txn_rt.id t2);
  Runtime.Txn_rt.abort t1;
  Runtime.Txn_rt.abort t2

(* ---------------- Manager ---------------- *)

let test_manager_commit_timestamps_unique_and_increasing () =
  let mgr = Runtime.Manager.create () in
  let tss = ref [] in
  for _ = 1 to 5 do
    Runtime.Manager.run mgr (fun txn ->
        Runtime.Txn_rt.add_participant txn ~key:0
          {
            Runtime.Txn_rt.name = "probe";
            on_commit = (fun ts -> tss := ts :: !tss);
            on_abort = (fun () -> ());
          })
  done;
  let tss = List.rev !tss in
  check_bool "strictly increasing" true (List.sort_uniq compare tss = tss);
  check_int "current_time" 5 (Runtime.Manager.current_time mgr)

let test_manager_retry_on_abort () =
  let mgr = Runtime.Manager.create () in
  let attempts = ref 0 in
  let v =
    Runtime.Manager.run mgr (fun _ ->
        incr attempts;
        if !attempts < 3 then Runtime.Manager.abort_in ~reason:"retry me" ();
        "done")
  in
  Alcotest.(check string) "eventually succeeds" "done" v;
  check_int "three attempts" 3 !attempts;
  let s = Runtime.Manager.stats mgr in
  check_int "stats committed" 1 s.Runtime.Manager.committed;
  check_int "stats aborted" 2 s.Runtime.Manager.aborted

let test_manager_too_many_attempts () =
  let mgr = Runtime.Manager.create () in
  Alcotest.(check bool)
    "raises" true
    (try
       let (_ : unit) =
         Runtime.Manager.run ~max_attempts:3 mgr (fun _ ->
             if true then Runtime.Manager.abort_in ~reason:"always" ())
       in
       false
     with Runtime.Manager.Too_many_attempts _ -> true)

let test_manager_other_exceptions_propagate () =
  let mgr = Runtime.Manager.create () in
  Alcotest.check_raises "propagates" Exit (fun () ->
      Runtime.Manager.run mgr (fun _ -> raise Exit))

(* ---------------- Atomic_obj, single-threaded semantics ------------- *)

let test_obj_basic_roundtrip () =
  let mgr = Runtime.Manager.create () in
  let q = QObj.create ~conflict:Q.conflict_hybrid () in
  Runtime.Manager.run mgr (fun txn ->
      (match QObj.invoke q txn (Q.Enq 7) with Q.Ok -> () | _ -> Alcotest.fail "enq");
      match QObj.invoke q txn Q.Deq with
      | Q.Val 7 -> ()
      | _ -> Alcotest.fail "deq should see own enqueue");
  match QObj.committed_states q with
  | [ [] ] -> ()
  | _ -> Alcotest.fail "queue should be empty after commit"

let test_obj_abort_discards () =
  let mgr = Runtime.Manager.create () in
  let q = QObj.create ~conflict:Q.conflict_hybrid () in
  (match
     Runtime.Manager.run_once mgr (fun txn ->
         ignore (QObj.invoke q txn (Q.Enq 7));
         Runtime.Manager.abort_in ())
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected abort");
  match QObj.committed_states q with
  | [ [] ] -> ()
  | _ -> Alcotest.fail "aborted enqueue must not survive"

let test_obj_blocked_on_partial () =
  let mgr = Runtime.Manager.create () in
  let q = QObj.create ~conflict:Q.conflict_hybrid () in
  Runtime.Manager.run mgr (fun txn ->
      match QObj.try_invoke q txn Q.Deq with
      | Error `Blocked -> ()
      | _ -> Alcotest.fail "Deq on empty should block")

let test_obj_conflict_reported_with_holder () =
  let mgr = Runtime.Manager.create () in
  let q = QObj.create ~conflict:Q.conflict_rw () in
  let holder = Runtime.Txn_rt.fresh () in
  (match QObj.try_invoke q holder (Q.Enq 1) with
  | Ok Q.Ok -> ()
  | _ -> Alcotest.fail "first enq should succeed");
  Runtime.Manager.run mgr (fun txn ->
      match QObj.try_invoke q txn (Q.Enq 2) with
      | Error (`Conflict (Some c)) ->
        check_int "holder id" (Runtime.Txn_rt.id holder) c.Runtime.Retry.holder
      | _ -> Alcotest.fail "expected conflict with holder");
  Runtime.Txn_rt.abort holder

let test_obj_stats () =
  let mgr = Runtime.Manager.create () in
  let q = QObj.create ~conflict:Q.conflict_hybrid () in
  Runtime.Manager.run mgr (fun txn -> ignore (QObj.invoke q txn (Q.Enq 1)));
  Runtime.Manager.run mgr (fun txn -> ignore (QObj.invoke q txn Q.Deq));
  let s = QObj.stats q in
  check_int "invocations" 2 s.QObj.invocations;
  check_int "commits" 2 s.QObj.commits;
  check_int "forgotten" 2 s.QObj.forgotten

(* ---------------- recorded histories are hybrid atomic -------------- *)

let test_recorded_history_hybrid_atomic () =
  let mgr = Runtime.Manager.create () in
  let q = QObj.create ~record:true ~conflict:Q.conflict_hybrid () in
  let worker d =
    Domain.spawn (fun () ->
        for k = 0 to 9 do
          Runtime.Manager.run mgr (fun txn ->
              ignore (QObj.invoke q txn (Q.Enq ((10 * d) + k)));
              if k mod 3 = 0 then ignore (QObj.invoke q txn Q.Deq))
        done)
  in
  List.iter Domain.join (List.init 2 worker);
  let h = QObj.history q in
  check_bool "well-formed" true
    (match HQ.well_formed h with Ok () -> true | Error _ -> false);
  check_bool "timestamps respect precedes" true (HQ.timestamps_respect_precedes h);
  check_bool "hybrid atomic" true (AtQ.hybrid_atomic h)

let test_recorded_history_in_lock_language () =
  (* End-to-end tie to the formal spec: everything the concurrent engine
     records must be a history the Section 5 LOCK machine accepts under
     the same conflict relation. *)
  let module L = Hybrid.Lock_machine.Make (Q) in
  let mgr = Runtime.Manager.create () in
  let q = QObj.create ~record:true ~conflict:Q.conflict_hybrid () in
  let worker d =
    Domain.spawn (fun () ->
        for k = 0 to 14 do
          Runtime.Manager.run mgr (fun txn ->
              ignore (QObj.invoke q txn (Q.Enq ((10 * d) + k)));
              if k mod 4 = 1 then ignore (QObj.invoke q txn Q.Deq))
        done)
  in
  List.iter Domain.join (List.init 3 worker);
  check_bool "recorded history is in L(LOCK)" true
    (L.accepts ~conflict:Q.conflict_hybrid (QObj.history q))

let test_recorded_account_history_hybrid_atomic () =
  let mgr = Runtime.Manager.create () in
  let acc = AObj.create ~record:true ~conflict:A.conflict_hybrid () in
  Runtime.Manager.run mgr (fun txn -> ignore (AObj.invoke acc txn (A.Credit 50)));
  let worker _ =
    Domain.spawn (fun () ->
        for k = 1 to 8 do
          Runtime.Manager.run mgr (fun txn ->
              ignore (AObj.invoke acc txn (A.Credit k));
              ignore (AObj.invoke acc txn (A.Debit 1)))
        done)
  in
  List.iter Domain.join (List.init 2 worker);
  let h = AObj.history acc in
  check_bool "well-formed" true
    (match HA.well_formed h with Ok () -> true | Error _ -> false);
  check_bool "hybrid atomic" true (AtA.hybrid_atomic h)

(* ---------------- multicore invariants ---------------- *)

let test_concurrent_credits_conserve_money () =
  let mgr = Runtime.Manager.create () in
  let acc = AObj.create ~conflict:A.conflict_hybrid () in
  let per_domain = 100 in
  let workers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Runtime.Manager.run mgr (fun txn ->
                  ignore (AObj.invoke acc txn (A.Credit 3)))
            done))
  in
  List.iter Domain.join workers;
  match AObj.committed_states acc with
  | [ balance ] -> check_int "balance" (4 * per_domain * 3) balance
  | _ -> Alcotest.fail "one state expected"

let test_concurrent_enqueues_never_conflict () =
  let mgr = Runtime.Manager.create () in
  let q = QObj.create ~conflict:Q.conflict_hybrid () in
  let workers =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for k = 0 to 49 do
              Runtime.Manager.run mgr (fun txn ->
                  ignore (QObj.invoke q txn (Q.Enq ((100 * d) + k))))
            done))
  in
  List.iter Domain.join workers;
  let s = QObj.stats q in
  check_int "zero conflicts" 0 s.QObj.conflicts;
  check_int "all committed" 200 s.QObj.commits

let test_dequeue_order_is_timestamp_order () =
  (* Drain a concurrently-filled queue; each drained item must have been
     enqueued by an earlier-committed transaction (we check FIFO per
     producer, the observable consequence). *)
  let mgr = Runtime.Manager.create () in
  let q = QObj.create ~conflict:Q.conflict_hybrid () in
  let workers =
    List.init 3 (fun d ->
        Domain.spawn (fun () ->
            for k = 0 to 19 do
              Runtime.Manager.run mgr (fun txn ->
                  ignore (QObj.invoke q txn (Q.Enq ((100 * d) + k))))
            done))
  in
  List.iter Domain.join workers;
  let drained = ref [] in
  for _ = 1 to 60 do
    Runtime.Manager.run mgr (fun txn ->
        match QObj.invoke q txn Q.Deq with
        | Q.Val v -> drained := v :: !drained
        | Q.Ok -> Alcotest.fail "deq returned ok")
  done;
  let drained = List.rev !drained in
  check_int "all items" 60 (List.length drained);
  List.iter
    (fun d ->
      let mine = List.filter (fun v -> v / 100 = d) drained in
      check_bool
        (Printf.sprintf "producer %d FIFO" d)
        true
        (mine = List.sort compare mine))
    [ 0; 1; 2 ]

let test_wait_die_resolves_deadlock () =
  (* Two transactions that each grab one enq lock under 2PL-RW and then
     want the other's: classic deadlock, resolved by wait-die aborts. *)
  let mgr = Runtime.Manager.create () in
  let q1 = QObj.create ~name:"q1" ~conflict:Q.conflict_rw () in
  let q2 = QObj.create ~name:"q2" ~conflict:Q.conflict_rw () in
  let barrier = Atomic.make 0 in
  let worker (first, second) =
    Domain.spawn (fun () ->
        Runtime.Manager.run mgr (fun txn ->
            ignore (QObj.invoke first txn (Q.Enq 1));
            Atomic.incr barrier;
            (* wait until both hold their first lock at least once *)
            let spin = ref 0 in
            while Atomic.get barrier < 2 && !spin < 10_000 do
              incr spin;
              Domain.cpu_relax ()
            done;
            ignore (QObj.invoke second txn (Q.Enq 2))))
  in
  let d1 = worker (q1, q2) in
  let d2 = worker (q2, q1) in
  Domain.join d1;
  Domain.join d2;
  (* both eventually committed *)
  let s = Runtime.Manager.stats mgr in
  check_int "both committed" 2 s.Runtime.Manager.committed

let () =
  Alcotest.run "runtime"
    [
      ( "txn",
        [
          Alcotest.test_case "lifecycle" `Quick test_txn_lifecycle;
          Alcotest.test_case "abort" `Quick test_txn_abort;
          Alcotest.test_case "priority inheritance" `Quick test_txn_priority_inheritance;
        ] );
      ( "manager",
        [
          Alcotest.test_case "timestamps unique and increasing" `Quick
            test_manager_commit_timestamps_unique_and_increasing;
          Alcotest.test_case "retry on abort" `Quick test_manager_retry_on_abort;
          Alcotest.test_case "too many attempts" `Quick test_manager_too_many_attempts;
          Alcotest.test_case "exceptions propagate" `Quick
            test_manager_other_exceptions_propagate;
        ] );
      ( "object",
        [
          Alcotest.test_case "roundtrip" `Quick test_obj_basic_roundtrip;
          Alcotest.test_case "abort discards" `Quick test_obj_abort_discards;
          Alcotest.test_case "blocked on partial op" `Quick test_obj_blocked_on_partial;
          Alcotest.test_case "conflict carries holder" `Quick
            test_obj_conflict_reported_with_holder;
          Alcotest.test_case "stats" `Quick test_obj_stats;
        ] );
      ( "histories",
        [
          Alcotest.test_case "queue history hybrid atomic" `Quick
            test_recorded_history_hybrid_atomic;
          Alcotest.test_case "recorded history in L(LOCK)" `Quick
            test_recorded_history_in_lock_language;
          Alcotest.test_case "account history hybrid atomic" `Quick
            test_recorded_account_history_hybrid_atomic;
        ] );
      ( "multicore",
        [
          Alcotest.test_case "credits conserve money" `Quick
            test_concurrent_credits_conserve_money;
          Alcotest.test_case "enqueues never conflict" `Quick
            test_concurrent_enqueues_never_conflict;
          Alcotest.test_case "per-producer FIFO" `Quick
            test_dequeue_order_is_timestamp_order;
          Alcotest.test_case "wait-die resolves deadlock" `Quick
            test_wait_die_resolves_deadlock;
        ] );
    ]
