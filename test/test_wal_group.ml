(* Group commit and the durability point.

   The commit path's contract after the sync rework:
   - a transaction is committed iff [Wal.Log.sync_upto] returned for its
     commit record's LSN;
   - a post-append sync failure raises [Manager.Durability_lost] without
     distributing commit or abort events, and retires the in-flight
     timestamp (a fault must never wedge [stable_time]);
   - batching changes when records reach disk, never their order: commit
     records appear in the file in strict commit-timestamp order, so
     recovery's replay order is the hybrid serialization order. *)

module CObj = Runtime.Atomic_obj.Make (Adt.Counter)

let temp_wal () =
  let f = Filename.temp_file "hybrid-cc-group" ".wal" in
  at_exit (fun () -> try Sys.remove f with Sys_error _ -> ());
  f

let temp_dir () =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hybrid-cc-group-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir d 0o755;
  d

let commit_inc mgr c = Runtime.Manager.run mgr (fun txn -> ignore (CObj.invoke c txn (Adt.Counter.Inc 1)))

(* An injected sync failure surfaces as Durability_lost, retires the
   in-flight timestamp, and leaves the log usable once the fault
   clears. *)
let test_durability_lost () =
  let w = Wal.Log.create ~fsync:false (temp_wal ()) in
  let mgr = Runtime.Manager.create ~wal:w () in
  let c = CObj.create ~wal:(w, Adt.Counter.codec) ~conflict:Adt.Counter.conflict_hybrid () in
  commit_inc mgr c;
  Wal.Log.set_sync_hook w (fun () -> failwith "injected sync fault");
  (match commit_inc mgr c with
  | () -> Alcotest.fail "commit succeeded through a failing sync barrier"
  | exception Runtime.Manager.Durability_lost _ -> ()
  | exception e ->
    Alcotest.failf "expected Durability_lost, got %s" (Printexc.to_string e));
  Alcotest.(check int)
    "timestamp retired: stable watermark caught up"
    (Runtime.Manager.current_time mgr)
    (Runtime.Manager.stable_time mgr);
  (* The fault clears; the log (and later Inc transactions, which never
     conflict with the lost one under hybrid) proceed. *)
  Wal.Log.clear_sync_hook w;
  commit_inc mgr c;
  let stats = Runtime.Manager.stats mgr in
  Alcotest.(check int) "two commits reported" 2 stats.Runtime.Manager.committed;
  Wal.Log.close w

(* Runtime-reported outcomes agree with the durable log: every commit
   the runtime reported has a durable commit record; every abort it
   reported has none.  Durability_lost transactions may land either way
   — that is the point of the distinct exception. *)
let test_runtime_durable_agreement () =
  let path = temp_wal () in
  let w = Wal.Log.create ~fsync:false path in
  let mgr = Runtime.Manager.create ~wal:w () in
  let c = CObj.create ~wal:(w, Adt.Counter.codec) ~conflict:Adt.Counter.conflict_hybrid () in
  let calls = ref 0 in
  Wal.Log.set_sync_hook w (fun () ->
      incr calls;
      if !calls mod 3 = 0 then failwith "intermittent sync fault");
  let ok = ref [] and lost = ref [] and aborted = ref [] in
  for k = 1 to 30 do
    let id = ref (-1) in
    let body txn =
      id := Runtime.Txn_rt.id txn;
      ignore (CObj.invoke c txn (Adt.Counter.Inc 1));
      if k mod 5 = 0 then Runtime.Manager.abort_in ~reason:"agreement-test abort" ()
    in
    match Runtime.Manager.run_once mgr body with
    | Ok () -> ok := !id :: !ok
    | Error _ -> aborted := !id :: !aborted
    | exception Runtime.Manager.Durability_lost _ -> lost := !id :: !lost
  done;
  Alcotest.(check bool) "some syncs failed" true (!lost <> []);
  Alcotest.(check bool) "some commits survived" true (!ok <> []);
  Alcotest.(check int)
    "every timestamp retired" (Runtime.Manager.current_time mgr)
    (Runtime.Manager.stable_time mgr);
  Wal.Log.clear_sync_hook w;
  Wal.Log.close w;
  let records, tail = Wal.Log.read path in
  if tail <> Wal.Log.Clean then Alcotest.fail "finished run left a torn log";
  let durable_commits =
    List.filter_map (function Wal.Log.Commit { txn; _ } -> Some txn | _ -> None) records
  in
  List.iter
    (fun id ->
      if not (List.mem id durable_commits) then
        Alcotest.failf "txn %d reported committed but has no durable commit record" id)
    !ok;
  List.iter
    (fun id ->
      if List.mem id durable_commits then
        Alcotest.failf "txn %d reported aborted but has a durable commit record" id)
    !aborted

(* Concurrent committers, group commit on: the log's commit records are
   in strictly increasing timestamp order (the append happens inside the
   timestamp-draw critical section; batching must not reorder it). *)
let test_commit_order =
  QCheck2.Test.make ~name:"durable commit order = commit-timestamp order" ~count:5
    QCheck2.Gen.(int_range 0 10_000)
    (fun _seed ->
      let path = temp_wal () in
      let w = Wal.Log.create ~fsync:false ~group_commit:true path in
      let mgr = Runtime.Manager.create ~wal:w () in
      let c =
        CObj.create ~wal:(w, Adt.Counter.codec) ~conflict:Adt.Counter.conflict_hybrid ()
      in
      let worker _ = Domain.spawn (fun () -> for _ = 1 to 25 do commit_inc mgr c done) in
      List.init 4 worker |> List.iter Domain.join;
      Wal.Log.close w;
      let records, _ = Wal.Log.read path in
      let tss =
        List.filter_map (function Wal.Log.Commit { ts; _ } -> Some ts | _ -> None) records
      in
      Alcotest.(check int) "all commits logged" 100 (List.length tss);
      let rec sorted = function
        | a :: (b :: _ as rest) -> a < b && sorted rest
        | _ -> true
      in
      if not (sorted tss) then Alcotest.fail "commit records out of timestamp order";
      true)

(* Batch formation is deterministic against a pinned barrier cost:
   4 committers against a 300us barrier must share fsyncs. *)
let test_batching () =
  let dir = temp_dir () in
  let row =
    Sim.Group_commit.run ~fsync:false ~sync_sleep_us:300. ~txns:50 ~label:"batch" ~dir
      ~domains:4 ~group_commit:true ()
  in
  Alcotest.(check int) "all transactions committed" 200 row.Sim.Group_commit.g_committed;
  if row.Sim.Group_commit.g_fsyncs >= row.Sim.Group_commit.g_committed then
    Alcotest.failf "no batching: %d syncs for %d commits" row.Sim.Group_commit.g_fsyncs
      row.Sim.Group_commit.g_committed

(* Kill-point crash recovery holds in both sync modes on a concurrent
   workload: batching changes durability timing, not the log's record
   order, so every crash image still recovers its committed prefix. *)
let test_crash_both_modes () =
  List.iter
    (fun group_commit ->
      let dir = temp_dir () in
      let r = Sim.Crash_exp.queue ~group_commit ~dir () in
      if not (Sim.Crash_exp.ok r) then
        Alcotest.failf "crash recovery failed with group_commit=%b: %s" group_commit
          (String.concat "; "
             (List.map (fun (kp, e) -> kp ^ ": " ^ e) r.Sim.Crash_exp.c_failures)))
    [ true; false ]

let () =
  Alcotest.run "wal-group-commit"
    [
      ( "durability-point",
        [
          Alcotest.test_case "sync failure raises Durability_lost" `Quick
            test_durability_lost;
          Alcotest.test_case "runtime outcomes agree with the durable log" `Quick
            test_runtime_durable_agreement;
        ] );
      ( "group-commit",
        [
          QCheck_alcotest.to_alcotest test_commit_order;
          Alcotest.test_case "batched sync against a pinned barrier" `Quick test_batching;
          Alcotest.test_case "kill points recover in both sync modes" `Slow
            test_crash_both_modes;
        ] );
    ]
