(* Recovery ablation — why intentions lists matter.

   The paper (Section 5.1) keeps every transaction's updates in an
   intentions list and merges them into the committed state in COMMIT
   TIMESTAMP order, remarking that other recovery methods "seem to
   require restricting concurrency more than is needed for intentions
   lists".  This test demonstrates that claim concretely: a conventional
   update-in-place object (effects applied at execution time, in
   execution order) is correct under commutativity-based conflicts but
   WRONG under the paper's weaker dependency-based conflicts — the very
   interleaving the hybrid protocol is designed to admit (concurrent
   enqueues) comes out serialized in execution order instead of
   timestamp order.

   The naive engine below is queue-specific and deliberately minimal:
   shared mutable state, per-transaction op locks, no undo needed
   because the scenario commits everything. *)

module Q = Adt.Fifo_queue
module H = Model.History.Make (Q)
module At = Model.Atomicity.Make (Q)
module C = Hybrid.Compacted.Make (Q)

let check_bool = Alcotest.(check bool)

(* A conventional update-in-place queue object: operations mutate the
   single shared state immediately; locks (per the supplied conflict
   relation) are held to commit. *)
module Naive = struct
  type t = {
    mutable state : int list;
    mutable locks : (Model.Txn.t * Q.op) list;
    conflict : Q.op -> Q.op -> bool;
  }

  let create ~conflict = { state = []; locks = []; conflict }

  let invoke t txn inv =
    match Q.step t.state inv with
    | [] -> Error `Blocked
    | (res, next) :: _ ->
      let op = (inv, res) in
      if
        List.exists
          (fun (holder, held) ->
            (not (Model.Txn.equal holder txn)) && t.conflict held op)
          t.locks
      then Error `Conflict
      else begin
        t.locks <- (txn, op) :: t.locks;
        t.state <- next;
        (* update in place: the effect is already applied *)
        Ok res
      end

  let commit t txn = t.locks <- List.filter (fun (h, _) -> not (Model.Txn.equal h txn)) t.locks
  let state t = t.state
end

let p = Model.Txn.make ~label:"P" 1
let q = Model.Txn.make ~label:"Q" 2

(* The paper's §3.2 interleaving: P enqueues 1, then Q enqueues 2, then
   Q commits with the SMALLER timestamp (it reached its coordinator
   first).  Hybrid atomicity demands dequeue order 2,1. *)

let test_update_in_place_wrong_under_hybrid () =
  let t = Naive.create ~conflict:Q.conflict_hybrid in
  (match Naive.invoke t p (Q.Enq 1) with Ok Q.Ok -> () | _ -> Alcotest.fail "P enq");
  (match Naive.invoke t q (Q.Enq 2) with
  | Ok Q.Ok -> () (* admitted: enqueues never conflict under fig 4-2 *)
  | _ -> Alcotest.fail "Q enq admitted by the hybrid relation");
  Naive.commit t q;
  (* ts 1 *)
  Naive.commit t p;
  (* ts 2 *)
  (* execution order won: the state is [1; 2], so a reader dequeues 1
     first — but the history serializes as Q(ts 1) then P(ts 2), which
     requires dequeuing 2 first.  Build the full history this engine
     produced and let the checker judge it. *)
  Alcotest.(check (list int)) "state in execution order" [ 1; 2 ] (Naive.state t);
  let produced : H.t =
    [
      H.Invoke (p, Q.Enq 1);
      H.Respond (p, Q.Ok);
      H.Invoke (q, Q.Enq 2);
      H.Respond (q, Q.Ok);
      H.Commit (q, 1);
      H.Commit (p, 2);
      (* reader drains what the naive engine would serve: 1 then 2 *)
      H.Invoke (Model.Txn.make ~label:"R" 3, Q.Deq);
      H.Respond (Model.Txn.make ~label:"R" 3, Q.Val (List.hd (Naive.state t)));
      H.Commit (Model.Txn.make ~label:"R" 3, 5);
    ]
  in
  check_bool "NOT hybrid atomic" false (At.hybrid_atomic produced)

let test_intentions_correct_under_hybrid () =
  (* The same interleaving through the real machine: intentions merge in
     timestamp order, so the reader sees 2 first and the history is
     hybrid atomic. *)
  let feed m e = Result.get_ok (C.step m e) in
  let m = C.create ~conflict:Q.conflict_hybrid in
  let m = feed m (H.Invoke (p, Q.Enq 1)) in
  let m = feed m (H.Respond (p, Q.Ok)) in
  let m = feed m (H.Invoke (q, Q.Enq 2)) in
  let m = feed m (H.Respond (q, Q.Ok)) in
  let m = feed m (H.Commit (q, 1)) in
  let m = feed m (H.Commit (p, 2)) in
  match C.committed_states m with
  | [ s ] -> Alcotest.(check (list int)) "state in timestamp order" [ 2; 1 ] s
  | _ -> Alcotest.fail "one state"

let test_update_in_place_fine_under_commutativity () =
  (* With commutativity-based conflicts the dangerous interleaving is
     refused up front, so update-in-place stays correct — the "more
     restrictive conflicts" other recovery methods require. *)
  let t = Naive.create ~conflict:Q.conflict_commutativity in
  (match Naive.invoke t p (Q.Enq 1) with Ok Q.Ok -> () | _ -> Alcotest.fail "P enq");
  match Naive.invoke t q (Q.Enq 2) with
  | Error `Conflict -> () (* exactly what keeps execution order = commit order *)
  | _ -> Alcotest.fail "commutativity must refuse the concurrent enqueue"

let () =
  Alcotest.run "recovery_ablation"
    [
      ( "intentions-vs-update-in-place",
        [
          Alcotest.test_case "update-in-place breaks under hybrid conflicts" `Quick
            test_update_in_place_wrong_under_hybrid;
          Alcotest.test_case "intentions lists are correct under hybrid conflicts"
            `Quick test_intentions_correct_under_hybrid;
          Alcotest.test_case "update-in-place needs commutativity conflicts" `Quick
            test_update_in_place_fine_under_commutativity;
        ] );
    ]
