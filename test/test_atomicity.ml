(* Tests for Model.Atomicity: serializability, atomicity, hybrid
   atomicity and online hybrid atomicity (paper Section 3), on
   hand-built histories with known classifications. *)

module Q = Adt.Fifo_queue
module F = Adt.File_adt
module H = Model.History.Make (Q)
module At = Model.Atomicity.Make (Q)
module HF = Model.History.Make (F)
module AtF = Model.Atomicity.Make (F)

let p = Model.Txn.make ~label:"P" 1
let q = Model.Txn.make ~label:"Q" 2
let r = Model.Txn.make ~label:"R" 3

let check_bool = Alcotest.(check bool)

let paper_history : H.t =
  [
    H.Invoke (p, Q.Enq 1);
    H.Respond (p, Q.Ok);
    H.Invoke (q, Q.Enq 2);
    H.Respond (q, Q.Ok);
    H.Commit (p, 2);
    H.Commit (q, 1);
    H.Invoke (r, Q.Deq);
    H.Respond (r, Q.Val 2);
    H.Invoke (r, Q.Deq);
    H.Respond (r, Q.Val 1);
    H.Commit (r, 5);
  ]

(* ---------------- acceptability / serializability ---------------- *)

let test_acceptable_serial () =
  let serial =
    [
      H.Invoke (q, Q.Enq 2);
      H.Respond (q, Q.Ok);
      H.Commit (q, 1);
      H.Invoke (p, Q.Enq 1);
      H.Respond (p, Q.Ok);
      H.Commit (p, 2);
    ]
  in
  check_bool "serial legal history" true (At.acceptable serial)

let test_serializable_in_order () =
  check_bool "paper history in Q,P,R order" true
    (At.serializable_in paper_history [ q; p; r ]);
  check_bool "paper history NOT in P,Q,R order" false
    (At.serializable_in paper_history [ p; q; r ])

let test_serializable_exists () =
  check_bool "paper history serializable" true (At.serializable paper_history)

let test_not_serializable () =
  (* P and Q each enqueue then dequeue the other's item: no serial order
     explains both dequeues. *)
  let h =
    [
      H.Invoke (p, Q.Enq 1);
      H.Respond (p, Q.Ok);
      H.Invoke (q, Q.Enq 2);
      H.Respond (q, Q.Ok);
      H.Invoke (p, Q.Deq);
      H.Respond (p, Q.Val 2);
      H.Invoke (q, Q.Deq);
      H.Respond (q, Q.Val 1);
      H.Commit (p, 1);
      H.Commit (q, 2);
    ]
  in
  check_bool "cross-dequeue not serializable" false (At.serializable h);
  check_bool "hence not atomic" false (At.atomic h);
  check_bool "hence not hybrid atomic" false (At.hybrid_atomic h)

(* ---------------- atomicity vs hybrid atomicity ---------------- *)

let test_atomic_ignores_aborted () =
  (* An aborted transaction's impossible operations don't matter. *)
  let h =
    [
      H.Invoke (p, Q.Enq 1);
      H.Respond (p, Q.Ok);
      H.Invoke (q, Q.Deq);
      H.Respond (q, Q.Val 1);
      H.Abort q;
      H.Commit (p, 1);
    ]
  in
  check_bool "atomic after discarding Q" true (At.atomic h)

let test_hybrid_needs_ts_order () =
  (* Serializable in some order, but not in timestamp order. *)
  let h =
    [
      H.Invoke (p, Q.Enq 1);
      H.Respond (p, Q.Ok);
      H.Invoke (q, Q.Enq 2);
      H.Respond (q, Q.Ok);
      (* FIFO: dequeue sees 1 first, so P must serialize before Q;
         but P's timestamp is larger. *)
      H.Commit (p, 2);
      H.Commit (q, 1);
      H.Invoke (r, Q.Deq);
      H.Respond (r, Q.Val 1);
      H.Commit (r, 5);
    ]
  in
  check_bool "atomic (order P,Q,R works)" true (At.atomic h);
  check_bool "not hybrid atomic (TS order is Q,P,R)" false (At.hybrid_atomic h)

let test_paper_history_hybrid () =
  check_bool "hybrid atomic" true (At.hybrid_atomic paper_history);
  check_bool "online hybrid atomic" true (At.online_hybrid_atomic paper_history)

(* ---------------- online hybrid atomicity ---------------- *)

let test_online_all_prefixes () =
  let n = List.length paper_history in
  List.iter
    (fun k ->
      let prefix = List.filteri (fun i _ -> i < k) paper_history in
      check_bool
        (Printf.sprintf "prefix %d" k)
        true
        (At.online_hybrid_atomic prefix))
    (List.init (n + 1) Fun.id)

let test_online_stronger_than_hybrid () =
  (* A history that is hybrid atomic but NOT online hybrid atomic: the
     active transaction R has dequeued 1, which forces P before Q, but
     neither has committed, so a commit set where P and Q commit in the
     other timestamp order must also be serializable — and is not. *)
  let h =
    [
      H.Invoke (p, Q.Enq 1);
      H.Respond (p, Q.Ok);
      H.Invoke (q, Q.Enq 2);
      H.Respond (q, Q.Ok);
      H.Invoke (r, Q.Deq);
      H.Respond (r, Q.Val 2);
    ]
  in
  (* no commits: permanent(h) is empty, trivially hybrid atomic *)
  check_bool "hybrid atomic (vacuously)" true (At.hybrid_atomic h);
  check_bool "but not online hybrid atomic" false (At.online_hybrid_atomic h)

let test_online_empty_and_single () =
  check_bool "empty" true (At.online_hybrid_atomic []);
  check_bool "single op no commit" true
    (At.online_hybrid_atomic [ H.Invoke (p, Q.Enq 1); H.Respond (p, Q.Ok) ])

(* ---------------- Thomas write rule on File ---------------- *)

let test_file_concurrent_writes () =
  (* Two concurrent writers: later reads see the later-timestamped
     write.  This is the generalized Thomas Write Rule scenario. *)
  let h =
    [
      HF.Invoke (p, F.Write 1);
      HF.Respond (p, F.Ok);
      HF.Invoke (q, F.Write 2);
      HF.Respond (q, F.Ok);
      HF.Commit (p, 2);
      HF.Commit (q, 1);
      HF.Invoke (r, F.Read);
      HF.Respond (r, F.Val 1);
      (* P's write has the later timestamp *)
      HF.Commit (r, 3);
    ]
  in
  check_bool "hybrid atomic" true (AtF.hybrid_atomic h);
  (* Reading the smaller-timestamp value instead is atomic in SOME order
     but not hybrid atomic. *)
  let h' =
    List.map
      (function
        | HF.Respond (t, F.Val 1) when Model.Txn.equal t r -> HF.Respond (r, F.Val 2)
        | e -> e)
      h
  in
  check_bool "stale read: atomic" true (AtF.atomic h');
  check_bool "stale read: not hybrid atomic" false (AtF.hybrid_atomic h')

(* ---------------- properties ---------------- *)

(* Serial histories built from legal operation sequences are acceptable
   and online hybrid atomic when committed in execution order. *)
let prop_serial_committed_histories_hybrid_atomic =
  let module S = Spec.Sequences.Make (Q) in
  QCheck2.Test.make ~name:"serial committed runs are online hybrid atomic" ~count:100
    QCheck2.Gen.(list_size (1 -- 4) (list_size (1 -- 3) (oneofl Q.universe)))
    (fun txn_ops ->
      (* Build a serial history: txn i performs its ops then commits
         with timestamp i. *)
      let history =
        List.concat
          (List.mapi
             (fun i ops ->
               let t = Model.Txn.make i in
               List.concat_map
                 (fun (inv, res) -> [ H.Invoke (t, inv); H.Respond (t, res) ])
                 ops
               @ [ H.Commit (t, i) ])
             txn_ops)
      in
      let flat = List.concat txn_ops in
      (* Only check histories whose flattened ops are legal. *)
      QCheck2.assume (S.legal flat);
      At.online_hybrid_atomic history)

let () =
  Alcotest.run "atomicity"
    [
      ( "serializability",
        [
          Alcotest.test_case "acceptable serial" `Quick test_acceptable_serial;
          Alcotest.test_case "serializable in order" `Quick test_serializable_in_order;
          Alcotest.test_case "serializable exists" `Quick test_serializable_exists;
          Alcotest.test_case "not serializable" `Quick test_not_serializable;
        ] );
      ( "atomic-vs-hybrid",
        [
          Alcotest.test_case "aborted discarded" `Quick test_atomic_ignores_aborted;
          Alcotest.test_case "hybrid needs ts order" `Quick test_hybrid_needs_ts_order;
          Alcotest.test_case "paper history" `Quick test_paper_history_hybrid;
        ] );
      ( "online",
        [
          Alcotest.test_case "all prefixes of paper history" `Quick
            test_online_all_prefixes;
          Alcotest.test_case "strictly stronger than hybrid" `Quick
            test_online_stronger_than_hybrid;
          Alcotest.test_case "degenerate cases" `Quick test_online_empty_and_single;
        ] );
      ( "file",
        [ Alcotest.test_case "Thomas write rule" `Quick test_file_concurrent_writes ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_serial_committed_histories_hybrid_atomic ] );
    ]
