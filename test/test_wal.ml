(* Tests for the durability subsystem: binary framing, per-ADT codecs,
   the log writer's truncation bound, the snapshot-pin/checkpoint
   interaction, and whole-run recovery. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let temp_wal () =
  let f = Filename.temp_file "hybrid-cc-test" ".wal" in
  at_exit (fun () -> try Sys.remove f with Sys_error _ -> ());
  f

(* ---------------- Binio round-trips ---------------- *)

let binio_int_roundtrip =
  QCheck2.Test.make ~name:"Binio zig-zag varint round-trips" ~count:500
    QCheck2.Gen.(
      oneof [ int; int_range (-1000) 1000; return max_int; return min_int; return 0 ])
    (fun n ->
      let buf = Buffer.create 16 in
      Util.Binio.w_int buf n;
      let r = Util.Binio.reader (Buffer.contents buf) in
      let n' = Util.Binio.r_int r in
      n = n' && Util.Binio.eof r)

let binio_string_list_roundtrip =
  QCheck2.Test.make ~name:"Binio string lists round-trip" ~count:200
    QCheck2.Gen.(list_size (0 -- 8) (string_size (0 -- 20)))
    (fun ss ->
      let buf = Buffer.create 64 in
      Util.Binio.w_list Util.Binio.w_string buf ss;
      let r = Util.Binio.reader (Buffer.contents buf) in
      Util.Binio.r_list Util.Binio.r_string r = ss)

(* ---------------- framing ---------------- *)

let sample_records =
  [
    Wal.Log.Object { obj = "q#1"; adt = "FIFO-Queue"; cell = None };
    Wal.Log.Intention { obj = "q#1"; txn = 7; payload = "\x01\x02payload"; cell = None };
    Wal.Log.Commit { txn = 7; ts = 1 };
    Wal.Log.Abort { txn = 9 };
    Wal.Log.Checkpoint { obj = "q#1"; upto = 1; payload = ""; cell = None };
    Wal.Log.Object { obj = "d#2/cell3"; adt = "Directory"; cell = Some 3 };
    Wal.Log.Intention { obj = "d#2/cell3"; txn = 8; payload = "\x03"; cell = Some 3 };
    Wal.Log.Checkpoint { obj = "d#2/cell3"; upto = 2; payload = "\x00"; cell = Some 3 };
  ]

let frame_all records =
  let buf = Buffer.create 256 in
  List.iter (Wal.Log.frame buf) records;
  Buffer.contents buf

let test_frame_roundtrip () =
  let raw = frame_all sample_records in
  let records, tail = Wal.Log.parse raw in
  check_bool "clean tail" true (tail = Wal.Log.Clean);
  check_int "count" (List.length sample_records) (List.length records);
  List.iter2
    (fun a b -> check_bool "record equal" true (Wal.Log.equal_record a b))
    sample_records records

let test_torn_tail_every_cut () =
  (* Cutting the image at any byte must recover exactly the records
     whose frames survived whole, and report the tear unless the cut
     falls on a frame boundary. *)
  let raw = frame_all sample_records in
  let boundaries =
    List.to_seq sample_records
    |> Seq.scan (fun off r -> off + Wal.Log.framed_size r) 0
    |> List.of_seq
  in
  for cut = 0 to String.length raw do
    let records, tail = Wal.Log.parse (String.sub raw 0 cut) in
    let whole = List.filter (fun b -> b <= cut) boundaries |> List.length in
    check_int (Printf.sprintf "records at cut %d" cut) (whole - 1) (List.length records);
    let on_boundary = List.mem cut boundaries in
    check_bool
      (Printf.sprintf "tail at cut %d" cut)
      on_boundary (tail = Wal.Log.Clean)
  done

let test_corrupt_byte_stops_parse () =
  let raw = frame_all sample_records in
  let b = Bytes.of_string raw in
  (* Flip a byte inside the second frame's payload: frame 1 must still
     parse, everything from frame 2 on is dropped as torn. *)
  let off1 = Wal.Log.framed_size (List.nth sample_records 0) in
  Bytes.set b (off1 + 9) '\xff';
  let records, tail = Wal.Log.parse (Bytes.to_string b) in
  check_int "one record survives" 1 (List.length records);
  check_bool "torn at second frame" true (tail = Wal.Log.Torn off1)

(* ---------------- codec round-trips for all 8 ADTs ---------------- *)

module type TESTABLE = sig
  include Spec.Adt_sig.BOUNDED

  val codec : (inv, res, state) Wal.Codec.t
end

let testable_adts : (module TESTABLE) list =
  [
    (module Adt.Fifo_queue);
    (module Adt.Semiqueue);
    (module Adt.Account);
    (module Adt.Counter);
    (module Adt.Directory);
    (module Adt.File_adt);
    (module Adt.Log_adt);
    (module Adt.Bounded_buffer);
  ]

(* Deterministic walk driver: visit states reachable from [initial] by
   legal steps, checking the state codec at every state and the op codec
   on every universe operation. *)
let codec_roundtrip_test (module X : TESTABLE) =
  let name = Printf.sprintf "codec round-trips (%s)" X.name in
  let run () =
    List.iter
      (fun (i, r) ->
        check_bool
          (Format.asprintf "op %a/%a" X.pp_inv i X.pp_res r)
          true
          (Wal.Codec.roundtrip_op X.codec ~equal_inv:X.equal_inv ~equal_res:X.equal_res
             (i, r)))
      X.universe;
    let invs = List.map fst X.universe in
    let n_invs = List.length invs in
    let lcg = ref 123457 in
    let next () =
      lcg := 1 + (!lcg * 48271 mod 0x7fffffff);
      !lcg
    in
    let state = ref X.initial in
    for k = 0 to 99 do
      check_bool
        (Format.asprintf "state %a (step %d)" X.pp_state !state k)
        true
        (Wal.Codec.roundtrip_state X.codec ~equal_state:X.equal_state !state);
      (* advance by the first legal invocation at a pseudo-random offset *)
      let start = next () mod n_invs in
      let rec advance tries =
        if tries < n_invs then
          match X.step !state (List.nth invs ((start + tries) mod n_invs)) with
          | (_, s') :: _ -> state := s'
          | [] -> advance (tries + 1)
      in
      advance 0
    done
  in
  Alcotest.test_case name `Quick run

(* ---------------- writer truncation bound ---------------- *)

module Cobj = Runtime.Atomic_obj.Make (Adt.Counter)

let test_log_stays_bounded () =
  (* Sequential committed increments: every transaction folds as the
     horizon advances, so the live set stays O(1) and rewrites must keep
     the file near the compaction threshold no matter how many
     transactions ran. *)
  let path = temp_wal () in
  let threshold = 64 in
  let w = Wal.Log.create ~fsync:false ~compact_threshold:threshold path in
  let mgr = Runtime.Manager.create ~wal:w () in
  let c = Cobj.create ~wal:(w, Adt.Counter.codec) ~conflict:Adt.Counter.conflict_hybrid () in
  let txns = 500 in
  for _ = 1 to txns do
    Runtime.Manager.run mgr (fun txn -> ignore (Cobj.invoke c txn (Adt.Counter.Inc 1)))
  done;
  let live = Wal.Log.live w in
  let file_records = Wal.Log.file_records w in
  Wal.Log.close w;
  check_bool
    (Printf.sprintf "live set is O(1), got %d" live)
    true (live <= 8);
  (* Every transaction appended >= 2 records (intention + commit), so an
     unbounded log would hold >= 1000; the rewrite bound is live +
     threshold + a slack batch. *)
  check_bool
    (Printf.sprintf "file records bounded by compaction, got %d" file_records)
    true
    (file_records <= live + threshold + 16);
  (* The compacted file still recovers the full committed history. *)
  let records, tail = Wal.Log.read path in
  check_bool "clean tail" true (tail = Wal.Log.Clean);
  let module R = Wal.Recover.Make (Adt.Counter) in
  match R.recover ~obj:(Cobj.name c) records with
  | Error e -> Alcotest.fail e
  | Ok oc -> check_bool "recovered count" true (R.equal_states oc.R.states [ txns ])

(* ---------------- snapshot pin blocks truncation ---------------- *)

let test_pin_blocks_checkpoint_past_pin () =
  (* Regression for the Theorem 24 / snapshot interaction: a pinned
     reader holds the horizon (Compacted.pin), so no checkpoint — and
     hence no log truncation — may pass the pin while it is held. *)
  let path = temp_wal () in
  let w = Wal.Log.create ~fsync:false path in
  let mgr = Runtime.Manager.create ~wal:w () in
  let c = Cobj.create ~wal:(w, Adt.Counter.codec) ~conflict:Adt.Counter.conflict_hybrid () in
  for _ = 1 to 5 do
    Runtime.Manager.run mgr (fun txn -> ignore (Cobj.invoke c txn (Adt.Counter.Inc 1)))
  done;
  let pin_at = Runtime.Manager.stable_time mgr in
  let reader = Model.Txn.make (-7777) in
  let src = Cobj.snapshot_source c in
  src.Runtime.Snapshot.pin reader pin_at;
  for _ = 1 to 40 do
    Runtime.Manager.run mgr (fun txn -> ignore (Cobj.invoke c txn (Adt.Counter.Inc 1)))
  done;
  let upto_pinned = Wal.Log.checkpoint_upto w (Cobj.name c) in
  check_bool
    (Printf.sprintf "checkpoint %s must not pass pin %d"
       (match upto_pinned with Some t -> string_of_int t | None -> "none")
       pin_at)
    true
    (match upto_pinned with None -> true | Some t -> t <= pin_at);
  (* The pinned snapshot is still readable. *)
  (match Cobj.read_at c ~at:pin_at Adt.Counter.Read with
  | Some (Adt.Counter.Val 5) -> ()
  | _ -> Alcotest.fail "pinned snapshot must still see count 5");
  src.Runtime.Snapshot.unpin reader;
  (* Releasing the pin lets the horizon (and checkpoints) advance. *)
  Runtime.Manager.run mgr (fun txn -> ignore (Cobj.invoke c txn (Adt.Counter.Inc 1)));
  let upto_after = Wal.Log.checkpoint_upto w (Cobj.name c) in
  Wal.Log.close w;
  check_bool "checkpoint advances past the released pin" true
    (match upto_after with Some t -> t > pin_at | None -> false)

(* ---------------- recovery equals the live object ---------------- *)

let test_concurrent_recovery_matches_live () =
  let dir = Filename.temp_file "hybrid-cc-crash" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let r = Sim.Crash_exp.queue ~scale:Sim.Experiments.quick_scale ~dir () in
      (match r.Sim.Crash_exp.c_final with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("clean recovery vs live object: " ^ e));
      check_bool "kill points all recover" true (r.Sim.Crash_exp.c_failures = []);
      check_bool "ran some kill points" true (r.Sim.Crash_exp.c_kill_points > 0))

(* ---------------- Durable registry ---------------- *)

let test_registry_covers_all_adts () =
  check_int "eight durable ADTs" 8 (List.length Sim.Durable.registry);
  List.iter
    (fun (module X : TESTABLE) ->
      check_bool X.name true (Option.is_some (Sim.Durable.find X.name)))
    testable_adts

let () =
  Alcotest.run "wal"
    [
      ( "binio",
        List.map QCheck_alcotest.to_alcotest
          [ binio_int_roundtrip; binio_string_list_roundtrip ] );
      ( "framing",
        [
          Alcotest.test_case "frame/parse round-trip" `Quick test_frame_roundtrip;
          Alcotest.test_case "torn tail at every cut" `Quick test_torn_tail_every_cut;
          Alcotest.test_case "corrupt byte stops parse" `Quick test_corrupt_byte_stops_parse;
        ] );
      ("codecs", List.map codec_roundtrip_test testable_adts);
      ( "writer",
        [
          Alcotest.test_case "log stays O(live) under commits" `Quick test_log_stays_bounded;
          Alcotest.test_case "snapshot pin blocks truncation" `Quick
            test_pin_blocks_checkpoint_past_pin;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "concurrent run recovers to live state" `Quick
            test_concurrent_recovery_matches_live;
          Alcotest.test_case "registry covers all ADTs" `Quick test_registry_covers_all_adts;
        ] );
    ]
