(* Tests for Spec.Commutativity (Definitions 25/26, Theorem 28) and the
   paper's Section 7.1 comparison between dependency-based and
   commutativity-based conflict relations. *)

module Q = Adt.Fifo_queue
module SQ = Adt.Semiqueue
module F = Adt.File_adt
module A = Adt.Account
module CQ = Spec.Commutativity.Make (Q)
module CS = Spec.Commutativity.Make (SQ)
module CF = Spec.Commutativity.Make (F)
module CA = Spec.Commutativity.Make (A)
module DQ = Spec.Dependency.Make (Q)
module DA = Spec.Dependency.Make (A)

let check_bool = Alcotest.(check bool)
let depth = 3

(* ---------------- hand-verified commutation facts ---------------- *)

let test_queue_commutes () =
  check_bool "enq1/enq1 commute" true (CQ.commute ~depth (Q.enq 1) (Q.enq 1));
  check_bool "enq1/enq2 do not commute" false (CQ.commute ~depth (Q.enq 1) (Q.enq 2));
  check_bool "enq/deq commute" true (CQ.commute ~depth (Q.enq 1) (Q.deq 2));
  check_bool "enq/deq same value commute" true (CQ.commute ~depth (Q.enq 1) (Q.deq 1));
  check_bool "deq1/deq1 do not commute" false (CQ.commute ~depth (Q.deq 1) (Q.deq 1));
  check_bool "deq1/deq2 commute vacuously" true (CQ.commute ~depth (Q.deq 1) (Q.deq 2))

let test_file_commutes () =
  check_bool "write v/write v commute" true (CF.commute ~depth (F.write 1) (F.write 1));
  check_bool "write 1/write 2 do not" false (CF.commute ~depth (F.write 1) (F.write 2));
  check_bool "read v/read v commute" true (CF.commute ~depth (F.read 1) (F.read 1));
  check_bool "read 1/write 1 commute" true (CF.commute ~depth (F.read 1) (F.write 1));
  check_bool "read 1/write 2 do not" false (CF.commute ~depth (F.read 1) (F.write 2))

let test_account_commutes () =
  check_bool "credit/credit" true (CA.commute ~depth (A.credit 2) (A.credit 3));
  check_bool "post/post" true (CA.commute ~depth (A.post 1) (A.post 2));
  check_bool "credit/post do not" false (CA.commute ~depth (A.credit 2) (A.post 1));
  check_bool "credit/debit-ok" true (CA.commute ~depth (A.credit 2) (A.debit_ok 3));
  check_bool "credit/overdraft do not" false
    (CA.commute ~depth (A.credit 2) (A.debit_overdraft 3));
  check_bool "post/debit-ok do not" false (CA.commute ~depth (A.post 1) (A.debit_ok 2));
  check_bool "post/overdraft do not" false
    (CA.commute ~depth (A.post 1) (A.debit_overdraft 2));
  check_bool "debit-ok/debit-ok do not" false
    (CA.commute ~depth (A.debit_ok 2) (A.debit_ok 3));
  check_bool "debit-ok/overdraft commute" true
    (CA.commute ~depth (A.debit_ok 2) (A.debit_overdraft 3));
  check_bool "overdraft/overdraft commute" true
    (CA.commute ~depth (A.debit_overdraft 2) (A.debit_overdraft 3))

let test_semiqueue_commutes () =
  check_bool "ins/ins" true (CS.commute ~depth (SQ.ins 1) (SQ.ins 2));
  check_bool "ins/rem" true (CS.commute ~depth (SQ.ins 1) (SQ.rem 2));
  check_bool "rem v/rem v do not" false (CS.commute ~depth (SQ.rem 1) (SQ.rem 1));
  check_bool "rem 1/rem 2 commute" true (CS.commute ~depth (SQ.rem 1) (SQ.rem 2))

let test_commute_symmetric () =
  List.iter
    (fun p ->
      List.iter
        (fun q ->
          check_bool "symmetric" (CA.commute ~depth p q) (CA.commute ~depth q p))
        A.universe)
    A.universe

(* ---------------- Theorem 28 ---------------- *)

let test_theorem_28_queue () =
  check_bool "queue failure-to-commute is a dependency relation" true
    (DQ.is_dependency_relation ~depth (Spec.Relation.pred (CQ.failure_to_commute ~depth)))

let test_theorem_28_account () =
  check_bool "account failure-to-commute is a dependency relation" true
    (DA.is_dependency_relation ~depth (Spec.Relation.pred (CA.failure_to_commute ~depth)))

(* ---------------- Section 7.1 comparisons ---------------- *)

let sym r = Spec.Relation.symmetric_closure r

let test_account_hybrid_strictly_fewer_conflicts () =
  (* The dependency-based conflicts are a strict subset of the
     commutativity-based ones for Account: the paper's headline. *)
  let hybrid = sym (DA.invalidated_by ~depth) in
  let commut = CA.failure_to_commute ~depth in
  check_bool "hybrid < commutativity" true (Spec.Relation.proper_subset hybrid commut)

let test_queue_commut_equals_fig_4_3 () =
  (* For queues, the commutativity conflicts coincide with the symmetric
     closure of Figure 4-3 (paper Section 7.1). *)
  let commut = CQ.failure_to_commute ~depth in
  let fig43 =
    Spec.Relation.of_pred
      ~eq:(fun (i1, r1) (i2, r2) -> Q.equal_inv i1 i2 && Q.equal_res r1 r2)
      ~ops:Q.universe Q.conflict_fig_4_3
  in
  check_bool "equal" true (Spec.Relation.equal commut fig43)

let test_queue_commut_incomparable_with_fig_4_2 () =
  let commut = CQ.failure_to_commute ~depth in
  let fig42 = sym (DQ.invalidated_by ~depth) in
  check_bool "not <=" false (Spec.Relation.subset fig42 commut);
  check_bool "not >=" false (Spec.Relation.subset commut fig42)

let test_handwritten_conflicts_match_derived () =
  (* The conflict relations shipped with each ADT agree with the derived
     ones over the bounded universe. *)
  let mat_a = Spec.Relation.of_pred ~eq:( = ) ~ops:A.universe in
  let mat_f = Spec.Relation.of_pred ~eq:( = ) ~ops:F.universe in
  let mat_q = Spec.Relation.of_pred ~eq:( = ) ~ops:Q.universe in
  let mat_s = Spec.Relation.of_pred ~eq:( = ) ~ops:SQ.universe in
  let eq = Spec.Relation.equal in
  check_bool "account commutativity" true
    (eq (CA.failure_to_commute ~depth) (mat_a A.conflict_commutativity));
  check_bool "file commutativity" true
    (eq (CF.failure_to_commute ~depth) (mat_f F.conflict_commutativity));
  check_bool "queue commutativity" true
    (eq (CQ.failure_to_commute ~depth) (mat_q Q.conflict_commutativity));
  check_bool "semiqueue commutativity" true
    (eq (CS.failure_to_commute ~depth) (mat_s SQ.conflict_commutativity));
  check_bool "account hybrid" true
    (eq (sym (DA.invalidated_by ~depth)) (mat_a A.conflict_hybrid));
  check_bool "queue hybrid" true
    (eq (sym (DQ.invalidated_by ~depth)) (mat_q Q.conflict_hybrid))

(* ---------------- Properties ---------------- *)

let prop_commuting_ops_reorder =
  (* If p and q commute, swapping adjacent occurrences preserves
     legality of any continuation. *)
  QCheck2.Test.make ~name:"commuting adjacent swap preserves legality (account)"
    ~count:200
    QCheck2.Gen.(
      triple
        (list_size (0 -- 3) (oneofl A.universe))
        (pair (oneofl A.universe) (oneofl A.universe))
        (list_size (0 -- 2) (oneofl A.universe)))
    (fun (h, (p, q), k) ->
      let module S = CA.Seq in
      (* Definition 26's guarantee only applies where its premise holds:
         both single extensions must be legal. *)
      (not (CA.commute ~depth p q && S.legal (h @ [ p ]) && S.legal (h @ [ q ])))
      || S.legal ((h @ [ p; q ]) @ k) = S.legal ((h @ [ q; p ]) @ k))

let () =
  Alcotest.run "commutativity"
    [
      ( "facts",
        [
          Alcotest.test_case "queue" `Quick test_queue_commutes;
          Alcotest.test_case "file" `Quick test_file_commutes;
          Alcotest.test_case "account" `Quick test_account_commutes;
          Alcotest.test_case "semiqueue" `Quick test_semiqueue_commutes;
          Alcotest.test_case "symmetry" `Quick test_commute_symmetric;
        ] );
      ( "theorem-28",
        [
          Alcotest.test_case "queue" `Quick test_theorem_28_queue;
          Alcotest.test_case "account" `Slow test_theorem_28_account;
        ] );
      ( "section-7-1",
        [
          Alcotest.test_case "account: hybrid strictly finer" `Quick
            test_account_hybrid_strictly_fewer_conflicts;
          Alcotest.test_case "queue: commutativity = fig 4-3" `Quick
            test_queue_commut_equals_fig_4_3;
          Alcotest.test_case "queue: commutativity vs fig 4-2 incomparable" `Quick
            test_queue_commut_incomparable_with_fig_4_2;
          Alcotest.test_case "handwritten relations match derived" `Quick
            test_handwritten_conflicts_match_derived;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_commuting_ops_reorder ] );
    ]
