(* Tests for Spec.Dependency — the heart of the reproduction.

   Covers: the derived invalidated-by relations for all four paper ADTs
   (diffed cell-by-cell against the figures in test_figures.ml; here we
   test the relation-level properties), Theorem 10 (invalidated-by is a
   dependency relation), Definition 3 counterexamples, minimality
   (including that both queue relations are minimal and incomparable),
   and stability of the bounded derivation across depths. *)

module Q = Adt.Fifo_queue
module SQ = Adt.Semiqueue
module F = Adt.File_adt
module A = Adt.Account
module DQ = Spec.Dependency.Make (Q)
module DS = Spec.Dependency.Make (SQ)
module DF = Spec.Dependency.Make (F)
module DA = Spec.Dependency.Make (A)

let check_bool = Alcotest.(check bool)
let depth = 3

(* ---------------- invalidates: hand-verified cases ---------------- *)

let test_invalidates_queue () =
  (* Enq 2 invalidates Deq 1 (insert Enq 2 before Enq 1: front changes). *)
  check_bool "enq2 invalidates deq1" true (DQ.invalidates ~depth (Q.enq 2) (Q.deq 1));
  (* Enq v never invalidates Deq v. *)
  check_bool "enq1 does not invalidate deq1" false
    (DQ.invalidates ~depth (Q.enq 1) (Q.deq 1));
  (* Deq v invalidates Deq v (consumes the item). *)
  check_bool "deq1 invalidates deq1" true (DQ.invalidates ~depth (Q.deq 1) (Q.deq 1));
  (* Deq of a different item cannot invalidate. *)
  check_bool "deq2 does not invalidate deq1" false
    (DQ.invalidates ~depth (Q.deq 2) (Q.deq 1));
  (* Nothing invalidates Enq (total, always legal). *)
  List.iter
    (fun p ->
      check_bool "nothing invalidates enq" false (DQ.invalidates ~depth p (Q.enq 1)))
    Q.universe

let test_invalidates_file () =
  check_bool "write2 invalidates read1" true (DF.invalidates ~depth (F.write 2) (F.read 1));
  check_bool "write1 does not invalidate read1" false
    (DF.invalidates ~depth (F.write 1) (F.read 1));
  check_bool "read does not invalidate write" false
    (DF.invalidates ~depth (F.read 1) (F.write 2));
  check_bool "write does not invalidate write" false
    (DF.invalidates ~depth (F.write 1) (F.write 2))

let test_invalidates_account () =
  check_bool "debit invalidates debit" true
    (DA.invalidates ~depth (A.debit_ok 2) (A.debit_ok 2));
  check_bool "credit invalidates overdraft" true
    (DA.invalidates ~depth (A.credit 2) (A.debit_overdraft 2));
  check_bool "post invalidates overdraft" true
    (DA.invalidates ~depth (A.post 1) (A.debit_overdraft 2));
  check_bool "credit does not invalidate successful debit" false
    (DA.invalidates ~depth (A.credit 2) (A.debit_ok 2));
  check_bool "overdraft invalidates nothing (no state change)" false
    (DA.invalidates ~depth (A.debit_overdraft 2) (A.debit_ok 2))

(* ---------------- Theorem 10 ---------------- *)

let test_theorem_10_queue () =
  check_bool "queue invalidated-by is a dependency relation" true
    (DQ.is_dependency_relation ~depth (Spec.Relation.pred (DQ.invalidated_by ~depth)))

let test_theorem_10_semiqueue () =
  check_bool "semiqueue" true
    (DS.is_dependency_relation ~depth (Spec.Relation.pred (DS.invalidated_by ~depth)))

let test_theorem_10_file () =
  check_bool "file" true
    (DF.is_dependency_relation ~depth (Spec.Relation.pred (DF.invalidated_by ~depth)))

let test_theorem_10_account () =
  check_bool "account" true
    (DA.is_dependency_relation ~depth (Spec.Relation.pred (DA.invalidated_by ~depth)))

(* ---------------- Definition 3 violations ---------------- *)

let test_empty_relation_not_dependency () =
  (* The empty relation is not a dependency relation for the queue: with
     h = [], p = Enq 2, k = [Enq 1; Deq 1], h*p*k is illegal. *)
  check_bool "empty relation fails" false
    (DQ.is_dependency_relation ~depth (fun _ _ -> false));
  match DQ.find_counterexample ~depth (fun _ _ -> false) with
  | None -> Alcotest.fail "expected a counterexample"
  | Some ce ->
    (* the witness must actually be a violation *)
    let module S = DQ.Seq in
    check_bool "h*k legal" true (S.legal (ce.DQ.h @ ce.DQ.k));
    check_bool "h*p legal" true (S.legal (ce.DQ.h @ [ ce.DQ.p ]));
    check_bool "h*p*k illegal" false (S.legal (ce.DQ.h @ (ce.DQ.p :: ce.DQ.k)))

let test_fig_4_2_without_deq_enq_fails () =
  (* Dropping the Deq-depends-on-Enq pairs from Figure 4-2 breaks it. *)
  let weakened q p =
    Q.dependency_fig_4_2 q p
    && match (q, p) with (Q.Deq, _), (Q.Enq _, _) -> false | _, _ -> true
  in
  check_bool "weakened 4-2 is not a dependency relation" false
    (DQ.is_dependency_relation ~depth weakened)

let test_total_relation_is_dependency () =
  (* Everything-conflicts is trivially a dependency relation. *)
  check_bool "total relation" true (DQ.is_dependency_relation ~depth (fun _ _ -> true))

(* ---------------- Declared relations from the paper ---------------- *)

let test_fig_4_3_is_dependency () =
  check_bool "fig 4-3" true (DQ.is_dependency_relation ~depth Q.dependency_fig_4_3)

let test_paper_relations_are_dependency () =
  check_bool "fig 4-1" true (DF.is_dependency_relation ~depth F.dependency_fig_4_1);
  check_bool "fig 4-2" true (DQ.is_dependency_relation ~depth Q.dependency_fig_4_2);
  check_bool "fig 4-4" true (DS.is_dependency_relation ~depth SQ.dependency_fig_4_4);
  check_bool "fig 4-5" true (DA.is_dependency_relation ~depth A.dependency_fig_4_5)

(* ---------------- Minimality ---------------- *)

let mat_q rel =
  Spec.Relation.of_pred
    ~eq:(fun (i1, r1) (i2, r2) -> Q.equal_inv i1 i2 && Q.equal_res r1 r2)
    ~ops:Q.universe rel

let mat_s rel =
  Spec.Relation.of_pred
    ~eq:(fun (i1, r1) (i2, r2) -> SQ.equal_inv i1 i2 && SQ.equal_res r1 r2)
    ~ops:SQ.universe rel

let mat_f rel =
  Spec.Relation.of_pred
    ~eq:(fun (i1, r1) (i2, r2) -> F.equal_inv i1 i2 && F.equal_res r1 r2)
    ~ops:F.universe rel

let mat_a rel =
  Spec.Relation.of_pred
    ~eq:(fun (i1, r1) (i2, r2) -> A.equal_inv i1 i2 && A.equal_res r1 r2)
    ~ops:A.universe rel

let test_fig_4_2_minimal () =
  check_bool "fig 4-2 minimal" true
    (DQ.is_minimal ~depth (mat_q Q.dependency_fig_4_2))

let test_fig_4_3_minimal () =
  check_bool "fig 4-3 minimal" true
    (DQ.is_minimal ~depth (mat_q Q.dependency_fig_4_3))

let test_fig_4_4_minimal () =
  check_bool "fig 4-4 minimal" true
    (DS.is_minimal ~depth (mat_s SQ.dependency_fig_4_4))

let test_fig_4_5_minimal () =
  check_bool "fig 4-5 minimal" true
    (DA.is_minimal ~depth (mat_a A.dependency_fig_4_5))

let test_fig_4_1_minimal () =
  check_bool "fig 4-1 minimal" true
    (DF.is_minimal ~depth (mat_f F.dependency_fig_4_1))

let test_queue_relations_incomparable () =
  (* The paper's central observation about queues: two distinct minimal
     dependency relations, neither containing the other. *)
  let r42 = mat_q Q.dependency_fig_4_2 in
  let r43 = mat_q Q.dependency_fig_4_3 in
  check_bool "4-2 not <= 4-3" false (Spec.Relation.subset r42 r43);
  check_bool "4-3 not <= 4-2" false (Spec.Relation.subset r43 r42);
  check_bool "distinct" false (Spec.Relation.equal r42 r43)

let test_total_relation_not_minimal () =
  check_bool "total relation is not minimal" false
    (DQ.is_minimal ~depth (mat_q (fun _ _ -> true)))

let test_minimize_reaches_minimal () =
  (* Greedy minimization of the total queue relation yields a minimal
     dependency relation below it. *)
  let total = mat_q (fun _ _ -> true) in
  let m = DQ.minimize ~depth total in
  check_bool "result is a dependency relation" true
    (DQ.is_dependency_relation ~depth (Spec.Relation.pred m));
  check_bool "result is minimal" true (DQ.is_minimal ~depth m);
  check_bool "result below total" true (Spec.Relation.subset m total)

(* ---------------- Uniqueness of minimal relations ---------------- *)

(* The paper asserts File, SemiQueue and Account have THE unique minimal
   dependency relation, and exhibits two incomparable minimal relations
   for the Queue.  A unique minimal relation exists iff the necessary
   pairs (those in every dependency relation) themselves form one. *)

let test_unique_minimal_file () =
  check_bool "file unique" true (DF.has_unique_minimal ~depth:2);
  check_bool "and it is fig 4-1" true
    (Spec.Relation.equal (DF.necessary_pairs ~depth:2) (mat_f F.dependency_fig_4_1))

let test_unique_minimal_semiqueue () =
  check_bool "semiqueue unique" true (DS.has_unique_minimal ~depth:2);
  check_bool "and it is fig 4-4" true
    (Spec.Relation.equal (DS.necessary_pairs ~depth:2) (mat_s SQ.dependency_fig_4_4))

let test_unique_minimal_account () =
  check_bool "account unique" true (DA.has_unique_minimal ~depth:2);
  check_bool "and it is fig 4-5" true
    (Spec.Relation.equal (DA.necessary_pairs ~depth:2) (mat_a A.dependency_fig_4_5))

let test_queue_minimal_not_unique () =
  check_bool "queue NOT unique" false (DQ.has_unique_minimal ~depth:3);
  (* the necessary pairs sit strictly inside both exhibited minimals *)
  let necessary = DQ.necessary_pairs ~depth:3 in
  check_bool "inside fig 4-2" true
    (Spec.Relation.proper_subset necessary (mat_q Q.dependency_fig_4_2));
  check_bool "inside fig 4-3" true
    (Spec.Relation.proper_subset necessary (mat_q Q.dependency_fig_4_3))

(* ---------------- Depth stability ---------------- *)

let test_depth_stability_queue () =
  check_bool "queue: depth 3 = depth 4" true
    (Spec.Relation.equal (DQ.invalidated_by ~depth:3) (DQ.invalidated_by ~depth:4))

let test_depth_stability_file () =
  check_bool "file: depth 3 = depth 4" true
    (Spec.Relation.equal (DF.invalidated_by ~depth:3) (DF.invalidated_by ~depth:4))

let test_depth_stability_semiqueue () =
  check_bool "semiqueue: depth 3 = depth 4" true
    (Spec.Relation.equal (DS.invalidated_by ~depth:3) (DS.invalidated_by ~depth:4))

(* ---------------- Properties ---------------- *)

let prop_invalidated_by_subset_of_total =
  QCheck2.Test.make ~name:"union with invalidated-by is still a dependency relation"
    ~count:20
    QCheck2.Gen.(
      list_size (0 -- 6) (pair (oneofl Q.universe) (oneofl Q.universe)))
    (fun extra ->
      (* Adding arbitrary extra pairs on top of invalidated-by keeps
         Definition 3 satisfied (dependency relations are upward
         closed). *)
      let base = DQ.invalidated_by ~depth:2 in
      let rel q p = Spec.Relation.holds base q p || List.mem (q, p) extra in
      DQ.is_dependency_relation ~depth:2 rel)

let () =
  Alcotest.run "dependency"
    [
      ( "invalidates",
        [
          Alcotest.test_case "queue cases" `Quick test_invalidates_queue;
          Alcotest.test_case "file cases" `Quick test_invalidates_file;
          Alcotest.test_case "account cases" `Quick test_invalidates_account;
        ] );
      ( "theorem-10",
        [
          Alcotest.test_case "queue" `Quick test_theorem_10_queue;
          Alcotest.test_case "semiqueue" `Quick test_theorem_10_semiqueue;
          Alcotest.test_case "file" `Quick test_theorem_10_file;
          Alcotest.test_case "account" `Slow test_theorem_10_account;
        ] );
      ( "definition-3",
        [
          Alcotest.test_case "empty relation refuted with witness" `Quick
            test_empty_relation_not_dependency;
          Alcotest.test_case "weakened fig 4-2 refuted" `Quick
            test_fig_4_2_without_deq_enq_fails;
          Alcotest.test_case "total relation accepted" `Quick
            test_total_relation_is_dependency;
          Alcotest.test_case "fig 4-3 accepted" `Quick test_fig_4_3_is_dependency;
          Alcotest.test_case "all paper relations accepted" `Slow
            test_paper_relations_are_dependency;
        ] );
      ( "minimality",
        [
          Alcotest.test_case "fig 4-1 minimal" `Quick test_fig_4_1_minimal;
          Alcotest.test_case "fig 4-2 minimal" `Quick test_fig_4_2_minimal;
          Alcotest.test_case "fig 4-3 minimal" `Quick test_fig_4_3_minimal;
          Alcotest.test_case "fig 4-4 minimal" `Quick test_fig_4_4_minimal;
          Alcotest.test_case "fig 4-5 minimal" `Slow test_fig_4_5_minimal;
          Alcotest.test_case "queue relations incomparable" `Quick
            test_queue_relations_incomparable;
          Alcotest.test_case "total not minimal" `Quick test_total_relation_not_minimal;
          Alcotest.test_case "minimize reaches a minimal relation" `Slow
            test_minimize_reaches_minimal;
        ] );
      ( "uniqueness",
        [
          Alcotest.test_case "file" `Slow test_unique_minimal_file;
          Alcotest.test_case "semiqueue" `Slow test_unique_minimal_semiqueue;
          Alcotest.test_case "account" `Slow test_unique_minimal_account;
          Alcotest.test_case "queue not unique" `Slow test_queue_minimal_not_unique;
        ] );
      ( "depth-stability",
        [
          Alcotest.test_case "queue" `Slow test_depth_stability_queue;
          Alcotest.test_case "file" `Slow test_depth_stability_file;
          Alcotest.test_case "semiqueue" `Slow test_depth_stability_semiqueue;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_invalidated_by_subset_of_total ] );
    ]
