(* Tests for the extension ADTs (Counter, Directory, Log): the declared
   relations match the machine-derived ones, the paper's theorems hold
   for them, and the protocol runs them correctly under concurrency. *)

module Cn = Adt.Counter
module Dir = Adt.Directory
module Lg = Adt.Log_adt
module Bb = Adt.Bounded_buffer
module DBb = Spec.Dependency.Make (Bb)
module CBb = Spec.Commutativity.Make (Bb)
module DCn = Spec.Dependency.Make (Cn)
module DDir = Spec.Dependency.Make (Dir)
module DLg = Spec.Dependency.Make (Lg)
module CCn = Spec.Commutativity.Make (Cn)
module CDir = Spec.Commutativity.Make (Dir)
module CLg = Spec.Commutativity.Make (Lg)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sym = Spec.Relation.symmetric_closure

(* ---------------- derivations match declarations ---------------- *)

let test_counter_derived () =
  let derived = DCn.invalidated_by ~depth:2 in
  let declared = Spec.Relation.of_pred ~eq:( = ) ~ops:Cn.universe Cn.dependency_hybrid in
  check_bool "counter invalidated-by = declared" true
    (Spec.Relation.equal derived declared);
  check_bool "is dependency relation" true
    (DCn.is_dependency_relation ~depth:2 Cn.dependency_hybrid);
  check_bool "minimal" true (DCn.is_minimal ~depth:2 declared)

let test_counter_commutativity_coincides () =
  let ftc = CCn.failure_to_commute ~depth:2 in
  let hybrid = Spec.Relation.of_pred ~eq:( = ) ~ops:Cn.universe Cn.conflict_hybrid in
  check_bool "hybrid = commutativity for Counter" true (Spec.Relation.equal ftc hybrid)

let test_directory_derived () =
  let derived = DDir.invalidated_by ~depth:2 in
  let declared =
    Spec.Relation.of_pred ~eq:( = ) ~ops:Dir.universe Dir.dependency_hybrid
  in
  check_bool "directory invalidated-by = declared" true
    (Spec.Relation.equal derived declared);
  check_bool "is dependency relation" true
    (DDir.is_dependency_relation ~depth:2 Dir.dependency_hybrid)

let test_directory_commutativity_coincides () =
  let ftc = CDir.failure_to_commute ~depth:2 in
  let hybrid = Spec.Relation.of_pred ~eq:( = ) ~ops:Dir.universe Dir.conflict_hybrid in
  check_bool "hybrid = commutativity for Directory" true (Spec.Relation.equal ftc hybrid)

let test_directory_depth_stability () =
  check_bool "depth 2 = depth 3" true
    (Spec.Relation.equal (DDir.invalidated_by ~depth:2) (DDir.invalidated_by ~depth:3))

let test_log_derived () =
  let derived = DLg.invalidated_by ~depth:3 in
  let declared = Spec.Relation.of_pred ~eq:( = ) ~ops:Lg.universe Lg.dependency_hybrid in
  check_bool "log invalidated-by = declared" true (Spec.Relation.equal derived declared);
  check_bool "is dependency relation" true
    (DLg.is_dependency_relation ~depth:3 Lg.dependency_hybrid)

let test_log_commutativity_strictly_coarser () =
  let ftc = CLg.failure_to_commute ~depth:3 in
  let declared_ftc =
    Spec.Relation.of_pred ~eq:( = ) ~ops:Lg.universe Lg.conflict_commutativity
  in
  check_bool "declared commutativity matches derived" true
    (Spec.Relation.equal ftc declared_ftc);
  let hybrid = sym (DLg.invalidated_by ~depth:3) in
  check_bool "hybrid strictly finer (appends!)" true
    (Spec.Relation.proper_subset hybrid ftc)

let test_bounded_buffer_derived () =
  (* Bounding the buffer makes Put invalidate Put: the headline
     concurrent-enqueue property of the unbounded queue is lost. *)
  let derived = DBb.invalidated_by ~depth:3 in
  let declared = Spec.Relation.of_pred ~eq:( = ) ~ops:Bb.universe Bb.dependency_hybrid in
  check_bool "bounded buffer invalidated-by = declared" true
    (Spec.Relation.equal derived declared);
  check_bool "is dependency relation" true
    (DBb.is_dependency_relation ~depth:3 Bb.dependency_hybrid);
  check_bool "put depends on put (any values)" true
    (Bb.dependency_hybrid (Bb.put 1) (Bb.put 1));
  (* A concrete instance of the paper's remark that invalidated-by
     "need not be a minimal dependency relation": the failure-to-commute
     relation is itself a dependency relation (Theorem 28) and sits
     STRICTLY below the invalidated-by closure here, so invalidated-by
     is not minimal for this type. *)
  let ftc = CBb.failure_to_commute ~depth:3 in
  let declared_ftc =
    Spec.Relation.of_pred ~eq:( = ) ~ops:Bb.universe Bb.conflict_commutativity
  in
  check_bool "declared commutativity matches derived" true
    (Spec.Relation.equal ftc declared_ftc);
  let hybrid = sym derived in
  check_bool "commutativity strictly finer than invalidated-by closure" true
    (Spec.Relation.proper_subset ftc hybrid);
  check_bool "invalidated-by is NOT minimal here" false (DBb.is_minimal ~depth:3 derived)

(* ---------------- result-dependence in the Directory ---------------- *)

let test_directory_result_dependence () =
  (* Same invocation, different responses, different conflicts: a
     successful Insert conflicts with Member/False but not Member/True. *)
  check_bool "insert-ok vs member-false" true
    (Dir.conflict_hybrid (Dir.insert_ok 1) (Dir.member_false 1));
  check_bool "insert-ok vs member-true" false
    (Dir.conflict_hybrid (Dir.insert_ok 1) (Dir.member_true 1));
  check_bool "remove-ok vs member-true" true
    (Dir.conflict_hybrid (Dir.remove_ok 1) (Dir.member_true 1));
  check_bool "different keys never" false
    (Dir.conflict_hybrid (Dir.insert_ok 1) (Dir.member_false 2));
  check_bool "duplicate insert vs successful remove" true
    (Dir.conflict_hybrid (Dir.insert_dup 1) (Dir.remove_ok 1));
  check_bool "duplicate insert vs insert" false
    (Dir.conflict_hybrid (Dir.insert_dup 1) (Dir.insert_ok 1))

(* ---------------- protocol runs (Theorem 16 on extensions) ----------- *)

module GDir = Histgen.Make (Dir)
module GLg = Histgen.Make (Lg)
module GCn = Histgen.Make (Cn)
module AtDir = Model.Atomicity.Make (Dir)
module AtLg = Model.Atomicity.Make (Lg)
module AtCn = Model.Atomicity.Make (Cn)

let thm16 ~name generate checker conflict =
  QCheck2.Test.make ~name ~count:100
    QCheck2.Gen.(0 -- 1_000_000)
    (fun seed ->
      let rand = Random.State.make [| seed |] in
      checker (generate rand ~conflict))

let prop_thm16_directory =
  thm16 ~name:"Thm 16: directory"
    (fun rand ~conflict -> GDir.generate rand ~conflict)
    AtDir.online_hybrid_atomic Dir.conflict_hybrid

let prop_thm16_log =
  thm16 ~name:"Thm 16: log"
    (fun rand ~conflict -> GLg.generate rand ~conflict)
    AtLg.online_hybrid_atomic Lg.conflict_hybrid

let prop_thm16_counter =
  thm16 ~name:"Thm 16: counter"
    (fun rand ~conflict -> GCn.generate rand ~conflict)
    AtCn.online_hybrid_atomic Cn.conflict_hybrid

(* ---------------- multicore runs ---------------- *)

module CnObj = Runtime.Atomic_obj.Make (Cn)
module DirObj = Runtime.Atomic_obj.Make (Dir)
module LgObj = Runtime.Atomic_obj.Make (Lg)

let test_counter_concurrent_updates () =
  let mgr = Runtime.Manager.create () in
  let c = CnObj.create ~conflict:Cn.conflict_hybrid () in
  let workers =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for _ = 1 to 50 do
              Runtime.Manager.run mgr (fun txn ->
                  ignore (CnObj.invoke c txn (Cn.Inc 2));
                  ignore (CnObj.invoke c txn (Cn.Dec 1)))
            done;
            ignore d))
  in
  List.iter Domain.join workers;
  (match CnObj.committed_states c with
  | [ v ] -> check_int "counter value" (4 * 50 * 1) v
  | _ -> Alcotest.fail "one state");
  let s = CnObj.stats c in
  check_int "updates never conflict" 0 s.CnObj.conflicts

let test_log_concurrent_appends () =
  let mgr = Runtime.Manager.create () in
  let l = LgObj.create ~conflict:Lg.conflict_hybrid () in
  let workers =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for k = 1 to 50 do
              Runtime.Manager.run mgr (fun txn ->
                  ignore (LgObj.invoke l txn (Lg.Append ((100 * d) + k))))
            done))
  in
  List.iter Domain.join workers;
  (match LgObj.committed_states l with
  | [ records ] -> check_int "all records" 200 (List.length records)
  | _ -> Alcotest.fail "one state");
  let s = LgObj.stats l in
  check_int "appends never conflict" 0 s.LgObj.conflicts

let test_directory_concurrent_distinct_keys () =
  let mgr = Runtime.Manager.create () in
  let d = DirObj.create ~conflict:Dir.conflict_hybrid () in
  let workers =
    List.init 4 (fun w ->
        Domain.spawn (fun () ->
            for k = 0 to 24 do
              let key = (100 * w) + k in
              Runtime.Manager.run mgr (fun txn ->
                  match DirObj.invoke d txn (Dir.Insert key) with
                  | Dir.Ok -> ()
                  | _ -> Alcotest.fail "fresh key must insert")
            done))
  in
  List.iter Domain.join workers;
  (match DirObj.committed_states d with
  | [ keys ] -> check_int "all keys present" 100 (List.length keys)
  | _ -> Alcotest.fail "one state");
  let s = DirObj.stats d in
  check_int "distinct keys never conflict" 0 s.DirObj.conflicts

let test_directory_same_key_serializes () =
  let mgr = Runtime.Manager.create () in
  let d = DirObj.create ~conflict:Dir.conflict_hybrid () in
  (* every transaction toggles the same key: inserts and removes race *)
  let successes = Atomic.make 0 in
  let workers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 25 do
              Runtime.Manager.run mgr (fun txn ->
                  match DirObj.invoke d txn (Dir.Insert 7) with
                  | Dir.Ok ->
                    Atomic.incr successes;
                    (match DirObj.invoke d txn (Dir.Remove 7) with
                    | Dir.Ok -> ()
                    | _ -> Alcotest.fail "own insert must be removable")
                  | Dir.Duplicate -> ()
                  | _ -> Alcotest.fail "unexpected response")
            done))
  in
  List.iter Domain.join workers;
  match DirObj.committed_states d with
  | [ [] ] -> check_bool "some inserts succeeded" true (Atomic.get successes > 0)
  | _ -> Alcotest.fail "directory must end empty"

let () =
  Alcotest.run "extensions"
    [
      ( "derivations",
        [
          Alcotest.test_case "counter" `Quick test_counter_derived;
          Alcotest.test_case "counter commutativity" `Quick
            test_counter_commutativity_coincides;
          Alcotest.test_case "directory" `Quick test_directory_derived;
          Alcotest.test_case "directory commutativity" `Quick
            test_directory_commutativity_coincides;
          Alcotest.test_case "directory depth stability" `Slow
            test_directory_depth_stability;
          Alcotest.test_case "log" `Quick test_log_derived;
          Alcotest.test_case "log commutativity strictly coarser" `Quick
            test_log_commutativity_strictly_coarser;
          Alcotest.test_case "bounded buffer: puts conflict" `Quick
            test_bounded_buffer_derived;
        ] );
      ( "result-dependence",
        [ Alcotest.test_case "directory modes" `Quick test_directory_result_dependence ]
      );
      ( "theorem-16",
        List.map QCheck_alcotest.to_alcotest
          [ prop_thm16_directory; prop_thm16_log; prop_thm16_counter ] );
      ( "multicore",
        [
          Alcotest.test_case "counter updates" `Quick test_counter_concurrent_updates;
          Alcotest.test_case "log appends" `Quick test_log_concurrent_appends;
          Alcotest.test_case "directory distinct keys" `Quick
            test_directory_concurrent_distinct_keys;
          Alcotest.test_case "directory same key" `Quick
            test_directory_same_key_serializes;
        ] );
    ]
