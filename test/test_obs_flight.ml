(* The binary flight recorder: fixed-width record encode/decode for
   every span code (and arbitrary field values, via qcheck), ring wrap
   with honest lost accounting, the CRC-framed file format's torn-tail
   tolerance, and a multi-domain interleave reassembling into
   well-nested spans through the Profile aggregator. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tmp name =
  let f = Filename.temp_file ("hcc-flight-" ^ name) ".bin" in
  at_exit (fun () -> try Sys.remove f with Sys_error _ -> ());
  f

(* Arm the recorder for one test body, disarm and reset after.  Each
   test owns the process-global recorder state (rings, sink, lost
   counter); Alcotest runs cases sequentially, so this is sound. *)
let recording ?(level = 1) f () =
  Obs.Control.set_enabled true;
  Obs.Flight.reset_for_tests ();
  Obs.Flight.set_level level;
  Fun.protect ~finally:(fun () -> Obs.Flight.set_level 0) f

let read_whole path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ---- every span code round-trips through the file ---- *)

let test_all_codes_roundtrip =
  recording (fun () ->
      let path = tmp "codes" in
      let seen = ref [] in
      let flight =
        Obs.Flight.start ~period_ms:10_000 ~path
          ~observer:(fun r -> seen := r :: !seen)
          ()
      in
      List.iteri
        (fun i code ->
          Obs.Flight.emit ~code ~aux16:(i * 3) ~aux32:(0xbeef + i)
            ~txn:(1_000_000 + i) ~arg:(i * 1_000_000_007))
        Obs.Span.all_codes;
      Obs.Flight.stop flight;
      let records, _meta, tail = Obs.Flight.read_file path in
      check_bool "tail clean" true (tail = Obs.Flight.Clean);
      check_int "one record per code" (List.length Obs.Span.all_codes)
        (List.length records);
      check_int "observer saw the same records" (List.length records)
        (List.length !seen);
      List.iteri
        (fun i (r : Obs.Flight.record) ->
          let code = List.nth Obs.Span.all_codes i in
          check_int (Obs.Span.name code ^ ": code") code r.code;
          check_int (Obs.Span.name code ^ ": aux16") (i * 3) r.aux16;
          check_int (Obs.Span.name code ^ ": aux32") (0xbeef + i) r.aux32;
          check_int (Obs.Span.name code ^ ": txn") (1_000_000 + i) r.txn;
          check_int (Obs.Span.name code ^ ": arg") (i * 1_000_000_007) r.arg;
          check_bool (Obs.Span.name code ^ ": time stamped") true (r.time > 0))
        records)

(* Arbitrary field values survive the 32-byte encoding: aux16 is 16-bit,
   aux32 32-bit, txn/arg any non-negative OCaml int (63-bit). *)
let qcheck_field_roundtrip =
  let gen =
    QCheck.make
      ~print:(fun l ->
        String.concat ";"
          (List.map (fun (c, a16, a32, t, a) -> Printf.sprintf "(%d,%d,%d,%d,%d)" c a16 a32 t a) l))
      QCheck.Gen.(
        list_size (int_range 1 50)
          (map
             (fun (c, a16, a32, t, a) -> (c, a16, a32, t land max_int, a land max_int))
             (tup5 (int_range 1 255) (int_range 0 0xffff) (int_range 0 0xffffffff) int int)))
  in
  QCheck.Test.make ~count:30 ~name:"flight record field round-trip" gen (fun recs ->
      (recording (fun () ->
           let path = tmp "qcheck" in
           let flight = Obs.Flight.start ~period_ms:10_000 ~path () in
           List.iter
             (fun (code, aux16, aux32, txn, arg) ->
               Obs.Flight.emit ~code ~aux16 ~aux32 ~txn ~arg)
             recs;
           Obs.Flight.stop flight;
           let got, _meta, tail = Obs.Flight.read_file path in
           tail = Obs.Flight.Clean
           && List.map
                (fun (r : Obs.Flight.record) -> (r.code, r.aux16, r.aux32, r.txn, r.arg))
                got
              = recs))
        ())

(* ---- ring wrap: newest window survives, the rest is counted lost ---- *)

let test_wrap_lost =
  recording (fun () ->
      Obs.Flight.set_capacity 64;
      Fun.protect
        ~finally:(fun () -> Obs.Flight.set_capacity (1 lsl 14))
        (fun () ->
          (* A fresh domain gets a fresh ring at the small capacity. *)
          let d =
            Domain.spawn (fun () ->
                for i = 0 to 199 do
                  Obs.Flight.emit ~code:Obs.Span.c_op ~aux16:0 ~aux32:0 ~txn:i ~arg:i
                done)
          in
          Domain.join d;
          let seen = ref [] in
          let flight =
            Obs.Flight.start ~period_ms:10_000
              ~observer:(fun r -> seen := r :: !seen)
              ()
          in
          Obs.Flight.stop flight;
          let kept =
            List.rev !seen
            |> List.filter (fun (r : Obs.Flight.record) -> r.code = Obs.Span.c_op)
          in
          (* The drain conservatively also drops the record whose slot
             the writer's next (still unpublished) record may be
             dirtying, so a lapped ring surfaces capacity - 1. *)
          check_int "ring keeps the newest capacity-1 records" 63 (List.length kept);
          check_bool "survivors are the newest window, in emit order" true
            (List.map (fun (r : Obs.Flight.record) -> r.txn) kept
            = List.init 63 (fun i -> 137 + i));
          check_int "every dropped record is counted lost" 137 (Obs.Flight.lost ())))

(* ---- torn tails: decode survives truncation and corruption ---- *)

let test_torn_tail =
  recording (fun () ->
      let path = tmp "torn" in
      let flight = Obs.Flight.start ~period_ms:10_000 ~path () in
      for i = 0 to 9 do
        Obs.Flight.emit ~code:Obs.Span.c_begin ~aux16:0 ~aux32:0 ~txn:i ~arg:0
      done;
      (* Force the records into their own chunk ahead of the metadata
         chunk [stop] appends. *)
      Obs.Flight.flush_once ();
      Obs.Flight.stop flight;
      let whole = read_whole path in
      let clean, _, tail = Obs.Flight.parse whole in
      check_bool "intact file parses clean" true (tail = Obs.Flight.Clean);
      check_int "intact file has all records" 10 (List.length clean);
      (* Flip one byte inside the final (metadata) chunk: its CRC fails,
         the records chunk before it survives. *)
      let corrupted = Bytes.of_string whole in
      let p = String.length whole - 3 in
      Bytes.set corrupted p (Char.chr (Char.code whole.[p] lxor 0xff));
      let records, _, tail = Obs.Flight.parse (Bytes.to_string corrupted) in
      check_int "records before the corrupt chunk survive" 10 (List.length records);
      check_bool "corruption is reported as a torn tail" true
        (match tail with Obs.Flight.Torn _ -> true | Obs.Flight.Clean -> false);
      (* Truncation mid-chunk (what kill -9 leaves): same discipline. *)
      let records, _, tail =
        Obs.Flight.parse (String.sub whole 0 (String.length whole - 7))
      in
      check_int "records before the truncated chunk survive" 10 (List.length records);
      check_bool "truncation is a torn tail" true
        (match tail with Obs.Flight.Torn _ -> true | Obs.Flight.Clean -> false);
      (* Header-only and garbage images. *)
      let none, _, tail = Obs.Flight.parse "HCCFLT01" in
      check_bool "bare header is clean and empty" true
        (none = [] && tail = Obs.Flight.Clean);
      let none, _, tail = Obs.Flight.parse "not a flight file" in
      check_bool "garbage is torn at offset 0" true
        (none = [] && tail = Obs.Flight.Torn 0))

(* ---- multi-domain interleave reassembles into well-nested spans ---- *)

let test_multidomain_spans =
  recording (fun () ->
      let agg = Obs.Profile.create () in
      let flight = Obs.Flight.start ~period_ms:5 ~observer:(Obs.Profile.feed agg) () in
      let worker d () =
        for i = 0 to 49 do
          let txn = (d * 1000) + i in
          Obs.Span.txn_begin ~txn ~shard:d;
          Obs.Span.lock_wait ~txn ~obj:0;
          Obs.Span.lock_resume ~txn ~obj:0;
          if i mod 10 = 9 then Obs.Span.txn_abort ~txn
          else Obs.Span.txn_commit ~txn ~ts:i
        done
      in
      let doms = Array.init 4 (fun d -> Domain.spawn (worker d)) in
      Array.iter Domain.join doms;
      Obs.Flight.stop flight;
      let r = Obs.Profile.report agg in
      check_int "every committed span closed" 180 r.Obs.Profile.r_spans;
      check_int "every aborted span closed" 20 r.Obs.Profile.r_aborts;
      check_int "no dangling spans" 0 r.Obs.Profile.r_open;
      check_int "no records lost" 0 r.Obs.Profile.r_lost;
      let lock_wait = List.assoc "lock_wait" r.Obs.Profile.r_phases in
      check_int "one lock-wait observation per committed span" 180
        lock_wait.Obs.Profile.st_count)

let () =
  Alcotest.run "obs_flight"
    [
      ( "encoding",
        [
          Alcotest.test_case "every span code round-trips" `Quick
            test_all_codes_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_field_roundtrip;
        ] );
      ( "ring",
        [ Alcotest.test_case "wrap keeps newest, counts lost" `Quick test_wrap_lost ] );
      ( "file",
        [ Alcotest.test_case "torn-tail tolerance" `Quick test_torn_tail ] );
      ( "spans",
        [
          Alcotest.test_case "multi-domain interleave well-nested" `Quick
            test_multidomain_spans;
        ] );
    ]
