(* Tests for Model.History: well-formedness (Section 2), restriction,
   OpSeq, serialization, and the precedes/TS/Known orders (Section 3). *)

module Q = Adt.Fifo_queue
module H = Model.History.Make (Q)

let p = Model.Txn.make ~label:"P" 1
let q = Model.Txn.make ~label:"Q" 2
let r = Model.Txn.make ~label:"R" 3

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let well_formed h = match H.well_formed h with Ok () -> true | Error _ -> false

(* The paper's Section 3.2 history. *)
let paper_history : H.t =
  [
    H.Invoke (p, Q.Enq 1);
    H.Respond (p, Q.Ok);
    H.Invoke (q, Q.Enq 2);
    H.Respond (q, Q.Ok);
    H.Commit (p, 2);
    H.Commit (q, 1);
    H.Invoke (r, Q.Deq);
    H.Respond (r, Q.Val 2);
    H.Invoke (r, Q.Deq);
    H.Respond (r, Q.Val 1);
    H.Commit (r, 5);
  ]

(* ---------------- well-formedness ---------------- *)

let test_wf_paper_history () = check_bool "paper history" true (well_formed paper_history)
let test_wf_empty () = check_bool "empty" true (well_formed [])

let test_wf_double_invoke () =
  check_bool "invoke while pending" false
    (well_formed [ H.Invoke (p, Q.Enq 1); H.Invoke (p, Q.Enq 2) ])

let test_wf_orphan_response () =
  check_bool "response without invocation" false (well_formed [ H.Respond (p, Q.Ok) ])

let test_wf_commit_and_abort () =
  check_bool "commit then abort" false
    (well_formed
       [ H.Invoke (p, Q.Enq 1); H.Respond (p, Q.Ok); H.Commit (p, 1); H.Abort p ]);
  check_bool "abort then commit" false
    (well_formed
       [ H.Invoke (p, Q.Enq 1); H.Respond (p, Q.Ok); H.Abort p; H.Commit (p, 1) ])

let test_wf_commit_with_pending () =
  check_bool "commit while invocation pending" false
    (well_formed [ H.Invoke (p, Q.Enq 1); H.Commit (p, 1) ])

let test_wf_ops_after_commit () =
  check_bool "invoke after commit" false
    (well_formed
       [ H.Invoke (p, Q.Enq 1); H.Respond (p, Q.Ok); H.Commit (p, 1); H.Invoke (p, Q.Deq) ])

let test_wf_aborted_keeps_invoking () =
  (* The model places few restrictions on aborted transactions. *)
  check_bool "invoke after abort ok" true
    (well_formed
       [ H.Invoke (p, Q.Enq 1); H.Respond (p, Q.Ok); H.Abort p; H.Invoke (p, Q.Deq) ])

let test_wf_duplicate_timestamps () =
  check_bool "two txns, same timestamp" false
    (well_formed
       [
         H.Invoke (p, Q.Enq 1);
         H.Respond (p, Q.Ok);
         H.Commit (p, 1);
         H.Invoke (q, Q.Enq 2);
         H.Respond (q, Q.Ok);
         H.Commit (q, 1);
       ])

let test_wf_inconsistent_timestamps () =
  check_bool "one txn, two timestamps" false
    (well_formed
       [ H.Invoke (p, Q.Enq 1); H.Respond (p, Q.Ok); H.Commit (p, 1); H.Commit (p, 2) ]);
  check_bool "one txn, repeated same timestamp ok" true
    (well_formed
       [ H.Invoke (p, Q.Enq 1); H.Respond (p, Q.Ok); H.Commit (p, 1); H.Commit (p, 1) ])

(* ---------------- projections ---------------- *)

let test_transactions_order () =
  Alcotest.(check (list string))
    "first-appearance order" [ "P"; "Q"; "R" ]
    (List.map Model.Txn.label (H.transactions paper_history))

let test_restrict () =
  check_int "P's events" 3 (List.length (H.restrict paper_history p));
  check_int "R's events" 5 (List.length (H.restrict paper_history r));
  check_int "restrict_set P,Q" 6 (List.length (H.restrict_set paper_history [ p; q ]))

let test_committed_aborted () =
  Alcotest.(check (list string))
    "committed" [ "P"; "Q"; "R" ]
    (List.map Model.Txn.label (H.committed paper_history));
  check_int "aborted none" 0 (List.length (H.aborted paper_history));
  let h = [ H.Invoke (p, Q.Enq 1); H.Abort p ] in
  Alcotest.(check (list string)) "aborted" [ "P" ] (List.map Model.Txn.label (H.aborted h));
  check_int "active after abort" 0 (List.length (H.active h))

let test_active () =
  let h = [ H.Invoke (p, Q.Enq 1); H.Respond (p, Q.Ok); H.Invoke (q, Q.Enq 2) ] in
  Alcotest.(check (list string))
    "both active" [ "P"; "Q" ]
    (List.map Model.Txn.label (H.active h))

let test_permanent () =
  let h =
    [
      H.Invoke (p, Q.Enq 1);
      H.Respond (p, Q.Ok);
      H.Invoke (q, Q.Enq 2);
      H.Respond (q, Q.Ok);
      H.Commit (p, 1);
      H.Abort q;
    ]
  in
  check_int "only P's events survive" 3 (List.length (H.permanent h))

let test_op_seq () =
  check_int "R's ops" 2 (List.length (H.op_seq_txn paper_history r));
  (* pending invocations are dropped *)
  let h = [ H.Invoke (p, Q.Enq 1); H.Respond (p, Q.Ok); H.Invoke (p, Q.Deq) ] in
  check_int "pending dropped" 1 (List.length (H.op_seq_txn h p))

let test_serial () =
  let s = H.serial paper_history [ q; p; r ] in
  check_int "same length" (List.length paper_history) (List.length s);
  Alcotest.(check (list string))
    "grouped" [ "Q"; "P"; "R" ]
    (List.map Model.Txn.label (H.transactions s))

let test_timestamp_of () =
  Alcotest.(check (option int)) "P ts" (Some 2) (H.timestamp_of paper_history p);
  Alcotest.(check (option int)) "Q ts" (Some 1) (H.timestamp_of paper_history q);
  Alcotest.(check (option int))
    "missing" None
    (H.timestamp_of paper_history (Model.Txn.make 99))

(* ---------------- orders ---------------- *)

let test_precedes () =
  (* R's dequeues respond after P and Q commit. *)
  check_bool "P precedes R" true (H.precedes paper_history p r);
  check_bool "Q precedes R" true (H.precedes paper_history q r);
  check_bool "P does not precede Q" false (H.precedes paper_history p q);
  check_bool "R does not precede P" false (H.precedes paper_history r p);
  check_bool "irreflexive" false (H.precedes paper_history p p)

let test_ts_lt () =
  check_bool "Q before P by timestamp" true (H.ts_lt paper_history q p);
  check_bool "P not before Q" false (H.ts_lt paper_history p q);
  check_bool "active txn unordered" false (H.ts_lt [ H.Invoke (p, Q.Enq 1) ] p q)

let test_known () =
  check_bool "known includes ts" true (H.known paper_history q p);
  check_bool "known includes precedes" true (H.known paper_history p r)

let test_timestamps_respect_precedes () =
  check_bool "paper history satisfies the constraint" true
    (H.timestamps_respect_precedes paper_history);
  (* violate it: R dequeues after P's commit but commits with smaller ts *)
  let bad =
    [
      H.Invoke (p, Q.Enq 1);
      H.Respond (p, Q.Ok);
      H.Commit (p, 10);
      H.Invoke (r, Q.Deq);
      H.Respond (r, Q.Val 1);
      H.Commit (r, 5);
    ]
  in
  check_bool "violation detected" false (H.timestamps_respect_precedes bad)

let () =
  Alcotest.run "history"
    [
      ( "well-formedness",
        [
          Alcotest.test_case "paper history" `Quick test_wf_paper_history;
          Alcotest.test_case "empty" `Quick test_wf_empty;
          Alcotest.test_case "double invoke" `Quick test_wf_double_invoke;
          Alcotest.test_case "orphan response" `Quick test_wf_orphan_response;
          Alcotest.test_case "commit and abort" `Quick test_wf_commit_and_abort;
          Alcotest.test_case "commit with pending" `Quick test_wf_commit_with_pending;
          Alcotest.test_case "ops after commit" `Quick test_wf_ops_after_commit;
          Alcotest.test_case "aborted keeps invoking" `Quick test_wf_aborted_keeps_invoking;
          Alcotest.test_case "duplicate timestamps" `Quick test_wf_duplicate_timestamps;
          Alcotest.test_case "inconsistent timestamps" `Quick
            test_wf_inconsistent_timestamps;
        ] );
      ( "projections",
        [
          Alcotest.test_case "transaction order" `Quick test_transactions_order;
          Alcotest.test_case "restrict" `Quick test_restrict;
          Alcotest.test_case "committed/aborted" `Quick test_committed_aborted;
          Alcotest.test_case "active" `Quick test_active;
          Alcotest.test_case "permanent" `Quick test_permanent;
          Alcotest.test_case "op_seq" `Quick test_op_seq;
          Alcotest.test_case "serial" `Quick test_serial;
          Alcotest.test_case "timestamp_of" `Quick test_timestamp_of;
        ] );
      ( "orders",
        [
          Alcotest.test_case "precedes" `Quick test_precedes;
          Alcotest.test_case "TS" `Quick test_ts_lt;
          Alcotest.test_case "Known" `Quick test_known;
          Alcotest.test_case "timestamp constraint" `Quick test_timestamps_respect_precedes;
        ] );
    ]
