(* Tests for the LOCK protocol machine (paper Section 5).

   The centerpiece is the randomized Theorem 16 check: every history the
   machine accepts under a dependency-relation conflict is online hybrid
   atomic (verified by the independent brute-force checker in
   Model.Atomicity), across all four ADTs and all shipped conflict
   relations.  The Theorem 17 converse is reproduced concretely: a
   non-dependency conflict relation admits a non-hybrid-atomic history. *)

module Q = Adt.Fifo_queue
module A = Adt.Account
module SQ = Adt.Semiqueue
module L = Hybrid.Lock_machine.Make (Q)
module LA = Hybrid.Lock_machine.Make (A)
module H = L.H
module At = Model.Atomicity.Make (Q)

let p = Model.Txn.make ~label:"P" 1
let q = Model.Txn.make ~label:"Q" 2
let r = Model.Txn.make ~label:"R" 3

let check_bool = Alcotest.(check bool)

let paper_history : H.t =
  [
    H.Invoke (p, Q.Enq 1);
    H.Respond (p, Q.Ok);
    H.Invoke (q, Q.Enq 2);
    H.Respond (q, Q.Ok);
    H.Commit (p, 2);
    H.Commit (q, 1);
    H.Invoke (r, Q.Deq);
    H.Respond (r, Q.Val 2);
    H.Invoke (r, Q.Deq);
    H.Respond (r, Q.Val 1);
    H.Commit (r, 5);
  ]

(* ---------------- acceptance ---------------- *)

let test_paper_history_accepted () =
  check_bool "hybrid accepts" true (L.accepts ~conflict:Q.conflict_hybrid paper_history)

let test_paper_history_rejected_by_commutativity () =
  (* Under commutativity-based conflicts, Q's Enq 2 conflicts with P's
     held Enq 1 lock. *)
  match L.run ~conflict:Q.conflict_commutativity paper_history with
  | Ok _ -> Alcotest.fail "expected refusal"
  | Error (event, refusal) -> (
    match (event, refusal) with
    | H.Respond (t, Q.Ok), L.Lock_conflict (holder, _) ->
      check_bool "Q refused" true (Model.Txn.equal t q);
      check_bool "P holds the lock" true (Model.Txn.equal holder p)
    | _ -> Alcotest.fail "wrong refusal")

let test_rw_rejects_even_earlier () =
  check_bool "2PL-RW rejects" false (L.accepts ~conflict:Q.conflict_rw paper_history)

(* ---------------- refusal reasons ---------------- *)

let test_refusal_no_pending () =
  let m = L.create ~conflict:Q.conflict_hybrid in
  match L.step m (H.Respond (p, Q.Ok)) with
  | Error L.No_pending -> ()
  | _ -> Alcotest.fail "expected No_pending"

let test_refusal_illegal_in_view () =
  let m = L.create ~conflict:Q.conflict_hybrid in
  let m = Result.get_ok (L.step m (H.Invoke (p, Q.Deq))) in
  (* Deq on an empty queue has no legal response at all; a made-up value
     is illegal in the view. *)
  match L.step m (H.Respond (p, Q.Val 1)) with
  | Error L.Illegal_in_view -> ()
  | _ -> Alcotest.fail "expected Illegal_in_view"

let test_refusal_already_completed () =
  let m = L.create ~conflict:Q.conflict_hybrid in
  let m = Result.get_ok (L.step m (H.Invoke (p, Q.Enq 1))) in
  let m = Result.get_ok (L.step m (H.Abort p)) in
  let m = Result.get_ok (L.step m (H.Invoke (p, Q.Enq 1))) in
  match L.step m (H.Respond (p, Q.Ok)) with
  | Error L.Already_completed -> ()
  | _ -> Alcotest.fail "expected Already_completed"

let test_refusal_lock_conflict () =
  let m = L.create ~conflict:Q.conflict_rw in
  let m = Result.get_ok (L.step m (H.Invoke (p, Q.Enq 1))) in
  let m = Result.get_ok (L.step m (H.Respond (p, Q.Ok))) in
  let m = Result.get_ok (L.step m (H.Invoke (q, Q.Enq 2))) in
  match L.step m (H.Respond (q, Q.Ok)) with
  | Error (L.Lock_conflict (holder, op)) ->
    check_bool "holder is P" true (Model.Txn.equal holder p);
    check_bool "op is P's enq" true (H.Seq.equal_op op (Q.enq 1))
  | _ -> Alcotest.fail "expected Lock_conflict"

(* ---------------- views and state observers ---------------- *)

let test_view_includes_committed_in_ts_order () =
  let m = L.create ~conflict:Q.conflict_hybrid in
  let feed m e = Result.get_ok (L.step m e) in
  let m = feed m (H.Invoke (p, Q.Enq 1)) in
  let m = feed m (H.Respond (p, Q.Ok)) in
  let m = feed m (H.Invoke (q, Q.Enq 2)) in
  let m = feed m (H.Respond (q, Q.Ok)) in
  let m = feed m (H.Commit (p, 2)) in
  let m = feed m (H.Commit (q, 1)) in
  (* Committed state: Q (ts 1) then P (ts 2). *)
  Alcotest.(check bool)
    "permanent in ts order" true
    (List.for_all2 H.Seq.equal_op (L.permanent_seq m) [ Q.enq 2; Q.enq 1 ]);
  (* R's view is the committed state (it has no intentions). *)
  let m = feed m (H.Invoke (r, Q.Deq)) in
  Alcotest.(check (list string))
    "available responses follow ts order" [ "2" ]
    (List.map (Format.asprintf "%a" Q.pp_res) (L.available_responses m r))

let test_view_appends_own_intentions () =
  let m = L.create ~conflict:Q.conflict_hybrid in
  let feed m e = Result.get_ok (L.step m e) in
  let m = feed m (H.Invoke (p, Q.Enq 1)) in
  let m = feed m (H.Respond (p, Q.Ok)) in
  let m = feed m (H.Invoke (p, Q.Deq)) in
  (* P sees its own uncommitted enqueue. *)
  Alcotest.(check int) "one response" 1 (List.length (L.available_responses m p));
  check_bool "own view" true
    (List.for_all2 H.Seq.equal_op (L.view m p) [ Q.enq 1 ])

let test_active_txns () =
  let m = L.create ~conflict:Q.conflict_hybrid in
  let feed m e = Result.get_ok (L.step m e) in
  let m = feed m (H.Invoke (p, Q.Enq 1)) in
  let m = feed m (H.Respond (p, Q.Ok)) in
  let m = feed m (H.Invoke (q, Q.Enq 2)) in
  Alcotest.(check int) "two active" 2 (List.length (L.active_txns m));
  let m = feed m (H.Commit (p, 1)) in
  Alcotest.(check int) "one active" 1 (List.length (L.active_txns m))

(* ---------------- Theorem 17 ---------------- *)

let test_theorem_17_scenario () =
  (* With the empty conflict relation (not a dependency relation), LOCK
     accepts a history that is not hybrid atomic: R dequeues its own
     enqueue while Q's earlier-timestamped Enq 2 is in flight. *)
  let none _ _ = false in
  let h =
    [
      H.Invoke (q, Q.Enq 2);
      H.Respond (q, Q.Ok);
      H.Invoke (r, Q.Enq 1);
      H.Respond (r, Q.Ok);
      H.Invoke (r, Q.Deq);
      H.Respond (r, Q.Val 1);
      H.Commit (q, 1);
      H.Commit (r, 2);
    ]
  in
  check_bool "accepted by LOCK(no-conflicts)" true (L.accepts ~conflict:none h);
  check_bool "but not hybrid atomic" false (At.hybrid_atomic h);
  check_bool "and rejected by the real hybrid relation" false
    (L.accepts ~conflict:Q.conflict_hybrid h)

(* ---------------- Theorem 16, randomized ---------------- *)

module GQ = Histgen.Make (Q)
module GA = Histgen.Make (A)
module GS = Histgen.Make (SQ)
module AtA = Model.Atomicity.Make (A)
module AtS = Model.Atomicity.Make (SQ)

let theorem_16_property ~name generate online_hybrid_atomic conflict =
  QCheck2.Test.make ~name ~count:150
    QCheck2.Gen.(0 -- 1_000_000)
    (fun seed ->
      let rand = Random.State.make [| seed |] in
      let h = generate rand ~conflict in
      online_hybrid_atomic h)

let prop_theorem_16_queue_hybrid =
  theorem_16_property ~name:"Thm 16: queue + fig 4-2"
    (fun rand ~conflict -> GQ.generate rand ~conflict)
    At.online_hybrid_atomic Q.conflict_hybrid

let prop_theorem_16_queue_fig_4_3 =
  theorem_16_property ~name:"Thm 16: queue + fig 4-3"
    (fun rand ~conflict -> GQ.generate rand ~conflict)
    At.online_hybrid_atomic Q.conflict_fig_4_3

let prop_theorem_16_queue_rw =
  theorem_16_property ~name:"Thm 16: queue + 2PL-RW"
    (fun rand ~conflict -> GQ.generate rand ~conflict)
    At.online_hybrid_atomic Q.conflict_rw

let prop_theorem_16_account_hybrid =
  theorem_16_property ~name:"Thm 16: account + fig 4-5"
    (fun rand ~conflict -> GA.generate rand ~conflict)
    AtA.online_hybrid_atomic A.conflict_hybrid

let prop_theorem_16_account_commut =
  theorem_16_property ~name:"Thm 16: account + fig 7-1"
    (fun rand ~conflict -> GA.generate rand ~conflict)
    AtA.online_hybrid_atomic A.conflict_commutativity

let prop_theorem_16_semiqueue =
  theorem_16_property ~name:"Thm 16: semiqueue + fig 4-4"
    (fun rand ~conflict -> GS.generate rand ~conflict)
    AtS.online_hybrid_atomic SQ.conflict_hybrid

(* Sanity for the generator itself: histories are well-formed and
   respect the timestamp-generation constraint. *)
let prop_generator_well_formed =
  QCheck2.Test.make ~name:"generator produces well-formed histories" ~count:200
    QCheck2.Gen.(0 -- 1_000_000)
    (fun seed ->
      let rand = Random.State.make [| seed |] in
      let h = GQ.generate rand ~conflict:Q.conflict_hybrid in
      (match H.well_formed h with Ok () -> true | Error _ -> false)
      && H.timestamps_respect_precedes h)

(* With the empty conflict relation the generator eventually produces a
   NON-hybrid-atomic history — Theorem 17 witnessed by random search. *)
let test_theorem_17_random_search () =
  let found = ref false in
  let i = ref 0 in
  while (not !found) && !i < 3000 do
    incr i;
    let rand = Random.State.make [| !i |] in
    let h =
      GQ.generate ~config:{ GQ.default with steps = 14 } rand ~conflict:(fun _ _ -> false)
    in
    if not (At.online_hybrid_atomic h) then found := true
  done;
  check_bool "random search finds a violation" true !found

let () =
  Alcotest.run "lock_machine"
    [
      ( "acceptance",
        [
          Alcotest.test_case "paper history accepted (hybrid)" `Quick
            test_paper_history_accepted;
          Alcotest.test_case "rejected by commutativity" `Quick
            test_paper_history_rejected_by_commutativity;
          Alcotest.test_case "rejected by 2PL-RW" `Quick test_rw_rejects_even_earlier;
        ] );
      ( "refusals",
        [
          Alcotest.test_case "no pending" `Quick test_refusal_no_pending;
          Alcotest.test_case "illegal in view" `Quick test_refusal_illegal_in_view;
          Alcotest.test_case "already completed" `Quick test_refusal_already_completed;
          Alcotest.test_case "lock conflict" `Quick test_refusal_lock_conflict;
        ] );
      ( "views",
        [
          Alcotest.test_case "committed state in ts order" `Quick
            test_view_includes_committed_in_ts_order;
          Alcotest.test_case "own intentions visible" `Quick
            test_view_appends_own_intentions;
          Alcotest.test_case "active transactions" `Quick test_active_txns;
        ] );
      ( "theorem-17",
        [
          Alcotest.test_case "constructed scenario" `Quick test_theorem_17_scenario;
          Alcotest.test_case "random search" `Slow test_theorem_17_random_search;
        ] );
      ( "theorem-16",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_theorem_16_queue_hybrid;
            prop_theorem_16_queue_fig_4_3;
            prop_theorem_16_queue_rw;
            prop_theorem_16_account_hybrid;
            prop_theorem_16_account_commut;
            prop_theorem_16_semiqueue;
            prop_generator_well_formed;
          ] );
    ]
