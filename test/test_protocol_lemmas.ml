(* The remaining lemmas of the paper with observable content, as
   randomized properties over histories generated through the LOCK
   machine (Lemmas 4 and 7 live in test_views.ml):

   - Lemma 2: online hybrid atomicity implies hybrid atomicity.
   - Lemma 13: active transactions never hold conflicting operations.
   - Lemma 19: a transaction's recorded lower bound really is a lower
     bound — if bound(R) >= committed(P)'s timestamp, then (P, R) is in
     Known(H). *)

module Q = Adt.Fifo_queue
module L = Hybrid.Lock_machine.Make (Q)
module H = L.H
module At = Model.Atomicity.Make (Q)
module G = Histgen.Make (Q)

let gen_seed = QCheck2.Gen.(0 -- 1_000_000)

let history_of seed conflict =
  let rand = Random.State.make [| seed |] in
  G.generate rand ~conflict

let prop_lemma_2 =
  QCheck2.Test.make ~name:"Lemma 2: online hybrid atomic => hybrid atomic" ~count:200
    gen_seed (fun seed ->
      let h = history_of seed Q.conflict_hybrid in
      (not (At.online_hybrid_atomic h)) || At.hybrid_atomic h)

let prop_lemma_13 =
  QCheck2.Test.make
    ~name:"Lemma 13: active transactions hold no conflicting operations" ~count:200
    gen_seed
    (fun seed ->
      let h = history_of seed Q.conflict_hybrid in
      match L.run ~conflict:Q.conflict_hybrid h with
      | Error _ -> false
      | Ok m ->
        let active = L.active_txns m in
        List.for_all
          (fun p ->
            List.for_all
              (fun q ->
                Model.Txn.equal p q
                || List.for_all
                     (fun op_p ->
                       List.for_all
                         (fun op_q -> not (Q.conflict_hybrid op_p op_q))
                         (L.intentions m q))
                     (L.intentions m p))
              active)
          active)

(* Lemma 19's operational content (its literal Known-based statement
   counts an invocation as establishing precedes, which the Section 3.3
   definition does not): a lower bound recorded for an active
   transaction is sound — if the transaction later commits, its
   timestamp exceeds every bound it ever carried.  This is exactly what
   compaction safety needs. *)
let prop_lemma_19 =
  QCheck2.Test.make ~name:"Lemma 19: recorded bounds under-approximate commit timestamps"
    ~count:200 gen_seed (fun seed ->
      let h = history_of seed Q.conflict_hybrid in
      (* replay, recording the largest bound each transaction carries *)
      let max_bound : (int, Model.Timestamp.t) Hashtbl.t = Hashtbl.create 8 in
      let rec go m = function
        | [] -> true
        | e :: rest -> (
          match L.step m e with
          | Error _ -> false
          | Ok m' ->
            List.iter
              (fun t ->
                match L.bound m' t with
                | Some (Hybrid.Xts.Fin b) -> (
                  let id = Model.Txn.id t in
                  match Hashtbl.find_opt max_bound id with
                  | Some b' when b' >= b -> ()
                  | _ -> Hashtbl.replace max_bound id b)
                | Some Hybrid.Xts.Neg_inf | None -> ())
              (H.transactions h);
            go m' rest)
      in
      go (L.create ~conflict:Q.conflict_hybrid) h
      && List.for_all
           (fun t ->
             match (H.timestamp_of h t, Hashtbl.find_opt max_bound (Model.Txn.id t)) with
             | Some ts, Some b -> ts > b
             | (Some _ | None), _ -> true)
           (H.transactions h))

(* And the flip side of Lemma 13 used by Theorem 16's proof (Lemma 14):
   transactions unrelated by precedes have no conflicts across their
   full operation sequences. *)
let prop_lemma_14 =
  QCheck2.Test.make ~name:"Lemma 14: precedes-unrelated transactions never conflict"
    ~count:200 gen_seed (fun seed ->
      let h = history_of seed Q.conflict_hybrid in
      let txns = H.transactions h in
      let not_aborted p = not (List.exists (Model.Txn.equal p) (H.aborted h)) in
      List.for_all
        (fun p ->
          List.for_all
            (fun q ->
              Model.Txn.equal p q
              || (not (not_aborted p && not_aborted q))
              || H.precedes h p q || H.precedes h q p
              || List.for_all
                   (fun op_p ->
                     List.for_all
                       (fun op_q -> not (Q.conflict_hybrid op_p op_q))
                       (H.op_seq_txn h q))
                   (H.op_seq_txn h p))
            txns)
        txns)

let () =
  Alcotest.run "protocol_lemmas"
    [
      ( "lemmas",
        List.map QCheck_alcotest.to_alcotest
          [ prop_lemma_2; prop_lemma_13; prop_lemma_14; prop_lemma_19 ] );
    ]
