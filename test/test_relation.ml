(* Tests for Spec.Relation: materialized binary relations over a finite
   operation universe. *)

let ops = [ 0; 1; 2; 3 ]
let eq = Int.equal
let of_pred = Spec.Relation.of_pred ~eq ~ops

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_holds () =
  let r = of_pred (fun a b -> a < b) in
  check_bool "0<1" true (Spec.Relation.holds r 0 1);
  check_bool "1<0" false (Spec.Relation.holds r 1 0);
  check_bool "diag" false (Spec.Relation.holds r 2 2);
  Alcotest.check_raises "outside universe"
    (Invalid_argument "Relation: operation not in universe") (fun () ->
      ignore (Spec.Relation.holds r 9 0))

let test_pairs_and_size () =
  let r = of_pred (fun a b -> a + 1 = b) in
  check_int "successor pairs" 3 (Spec.Relation.size r);
  Alcotest.(check (list (pair int int)))
    "pairs row-major"
    [ (0, 1); (1, 2); (2, 3) ]
    (Spec.Relation.pairs r)

let test_symmetric_closure () =
  let r = of_pred (fun a b -> a + 1 = b) in
  let s = Spec.Relation.symmetric_closure r in
  check_bool "asymmetric before" false (Spec.Relation.is_symmetric r);
  check_bool "symmetric after" true (Spec.Relation.is_symmetric s);
  check_int "doubled size" 6 (Spec.Relation.size s);
  check_bool "subset of closure" true (Spec.Relation.subset r s)

let test_union () =
  let a = of_pred (fun a b -> a = 0 && b = 1) in
  let b = of_pred (fun a b -> a = 2 && b = 3) in
  let u = Spec.Relation.union a b in
  check_int "union size" 2 (Spec.Relation.size u);
  check_bool "a <= u" true (Spec.Relation.subset a u);
  check_bool "b <= u" true (Spec.Relation.subset b u)

let test_remove () =
  let r = of_pred (fun a b -> a < b) in
  let r' = Spec.Relation.remove r 0 1 in
  check_bool "removed" false (Spec.Relation.holds r' 0 1);
  check_int "one less" (Spec.Relation.size r - 1) (Spec.Relation.size r');
  check_bool "proper subset" true (Spec.Relation.proper_subset r' r)

let test_equal () =
  let a = of_pred (fun a b -> a < b) in
  let b = of_pred (fun a b -> b > a) in
  check_bool "equal predicates" true (Spec.Relation.equal a b);
  check_bool "not equal" false (Spec.Relation.equal a (Spec.Relation.remove a 0 1))

let test_pred_roundtrip () =
  let r = of_pred (fun a b -> a * b = 2 ) in
  let r2 = of_pred (Spec.Relation.pred r) in
  check_bool "materialize(pred(r)) = r" true (Spec.Relation.equal r r2)

(* Properties *)

let rel_gen =
  (* a random relation as a list of pairs over the 4-element universe *)
  QCheck2.Gen.(list_size (0 -- 10) (pair (0 -- 3) (0 -- 3)))

let mk pairs = of_pred (fun a b -> List.mem (a, b) pairs)

let prop_symmetric_closure_idempotent =
  QCheck2.Test.make ~name:"symmetric closure is idempotent" ~count:200 rel_gen
    (fun pairs ->
      let r = Spec.Relation.symmetric_closure (mk pairs) in
      Spec.Relation.equal r (Spec.Relation.symmetric_closure r))

let prop_union_commutative =
  QCheck2.Test.make ~name:"union is commutative" ~count:200
    (QCheck2.Gen.pair rel_gen rel_gen) (fun (p1, p2) ->
      Spec.Relation.equal
        (Spec.Relation.union (mk p1) (mk p2))
        (Spec.Relation.union (mk p2) (mk p1)))

let prop_subset_antisymmetric =
  QCheck2.Test.make ~name:"mutual subset implies equal" ~count:200
    (QCheck2.Gen.pair rel_gen rel_gen) (fun (p1, p2) ->
      let a = mk p1 and b = mk p2 in
      (not (Spec.Relation.subset a b && Spec.Relation.subset b a))
      || Spec.Relation.equal a b)

let () =
  Alcotest.run "relation"
    [
      ( "unit",
        [
          Alcotest.test_case "holds" `Quick test_holds;
          Alcotest.test_case "pairs and size" `Quick test_pairs_and_size;
          Alcotest.test_case "symmetric closure" `Quick test_symmetric_closure;
          Alcotest.test_case "union" `Quick test_union;
          Alcotest.test_case "remove" `Quick test_remove;
          Alcotest.test_case "equal" `Quick test_equal;
          Alcotest.test_case "pred roundtrip" `Quick test_pred_roundtrip;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_symmetric_closure_idempotent;
            prop_union_commutative;
            prop_subset_antisymmetric;
          ] );
    ]
