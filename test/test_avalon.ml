(* Tests for the appendix's Avalon-style Account: unit semantics of the
   affine-intent representation, the mode-based lock table, horizon
   forgetting, and randomized observational equivalence against the
   generic engine instantiated at Adt.Account. *)

module A = Adt.Account
module AObj = Runtime.Atomic_obj.Make (A)
module Av = Runtime.Avalon_account

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------------- sequential semantics ---------------- *)

let test_sequential_ops () =
  let mgr = Runtime.Manager.create () in
  let acc = Av.create () in
  Runtime.Manager.run mgr (fun txn ->
      Av.credit acc txn 10;
      Av.post acc txn 1;
      (* (0+10)*2 = 20 *)
      check_bool "debit ok" true (Av.debit acc txn 5));
  check_int "balance" 15 (Av.committed_balance acc)

let test_overdraft () =
  let mgr = Runtime.Manager.create () in
  let acc = Av.create () in
  Runtime.Manager.run mgr (fun txn -> Av.credit acc txn 3);
  Runtime.Manager.run mgr (fun txn ->
      check_bool "overdraft refused" false (Av.debit acc txn 5));
  check_int "balance unchanged" 3 (Av.committed_balance acc)

let test_intent_composition_order () =
  (* credit then post vs post then credit differ: the affine intent must
     compose in program order. *)
  let mgr = Runtime.Manager.create () in
  let acc1 = Av.create () in
  Runtime.Manager.run mgr (fun txn ->
      Av.credit acc1 txn 10;
      Av.post acc1 txn 1);
  check_int "credit;post = 20" 20 (Av.committed_balance acc1);
  let acc2 = Av.create () in
  Runtime.Manager.run mgr (fun txn ->
      Av.post acc2 txn 1;
      Av.credit acc2 txn 10);
  check_int "post;credit = 10" 10 (Av.committed_balance acc2)

let test_abort_discards_intent () =
  let mgr = Runtime.Manager.create () in
  let acc = Av.create () in
  Runtime.Manager.run mgr (fun txn -> Av.credit acc txn 7);
  (match
     Runtime.Manager.run_once mgr (fun txn ->
         Av.credit acc txn 100;
         Runtime.Manager.abort_in ())
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected abort");
  check_int "aborted credit invisible" 7 (Av.committed_balance acc)

(* ---------------- lock modes ---------------- *)

let test_credit_conflicts_with_overdraft_only () =
  let acc = Av.create () in
  let t1 = Runtime.Txn_rt.fresh () in
  let t2 = Runtime.Txn_rt.fresh () in
  (* t1 observes an overdraft; t2's credit must now conflict. *)
  (match Av.try_debit acc t1 5 with
  | Ok false -> ()
  | _ -> Alcotest.fail "expected overdraft");
  (match Av.try_credit acc t2 3 with
  | Error (`Conflict (Some c)) ->
    check_int "holder is t1" (Runtime.Txn_rt.id t1) c.Runtime.Retry.holder
  | _ -> Alcotest.fail "expected conflict");
  (* posts conflict with the overdraft too *)
  (match Av.try_post acc t2 1 with
  | Error (`Conflict _) -> ()
  | _ -> Alcotest.fail "post should conflict");
  Runtime.Txn_rt.abort t1;
  (* after t1 aborts, the credit goes through *)
  (match Av.try_credit acc t2 3 with
  | Ok () -> ()
  | _ -> Alcotest.fail "credit after release");
  Runtime.Txn_rt.abort t2

let test_debit_conflicts_with_debit () =
  let mgr = Runtime.Manager.create () in
  let acc = Av.create () in
  Runtime.Manager.run mgr (fun txn -> Av.credit acc txn 100);
  let t1 = Runtime.Txn_rt.fresh () in
  let t2 = Runtime.Txn_rt.fresh () in
  (match Av.try_debit acc t1 5 with Ok true -> () | _ -> Alcotest.fail "t1 debit");
  (match Av.try_debit acc t2 5 with
  | Error (`Conflict _) -> ()
  | _ -> Alcotest.fail "t2 must conflict");
  Runtime.Txn_rt.abort t1;
  Runtime.Txn_rt.abort t2

let test_credits_and_posts_concurrent () =
  (* Credits, posts and successful debits all coexist across active
     transactions under the Figure 4-5 conflicts. *)
  let mgr = Runtime.Manager.create () in
  let acc = Av.create () in
  Runtime.Manager.run mgr (fun txn -> Av.credit acc txn 100);
  let t1 = Runtime.Txn_rt.fresh () in
  let t2 = Runtime.Txn_rt.fresh () in
  let t3 = Runtime.Txn_rt.fresh () in
  (match Av.try_credit acc t1 10 with Ok () -> () | _ -> Alcotest.fail "credit");
  (match Av.try_post acc t2 1 with Ok () -> () | _ -> Alcotest.fail "post");
  (match Av.try_debit acc t3 5 with Ok true -> () | _ -> Alcotest.fail "debit");
  List.iter Runtime.Txn_rt.abort [ t1; t2; t3 ]

(* ---------------- forgetting ---------------- *)

let test_forgetting () =
  let mgr = Runtime.Manager.create () in
  let acc = Av.create () in
  for _ = 1 to 20 do
    Runtime.Manager.run mgr (fun txn -> Av.credit acc txn 1)
  done;
  check_int "all intents folded" 0 (Av.remembered_intents acc);
  check_int "folded balance" 20 (Av.forgotten_balance acc)

let test_active_txn_pins_forgetting () =
  let mgr = Runtime.Manager.create () in
  let acc = Av.create () in
  let pin = Runtime.Txn_rt.fresh () in
  (match Av.try_credit acc pin 1 with Ok () -> () | _ -> Alcotest.fail "pin credit");
  for _ = 1 to 5 do
    Runtime.Manager.run mgr (fun txn -> Av.credit acc txn 1)
  done;
  check_int "pinned: nothing folded" 5 (Av.remembered_intents acc);
  Runtime.Txn_rt.abort pin;
  (* the abort triggers forget *)
  check_int "released" 0 (Av.remembered_intents acc);
  check_int "balance" 5 (Av.committed_balance acc)

(* ---------------- equivalence with the generic engine --------------- *)

(* Replay the same randomized single-threaded script against both
   implementations; balances and per-operation outcomes must agree. *)
let prop_equivalent_to_generic =
  let op_gen =
    QCheck2.Gen.(
      oneof
        [
          map (fun n -> `Credit (1 + n)) (0 -- 9);
          map (fun n -> `Post (1 + (n mod 2))) (0 -- 1);
          map (fun n -> `Debit (1 + n)) (0 -- 9);
        ])
  in
  QCheck2.Test.make ~name:"avalon == generic engine on random scripts" ~count:100
    QCheck2.Gen.(list_size (1 -- 8) (list_size (1 -- 4) op_gen))
    (fun script ->
      let mgr1 = Runtime.Manager.create () in
      let mgr2 = Runtime.Manager.create () in
      let av = Av.create () in
      let obj = AObj.create ~conflict:A.conflict_hybrid () in
      let run_txn ops =
        let r1 =
          Runtime.Manager.run mgr1 (fun txn ->
              List.map
                (function
                  | `Credit n ->
                    Av.credit av txn n;
                    true
                  | `Post n ->
                    Av.post av txn n;
                    true
                  | `Debit n -> Av.debit av txn n)
                ops)
        in
        let r2 =
          Runtime.Manager.run mgr2 (fun txn ->
              List.map
                (function
                  | `Credit n -> AObj.invoke obj txn (A.Credit n) = A.Ok
                  | `Post n -> AObj.invoke obj txn (A.Post n) = A.Ok
                  | `Debit n -> AObj.invoke obj txn (A.Debit n) = A.Ok)
                ops)
        in
        r1 = r2
      in
      List.for_all run_txn script
      &&
      match AObj.committed_states obj with
      | [ balance ] -> balance = Av.committed_balance av
      | _ -> false)

let () =
  Alcotest.run "avalon_account"
    [
      ( "sequential",
        [
          Alcotest.test_case "ops" `Quick test_sequential_ops;
          Alcotest.test_case "overdraft" `Quick test_overdraft;
          Alcotest.test_case "intent composition order" `Quick
            test_intent_composition_order;
          Alcotest.test_case "abort discards" `Quick test_abort_discards_intent;
        ] );
      ( "locks",
        [
          Alcotest.test_case "credit vs overdraft" `Quick
            test_credit_conflicts_with_overdraft_only;
          Alcotest.test_case "debit vs debit" `Quick test_debit_conflicts_with_debit;
          Alcotest.test_case "credit/post/debit concurrent" `Quick
            test_credits_and_posts_concurrent;
        ] );
      ( "forgetting",
        [
          Alcotest.test_case "sequential folds" `Quick test_forgetting;
          Alcotest.test_case "active pins" `Quick test_active_txn_pins_forgetting;
        ] );
      ( "equivalence",
        List.map QCheck_alcotest.to_alcotest [ prop_equivalent_to_generic ] );
    ]
