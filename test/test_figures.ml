(* The headline reproduction test: every figure in the paper is
   regenerated from the serial specifications and must equal the paper's
   table cell-for-cell. *)

let cell = Alcotest.testable Spec.Classify.pp_cell Spec.Classify.equal_cell

let test_figure f () =
  let derived = f.Figures.derived () in
  let expected = f.Figures.expected in
  Alcotest.(check (list string))
    "labels" expected.Spec.Classify.labels derived.Spec.Classify.labels;
  List.iteri
    (fun i row_label ->
      List.iteri
        (fun j col_label ->
          Alcotest.check cell
            (Printf.sprintf "(%s, %s)" row_label col_label)
            expected.Spec.Classify.cells.(i).(j)
            derived.Spec.Classify.cells.(i).(j))
        expected.Spec.Classify.labels;
      ignore row_label)
    expected.Spec.Classify.labels

let test_all_ids_unique () =
  let ids = List.map (fun f -> f.Figures.id) Figures.all in
  Alcotest.(check int) "six figures" 6 (List.length ids);
  Alcotest.(check int) "unique" 6 (List.length (List.sort_uniq compare ids))

let test_by_id () =
  Alcotest.(check bool) "4-2 found" true (Figures.by_id "4-2" <> None);
  Alcotest.(check bool) "bogus not found" true (Figures.by_id "9-9" = None)

let test_check_all () =
  List.iter
    (fun f -> Alcotest.(check bool) ("figure " ^ f.Figures.id) true (Figures.check f))
    Figures.all

let test_rendering_roundtrip () =
  (* Tables render without raising and include every label. *)
  List.iter
    (fun f ->
      let s = Format.asprintf "%a" Spec.Classify.pp_table (f.Figures.derived ()) in
      List.iter
        (fun l ->
          Alcotest.(check bool)
            (Printf.sprintf "%s mentions %s" f.Figures.id l)
            true
            (Astring_contains.contains s l))
        (f.Figures.derived ()).Spec.Classify.labels)
    Figures.all

(* ---------------- domain-size robustness ---------------- *)

(* The bounded derivation uses 2-value domains; the symbolic
   classification must be invariant when the domain widens. *)

module Queue3 = struct
  include Adt.Fifo_queue

  let universe = List.map enq [ 1; 2; 3 ] @ List.map deq [ 1; 2; 3 ]
end

module File4 = struct
  include Adt.File_adt

  let universe = List.map read [ 0; 1; 2; 3 ] @ List.map write [ 0; 1; 2; 3 ]
end

let test_queue_wider_domain () =
  let module D = Spec.Dependency.Make (Queue3) in
  let module K = Spec.Classify.Make (Queue3) in
  let derived =
    K.classify ~title:"queue-3" (Spec.Relation.pred (D.invalidated_by ~depth:3))
  in
  let reference = (Option.get (Figures.by_id "4-2")).Figures.expected in
  Alcotest.(check (list string))
    "labels" reference.Spec.Classify.labels derived.Spec.Classify.labels;
  Alcotest.(check bool)
    "cells identical over {1,2,3}" true
    (Array.for_all2
       (fun ra rb -> Array.for_all2 Spec.Classify.equal_cell ra rb)
       reference.Spec.Classify.cells derived.Spec.Classify.cells)

let test_file_wider_domain () =
  let module D = Spec.Dependency.Make (File4) in
  let module K = Spec.Classify.Make (File4) in
  let derived =
    K.classify ~title:"file-4" (Spec.Relation.pred (D.invalidated_by ~depth:3))
  in
  let reference = (Option.get (Figures.by_id "4-1")).Figures.expected in
  Alcotest.(check bool)
    "cells identical over {0..3}" true
    (Array.for_all2
       (fun ra rb -> Array.for_all2 Spec.Classify.equal_cell ra rb)
       reference.Spec.Classify.cells derived.Spec.Classify.cells)

let () =
  Alcotest.run "figures"
    [
      ( "paper-match",
        List.map
          (fun f ->
            Alcotest.test_case ("figure " ^ f.Figures.id) `Quick (test_figure f))
          Figures.all );
      ( "registry",
        [
          Alcotest.test_case "ids unique" `Quick test_all_ids_unique;
          Alcotest.test_case "by_id" `Quick test_by_id;
          Alcotest.test_case "check all" `Quick test_check_all;
        ] );
      ("rendering", [ Alcotest.test_case "roundtrip" `Quick test_rendering_roundtrip ]);
      ( "domain-robustness",
        [
          Alcotest.test_case "queue over three values" `Slow test_queue_wider_domain;
          Alcotest.test_case "file over four values" `Slow test_file_wider_domain;
        ] );
    ]
