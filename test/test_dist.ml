(* The sharded subsystem: timestamp striping, the refcounted shared-id
   registry, the presumed-abort decision log, in-doubt resolution, the
   cross-shard coordinator, and the cross-shard atomicity audit
   (including its negative controls). *)

module Cobj = Runtime.Atomic_obj.Make (Adt.Counter)

let temp_wal () =
  let f = Filename.temp_file "hybrid-cc-dist" ".wal" in
  at_exit (fun () -> try Sys.remove f with Sys_error _ -> ());
  f

(* ---------------- timestamp striping ---------------- *)

(* Every commit timestamp drawn by a stripe-(i, n) manager lies in the
   residue class i mod n — the disjointness that makes max-of-prepares
   globally unique. *)
let test_striped_residues () =
  let n = 4 in
  for i = 0 to n - 1 do
    let ring = Obs.Trace.create ~capacity:256 () in
    let mgr = Runtime.Manager.create ~stripe:(i, n) () in
    let c = Cobj.create ~trace:ring ~conflict:Adt.Counter.conflict_hybrid () in
    for _ = 1 to 10 do
      Runtime.Manager.run mgr (fun txn -> ignore (Cobj.invoke c txn (Adt.Counter.Inc 1)))
    done;
    List.iter
      (fun (e : Obs.Trace.entry) ->
        match e.event with
        | Obs.Trace.Commit ts ->
          Alcotest.(check int)
            (Printf.sprintf "stripe %d/%d residue of ts=%d" i n ts)
            i (ts mod n)
        | _ -> ())
      (Obs.Trace.entries ring)
  done

let test_stripe_validation () =
  Alcotest.check_raises "index out of range"
    (Invalid_argument "Manager.create: stripe must satisfy 0 <= index < count") (fun () ->
      ignore (Runtime.Manager.create ~stripe:(4, 4) ()))

(* The default stripe is (0, 1): clock + 1, the seed behaviour. *)
let test_default_stripe_dense () =
  let ring = Obs.Trace.create ~capacity:256 () in
  let mgr = Runtime.Manager.create () in
  let c = Cobj.create ~trace:ring ~conflict:Adt.Counter.conflict_hybrid () in
  for _ = 1 to 5 do
    Runtime.Manager.run mgr (fun txn -> ignore (Cobj.invoke c txn (Adt.Counter.Inc 1)))
  done;
  let tss =
    List.filter_map
      (fun (e : Obs.Trace.entry) ->
        match e.event with Obs.Trace.Commit ts -> Some ts | _ -> None)
      (Obs.Trace.entries ring)
  in
  let sorted = List.sort compare tss in
  let rec dense = function
    | a :: (b :: _ as rest) -> b = a + 1 && dense rest
    | _ -> true
  in
  Alcotest.(check bool) "5 sequential commits draw consecutive timestamps" true
    (List.length sorted = 5 && dense sorted)

(* ---------------- shared-id refcounting ---------------- *)

let test_shared_id_refcount () =
  let gid = Runtime.Txn_rt.fresh_id () in
  let b0 = Runtime.Txn_rt.fresh ~id:gid ~priority:3 () in
  let b1 = Runtime.Txn_rt.fresh ~id:gid ~priority:99 () in
  Alcotest.(check int) "both branches share the id" gid (Runtime.Txn_rt.id b1);
  Alcotest.(check (option int))
    "the first registration's priority wins" (Some 3)
    (Runtime.Txn_rt.priority_of_id gid);
  Runtime.Txn_rt.abort b0;
  Alcotest.(check (option int))
    "id still resolves while a branch is live" (Some 3)
    (Runtime.Txn_rt.priority_of_id gid);
  Runtime.Txn_rt.abort b1;
  Alcotest.(check (option int))
    "id retired with the last branch" None
    (Runtime.Txn_rt.priority_of_id gid)

(* ---------------- decision log ---------------- *)

let test_decision_log_roundtrip () =
  let path = temp_wal () in
  let d = Dist.Decision_log.create ~fsync:false path in
  Dist.Decision_log.decide d ~gtxn:1 ~ts:5;
  Dist.Decision_log.decide d ~gtxn:2 ~ts:9;
  Dist.Decision_log.note_abort d ~gtxn:3;
  Dist.Decision_log.forget d ~gtxn:1;
  Alcotest.(check (option int)) "decided 2" (Some 9) (Dist.Decision_log.decided d 2);
  Alcotest.(check bool) "outcome 1 is commit (audit remembers forgotten decisions)" true
    (Dist.Decision_log.outcome d 1 = Some (`Commit 5));
  Alcotest.(check bool) "outcome 3 is the in-memory abort verdict" true
    (Dist.Decision_log.outcome d 3 = Some `Abort);
  Alcotest.(check bool) "outcome 4 is unknown" true (Dist.Decision_log.outcome d 4 = None);
  Dist.Decision_log.close d;
  Alcotest.(check (list (pair int int)))
    "offline read excludes forgotten decisions" [ (2, 9) ]
    (Dist.Decision_log.read path)

(* ---------------- in-doubt resolution ---------------- *)

let in_doubt_records =
  [
    Wal.Log.Object { obj = "o"; adt = Adt.Counter.name; cell = None };
    Wal.Log.Intention { obj = "o"; txn = 7; payload = "p"; cell = None };
    Wal.Log.Prepare { txn = 7; gtxn = 7; ts = 42 };
  ]

let test_resolve_decided_commit () =
  let patched, res =
    Wal.Recover.resolve ~decided:(fun g -> if g = 7 then Some 50 else None) in_doubt_records
  in
  Alcotest.(check int) "one resolution" 1 (List.length res);
  (match res with
  | [ r ] ->
    Alcotest.(check bool) "resolved to the decided timestamp" true
      (r.Wal.Recover.r_outcome = `Commit 50)
  | _ -> Alcotest.fail "expected one resolution");
  Alcotest.(check (option int))
    "patched log commits the branch at the decided ts" (Some 50)
    (List.assoc_opt 7 (Wal.Recover.committed patched))

let test_resolve_presumed_abort () =
  let patched, res = Wal.Recover.resolve ~decided:(fun _ -> None) in_doubt_records in
  (match res with
  | [ r ] ->
    Alcotest.(check bool) "presumed abort" true (r.Wal.Recover.r_outcome = `Abort)
  | _ -> Alcotest.fail "expected one resolution");
  Alcotest.(check (option int))
    "patched log does not commit the branch" None
    (List.assoc_opt 7 (Wal.Recover.committed patched));
  Alcotest.(check (list int)) "patched log aborts it" [ 7 ] (Wal.Recover.aborted patched)

let test_resolve_skips_completed () =
  let records = in_doubt_records @ [ Wal.Log.Commit { txn = 7; ts = 42 } ] in
  let _, res = Wal.Recover.resolve ~decided:(fun _ -> Some 99) records in
  Alcotest.(check int) "a completed vote is not in doubt" 0 (List.length res)

(* ---------------- coordinator paths ---------------- *)

let test_single_shard_fast_path () =
  let s = Sim.Shard_exp.make_setup ~shards:2 () in
  Dist.Coordinator.run s.Sim.Shard_exp.coord (fun ctx ->
      let b = Dist.Coordinator.branch ctx (Dist.Router.shard s.Sim.Shard_exp.router 0) in
      ignore (Sim.Shard_exp.Aobj.invoke s.Sim.Shard_exp.accounts.(0) b (Adt.Account.Credit 5)));
  let st = Dist.Coordinator.stats s.Sim.Shard_exp.coord in
  Alcotest.(check int) "committed" 1 st.Dist.Coordinator.c_commits;
  Alcotest.(check int) "no 2PC for a single-shard txn" 0 st.Dist.Coordinator.c_cross_commits;
  Sim.Shard_exp.close_setup s

let test_read_only_commit () =
  let s = Sim.Shard_exp.make_setup ~shards:2 () in
  let v =
    Dist.Coordinator.run s.Sim.Shard_exp.coord (fun ctx ->
        (* Branches opened but never used participate nowhere. *)
        ignore (Dist.Coordinator.branch ctx (Dist.Router.shard s.Sim.Shard_exp.router 0));
        ignore (Dist.Coordinator.branch ctx (Dist.Router.shard s.Sim.Shard_exp.router 1));
        17)
  in
  Alcotest.(check int) "body value returned" 17 v;
  let st = Dist.Coordinator.stats s.Sim.Shard_exp.coord in
  Alcotest.(check int) "committed without 2PC" 1 st.Dist.Coordinator.c_commits;
  Alcotest.(check int) "no cross commit" 0 st.Dist.Coordinator.c_cross_commits;
  Sim.Shard_exp.close_setup s

let test_cross_shard_commit_agrees () =
  let s = Sim.Shard_exp.make_setup ~shards:2 () in
  Dist.Coordinator.run s.Sim.Shard_exp.coord (fun ctx ->
      let b0 = Dist.Coordinator.branch ctx (Dist.Router.shard s.Sim.Shard_exp.router 0) in
      let b1 = Dist.Coordinator.branch ctx (Dist.Router.shard s.Sim.Shard_exp.router 1) in
      ignore (Sim.Shard_exp.Aobj.invoke s.Sim.Shard_exp.accounts.(0) b0 (Adt.Account.Debit 3));
      ignore (Sim.Shard_exp.Aobj.invoke s.Sim.Shard_exp.accounts.(1) b1 (Adt.Account.Credit 3)));
  let st = Dist.Coordinator.stats s.Sim.Shard_exp.coord in
  Alcotest.(check int) "one 2PC commit" 1 st.Dist.Coordinator.c_cross_commits;
  (* Both shards' rings record the same transaction id committing at the
     same (decided) timestamp. *)
  let windows = Array.map Obs.Trace.entries (Sim.Shard_exp.rings s) in
  let commits w =
    List.filter_map
      (fun (e : Obs.Trace.entry) ->
        match e.event with Obs.Trace.Commit ts -> Some (e.txn, ts) | _ -> None)
      w
  in
  let cross w0 w1 =
    List.filter (fun (t, _) -> List.mem_assoc t (commits w1)) (commits w0)
  in
  (match cross windows.(0) windows.(1) with
  | [ (txn, ts) ] ->
    Alcotest.(check (option int))
      "same decided timestamp on both shards" (Some ts)
      (List.assoc_opt txn (commits windows.(1)))
  | l -> Alcotest.fail (Printf.sprintf "expected one cross-shard commit, saw %d" (List.length l)));
  Alcotest.(check bool) "audit passes" true
    (Result.is_ok (Dist.Audit.check ~outcome:(Sim.Shard_exp.outcome_fn s) windows));
  Sim.Shard_exp.close_setup s

(* Satellite regression: two shards in one process keep their
   bookkeeping fully apart — each ring only ever sees its own shard's
   objects, and per-shard attribution matrices do not interleave. *)
let test_two_shards_no_interleaving () =
  let s = Sim.Shard_exp.make_setup ~shards:2 () in
  let config = { Sim.Driver.domains = 2; txns_per_domain = 8; think_us = 0. } in
  let workers =
    Array.init 2 (fun domain ->
        Domain.spawn (fun () ->
            for seq = 0 to 7 do
              Sim.Shard_exp.txn_body s ~config ~seed:1 ~cross_pct:0. ~shards:2 ~domain ~seq
            done))
  in
  Array.iter Domain.join workers;
  let keys = Array.map Sim.Shard_exp.Aobj.key s.Sim.Shard_exp.accounts in
  Array.iteri
    (fun i ring ->
      List.iter
        (fun (e : Obs.Trace.entry) ->
          Alcotest.(check int)
            (Printf.sprintf "ring %d entry belongs to shard %d's account" i i)
            keys.(i) e.obj)
        (Obs.Trace.entries ring))
    (Sim.Shard_exp.rings s);
  (* Each manager committed exactly its own domain's transactions (plus
     the seeding credit). *)
  Array.iteri
    (fun i _ ->
      let st =
        Runtime.Manager.stats (Dist.Shard.mgr (Dist.Router.shard s.Sim.Shard_exp.router i))
      in
      Alcotest.(check int)
        (Printf.sprintf "shard %d committed its own transactions" i)
        9 st.Runtime.Manager.committed)
    keys;
  Sim.Shard_exp.close_setup s

(* ---------------- the audit and its negative controls ---------------- *)

let entry seq obj txn event = { Obs.Trace.seq; time = seq; obj; txn; event }

let test_audit_commit_abort_disagreement () =
  let windows =
    [|
      [ entry 0 1 5 (Obs.Trace.Commit 10) ];
      [ entry 1 2 5 Obs.Trace.Abort ];
    |]
  in
  Alcotest.(check bool) "caught" true (Result.is_error (Dist.Audit.check windows))

let test_audit_ts_disagreement () =
  let windows =
    [|
      [ entry 0 1 5 (Obs.Trace.Commit 10) ];
      [ entry 1 2 5 (Obs.Trace.Commit 12) ];
    |]
  in
  Alcotest.(check bool) "caught" true (Result.is_error (Dist.Audit.check windows))

let test_audit_decided_abort_committed () =
  (* The ISSUE's negative control: a shard commits a transaction the
     coordinator decided to abort. *)
  let windows = [| [ entry 0 1 5 (Obs.Trace.Commit 10) ]; [] |] in
  let outcome g = if g = 5 then Some `Abort else None in
  Alcotest.(check bool) "caught" true (Result.is_error (Dist.Audit.check ~outcome windows))

let test_audit_decided_ts_mismatch () =
  let windows = [| [ entry 0 1 5 (Obs.Trace.Commit 10) ] |] in
  let outcome g = if g = 5 then Some (`Commit 11) else None in
  Alcotest.(check bool) "caught" true (Result.is_error (Dist.Audit.check ~outcome windows))

let test_audit_precedes_violation () =
  (* T6 invokes after T5's commit at ts=100 but carries ts=50:
     precedes ⊄ TS. *)
  let windows =
    [|
      [
        entry 0 1 5 (Obs.Trace.Commit 100);
        entry 1 1 6 (Obs.Trace.Invoke 0);
        entry 2 1 6 (Obs.Trace.Commit 50);
      ];
    |]
  in
  Alcotest.(check bool) "caught" true (Result.is_error (Dist.Audit.check windows))

let test_audit_clean () =
  let windows =
    [|
      [
        entry 0 1 5 (Obs.Trace.Invoke 0);
        entry 1 1 5 (Obs.Trace.Commit 10);
        entry 2 1 6 (Obs.Trace.Invoke 0);
        entry 3 1 6 (Obs.Trace.Commit 12);
      ];
      [ entry 4 2 5 (Obs.Trace.Commit 10) ];
    |]
  in
  let outcome g = if g = 5 then Some (`Commit 10) else None in
  (match Dist.Audit.check ~outcome windows with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let r = Dist.Audit.analyze ~outcome windows in
  Alcotest.(check int) "txns" 2 r.Dist.Audit.a_txns;
  Alcotest.(check int) "cross" 1 r.Dist.Audit.a_cross

(* ---------------- property: cross-shard runs stay atomic ---------------- *)

let prop_cross_shard_atomic =
  QCheck2.Test.make ~name:"sharded run passes the cross-shard audit (any seed)" ~count:12
    QCheck2.Gen.(0 -- 1000)
    (fun seed ->
      let scale = { Sim.Experiments.domains = 2; txns = 8; think_us = 0. } in
      let o =
        Sim.Shard_exp.run_one ~scale ~seed ~shards:2 ~cross_pct:40. ()
      in
      match o.Sim.Shard_exp.row.Sim.Experiments.atomic with
      | Some (Ok ()) -> true
      | Some (Error e) -> QCheck2.Test.fail_reportf "atomicity: %s" e
      | None -> QCheck2.Test.fail_report "no audit ran")

let () =
  Alcotest.run "dist"
    [
      ( "striping",
        [
          Alcotest.test_case "commit timestamps stay in the stripe residue" `Quick
            test_striped_residues;
          Alcotest.test_case "stripe validation" `Quick test_stripe_validation;
          Alcotest.test_case "default stripe is dense" `Quick test_default_stripe_dense;
        ] );
      ( "txn-ids",
        [ Alcotest.test_case "shared ids are refcounted" `Quick test_shared_id_refcount ] );
      ( "decision-log",
        [ Alcotest.test_case "decide/forget/outcome/read" `Quick test_decision_log_roundtrip ] );
      ( "resolve",
        [
          Alcotest.test_case "in-doubt resolves to the decided commit" `Quick
            test_resolve_decided_commit;
          Alcotest.test_case "in-doubt presumes abort" `Quick test_resolve_presumed_abort;
          Alcotest.test_case "completed votes are not in doubt" `Quick
            test_resolve_skips_completed;
        ] );
      ( "coordinator",
        [
          Alcotest.test_case "single-shard fast path" `Quick test_single_shard_fast_path;
          Alcotest.test_case "read-only global txn" `Quick test_read_only_commit;
          Alcotest.test_case "cross-shard commit agrees everywhere" `Quick
            test_cross_shard_commit_agrees;
          Alcotest.test_case "two shards in one process do not interleave" `Quick
            test_two_shards_no_interleaving;
        ] );
      ( "audit",
        [
          Alcotest.test_case "commit/abort disagreement" `Quick
            test_audit_commit_abort_disagreement;
          Alcotest.test_case "timestamp disagreement" `Quick test_audit_ts_disagreement;
          Alcotest.test_case "decided abort yet committed (negative control)" `Quick
            test_audit_decided_abort_committed;
          Alcotest.test_case "decided ts mismatch" `Quick test_audit_decided_ts_mismatch;
          Alcotest.test_case "precedes outside TS" `Quick test_audit_precedes_violation;
          Alcotest.test_case "clean history passes" `Quick test_audit_clean;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest [ prop_cross_shard_atomic ] );
    ]
